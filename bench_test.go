package repro

// One benchmark per table and figure of the paper. Each iteration
// regenerates the artifact on a freshly booted platform; the interesting
// output is the simulated-time metrics reported alongside the wall-clock
// numbers (speedup factors and per-transfer simulated times).

import (
	"io"
	"testing"

	"repro/internal/bench"
)

// reportSpeedups attaches per-row speedup metrics to the benchmark.
func reportSpeedups(b *testing.B, t *bench.Table, unit string) {
	for i, v := range t.Raw() {
		if i == 0 {
			b.ReportMetric(v, unit)
		}
	}
	if n := len(t.Raw()); n > 1 {
		b.ReportMetric(t.Raw()[n-1], unit+"-last")
	}
}

func BenchmarkTable01Resources32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.ResourceTable(bench.Sys32())
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable02Transfer32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.TransferCPUTable(bench.Sys32(), nil)
		reportSpeedups(b, t, "fs/xfer")
	}
}

func BenchmarkTable03Pattern32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.PatternTable(bench.Sys32())
		reportSpeedups(b, t, "speedup")
		if t.Raw()[0] < 26 {
			b.Errorf("pattern speedup %.1f below the paper's >26", t.Raw()[0])
		}
	}
}

func BenchmarkTable04Jenkins32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.JenkinsTable(bench.Sys32())
		reportSpeedups(b, t, "speedup")
	}
}

func BenchmarkTable05Image32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.ImageTable32(bench.Sys32())
		reportSpeedups(b, t, "speedup")
	}
}

func BenchmarkTable06Resources64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.ResourceTable(bench.Sys64())
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable07Transfer64CPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := bench.TransferCPUTable(bench.Sys32(), nil)
		t := bench.TransferCPUTable(bench.Sys64(), base)
		// The paper's anchor: transfers improve 4-6x system to system.
		for row := range t.Raw() {
			ratio := base.Raw()[row] / t.Raw()[row]
			b.ReportMetric(ratio, "ratio32to64")
			if ratio < 3.5 || ratio > 7 {
				b.Errorf("transfer ratio %.1f outside the paper's 4-6 band", ratio)
			}
		}
	}
}

func BenchmarkTable08Transfer64DMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.TransferDMATable(bench.Sys64())
		reportSpeedups(b, t, "fs/xfer")
	}
}

func BenchmarkTable09Pattern64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.PatternTable(bench.Sys64())
		reportSpeedups(b, t, "speedup")
	}
}

func BenchmarkTable10Jenkins64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.JenkinsTable(bench.Sys64())
		reportSpeedups(b, t, "speedup")
	}
}

func BenchmarkTable11SHA1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.SHA1Table(bench.Sys64())
		reportSpeedups(b, t, "speedup")
		raw := t.Raw()
		if raw[0] <= raw[len(raw)-1] {
			b.Errorf("SHA-1 speedup should fall with size as the software overhead fades: %.1f .. %.1f",
				raw[0], raw[len(raw)-1])
		}
	}
}

func BenchmarkTable12Image64DMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.ImageTable64(bench.Sys64())
		raw := t.Raw()
		b.ReportMetric(raw[0], "brightness-speedup")
		b.ReportMetric(raw[1], "blend-speedup")
		b.ReportMetric(raw[2], "fade-speedup")
		if raw[0] < raw[1] || raw[0] < raw[2] {
			b.Error("brightness must gain the most from DMA (single source image)")
		}
	}
}

func BenchmarkAblationA1ConfigTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.ConfigTimeTable(bench.Sys32())
		raw := t.Raw()
		b.ReportMetric(raw[0]/raw[1], "complete-vs-differential")
		if raw[1] >= raw[0] {
			b.Error("differential configuration should load faster than complete")
		}
	}
}

func BenchmarkAblationA2Hazard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.HazardTable(bench.Sys32())
		if len(t.Rows) != 5 {
			b.Fatalf("hazard table rows = %d", len(t.Rows))
		}
	}
}

func BenchmarkFigure1Architecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure1(io.Discard)
	}
}

func BenchmarkFigure2BusMacros(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure2(io.Discard)
	}
}

func BenchmarkFigure3Floorplan32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Floorplan(io.Discard, bench.Sys32())
	}
}

func BenchmarkFigure4Floorplan64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Floorplan(io.Discard, bench.Sys64())
	}
}
