.PHONY: build test race vet bench sim sched

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

bench:
	go test -bench . -benchtime 1x ./...

# Regenerate the paper's tables and figures.
sim:
	go run ./cmd/fpgasim

# Drive a mixed workload through the reconfiguration scheduler.
sched:
	go run ./cmd/fpgad -sys32 2 -sys64 2 -n 48 -batch 4 \
		-mix "sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1"
