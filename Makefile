.PHONY: build test race vet fmt bench gobench sim sched

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# Fail when any file is not gofmt-clean (CI gate).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Write the scheduler perf trajectory: the S2 placement comparison
# (complete-only vs planner-backed, lru vs mincost) on the seeded
# 60-request mixed workload, as a table on stdout and BENCH_sched.json.
bench:
	go run ./cmd/fpgad -compare -json BENCH_sched.json -sys32 2 -sys64 2 -n 60 -seed 7 -batch 4 \
		-mix "sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1"

# Go benchmark harness (paper tables + scheduler economics).
gobench:
	go test -bench . -benchtime 1x ./...

# Regenerate the paper's tables and figures.
sim:
	go run ./cmd/fpgasim

# Drive a mixed workload through the reconfiguration scheduler.
sched:
	go run ./cmd/fpgad -sys32 2 -sys64 2 -n 48 -batch 4 -policy mincost \
		-mix "sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1"
