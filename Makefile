.PHONY: build test race vet fmt fmtcheck bench benchgate benchboard benchboard-md tracesmoke tracedemo fuzz regionsmoke faultsmoke compresssmoke scalesmoke profile replay gobench sim sched

# Bench samples per nondeterministic suite (S2/S6): `make bench K=3`
# reruns them K times and appends min/median noise entries to the history.
K ?= 1

# Archived per-commit snapshots kept under artifacts/bench; the history
# store carries the full trajectory, so retention only bounds disk.
KEEP ?= 10

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# Fail when any file is not gofmt-clean (CI gate).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

fmtcheck: fmt

# Write the scheduler perf trajectory: the S2 placement comparison
# (complete-only vs planner-backed, lru vs mincost), the S3 prefetch
# comparison (visible config time with and without speculative loads), the
# S4 region-granularity comparison (single- vs dual-region boards at equal
# total fabric), the S6 scaling sweep (sharded dispatch throughput and
# sojourn percentiles vs offered load, on its own committed 32-board
# capacity spec), the S7 fault sweep (availability under injected upsets
# with scrubbing), the S8 load-path comparison (complete vs diff vs
# compressed vs compressed+DMA) on the seeded 60-request mixed workload,
# and the S9 latency-SLO replay (deterministic sojourn percentiles over
# the S6 arrival traces), as tables on stdout and BENCH_sched.json. Each
# refresh is also archived under artifacts/bench keyed by the current
# commit (pruned to the newest KEEP), every record's metrics are appended
# to the per-commit history store that cmd/benchboard plots, and the
# README sparkline section is refreshed — so the perf trajectory survives
# baseline rewrites.
bench:
	mkdir -p artifacts/bench
	go run ./cmd/fpgad -compare -json BENCH_sched.json -sys32 2 -sys64 2 -n 60 -seed 7 -batch 4 \
		-mix "sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1" \
		-history artifacts/bench/history.jsonl -sha $$(git rev-parse --short HEAD) -samples $(K)
	cp BENCH_sched.json artifacts/bench/BENCH_sched.$$(git rev-parse --short HEAD).json
	go run ./cmd/benchboard -prune $(KEEP) -readme README.md

# CI bench-regression gate: rerun the comparison into a scratch file and
# fail if visible config time or bytes streamed regress past tolerance
# against the committed BENCH_sched.json on any configuration (15% on the
# deterministic S3, S4, S7 and S8 rows; the concurrency-noisy S2 rows carry
# a wider per-record band; the S6 rows pin their all-hit zeros absolutely —
# any config byte on the capacity drive's request path fails the gate —
# while their host-dependent throughput fields stay informational). After
# an intended perf change, run `make bench` and commit the refreshed
# baseline. The deterministic S9 rows additionally gate their sojourn
# p50/p95/p99 columns — the repo's latency SLOs.
benchgate:
	mkdir -p artifacts/bench
	go run ./cmd/fpgad -compare -json BENCH_fresh.json -sys32 2 -sys64 2 -n 60 -seed 7 -batch 4 \
		-mix "sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1"
	go run ./cmd/benchdiff -baseline BENCH_sched.json -fresh BENCH_fresh.json -max-regress 15 \
		-history artifacts/bench/history.jsonl -sha $$(git rev-parse --short HEAD); \
		rc=$$?; rm -f BENCH_fresh.json; exit $$rc

# Serve the perf-trajectory dashboard: per-commit config-time /
# wire-bytes / availability / sustained-rate curves from the history
# store, regression points ringed by the same band math as the gate.
benchboard:
	go run ./cmd/benchboard -extract
	go run ./cmd/benchboard -serve localhost:8321

# Render the trajectory statically: lift any archived snapshots into the
# history store, then write the markdown table and one SVG per
# (suite, metric) under artifacts/bench/board (uploaded by CI).
benchboard-md:
	go run ./cmd/benchboard -extract \
		-md artifacts/bench/board/TRAJECTORY.md -svg artifacts/bench/board

# Trace/metrics smoke: deterministic trace export (two paced runs are
# byte-identical), the zero-overhead disabled path, span-sum conservation
# against the scheduler's Stats accounting, the metrics registry and the
# gated S9 SLO replay, under the race detector.
tracesmoke:
	go test -run 'Trace|Metrics|SLO' -race ./...

# Render a Perfetto-loadable Chrome trace of the S8 paired drive (the
# densest deterministic load-path exercise: differential, compressed and
# DMA-overlapped streams on sibling regions). Open artifacts/trace/s8.json
# in https://ui.perfetto.dev or chrome://tracing.
tracedemo:
	mkdir -p artifacts/trace
	go run ./cmd/fpgad -compare -trace artifacts/trace/s8.json \
		-sys32 2 -sys64 2 -n 60 -seed 7 -batch 4 \
		-mix "sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1" \
		> /dev/null
	@echo "trace: artifacts/trace/s8.json"

# Fuzz smoke: the loader must reject damaged differential streams without
# wedging (CRC or state-machine error, never silent misconfiguration),
# multi-region differentials must stay inside their region's frame spans,
# and damaged compressed containers must never decode to divergent frames.
fuzz:
	go test -run '^$$' -fuzz FuzzLoaderDifferentialStream -fuzztime 10s ./internal/bitstream
	go test -run '^$$' -fuzz FuzzCompressedStream -fuzztime 10s ./internal/bitstream
	go test -run '^$$' -fuzz FuzzRegionPlanner -fuzztime 10s ./internal/plan

# Multi-region smoke: the per-region hazard gate, sibling-region hits and
# speculative byte conservation under the race detector.
regionsmoke:
	go test -run Region -race ./...

# Fault smoke: injection, readback scrubbing, quarantine/repair and the
# scrub/abort interaction, under the race detector.
faultsmoke:
	go test -run 'Fault|Scrub' -race ./...

# Compression/DMA smoke: the compressed codec round trip, the planner's
# fourth stream kind, decode-side hazard gating and sibling-region DMA
# overlap, under the race detector.
compresssmoke:
	go test -run 'Compress|DMA' -race ./...

# Sharded-dispatch smoke: work-stealing FIFO order, cross-shard
# conservation laws and the S6 open-loop scaling drives, under the race
# detector (the speedup bar is waived under -race; see
# internal/bench/race_off.go).
scalesmoke:
	go test -run 'Shard|Scaling' -race ./...

# Profile the sharded dispatcher under a saturating open-loop drive: CPU
# and mutex-contention profiles land in artifacts/profile for
# `go tool pprof`. For a live view use `go run ./cmd/fpgad -pprof
# localhost:6060 ...` instead.
profile:
	mkdir -p artifacts/profile
	go run ./cmd/fpgad -sys32 8 -n 4000 -mix jenkins=1 -batch 1 -seed 7 \
		-shards 4 -rate 2000000 \
		-cpuprofile artifacts/profile/cpu.pprof -mutexprofile artifacts/profile/mutex.pprof
	@echo "profiles: artifacts/profile/cpu.pprof artifacts/profile/mutex.pprof"

# Fault replay: generate the seeded S7 upset campaign as a JSONL artifact,
# then replay it against the scheduled pool and write the availability
# records. Both steps are deterministic for a fixed seed: rerunning
# reproduces artifacts/fault-replay byte for byte.
replay:
	mkdir -p artifacts/fault-replay
	go run ./cmd/faultreplay -scenario sweep -n 60 -seed 7 \
		-out artifacts/fault-replay/fault_scenarios.jsonl
	go run ./cmd/faultreplay -scenario sweep -n 60 -seed 7 \
		-replay artifacts/fault-replay/fault_scenarios.jsonl \
		-json artifacts/fault-replay/BENCH_replay.json

# Go benchmark harness (paper tables + scheduler economics).
gobench:
	go test -bench . -benchtime 1x ./...

# Regenerate the paper's tables and figures.
sim:
	go run ./cmd/fpgasim

# Drive a mixed workload through the reconfiguration scheduler.
sched:
	go run ./cmd/fpgad -sys32 2 -sys64 2 -n 48 -batch 4 -policy mincost \
		-mix "sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1"
