// Sha1accel hashes messages of growing size with the SHA-1 core on the
// 64-bit system, showing the paper's Table 11 shape: the RFC reference
// software carries a large fixed overhead that fades as messages grow,
// while the hardware path is transfer-bound. It also demonstrates the
// paper's resource constraint: the core does not fit the 32-bit system.
package main

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/platform"
	"repro/internal/tasks"
)

func main() {
	s32, err := platform.NewSys32()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s32.LoadModule("sha1"); err != nil {
		fmt.Printf("32-bit system: %v\n", err)
		fmt.Printf("  (as in the paper: the SHA-1 core exceeds the %d-CLB dynamic area)\n\n", s32.Region.CLBs())
	}

	sys, err := platform.NewSys64()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.LoadModule("sha1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("64-bit system: sha1 core loaded into the %d-CLB dynamic area\n", sys.Region.CLBs())
	fmt.Printf("  (%s stream: %d B in %v — only the frames that differ from the blank baseline)\n\n",
		rep.Kind, rep.Bytes, rep.Time)
	fmt.Printf("%-10s  %-12s  %-12s  %s\n", "message", "software", "hardware", "speedup")

	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{64, 512, 4096, 65536} {
		msg := make([]byte, n)
		rng.Read(msg)
		addr := sys.MemBase() + 0x100000
		if err := sys.WriteMem(addr, msg); err != nil {
			log.Fatal(err)
		}
		args := tasks.SHA1Args{MsgAddr: addr, MsgLen: n, PadAddr: sys.MemBase() + 0x400040}

		var swH, hwH [5]uint32
		swTime := sys.Measure(func() {
			if swH, err = tasks.SHA1SW(sys, args); err != nil {
				log.Fatal(err)
			}
		})
		hwTime := sys.Measure(func() {
			if hwH, err = tasks.SHA1HW(sys, args); err != nil {
				log.Fatal(err)
			}
		})
		var digest [20]byte
		for i, h := range hwH {
			binary.BigEndian.PutUint32(digest[4*i:], h)
		}
		if digest != sha1.Sum(msg) || swH != hwH {
			log.Fatalf("digest mismatch at %d bytes", n)
		}
		fmt.Printf("%-10d  %-12v  %-12v  %.1fx\n", n, swTime, hwTime,
			float64(swTime)/float64(hwTime))
	}
	fmt.Println("\nall digests verified against crypto/sha1")
}
