// Timeshare demonstrates the paper's primary motivation: time-sharing the
// dynamic area between mutually exclusive tasks. A fade-in/fade-out video
// effect alternates with a brightness correction pass; each task's circuit
// is swapped into the single dynamic region on demand, and the manager's
// statistics show what reconfiguration costs relative to the work done.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/platform"
	"repro/internal/tasks"
)

func main() {
	sys, err := platform.NewSys32()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-sharing the %d-CLB dynamic area of %s\n", sys.Region.CLBs(), sys.Dev.Name)
	fmt.Printf("registered modules: %v\n\n", sys.Mgr.Modules())

	const n = 16 * 1024 // one small frame per step
	rng := rand.New(rand.NewSource(7))
	a := make([]byte, n)
	b := make([]byte, n)
	rng.Read(a)
	rng.Read(b)
	args := tasks.ImageArgs{
		SrcA: sys.MemBase() + 0x100000,
		SrcB: sys.MemBase() + 0x200040,
		Dst:  sys.MemBase() + 0x300080,
		N:    n,
	}
	if err := sys.WriteMem(args.SrcA, a); err != nil {
		log.Fatal(err)
	}
	if err := sys.WriteMem(args.SrcB, b); err != nil {
		log.Fatal(err)
	}

	// Fade-in-fade-out: sweep the factor, then touch up brightness — two
	// mutually exclusive circuits sharing one region.
	for step := 0; step < 4; step++ {
		args.F = 64 * (step + 1)
		cfg, err := sys.LoadModule("fade")
		if err != nil {
			log.Fatal(err)
		}
		work := sys.Measure(func() {
			if err := tasks.FadeHW(sys, args); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("step %d: fade(f=%3d)  config=%-12v work=%v\n", step, args.F, cfg, work)

		args.Delta = 10 * (step + 1)
		cfg, err = sys.LoadModule("brightness")
		if err != nil {
			log.Fatal(err)
		}
		work = sys.Measure(func() {
			if err := tasks.BrightnessHW(sys, args); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("        brightness(%+3d) config=%-12v work=%v\n", args.Delta, cfg, work)
	}

	loads, cfgTotal, bytes := sys.Mgr.Stats()
	fmt.Printf("\nreconfigurations: %d, total configuration time %v, %d stream bytes\n",
		loads, cfgTotal, bytes)
	fmt.Printf("simulated wall time: %v; static design intact: %v\n",
		sys.Now(), !sys.Mgr.Corrupted())
}
