// Timeshare demonstrates the paper's primary motivation — time-sharing
// dynamic areas between mutually exclusive tasks — at the scheduler layer:
// a fade-in/fade-out video effect alternates with a brightness correction
// pass across a pool of two 32-bit platforms. The scheduler's affinity
// placement converges on parking each effect on its own board, after which
// every request is a bitstream-cache hit; on the seed's single board every
// alternation paid a full reconfiguration instead.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/tasks"
)

func main() {
	p, err := pool.New(pool.Config{Sys32: 2})
	if err != nil {
		log.Fatal(err)
	}
	sys := p.Members()[0].Sys
	fmt.Printf("time-sharing %d dynamic areas of %d CLBs each (%s)\n",
		p.Size(), sys.Region.CLBs(), sys.Dev.Name)
	fmt.Printf("registered modules: %v\n\n", sys.Mgr.Modules())

	const n = 16 * 1024 // one small frame per step
	s := sched.New(p, sched.Options{Batch: 4})
	var workload []tasks.Runner
	for step := 0; step < 4; step++ {
		workload = append(workload,
			tasks.FadeRun{Seed: int64(step), N: n, F: 64 * (step + 1)},
			tasks.BrightnessRun{Seed: int64(step), N: n, Delta: 10 * (step + 1)},
		)
	}
	for _, ch := range s.SubmitAll(workload) {
		r := <-ch
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		cache := "miss"
		if r.Report.CacheHit {
			cache = "hit"
		}
		fmt.Printf("req %d: %-18s member %d  cache %-4s stream %-12s config=%-12v work=%v\n",
			r.ID, r.Task, r.Member, cache, r.Report.Kind, r.Report.Config, r.Report.Work)
	}
	s.Wait()

	fmt.Println()
	bench.ThroughputTable(s.Stats()).Format(os.Stdout)
	for _, m := range p.Snapshot() {
		fmt.Printf("member %d: resident %-12s reconfigurations %d, config time %v, %d stream bytes, static intact: %v\n",
			m.ID, m.Resident, m.Loads, m.LoadTime, m.StreamedBytes, !m.Corrupted)
	}
}
