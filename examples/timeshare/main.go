// Timeshare demonstrates the paper's primary motivation — time-sharing
// dynamic areas between mutually exclusive tasks — at the scheduler layer:
// a fade-in/fade-out video effect alternates with a brightness correction
// pass across a pool of two 32-bit platforms. The scheduler's affinity
// placement converges on parking each effect on its own board, after which
// every request is a bitstream-cache hit; on the seed's single board every
// alternation paid a full reconfiguration instead.
//
// The second act rotates three effects over the same two boards — one more
// module than the pool has dynamic areas, so pure affinity must
// reconfigure on the request path once per cycle. With prefetching on, the
// markov predictor learns the rotation and configures the idle board with
// the next effect while the other computes: the reconfiguration time is
// still paid, but off the critical path.
//
// The third act replays the same rotation on HALF the hardware: one 32-bit
// board whose dynamic area is column-split into two independently
// reconfigurable regions (-regions 2 in fpgad terms). The two regions form
// the same two-entry bitstream cache the two boards did, and the prefetcher
// speculates into the idle sibling region — one board now does what act two
// needed a pool for.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/tasks"
)

func main() {
	p, err := pool.New(pool.Config{Sys32: 2})
	if err != nil {
		log.Fatal(err)
	}
	sys := p.Members()[0].Sys
	fmt.Printf("time-sharing %d dynamic areas of %d CLBs each (%s)\n",
		p.Size(), sys.Region.CLBs(), sys.Dev.Name)
	fmt.Printf("registered modules: %v\n\n", sys.Mgr.Modules())

	const n = 16 * 1024 // one small frame per step
	s := sched.New(p, sched.Options{Batch: 4})
	var workload []tasks.Runner
	for step := 0; step < 4; step++ {
		workload = append(workload,
			tasks.FadeRun{Seed: int64(step), N: n, F: 64 * (step + 1)},
			tasks.BrightnessRun{Seed: int64(step), N: n, Delta: 10 * (step + 1)},
		)
	}
	for _, ch := range s.SubmitAll(workload) {
		r := <-ch
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		cache := "miss"
		if r.Report.CacheHit {
			cache = "hit"
		}
		fmt.Printf("req %d: %-18s member %d  cache %-4s stream %-12s config=%-12v work=%v\n",
			r.ID, r.Task, r.Member, cache, r.Report.Kind, r.Report.Config, r.Report.Work)
	}
	s.Wait()

	fmt.Println()
	bench.ThroughputTable(s.Stats()).Format(os.Stdout)
	for _, m := range p.Snapshot() {
		fmt.Printf("member %d: resident %-12s reconfigurations %d, config time %v, %d stream bytes, static intact: %v\n",
			m.ID, m.Resident, m.Loads, m.LoadTime, m.StreamedBytes, !m.Corrupted)
	}

	fmt.Println("\n--- three effects on two dynamic areas, prefetch on ---")
	p2, err := pool.New(pool.Config{Sys32: 2})
	if err != nil {
		log.Fatal(err)
	}
	s2 := sched.New(p2, sched.Options{Prefetch: true}) // default markov predictor
	for step := 0; step < 24; step++ {
		var t tasks.Runner
		switch step % 3 {
		case 0:
			t = tasks.FadeRun{Seed: int64(step), N: n, F: 32 * (step%8 + 1)}
		case 1:
			t = tasks.BrightnessRun{Seed: int64(step), N: n, Delta: 3 * (step % 10)}
		default:
			t = tasks.BlendRun{Seed: int64(step), N: n}
		}
		// Closed loop: the next frame is produced after the previous one,
		// which is exactly the idle window the prefetcher fills.
		r := <-s2.Submit(t)
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		if step >= 21 {
			note := "reconfigured on the request path"
			if r.Report.CacheHit {
				note = "predicted and preloaded"
			}
			fmt.Printf("req %2d: %-18s member %d  stream %-12s config=%-12v (%s)\n",
				r.ID, r.Task, r.Member, r.Report.Kind, r.Report.Config, note)
		}
	}
	s2.Wait()
	st := s2.Stats()
	fmt.Printf("\nrotation of 3 effects over 2 areas: %d/%d cache hits, visible config %v\n",
		st.Hits, st.Done, st.Config)
	fmt.Printf("prefetch: %d speculative loads, %d hits, hidden config %v, %d B speculative (%d B wasted)\n",
		st.PrefetchIssued, st.PrefetchHits, st.HiddenConfig, st.PrefetchBytes, st.PrefetchWasted)

	fmt.Println("\n--- the same rotation on ONE dual-region board ---")
	p3, err := pool.New(pool.Config{Sys32: 1, Regions: 2})
	if err != nil {
		log.Fatal(err)
	}
	board := p3.Members()[0].Sys
	fmt.Printf("board %s: %d regions of %d CLBs each\n",
		board.Name, board.NumRegions(), board.RegionAt(0).CLBs())
	s3 := sched.New(p3, sched.Options{Prefetch: true})
	for step := 0; step < 24; step++ {
		var t tasks.Runner
		switch step % 3 {
		case 0:
			t = tasks.FadeRun{Seed: int64(step), N: n, F: 32 * (step%8 + 1)}
		case 1:
			t = tasks.BrightnessRun{Seed: int64(step), N: n, Delta: 3 * (step % 10)}
		default:
			t = tasks.BlendRun{Seed: int64(step), N: n}
		}
		r := <-s3.Submit(t)
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		if step >= 21 {
			note := "reconfigured on the request path"
			if r.Report.CacheHit {
				note = "predicted and preloaded on the sibling region"
			}
			fmt.Printf("req %2d: %-18s region %d  stream %-12s config=%-12v (%s)\n",
				r.ID, r.Task, r.Region, r.Report.Kind, r.Report.Config, note)
		}
	}
	s3.Wait()
	st3 := s3.Stats()
	fmt.Printf("\none dual-region board: %d/%d cache hits, visible config %v, hidden config %v\n",
		st3.Hits, st3.Done, st3.Config, st3.HiddenConfig)
	for _, r := range p3.Snapshot()[0].Regions {
		fmt.Printf("  region %s: resident %-12s loads %d, static intact: %v\n",
			r.Region, r.Resident, r.Loads, !r.Corrupted)
	}
}
