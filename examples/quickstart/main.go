// Quickstart: boot the 32-bit platform, reconfigure the dynamic area with
// the brightness module through the full bitstream → HWICAP path, run the
// same workload in software and in hardware, and compare simulated times.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/platform"
	"repro/internal/ref"
	"repro/internal/tasks"
)

func main() {
	sys, err := platform.NewSys32()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted %s: %s, dynamic area %d CLBs (%d BRAMs)\n",
		sys.Name, sys.Dev, sys.Region.CLBs(), sys.Region.BRAMBudget)

	// Put a test image into external memory.
	const n = 64 * 1024
	src := make([]byte, n)
	rand.New(rand.NewSource(1)).Read(src)
	args := tasks.ImageArgs{
		SrcA:  sys.MemBase() + 0x100000,
		Dst:   sys.MemBase() + 0x200040,
		N:     n,
		Delta: 60,
	}
	if err := sys.WriteMem(args.SrcA, src); err != nil {
		log.Fatal(err)
	}

	// Software baseline on the embedded CPU.
	swTime := sys.Measure(func() {
		if err := tasks.BrightnessSW(sys, args); err != nil {
			log.Fatal(err)
		}
	})

	// Reconfigure the dynamic area: the planner picks the cheapest safe
	// stream (here a differential against the verified blank baseline),
	// the BitLinker-assembled frames go through the HWICAP, and the
	// behavioural core is bound by configuration hash.
	rep, err := sys.LoadModule("brightness")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconfiguration: %s stream, %d B in %v (transition cached for next time)\n",
		rep.Kind, rep.Bytes, rep.Time)
	full, _, err := sys.Mgr.CompleteSize("brightness")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  (the state-independent complete stream would be %d B)\n", full)

	hwTime := sys.Measure(func() {
		if err := tasks.BrightnessHW(sys, args); err != nil {
			log.Fatal(err)
		}
	})

	// Verify against the plain-Go reference.
	want := make([]byte, n)
	ref.Brightness(want, src, args.Delta)
	got, err := sys.ReadMem(args.Dst, n)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("pixel %d: hw=%d want=%d", i, got[i], want[i])
		}
	}

	fmt.Printf("brightness over %d pixels:\n", n)
	fmt.Printf("  software:  %v\n", swTime)
	fmt.Printf("  hardware:  %v (speedup %.2fx)\n", hwTime, float64(swTime)/float64(hwTime))
	fmt.Printf("  results verified against the reference — ok\n")
}
