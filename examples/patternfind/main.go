// Patternfind plants an 8x8 logo in a large bilevel image and locates it
// with the hardware matching pipeline on both systems, reproducing the
// paper's first case study end to end (software baseline included).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/platform"
	"repro/internal/ref"
	"repro/internal/tasks"
)

func run(sys *platform.System) {
	const w, h = 256, 128
	rng := rand.New(rand.NewSource(99))
	im := ref.NewBinaryImage(w, h)
	for i := range im.Words {
		im.Words[i] = rng.Uint32()
	}
	var logo ref.Pattern8
	for j := range logo {
		logo[j] = byte(0x3C ^ j*17)
	}
	// Plant the logo.
	px, py := 171, 83
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			im.Set(px+i, py+j, int(logo[j]>>(7-uint(i))&1))
		}
	}
	args := tasks.PatternArgs{
		ImgAddr: sys.MemBase() + 0x100000, W: w, H: h,
		Pattern: logo, Threshold: 64,
		LUTAddr: sys.MemBase() + 0x8040,
	}
	if err := tasks.LoadPatternImage(sys, args.ImgAddr, im); err != nil {
		log.Fatal(err)
	}
	if err := tasks.LoadPopcountLUT(sys, args.LUTAddr); err != nil {
		log.Fatal(err)
	}

	var swRes tasks.PatternResult
	swTime := sys.Measure(func() { swRes = tasks.PatternMatchSW(sys, args) })
	if _, err := sys.LoadModule("patternmatch"); err != nil {
		log.Fatal(err)
	}
	var hwRes tasks.PatternResult
	var err error
	hwTime := sys.Measure(func() { hwRes, err = tasks.PatternMatchHW(sys, args) })
	if err != nil {
		log.Fatal(err)
	}
	if hwRes != swRes {
		log.Fatalf("hw and sw disagree: %+v vs %+v", hwRes, swRes)
	}
	status := "FOUND"
	if hwRes.BestX != px || hwRes.BestY != py || hwRes.BestCount != 64 {
		status = "MISSED"
	}
	fmt.Printf("%s: logo %s at (%d,%d) count=%d, %d positions >= threshold\n",
		sys.Name, status, hwRes.BestX, hwRes.BestY, hwRes.BestCount, hwRes.Hits)
	fmt.Printf("  software %v, hardware %v, speedup %.1fx\n",
		swTime, hwTime, float64(swTime)/float64(hwTime))
}

func main() {
	s32, err := platform.NewSys32()
	if err != nil {
		log.Fatal(err)
	}
	run(s32)
	s64, err := platform.NewSys64()
	if err != nil {
		log.Fatal(err)
	}
	run(s64)
	fmt.Println("\nthe speedup drops on the 64-bit system: the software gains more")
	fmt.Println("from the faster memory than the CPU-controlled hardware path (§4.2)")
}
