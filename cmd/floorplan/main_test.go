package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllFigures(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(nil, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{"F1", "F2", "F3", "F4", "XC2VP7", "XC2VP30"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleAndBadFigure(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-fig", "2"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "F2") {
		t.Errorf("figure 2 output:\n%s", out.String())
	}
	if code := run([]string{"-fig", "9"}, &out, &errw); code != 1 {
		t.Fatalf("bad figure exit %d, want 1", code)
	}
}
