// Command floorplan renders the paper's figures: the generic architecture
// (figure 1), the LUT-based bus macros (figure 2), the floorplans of the
// two systems (figures 3 and 4), derived from the actual simulated device
// geometry, and the multi-region generalization (figure 5: the 64-bit
// dynamic area column-split into two independently reconfigurable
// regions, the §4.1 "two separate dynamic areas" suggestion).
//
// Usage:
//
//	floorplan            # all five figures
//	floorplan -fig 3     # one figure
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/platform"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("floorplan", flag.ContinueOnError)
	fs.SetOutput(errw)
	fig := fs.Int("fig", 0, "render a single figure (1-5)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	render := func(n int) bool {
		switch n {
		case 1:
			bench.Figure1(out)
		case 2:
			bench.Figure2(out)
		case 3:
			bench.Floorplan(out, bench.Sys32())
		case 4:
			bench.Floorplan(out, bench.Sys64())
		case 5:
			s, err := platform.NewSys64N(2)
			if err != nil {
				fmt.Fprintln(errw, "floorplan:", err)
				return false
			}
			bench.Floorplan(out, s)
		default:
			fmt.Fprintf(errw, "floorplan: no figure %d\n", n)
			return false
		}
		return true
	}
	if *fig != 0 {
		if !render(*fig) {
			return 1
		}
		return 0
	}
	for n := 1; n <= 5; n++ {
		render(n)
	}
	return 0
}
