// Command floorplan renders the paper's figures: the generic architecture
// (figure 1), the LUT-based bus macros (figure 2), and the floorplans of
// the two systems (figures 3 and 4), derived from the actual simulated
// device geometry.
//
// Usage:
//
//	floorplan            # all four figures
//	floorplan -fig 3     # one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "render a single figure (1-4)")
	flag.Parse()
	render := func(n int) {
		switch n {
		case 1:
			bench.Figure1(os.Stdout)
		case 2:
			bench.Figure2(os.Stdout)
		case 3:
			bench.Floorplan(os.Stdout, bench.Sys32())
		case 4:
			bench.Floorplan(os.Stdout, bench.Sys64())
		default:
			fmt.Fprintf(os.Stderr, "floorplan: no figure %d\n", n)
			os.Exit(1)
		}
	}
	if *fig != 0 {
		render(*fig)
		return
	}
	for n := 1; n <= 4; n++ {
		render(n)
	}
}
