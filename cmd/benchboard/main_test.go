package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/bench/gate"
)

// snapshot writes a fake archived BENCH_sched.<sha>.json with one S4 row.
func snapshot(t *testing.T, dir, sha string, configMs float64, bytesStreamed uint64) {
	t.Helper()
	w := bench.NewWriter()
	bench.AddRecords(w, []bench.RegionRecord{{
		Base: bench.Base{
			Label: "paired", Policy: "mincost", Planner: true,
			ConfigMs: configMs, BytesStreamed: bytesStreamed, TolerancePct: 15,
		},
	}})
	if err := w.WriteFile(filepath.Join(dir, "BENCH_sched."+sha+".json")); err != nil {
		t.Fatal(err)
	}
}

func TestExtractIdempotent(t *testing.T) {
	dir := t.TempDir()
	history := filepath.Join(dir, "history.jsonl")
	snapshot(t, dir, "aaa111", 2.0, 1024)
	snapshot(t, dir, "bbb222", 2.1, 1024)
	os.WriteFile(filepath.Join(dir, "BENCH_other.json"), []byte("[]"), 0o644) // must be ignored

	added, files, err := extractSnapshots(history, dir)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if files != 2 || added != 6 {
		t.Fatalf("extracted files=%d added=%d, want 2 snapshots x 3 S4 metrics", files, added)
	}
	// Re-extraction appends nothing.
	added, files, err = extractSnapshots(history, dir)
	if err != nil || files != 2 || added != 0 {
		t.Fatalf("re-extract: err=%v files=%d added=%d, want idempotent no-op", err, files, added)
	}
	entries, skipped, err := gate.LoadEntries(history)
	if err != nil || skipped != 0 || len(entries) != 6 {
		t.Fatalf("history after double extract: err=%v skipped=%d n=%d", err, skipped, len(entries))
	}
}

func TestLoadChartsAndRegressionFlag(t *testing.T) {
	dir := t.TempDir()
	history := filepath.Join(dir, "history.jsonl")
	// Three commits of one deterministic S4 config: steady, steady, +50%
	// config-time regression that must trip the default 15% band.
	snapshot(t, dir, "aaa111", 2.0, 1024)
	snapshot(t, dir, "bbb222", 2.1, 1024)
	snapshot(t, dir, "ccc333", 3.0, 1024)
	if _, _, err := extractSnapshots(history, dir); err != nil {
		t.Fatal(err)
	}
	charts, skipped, err := loadCharts(history)
	if err != nil || skipped != 0 {
		t.Fatalf("loadCharts: err=%v skipped=%d", err, skipped)
	}
	if len(charts) != 3 {
		t.Fatalf("%d charts, want config_ms, bytes_streamed and hidden_ms", len(charts))
	}
	var cfg *chart
	for _, c := range charts {
		if c.metric == "config_ms" {
			cfg = c
		}
	}
	if cfg == nil || cfg.suite != "S4" || !cfg.det {
		t.Fatalf("config_ms chart missing or misclassified: %+v", cfg)
	}
	if len(cfg.shas) != 3 || cfg.shas[0] != "aaa111" || cfg.shas[2] != "ccc333" {
		t.Fatalf("sha axis %v, want commit order", cfg.shas)
	}
	pts := cfg.series[0].points
	if pts[0].flagged || pts[1].flagged {
		t.Errorf("steady points flagged: %+v", pts[:2])
	}
	if !pts[2].flagged {
		t.Errorf("+%.0f%% point not flagged as a regression: %+v", pts[2].deltaPct, pts[2])
	}
}

// TestLoadChartsRecordedVerdict: a benchdiff "fail" verdict flags the
// matching sample even when the predecessor band alone would pass.
func TestLoadChartsRecordedVerdict(t *testing.T) {
	history := filepath.Join(t.TempDir(), "history.jsonl")
	err := gate.AppendEntries(history, []gate.Entry{
		{SHA: "aaa111", Suite: "S4", Metric: "paired/config_ms", Value: 2.0, Unit: "ms", Deterministic: true},
		{SHA: "aaa111", Suite: "S4", Metric: "paired/config_ms", Value: 2.0, Unit: "ms", Deterministic: true, Verdict: "fail", DeltaPct: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	charts, _, err := loadCharts(history)
	if err != nil || len(charts) != 1 {
		t.Fatalf("charts: %v %d", err, len(charts))
	}
	if p := charts[0].series[0].points[0]; !p.flagged {
		t.Errorf("recorded benchdiff fail not surfaced: %+v", p)
	}
}

func TestMarkdownStableAcrossRenders(t *testing.T) {
	dir := t.TempDir()
	history := filepath.Join(dir, "history.jsonl")
	snapshot(t, dir, "aaa111", 2.0, 1024)
	snapshot(t, dir, "bbb222", 2.6, 2048)
	if _, _, err := extractSnapshots(history, dir); err != nil {
		t.Fatal(err)
	}
	md1 := filepath.Join(dir, "t1.md")
	md2 := filepath.Join(dir, "t2.md")
	for _, p := range []string{md1, md2} {
		charts, _, err := loadCharts(history)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeMarkdown(p, charts); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := os.ReadFile(md1)
	b, _ := os.ReadFile(md2)
	if !bytes.Equal(a, b) {
		t.Fatal("re-rendering the same history produced different markdown")
	}
	out := string(a)
	for _, want := range []string{"## S4 config_ms (ms)", "| aaa111 |", "| bbb222 |", "⚠"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestChartSVG(t *testing.T) {
	dir := t.TempDir()
	history := filepath.Join(dir, "history.jsonl")
	snapshot(t, dir, "aaa111", 2.0, 1024)
	snapshot(t, dir, "bbb222", 3.0, 1024)
	if _, _, err := extractSnapshots(history, dir); err != nil {
		t.Fatal(err)
	}
	charts, _, err := loadCharts(history)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range charts {
		svg := c.svg()
		for _, want := range []string{"<svg", "</svg>", "polyline", "<title>", c.suite} {
			if !strings.Contains(svg, want) {
				t.Errorf("chart %s: svg missing %q", c.fileName(), want)
			}
		}
	}
	var cfg *chart
	for _, c := range charts {
		if c.metric == "config_ms" {
			cfg = c
		}
	}
	if !strings.Contains(cfg.svg(), "REGRESSION") {
		t.Error("config_ms +50% chart carries no regression annotation")
	}
	if cfg.fileName() != "S4_config_ms" {
		t.Errorf("fileName %q", cfg.fileName())
	}
}

func TestBoardHandler(t *testing.T) {
	dir := t.TempDir()
	history := filepath.Join(dir, "history.jsonl")
	snapshot(t, dir, "aaa111", 2.0, 1024)
	if _, _, err := extractSnapshots(history, dir); err != nil {
		t.Fatal(err)
	}
	h := boardHandler(history)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"<svg", "Bench trajectory", "<details>", "paired"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Errorf("GET /nope: %d, want 404", rec.Code)
	}
}

func TestRunNothingToDo(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(nil, &out, &errw); code != 2 {
		t.Fatalf("bare run exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "nothing to do") {
		t.Errorf("stderr: %s", errw.String())
	}
}

func TestRunExtractAndMd(t *testing.T) {
	dir := t.TempDir()
	history := filepath.Join(dir, "history.jsonl")
	snapshot(t, dir, "aaa111", 2.0, 1024)
	md := filepath.Join(dir, "TRAJECTORY.md")
	svgDir := filepath.Join(dir, "board")
	var out, errw bytes.Buffer
	code := run([]string{"-history", history, "-extract", "-snapshots", dir, "-md", md, "-svg", svgDir}, &out, &errw)
	if code != 0 {
		t.Fatalf("run exit %d: %s", code, errw.String())
	}
	if _, err := os.Stat(md); err != nil {
		t.Errorf("markdown not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(svgDir, "S4_config_ms.svg")); err != nil {
		t.Errorf("svg not written: %v", err)
	}
}
