// Command benchboard turns the append-only per-commit metric history
// (artifacts/bench/history.jsonl) into the repo's perf trajectory — the
// config-time / wire-bytes / availability / sustained-rate curves across
// commits that a single BENCH_sched.json snapshot cannot show.
//
//   - -extract walks the archived per-commit snapshots
//     (artifacts/bench/BENCH_sched.<sha>.json) and appends any metrics
//     the history does not hold yet, so the store can be rebuilt from
//     snapshots at any time (idempotent: re-running appends nothing).
//
//   - -md renders a static EXPERIMENTS-style trajectory table per suite
//     and metric; -svg writes one chart per (suite, metric) beside it.
//
//   - -serve starts a small HTTP server plotting the same charts as
//     inline SVG, one polyline per configuration label, re-reading the
//     history on every request.
//
// Regression annotation comes from the same band math as the CI gate
// (internal/bench/gate): a point that would fail cmd/benchdiff's
// tolerance against its predecessor is flagged, as is any point whose
// recorded benchdiff verdict was "fail".
//
// Usage:
//
//	benchboard -extract
//	benchboard -extract -md artifacts/bench/board/TRAJECTORY.md -svg artifacts/bench/board
//	benchboard -serve localhost:8321
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/bench/gate"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("benchboard", flag.ContinueOnError)
	fs.SetOutput(errw)
	historyPath := fs.String("history", "artifacts/bench/history.jsonl", "per-commit metric history (JSONL)")
	extract := fs.Bool("extract", false, "lift archived snapshots into the history file")
	snapshots := fs.String("snapshots", "artifacts/bench", "snapshot directory for -extract (BENCH_sched.<sha>.json)")
	mdPath := fs.String("md", "", "render the trajectory as a markdown table to this file")
	readmePath := fs.String("readme", "", "refresh the per-metric sparkline section of this markdown file (between benchboard markers; created if missing)")
	svgDir := fs.String("svg", "", "write one SVG chart per (suite, metric) into this directory")
	serveAddr := fs.String("serve", "", "serve the trajectory dashboard on this address (e.g. localhost:8321)")
	pruneN := fs.Int("prune", 0, "keep only the newest N archived snapshots in the -snapshots directory (0 = keep all; history.jsonl retains the full trajectory)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *pruneN < 0 {
		fmt.Fprintf(errw, "benchboard: -prune %d: keep a non-negative snapshot count\n", *pruneN)
		return 2
	}
	if !*extract && *mdPath == "" && *readmePath == "" && *svgDir == "" && *serveAddr == "" && *pruneN == 0 {
		fmt.Fprintln(errw, "benchboard: nothing to do — pass -extract, -md, -readme, -svg, -prune and/or -serve")
		return 2
	}
	if *extract {
		added, files, err := extractSnapshots(*historyPath, *snapshots)
		if err != nil {
			fmt.Fprintln(errw, "benchboard:", err)
			return 1
		}
		fmt.Fprintf(out, "extracted %d snapshot(s): %d new metric(s) appended to %s\n", files, added, *historyPath)
	}
	if *pruneN > 0 {
		// Prune after -extract so a snapshot's metrics always reach the
		// history before its file goes.
		removed, kept, err := pruneSnapshots(*snapshots, *pruneN)
		if err != nil {
			fmt.Fprintln(errw, "benchboard:", err)
			return 1
		}
		fmt.Fprintf(out, "pruned %d snapshot(s), kept the newest %d in %s\n", removed, kept, *snapshots)
	}
	if *mdPath != "" || *readmePath != "" || *svgDir != "" {
		charts, skipped, err := loadCharts(*historyPath)
		if err != nil {
			fmt.Fprintln(errw, "benchboard:", err)
			return 1
		}
		if skipped > 0 {
			fmt.Fprintf(out, "benchboard: skipped %d damaged history line(s)\n", skipped)
		}
		if len(charts) == 0 {
			fmt.Fprintf(errw, "benchboard: %s holds no metrics — run -extract or `make bench` first\n", *historyPath)
			return 1
		}
		if *mdPath != "" {
			if err := writeMarkdown(*mdPath, charts); err != nil {
				fmt.Fprintln(errw, "benchboard:", err)
				return 1
			}
			fmt.Fprintf(out, "wrote %s (%d chart(s))\n", *mdPath, len(charts))
		}
		if *readmePath != "" {
			if err := updateReadme(*readmePath, charts); err != nil {
				fmt.Fprintln(errw, "benchboard:", err)
				return 1
			}
			fmt.Fprintf(out, "refreshed sparklines in %s (%d chart(s))\n", *readmePath, len(charts))
		}
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				fmt.Fprintln(errw, "benchboard:", err)
				return 1
			}
			for _, c := range charts {
				path := filepath.Join(*svgDir, c.fileName()+".svg")
				if err := os.WriteFile(path, []byte(c.svg()), 0o644); err != nil {
					fmt.Fprintln(errw, "benchboard:", err)
					return 1
				}
			}
			fmt.Fprintf(out, "wrote %d chart(s) to %s\n", len(charts), *svgDir)
		}
	}
	if *serveAddr != "" {
		fmt.Fprintf(out, "benchboard: serving http://%s/ from %s\n", *serveAddr, *historyPath)
		if err := http.ListenAndServe(*serveAddr, boardHandler(*historyPath)); err != nil {
			fmt.Fprintln(errw, "benchboard:", err)
			return 1
		}
	}
	return 0
}

// snapshotRe matches archived per-commit snapshots.
var snapshotRe = regexp.MustCompile(`^BENCH_sched\.([0-9a-f]{6,40})\.json$`)

// extractSnapshots lifts every archived snapshot's metrics into the
// history, in commit order where git can resolve it (filename order
// otherwise), skipping (sha, suite, metric) keys the history already
// holds so re-extraction is idempotent.
func extractSnapshots(historyPath, dir string) (added, files int, err error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, err
	}
	var shas []string
	for _, e := range names {
		if m := snapshotRe.FindStringSubmatch(e.Name()); m != nil {
			shas = append(shas, m[1])
		}
	}
	sort.Strings(shas)
	shas = gitOrder(dir, shas)
	existing, _, err := gate.LoadEntries(historyPath)
	if err != nil {
		return 0, 0, err
	}
	seen := make(map[string]bool, len(existing))
	for _, e := range existing {
		if e.Verdict == "" {
			seen[e.SHA+"\x00"+e.Suite+"\x00"+e.Metric] = true
		}
	}
	for _, sha := range shas {
		data, err := os.ReadFile(filepath.Join(dir, "BENCH_sched."+sha+".json"))
		if err != nil {
			return added, files, err
		}
		recs, err := bench.DecodeRecords(data)
		if err != nil {
			return added, files, fmt.Errorf("%s: %w", sha, err)
		}
		files++
		var fresh []gate.Entry
		for _, e := range bench.NewWriter(recs...).HistoryEntries(sha) {
			k := e.SHA + "\x00" + e.Suite + "\x00" + e.Metric
			if !seen[k] {
				seen[k] = true
				fresh = append(fresh, e)
			}
		}
		if err := gate.AppendEntries(historyPath, fresh); err != nil {
			return added, files, err
		}
		added += len(fresh)
	}
	return added, files, nil
}

// pruneSnapshots deletes all but the newest keep archived snapshots from
// dir, in the same commit order -extract uses (git first-parent order
// where resolvable, filename order otherwise). The history store already
// carries every pruned snapshot's metrics, so retention only bounds the
// artifact directory's growth, never the trajectory.
func pruneSnapshots(dir string, keep int) (removed, kept int, err error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, err
	}
	var shas []string
	for _, e := range names {
		if m := snapshotRe.FindStringSubmatch(e.Name()); m != nil {
			shas = append(shas, m[1])
		}
	}
	sort.Strings(shas)
	shas = gitOrder(dir, shas) // oldest first
	if len(shas) <= keep {
		return 0, len(shas), nil
	}
	for _, sha := range shas[:len(shas)-keep] {
		if err := os.Remove(filepath.Join(dir, "BENCH_sched."+sha+".json")); err != nil {
			return removed, keep, err
		}
		removed++
	}
	return removed, keep, nil
}

// gitOrder sorts short SHAs into first-parent commit order when the
// directory sits inside a git checkout that knows them; SHAs git cannot
// resolve (and the whole list, outside a checkout) keep their incoming
// order at the front — oldest-first extraction only needs to be stable,
// not perfect.
func gitOrder(dir string, shas []string) []string {
	cmd := exec.Command("git", "-C", dir, "rev-list", "--first-parent", "--reverse", "HEAD")
	raw, err := cmd.Output()
	if err != nil {
		return shas
	}
	pos := make(map[string]int, len(shas))
	for i, full := range strings.Fields(string(raw)) {
		for _, s := range shas {
			if strings.HasPrefix(full, s) {
				pos[s] = i + 1
			}
		}
	}
	ordered := append([]string(nil), shas...)
	sort.SliceStable(ordered, func(i, j int) bool { return pos[ordered[i]] < pos[ordered[j]] })
	return ordered
}
