package main

import (
	"fmt"
	"html"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bench/gate"
)

// point is one commit's value of one series, with its regression verdict.
type point struct {
	sha      string
	value    float64
	flagged  bool    // fails the gate band vs its predecessor (or a recorded benchdiff fail)
	deltaPct float64 // vs predecessor (0 for the first point / zero baseline)
}

// series is one configuration label's trajectory within a chart.
type series struct {
	label  string
	points []point
}

// chart is one (suite, metric) panel: every label's trajectory over the
// commits that measured it.
type chart struct {
	suite  string
	metric string
	unit   string
	det    bool
	shas   []string // x axis, commit order of the history file
	series []series // first-appearance order, stable as history grows
}

func (c *chart) fileName() string {
	return c.suite + "_" + strings.NewReplacer("/", "-", " ", "-").Replace(c.metric)
}

func (c *chart) title() string {
	t := c.suite + " " + c.metric
	if c.unit != "" {
		t += " (" + c.unit + ")"
	}
	if !c.det {
		t += " — host-dependent, informational"
	}
	return t
}

// metricOrder fixes the panel order within a suite: the CI-gated pair
// first, then the derived qualities.
var metricOrder = []string{
	"config_ms", "bytes_streamed", "hidden_ms", "overlap_ms",
	"availability", "repair_ms", "throughput_rps", "sim_throughput_rps",
	"p50_ms", "p95_ms", "p99_ms",
}

func metricRank(name string) int {
	for i, m := range metricOrder {
		if m == name {
			return i
		}
	}
	return len(metricOrder)
}

// higherBetter classifies each metric's regression direction: hidden and
// overlapped config time, availability and throughput regress by FALLING;
// everything else (times, bytes) regresses by growing.
func higherBetter(metric string) bool {
	switch metric {
	case "availability", "throughput_rps", "sim_throughput_rps", "hidden_ms", "overlap_ms":
		return true
	default:
		return false
	}
}

// zeroEps is the absolute band for zero-baseline predecessor checks.
func zeroEps(metric string) float64 {
	switch metric {
	case "bytes_streamed":
		return gate.BytesZeroEps
	default:
		return gate.ConfigMsZeroEps
	}
}

// loadCharts reads the history and assembles the chart panels. Sample
// entries (no verdict) carry the values; benchdiff verdict entries only
// contribute their recorded failures as flags.
func loadCharts(path string) ([]*chart, int, error) {
	entries, skipped, err := gate.LoadEntries(path)
	if err != nil {
		return nil, skipped, err
	}
	type sampleKey struct{ sha, suite, metric string }
	samples := make(map[sampleKey]gate.Entry)
	failed := make(map[sampleKey]bool)
	var keyOrder []sampleKey // file order of first appearance — keeps charts deterministic
	var shaOrder []string
	shaSeen := make(map[string]bool)
	for _, e := range entries {
		k := sampleKey{e.SHA, e.Suite, e.Metric}
		if e.Verdict != "" {
			if e.Verdict == "fail" {
				failed[k] = true
			}
			continue
		}
		// Last write wins: a re-run of the same commit refreshes its row.
		if _, seen := samples[k]; !seen {
			keyOrder = append(keyOrder, k)
		}
		samples[k] = e
		if !shaSeen[e.SHA] {
			shaSeen[e.SHA] = true
			shaOrder = append(shaOrder, e.SHA)
		}
	}

	type chartKey struct{ suite, name string }
	byChart := make(map[chartKey]*chart)
	var chartOrder []chartKey
	labelSeen := make(map[chartKey]map[string]int)
	for _, sha := range shaOrder {
		for _, k := range keyOrder {
			if k.sha != sha {
				continue
			}
			e := samples[k]
			label, name := gate.SplitMetric(e.Metric)
			ck := chartKey{e.Suite, name}
			c := byChart[ck]
			if c == nil {
				c = &chart{suite: e.Suite, metric: name, unit: e.Unit, det: e.Deterministic}
				byChart[ck] = c
				chartOrder = append(chartOrder, ck)
				labelSeen[ck] = make(map[string]int)
			}
			if _, ok := labelSeen[ck][label]; !ok {
				labelSeen[ck][label] = len(c.series)
				c.series = append(c.series, series{label: label})
			}
			si := labelSeen[ck][label]
			c.series[si].points = append(c.series[si].points, point{sha: sha, value: e.Value, flagged: failed[k]})
		}
	}
	charts := make([]*chart, 0, len(byChart))
	for _, ck := range chartOrder {
		c := byChart[ck]
		for i := range c.series {
			annotate(c, &c.series[i])
		}
		shaIn := make(map[string]bool)
		for _, s := range c.series {
			for _, p := range s.points {
				shaIn[p.sha] = true
			}
		}
		for _, sha := range shaOrder {
			if shaIn[sha] {
				c.shas = append(c.shas, sha)
			}
		}
		charts = append(charts, c)
	}
	sort.SliceStable(charts, func(i, j int) bool {
		if charts[i].suite != charts[j].suite {
			return charts[i].suite < charts[j].suite
		}
		return metricRank(charts[i].metric) < metricRank(charts[j].metric)
	})
	return charts, skipped, nil
}

// annotate runs the gate band between consecutive points of a series —
// the same math cmd/benchdiff applies between fresh run and baseline.
func annotate(c *chart, s *series) {
	for i := 1; i < len(s.points); i++ {
		prev, cur := s.points[i-1].value, s.points[i].value
		// The per-row tolerance rode the sample entry; a missing one means
		// the gate default. History entries do not carry it per point, so
		// the band is resolved per metric sample when present.
		allowed := gate.Allowed(0)
		var v gate.Verdict
		if higherBetter(c.metric) {
			v = gate.CheckHigherBetter(prev, cur, allowed)
		} else {
			v = gate.Check(prev, cur, allowed, zeroEps(c.metric))
		}
		s.points[i].deltaPct = v.DeltaPct
		if !v.Pass {
			s.points[i].flagged = true
		}
	}
}

// fmtValue renders a value for tables and tooltips in its unit's natural
// precision.
func fmtValue(v float64, unit string) string {
	switch unit {
	case "B":
		return fmt.Sprintf("%.0f", v)
	case "req/s":
		return fmt.Sprintf("%.0f", v)
	case "frac":
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// writeMarkdown renders every chart as an EXPERIMENTS-style table: one
// row per commit, one column per configuration label, regressions marked
// with the ⚠ the CI gate would raise.
func writeMarkdown(path string, charts []*chart) error {
	var b strings.Builder
	b.WriteString("# Bench trajectory\n\n")
	b.WriteString("Rendered by `cmd/benchboard -md` from the per-commit history store\n")
	b.WriteString("(`artifacts/bench/history.jsonl`). A ⚠ marks a point that fails the\n")
	b.WriteString("CI gate's tolerance band (internal/bench/gate) against its\n")
	b.WriteString("predecessor — the same math `cmd/benchdiff` applies in CI.\n")
	for _, c := range charts {
		fmt.Fprintf(&b, "\n## %s\n\n", c.title())
		b.WriteString("| commit |")
		for _, s := range c.series {
			fmt.Fprintf(&b, " %s |", s.label)
		}
		b.WriteString("\n|---|")
		b.WriteString(strings.Repeat("---|", len(c.series)))
		b.WriteString("\n")
		for _, sha := range c.shas {
			fmt.Fprintf(&b, "| %s |", sha)
			for _, s := range c.series {
				cell := ""
				for _, p := range s.points {
					if p.sha == sha {
						cell = fmtValue(p.value, c.unit)
						if p.flagged {
							cell = "**" + cell + "** ⚠"
						}
						break
					}
				}
				fmt.Fprintf(&b, " %s |", cell)
			}
			b.WriteString("\n")
		}
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// sparkTicks are the eight block glyphs a sparkline quantizes into.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders a value series as one glyph per commit, scaled to the
// series' own min/max; a flat series renders mid-height. A glyph train is
// a trend cue, not a reading — the precise values stay in the trajectory
// table and the dashboard.
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		i := len(sparkTicks) / 2
		if hi > lo {
			i = int((v-lo)/(hi-lo)*float64(len(sparkTicks)-1) + 0.5)
		}
		b.WriteRune(sparkTicks[i])
	}
	return b.String()
}

// The sparkline section of a README is regenerated in place between these
// markers; everything outside them is hand-written and untouched.
const (
	readmeBegin = "<!-- benchboard:sparklines:begin -->"
	readmeEnd   = "<!-- benchboard:sparklines:end -->"
)

// sparklineSection renders the per-metric sparkline table: one row per
// (suite, metric, configuration), trend over the commits that measured
// it, newest value last.
func sparklineSection(charts []*chart) string {
	var b strings.Builder
	b.WriteString(readmeBegin + "\n")
	b.WriteString("### Bench trajectory\n\n")
	b.WriteString("Per-commit metric sparklines from `artifacts/bench/history.jsonl`,\n")
	b.WriteString("refreshed by `cmd/benchboard -readme` (wired into `make bench`). A ⚠ row\n")
	b.WriteString("ends on a point the CI gate band would fail; host-dependent suites are\n")
	b.WriteString("marked (host). Full curves: `make benchboard`.\n\n")
	b.WriteString("| suite | metric | configuration | trend | latest |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, c := range charts {
		metric := c.metric
		if c.unit != "" {
			metric += " (" + c.unit + ")"
		}
		if !c.det {
			metric += " (host)"
		}
		for _, s := range c.series {
			if len(s.points) == 0 {
				continue
			}
			vals := make([]float64, len(s.points))
			for i, p := range s.points {
				vals[i] = p.value
			}
			last := s.points[len(s.points)-1]
			latest := fmtValue(last.value, c.unit)
			if last.flagged {
				latest += " ⚠"
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
				c.suite, metric, s.label, sparkline(vals), latest)
		}
	}
	b.WriteString(readmeEnd + "\n")
	return b.String()
}

// updateReadme regenerates the sparkline section of the markdown file in
// place: between the benchboard markers when present, appended when the
// file exists without them, and as a fresh README otherwise.
func updateReadme(path string, charts []*chart) error {
	section := sparklineSection(charts)
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		data = []byte("# repro\n\nGrown reproduction of the paper's reconfiguration scheduler;\nsee DESIGN.md and EXPERIMENTS.md.\n\n" + section)
	case err != nil:
		return err
	default:
		text := string(data)
		begin := strings.Index(text, readmeBegin)
		end := strings.Index(text, readmeEnd)
		if begin >= 0 && end > begin {
			text = text[:begin] + section + strings.TrimPrefix(text[end+len(readmeEnd):], "\n")
		} else {
			if !strings.HasSuffix(text, "\n") {
				text += "\n"
			}
			text += "\n" + section
		}
		data = []byte(text)
	}
	return os.WriteFile(path, data, 0o644)
}

// seriesColors is a validated categorical palette (fixed assignment
// order, never cycled): adjacent-pair CVD ΔE ≥ 8 and normal-vision ΔE ≥
// 15 on the light surface. Identity is never color-alone — every chart
// ships a text legend, per-point tooltips and the table view.
var seriesColors = []string{
	"#2a78d6", // blue
	"#eb6834", // orange
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#e87ba4", // magenta
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
}

// maxSeries caps the polylines per chart; further labels fold into the
// table view rather than getting a ninth generated hue.
const maxSeries = 8

const (
	chartW  = 760
	chartH  = 300
	marginL = 64
	marginR = 16
	marginT = 28
	marginB = 48
	flagRed = "#c8321f" // status serious: regression rings and ⚠ labels
	inkMain = "#0b0b0b"
	inkSub  = "#52514e"
	surface = "#fcfcfb"
	grid    = "#e8e7e4"
)

// svg renders the chart as a standalone SVG document: one 2px polyline
// per label, 8px markers, a regression ring + ⚠ on flagged points, a
// recessive grid, and a text legend. Tooltips ride native <title>
// elements so the inline dashboard gets a hover layer for free.
func (c *chart) svg() string {
	plotW := float64(chartW - marginL - marginR)
	plotH := float64(chartH - marginT - marginB)
	shown := c.series
	folded := 0
	if len(shown) > maxSeries {
		folded = len(shown) - maxSeries
		shown = shown[:maxSeries]
	}
	maxV := 0.0
	for _, s := range shown {
		for _, p := range s.points {
			if p.value > maxV {
				maxV = p.value
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	maxV *= 1.08
	xAt := func(sha string) float64 {
		if len(c.shas) == 1 {
			return float64(marginL) + plotW/2
		}
		for i, s := range c.shas {
			if s == sha {
				return float64(marginL) + plotW*float64(i)/float64(len(c.shas)-1)
			}
		}
		return float64(marginL)
	}
	yAt := func(v float64) float64 { return float64(marginT) + plotH*(1-v/maxV) }

	legendRows := (len(shown) + 2) / 3
	extraH := 18*legendRows + 8
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`,
		chartW, chartH+extraH, chartW, chartH+extraH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`, chartW, chartH+extraH, surface)
	fmt.Fprintf(&b, `<text x="%d" y="18" fill="%s" font-size="13" font-weight="600">%s</text>`,
		marginL, inkMain, esc(c.title()))
	// Recessive grid: four horizontal rules with axis values.
	for i := 0; i <= 4; i++ {
		v := maxV * float64(i) / 4
		y := yAt(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`,
			marginL, y, chartW-marginR, y, grid)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" fill="%s" font-size="10" text-anchor="end">%s</text>`,
			marginL-6, y+3, inkSub, esc(fmtValue(v, c.unit)))
	}
	// Commit axis (label centers clamped so edge labels stay inside the
	// viewBox).
	for _, sha := range c.shas {
		x := xAt(sha)
		if lim := float64(chartW) - 24; x > lim {
			x = lim
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="%s" font-size="10" text-anchor="middle">%s</text>`,
			x, chartH-marginB+16, inkSub, esc(sha))
	}
	for si, s := range shown {
		color := seriesColors[si]
		var pts []string
		for _, p := range s.points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xAt(p.sha), yAt(p.value)))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
				strings.Join(pts, " "), color)
		}
		for _, p := range s.points {
			x, y := xAt(p.sha), yAt(p.value)
			tip := fmt.Sprintf("%s @ %s: %s %s", s.label, p.sha, fmtValue(p.value, c.unit), c.unit)
			if p.deltaPct != 0 {
				tip += fmt.Sprintf(" (%+.1f%%)", p.deltaPct)
			}
			if p.flagged {
				tip += " — REGRESSION past gate band"
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="7" fill="none" stroke="%s" stroke-width="2"/>`,
					x, y, flagRed)
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" fill="%s" font-size="11" text-anchor="middle">&#9888;</text>`,
					x, y-10, flagRed)
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"><title>%s</title></circle>`,
				x, y, color, esc(tip))
		}
	}
	// Text legend (identity never rides color alone).
	for si, s := range shown {
		lx := marginL + (si%3)*230
		ly := chartH + 10 + (si/3)*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			lx, ly, lx+16, ly, seriesColors[si])
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s" font-size="11">%s</text>`,
			lx+22, ly+4, inkSub, esc(s.label))
	}
	if folded > 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s" font-size="11">… %d more series in the table view</text>`,
			marginL, chartH+10+legendRows*18, inkSub, folded)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func esc(s string) string { return html.EscapeString(s) }

// boardHandler serves the dashboard, re-reading the history per request
// so a long-lived server picks up fresh appends.
func boardHandler(historyPath string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		charts, _, err := loadCharts(historyPath)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		var b strings.Builder
		b.WriteString(`<!doctype html><html><head><meta charset="utf-8"><title>benchboard</title>`)
		fmt.Fprintf(&b, `<style>body{font-family:system-ui,sans-serif;background:%s;color:%s;margin:24px;max-width:820px}
h1{font-size:20px}h2{font-size:15px;margin-top:28px}table{border-collapse:collapse;font-size:12px}
td,th{border:1px solid %s;padding:3px 8px;text-align:right}th{color:%s}
.flag{color:%s;font-weight:600}details{margin:6px 0 18px}</style></head><body>`,
			surface, inkMain, grid, inkSub, flagRed)
		b.WriteString(`<h1>Bench trajectory</h1><p>Per-commit metrics from <code>`)
		b.WriteString(esc(historyPath))
		b.WriteString(`</code>; a ⚠-ringed point fails the CI gate band (internal/bench/gate) vs its predecessor.</p>`)
		if len(charts) == 0 {
			b.WriteString(`<p>No metrics yet — run <code>benchboard -extract</code> or <code>make bench</code>.</p>`)
		}
		for _, c := range charts {
			b.WriteString(c.svg())
			// Table view: the relief layer for every series and any folded
			// beyond the palette cap.
			b.WriteString(`<details><summary>table</summary><table><tr><th>commit</th>`)
			for _, s := range c.series {
				fmt.Fprintf(&b, "<th>%s</th>", esc(s.label))
			}
			b.WriteString("</tr>")
			for _, sha := range c.shas {
				fmt.Fprintf(&b, "<tr><td>%s</td>", esc(sha))
				for _, s := range c.series {
					cell, class := "", ""
					for _, p := range s.points {
						if p.sha == sha {
							cell = fmtValue(p.value, c.unit)
							if p.flagged {
								cell += " ⚠"
								class = ` class="flag"`
							}
							break
						}
					}
					fmt.Fprintf(&b, "<td%s>%s</td>", class, cell)
				}
				b.WriteString("</tr>")
			}
			b.WriteString(`</table></details>`)
		}
		b.WriteString(`</body></html>`)
		io.WriteString(w, b.String())
	})
}
