package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallWorkload(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-sys32", "1", "-n", "6", "-mix", "brightness=1,fade=1", "-seed", "3", "-v"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{"S1 —", "bitstream cache hit rate", "member 0 (sys32)", "total", "6"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunRejectsBadMix(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-mix", "nosuchtask=1"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown task") {
		t.Errorf("stderr: %s", errw.String())
	}
}

func TestRunFailsUnsupportedModule(t *testing.T) {
	// sha1 on a pure 32-bit pool: requests must fail, exit code 1.
	var out, errw bytes.Buffer
	if code := run([]string{"-sys32", "1", "-n", "2", "-mix", "sha1=1"}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1, stderr:\n%s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "no member supports") {
		t.Errorf("stderr: %s", errw.String())
	}
}
