package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallWorkload(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-sys32", "1", "-n", "6", "-mix", "brightness=1,fade=1", "-seed", "3", "-v"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{"S1 —", "bitstream cache hit rate", "member 0 (sys32)", "total", "6"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunFlagAndMixParsing is the table-driven gate on the front-end's
// argument surface: every malformed -mix shape, unknown names for the
// pluggable pieces, and the -compare flag exclusions must be rejected with
// exit code 2 and a diagnostic naming the problem.
func TestRunFlagAndMixParsing(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown task", []string{"-mix", "nosuchtask=1"}, "unknown task"},
		{"zero weight", []string{"-mix", "jenkins=0"}, "bad weight"},
		{"negative weight", []string{"-mix", "jenkins=-2"}, "bad weight"},
		{"non-numeric weight", []string{"-mix", "jenkins=lots"}, "bad weight"},
		{"empty mix", []string{"-mix", ""}, "empty workload mix"},
		{"only separators", []string{"-mix", ",,,"}, "empty workload mix"},
		{"bare equals", []string{"-mix", "=3"}, "unknown task"},
		{"unknown policy", []string{"-policy", "psychic"}, "unknown placement policy"},
		{"unknown predictor", []string{"-prefetch", "-predictor", "oracle"}, "unknown predictor"},
		{"compare excludes policy", []string{"-compare", "-policy", "mincost"}, "-compare"},
		{"compare excludes plan", []string{"-compare", "-plan=false"}, "-compare"},
		{"compare excludes prefetch", []string{"-compare", "-prefetch"}, "-compare"},
		{"compare excludes window", []string{"-compare", "-window", "2"}, "-compare"},
		{"compare excludes regions", []string{"-compare", "-regions", "2"}, "-compare"},
		{"zero regions", []string{"-regions", "0"}, "at least one region"},
		{"oversplit regions", []string{"-sys32", "1", "-regions", "20", "-n", "2"}, "cannot host"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			if code := run(tc.args, &out, &errw); code != 2 {
				t.Fatalf("exit %d, want 2; stderr:\n%s", code, errw.String())
			}
			if !strings.Contains(errw.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, errw.String())
			}
		})
	}
}

// TestRunMixVariants: accepted -mix spellings parse to runnable workloads.
func TestRunMixVariants(t *testing.T) {
	cases := []struct {
		name string
		mix  string
	}{
		{"bare name weight 1", "fade"},
		{"mixed bare and weighted", "fade,brightness=2"},
		{"spaces around separators", " fade=2 , brightness=1 "},
		{"trailing comma", "fade=1,"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			if code := run([]string{"-sys32", "1", "-n", "2", "-mix", tc.mix}, &out, &errw); code != 0 {
				t.Fatalf("exit %d for mix %q, stderr:\n%s", code, tc.mix, errw.String())
			}
		})
	}
}

func TestRunFailsUnsupportedModule(t *testing.T) {
	// sha1 on a pure 32-bit pool: requests must fail, exit code 1.
	var out, errw bytes.Buffer
	if code := run([]string{"-sys32", "1", "-n", "2", "-mix", "sha1=1"}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1, stderr:\n%s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "no slot supports") {
		t.Errorf("stderr: %s", errw.String())
	}
}

// TestRunPrefetchWindowed drives the prefetch pipeline through the CLI
// surface: windowed submission, prefetch summary line, and the per-member
// aborted-load counter in the final state report.
func TestRunPrefetchWindowed(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-sys32", "2", "-n", "10", "-mix", "brightness=1,fade=1,blend=1",
		"-seed", "5", "-policy", "prefetch", "-prefetch", "-predictor", "freq", "-window", "1"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{"prefetch on (freq)", "prefetch:", "hidden config", "aborted)", "policy prefetch"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunDualRegions drives a small workload over dual-region members and
// checks the per-region member report lines.
func TestRunDualRegions(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-sys32", "0", "-sys64", "1", "-regions", "2", "-n", "6",
		"-mix", "brightness=1,fade=1", "-policy", "mincost", "-seed", "3"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{"member 0 (sys64x2) dynamic64.a", "member 0 (sys64x2) dynamic64.b", "bitstream cache hit rate"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunFloorplanSubcommand prints the pool's floorplans and exits.
func TestRunFloorplanSubcommand(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-sys32", "1", "-sys64", "1", "-regions", "2", "floorplan"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{"floorplan of sys32x2", "floorplan of sys64x2",
		"dynamic area dynamic64.a", "dynamic area dynamic32.b", "ICAP stream addressing"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunArrivals appends the open-loop S5 latency table.
func TestRunArrivals(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-sys32", "1", "-n", "6", "-mix", "brightness=1,fade=1",
		"-seed", "3", "-arrivals"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{"S5 —", "poisson", "bursty", "p99"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
