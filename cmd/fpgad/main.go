// Command fpgad is the scheduler front-end: it boots a pool of simulated
// platforms and drives a configurable workload mix through the
// reconfiguration scheduler, then reports per-module throughput, the
// bitstream-cache hit rate, the streams the planner chose and each
// member's final state.
//
// Usage:
//
//	fpgad                                        # default mixed workload
//	fpgad -sys32 2 -sys64 2 -n 64 -mix "sha1=1,jenkins=2,fade=3"
//	fpgad -batch 1 -v                            # strict FIFO, per-request log
//	fpgad -policy mincost                        # cost-aware placement
//	fpgad -plan=false                            # complete streams only
//	fpgad -compare -json BENCH_sched.json        # S2 policy comparison
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/pool"
	"repro/internal/sched"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("fpgad", flag.ContinueOnError)
	fs.SetOutput(errw)
	sys32 := fs.Int("sys32", 2, "32-bit systems in the pool")
	sys64 := fs.Int("sys64", 0, "64-bit systems in the pool")
	n := fs.Int("n", 16, "number of requests")
	mixSpec := fs.String("mix", "brightness=2,blend=1,fade=2,jenkins=1",
		"workload mix as name=weight,... (tasks: "+fmt.Sprint(sched.TaskNames())+")")
	batch := fs.Int("batch", 4, "same-module batch window (1 = strict FIFO)")
	seed := fs.Int64("seed", 1, "workload seed")
	policyName := fs.String("policy", "lru",
		"placement policy on a cache miss ("+strings.Join(sched.PolicyNames(), ", ")+")")
	planOn := fs.Bool("plan", true,
		"plan differential streams against verified resident state (false = complete streams only)")
	compare := fs.Bool("compare", false,
		"run the S2 placement comparison (complete-only vs planner-backed) instead of a single run")
	jsonPath := fs.String("json", "", "write machine-readable per-policy records to this file")
	verbose := fs.Bool("v", false, "log every request")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	spec := bench.PlacementSpec{
		Pool:  pool.Config{Sys32: *sys32, Sys64: *sys64},
		Seed:  *seed,
		N:     *n,
		Mix:   *mixSpec,
		Batch: *batch,
	}
	policy, err := sched.PolicyByName(*policyName)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 2
	}
	mix, err := sched.ParseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 2
	}
	if *compare {
		// The comparison sweeps every policy × stream-mode configuration
		// itself, so a single-run selection would be misleading.
		if *policyName != "lru" || !*planOn {
			fmt.Fprintln(errw, "fpgad: -compare runs all placement configurations; -policy/-plan only apply to single runs")
			return 2
		}
		return runCompare(spec, *jsonPath, out, errw)
	}
	w, err := sched.GenWorkload(*seed, *n, mix)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 2
	}
	p, err := pool.New(spec.Pool)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 2
	}
	p.SetPlanning(*planOn)
	streams := "planned (differential where safe)"
	if !*planOn {
		streams = "complete only"
	}
	fmt.Fprintf(out, "pool: %d member(s); workload: %d request(s), mix %s, batch %d, policy %s, streams %s\n\n",
		p.Size(), *n, *mixSpec, *batch, policy.Name(), streams)

	s := sched.New(p, sched.Options{Batch: *batch, Policy: policy})
	failed := 0
	for _, ch := range s.SubmitAll(w) {
		r := <-ch
		if r.Err != nil {
			failed++
			fmt.Fprintf(errw, "fpgad: request %d (%s): %v\n", r.ID, r.Task, r.Err)
			continue
		}
		if *verbose {
			fmt.Fprintf(out, "req %3d %-20s member %d (%s)  stream %-12s %8d B  config %-12v work %v\n",
				r.ID, r.Task, r.Member, r.System, r.Report.Kind, r.Report.BytesStreamed,
				r.Report.Config, r.Report.Work)
		}
	}
	s.Wait()
	if *verbose {
		fmt.Fprintln(out)
	}
	st := s.Stats()
	bench.ThroughputTable(st).Format(out)
	for _, m := range p.Snapshot() {
		state := "intact"
		if m.Corrupted {
			state = "CORRUPTED"
		}
		resident := m.Resident
		if resident == "" {
			resident = "(blank)"
		}
		fmt.Fprintf(out, "member %d (%s): resident %-14s loads %-3d (%d complete / %d diff)  config time %-12v static %s\n",
			m.ID, m.System, resident, m.Loads, m.CompleteLoads, m.DiffLoads, m.LoadTime, state)
	}
	if *jsonPath != "" {
		// Same label scheme as the -compare records, so trajectory
		// consumers see one series per configuration.
		label := policy.Name() + "+complete-only"
		if *planOn {
			label = policy.Name() + "+planner"
		}
		run := bench.PlacementRun{Label: label, Policy: policy.Name(), Planner: *planOn, Stats: st}
		if err := writeRecords(*jsonPath, bench.PlacementRecords([]bench.PlacementRun{run})); err != nil {
			fmt.Fprintln(errw, "fpgad:", err)
			return 1
		}
		fmt.Fprintf(out, "\nwrote %s\n", *jsonPath)
	}
	if failed > 0 {
		fmt.Fprintf(errw, "fpgad: %d request(s) failed\n", failed)
		return 1
	}
	return 0
}

// runCompare drives the same seeded workload under each placement
// configuration and renders table S2 (optionally emitting JSON records).
func runCompare(spec bench.PlacementSpec, jsonPath string, out, errw io.Writer) int {
	fmt.Fprintf(out, "comparing placement configurations on the same workload: pool %d+%d, %d request(s), mix %s, batch %d, seed %d\n\n",
		spec.Pool.Sys32, spec.Pool.Sys64, spec.N, spec.Mix, spec.Batch, spec.Seed)
	runs, err := bench.PlacementRuns(spec)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 1
	}
	bench.PlacementTable(runs).Format(out)
	if jsonPath != "" {
		if err := writeRecords(jsonPath, bench.PlacementRecords(runs)); err != nil {
			fmt.Fprintln(errw, "fpgad:", err)
			return 1
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return 0
}

func writeRecords(path string, recs []bench.PlacementRecord) error {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
