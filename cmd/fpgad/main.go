// Command fpgad is the scheduler front-end: it boots a pool of simulated
// platforms and drives a configurable workload mix through the
// reconfiguration scheduler, then reports per-module throughput, the
// bitstream-cache hit rate, the streams the planner chose, prefetch
// economics and each member's final state.
//
// Usage:
//
//	fpgad                                        # default mixed workload
//	fpgad -sys32 2 -sys64 2 -n 64 -mix "sha1=1,jenkins=2,fade=3"
//	fpgad -batch 1 -v                            # strict FIFO, per-request log
//	fpgad -policy mincost                        # cost-aware placement
//	fpgad -plan=false                            # complete streams only
//	fpgad -prefetch -window 1                    # speculative loads on idle members
//	fpgad -prefetch -predictor freq              # frequency instead of markov
//	fpgad -regions 2                             # two dynamic regions per member
//	fpgad -regions 2 floorplan                   # print the pool's floorplans and exit
//	fpgad -arrivals                              # open-loop S5 latency percentiles
//	fpgad -shards 4                              # sharded dispatch (per-shard run queues)
//	fpgad -shards 4 -rate 200000                 # open-loop drive, sojourn percentiles
//	fpgad -pprof localhost:6060                  # live net/http/pprof + /metrics with mutex profiling
//	fpgad -cpuprofile cpu.out -mutexprofile mtx.out
//	fpgad -trace trace.json                      # Chrome trace-event JSON (Perfetto/chrome://tracing)
//	fpgad -compare -json BENCH_sched.json        # S2 + S3 + S4 + S6 + S7 + S8 + S9 comparisons
//	fpgad -compare -json BENCH_sched.json -history artifacts/bench/history.jsonl -sha abc1234
//	fpgad -compare -history ... -sha ... -samples 3   # + min/median noise entries for S2/S6
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/bench/gate"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("fpgad", flag.ContinueOnError)
	fs.SetOutput(errw)
	sys32 := fs.Int("sys32", 2, "32-bit systems in the pool")
	sys64 := fs.Int("sys64", 0, "64-bit systems in the pool")
	n := fs.Int("n", 16, "number of requests")
	mixSpec := fs.String("mix", "brightness=2,blend=1,fade=2,jenkins=1",
		"workload mix as name=weight,... (tasks: "+fmt.Sprint(sched.TaskNames())+")")
	batch := fs.Int("batch", 4, "same-module batch window (1 = strict FIFO)")
	seed := fs.Int64("seed", 1, "workload seed")
	policyName := fs.String("policy", "lru",
		"placement policy on a cache miss ("+strings.Join(sched.PolicyNames(), ", ")+")")
	planOn := fs.Bool("plan", true,
		"plan differential streams against verified resident state (false = complete streams only)")
	prefetchOn := fs.Bool("prefetch", false,
		"speculatively configure idle members with predicted next modules")
	predictorName := fs.String("predictor", "markov",
		"next-module predictor for -prefetch ("+strings.Join(predict.Names(), ", ")+")")
	window := fs.Int("window", 0,
		"max outstanding requests, submitted closed-loop (0 = submit all upfront)")
	regions := fs.Int("regions", 1,
		"independently reconfigurable regions per member (1 = the paper's fixed dynamic area)")
	arrivals := fs.Bool("arrivals", false,
		"also replay the measured service trace under open-loop Poisson/bursty arrivals (table S5)")
	shards := fs.Int("shards", 1,
		"independently locked scheduler shards, each owning a subset of the pool's members (1 = the single-mutex dispatcher)")
	rate := fs.Float64("rate", 0,
		"open-loop Poisson arrival rate in requests per simulated second (0 = closed-loop submission); reports sojourn percentiles")
	pprofAddr := fs.String("pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060) with mutex and block profiling enabled")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	mutexProfile := fs.String("mutexprofile", "", "write a mutex-contention profile of the whole run to this file")
	compare := fs.Bool("compare", false,
		"run the S2 placement, S3 prefetch, S4 region, S6 scaling, S7 fault and S8 compression comparisons instead of a single run")
	jsonPath := fs.String("json", "", "write machine-readable per-configuration records to this file")
	historyPath := fs.String("history", "",
		"append every emitted record's metrics to this per-commit history file (JSONL; plotted by cmd/benchboard)")
	shaFlag := fs.String("sha", "",
		"commit id keying the -history entries (required with -history)")
	tracePath := fs.String("trace", "",
		"write a Chrome trace-event JSON of the run to this file (load in Perfetto/chrome://tracing; with -compare, records the S8 paired drive)")
	samples := fs.Int("samples", 1,
		"with -compare and -history: rerun the nondeterministic suites (S2, S6) this many times and append min/median noise-estimation entries per metric")
	verbose := fs.Bool("v", false, "log every request")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *regions < 1 {
		fmt.Fprintf(errw, "fpgad: -regions %d: at least one region per member\n", *regions)
		return 2
	}
	if *shards < 1 {
		fmt.Fprintf(errw, "fpgad: -shards %d: at least one shard\n", *shards)
		return 2
	}
	if *rate < 0 {
		fmt.Fprintf(errw, "fpgad: -rate %g: arrival rate must be positive\n", *rate)
		return 2
	}
	if *rate > 0 && *window > 0 {
		fmt.Fprintln(errw, "fpgad: -rate drives open-loop; -window drives closed-loop — pick one")
		return 2
	}
	if *historyPath != "" && *shaFlag == "" {
		fmt.Fprintln(errw, "fpgad: -history needs -sha (the commit id keying the entries)")
		return 2
	}
	if *samples < 1 {
		fmt.Fprintf(errw, "fpgad: -samples %d: at least one sample\n", *samples)
		return 2
	}
	if *samples > 1 && (!*compare || *historyPath == "") {
		fmt.Fprintln(errw, "fpgad: -samples estimates suite noise across -compare reruns and records it in -history — it needs both")
		return 2
	}
	// The tracer exists when anything consumes events: a -trace export, or
	// the /metrics endpoint riding the -pprof mux. Left nil otherwise, the
	// scheduler's emission sites stay true no-ops.
	var tracer *trace.Tracer
	if *tracePath != "" || *pprofAddr != "" {
		tracer = trace.New()
	}
	// Profiling hooks cover everything below, single runs and -compare
	// sweeps alike. Mutex/block sampling must be on before the contended
	// locks are born, so it precedes the pool boot.
	if *pprofAddr != "" || *mutexProfile != "" {
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(1000)
	}
	if *pprofAddr != "" {
		// /metrics rides the same default mux as net/http/pprof: counters
		// per event kind plus config-span and sojourn histograms, fed live
		// from the tracer's sink, in Prometheus text exposition format.
		reg := metrics.New()
		metrics.FeedTracer(tracer, reg)
		http.HandleFunc("/metrics", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
			reg.WriteText(rw)
		})
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(errw, "fpgad: pprof:", err)
			}
		}()
		fmt.Fprintf(out, "pprof: serving http://%s/debug/pprof/ and /metrics (mutex fraction 5, block rate 1000ns)\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(errw, "fpgad:", err)
			return 1
		}
		if err := runtimepprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(errw, "fpgad:", err)
			f.Close()
			return 1
		}
		defer func() {
			runtimepprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *mutexProfile != "" {
		defer func() {
			f, err := os.Create(*mutexProfile)
			if err != nil {
				fmt.Fprintln(errw, "fpgad:", err)
				return
			}
			defer f.Close()
			if err := runtimepprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fmt.Fprintln(errw, "fpgad:", err)
			}
		}()
	}
	spec := bench.PlacementSpec{
		Pool:  pool.Config{Sys32: *sys32, Sys64: *sys64, Regions: *regions},
		Seed:  *seed,
		N:     *n,
		Mix:   *mixSpec,
		Batch: *batch,
	}
	if fs.Arg(0) == "floorplan" {
		return runFloorplan(spec.Pool, out, errw)
	}
	policy, err := sched.PolicyByName(*policyName)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 2
	}
	mix, err := sched.ParseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 2
	}
	if *compare {
		// The comparisons sweep every policy × stream-mode × prefetch ×
		// region configuration themselves, so a single-run selection would
		// be misleading.
		if *policyName != "lru" || !*planOn || *prefetchOn || *window != 0 || *regions != 1 || *arrivals || *shards != 1 || *rate != 0 {
			fmt.Fprintln(errw, "fpgad: -compare runs all configurations (the S6 sweep varies shard count and offered load itself); -policy/-plan/-prefetch/-window/-regions/-arrivals/-shards/-rate only apply to single runs")
			return 2
		}
		return runCompare(spec, *jsonPath, *historyPath, *shaFlag, tracer, *tracePath, *samples, out, errw)
	}
	opts := sched.Options{Batch: *batch, Policy: policy, Shards: *shards, Trace: tracer}
	if *prefetchOn {
		pred, err := predict.New(*predictorName)
		if err != nil {
			fmt.Fprintln(errw, "fpgad:", err)
			return 2
		}
		opts.Prefetch, opts.Predictor = true, pred
	}
	w, err := sched.GenWorkload(*seed, *n, mix)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 2
	}
	p, err := pool.New(spec.Pool)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 2
	}
	p.SetPlanning(*planOn)
	streams := "planned (differential where safe)"
	if !*planOn {
		streams = "complete only"
	}
	prefetchDesc := "off"
	if *prefetchOn {
		prefetchDesc = "on (" + *predictorName + ")"
	}
	fmt.Fprintf(out, "pool: %d member(s); workload: %d request(s), mix %s, batch %d, policy %s, streams %s, prefetch %s, shards %d\n\n",
		p.Size(), *n, *mixSpec, *batch, policy.Name(), streams, prefetchDesc, *shards)

	s := sched.New(p, opts)
	failed := 0
	var results []sched.Result
	report := func(r sched.Result) {
		results = append(results, r)
		if r.Err != nil {
			failed++
			fmt.Fprintf(errw, "fpgad: request %d (%s): %v\n", r.ID, r.Task, r.Err)
			return
		}
		if *verbose {
			fmt.Fprintf(out, "req %3d %-20s member %d/r%d (%s)  stream %-12s %8d B  config %-12v work %v\n",
				r.ID, r.Task, r.Member, r.Region, r.System, r.Report.Kind, r.Report.BytesStreamed,
				r.Report.Config, r.Report.Work)
		}
	}
	var sojourns []sim.Time
	var makespan sim.Time
	start := time.Now()
	switch {
	case *rate > 0:
		// Open-loop: every request carries its generated Poisson arrival
		// stamp and submission never waits for completions; the
		// scheduler's wall-clock overlay turns the stamps into sojourn
		// (queue wait + service) per request.
		arr, err := bench.GenArrivals(*seed, *n, "poisson", sim.Time(float64(sim.Second) / *rate))
		if err != nil {
			fmt.Fprintln(errw, "fpgad:", err)
			return 2
		}
		chs := make([]<-chan sched.Result, len(w))
		for i := range w {
			chs[i] = s.SubmitAt(w[i], arr[i])
		}
		for _, ch := range chs {
			r := <-ch
			report(r)
			if r.Err == nil {
				sojourns = append(sojourns, r.Sojourn)
				if r.DoneAt > makespan {
					makespan = r.DoneAt
				}
			}
		}
	case *window > 0:
		s.SubmitWindowed(w, *window, report)
	default:
		for _, ch := range s.SubmitAll(w) {
			report(<-ch)
		}
	}
	s.Wait()
	elapsed := time.Since(start)
	if *verbose {
		fmt.Fprintln(out)
	}
	st := s.Stats()
	bench.ThroughputTable(st, results...).Format(out)
	if *rate > 0 && len(sojourns) > 0 {
		pct := bench.Percentiles(sojourns, 0.50, 0.95, 0.99)
		fmt.Fprintf(out, "open-loop: %.0f req/s offered (simulated), sojourn p50 %v p95 %v p99 %v, makespan %v, sustained %.0f req/s (real)",
			*rate, pct[0], pct[1], pct[2], makespan, float64(len(sojourns))/elapsed.Seconds())
		if st.Steals > 0 {
			fmt.Fprintf(out, ", %d steal(s) moved %d request(s)", st.Steals, st.StolenRequests)
		}
		fmt.Fprintln(out)
	}
	var arrivalRuns []bench.ArrivalRun
	if *arrivals {
		arrivalRuns, err = bench.ArrivalRuns(spec, *seed, []float64{0.7, 0.95})
		if err != nil {
			fmt.Fprintln(errw, "fpgad:", err)
			return 1
		}
		bench.ArrivalTableFromRuns(arrivalRuns).Format(out)
	}
	if *prefetchOn {
		fmt.Fprintf(out, "prefetch: %d issued, %d hits, %d aborted; hidden config %v, speculative %d B (%d B wasted)\n",
			st.PrefetchIssued, st.PrefetchHits, st.PrefetchAborted,
			st.HiddenConfig, st.PrefetchBytes, st.PrefetchWasted)
	}
	for _, m := range p.Snapshot() {
		for _, r := range m.Regions {
			state := "intact"
			if r.Corrupted {
				state = "CORRUPTED"
			}
			resident := r.Resident
			if resident == "" {
				resident = "(blank)"
			}
			fmt.Fprintf(out, "member %d (%s) %s: resident %-14s loads %-3d (%d complete / %d diff / %d aborted)  config time %-12v static %s\n",
				m.ID, m.System, r.Region, resident, r.Loads, r.CompleteLoads, r.DiffLoads, r.AbortedLoads, r.LoadTime, state)
		}
	}
	if *tracePath != "" {
		if err := writeTrace(tracer, *tracePath); err != nil {
			fmt.Fprintln(errw, "fpgad:", err)
			return 1
		}
		fmt.Fprintf(out, "trace: wrote %s (%d event(s))\n", *tracePath, tracer.Len())
	}
	if *jsonPath != "" {
		// Same label scheme as the -compare records, so trajectory
		// consumers see one series per configuration. A paced or prefetch
		// run is a different experiment than the canonical SubmitAll S2
		// series: it keys under its own table and label and drops the S2
		// rows' noise-tolerance band.
		label := policy.Name() + "+complete-only"
		if *planOn {
			label = policy.Name() + "+planner"
		}
		run := bench.PlacementRun{Label: label, Policy: policy.Name(), Planner: *planOn, Stats: st}
		rec := bench.ScheduleRecords([]bench.PlacementRun{run})[0].Wire()
		if *prefetchOn || *window > 0 || *regions != 1 || *shards != 1 || *rate > 0 {
			r := &rec
			r.Table = "single"
			r.TolerancePct = 0
			if *regions != 1 {
				r.Label += fmt.Sprintf("+regions%d", *regions)
			}
			if *shards != 1 {
				r.Label += fmt.Sprintf("+shards%d", *shards)
				r.Shards = *shards
				r.Steals = st.Steals
				r.StolenRequests = st.StolenRequests
			}
			if *rate > 0 {
				r.Label += fmt.Sprintf("+rate%g", *rate)
				r.ArrivalProcess = "poisson"
				r.ThroughputRPS = float64(len(sojourns)) / elapsed.Seconds()
				if len(sojourns) > 0 {
					pct := bench.Percentiles(sojourns, 0.50, 0.95, 0.99)
					r.P50Ms = pct[0].Milliseconds()
					r.P95Ms = pct[1].Milliseconds()
					r.P99Ms = pct[2].Milliseconds()
				}
			}
			if *window > 0 {
				r.Label += fmt.Sprintf("+window%d", *window)
				r.Window = *window
			}
			if *prefetchOn {
				r.Label += "+prefetch-" + *predictorName
				r.Predictor = *predictorName
				r.PrefetchHits = st.PrefetchHits
				r.PrefetchAborted = st.PrefetchAborted
				r.PrefetchBytes = st.PrefetchBytes
				r.PrefetchWastedBytes = st.PrefetchWasted
				r.HiddenMs = float64(st.HiddenConfig.Microseconds()) / 1e3
			}
		}
		w := bench.NewWriter(rec)
		// A single run's -arrivals replay rides along as typed S5 rows:
		// the one latency table the -compare sweep does not emit.
		bench.AddRecords(w, bench.ArrivalRecords(arrivalRuns))
		if err := w.WriteFile(*jsonPath); err != nil {
			fmt.Fprintln(errw, "fpgad:", err)
			return 1
		}
		if *historyPath != "" {
			if err := w.AppendHistory(*historyPath, *shaFlag); err != nil {
				fmt.Fprintln(errw, "fpgad:", err)
				return 1
			}
		}
		fmt.Fprintf(out, "\nwrote %s\n", *jsonPath)
	}
	if failed > 0 {
		fmt.Fprintf(errw, "fpgad: %d request(s) failed\n", failed)
		return 1
	}
	return 0
}

// runCompare drives the same seeded workload under each placement
// configuration (table S2), each prefetch configuration (table S3), each
// region granularity (table S4), each shard count and offered load (table
// S6, on its own committed capacity spec), each fault-injection rate
// (table S7), each configuration load path (table S8) and the
// deterministic latency-SLO replay (table S9), optionally emitting the
// combined JSON records the CI bench gate diffs and appending their
// metrics to the per-commit history store. A non-empty tracePath records
// the S8 paired drive (the densest deterministic load-path exercise)
// through the tracer as Chrome trace-event JSON; samples > 1 reruns the
// nondeterministic suites and appends min/median noise entries.
func runCompare(spec bench.PlacementSpec, jsonPath, historyPath, sha string,
	tracer *trace.Tracer, tracePath string, samples int, out, errw io.Writer) int {
	fmt.Fprintf(out, "comparing configurations on the same workload: pool %d+%d, %d request(s), mix %s, batch %d, seed %d\n\n",
		spec.Pool.Sys32, spec.Pool.Sys64, spec.N, spec.Mix, spec.Batch, spec.Seed)
	runs, err := bench.PlacementRuns(spec)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 1
	}
	bench.PlacementTable(runs).Format(out)
	pspec := bench.PrefetchSpec{PlacementSpec: spec, Window: bench.DefaultPrefetchSpec().Window}
	pruns, err := bench.PrefetchRuns(pspec)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 1
	}
	bench.PrefetchTable(pruns).Format(out)
	rspec := bench.DefaultRegionSpec()
	rspec.Seed, rspec.N, rspec.Mix, rspec.Batch = spec.Seed, spec.N, spec.Mix, spec.Batch
	rruns, err := bench.RegionRuns(rspec)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 1
	}
	bench.RegionTable(rruns).Format(out)
	sruns, err := bench.ScalingRuns(bench.DefaultScalingSpec())
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 1
	}
	bench.ScalingTable(sruns).Format(out)
	fspec := bench.DefaultFaultSpec()
	fspec.Seed, fspec.N, fspec.Mix, fspec.Batch = spec.Seed, spec.N, spec.Mix, spec.Batch
	fruns, err := bench.FaultRuns(fspec)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 1
	}
	bench.FaultTable(fruns).Format(out)
	cspec := bench.DefaultCompressSpec()
	cspec.Seed, cspec.N, cspec.Mix, cspec.Batch = spec.Seed, spec.N, spec.Mix, spec.Batch
	// Attach whenever a tracer exists: a -trace export gets the S8 paired
	// drive, and a -pprof /metrics scrape sees the same events live.
	cspec.Trace = tracer
	cruns, err := bench.CompressRuns(cspec)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 1
	}
	bench.CompressTable(cruns).Format(out)
	if tracePath != "" {
		if err := writeTrace(tracer, tracePath); err != nil {
			fmt.Fprintln(errw, "fpgad:", err)
			return 1
		}
		fmt.Fprintf(out, "trace: wrote %s (%d event(s), S8 paired drive)\n", tracePath, tracer.Len())
	}
	slruns, err := bench.SLORuns(bench.DefaultSLOSpec())
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 1
	}
	bench.SLOTable(slruns).Format(out)
	if jsonPath != "" || historyPath != "" {
		w := bench.NewWriter()
		bench.AddRecords(w, bench.ScheduleRecords(runs))
		bench.AddRecords(w, bench.PrefetchRecords(pruns))
		bench.AddRecords(w, bench.RegionRecords(rruns))
		bench.AddRecords(w, bench.ScalingRecords(sruns))
		bench.AddRecords(w, bench.FaultRecords(fruns))
		bench.AddRecords(w, bench.CompressRecords(cruns))
		bench.AddRecords(w, bench.SLORecords(slruns))
		if jsonPath != "" {
			if err := w.WriteFile(jsonPath); err != nil {
				fmt.Fprintln(errw, "fpgad:", err)
				return 1
			}
			fmt.Fprintf(out, "wrote %s\n", jsonPath)
		}
		if historyPath != "" {
			if err := w.AppendHistory(historyPath, sha); err != nil {
				fmt.Fprintln(errw, "fpgad:", err)
				return 1
			}
			fmt.Fprintf(out, "appended %d metric(s) to %s @ %s\n", len(w.HistoryEntries(sha)), historyPath, sha)
			if samples > 1 {
				if err := appendNoise(spec, w.Records(), samples, historyPath, sha, out); err != nil {
					fmt.Fprintln(errw, "fpgad:", err)
					return 1
				}
			}
		}
	}
	return 0
}

// appendNoise estimates run-to-run noise on the nondeterministic suites:
// it reruns S2 (concurrent SubmitAll placement) and S6 (real-throughput
// capacity drive) samples-1 more times, then appends one "min" and one
// "median" history entry per metric over all the samples. The median is
// the lower middle of the sorted values, so it is always a measured value,
// never an interpolation. Deterministic suites reproduce byte-identically
// and would sample to K copies of one number, so they are skipped.
func appendNoise(spec bench.PlacementSpec, first []bench.Record, samples int, historyPath, sha string, out io.Writer) error {
	type key struct{ suite, metric, unit string }
	vals := make(map[key][]float64)
	var order []key
	add := func(recs []bench.Record) {
		for _, r := range recs {
			if s := r.Suite(); s != "S2" && s != "S6" {
				continue
			}
			for _, m := range r.Metrics() {
				k := key{r.Suite(), r.Key() + "/" + m.Name, m.Unit}
				if _, ok := vals[k]; !ok {
					order = append(order, k)
				}
				vals[k] = append(vals[k], m.Value)
			}
		}
	}
	add(first)
	for i := 1; i < samples; i++ {
		runs, err := bench.PlacementRuns(spec)
		if err != nil {
			return err
		}
		sruns, err := bench.ScalingRuns(bench.DefaultScalingSpec())
		if err != nil {
			return err
		}
		w := bench.NewWriter()
		bench.AddRecords(w, bench.ScheduleRecords(runs))
		bench.AddRecords(w, bench.ScalingRecords(sruns))
		add(w.Records())
	}
	var entries []gate.Entry
	for _, k := range order {
		v := append([]float64(nil), vals[k]...)
		sort.Float64s(v)
		for _, st := range []struct {
			name string
			val  float64
		}{{"min", v[0]}, {"median", v[(len(v)-1)/2]}} {
			entries = append(entries, gate.Entry{
				SHA: sha, Suite: k.suite, Metric: k.metric,
				Value: st.val, Unit: k.unit, Stat: st.name,
			})
		}
	}
	if err := gate.AppendEntries(historyPath, entries); err != nil {
		return err
	}
	fmt.Fprintf(out, "noise: %d sample(s) of S2+S6 — appended %d min/median entries to %s\n",
		samples, len(entries), historyPath)
	return nil
}

// writeTrace renders the tracer's recorded events as Chrome trace-event
// JSON at path.
func writeTrace(tr *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runFloorplan prints every distinct floorplan of the pool configuration —
// region geometry, dock placement and ICAP stream addressing — and exits.
func runFloorplan(cfg pool.Config, out, errw io.Writer) int {
	p, err := pool.New(cfg)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 2
	}
	count := make(map[string]int)
	for _, m := range p.Members() {
		count[m.Sys.Name]++
	}
	seen := make(map[string]bool)
	for _, m := range p.Members() {
		if seen[m.Sys.Name] {
			continue
		}
		seen[m.Sys.Name] = true
		fmt.Fprintf(out, "floorplan of %s (%d member(s) in the pool):\n\n", m.Sys.Name, count[m.Sys.Name])
		bench.Floorplan(out, m.Sys)
	}
	return 0
}
