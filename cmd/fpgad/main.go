// Command fpgad is the scheduler front-end: it boots a pool of simulated
// platforms and drives a configurable workload mix through the
// reconfiguration scheduler, then reports per-module throughput, the
// bitstream-cache hit rate and each member's final state.
//
// Usage:
//
//	fpgad                                        # default mixed workload
//	fpgad -sys32 2 -sys64 2 -n 64 -mix "sha1=1,jenkins=2,fade=3"
//	fpgad -batch 1 -v                            # strict FIFO, per-request log
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/pool"
	"repro/internal/sched"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("fpgad", flag.ContinueOnError)
	fs.SetOutput(errw)
	sys32 := fs.Int("sys32", 2, "32-bit systems in the pool")
	sys64 := fs.Int("sys64", 0, "64-bit systems in the pool")
	n := fs.Int("n", 16, "number of requests")
	mixSpec := fs.String("mix", "brightness=2,blend=1,fade=2,jenkins=1",
		"workload mix as name=weight,... (tasks: "+fmt.Sprint(sched.TaskNames())+")")
	batch := fs.Int("batch", 4, "same-module batch window (1 = strict FIFO)")
	seed := fs.Int64("seed", 1, "workload seed")
	verbose := fs.Bool("v", false, "log every request")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	mix, err := sched.ParseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 2
	}
	w, err := sched.GenWorkload(*seed, *n, mix)
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 2
	}
	p, err := pool.New(pool.Config{Sys32: *sys32, Sys64: *sys64})
	if err != nil {
		fmt.Fprintln(errw, "fpgad:", err)
		return 2
	}
	fmt.Fprintf(out, "pool: %d member(s); workload: %d request(s), mix %s, batch %d\n\n",
		p.Size(), *n, *mixSpec, *batch)

	s := sched.New(p, sched.Options{Batch: *batch})
	failed := 0
	for _, ch := range s.SubmitAll(w) {
		r := <-ch
		if r.Err != nil {
			failed++
			fmt.Fprintf(errw, "fpgad: request %d (%s): %v\n", r.ID, r.Task, r.Err)
			continue
		}
		if *verbose {
			hit := "miss"
			if r.Report.CacheHit {
				hit = "hit"
			}
			fmt.Fprintf(out, "req %3d %-20s member %d (%s)  cache %-4s  config %-12v work %v\n",
				r.ID, r.Task, r.Member, r.System, hit, r.Report.Config, r.Report.Work)
		}
	}
	s.Wait()
	if *verbose {
		fmt.Fprintln(out)
	}
	bench.ThroughputTable(s.Stats()).Format(out)
	for _, m := range p.Snapshot() {
		state := "intact"
		if m.Corrupted {
			state = "CORRUPTED"
		}
		resident := m.Resident
		if resident == "" {
			resident = "(blank)"
		}
		fmt.Fprintf(out, "member %d (%s): resident %-14s loads %-3d config time %-12v static %s\n",
			m.ID, m.System, resident, m.Loads, m.LoadTime, state)
	}
	if failed > 0 {
		fmt.Fprintf(errw, "fpgad: %d request(s) failed\n", failed)
		return 1
	}
	return 0
}
