// Command benchdiff is the CI bench-regression gate: it compares a fresh
// scheduler bench run (fpgad -compare -json) against the committed
// baseline, matching records by (table, label) and checking the two
// metrics that summarize the reconfiguration bill — visible configuration
// time and request-path bytes streamed. Either metric regressing past the
// threshold on any configuration fails the gate; configurations present
// only in the fresh run are reported but never fail (new rows are how the
// bench grows). A perf improvement is reported as a negative delta — and
// is the cue to re-commit the baseline so the win is locked in.
//
// The band math lives in internal/bench/gate, shared with cmd/benchboard
// so a dashboard annotation and a gate verdict can never disagree. With
// -history (plus -sha), every comparison's verdict is appended to the
// per-commit history store benchboard plots.
//
// Usage:
//
//	benchdiff -baseline BENCH_sched.json -fresh BENCH_fresh.json
//	benchdiff -baseline BENCH_sched.json -fresh BENCH_fresh.json -max-regress 10
//	benchdiff -baseline BENCH_sched.json -fresh BENCH_fresh.json \
//	    -history artifacts/bench/history.jsonl -sha abc1234
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/bench/gate"
)

// record is the subset of bench.PlacementRecord the gate reads. Records
// written before the table field existed key on ("", label) and still
// match themselves. A baseline record may carry its own tolerance band
// (tolerance_pct) when its configuration is inherently noisy — the
// SubmitAll S2 rows react to goroutine completion order — overriding the
// gate's default; the deterministic S3/S4/S7 rows and the paired-drive S8
// load-path rows gate at the 15% band.
type record struct {
	Table         string  `json:"table"`
	Label         string  `json:"label"`
	ConfigMs      float64 `json:"config_ms"`
	BytesStreamed uint64  `json:"bytes_streamed"`
	TolerancePct  float64 `json:"tolerance_pct"`

	// SLO percentile columns, gated only on the S9 rows — the one suite
	// whose sojourn percentiles are deterministic (pinned placement plus
	// arithmetic replay) rather than host-dependent.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// gatedMetric is one metric comparison: the display name (historic
// output format), the history metric name (the JSON field), the baseline
// and fresh values, and the zero-baseline absolute epsilon. A nonzero
// allowedPct overrides the record's band — the deterministic S9
// percentiles reproduce byte-identically, so they gate at 1% (any
// drift at all is a real latency change) instead of the 15% default.
type gatedMetric struct {
	name       string
	metric     string
	base, now  float64
	unit       string
	zeroEps    float64
	allowedPct float64
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(errw)
	basePath := fs.String("baseline", "BENCH_sched.json", "committed baseline records")
	freshPath := fs.String("fresh", "", "fresh bench records to gate")
	maxRegress := fs.Float64("max-regress", gate.DefaultTolerancePct,
		"max allowed regression in percent, per configuration and metric")
	historyPath := fs.String("history", "",
		"append each comparison's verdict to this per-commit history file (JSONL; plotted by cmd/benchboard)")
	shaFlag := fs.String("sha", "",
		"commit id keying the -history entries (required with -history)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *freshPath == "" {
		fmt.Fprintln(errw, "benchdiff: -fresh is required")
		return 2
	}
	if *historyPath != "" && *shaFlag == "" {
		fmt.Fprintln(errw, "benchdiff: -history needs -sha (the commit id keying the entries)")
		return 2
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(errw, "benchdiff:", err)
		return 2
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(errw, "benchdiff:", err)
		return 2
	}
	if len(base) == 0 {
		fmt.Fprintln(errw, "benchdiff: baseline has no records")
		return 2
	}

	freshBy := make(map[string]record, len(fresh))
	for _, r := range fresh {
		freshBy[key(r)] = r
	}
	keys := make([]string, 0, len(base))
	baseBy := make(map[string]record, len(base))
	for _, r := range base {
		baseBy[key(r)] = r
		keys = append(keys, key(r))
	}
	sort.Strings(keys)

	var verdicts []gate.Entry
	failures := 0
	for _, k := range keys {
		b := baseBy[k]
		f, ok := freshBy[k]
		if !ok {
			fmt.Fprintf(errw, "benchdiff: FAIL %s: configuration missing from fresh run\n", k)
			failures++
			continue
		}
		allowed := *maxRegress
		if b.TolerancePct > 0 {
			allowed = b.TolerancePct
		}
		metrics := []gatedMetric{
			{"config time", "config_ms", b.ConfigMs, f.ConfigMs, "ms", gate.ConfigMsZeroEps, 0},
			{"bytes streamed", "bytes_streamed", float64(b.BytesStreamed), float64(f.BytesStreamed), "B", gate.BytesZeroEps, 0},
		}
		if b.Table == "S9" {
			// The deterministic SLO suite promotes its sojourn percentiles
			// to gated columns; everywhere else they are informational.
			metrics = append(metrics,
				gatedMetric{"p50 sojourn", "p50_ms", b.P50Ms, f.P50Ms, "ms", gate.ConfigMsZeroEps, 1},
				gatedMetric{"p95 sojourn", "p95_ms", b.P95Ms, f.P95Ms, "ms", gate.ConfigMsZeroEps, 1},
				gatedMetric{"p99 sojourn", "p99_ms", b.P99Ms, f.P99Ms, "ms", gate.ConfigMsZeroEps, 1})
		}
		for _, m := range metrics {
			band := allowed
			if m.allowedPct > 0 {
				band = m.allowedPct
			}
			v := gate.Check(m.base, m.now, band, m.zeroEps)
			status := "ok  "
			if !v.Pass {
				status = "FAIL"
				failures++
			}
			if v.Zero {
				// A percentage of zero is undefined, so the zero-baseline
				// rows gate the absolute delta (see internal/bench/gate).
				fmt.Fprintf(out, "%s %-32s %-14s %12.3f %s -> %12.3f %s  (zero baseline, allowed +%.3g %s absolute)\n",
					status, k, m.name, m.base, m.unit, m.now, m.unit, v.Allowed, m.unit)
			} else {
				fmt.Fprintf(out, "%s %-32s %-14s %12.3f %s -> %12.3f %s  (%+.1f%%, allowed +%.0f%%)\n",
					status, k, m.name, m.base, m.unit, m.now, m.unit, v.DeltaPct, v.Allowed)
			}
			if *historyPath != "" {
				verdict := "ok"
				if !v.Pass {
					verdict = "fail"
				}
				verdicts = append(verdicts, gate.Entry{
					SHA:           *shaFlag,
					Suite:         f.Table,
					Metric:        f.Label + "/" + m.metric,
					Value:         m.now,
					Unit:          m.unit,
					Deterministic: gate.SuiteDeterministic(f.Table),
					TolerancePct:  b.TolerancePct,
					Verdict:       verdict,
					DeltaPct:      v.DeltaPct,
				})
			}
		}
	}
	for _, r := range fresh {
		if _, ok := baseBy[key(r)]; !ok {
			fmt.Fprintf(out, "new  %-32s (not in baseline; commit the fresh records to start gating it)\n", key(r))
		}
	}
	if *historyPath != "" {
		if err := gate.AppendEntries(*historyPath, verdicts); err != nil {
			fmt.Fprintln(errw, "benchdiff:", err)
			return 2
		}
	}
	if failures > 0 {
		fmt.Fprintf(errw, "benchdiff: %d regression(s) beyond tolerance — investigate, or re-commit the baseline if the change is intended\n",
			failures)
		return 1
	}
	fmt.Fprintf(out, "benchdiff: %d configuration(s) within tolerance of baseline\n", len(keys))
	return 0
}

func key(r record) string { return r.Table + "/" + r.Label }

func load(path string) ([]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}
