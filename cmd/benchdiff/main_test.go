package main

import (
	"repro/internal/bench/gate"

	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseline = `[
  {"table":"S2","label":"mincost+planner","config_ms":30.0,"bytes_streamed":1900000},
  {"table":"S3","label":"mincost+prefetch-freq","config_ms":19.0,"bytes_streamed":1300000}
]`

func TestWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	f := write(t, dir, "fresh.json", `[
	  {"table":"S2","label":"mincost+planner","config_ms":33.0,"bytes_streamed":2000000},
	  {"table":"S3","label":"mincost+prefetch-freq","config_ms":18.0,"bytes_streamed":1310000}
	]`)
	var out, errw bytes.Buffer
	if code := run([]string{"-baseline", b, "-fresh", f}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s\nstdout:\n%s", code, errw.String(), out.String())
	}
	if !strings.Contains(out.String(), "within tolerance of baseline") {
		t.Errorf("stdout:\n%s", out.String())
	}
}

// TestPerRecordToleranceWidensBand: a baseline record carrying its own
// tolerance_pct (a configuration known to be concurrency-noisy) passes a
// swing that the default threshold would reject — without widening the
// band for the other records.
func TestPerRecordToleranceWidensBand(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", `[
	  {"table":"S2","label":"mincost+planner","config_ms":30.0,"bytes_streamed":1900000,"tolerance_pct":40},
	  {"table":"S3","label":"mincost+prefetch-freq","config_ms":19.0,"bytes_streamed":1300000}
	]`)
	f := write(t, dir, "fresh.json", `[
	  {"table":"S2","label":"mincost+planner","config_ms":39.0,"bytes_streamed":2500000},
	  {"table":"S3","label":"mincost+prefetch-freq","config_ms":19.0,"bytes_streamed":1300000}
	]`)
	var out, errw bytes.Buffer
	if code := run([]string{"-baseline", b, "-fresh", f}, &out, &errw); code != 0 {
		t.Fatalf("exit %d (a +30%% swing must pass a 40%% band); stdout:\n%s", code, out.String())
	}
	// The same +30% swing on the tight-band S3 row still fails.
	f2 := write(t, dir, "fresh2.json", `[
	  {"table":"S2","label":"mincost+planner","config_ms":30.0,"bytes_streamed":1900000},
	  {"table":"S3","label":"mincost+prefetch-freq","config_ms":25.0,"bytes_streamed":1300000}
	]`)
	out.Reset()
	errw.Reset()
	if code := run([]string{"-baseline", b, "-fresh", f2}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL S3/mincost+prefetch-freq") {
		t.Errorf("stdout:\n%s", out.String())
	}
}

func TestConfigTimeRegressionFails(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	f := write(t, dir, "fresh.json", `[
	  {"table":"S2","label":"mincost+planner","config_ms":36.0,"bytes_streamed":1900000},
	  {"table":"S3","label":"mincost+prefetch-freq","config_ms":19.0,"bytes_streamed":1300000}
	]`)
	var out, errw bytes.Buffer
	if code := run([]string{"-baseline", b, "-fresh", f}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL S2/mincost+planner") || !strings.Contains(errw.String(), "regression(s)") {
		t.Errorf("stdout:\n%s\nstderr:\n%s", out.String(), errw.String())
	}
}

func TestBytesRegressionFails(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	f := write(t, dir, "fresh.json", `[
	  {"table":"S2","label":"mincost+planner","config_ms":30.0,"bytes_streamed":2300000},
	  {"table":"S3","label":"mincost+prefetch-freq","config_ms":19.0,"bytes_streamed":1300000}
	]`)
	var out, errw bytes.Buffer
	if code := run([]string{"-baseline", b, "-fresh", f}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1; stdout:\n%s", code, out.String())
	}
}

func TestMissingConfigurationFails(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	f := write(t, dir, "fresh.json", `[
	  {"table":"S2","label":"mincost+planner","config_ms":30.0,"bytes_streamed":1900000}
	]`)
	var out, errw bytes.Buffer
	if code := run([]string{"-baseline", b, "-fresh", f}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "missing from fresh run") {
		t.Errorf("stderr:\n%s", errw.String())
	}
}

func TestNewConfigurationIsReportedNotFailed(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	f := write(t, dir, "fresh.json", `[
	  {"table":"S2","label":"mincost+planner","config_ms":30.0,"bytes_streamed":1900000},
	  {"table":"S3","label":"mincost+prefetch-freq","config_ms":19.0,"bytes_streamed":1300000},
	  {"table":"S3","label":"prefetch+prefetch-markov","config_ms":25.0,"bytes_streamed":1600000}
	]`)
	var out, errw bytes.Buffer
	if code := run([]string{"-baseline", b, "-fresh", f}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, want 0; stderr:\n%s", code, errw.String())
	}
	if !strings.Contains(out.String(), "new  S3/prefetch+prefetch-markov") {
		t.Errorf("stdout:\n%s", out.String())
	}
}

func TestThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	f := write(t, dir, "fresh.json", `[
	  {"table":"S2","label":"mincost+planner","config_ms":31.0,"bytes_streamed":1900000},
	  {"table":"S3","label":"mincost+prefetch-freq","config_ms":19.0,"bytes_streamed":1300000}
	]`)
	var out, errw bytes.Buffer
	if code := run([]string{"-baseline", b, "-fresh", f, "-max-regress", "2"}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1 at 2%% threshold", code)
	}
}

func TestBadInputs(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	garbled := write(t, dir, "bad.json", "{not json")
	empty := write(t, dir, "empty.json", "[]")
	cases := []struct {
		name string
		args []string
	}{
		{"missing fresh flag", []string{"-baseline", b}},
		{"nonexistent fresh file", []string{"-baseline", b, "-fresh", filepath.Join(dir, "nope.json")}},
		{"garbled fresh file", []string{"-baseline", b, "-fresh", garbled}},
		{"empty baseline", []string{"-baseline", empty, "-fresh", b}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			if code := run(tc.args, &out, &errw); code != 2 {
				t.Fatalf("exit %d, want 2; stderr:\n%s", code, errw.String())
			}
		})
	}
}

// TestZeroBaselineGating: a 0-valued baseline metric cannot be gated in
// percent (any band scaled by zero admits nothing, and a fixed mapping to
// 100% silently passes under a wide per-record tolerance). The gate
// switches to absolute deltas: a fresh value within the per-metric epsilon
// passes, anything beyond it fails regardless of the tolerance band.
func TestZeroBaselineGating(t *testing.T) {
	zeroBase := `[
	  {"table":"S7","label":"rate-0+scrub","config_ms":0,"bytes_streamed":0,"tolerance_pct":500}
	]`
	cases := []struct {
		name     string
		fresh    string
		wantExit int
		wantOut  string
	}{
		{
			name:     "zero stays zero",
			fresh:    `[{"table":"S7","label":"rate-0+scrub","config_ms":0,"bytes_streamed":0}]`,
			wantExit: 0,
			wantOut:  "zero baseline",
		},
		{
			name:     "config time within epsilon",
			fresh:    `[{"table":"S7","label":"rate-0+scrub","config_ms":0.005,"bytes_streamed":0}]`,
			wantExit: 0,
			wantOut:  "zero baseline",
		},
		{
			name:     "config time grows past epsilon despite wide band",
			fresh:    `[{"table":"S7","label":"rate-0+scrub","config_ms":5.0,"bytes_streamed":0}]`,
			wantExit: 1,
			wantOut:  "FAIL S7/rate-0+scrub",
		},
		{
			name:     "any byte on a zero-byte baseline fails",
			fresh:    `[{"table":"S7","label":"rate-0+scrub","config_ms":0,"bytes_streamed":1}]`,
			wantExit: 1,
			wantOut:  "FAIL S7/rate-0+scrub",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			b := write(t, dir, "base.json", zeroBase)
			f := write(t, dir, "fresh.json", tc.fresh)
			var out, errw bytes.Buffer
			if code := run([]string{"-baseline", b, "-fresh", f}, &out, &errw); code != tc.wantExit {
				t.Fatalf("exit %d, want %d; stdout:\n%s\nstderr:\n%s",
					code, tc.wantExit, out.String(), errw.String())
			}
			if !strings.Contains(out.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, out.String())
			}
		})
	}
}

// TestHistoryVerdicts: with -history/-sha, every comparison's verdict
// lands in the per-commit store — the same entries cmd/benchboard reads
// so a dashboard flag and a gate verdict can never disagree.
func TestHistoryVerdicts(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	f := write(t, dir, "fresh.json", `[
	  {"table":"S2","label":"mincost+planner","config_ms":33.0,"bytes_streamed":2000000},
	  {"table":"S3","label":"mincost+prefetch-freq","config_ms":30.0,"bytes_streamed":1310000}
	]`)
	history := filepath.Join(dir, "history.jsonl")
	var out, errw bytes.Buffer
	code := run([]string{"-baseline", b, "-fresh", f, "-history", history, "-sha", "abc1234"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (S3 config time regressed +58%%)", code)
	}
	entries, skipped, err := gate.LoadEntries(history)
	if err != nil || skipped != 0 {
		t.Fatalf("load history: err=%v skipped=%d", err, skipped)
	}
	if len(entries) != 4 {
		t.Fatalf("%d history entries, want 2 records x 2 metrics", len(entries))
	}
	byMetric := make(map[string]gate.Entry)
	for _, e := range entries {
		if e.SHA != "abc1234" || e.Verdict == "" {
			t.Errorf("entry %+v: want sha abc1234 and a verdict", e)
		}
		byMetric[e.Suite+"/"+e.Metric] = e
	}
	if e := byMetric["S3/mincost+prefetch-freq/config_ms"]; e.Verdict != "fail" || !e.Deterministic {
		t.Errorf("regressed S3 row recorded as %+v, want deterministic fail", e)
	}
	if e := byMetric["S2/mincost+planner/config_ms"]; e.Verdict != "ok" || e.Deterministic {
		t.Errorf("passing S2 row recorded as %+v, want host-dependent ok", e)
	}
}

// TestHistoryNeedsSha: -history without -sha is a usage error.
func TestHistoryNeedsSha(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	var out, errw bytes.Buffer
	code := run([]string{"-baseline", b, "-fresh", b, "-history", filepath.Join(dir, "h.jsonl")}, &out, &errw)
	if code != 2 || !strings.Contains(errw.String(), "-history needs -sha") {
		t.Fatalf("exit %d, stderr %q", code, errw.String())
	}
}
