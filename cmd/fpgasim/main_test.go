package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleTable(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-table", "13"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	got := out.String()
	if !strings.Contains(got, "A1") || !strings.Contains(got, "differential") {
		t.Errorf("table 13 output:\n%s", got)
	}
}

func TestRunFigures(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-figures"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	for _, want := range []string{"F1", "F2", "XC2VP7", "XC2VP30"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("figures missing %q", want)
		}
	}
}

func TestRunBadTable(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-table", "99"}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "no such table") {
		t.Errorf("stderr: %s", errw.String())
	}
}
