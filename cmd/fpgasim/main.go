// Command fpgasim runs the reproduction experiments: it boots the simulated
// 32-bit and 64-bit platforms and regenerates the paper's tables (1-12, plus
// the two ablations) and figures (1-4).
//
// Usage:
//
//	fpgasim              # everything
//	fpgasim -table 3     # just Table 3
//	fpgasim -figures     # just the figures
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("fpgasim", flag.ContinueOnError)
	fs.SetOutput(errw)
	table := fs.Int("table", 0, "regenerate a single table (1-12; 13=ablation A1, 14=ablation A2)")
	figures := fs.Bool("figures", false, "render only the figures")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *figures {
		renderFigures(out)
		return 0
	}
	if *table != 0 {
		if t := oneTable(*table); t != nil {
			t.Format(out)
			return 0
		}
		fmt.Fprintf(errw, "fpgasim: no such table %d\n", *table)
		return 1
	}

	fmt.Fprintln(out, "== Reproduction: Silva & Ferreira, \"Exploiting dynamic reconfiguration of platform FPGAs\" (IPPS 2006) ==")
	fmt.Fprintln(out)
	renderFigures(out)
	for i := 1; i <= 14; i++ {
		if t := oneTable(i); t != nil {
			t.Format(out)
		}
	}
	return 0
}

func oneTable(n int) *bench.Table {
	switch n {
	case 1:
		return bench.ResourceTable(bench.Sys32())
	case 2:
		return bench.TransferCPUTable(bench.Sys32(), nil)
	case 3:
		return bench.PatternTable(bench.Sys32())
	case 4:
		return bench.JenkinsTable(bench.Sys32())
	case 5:
		return bench.ImageTable32(bench.Sys32())
	case 6:
		return bench.ResourceTable(bench.Sys64())
	case 7:
		t2 := bench.TransferCPUTable(bench.Sys32(), nil)
		return bench.TransferCPUTable(bench.Sys64(), t2)
	case 8:
		return bench.TransferDMATable(bench.Sys64())
	case 9:
		return bench.PatternTable(bench.Sys64())
	case 10:
		return bench.JenkinsTable(bench.Sys64())
	case 11:
		return bench.SHA1Table(bench.Sys64())
	case 12:
		return bench.ImageTable64(bench.Sys64())
	case 13:
		return bench.ConfigTimeTable(bench.Sys32())
	case 14:
		return bench.HazardTable(bench.Sys32())
	}
	return nil
}

func renderFigures(out io.Writer) {
	bench.Figure1(out)
	bench.Figure2(out)
	bench.Floorplan(out, bench.Sys32())
	bench.Floorplan(out, bench.Sys64())
}
