// Command fpgasim runs the reproduction experiments: it boots the simulated
// 32-bit and 64-bit platforms and regenerates the paper's tables (1-12, plus
// the two ablations) and figures (1-4).
//
// Usage:
//
//	fpgasim              # everything
//	fpgasim -table 3     # just Table 3
//	fpgasim -figures     # just the figures
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "regenerate a single table (1-12; 13=ablation A1, 14=ablation A2)")
	figures := flag.Bool("figures", false, "render only the figures")
	flag.Parse()

	out := os.Stdout
	if *figures {
		renderFigures()
		return
	}
	if *table != 0 {
		if t := oneTable(*table); t != nil {
			t.Format(out)
			return
		}
		fmt.Fprintf(os.Stderr, "fpgasim: no such table %d\n", *table)
		os.Exit(1)
	}

	fmt.Fprintln(out, "== Reproduction: Silva & Ferreira, \"Exploiting dynamic reconfiguration of platform FPGAs\" (IPPS 2006) ==")
	fmt.Fprintln(out)
	renderFigures()
	for i := 1; i <= 14; i++ {
		if t := oneTable(i); t != nil {
			t.Format(out)
		}
	}
}

func oneTable(n int) *bench.Table {
	switch n {
	case 1:
		return bench.ResourceTable(bench.Sys32())
	case 2:
		return bench.TransferCPUTable(bench.Sys32(), nil)
	case 3:
		return bench.PatternTable(bench.Sys32())
	case 4:
		return bench.JenkinsTable(bench.Sys32())
	case 5:
		return bench.ImageTable32(bench.Sys32())
	case 6:
		return bench.ResourceTable(bench.Sys64())
	case 7:
		t2 := bench.TransferCPUTable(bench.Sys32(), nil)
		return bench.TransferCPUTable(bench.Sys64(), t2)
	case 8:
		return bench.TransferDMATable(bench.Sys64())
	case 9:
		return bench.PatternTable(bench.Sys64())
	case 10:
		return bench.JenkinsTable(bench.Sys64())
	case 11:
		return bench.SHA1Table(bench.Sys64())
	case 12:
		return bench.ImageTable64(bench.Sys64())
	case 13:
		return bench.ConfigTimeTable(bench.Sys32())
	case 14:
		return bench.HazardTable(bench.Sys32())
	}
	return nil
}

func renderFigures() {
	bench.Figure1(os.Stdout)
	bench.Figure2(os.Stdout)
	bench.Floorplan(os.Stdout, bench.Sys32())
	bench.Floorplan(os.Stdout, bench.Sys64())
}
