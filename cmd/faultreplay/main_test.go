package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFlagParsing is the table-driven gate on the front-end's argument
// surface: mode confusion and malformed values must be rejected with exit
// code 2 and a diagnostic naming the problem.
func TestRunFlagParsing(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"no mode", []string{}, "exactly one of -out"},
		{"both modes", []string{"-out", "a.jsonl", "-replay", "b.jsonl"}, "exactly one of -out"},
		{"json without replay", []string{"-out", "a.jsonl", "-json", "r.json"}, "-json only applies"},
		{"zero requests", []string{"-out", "a.jsonl", "-n", "0"}, "must be positive"},
		{"zero boards", []string{"-out", "a.jsonl", "-boards", "0"}, "must be positive"},
		{"zero regions", []string{"-out", "a.jsonl", "-regions", "0"}, "must be positive"},
		{"unknown campaign", []string{"-out", "a.jsonl", "-scenario", "meteor"}, "unknown campaign"},
		{"unknown flag", []string{"-meteor"}, "-meteor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			if code := run(tc.args, &out, &errw); code != 2 {
				t.Fatalf("exit %d, want 2; stderr:\n%s", code, errw.String())
			}
			if !strings.Contains(errw.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, errw.String())
			}
		})
	}
}

// TestRunGenerateDeterministic: the same seed writes a byte-identical
// artifact — the property that lets CI regenerate and diff campaigns.
func TestRunGenerateDeterministic(t *testing.T) {
	dir := t.TempDir()
	gen := func(name string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		var out, errw bytes.Buffer
		if code := run([]string{"-scenario", "sweep", "-n", "40", "-seed", "11", "-out", path}, &out, &errw); code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errw.String())
		}
		if !strings.Contains(out.String(), "scenario(s)") {
			t.Errorf("summary line missing:\n%s", out.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := gen("a.jsonl"), gen("b.jsonl")
	if !bytes.Equal(a, b) {
		t.Fatal("same seed wrote different artifacts")
	}
	if !strings.Contains(string(a), `"kind":"scenario"`) || !strings.Contains(string(a), `"kind":"fault"`) {
		t.Errorf("artifact missing record kinds:\n%s", a)
	}
}

// TestRunGenerateThenReplay drives the whole loop on a small workload:
// generate a uniform campaign, replay it, and check the S7 table and the
// JSON records land.
func TestRunGenerateThenReplay(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "campaign.jsonl")
	jsonOut := filepath.Join(dir, "records.json")
	small := []string{"-scenario", "uniform", "-n", "8", "-seed", "5", "-boards", "1", "-regions", "2",
		"-mix", "brightness=1,fade=1,blend=1", "-batch", "1"}
	var out, errw bytes.Buffer
	if code := run(append(small, "-out", artifact), &out, &errw); code != 0 {
		t.Fatalf("generate exit %d, stderr:\n%s", code, errw.String())
	}
	out.Reset()
	errw.Reset()
	if code := run(append(small, "-replay", artifact, "-json", jsonOut), &out, &errw); code != 0 {
		t.Fatalf("replay exit %d, stderr:\n%s", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{"S7 —", "uniform", "availability", "repair time", "wrote " + jsonOut} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"table": "S7"`, `"label": "uniform+scrub"`, `"availability"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("records missing %q:\n%s", want, data)
		}
	}
	// A missing or truncated artifact is an error, not a silent no-op.
	errw.Reset()
	if code := run([]string{"-replay", filepath.Join(dir, "nope.jsonl")}, &out, &errw); code != 1 {
		t.Fatalf("replay of missing artifact: exit %d, want 1", code)
	}
}
