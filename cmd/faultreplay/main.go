// Command faultreplay generates and replays configuration-upset
// campaigns against the scheduled pool. A campaign is written once as a
// JSONL artifact — one scenario header line plus one line per scheduled
// bit-flip — and replayed bit-identically later: the replay drives the
// S7 workload closed-loop, injects each scenario's flips at their
// recorded completion counts, and reports availability, repair traffic
// and tail latency per scenario.
//
// Usage:
//
//	faultreplay -out artifacts/fault-replay/fault_scenarios.jsonl
//	faultreplay -replay artifacts/fault-replay/fault_scenarios.jsonl
//	faultreplay -scenario burst -n 120 -out burst.jsonl
//	faultreplay -replay sweep.jsonl -json BENCH_replay.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/fault"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("faultreplay", flag.ContinueOnError)
	fs.SetOutput(errw)
	scenario := fs.String("scenario", "sweep", "fault campaign preset (sweep, uniform, burst)")
	n := fs.Int("n", 60, "workload length the campaign is sized for")
	seed := fs.Int64("seed", 7, "campaign and workload seed")
	boards := fs.Int("boards", 2, "64-bit boards in the pool")
	regions := fs.Int("regions", 2, "dynamic regions per board")
	mixSpec := fs.String("mix", bench.DefaultFaultSpec().Mix, "workload mix as name=weight,...")
	batch := fs.Int("batch", 4, "same-module batch window")
	outPath := fs.String("out", "", "generate the campaign and write it to this JSONL artifact")
	replayPath := fs.String("replay", "", "replay the campaigns from this JSONL artifact")
	jsonPath := fs.String("json", "", "with -replay, write machine-readable S7 records to this file")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if (*outPath == "") == (*replayPath == "") {
		fmt.Fprintln(errw, "faultreplay: exactly one of -out (generate) or -replay (run) is required")
		return 2
	}
	if *jsonPath != "" && *replayPath == "" {
		fmt.Fprintln(errw, "faultreplay: -json only applies to -replay")
		return 2
	}
	if *n <= 0 || *boards <= 0 || *regions <= 0 {
		fmt.Fprintf(errw, "faultreplay: -n %d -boards %d -regions %d: all must be positive\n", *n, *boards, *regions)
		return 2
	}
	spec := bench.FaultSpec{
		Boards:   *boards,
		Regions:  *regions,
		Seed:     *seed,
		N:        *n,
		Mix:      *mixSpec,
		Batch:    *batch,
		Scenario: *scenario,
	}
	if *outPath != "" {
		return runGenerate(spec, *outPath, out, errw)
	}
	return runReplay(spec, *replayPath, *jsonPath, out, errw)
}

// runGenerate expands the campaign preset against the spec's pool
// geometry and writes the JSONL artifact.
func runGenerate(spec bench.FaultSpec, path string, out, errw io.Writer) int {
	scenarios, err := bench.FaultScenarios(spec)
	if err != nil {
		fmt.Fprintln(errw, "faultreplay:", err)
		return 2
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(errw, "faultreplay:", err)
		return 1
	}
	if err := fault.Write(f, scenarios); err != nil {
		f.Close()
		fmt.Fprintln(errw, "faultreplay:", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(errw, "faultreplay:", err)
		return 1
	}
	events := 0
	for _, sc := range scenarios {
		events += len(sc.Events)
	}
	fmt.Fprintf(out, "wrote %s: %d scenario(s), %d fault event(s) (campaign %s, seed %d, %d requests over %dx%d-region pool)\n",
		path, len(scenarios), events, spec.Scenario, spec.Seed, spec.N, spec.Boards, spec.Regions)
	return 0
}

// runReplay reads the artifact and drives the S7 workload once per
// scenario, printing the availability table.
func runReplay(spec bench.FaultSpec, path, jsonPath string, out, errw io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(errw, "faultreplay:", err)
		return 1
	}
	scenarios, err := fault.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(errw, "faultreplay:", err)
		return 1
	}
	if len(scenarios) == 0 {
		fmt.Fprintf(errw, "faultreplay: %s holds no scenarios\n", path)
		return 1
	}
	fmt.Fprintf(out, "replaying %d scenario(s) from %s: %d request(s), mix %s, batch %d, seed %d, %dx%d-region pool\n\n",
		len(scenarios), path, spec.N, spec.Mix, spec.Batch, spec.Seed, spec.Boards, spec.Regions)
	runs := make([]bench.FaultRun, 0, len(scenarios))
	for _, sc := range scenarios {
		r, err := bench.RunFault(spec, sc)
		if err != nil {
			fmt.Fprintf(errw, "faultreplay: scenario %s: %v\n", sc.Name, err)
			return 1
		}
		runs = append(runs, r)
	}
	bench.FaultTable(runs).Format(out)
	if jsonPath != "" {
		w := bench.NewWriter()
		bench.AddRecords(w, bench.FaultRecords(runs))
		if err := w.WriteFile(jsonPath); err != nil {
			fmt.Fprintln(errw, "faultreplay:", err)
			return 1
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return 0
}
