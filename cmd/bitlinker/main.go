// Command bitlinker is the configuration assembly tool as a standalone
// utility: it "implements" a module for a target system's dynamic region,
// assembles its complete partial bitstream against the static baseline, and
// writes it as an XBF1 container. It can also inspect an existing container
// and compare complete vs differential stream sizes.
//
// Usage:
//
//	bitlinker -module jenkins -system 32 -o jenkins.xbf
//	bitlinker -inspect jenkins.xbf
//	bitlinker -module blend -system 32 -diff brightness
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bitlinker"
	"repro/internal/bitstream"
	"repro/internal/busmacro"
	"repro/internal/fabric"
	"repro/internal/hwcore"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("bitlinker", flag.ContinueOnError)
	fs.SetOutput(errw)
	module := fs.String("module", "", "module to assemble (see -list)")
	system := fs.Int("system", 32, "target system: 32 or 64")
	outPath := fs.String("o", "", "output XBF1 container path")
	inspect := fs.String("inspect", "", "inspect an XBF1 container")
	diff := fs.String("diff", "", "also assemble a differential stream assuming this module is loaded")
	list := fs.Bool("list", false, "list available modules")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if err := link(out, *module, *system, *outPath, *inspect, *diff, *list); err != nil {
		if err == errUsage {
			fs.Usage()
			return 2
		}
		fmt.Fprintln(errw, "bitlinker:", err)
		return 1
	}
	return 0
}

var errUsage = fmt.Errorf("no module selected")

func link(out io.Writer, module string, system int, outPath, inspect, diff string, list bool) error {
	if list {
		for _, s := range hwcore.Specs() {
			fmt.Fprintf(out, "%-14s v%-4s %v\n", s.Name, s.Version, s.Res)
		}
		return nil
	}
	if inspect != "" {
		data, err := os.ReadFile(inspect)
		if err != nil {
			return err
		}
		var s bitstream.Stream
		if err := s.UnmarshalBinary(data); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: device %s, %d words (%d bytes)\n", inspect, s.Device, len(s.Words), s.SizeBytes())
		return nil
	}
	if module == "" {
		return errUsage
	}

	var dev *fabric.Device
	var region fabric.Region
	var macro *busmacro.Macro
	if system == 64 {
		dev, region, macro = fabric.XC2VP30(), fabric.DynamicRegion64(), busmacro.Dock64()
	} else {
		dev, region, macro = fabric.XC2VP7(), fabric.DynamicRegion32(), busmacro.Dock32()
	}
	spec, err := hwcore.SpecByName(module)
	if err != nil {
		return err
	}
	comp, err := hwcore.BuildComponent(spec, dev, region, macro)
	if err != nil {
		return err
	}
	baseline := fabric.NewConfigMemory(dev)
	asm, err := bitlinker.New(dev, region, baseline, macro)
	if err != nil {
		return err
	}
	placed := bitlinker.Placed{C: comp, ColOff: region.W - comp.W}
	res, err := asm.Assemble(placed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s for %s/%s: footprint %dx%d CLBs, %d frames, %d bytes, region hash %#016x\n",
		module, dev.Name, region.Name, comp.W, comp.H, res.Frames,
		res.Stream.SizeBytes(), res.RegionHash)

	if diff != "" {
		prevSpec, err := hwcore.SpecByName(diff)
		if err != nil {
			return err
		}
		prevComp, err := hwcore.BuildComponent(prevSpec, dev, region, macro)
		if err != nil {
			return err
		}
		prev := asm.Target(bitlinker.Placed{C: prevComp, ColOff: region.W - prevComp.W})
		dres, err := asm.AssembleDifferential(prev, placed)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "differential (assuming %s loaded): %d frames, %d bytes (%.1f%% of complete)\n",
			diff, dres.Frames, dres.Stream.SizeBytes(),
			100*float64(dres.Stream.SizeBytes())/float64(res.Stream.SizeBytes()))
	}
	if outPath != "" {
		blob, err := res.Stream.MarshalBinary()
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", outPath)
	}
	return nil
}
