// Command bitlinker is the configuration assembly tool as a standalone
// utility: it "implements" a module for a target system's dynamic region,
// assembles its complete partial bitstream against the static baseline, and
// writes it as an XBF1 container. It can also inspect an existing container
// and compare complete vs differential stream sizes.
//
// Usage:
//
//	bitlinker -module jenkins -system 32 -o jenkins.xbf
//	bitlinker -inspect jenkins.xbf
//	bitlinker -module blend -system 32 -diff brightness
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bitlinker"
	"repro/internal/bitstream"
	"repro/internal/busmacro"
	"repro/internal/fabric"
	"repro/internal/hwcore"
)

func main() {
	module := flag.String("module", "", "module to assemble (see -list)")
	system := flag.Int("system", 32, "target system: 32 or 64")
	out := flag.String("o", "", "output XBF1 container path")
	inspect := flag.String("inspect", "", "inspect an XBF1 container")
	diff := flag.String("diff", "", "also assemble a differential stream assuming this module is loaded")
	list := flag.Bool("list", false, "list available modules")
	flag.Parse()

	if *list {
		for _, s := range hwcore.Specs() {
			fmt.Printf("%-14s v%-4s %v\n", s.Name, s.Version, s.Res)
		}
		return
	}
	if *inspect != "" {
		data, err := os.ReadFile(*inspect)
		if err != nil {
			log.Fatal(err)
		}
		var s bitstream.Stream
		if err := s.UnmarshalBinary(data); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: device %s, %d words (%d bytes)\n", *inspect, s.Device, len(s.Words), s.SizeBytes())
		return
	}
	if *module == "" {
		flag.Usage()
		os.Exit(2)
	}

	var dev *fabric.Device
	var region fabric.Region
	var macro *busmacro.Macro
	if *system == 64 {
		dev, region, macro = fabric.XC2VP30(), fabric.DynamicRegion64(), busmacro.Dock64()
	} else {
		dev, region, macro = fabric.XC2VP7(), fabric.DynamicRegion32(), busmacro.Dock32()
	}
	spec, err := hwcore.SpecByName(*module)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := hwcore.BuildComponent(spec, dev, region, macro)
	if err != nil {
		log.Fatal(err)
	}
	baseline := fabric.NewConfigMemory(dev)
	asm, err := bitlinker.New(dev, region, baseline, macro)
	if err != nil {
		log.Fatal(err)
	}
	placed := bitlinker.Placed{C: comp, ColOff: region.W - comp.W}
	res, err := asm.Assemble(placed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s for %s/%s: footprint %dx%d CLBs, %d frames, %d bytes, region hash %#016x\n",
		*module, dev.Name, region.Name, comp.W, comp.H, res.Frames,
		res.Stream.SizeBytes(), res.RegionHash)

	if *diff != "" {
		prevSpec, err := hwcore.SpecByName(*diff)
		if err != nil {
			log.Fatal(err)
		}
		prevComp, err := hwcore.BuildComponent(prevSpec, dev, region, macro)
		if err != nil {
			log.Fatal(err)
		}
		prev := asm.Target(bitlinker.Placed{C: prevComp, ColOff: region.W - prevComp.W})
		dres, err := asm.AssembleDifferential(prev, placed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("differential (assuming %s loaded): %d frames, %d bytes (%.1f%% of complete)\n",
			*diff, dres.Frames, dres.Stream.SizeBytes(),
			100*float64(dres.Stream.SizeBytes())/float64(res.Stream.SizeBytes()))
	}
	if *out != "" {
		blob, err := res.Stream.MarshalBinary()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
