package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	for _, want := range []string{"passthrough", "sha1", "jenkins", "fade"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunAssembleWriteInspect(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fade.xbf")
	var out, errw bytes.Buffer
	if code := run([]string{"-module", "fade", "-system", "32", "-diff", "brightness", "-o", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	got := out.String()
	if !strings.Contains(got, "fade for XC2VP7") || !strings.Contains(got, "differential (assuming brightness loaded)") {
		t.Errorf("assemble output:\n%s", got)
	}
	out.Reset()
	if code := run([]string{"-inspect", path}, &out, &errw); code != 0 {
		t.Fatalf("inspect exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "device XC2VP7") {
		t.Errorf("inspect output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(nil, &out, &errw); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if code := run([]string{"-module", "nosuch"}, &out, &errw); code != 1 {
		t.Fatalf("unknown module exit %d, want 1", code)
	}
}
