package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/tasks"
)

func TestResourceTablesWithinDevice(t *testing.T) {
	for _, s := range []*Table{ResourceTable(Sys32()), ResourceTable(Sys64())} {
		if len(s.Rows) < 12 {
			t.Errorf("%s: too few rows (%d)", s.ID, len(s.Rows))
		}
		var buf bytes.Buffer
		s.Format(&buf)
		out := buf.String()
		if !strings.Contains(out, "dynamic area") || !strings.Contains(out, "device capacity") {
			t.Errorf("%s: missing summary rows:\n%s", s.ID, out)
		}
	}
	t32 := ResourceTable(Sys32())
	if !strings.Contains(strings.Join(t32.Rows[len(t32.Rows)-2], " "), "25.0%") {
		t.Error("T1 dynamic area share is not 25.0% (paper §3.1)")
	}
	t64 := ResourceTable(Sys64())
	if !strings.Contains(strings.Join(t64.Rows[len(t64.Rows)-2], " "), "22.4%") {
		t.Error("T6 dynamic area share is not 22.4% (paper §4.1)")
	}
}

func TestHazardTableScenarios(t *testing.T) {
	ht := HazardTable(Sys32())
	if len(ht.Rows) != 5 {
		t.Fatalf("rows = %d", len(ht.Rows))
	}
	expect := [][2]string{
		{"fade", "intact"},
		{"BROKEN", "intact"},
		{"blend", "intact"},
		{"fade", "intact"},
		{"", "CORRUPTED"},
	}
	for i, e := range expect {
		if e[0] != "" && ht.Rows[i][1] != e[0] {
			t.Errorf("row %d bound = %q, want %q", i, ht.Rows[i][1], e[0])
		}
		if ht.Rows[i][2] != e[1] {
			t.Errorf("row %d static = %q, want %q", i, ht.Rows[i][2], e[1])
		}
	}
}

func TestConfigTimeTableShape(t *testing.T) {
	ct := ConfigTimeTable(Sys32())
	raw := ct.Raw()
	if len(raw) != 2 || raw[1] >= raw[0] {
		t.Fatalf("differential (%v) should be faster than complete (%v)", raw[1], raw[0])
	}
}

func TestFiguresRender(t *testing.T) {
	var buf bytes.Buffer
	Figure1(&buf)
	Figure2(&buf)
	Floorplan(&buf, Sys32())
	Floorplan(&buf, Sys64())
	out := buf.String()
	for _, want := range []string{"F1", "F2", "F3", "F4", "XC2VP7", "XC2VP30", "dynamic area", "PPPPPPPP"} {
		if !strings.Contains(out, want) {
			t.Errorf("figures missing %q", want)
		}
	}
	// The 32-bit floorplan must show the dynamic area markers.
	if !strings.Contains(out, "####") {
		t.Error("floorplan missing dynamic-area markers")
	}
}

func TestThroughputTableFromScheduledWorkload(t *testing.T) {
	p, err := pool.New(pool.Config{Sys32: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(p, sched.Options{Batch: 4})
	w := []tasks.Runner{
		tasks.FadeRun{Seed: 1, N: 256, F: 40},
		tasks.FadeRun{Seed: 2, N: 256, F: 80},
		tasks.BrightnessRun{Seed: 3, N: 256, Delta: 4},
	}
	for _, ch := range s.SubmitAll(w) {
		if r := <-ch; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	s.Wait()
	tb := ThroughputTable(s.Stats())
	if len(tb.Rows) != 3 { // fade, brightness, total
		t.Fatalf("rows = %d, want 3:\n%+v", len(tb.Rows), tb.Rows)
	}
	if hitRate := tb.Raw()[0]; hitRate <= 0 {
		t.Fatalf("hit rate %v, want >0 (second fade rides the warm configuration)", hitRate)
	}
	var buf bytes.Buffer
	tb.Format(&buf)
	if out := buf.String(); !strings.Contains(out, "bitstream cache hit rate") ||
		!strings.Contains(out, "member 0 region 0 simulated busy time") {
		t.Errorf("throughput table output:\n%s", out)
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tb := &Table{ID: "TX", Title: "test", Columns: []string{"a", "bbbb"}}
	tb.AddRow("x", "y")
	tb.Notes = append(tb.Notes, "a note")
	var buf bytes.Buffer
	tb.Format(&buf)
	out := buf.String()
	if !strings.Contains(out, "TX — test") || !strings.Contains(out, "note: a note") {
		t.Errorf("format output:\n%s", out)
	}
}
