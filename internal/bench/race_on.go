//go:build race

package bench

// raceEnabled: see race_off.go.
const raceEnabled = true
