package bench

import (
	"strings"
	"testing"
)

// TestPrefetchHidesVisibleConfigTime is the S3 acceptance check: on the
// seeded paced workload, prefetching with the markov predictor must hide
// at least 30% of the visible configuration time the PR 2 configuration
// (mincost placement + differential planner, no prefetch) still pays —
// with every request verifying and no member corrupted (RunPrefetch fails
// on either, so a hazard-gate violation is a hard test failure).
func TestPrefetchHidesVisibleConfigTime(t *testing.T) {
	spec := DefaultPrefetchSpec()
	base, err := RunPrefetch(spec, "mincost", "")
	if err != nil {
		t.Fatal(err)
	}
	// The frequency predictor is the stable choice on this mix: the seeded
	// workload draws tasks i.i.d., so there is no transition structure for
	// markov to exploit (it shrinks toward the same frequency estimates,
	// with residual sampling noise).
	pref, err := RunPrefetch(spec, "mincost", "freq")
	if err != nil {
		t.Fatal(err)
	}
	bs, ps := base.Stats, pref.Stats
	if bs.Done != uint64(spec.N) || ps.Done != uint64(spec.N) {
		t.Fatalf("incomplete runs: base %d, prefetch %d of %d", bs.Done, ps.Done, spec.N)
	}
	if bs.Config == 0 {
		t.Fatal("baseline has no visible configuration time to hide")
	}
	hidden := 1 - float64(ps.Config)/float64(bs.Config)
	t.Logf("visible config: baseline %v, prefetch %v (%.0f%% hidden); prefetch hits %d, aborted %d, wasted %d B",
		bs.Config, ps.Config, 100*hidden, ps.PrefetchHits, ps.PrefetchAborted, ps.PrefetchWasted)
	if hidden < 0.30 {
		t.Errorf("prefetch hides %.1f%% of visible configuration time, want >= 30%%", 100*hidden)
	}
	if ps.PrefetchHits == 0 || ps.HiddenConfig == 0 {
		t.Errorf("no prefetch hits banked: %+v", ps)
	}
}

// TestPrefetchTableShape checks the S3 artifact: one row per
// configuration, raw visible config times in row order, and the headline
// hiding note.
func TestPrefetchTableShape(t *testing.T) {
	spec := DefaultPrefetchSpec()
	spec.N = 24 // smaller workload: this test checks shape, not magnitude
	runs, err := PrefetchRuns(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(runs))
	}
	if runs[0].Predictor != "" || runs[0].Stats.PrefetchIssued != 0 {
		t.Fatalf("first run must be the no-prefetch baseline: %+v", runs[0].Label)
	}
	tab := PrefetchTable(runs)
	if tab.ID != "S3" || len(tab.Rows) != 4 || len(tab.Raw()) != 4 {
		t.Fatalf("table shape: id %s, %d rows, %d raw", tab.ID, len(tab.Rows), len(tab.Raw()))
	}
	var sb strings.Builder
	tab.Format(&sb)
	for _, want := range []string{"S3", "mincost+noprefetch", "mincost+prefetch-markov", "prefetch+prefetch-markov", "hides"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("formatted table missing %q:\n%s", want, sb.String())
		}
	}
	recs := PrefetchRecords(runs)
	if len(recs) != 4 || recs[0].Suite() != "S3" || recs[0].Window != spec.Window {
		t.Fatalf("records: %+v", recs[:1])
	}
	if recs[2].Predictor != "markov" {
		t.Errorf("record predictor = %q, want markov", recs[2].Predictor)
	}
}
