//go:build !race

package bench

// raceEnabled reports whether the race detector is compiled in. The S6
// scaling tests assert a real-throughput speedup bar only in race-free
// builds: the detector's per-access instrumentation dominates the dispatch
// path it would be measuring, so under -race the same drives run for
// correctness coverage with the bar waived.
const raceEnabled = false
