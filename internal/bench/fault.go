package bench

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
)

// FaultSpec pins the S7 availability evaluation: the S2/S3 seeded mixed
// workload driven closed-loop over a dual-region pool while a seeded
// fault scenario flips configuration bits between completions and the
// scrub/quarantine/repair loop cleans up. Scenario names a fault.Campaign
// preset; the default sweep reports availability and tail latency against
// the upset rate.
type FaultSpec struct {
	Boards   int
	Regions  int
	Seed     int64
	N        int
	Mix      string
	Batch    int
	Scenario string
}

// DefaultFaultSpec is the committed S7 configuration: the seeded
// 60-request mixed workload over a 2x2-region pool under the rate sweep.
func DefaultFaultSpec() FaultSpec {
	return FaultSpec{
		Boards:   2,
		Regions:  2,
		Seed:     7,
		N:        60,
		Mix:      "sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1",
		Batch:    4,
		Scenario: "sweep",
	}
}

func (spec FaultSpec) pool() pool.Config {
	return pool.Config{Sys64: spec.Boards, Regions: spec.Regions}
}

// FaultScenarios expands the spec's campaign preset against the spec's
// pool geometry. A scratch pool is booted only to measure each region's
// fault space; the replay runs boot their own.
func FaultScenarios(spec FaultSpec) ([]fault.Scenario, error) {
	p, err := pool.New(spec.pool())
	if err != nil {
		return nil, err
	}
	return fault.Campaign(spec.Scenario, spec.Seed, spec.N, fault.PoolSlots(p))
}

// FaultRun is one scenario's outcome: the scheduler stats plus the
// derived availability and latency percentiles.
type FaultRun struct {
	Scenario fault.Scenario
	Stats    sched.Stats
	// Availability is the fraction of the pool's busy simulated time spent
	// on useful work rather than configuration — visible, speculative, or
	// repair streams all count against it.
	Availability float64
	P50, P99     sim.Time
}

// availability derives the useful-work fraction from the stats.
func availability(st sched.Stats) float64 {
	total := st.Work + st.Config + st.PrefetchConfig + st.RepairConfig
	if total <= 0 {
		return 1
	}
	return float64(st.Work) / float64(total)
}

// RunFault boots a fresh pool and drives the spec's seeded workload
// closed-loop (window 1, settled between arrivals — the S3 discipline)
// under mincost placement with dispatch scrubbing on, injecting the
// scenario's due events after each completion and following every
// injection with a full scrub pass. The injection points ride the
// deterministic completion count, so the same (spec, scenario) always
// produces the same row.
func RunFault(spec FaultSpec, sc fault.Scenario) (FaultRun, error) {
	run := FaultRun{Scenario: sc}
	policy, err := sched.PolicyByName("mincost")
	if err != nil {
		return run, err
	}
	mix, err := sched.ParseMix(spec.Mix)
	if err != nil {
		return run, err
	}
	w, err := sched.GenWorkload(spec.Seed, spec.N, mix)
	if err != nil {
		return run, err
	}
	p, err := pool.New(spec.pool())
	if err != nil {
		return run, err
	}
	s := sched.New(p, sched.Options{Batch: spec.Batch, Policy: policy, Scrub: true})
	cur := sc.Cursor()
	lats := make([]sim.Time, 0, len(w))
	done := 0
	var firstErr error
	s.SubmitWindowed(w, 1, func(r sched.Result) {
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("bench: request %d (%s): %w", r.ID, r.Task, r.Err)
		}
		lats = append(lats, r.Latency())
		settle(s)
		done++
		due := cur.Due(done)
		for _, e := range due {
			if err := fault.Apply(p, e); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("bench: fault after request %d: %w", done, err)
			}
		}
		if len(due) > 0 {
			s.ScrubAll()
			settle(s)
		}
	})
	settle(s)
	s.Wait()
	if firstErr != nil {
		return run, firstErr
	}
	for _, m := range p.Snapshot() {
		if m.Corrupted {
			return run, fmt.Errorf("bench: member %d corrupted under scenario %s", m.ID, sc.Name)
		}
	}
	run.Stats = s.Stats()
	run.Availability = availability(run.Stats)
	pct := Percentiles(lats, 0.50, 0.99)
	run.P50, run.P99 = pct[0], pct[1]
	return run, nil
}

// FaultRuns executes the spec's whole campaign, one run per scenario.
func FaultRuns(spec FaultSpec) ([]FaultRun, error) {
	scenarios, err := FaultScenarios(spec)
	if err != nil {
		return nil, err
	}
	runs := make([]FaultRun, 0, len(scenarios))
	for _, sc := range scenarios {
		r, err := RunFault(spec, sc)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// FaultTable renders fault runs as table S7: availability and tail
// latency versus upset rate under the scrub/quarantine/repair loop.
// Raw() carries each row's availability.
func FaultTable(runs []FaultRun) *Table {
	t := &Table{ID: "S7", Title: "Availability under injected configuration upsets with readback scrubbing",
		Columns: []string{"scenario", "rate", "injected", "detected", "requeued", "repaired", "availability", "config time", "repair time", "p99 latency"}}
	for _, r := range runs {
		st := r.Stats
		t.AddRow(r.Scenario.Name, fmt.Sprintf("%.2g", r.Scenario.Rate),
			fmt.Sprint(len(r.Scenario.Events)), fmt.Sprint(st.FaultsDetected),
			fmt.Sprint(st.Requeues), fmt.Sprint(st.Repairs),
			fmt.Sprintf("%.3f", r.Availability),
			fmtNS(float64(st.Config)), fmtNS(float64(st.RepairConfig)),
			fmtNS(float64(r.P99)))
		t.rawNS = append(t.rawNS, r.Availability)
	}
	t.Notes = append(t.Notes,
		"rate is the per-completion upset probability; every injected flip lands inside a region band (recoverable by a complete reload)",
		"an upset costs availability (repair streams) and tail latency (requeues), never correctness: all requests complete, the static design stays intact",
		"detected can trail injected: a flip overwritten by the region's next complete stream is healed before any readback sees it")
	return t
}

// FaultRecords converts fault runs into typed S7 records. The paced drive
// and seeded scenarios make the rows deterministic.
func FaultRecords(runs []FaultRun) []FaultRecord {
	out := make([]FaultRecord, 0, len(runs))
	for _, r := range runs {
		st := r.Stats
		out = append(out, FaultRecord{
			Base:           baseFromRun(PlacementRun{Label: r.Scenario.Name + "+scrub", Policy: "mincost", Planner: true, Stats: st}, 15),
			FaultsInjected: uint64(len(r.Scenario.Events)),
			FaultsDetected: st.FaultsDetected,
			Requeues:       st.Requeues,
			Repairs:        st.Repairs,
			RepairMs:       float64(st.RepairConfig.Microseconds()) / 1e3,
			Availability:   r.Availability,
			P99Ms:          float64(r.P99.Microseconds()) / 1e3,
		})
	}
	return out
}
