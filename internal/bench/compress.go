package bench

import (
	"fmt"

	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/trace"
)

// CompressSpec pins the S8 evaluation: the same seeded mixed workload
// driven over the dual-region 64-bit pool under each configuration load
// path — complete streams, differentials, compressed containers, and
// compressed containers over the region docks' DMA engines.
//
// The drive is paired: requests are submitted two at a time as one batch
// against a settled pool, so the round-aware gang policy can co-locate a
// round's two misses on sibling regions of one member, where DMA mode
// overlaps their port windows. The pairing and every member timeline are
// deterministic, so the rows gate tight.
type CompressSpec struct {
	// Boards is the dual-region 64-bit member count.
	Boards int
	Seed   int64
	N      int
	Mix    string
	Batch  int

	// Trace, when non-nil, records every run's scheduler and load-path
	// events — the paired drive is deterministic, so the recorded trace
	// is too (the CI workflow renders it as a Perfetto artifact).
	Trace *trace.Tracer
}

// DefaultCompressSpec is the committed S8 configuration: the seeded
// 60-request mixed workload of S2/S3/S4 over two dual-region 64-bit
// boards.
func DefaultCompressSpec() CompressSpec {
	return CompressSpec{
		Boards: 2,
		Seed:   7,
		N:      60,
		Mix:    "sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1",
		Batch:  4,
	}
}

// CompressRun is one load-path configuration's outcome over the paired
// workload.
type CompressRun struct {
	Label    string
	Policy   string
	Planner  bool
	Compress bool
	DMA      bool
	Stats    sched.Stats
	// Availability is the useful-work fraction of the pool's busy
	// simulated time (hidden DMA window parts never count against it —
	// they overlapped work or sibling streams by definition).
	Availability float64
}

// RunCompress boots a fresh dual-region pool, applies the load-path
// configuration, and drives the spec's workload in deterministic pairs.
func RunCompress(spec CompressSpec, label, policyName string, planner, compress, dma bool) (CompressRun, error) {
	run := CompressRun{Label: label, Policy: policyName, Planner: planner, Compress: compress, DMA: dma}
	policy, err := sched.PolicyByName(policyName)
	if err != nil {
		return run, err
	}
	mix, err := sched.ParseMix(spec.Mix)
	if err != nil {
		return run, err
	}
	w, err := sched.GenWorkload(spec.Seed, spec.N, mix)
	if err != nil {
		return run, err
	}
	p, err := pool.New(pool.Config{Sys64: spec.Boards, Regions: 2})
	if err != nil {
		return run, err
	}
	p.SetPlanning(planner)
	p.SetCompression(compress)
	s := sched.New(p, sched.Options{Batch: spec.Batch, Policy: policy, DMA: dma, Trace: spec.Trace})
	var firstErr error
	for i := 0; i < len(w); i += 2 {
		end := i + 2
		if end > len(w) {
			end = len(w)
		}
		for _, ch := range s.SubmitBatch(w[i:end]) {
			if r := <-ch; r.Err != nil && firstErr == nil {
				firstErr = fmt.Errorf("bench: request %d (%s): %w", r.ID, r.Task, r.Err)
			}
		}
		settle(s)
	}
	s.Wait()
	if firstErr != nil {
		return run, firstErr
	}
	for _, m := range p.Snapshot() {
		if m.Corrupted {
			return run, fmt.Errorf("bench: member %d corrupted under %s", m.ID, label)
		}
	}
	run.Stats = s.Stats()
	run.Availability = availability(run.Stats)
	return run, nil
}

// CompressRuns executes the canonical S8 comparison: the complete-only
// baseline, the differential planner, the compressed load path, and the
// compressed load path over the dock DMA engines with gang placement.
// The first three rows share mincost placement and the CPU load path, so
// their deltas isolate what each stream kind saves on the wire; the last
// row changes the path (DMA) and the pairing (gang), so its delta is the
// visible-time win of overlapping sibling configurations.
func CompressRuns(spec CompressSpec) ([]CompressRun, error) {
	configs := []struct {
		label    string
		policy   string
		planner  bool
		compress bool
		dma      bool
	}{
		{"complete", "mincost", false, false, false},
		{"diff", "mincost", true, false, false},
		{"compressed", "mincost", true, true, false},
		{"compressed+dma", "gang", true, true, true},
	}
	runs := make([]CompressRun, 0, len(configs))
	for _, c := range configs {
		r, err := RunCompress(spec, c.label, c.policy, c.planner, c.compress, c.dma)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// CompressTable renders compress runs as table S8: what the compressed
// container and the DMA load path are worth on the same paired workload.
// Raw() carries each run's visible configuration time in femtoseconds.
func CompressTable(runs []CompressRun) *Table {
	t := &Table{ID: "S8", Title: "Compressed containers and DMA-overlapped configuration on the paired seeded workload",
		Columns: []string{"configuration", "hits", "misses", "diff", "complete", "compressed", "dma", "config time", "overlap config", "bytes streamed", "availability"}}
	for _, r := range runs {
		st := r.Stats
		t.AddRow(r.Label,
			fmt.Sprint(st.Hits), fmt.Sprint(st.Misses),
			fmt.Sprint(st.DiffLoads), fmt.Sprint(st.CompleteLoads), fmt.Sprint(st.CompressedLoads),
			fmt.Sprint(st.DMALoads),
			fmtNS(float64(st.Config)), fmtNS(float64(st.OverlapConfig)),
			fmt.Sprintf("%d B", st.BytesStreamed),
			fmt.Sprintf("%.4f", r.Availability))
		t.rawNS = append(t.rawNS, float64(st.Config))
	}
	if len(runs) >= 4 {
		diff, z, zd := runs[1].Stats, runs[2].Stats, runs[3].Stats
		if diff.BytesStreamed > 0 && z.BytesStreamed > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s vs %s: %.1fx fewer bytes on the wire — frame-level RLE plus keep/dedup ops reference the live region content instead of re-streaming it",
				runs[2].Label, runs[1].Label,
				float64(diff.BytesStreamed)/float64(z.BytesStreamed)))
		}
		if z.Config > 0 && zd.Config > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s vs %s: %.1fx less visible config time — the DMA engine is wire-word-bound (the in-engine decompressor's keep words never transit the port) and sibling windows overlap (%v hidden)",
				runs[3].Label, runs[2].Label,
				float64(z.Config)/float64(zd.Config), zd.OverlapConfig))
		}
	}
	t.Notes = append(t.Notes,
		"the CPU load path charges the port per DECODED word, so compression cuts rows' bytes, not their config time — the DMA rows are where the wire savings become time",
		"compression off keeps every plan byte-identical to the three-kind planner; the compressed rows opt in per pool")
	return t
}

// CompressRecords converts compress runs into typed S8 records. The
// paired drive is deterministic, so the rows gate at the tight band.
func CompressRecords(runs []CompressRun) []CompressRecord {
	out := make([]CompressRecord, 0, len(runs))
	for _, r := range runs {
		st := r.Stats
		out = append(out, CompressRecord{
			Base:            baseFromRun(PlacementRun{Label: r.Label, Policy: r.Policy, Planner: r.Planner, Stats: st}, 15),
			CompressedLoads: st.CompressedLoads,
			DMALoads:        st.DMALoads,
			OverlapMs:       st.OverlapConfig.Microseconds() / 1e3,
			Availability:    r.Availability,
		})
	}
	return out
}
