package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ArrivalProcesses lists the open-loop arrival generators.
func ArrivalProcesses() []string { return []string{"uniform", "poisson", "bursty"} }

// settle busy-waits until the scheduler has fully drained — no pending
// requests, no executing slot, no speculative stream in flight — the
// reproducibility discipline every paced bench run shares.
func settle(s *sched.Scheduler) {
	for !s.Drained() {
		time.Sleep(50 * time.Microsecond)
	}
}

// burstLen is the bursty process's on-phase length: arrivals come in
// back-to-back groups of this size separated by long off gaps, keeping the
// configured mean rate.
const burstLen = 8

// GenArrivals draws n absolute arrival times for the named open-loop
// process with the given mean inter-arrival gap, from a seeded generator —
// the same (seed, n, process, mean) always yields the same trace.
//
//   - "uniform": fixed gaps (the closed-loop-like baseline)
//   - "poisson": exponential gaps — independent arrivals at rate 1/mean
//   - "bursty": on/off — bursts of burstLen arrivals with tenth-gap
//     spacing, then an off gap restoring the mean rate
func GenArrivals(seed int64, n int, process string, mean sim.Time) ([]sim.Time, error) {
	if n <= 0 || mean <= 0 {
		return nil, fmt.Errorf("bench: bad arrival trace (n=%d mean=%v)", n, mean)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]sim.Time, n)
	var now sim.Time
	switch process {
	case "uniform":
		for i := range out {
			out[i] = now
			now += mean
		}
	case "poisson":
		for i := range out {
			out[i] = now
			now += sim.Time(float64(mean) * rng.ExpFloat64())
		}
	case "bursty":
		// Each burst of burstLen arrivals spans (burstLen-1)*mean/10; the
		// off gap brings the average spacing back to mean.
		inBurst := mean / 10
		off := sim.Time(burstLen)*mean - sim.Time(burstLen-1)*inBurst
		for i := range out {
			out[i] = now
			if (i+1)%burstLen == 0 {
				// Jittered off phase so bursts do not phase-lock.
				now += sim.Time(float64(off) * (0.5 + rng.Float64()))
			} else {
				now += inBurst
			}
		}
	default:
		return nil, fmt.Errorf("bench: unknown arrival process %q (have %v)", process, ArrivalProcesses())
	}
	return out, nil
}

// ReplayOpenLoop pushes the (arrival, service) trace through a virtual
// k-server FCFS queue and returns each request's sojourn time (queue wait
// plus service) and the makespan. The per-member simulated-time model
// measures service but not queue wait (a request waiting for a busy member
// costs nothing anywhere); this replay adds the missing queueing dimension
// for latency-percentile reporting. k is the pool's MEMBER count: sibling
// regions of one board serialize on the board's single timeline, so extra
// regions add cache capacity (already baked into the measured service
// times) but never execution parallelism.
func ReplayOpenLoop(arrivals, services []sim.Time, k int) (sojourn []sim.Time, makespan sim.Time) {
	if k < 1 {
		k = 1
	}
	free := make([]sim.Time, k) // next-free time per virtual server
	sojourn = make([]sim.Time, len(arrivals))
	for i, at := range arrivals {
		best := 0
		for j := 1; j < k; j++ {
			if free[j] < free[best] {
				best = j
			}
		}
		start := at
		if free[best] > start {
			start = free[best]
		}
		end := start + services[i]
		free[best] = end
		sojourn[i] = end - at
		if end > makespan {
			makespan = end
		}
	}
	return sojourn, makespan
}

// Percentile returns the nearest-rank q-quantile (0 < q <= 1) of the
// latencies.
func Percentile(lats []sim.Time, q float64) sim.Time {
	return Percentiles(lats, q)[0]
}

// Percentiles returns the nearest-rank quantiles of the latencies, sorting
// once for all requested ranks.
func Percentiles(lats []sim.Time, qs ...float64) []sim.Time {
	out := make([]sim.Time, len(qs))
	if len(lats) == 0 {
		return out
	}
	s := append([]sim.Time(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for i, q := range qs {
		idx := int(math.Ceil(q*float64(len(s)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s) {
			idx = len(s) - 1
		}
		out[i] = s[idx]
	}
	return out
}

// ServiceTrace drives the spec's seeded workload closed-loop (window 1,
// settled between arrivals) over a fresh planner-backed mincost pool and
// returns each request's service latency in submission order — the
// deterministic per-request costs the open-loop replay feeds on — plus the
// pool's member count (its execution parallelism) and the scheduler stats.
func ServiceTrace(spec PlacementSpec) ([]sim.Time, int, sched.Stats, error) {
	policy, err := sched.PolicyByName("mincost")
	if err != nil {
		return nil, 0, sched.Stats{}, err
	}
	mix, err := sched.ParseMix(spec.Mix)
	if err != nil {
		return nil, 0, sched.Stats{}, err
	}
	w, err := sched.GenWorkload(spec.Seed, spec.N, mix)
	if err != nil {
		return nil, 0, sched.Stats{}, err
	}
	p, err := pool.New(spec.Pool)
	if err != nil {
		return nil, 0, sched.Stats{}, err
	}
	s := sched.New(p, sched.Options{Batch: spec.Batch, Policy: policy})
	services := make([]sim.Time, 0, len(w))
	var firstErr error
	s.SubmitWindowed(w, 1, func(r sched.Result) {
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("bench: request %d (%s): %w", r.ID, r.Task, r.Err)
		}
		services = append(services, r.Latency())
		settle(s)
	})
	s.Wait()
	if firstErr != nil {
		return nil, 0, sched.Stats{}, firstErr
	}
	return services, p.Size(), s.Stats(), nil
}

// ArrivalRun is one (arrival process, offered load) replay of the
// measured service trace: the virtual k-server sojourn percentiles plus
// the single paced run the whole table replays (shared by every row).
type ArrivalRun struct {
	Process string
	Rho     float64
	MeanGap sim.Time

	P50, P95, P99, Max sim.Time
	Makespan           sim.Time
	N                  int

	// Members and AvgService describe the shared service trace; Stats is
	// the paced mincost+planner run it was measured on.
	Members    int
	AvgService sim.Time
	Stats      sched.Stats
}

// SimThroughput is the replay's completion rate in requests per simulated
// second.
func (r ArrivalRun) SimThroughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.N) / (float64(r.Makespan) / float64(sim.Second))
}

// ArrivalRuns measures the spec's service trace once (a paced
// mincost+planner run) and replays it through the virtual k-server queue
// under every arrival process at each offered load. Offered load rho is
// the fraction of the pool's aggregate service capacity the arrival rate
// consumes; the mean inter-arrival gap is avgService/(members*rho). The
// replay is pure arithmetic over the deterministic trace, so the rows
// reproduce exactly.
func ArrivalRuns(spec PlacementSpec, seed int64, rhos []float64) ([]ArrivalRun, error) {
	services, members, stats, err := ServiceTrace(spec)
	if err != nil {
		return nil, err
	}
	var total sim.Time
	for _, s := range services {
		total += s
	}
	avg := total / sim.Time(len(services))
	runs := make([]ArrivalRun, 0, len(rhos)*len(ArrivalProcesses()))
	for _, rho := range rhos {
		mean := sim.Time(float64(avg) / (float64(members) * rho))
		for _, proc := range ArrivalProcesses() {
			arr, err := GenArrivals(seed, len(services), proc, mean)
			if err != nil {
				return nil, err
			}
			soj, makespan := ReplayOpenLoop(arr, services, members)
			run := ArrivalRun{
				Process: proc, Rho: rho, MeanGap: mean,
				Makespan: makespan, N: len(soj),
				Members: members, AvgService: avg, Stats: stats,
			}
			for _, l := range soj {
				if l > run.Max {
					run.Max = l
				}
			}
			pct := Percentiles(soj, 0.50, 0.95, 0.99)
			run.P50, run.P95, run.P99 = pct[0], pct[1], pct[2]
			runs = append(runs, run)
		}
	}
	return runs, nil
}

// ArrivalRecords converts arrival replays into typed S5 records, one per
// (process, offered load) row, labelled like the S6 cells
// (poisson/rho-0.70) so the two latency tables read side by side.
func ArrivalRecords(runs []ArrivalRun) []ArrivalRecord {
	out := make([]ArrivalRecord, 0, len(runs))
	for _, r := range runs {
		out = append(out, ArrivalRecord{
			Base: baseFromRun(PlacementRun{
				Label:   fmt.Sprintf("%s/rho-%.2f", r.Process, r.Rho),
				Policy:  "mincost",
				Planner: true,
				Stats:   r.Stats,
			}, 15),
			Process:          r.Process,
			OfferedLoad:      r.Rho,
			P50Ms:            r.P50.Milliseconds(),
			P95Ms:            r.P95.Milliseconds(),
			P99Ms:            r.P99.Milliseconds(),
			SimThroughputRPS: r.SimThroughput(),
		})
	}
	return out
}

// ArrivalTable renders table S5: latency percentiles of the measured
// service trace under open-loop arrival processes. Raw() carries each
// row's p99 sojourn in femtoseconds. S5 characterizes the queueing of the
// paced service trace; the live open-loop scaling curve is S6
// (ScalingTable), which drives the real sharded scheduler instead of the
// balanced k-server ideal.
func ArrivalTable(spec PlacementSpec, seed int64, rhos []float64) (*Table, error) {
	runs, err := ArrivalRuns(spec, seed, rhos)
	if err != nil {
		return nil, err
	}
	return ArrivalTableFromRuns(runs), nil
}

// ArrivalTableFromRuns renders table S5 from already-computed replays.
func ArrivalTableFromRuns(runs []ArrivalRun) *Table {
	t := &Table{ID: "S5", Title: "Open-loop arrivals: latency percentiles over the measured service trace",
		Columns: []string{"process", "offered load", "mean gap", "p50", "p95", "p99", "max", "throughput"}}
	for _, r := range runs {
		thr := "-"
		if r.Makespan > 0 {
			thr = fmt.Sprintf("%.0f/s", r.SimThroughput())
		}
		t.AddRow(r.Process, fmt.Sprintf("%.2f", r.Rho), fmtNS(float64(r.MeanGap)),
			fmtNS(float64(r.P50)), fmtNS(float64(r.P95)), fmtNS(float64(r.P99)),
			fmtNS(float64(r.Max)), thr)
		t.rawNS = append(t.rawNS, float64(r.P99))
	}
	if len(runs) > 0 {
		r := runs[0]
		t.Notes = append(t.Notes,
			fmt.Sprintf("service trace: %d requests, avg service %v over %d members (paced mincost+planner run)", r.N, r.AvgService, r.Members))
	}
	t.Notes = append(t.Notes,
		"sojourn = queue wait + service through a virtual FCFS replay; the scheduler's own accounting measures service only",
		fmt.Sprintf("bursty arrivals come in groups of %d at a tenth of the mean gap", burstLen))
	return t
}
