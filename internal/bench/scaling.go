package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ScalingSpec pins one S6 open-loop scaling evaluation: a seeded
// single-module workload driven through the live sharded scheduler at a
// range of offered loads and shard counts.
//
// S6 measures scheduler capacity, so the workload is the dispatch-bound
// analogue of a null RPC: one module, resident in every slot before the
// drive starts (the pool is pre-warmed), so every request is a bitstream
// cache hit and the request path never streams configuration data. Real
// wall-clock throughput then isolates the dispatcher — queue scans, lock
// hold times, placement bookkeeping — which is exactly the cost sharding
// attacks; with misses in the mix the word-serial ICAP stream simulation
// (tens of real milliseconds per complete load) would swamp that signal
// three orders of magnitude deep. The pre-warm also makes the gated
// metrics exact: an S6 row's visible configuration time and request-path
// bytes are zero by construction, and benchdiff's zero-baseline rule turns
// any future miss on this drive into a hard gate failure.
type ScalingSpec struct {
	Pool    pool.Config
	Seed    int64
	N       int
	Module  string // the single resident module every request runs
	Batch   int    // 1 = strict FIFO, keeping sojourns in arrival order
	Policy  string
	Process string // arrival process (see GenArrivals)
	Feeders int    // concurrent open-loop submitters

	// MeanService is the calibrated average all-hit service time of the
	// module, fixing the offered-load axis: at offered load rho the mean
	// inter-arrival gap is MeanService/(members*rho). A constant (rather
	// than a per-run calibration) keeps every row's arrival trace
	// byte-identical across runs and machines.
	MeanService sim.Time

	Rhos   []float64
	Shards []int
}

// DefaultScalingSpec is the committed S6 configuration: a homogeneous
// 32-board pool under a Poisson open-loop drive, swept over shard counts
// 1-8 and offered loads from well under capacity to saturating. The pool
// is homogeneous (all 32-bit boards) so every member simulates at the
// same real-time speed: in a mixed pool the wider systems execute their
// simulation faster and win a disproportionate share of the backlogged
// queue, skewing the per-member sojourn chains. MeanService is the
// measured mean all-hit jenkins service on this pool (p50 61us, p99
// 111us). N is deep enough that the 1-shard dispatcher's O(pending x
// slots) queue scan dominates its request path — the cost the shard
// sweep exposes.
func DefaultScalingSpec() ScalingSpec {
	return ScalingSpec{
		Pool:        pool.Config{Sys32: 32},
		Seed:        7,
		N:           8000,
		Module:      "jenkins",
		Batch:       1,
		Policy:      "lru",
		Process:     "poisson",
		Feeders:     4,
		MeanService: 60 * sim.Microsecond,
		Rhos:        []float64{0.25, 1, 4},
		Shards:      []int{1, 2, 4, 8},
	}
}

// ScalingRun is one (shard count, offered load) cell of the S6 sweep.
type ScalingRun struct {
	Label   string
	Shards  int
	Rho     float64
	Process string

	// Elapsed is the real wall-clock span from first submission to last
	// delivered result: N/Elapsed is the sustained dispatch rate of the
	// scheduler itself (host-dependent, so reported but never gated).
	Elapsed time.Duration

	// P50/P95/P99 are simulated-time sojourn (queue wait + service)
	// percentiles from the scheduler's open-loop wall-clock overlay, and
	// Makespan the simulated completion time of the whole trace.
	P50, P95, P99 sim.Time
	Makespan      sim.Time

	Stats sched.Stats
}

// RealThroughput is the sustained real-time dispatch rate in requests per
// second of host wall-clock time.
func (r ScalingRun) RealThroughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Stats.Done) / r.Elapsed.Seconds()
}

// SimThroughput is the trace's completion rate in requests per simulated
// second.
func (r ScalingRun) SimThroughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Stats.Done) / (float64(r.Makespan) / float64(sim.Second))
}

// RunScaling drives one S6 cell: boot and pre-warm the pool, then submit
// the seeded workload open-loop — every request carries its generated
// arrival stamp, and submission never waits for completions — from
// spec.Feeders concurrent feeders through a scheduler with the given shard
// count.
//
// The drive is open-loop in simulated time only: feeders submit
// back-to-back rather than pacing arrival stamps against the host clock,
// because a one-core host sleeping between submissions would measure its
// own timer, not the scheduler. Queueing behaviour versus arrival rate
// comes from the stamps through the scheduler's wall-clock overlay
// (Result.Sojourn); real elapsed time measures dispatch capacity under a
// fully backlogged queue — the same saturated regime every cell shares.
func RunScaling(spec ScalingSpec, shards int, rho float64) (ScalingRun, error) {
	run := ScalingRun{
		Label:   fmt.Sprintf("shards-%d/rho-%.2g/%s", shards, rho, spec.Process),
		Shards:  shards,
		Rho:     rho,
		Process: spec.Process,
	}
	if rho <= 0 {
		return run, fmt.Errorf("bench: offered load %v", rho)
	}
	policy, err := sched.PolicyByName(spec.Policy)
	if err != nil {
		return run, err
	}
	mix, err := sched.ParseMix(spec.Module)
	if err != nil {
		return run, err
	}
	w, err := sched.GenWorkload(spec.Seed, spec.N, mix)
	if err != nil {
		return run, err
	}
	p, err := pool.New(spec.Pool)
	if err != nil {
		return run, err
	}
	mean := sim.Time(float64(spec.MeanService) / (float64(p.Size()) * rho))
	arrivals, err := GenArrivals(spec.Seed, spec.N, spec.Process, mean)
	if err != nil {
		return run, err
	}
	// Pre-warm: host the module in every slot so the drive is all-hit.
	for _, m := range p.Members() {
		for ri := 0; ri < m.Sys.NumRegions(); ri++ {
			if _, err := m.Sys.LoadModuleOn(ri, spec.Module); err != nil {
				return run, fmt.Errorf("bench: pre-warm member %d region %d: %w", m.ID, ri, err)
			}
		}
	}
	s := sched.New(p, sched.Options{Batch: spec.Batch, Policy: policy, Shards: shards})
	feeders := spec.Feeders
	if feeders < 1 {
		feeders = 1
	}
	chs := make([]<-chan sched.Result, spec.N)
	// Collect the boot and pre-warm garbage now so no cell pays another
	// cell's GC debt during its timed drive.
	runtime.GC()
	start := time.Now()
	var fwg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		fwg.Add(1)
		go func(f int) {
			defer fwg.Done()
			// Striped: each feeder submits its slice of the trace in
			// increasing-arrival order, so the merged stream is arrival-
			// ordered up to feeder interleaving (concurrent front-ends).
			for i := f; i < spec.N; i += feeders {
				chs[i] = s.SubmitAt(w[i], arrivals[i])
			}
		}(f)
	}
	fwg.Wait()
	sojourns := make([]sim.Time, 0, spec.N)
	for _, ch := range chs {
		r := <-ch
		if r.Err != nil {
			return run, fmt.Errorf("bench: request %d (%s): %w", r.ID, r.Task, r.Err)
		}
		if r.DoneAt > run.Makespan {
			run.Makespan = r.DoneAt
		}
		sojourns = append(sojourns, r.Sojourn)
	}
	s.Wait()
	run.Elapsed = time.Since(start)
	run.Stats = s.Stats()
	pct := Percentiles(sojourns, 0.50, 0.95, 0.99)
	run.P50, run.P95, run.P99 = pct[0], pct[1], pct[2]
	return run, nil
}

// ScalingRuns executes the full spec sweep, one fresh pool per cell, in
// shard-major order (all offered loads for one shard count, then the
// next).
func ScalingRuns(spec ScalingSpec) ([]ScalingRun, error) {
	runs := make([]ScalingRun, 0, len(spec.Shards)*len(spec.Rhos))
	for _, shards := range spec.Shards {
		for _, rho := range spec.Rhos {
			r, err := RunScaling(spec, shards, rho)
			if err != nil {
				return nil, err
			}
			runs = append(runs, r)
		}
	}
	return runs, nil
}

// SaturationSpeedup reports the sustained real-throughput ratio between
// the largest and smallest shard count at the highest offered load in the
// runs — the S6 headline number. ok is false when the runs hold fewer than
// two shard counts at that load.
func SaturationSpeedup(runs []ScalingRun) (speedup float64, lo, hi ScalingRun, ok bool) {
	maxRho := 0.0
	for _, r := range runs {
		if r.Rho > maxRho {
			maxRho = r.Rho
		}
	}
	first := true
	for _, r := range runs {
		if r.Rho != maxRho {
			continue
		}
		if first || r.Shards < lo.Shards {
			lo = r
		}
		if first || r.Shards > hi.Shards {
			hi = r
		}
		first = false
	}
	if first || lo.Shards == hi.Shards || lo.RealThroughput() <= 0 {
		return 0, lo, hi, false
	}
	return hi.RealThroughput() / lo.RealThroughput(), lo, hi, true
}

// ScalingTable renders scaling runs as table S6: simulated sojourn
// percentiles and throughput versus arrival rate and shard count. Raw()
// carries each row's sustained real throughput in requests per second.
func ScalingTable(runs []ScalingRun) *Table {
	t := &Table{ID: "S6", Title: "Sharded dispatch under open-loop arrivals: latency and throughput vs offered load and shard count",
		Columns: []string{"shards", "process", "offered load", "p50", "p95", "p99", "sim throughput", "real throughput", "steals"}}
	for _, r := range runs {
		t.AddRow(fmt.Sprint(r.Shards), r.Process, fmt.Sprintf("%.2f", r.Rho),
			fmtNS(float64(r.P50)), fmtNS(float64(r.P95)), fmtNS(float64(r.P99)),
			fmt.Sprintf("%.0f/s", r.SimThroughput()),
			fmt.Sprintf("%.0f/s", r.RealThroughput()),
			fmt.Sprint(r.Stats.Steals))
		t.rawNS = append(t.rawNS, r.RealThroughput())
	}
	if sp, lo, hi, ok := SaturationSpeedup(runs); ok {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"at offered load %.2f, %d shards sustain %.1fx the real dispatch throughput of %d shard(s) (%.0f/s vs %.0f/s)",
			hi.Rho, hi.Shards, sp, lo.Shards, hi.RealThroughput(), lo.RealThroughput()))
	}
	t.Notes = append(t.Notes,
		"all-hit capacity drive: the module is pre-warmed into every slot, so the request path streams zero configuration bytes and real throughput isolates the dispatcher",
		"sojourn percentiles (queue wait + service) come from the scheduler's simulated wall-clock overlay over the generated arrival stamps; real throughput is host wall-clock and never gated",
		"submission is back-to-back from concurrent feeders — open-loop in simulated time — so every cell measures dispatch capacity under a fully backlogged queue",
		"under full backlog, placement is completion-driven and bursts onto whichever member last freed, so the sojourn chains concentrate beyond the balanced k-server ideal the S5 replay assumes — the S5/S6 percentile gap is that imbalance, measured")
	return t
}

// ScalingRecords converts scaling runs for JSON emission. The gated
// metrics (config_ms, bytes_streamed) are zero by construction for the
// all-hit drive, so benchdiff's zero-baseline absolute gate pins them: a
// fresh run that misses even once fails the gate. The throughput and
// percentile fields are host- or schedule-dependent and informational.
func ScalingRecords(runs []ScalingRun) []ScalingRecord {
	out := make([]ScalingRecord, 0, len(runs))
	for _, r := range runs {
		out = append(out, ScalingRecord{
			// Tolerance 0: the zero baselines gate on absolute epsilon.
			Base:             baseFromRun(PlacementRun{Label: r.Label, Policy: "lru", Planner: true, Stats: r.Stats}, 0),
			Shards:           r.Shards,
			OfferedLoad:      r.Rho,
			Process:          r.Process,
			ThroughputRPS:    r.RealThroughput(),
			SimThroughputRPS: r.SimThroughput(),
			P50Ms:            r.P50.Milliseconds(),
			P95Ms:            r.P95.Milliseconds(),
			P99Ms:            r.P99.Milliseconds(),
			Steals:           r.Stats.Steals,
			StolenRequests:   r.Stats.StolenRequests,
		})
	}
	return out
}
