package bench

import (
	"reflect"
	"testing"
)

// TestFaultSweepAvailability drives the S7 rate sweep end to end and
// checks its headline shape: the clean scenario injects nothing, the top
// rate injects and detects faults, every detection is repaired, all
// requests complete, and availability never improves as the upset rate
// rises.
func TestFaultSweepAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("full S7 sweep")
	}
	spec := DefaultFaultSpec()
	runs, err := FaultRuns(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("sweep produced %d runs, want 4", len(runs))
	}
	for i, r := range runs {
		st := r.Stats
		if st.Done != uint64(spec.N) || st.Errors != 0 {
			t.Fatalf("%s: %d done / %d errors, want %d clean completions", r.Scenario.Name, st.Done, st.Errors, spec.N)
		}
		if st.FaultsDetected != st.Repairs {
			t.Fatalf("%s: %d detected != %d repaired", r.Scenario.Name, st.FaultsDetected, st.Repairs)
		}
		if st.PrefetchBytes != st.PrefetchConsumed+st.PrefetchWasted+st.PrefetchPending {
			t.Fatalf("%s: speculative byte conservation broken: %+v", r.Scenario.Name, st)
		}
		if r.Availability <= 0 || r.Availability > 1 {
			t.Fatalf("%s: availability %v outside (0, 1]", r.Scenario.Name, r.Availability)
		}
		if i > 0 && r.Availability > runs[i-1].Availability+1e-9 {
			t.Fatalf("availability improved with upset rate: %s %.4f -> %s %.4f",
				runs[i-1].Scenario.Name, runs[i-1].Availability, r.Scenario.Name, r.Availability)
		}
	}
	clean, top := runs[0], runs[len(runs)-1]
	if n := len(clean.Scenario.Events); n != 0 || clean.Stats.FaultsDetected != 0 {
		t.Fatalf("rate-0 run injected %d / detected %d", n, clean.Stats.FaultsDetected)
	}
	if len(top.Scenario.Events) == 0 || top.Stats.FaultsDetected == 0 {
		t.Fatalf("top-rate run injected %d / detected %d, want fault activity",
			len(top.Scenario.Events), top.Stats.FaultsDetected)
	}
	if top.Stats.RepairConfig == 0 || top.Stats.RepairBytes == 0 {
		t.Fatalf("top-rate run repaired for free: %+v", top.Stats)
	}

	table := FaultTable(runs)
	if table.ID != "S7" || len(table.Rows) != len(runs) || len(table.Raw()) != len(runs) {
		t.Fatalf("table shape: id %q, %d rows, %d raw", table.ID, len(table.Rows), len(table.Raw()))
	}
	recs := FaultRecords(runs)
	if len(recs) != len(runs) {
		t.Fatalf("%d records for %d runs", len(recs), len(runs))
	}
	for i, rec := range recs {
		if rec.Suite() != "S7" || rec.TolerancePct != 15 {
			t.Fatalf("record %d gate tags: %+v", i, rec)
		}
		if rec.Availability != runs[i].Availability || rec.Repairs != runs[i].Stats.Repairs {
			t.Fatalf("record %d diverges from run: %+v vs %+v", i, rec, runs[i].Stats)
		}
	}
}

// TestFaultRunDeterministic: the same spec and scenario reproduce the
// same stats bit for bit — the property the committed S7 rows and the
// replay artifact depend on.
func TestFaultRunDeterministic(t *testing.T) {
	spec := DefaultFaultSpec()
	spec.N = 12
	spec.Scenario = "uniform"
	scs, err := FaultScenarios(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunFault(spec, scs[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFault(spec, scs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same scenario, different outcomes:\n%+v\n%+v", a, b)
	}
}
