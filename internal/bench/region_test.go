package bench

import "testing"

// testRegionSpec is a reduced S4 spec so the acceptance relations are
// asserted in test time; `make bench` commits the full rows.
func testRegionSpec() RegionSpec {
	s := DefaultRegionSpec()
	s.N = 36
	return s
}

// TestRegionGranularityEconomics asserts the two S4 claims on a reduced
// workload: (1) the 2×2-region pool matches the 4×1-region pool exactly at
// equal fabric — equal slots are equal configuration economics, on half
// the boards — and (2) against the SAME fabric organized as full-width
// single regions, the split pool strictly reduces visible configuration
// time by holding twice the residents.
func TestRegionGranularityEconomics(t *testing.T) {
	spec := testRegionSpec()
	single, dual, full, err := regionPools(spec)
	if err != nil {
		t.Fatal(err)
	}
	r41, err := RunRegion(spec, single, "4x1", "")
	if err != nil {
		t.Fatal(err)
	}
	r22, err := RunRegion(spec, dual, "2x2", "")
	if err != nil {
		t.Fatal(err)
	}
	r21, err := RunRegion(spec, full, "2x1-full", "")
	if err != nil {
		t.Fatal(err)
	}
	if r41.Slots != 4 || r22.Slots != 4 || r21.Slots != 2 {
		t.Fatalf("slot counts (%d, %d, %d), want (4, 4, 2)", r41.Slots, r22.Slots, r21.Slots)
	}
	if r22.Boards*2 != r41.Boards {
		t.Fatalf("boards (%d, %d), want the dual pool on half the boards", r41.Boards, r22.Boards)
	}
	// Parity: the slot scheduler makes equal slot sets isomorphic, so the
	// dual-region pool reproduces the four-board pool bit for bit.
	a, b := r41.Stats, r22.Stats
	if a.Config != b.Config || a.BytesStreamed != b.BytesStreamed || a.Hits != b.Hits {
		t.Errorf("2x2 (config %v, %d B, %d hits) != 4x1 (config %v, %d B, %d hits): equal fabric should give equal economics",
			b.Config, b.BytesStreamed, b.Hits, a.Config, a.BytesStreamed, a.Hits)
	}
	// Granularity: same boards, same fabric, twice the regions — visible
	// configuration time must drop by a clear margin.
	f := r21.Stats
	if float64(b.Config) > 0.8*float64(f.Config) {
		t.Errorf("split pool visible config %v is not clearly below full-width %v", b.Config, f.Config)
	}
	if b.Hits <= f.Hits {
		t.Errorf("split pool hits %d not above full-width %d", b.Hits, f.Hits)
	}
	if b.BytesStreamed >= f.BytesStreamed {
		t.Errorf("split pool streamed %d B, full-width %d B: doubling residents should stream less", b.BytesStreamed, f.BytesStreamed)
	}
}

// TestRegionTableShape: the S4 renderer carries one raw visible-config
// value per run and the parity/granularity notes.
func TestRegionTableShape(t *testing.T) {
	spec := testRegionSpec()
	_, dual, full, err := regionPools(spec)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunRegion(spec, full, "2x1-full+mincost", "")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunRegion(spec, dual, "2x2-half+mincost", "")
	if err != nil {
		t.Fatal(err)
	}
	tb := RegionTable([]RegionRun{r1, r2})
	if len(tb.Rows) != 2 || len(tb.Raw()) != 2 {
		t.Fatalf("table has %d rows / %d raw values, want 2 / 2", len(tb.Rows), len(tb.Raw()))
	}
	if tb.Raw()[0] != float64(r1.Stats.Config) || tb.Raw()[1] != float64(r2.Stats.Config) {
		t.Fatalf("raw values %v do not carry the runs' visible config times", tb.Raw())
	}
	recs := RegionRecords([]RegionRun{r1, r2})
	if len(recs) != 2 || recs[0].Suite() != "S4" || recs[0].TolerancePct != 15 {
		t.Fatalf("records %+v, want S4 rows at 15%% tolerance", recs[0])
	}
}
