package bench

import (
	"fmt"

	"repro/internal/pool"
	"repro/internal/sched"
)

// PlacementSpec pins one seeded scheduler workload so different placement
// configurations can be compared run-for-run.
type PlacementSpec struct {
	Pool  pool.Config
	Seed  int64
	N     int
	Mix   string
	Batch int
}

// DefaultPlacementSpec is the seeded 60-request mixed workload of the
// placement evaluation: a 2+2 pool under the full module mix.
func DefaultPlacementSpec() PlacementSpec {
	return PlacementSpec{
		Pool:  pool.Config{Sys32: 2, Sys64: 2},
		Seed:  7,
		N:     60,
		Mix:   "sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1",
		Batch: 4,
	}
}

// PlacementRun is one placement configuration's aggregate outcome over a
// spec's workload.
type PlacementRun struct {
	Label   string
	Policy  string
	Planner bool
	Stats   sched.Stats
}

// RunPlacement boots a fresh pool, applies the planner mode and placement
// policy, and drives the spec's seeded workload to completion.
func RunPlacement(spec PlacementSpec, policyName string, planner bool) (PlacementRun, error) {
	label := policyName + "+complete-only"
	if planner {
		label = policyName + "+planner"
	}
	run := PlacementRun{Label: label, Policy: policyName, Planner: planner}
	policy, err := sched.PolicyByName(policyName)
	if err != nil {
		return run, err
	}
	mix, err := sched.ParseMix(spec.Mix)
	if err != nil {
		return run, err
	}
	w, err := sched.GenWorkload(spec.Seed, spec.N, mix)
	if err != nil {
		return run, err
	}
	p, err := pool.New(spec.Pool)
	if err != nil {
		return run, err
	}
	p.SetPlanning(planner)
	s := sched.New(p, sched.Options{Batch: spec.Batch, Policy: policy})
	for _, ch := range s.SubmitAll(w) {
		if r := <-ch; r.Err != nil {
			return run, fmt.Errorf("bench: request %d (%s): %w", r.ID, r.Task, r.Err)
		}
	}
	s.Wait()
	run.Stats = s.Stats()
	return run, nil
}

// PlacementRuns executes the canonical comparison on one spec: the PR 1
// baseline (lru placement, complete streams only), the planner under the
// same placement, and the planner with cost-aware placement.
func PlacementRuns(spec PlacementSpec) ([]PlacementRun, error) {
	configs := []struct {
		policy  string
		planner bool
	}{
		{"lru", false},
		{"lru", true},
		{"mincost", true},
	}
	runs := make([]PlacementRun, 0, len(configs))
	for _, c := range configs {
		r, err := RunPlacement(spec, c.policy, c.planner)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// PlacementTable renders placement runs as table S2: how the
// differential-bitstream planner and cost-aware placement change the
// configuration bill for the same seeded workload. Raw() carries each
// run's total simulated configuration time in femtoseconds, in row order.
func PlacementTable(runs []PlacementRun) *Table {
	t := &Table{ID: "S2", Title: "Placement policy and stream planning on the same seeded workload",
		Columns: []string{"configuration", "hits", "misses", "diff", "complete", "config time", "bytes streamed", "busy time"}}
	for _, r := range runs {
		st := r.Stats
		var busy float64
		for _, b := range st.BusyTime {
			busy += float64(b)
		}
		t.AddRow(r.Label,
			fmt.Sprint(st.Hits), fmt.Sprint(st.Misses),
			fmt.Sprint(st.DiffLoads), fmt.Sprint(st.CompleteLoads),
			fmtNS(float64(st.Config)), fmt.Sprintf("%d B", st.BytesStreamed), fmtNS(busy))
		t.rawNS = append(t.rawNS, float64(st.Config))
	}
	if len(runs) > 1 {
		base, best := runs[0].Stats, runs[len(runs)-1].Stats
		if best.Config > 0 && best.BytesStreamed > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s vs %s: %.1fx less simulated configuration time, %.1fx fewer bytes streamed",
				runs[len(runs)-1].Label, runs[0].Label,
				float64(base.Config)/float64(best.Config),
				float64(base.BytesStreamed)/float64(best.BytesStreamed)))
		}
	}
	t.Notes = append(t.Notes,
		"a differential miss streams only the frames that differ from the member's verified resident state (§2.2)")
	return t
}

// PlacementRecord is the on-disk wire layout of one bench row — the
// BENCH_sched.json format the CI bench gate (cmd/benchdiff) keys on
// table+label and diffs config_ms / bytes_streamed against. Every suite's
// typed record (see Record in record.go) lowers to this struct via
// Wire(); the field ORDER and omitempty tags are load-bearing, because
// the committed baseline is diffed byte-for-byte (a golden test pins the
// round trip). New suites add typed records, not more optional field
// blocks here.
type PlacementRecord struct {
	Table         string  `json:"table"`
	Label         string  `json:"label"`
	Policy        string  `json:"policy"`
	Planner       bool    `json:"planner"`
	Requests      uint64  `json:"requests"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	DiffLoads     uint64  `json:"diff_loads"`
	CompleteLoads uint64  `json:"complete_loads"`
	ConfigMs      float64 `json:"config_ms"`
	WorkMs        float64 `json:"work_ms"`
	BusyMs        float64 `json:"busy_ms"`
	BytesStreamed uint64  `json:"bytes_streamed"`
	SimUsPerReq   float64 `json:"sim_us_per_req"`

	Window              int     `json:"window,omitempty"`
	Predictor           string  `json:"predictor,omitempty"`
	PrefetchHits        uint64  `json:"prefetch_hits,omitempty"`
	PrefetchAborted     uint64  `json:"prefetch_aborted,omitempty"`
	PrefetchBytes       uint64  `json:"prefetch_bytes,omitempty"`
	PrefetchWastedBytes uint64  `json:"prefetch_wasted_bytes,omitempty"`
	HiddenMs            float64 `json:"hidden_ms,omitempty"`

	// S8 compressed/DMA load-path fields; zero for the other tables.
	CompressedLoads uint64  `json:"compressed_loads,omitempty"`
	DMALoads        uint64  `json:"dma_loads,omitempty"`
	OverlapMs       float64 `json:"overlap_ms,omitempty"`

	// S6 open-loop scaling fields; zero for the other tables. The
	// throughput fields are host wall-clock measurements and the
	// percentiles depend on concurrent placement, so none of them are
	// gated — the gate pins S6 through its zero config_ms/bytes_streamed
	// (the all-hit invariant of the capacity drive).
	Shards           int     `json:"shards,omitempty"`
	OfferedLoad      float64 `json:"offered_load,omitempty"`
	ArrivalProcess   string  `json:"arrival_process,omitempty"`
	ThroughputRPS    float64 `json:"throughput_rps,omitempty"`
	SimThroughputRPS float64 `json:"sim_throughput_rps,omitempty"`
	P50Ms            float64 `json:"p50_ms,omitempty"`
	P95Ms            float64 `json:"p95_ms,omitempty"`
	Steals           uint64  `json:"steals,omitempty"`
	StolenRequests   uint64  `json:"stolen_requests,omitempty"`

	// S7 fault-replay fields; zero for the other tables.
	FaultsInjected uint64  `json:"faults_injected,omitempty"`
	FaultsDetected uint64  `json:"faults_detected,omitempty"`
	Requeues       uint64  `json:"requeues,omitempty"`
	Repairs        uint64  `json:"repairs,omitempty"`
	RepairMs       float64 `json:"repair_ms,omitempty"`
	Availability   float64 `json:"availability,omitempty"`
	P99Ms          float64 `json:"p99_ms,omitempty"`

	// TolerancePct is how much this configuration may regress before the
	// CI gate (cmd/benchdiff) fails, overriding the gate's default. The
	// paced S3 rows are deterministic and gate tight; the SubmitAll S2
	// rows react to goroutine completion order (placement follows whoever
	// finishes first) and swing up to ~30% run to run, so they carry a
	// wider band — still far inside the 5x planner-vs-complete signal
	// they guard.
	TolerancePct float64 `json:"tolerance_pct,omitempty"`
}

// ScheduleRecords converts placement runs into typed S2 records. The
// concurrent SubmitAll drive is noisy, so the rows carry a wide tolerance
// band (see Base.TolerancePct).
func ScheduleRecords(runs []PlacementRun) []ScheduleRecord {
	out := make([]ScheduleRecord, 0, len(runs))
	for _, r := range runs {
		out = append(out, ScheduleRecord{Base: baseFromRun(r, 40)})
	}
	return out
}
