package bench

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/trace"
)

// reducedSLOSpec keeps the S9 shape (pinned placement, poisson arrivals,
// three offered loads) at a depth a unit test can afford.
func reducedSLOSpec() SLOSpec {
	spec := DefaultSLOSpec()
	spec.Pool = pool.Config{Sys32: 4}
	spec.N = 400
	return spec
}

// TestSLORunsDeterministic is the property the whole S9 suite stands on:
// two full evaluations — paced service measurement, arrival generation,
// k-server replay, percentile extraction — produce identical rows, so
// p50/p95/p99 can gate with zero tolerance.
func TestSLORunsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("drives two paced pool workloads")
	}
	spec := reducedSLOSpec()
	a, err := SLORuns(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SLORuns(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("S9 rows differ between identical evaluations:\n%+v\n%+v", a, b)
	}
	if len(a) != len(spec.Rhos) {
		t.Fatalf("%d rows, want %d", len(a), len(spec.Rhos))
	}
}

// TestSLORunsShape checks the queueing physics of the replay: percentiles
// are ordered within a row, every sojourn is at least a service time, and
// the saturated row's p99 dominates the underloaded row's.
func TestSLORunsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a paced pool workload")
	}
	runs, err := SLORuns(reducedSLOSpec())
	if err != nil {
		t.Fatal(err)
	}
	byRho := map[float64]SLORun{}
	for _, r := range runs {
		byRho[r.Rho] = r
		if r.P50 <= 0 || r.P50 > r.P95 || r.P95 > r.P99 || r.P99 > r.Max {
			t.Errorf("%s: percentiles not ordered: p50 %v p95 %v p99 %v max %v", r.Label, r.P50, r.P95, r.P99, r.Max)
		}
		if r.AvgService <= 0 || r.P50 < r.AvgService/2 {
			t.Errorf("%s: p50 %v implausibly below avg service %v", r.Label, r.P50, r.AvgService)
		}
		if r.SimThroughput() <= 0 {
			t.Errorf("%s: nonpositive simulated throughput", r.Label)
		}
		// All-hit pinned placement: the service run must never touch the
		// configuration path.
		if r.Stats.Misses != 0 || r.Stats.Config != 0 || r.Stats.BytesStreamed != 0 {
			t.Errorf("%s: pinned service trace paid config: %d misses, %v config, %d B",
				r.Label, r.Stats.Misses, r.Stats.Config, r.Stats.BytesStreamed)
		}
	}
	lo, hi := byRho[0.25], byRho[4]
	if lo.Label == "" || hi.Label == "" {
		t.Fatalf("missing committed rho rows: %+v", runs)
	}
	if hi.P99 < lo.P99 {
		t.Errorf("saturated p99 %v below underloaded p99 %v", hi.P99, lo.P99)
	}
}

// TestSLORecordWire checks the S9 wire round trip and that the
// percentiles ride as gated metrics — the suite is deterministic, so
// benchdiff holds them to its tight SLO band.
func TestSLORecordWire(t *testing.T) {
	rec := SLORecord{
		Base:        Base{Label: "rho-4/poisson", Policy: "lru", Planner: true},
		Process:     "poisson",
		OfferedLoad: 4,
		P50Ms:       0.25, P95Ms: 0.5, P99Ms: 0.75,
		SimThroughputRPS: 123456,
	}
	if rec.Suite() != "S9" || !rec.Deterministic() {
		t.Fatalf("S9 record: suite %q deterministic %v", rec.Suite(), rec.Deterministic())
	}
	names := map[string]float64{}
	for _, m := range rec.Metrics() {
		names[m.Name] = m.Value
	}
	for name, want := range map[string]float64{"p50_ms": 0.25, "p95_ms": 0.5, "p99_ms": 0.75} {
		if got, ok := names[name]; !ok || got != want {
			t.Errorf("metric %s = %v (present %v), want %v", name, got, ok, want)
		}
	}
	w := rec.Wire()
	back, ok := FromWire(w).(SLORecord)
	if !ok {
		t.Fatalf("S9 wire row lowered to %T", FromWire(w))
	}
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("wire round trip:\n in  %+v\n out %+v", rec, back)
	}
}

// TestTraceCompressDeterministic records the S8 compressed+dma drive —
// the densest load path: differential streams, compressed containers and
// DMA-overlapped sibling windows — twice and requires byte-identical
// Chrome exports, plus the span-sum conservation laws against the run's
// own Stats: config spans sum to visible config time, overlap spans to
// the hidden DMA window time, compute spans to work.
func TestTraceCompressDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("drives two full pool workloads")
	}
	spec := DefaultCompressSpec()
	spec.N = 24
	var exports [][]byte
	var last CompressRun
	var lastTr *trace.Tracer
	for i := 0; i < 2; i++ {
		tr := trace.New()
		spec.Trace = tr
		run, err := RunCompress(spec, "compressed+dma", "gang", true, true, true)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		exports = append(exports, buf.Bytes())
		last, lastTr = run, tr
	}
	if !bytes.Equal(exports[0], exports[1]) {
		t.Fatalf("S8 traced runs differ: %d vs %d bytes", len(exports[0]), len(exports[1]))
	}
	if lastTr.Len() == 0 {
		t.Fatal("traced S8 run emitted no events")
	}

	events := lastTr.Events()
	var config, work, overlap sim.Time
	for member := int32(0); member < int32(spec.Boards); member++ {
		for ri := int32(0); ri < 2; ri++ {
			config += trace.SumDur(events, trace.KindConfig, member, ri)
			work += trace.SumDur(events, trace.KindCompute, member, ri)
			overlap += trace.SumDur(events, trace.KindOverlap, member, ri)
		}
	}
	st := last.Stats
	if config != st.Config {
		t.Errorf("config spans sum to %v, Stats.Config %v", config, st.Config)
	}
	if work != st.Work {
		t.Errorf("compute spans sum to %v, Stats.Work %v", work, st.Work)
	}
	if overlap != st.OverlapConfig {
		t.Errorf("overlap spans sum to %v, Stats.OverlapConfig %v", overlap, st.OverlapConfig)
	}
	if st.Config == 0 || st.OverlapConfig == 0 {
		t.Errorf("degenerate DMA drive: config %v overlap %v", st.Config, st.OverlapConfig)
	}
}
