package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/platform"
	"repro/internal/region"
)

// Figure1 renders the generic system architecture of figure 1.
func Figure1(w io.Writer) {
	fmt.Fprint(w, `F1 — General system architecture (figure 1)

  +--------------------------------------------------------------+
  |                        platform FPGA                         |
  |  +-------+   +----------------+   +------------------------+ |
  |  |  CPU  |===|  on-chip buses |===| memory interface unit  |-+--> ext. memory
  |  +-------+   +----------------+   +------------------------+ |
  |                  ||        ||                                |
  |   +---------------------+  +------------------------------+  |
  |   | configuration       |  | dynamic area communication   |  |
  |   | control unit (ICAP) |  | unit ("dock", bus + DMA)     |  |
  |   +---------------------+  +------------------------------+  |
  |              |                        || bus macros          |
  |   +----------v------------------------vv-------------------+ |
  |   |            dynamic area (run-time reconfigured)        | |
  |   +---------------------------------------------------------+|
  |   +----------------------------+                             |
  |   | external communication unit|--> serial port / host       |
  |   +----------------------------+                             |
  +--------------------------------------------------------------+

`)
}

// Figure2 renders the LUT-based bus macro of figure 2.
func Figure2(w io.Writer) {
	fmt.Fprint(w, `F2 — LUT-based bus macros (figure 2)

        static side          |          dynamic side
                             |
   component A  In(0) >--[LUT]--[LUT]--> Out(0)  component B
   component A  In(1) >--[LUT]--[LUT]--> Out(1)  component B
                             |
   The LUT positions are fixed by the macro, so components implemented
   separately can be assembled by concatenating their configurations;
   the assembly tool verifies that the ports line up (§2.2).

`)
}

// Floorplan renders the actual floorplan of a system (figures 3 and 4),
// derived from the real device geometry and region placement.
func Floorplan(w io.Writer, s *platform.System) {
	id, title := "F3", "The 32-bit system architecture (figure 3)"
	if s.Is64 {
		id, title = "F4", "The 64-bit system architecture (figure 4)"
	}
	if s.NumRegions() > 1 {
		id = "F5"
		title = fmt.Sprintf("Multi-region floorplan: %d independently reconfigurable areas (%s)", s.NumRegions(), s.Name)
	}
	fmt.Fprintf(w, "%s — %s\n\n", id, title)
	d := s.Dev
	// One character per CLB column, one row per 4 CLB rows (top row first).
	const rowStep = 4
	mark := "'#'=dynamic area"
	if s.NumRegions() > 1 {
		mark = "digits=dynamic regions"
	}
	fmt.Fprintf(w, "  device %s: %d x %d CLB sites, %d BRAMs; %s, 'P'=PPC405, 'B'=BRAM column, '.'=static logic\n\n",
		d.Name, d.Rows, d.Cols, d.BRAMCount(), mark)
	bcol := make(map[int]bool)
	for _, p := range d.BRAMColPos {
		bcol[p] = true
	}
	regionAt := func(row, col int) int {
		for ri := 0; ri < s.NumRegions(); ri++ {
			if s.RegionAt(ri).ContainsSite(row, col) {
				return ri
			}
		}
		return -1
	}
	for row := d.Rows - rowStep; row >= 0; row -= rowStep {
		var b strings.Builder
		b.WriteString("  |")
		for col := 0; col < d.Cols; col++ {
			ri := regionAt(row, col)
			switch {
			case d.SiteDisplaced(row, col):
				b.WriteByte('P')
			case ri >= 0 && s.NumRegions() > 1:
				b.WriteByte(byte('0' + ri%10))
			case ri >= 0:
				b.WriteByte('#')
			case bcol[col]:
				b.WriteByte('B')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteString("|")
		fmt.Fprintln(w, b.String())
	}
	fmt.Fprintln(w)
	for ri := 0; ri < s.NumRegions(); ri++ {
		r := s.RegionAt(ri)
		fmt.Fprintf(w, "  dynamic area %s: cols [%d,%d) rows [%d,%d) = %d CLBs (%d slices, %.1f%% of device), %d BRAMs\n",
			r.Name, r.Col0, r.Col0+r.W, r.Row0, r.Row0+r.H, r.CLBs(), r.Slices(),
			100*float64(r.Slices())/float64(d.SliceCount()), r.BRAMBudget)
		for _, sp := range region.Spans(d, r) {
			fmt.Fprintf(w, "    ICAP stream addressing: frames [%d,%d) (%d frames)\n", sp.Lo, sp.Hi, sp.Frames())
		}
	}
	if s.Is64 {
		fmt.Fprint(w, `
  CPU(300 MHz) == PLB(64b,100 MHz) ==+== DDR controller (512 MB)
                                     +== PLB Dock (DMA, FIFO 2047x64, IRQ) -> dynamic area
                                     +== PLB-OPB bridge == OPB(32b,100 MHz) ==+== HWICAP -> ICAP
                                                                              +== UART
                                                                              +== interrupt controller

`)
	} else {
		fmt.Fprint(w, `
  CPU(200 MHz) == PLB(64b,50 MHz) ==+== BRAM controller
                                    +== PLB-OPB bridge == OPB(32b,50 MHz) ==+== EMC -> SRAM (32 MB)
                                                                            +== OPB Dock -> dynamic area
                                                                            +== HWICAP -> ICAP
                                                                            +== UART, GPIO

`)
	}
}
