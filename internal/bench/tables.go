package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/platform"
	"repro/internal/ref"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tasks"
)

// Table is one regenerated artifact.
type Table struct {
	ID      string // e.g. "T2" for Table 2, "S1" for the scheduler table
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string

	// rawNS carries the machine-readable values behind the formatted rows
	// (per-transfer times or speedups), for dependent tables and tests.
	rawNS []float64
}

// Raw returns the machine-readable values behind the rows (one per row for
// the measurement tables): per-transfer times in femtoseconds or speedup
// factors, depending on the table.
func (t *Table) Raw() []float64 { return t.rawNS }

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	total := 2
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", total-4))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtNS renders a femtosecond duration with an adequate unit.
func fmtNS(fs float64) string {
	switch {
	case fs >= 1e12:
		return fmt.Sprintf("%.3f ms", fs/1e12)
	case fs >= 1e9:
		return fmt.Sprintf("%.3f us", fs/1e9)
	default:
		return fmt.Sprintf("%.1f ns", fs/1e6)
	}
}

// Sys32 and Sys64 build fresh systems, failing loudly on wiring errors —
// table generators assume a correct platform.
func Sys32() *platform.System {
	s, err := platform.NewSys32()
	if err != nil {
		panic(err)
	}
	return s
}

// Sys64 builds the 64-bit system.
func Sys64() *platform.System {
	s, err := platform.NewSys64()
	if err != nil {
		panic(err)
	}
	return s
}

func mustLoad(s *platform.System, mod string) {
	if _, err := s.LoadModule(mod); err != nil {
		panic(err)
	}
}

// ResourceTable regenerates Table 1 (32-bit) or Table 6 (64-bit): the
// resource usage of the static system plus the dynamic area reservation.
func ResourceTable(s *platform.System) *Table {
	id, title := "T1", "Resource usage (32-bit system)"
	if s.Is64 {
		id, title = "T6", "Resource usage (64-bit system)"
	}
	t := &Table{ID: id, Title: title,
		Columns: []string{"module", "bus", "slices", "LUTs", "FFs", "BRAMs"}}
	for _, m := range s.Inventory() {
		t.AddRow(m.Name, m.Bus,
			fmt.Sprint(m.Res.Slices), fmt.Sprint(m.Res.LUTs),
			fmt.Sprint(m.Res.FFs), fmt.Sprint(m.Res.BRAMs))
	}
	st := s.StaticTotal()
	t.AddRow("static total", "",
		fmt.Sprintf("%d (%.1f%%)", st.Slices, st.SlicePercent(s.Dev)),
		fmt.Sprint(st.LUTs), fmt.Sprint(st.FFs), fmt.Sprint(st.BRAMs))
	r := s.Region
	t.AddRow("dynamic area", "",
		fmt.Sprintf("%d (%.1f%%)", r.Slices(), 100*float64(r.Slices())/float64(s.Dev.SliceCount())),
		fmt.Sprint(r.LUTs()), fmt.Sprint(r.FFs()), fmt.Sprint(r.BRAMBudget))
	t.AddRow("device capacity", "",
		fmt.Sprint(s.Dev.SliceCount()), fmt.Sprint(s.Dev.LUTCount()),
		fmt.Sprint(s.Dev.FFCount()), fmt.Sprint(s.Dev.BRAMCount()))
	t.Notes = append(t.Notes,
		fmt.Sprintf("device %s, dynamic area %dx%d=%d CLBs", s.Dev.Name, r.W, r.H, r.CLBs()))
	return t
}

// transferWords is the sequence length of the transfer measurements.
const transferWords = 8192

// TransferCPUTable regenerates Table 2 (on Sys32) or Table 7 (on Sys64):
// average times of program-controlled 32-bit transfers between the dynamic
// region and external memory.
func TransferCPUTable(s *platform.System, baseline *Table) *Table {
	id, title := "T2", "Measured times for data transfers between dynamic region and external memory (32 bit)"
	if s.Is64 {
		id, title = "T7", "Measured times for 32-bit data transfers between dynamic region and external memory (CPU controlled)"
	}
	t := &Table{ID: id, Title: title,
		Columns: []string{"transfer type", "time/transfer", "MB/s"}}
	if baseline != nil {
		t.Columns = append(t.Columns, "vs 32-bit system")
	}
	mustLoad(s, "passthrough")
	for i, kind := range []tasks.TransferKind{tasks.TransferWrite, tasks.TransferRead, tasks.TransferInterleaved} {
		avg, err := tasks.TransferCPU(s, kind, transferWords)
		if err != nil {
			panic(err)
		}
		bytes := 4.0
		if kind == tasks.TransferInterleaved {
			bytes = 8.0 // one word each way
		}
		row := []string{kind.String(), fmtNS(float64(avg)), fmt.Sprintf("%.1f", bytes/avg.Microseconds())}
		if baseline != nil {
			base := baseline.Rows[i][1]
			row = append(row, fmt.Sprintf("%.1fx faster (was %s)", baseline.rawNS[i]/float64(avg), base))
		}
		t.Rows = append(t.Rows, row)
		t.rawNS = append(t.rawNS, float64(avg))
	}
	return t
}

// TransferDMATable regenerates Table 8: DMA-controlled 64-bit transfers.
func TransferDMATable(s *platform.System) *Table {
	t := &Table{ID: "T8",
		Title:   "Measured times for 64-bit data transfers between dynamic region and external memory (DMA-controlled)",
		Columns: []string{"transfer type", "time/64-bit transfer", "MB/s"}}
	mustLoad(s, "passthrough")
	for _, kind := range []tasks.TransferKind{tasks.TransferWrite, tasks.TransferRead, tasks.TransferInterleaved} {
		avg, err := tasks.TransferDMA(s, kind, transferWords)
		if err != nil {
			panic(err)
		}
		bytes := 8.0
		if kind == tasks.TransferInterleaved {
			bytes = 16.0
		}
		t.AddRow(kind.String(), fmtNS(float64(avg)), fmt.Sprintf("%.1f", bytes/avg.Microseconds()))
		t.rawNS = append(t.rawNS, float64(avg))
	}
	t.Notes = append(t.Notes,
		"interleaved transfers are block-interleaved through the 2047-entry output FIFO (§4.2)")
	return t
}

// patternSizes are the image sizes of the pattern-matching tables.
var patternSizes = []struct{ W, H int }{{64, 64}, {128, 128}, {192, 192}}

// PatternTable regenerates Table 3 (Sys32) or Table 9 (Sys64): software vs
// hardware bilevel pattern matching.
func PatternTable(s *platform.System) *Table {
	id, title := "T3", "Results for pattern matching in binary images (32 bit)"
	if s.Is64 {
		id, title = "T9", "Results for pattern matching in binary images (64 bit)"
	}
	t := &Table{ID: id, Title: title,
		Columns: []string{"image", "software", "hardware", "speedup"}}
	rng := rand.New(rand.NewSource(42))
	for _, size := range patternSizes {
		im := ref.NewBinaryImage(size.W, size.H)
		for i := range im.Words {
			im.Words[i] = rng.Uint32()
		}
		var p ref.Pattern8
		for j := range p {
			p[j] = byte(rng.Uint32())
		}
		a := tasks.PatternArgs{
			ImgAddr: s.MemBase() + 0x10_0000, W: size.W, H: size.H,
			Pattern: p, Threshold: 56, LUTAddr: s.MemBase() + 0x8040,
		}
		if err := tasks.LoadPatternImage(s, a.ImgAddr, im); err != nil {
			panic(err)
		}
		if err := tasks.LoadPopcountLUT(s, a.LUTAddr); err != nil {
			panic(err)
		}
		var swRes, hwRes tasks.PatternResult
		coldCache(s, a.ImgAddr, 4*len(im.Words))
		swT := s.Measure(func() { swRes = tasks.PatternMatchSW(s, a) })
		mustLoad(s, "patternmatch")
		var err error
		coldCache(s, a.ImgAddr, 4*len(im.Words))
		hwT := s.Measure(func() { hwRes, err = tasks.PatternMatchHW(s, a) })
		if err != nil {
			panic(err)
		}
		if swRes != hwRes {
			panic(fmt.Sprintf("bench: pattern results diverge: sw=%+v hw=%+v", swRes, hwRes))
		}
		t.AddRow(fmt.Sprintf("%dx%d", size.W, size.H),
			fmtNS(float64(swT)), fmtNS(float64(hwT)),
			fmt.Sprintf("%.1f", float64(swT)/float64(hwT)))
		t.rawNS = append(t.rawNS, float64(swT)/float64(hwT))
	}
	return t
}

// jenkinsSizes are the key lengths of the hash tables.
var jenkinsSizes = []int{256, 1024, 4096, 16384, 65536}

// JenkinsTable regenerates Table 4 (Sys32) or Table 10 (Sys64).
func JenkinsTable(s *platform.System) *Table {
	id, title := "T4", "Results for hash function (32 bit)"
	if s.Is64 {
		id, title = "T10", "Results for a hash function implementation (64 bit)"
	}
	t := &Table{ID: id, Title: title,
		Columns: []string{"key size", "software", "hardware", "speedup"}}
	rng := rand.New(rand.NewSource(43))
	for _, n := range jenkinsSizes {
		key := make([]byte, n)
		rng.Read(key)
		addr := s.MemBase() + 0x20_0000
		if err := s.WriteMem(addr, key); err != nil {
			panic(err)
		}
		a := tasks.JenkinsArgs{KeyAddr: addr, KeyLen: n, InitVal: 0}
		var swV, hwV uint32
		coldCache(s, addr, n)
		swT := s.Measure(func() { swV = tasks.JenkinsSW(s, a) })
		mustLoad(s, "jenkins")
		var err error
		coldCache(s, addr, n)
		hwT := s.Measure(func() { hwV, err = tasks.JenkinsHW(s, a) })
		if err != nil {
			panic(err)
		}
		if swV != hwV || swV != ref.Lookup2(key, 0) {
			panic("bench: hash results diverge")
		}
		t.AddRow(fmt.Sprintf("%d B", n),
			fmtNS(float64(swT)), fmtNS(float64(hwT)),
			fmt.Sprintf("%.2f", float64(swT)/float64(hwT)))
		t.rawNS = append(t.rawNS, float64(swT)/float64(hwT))
	}
	return t
}

// sha1Sizes are the message lengths of Table 11.
var sha1Sizes = []int{64, 1024, 16384, 131072}

// SHA1Table regenerates Table 11 (64-bit system only; the core does not fit
// the 32-bit dynamic area).
func SHA1Table(s *platform.System) *Table {
	t := &Table{ID: "T11", Title: "Results for SHA-1 implementation",
		Columns: []string{"message", "software", "hardware", "speedup"}}
	rng := rand.New(rand.NewSource(44))
	for _, n := range sha1Sizes {
		msg := make([]byte, n)
		rng.Read(msg)
		addr := s.MemBase() + 0x30_0000
		if err := s.WriteMem(addr, msg); err != nil {
			panic(err)
		}
		a := tasks.SHA1Args{MsgAddr: addr, MsgLen: n, PadAddr: s.MemBase() + 0x60_0000}
		var swH, hwH [5]uint32
		var err error
		coldCache(s, addr, n)
		swT := s.Measure(func() { swH, err = tasks.SHA1SW(s, a) })
		if err != nil {
			panic(err)
		}
		mustLoad(s, "sha1")
		coldCache(s, addr, n)
		hwT := s.Measure(func() { hwH, err = tasks.SHA1HW(s, a) })
		if err != nil {
			panic(err)
		}
		if swH != hwH {
			panic("bench: SHA-1 results diverge")
		}
		t.AddRow(fmt.Sprintf("%d B", n),
			fmtNS(float64(swT)), fmtNS(float64(hwT)),
			fmt.Sprintf("%.1f", float64(swT)/float64(hwT)))
		t.rawNS = append(t.rawNS, float64(swT)/float64(hwT))
	}
	t.Notes = append(t.Notes,
		"not reproducible on the 32-bit system: the SHA-1 core does not fit its dynamic area (§4.2)",
		"the software's fixed overhead dominates small messages and fades with size")
	return t
}

// imagePixels is the image size of the image-processing tables (256x256).
const imagePixels = 256 * 256

// ImageTable32 regenerates Table 5: speedups for the three image tasks with
// CPU-controlled 32-bit transfers.
func ImageTable32(s *platform.System) *Table {
	t := &Table{ID: "T5", Title: "Speedups for simple image processing tasks (32 bit)",
		Columns: []string{"task", "software", "hardware", "speedup"}}
	a, check := imageSetup(s)
	run := func(name string, sw func() error, hw func() error, want []byte) {
		coldImage(s, a)
		swT := s.Measure(func() { must(sw()) })
		s.CPU.Sync()
		check(name+" sw", want)
		mustLoad(s, name)
		coldImage(s, a)
		hwT := s.Measure(func() { must(hw()) })
		check(name+" hw", want)
		t.AddRow(name, fmtNS(float64(swT)), fmtNS(float64(hwT)),
			fmt.Sprintf("%.2f", float64(swT)/float64(hwT)))
		t.rawNS = append(t.rawNS, float64(swT)/float64(hwT))
	}
	wantB, wantBl, wantF := imageWants(s, a)
	run("brightness", func() error { return tasks.BrightnessSW(s, a) },
		func() error { return tasks.BrightnessHW(s, a) }, wantB)
	run("blend", func() error { return tasks.BlendSW(s, a) },
		func() error { return tasks.BlendHW(s, a) }, wantBl)
	run("fade", func() error { return tasks.FadeSW(s, a) },
		func() error { return tasks.FadeHW(s, a) }, wantF)
	return t
}

// ImageTable64 regenerates Table 12: the same tasks with 64-bit DMA
// transfers, including the data-preparation overhead column.
func ImageTable64(s *platform.System) *Table {
	t := &Table{ID: "T12", Title: "Results for simple image processing tasks (64 bit)",
		Columns: []string{"task", "software", "hardware (DMA)", "data preparation", "speedup"}}
	a, check := imageSetup(s)
	scratch := s.MemBase() + 0x60_0000
	packed := s.MemBase() + 0x80_0000
	wantB, wantBl, wantF := imageWants(s, a)

	coldImage(s, a)
	swT := s.Measure(func() { must(tasks.BrightnessSW(s, a)) })
	s.CPU.Sync()
	check("brightness sw", wantB)
	mustLoad(s, "brightness")
	coldImage(s, a)
	hwT := s.Measure(func() { must(tasks.BrightnessDMA(s, a, scratch)) })
	check("brightness dma", wantB)
	t.AddRow("brightness", fmtNS(float64(swT)), fmtNS(float64(hwT)), "-",
		fmt.Sprintf("%.2f", float64(swT)/float64(hwT)))
	t.rawNS = append(t.rawNS, float64(swT)/float64(hwT))

	coldImage(s, a)
	swT = s.Measure(func() { must(tasks.BlendSW(s, a)) })
	s.CPU.Sync()
	check("blend sw", wantBl)
	mustLoad(s, "blend")
	var res tasks.CombineDMAResult
	coldImage(s, a)
	hwT = s.Measure(func() {
		r, err := tasks.BlendDMA(s, a, scratch, packed)
		must(err)
		res = r
	})
	check("blend dma", wantBl)
	t.AddRow("blend", fmtNS(float64(swT)), fmtNS(float64(hwT)),
		fmtNS(float64(res.PrepTime)), fmt.Sprintf("%.2f", float64(swT)/float64(hwT)))
	t.rawNS = append(t.rawNS, float64(swT)/float64(hwT))

	coldImage(s, a)
	swT = s.Measure(func() { must(tasks.FadeSW(s, a)) })
	s.CPU.Sync()
	check("fade sw", wantF)
	mustLoad(s, "fade")
	coldImage(s, a)
	hwT = s.Measure(func() {
		r, err := tasks.FadeDMA(s, a, scratch, packed)
		must(err)
		res = r
	})
	check("fade dma", wantF)
	t.AddRow("fade", fmtNS(float64(swT)), fmtNS(float64(hwT)),
		fmtNS(float64(res.PrepTime)), fmt.Sprintf("%.2f", float64(swT)/float64(hwT)))
	t.rawNS = append(t.rawNS, float64(swT)/float64(hwT))

	t.Notes = append(t.Notes,
		"data preparation: the CPU combines the two source images before DMA (§4.2)")
	return t
}

func imageSetup(s *platform.System) (tasks.ImageArgs, func(string, []byte)) {
	rng := rand.New(rand.NewSource(45))
	srcA := make([]byte, imagePixels)
	srcB := make([]byte, imagePixels)
	rng.Read(srcA)
	rng.Read(srcB)
	// The three buffers are offset by odd line counts so they do not alias
	// in the 2-way set-associative cache.
	a := tasks.ImageArgs{
		SrcA: s.MemBase() + 0x10_0000,
		SrcB: s.MemBase() + 0x20_0040,
		Dst:  s.MemBase() + 0x30_0080,
		N:    imagePixels, Delta: 45, F: 96,
	}
	must(s.WriteMem(a.SrcA, srcA))
	must(s.WriteMem(a.SrcB, srcB))
	check := func(what string, want []byte) {
		got, err := s.ReadMem(a.Dst, a.N)
		must(err)
		for i := range want {
			if got[i] != want[i] {
				panic(fmt.Sprintf("bench: %s: pixel %d = %d, want %d", what, i, got[i], want[i]))
			}
		}
	}
	return a, check
}

func imageWants(s *platform.System, a tasks.ImageArgs) (b, bl, f []byte) {
	srcA, err := s.ReadMem(a.SrcA, a.N)
	must(err)
	srcB, err := s.ReadMem(a.SrcB, a.N)
	must(err)
	b = make([]byte, a.N)
	bl = make([]byte, a.N)
	f = make([]byte, a.N)
	ref.Brightness(b, srcA, a.Delta)
	ref.Blend(bl, srcA, srcB)
	ref.Fade(f, srcA, srcB, a.F)
	return
}

// ConfigTimeTable is ablation A1: complete vs differential configuration
// streams — the size/time cost BitLinker pays for state independence.
func ConfigTimeTable(s *platform.System) *Table {
	t := &Table{ID: "A1", Title: "Configuration time: complete vs differential partial bitstreams",
		Columns: []string{"transition", "stream", "size", "time"}}
	full, err := s.LoadComplete("brightness")
	must(err)
	t.AddRow("(blank) -> brightness", "complete", fmt.Sprintf("%d B", full.Bytes), fmtNS(float64(full.Time)))

	full2, err := s.LoadComplete("blend")
	must(err)
	t.AddRow("brightness -> blend", "complete", fmt.Sprintf("%d B", full2.Bytes), fmtNS(float64(full2.Time)))

	diffBytes, _, err := s.Mgr.DifferentialSize("blend", "brightness")
	must(err)
	diff, err := s.Mgr.LoadDifferential("brightness", "blend")
	must(err)
	t.AddRow("blend -> brightness", "differential", fmt.Sprintf("%d B", diffBytes), fmtNS(float64(diff)))
	t.rawNS = []float64{float64(full2.Time), float64(diff)}
	t.Notes = append(t.Notes,
		"complete streams configure correctly from any prior state; differential streams are smaller and faster but assume a known prior state (§2.2)")
	return t
}

// HazardTable is ablation A2: what happens when the §2.2 rules are broken.
func HazardTable(s *platform.System) *Table {
	t := &Table{ID: "A2", Title: "Reconfiguration correctness scenarios",
		Columns: []string{"scenario", "bound circuit", "static design"}}
	report := func(scenario string) {
		bound := s.Mgr.Current()
		if bound == "" {
			bound = "BROKEN"
		}
		static := "intact"
		if s.Mgr.Corrupted() {
			static = "CORRUPTED"
		}
		t.AddRow(scenario, bound, static)
	}
	_, err := s.LoadComplete("fade")
	must(err)
	report("complete load of fade")
	_, err = s.Mgr.LoadDifferential("blend", "") // assumes blank region
	must(err)
	report("differential blend assuming blank region (region held fade)")
	_, err = s.LoadComplete("blend")
	must(err)
	report("recovery: complete load of blend")
	_, err = s.Mgr.LoadDifferential("fade", "blend")
	must(err)
	report("differential fade assuming blend (correct assumption)")
	_, err = s.Mgr.LoadNaive("brightness")
	must(err)
	report("naive assembly (zeros outside the region band)")
	return t
}

// ThroughputTable renders scheduler statistics as table S1: per-module
// request counts, bitstream-cache hits and misses, and the simulated-time
// split between reconfiguration and work. When the per-request results
// are supplied, p50/p95/p99 service-latency columns appear next to the
// counters. Raw() carries the overall cache hit rate followed by each
// slot's simulated busy time in femtoseconds.
func ThroughputTable(st sched.Stats, results ...sched.Result) *Table {
	t := &Table{ID: "S1", Title: "Scheduler throughput and bitstream-cache behaviour",
		Columns: []string{"module", "requests", "hits", "misses", "diff", "cmpl", "errors", "config time", "work time", "avg latency", "bytes"}}
	lats := make(map[string][]sim.Time)
	if len(results) > 0 {
		t.Columns = append(t.Columns, "p50", "p95", "p99")
		for _, r := range results {
			if r.Err != nil && r.Member < 0 {
				continue // submit-rejected: never occupied a slot
			}
			lats[r.Module] = append(lats[r.Module], r.Latency())
			lats[""] = append(lats[""], r.Latency())
		}
	}
	pcts := func(mod string) []string {
		if len(results) == 0 {
			return nil
		}
		l := lats[mod]
		if len(l) == 0 {
			// Every request for the module was rejected at submit: no
			// latency was measured, matching the avg column's "-".
			return []string{"-", "-", "-"}
		}
		p := Percentiles(l, 0.50, 0.95, 0.99)
		return []string{fmtNS(float64(p[0])), fmtNS(float64(p[1])), fmtNS(float64(p[2]))}
	}
	mods := make([]string, 0, len(st.Modules))
	for m := range st.Modules {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	// Averages are over executed requests (hits+misses): submit-rejected
	// requests never occupy a slot, while an errored execution still
	// paid its configuration and partial work.
	for _, mod := range mods {
		ms := st.Modules[mod]
		avg := "-"
		if n := ms.Hits + ms.Misses; n > 0 {
			avg = fmtNS(float64(ms.Config+ms.Work) / float64(n))
		}
		row := []string{mod, fmt.Sprint(ms.Requests), fmt.Sprint(ms.Hits), fmt.Sprint(ms.Misses),
			fmt.Sprint(ms.Diffs), fmt.Sprint(ms.Completes),
			fmt.Sprint(ms.Errors), fmtNS(float64(ms.Config)), fmtNS(float64(ms.Work)), avg,
			fmt.Sprint(ms.Bytes)}
		t.AddRow(append(row, pcts(mod)...)...)
	}
	avg := "-"
	if n := st.Hits + st.Misses; n > 0 {
		avg = fmtNS(float64(st.Config+st.Work) / float64(n))
	}
	total := []string{"total", fmt.Sprint(st.Done), fmt.Sprint(st.Hits), fmt.Sprint(st.Misses),
		fmt.Sprint(st.DiffLoads), fmt.Sprint(st.CompleteLoads),
		fmt.Sprint(st.Errors), fmtNS(float64(st.Config)), fmtNS(float64(st.Work)), avg,
		fmt.Sprint(st.BytesStreamed)}
	t.AddRow(append(total, pcts("")...)...)
	t.rawNS = append(t.rawNS, st.HitRate())
	for i, b := range st.BusyTime {
		label := fmt.Sprintf("member %d", i)
		if i < len(st.Slots) {
			label = fmt.Sprintf("member %d region %d", st.Slots[i].Member, st.Slots[i].Region)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s simulated busy time: %s", label, fmtNS(float64(b))))
		t.rawNS = append(t.rawNS, float64(b))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("bitstream cache hit rate: %.1f%% (a hit skips the ICAP load entirely)", 100*st.HitRate()))
	return t
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// coldCache flushes a data range so every measured run starts with a cold
// cache — measurements are order-independent.
func coldCache(s *platform.System, addr uint32, n int) {
	s.CPU.FlushRange(addr, n)
}

// coldImage flushes the three image buffers.
func coldImage(s *platform.System, a tasks.ImageArgs) {
	s.CPU.FlushRange(a.SrcA, a.N)
	s.CPU.FlushRange(a.SrcB, a.N)
	s.CPU.FlushRange(a.Dst, a.N)
}
