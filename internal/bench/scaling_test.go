package bench

import (
	"strings"
	"testing"
)

// scalingTestSpec shrinks the committed S6 sweep to test size while
// keeping its invariants: same module, policy, process and service
// calibration, smaller pool and trace.
func scalingTestSpec() ScalingSpec {
	spec := DefaultScalingSpec()
	spec.Pool.Sys32 = 4
	spec.N = 240
	return spec
}

// TestScalingRunAllHit pins the capacity-drive invariant the S6 gate
// rests on: with the module pre-warmed into every slot, the open-loop
// drive is all-hit — zero request-path configuration time and zero
// streamed bytes — so those two fields gate deterministically in
// BENCH_sched.json while the throughput fields stay informational.
func TestScalingRunAllHit(t *testing.T) {
	spec := scalingTestSpec()
	run, err := RunScaling(spec, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := run.Stats
	if st.Done != uint64(spec.N) || st.Errors != 0 {
		t.Fatalf("done/errors = %d/%d, want %d/0", st.Done, st.Errors, spec.N)
	}
	if st.Hits != st.Done || st.Misses != 0 {
		t.Fatalf("hits/misses = %d/%d, want all-hit %d/0 (pre-warm failed)", st.Hits, st.Misses, st.Done)
	}
	if st.Config != 0 || st.BytesStreamed != 0 {
		t.Fatalf("config=%v bytes=%d, want 0/0: the S6 gate pins these at zero", st.Config, st.BytesStreamed)
	}
	if run.P50 <= 0 || run.P95 < run.P50 || run.P99 < run.P95 {
		t.Fatalf("sojourn percentiles p50=%v p95=%v p99=%v, want positive and ordered", run.P50, run.P95, run.P99)
	}
	if run.Makespan <= 0 || run.Elapsed <= 0 {
		t.Fatalf("makespan=%v elapsed=%v, want positive", run.Makespan, run.Elapsed)
	}
	if run.RealThroughput() <= 0 || run.SimThroughput() <= 0 {
		t.Fatalf("throughputs %f/%f, want positive", run.RealThroughput(), run.SimThroughput())
	}
}

// TestScalingRecordsAndTable checks the S6 emission: records keyed for
// the bench gate (table S6, zero tolerance so the zero baselines gate on
// benchdiff's absolute epsilon) and a rendered table carrying the
// speedup note.
func TestScalingRecordsAndTable(t *testing.T) {
	spec := scalingTestSpec()
	spec.N = 120
	spec.Shards = []int{1, 2}
	spec.Rhos = []float64{1}
	runs, err := ScalingRuns(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	recs := ScalingRecords(runs)
	for i, rec := range recs {
		if rec.Suite() != "S6" || rec.Label != runs[i].Label {
			t.Fatalf("record %d keyed %s/%s, want S6/%s", i, rec.Suite(), rec.Label, runs[i].Label)
		}
		if rec.TolerancePct != 0 {
			t.Fatalf("record %d tolerance %v, want 0 (zero baselines gate absolutely)", i, rec.TolerancePct)
		}
		if rec.ConfigMs != 0 || rec.BytesStreamed != 0 {
			t.Fatalf("record %d config_ms=%v bytes=%d, want the all-hit zeros", i, rec.ConfigMs, rec.BytesStreamed)
		}
		if rec.Shards != runs[i].Shards || rec.ThroughputRPS <= 0 || rec.P50Ms <= 0 {
			t.Fatalf("record %d = %+v, want shards/throughput/percentiles filled", i, rec)
		}
	}
	tbl := ScalingTable(runs)
	if tbl.ID != "S6" {
		t.Fatalf("table ID %s, want S6", tbl.ID)
	}
	if len(tbl.Rows) != len(runs) {
		t.Fatalf("table carries %d rows, want %d", len(tbl.Rows), len(runs))
	}
	var buf strings.Builder
	tbl.Format(&buf)
	if !strings.Contains(buf.String(), "shards") {
		t.Fatalf("formatted table missing shard column:\n%s", buf.String())
	}
	if _, _, _, ok := SaturationSpeedup(runs); !ok {
		t.Fatal("SaturationSpeedup found no comparable pair")
	}
}

// TestScalingSpeedup is the PR's acceptance bar at test scale: on the
// committed 32-board pool at saturating offered load, 8 shards must
// sustain well above the 1-shard dispatch rate. The in-test bar (1.5x) is
// deliberately below the committed table's measured margin (>2.5x at
// N=8000) — the test trace is shorter, so the per-cell noise floor is
// higher — and is waived entirely under the race detector, whose
// instrumentation is the dominant cost on both sides.
func TestScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("saturating sweep: skipped in short mode")
	}
	spec := DefaultScalingSpec()
	spec.Shards = []int{1, 8}
	spec.Rhos = []float64{4}
	spec.N = 2500
	if raceEnabled {
		spec.Pool.Sys32 = 8
		spec.N = 600
	}
	runs, err := ScalingRuns(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Stats.Done != uint64(spec.N) || r.Stats.Misses != 0 {
			t.Fatalf("%s: done=%d misses=%d, want all-hit %d", r.Label, r.Stats.Done, r.Stats.Misses, spec.N)
		}
	}
	sp, lo, hi, ok := SaturationSpeedup(runs)
	if !ok {
		t.Fatal("no comparable shard pair at saturation")
	}
	t.Logf("%d shards %.0f req/s vs %d shard %.0f req/s: %.2fx",
		hi.Shards, hi.RealThroughput(), lo.Shards, lo.RealThroughput(), sp)
	if raceEnabled {
		t.Log("race detector active: speedup bar waived")
		return
	}
	if sp < 1.5 {
		t.Errorf("8-shard speedup %.2fx, want >= 1.5x (committed table margin is >2.5x)", sp)
	}
}
