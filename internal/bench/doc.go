// Package bench regenerates every table and figure of the paper's
// evaluation from the simulated platforms, and measures the scheduler
// layers grown on top of them.
//
// Two kinds of artifact live here:
//
//   - The paper tables (T1–T12, A1/A2): one generator per artifact,
//     shared by the fpgasim command and the Go benchmark harness.
//
//   - The scheduler suites (S1–S8): seeded, reproducible drives of the
//     multi-system pool — S2 placement, S3 prefetch, S4 region
//     granularity, S5 open-loop arrival replay, S6 sharded-dispatch
//     scaling, S7 fault availability, S8 compressed/DMA load paths.
//
// Each suite renders a human-readable Table and converts its runs into
// typed records (ScheduleRecord, PrefetchRecord, RegionRecord,
// ArrivalRecord, ScalingRecord, FaultRecord, CompressRecord) implementing
// the Record interface. A Writer emits records in two on-disk forms: the
// committed BENCH_sched.json baseline that cmd/benchdiff gates CI on, and
// the append-only per-commit history store (artifacts/bench/
// history.jsonl) that cmd/benchboard plots as the repo's perf trajectory.
// The tolerance rules both consumers share live in the nested package
// internal/bench/gate.
package bench
