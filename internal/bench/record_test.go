package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench/gate"
)

// TestWriterGoldenByteCompat pins the refactor's core promise: lowering
// the committed baseline through typed records and re-marshalling via
// the Writer reproduces BENCH_sched.json byte for byte. If this fails,
// the wire layout drifted and every archived snapshot (and benchdiff's
// committed baseline) silently stopped round-tripping.
func TestWriterGoldenByteCompat(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_sched.json"))
	if err != nil {
		t.Fatalf("read committed baseline: %v", err)
	}
	recs, err := DecodeRecords(data)
	if err != nil {
		t.Fatalf("decode baseline: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("baseline decoded to zero records")
	}
	out, err := NewWriter(recs...).MarshalWire()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.Equal(data, out) {
		t.Fatalf("Writer output differs from committed BENCH_sched.json\n got %d bytes, want %d — wire layout drifted", len(out), len(data))
	}
}

// TestFromWireSuites checks that each archived table lowers to its typed
// record, that Deterministic agrees with the shared gate classification,
// and that every record exposes well-formed metrics.
func TestFromWireSuites(t *testing.T) {
	cases := []struct {
		table string
		want  string // concrete type name
	}{
		{"S2", "bench.ScheduleRecord"},
		{"S3", "bench.PrefetchRecord"},
		{"S4", "bench.RegionRecord"},
		{"S5", "bench.ArrivalRecord"},
		{"S6", "bench.ScalingRecord"},
		{"S7", "bench.FaultRecord"},
		{"S8", "bench.CompressRecord"},
		{"S9", "bench.SLORecord"},
		{"", "bench.PlacementRecord"},
	}
	for _, c := range cases {
		w := PlacementRecord{Table: c.table, Label: "x", ConfigMs: 1.5, BytesStreamed: 64}
		r := FromWire(w)
		wantSuite := c.table
		if wantSuite == "" {
			wantSuite = "single"
		}
		if r.Suite() != wantSuite {
			t.Errorf("table %q: Suite() = %q, want %q", c.table, r.Suite(), wantSuite)
		}
		if got := r.Deterministic(); got != gate.SuiteDeterministic(r.Suite()) {
			t.Errorf("table %q: Deterministic() = %v disagrees with gate.SuiteDeterministic", c.table, got)
		}
		ms := r.Metrics()
		if len(ms) < 2 {
			t.Errorf("table %q: %d metrics, want at least config_ms and bytes_streamed", c.table, len(ms))
		}
		for _, m := range ms {
			if m.Name == "" || m.Unit == "" {
				t.Errorf("table %q: malformed metric %+v", c.table, m)
			}
		}
		if ms[0].Name != "config_ms" || ms[0].Value != 1.5 {
			t.Errorf("table %q: first metric %+v, want config_ms=1.5", c.table, ms[0])
		}
		back := r.Wire()
		if back.Table != c.table || back.Label != "x" || back.ConfigMs != 1.5 || back.BytesStreamed != 64 {
			t.Errorf("table %q: Wire() did not round-trip the shared fields: %+v", c.table, back)
		}
	}
}

// TestWriterHistoryEntries: every record contributes one history entry
// per metric, keyed label/metric under its suite, carrying the record's
// determinism and tolerance.
func TestWriterHistoryEntries(t *testing.T) {
	w := NewWriter()
	AddRecords(w, []ScheduleRecord{{Base: Base{Label: "lru+planner", Policy: "lru", Planner: true, ConfigMs: 2.0, BytesStreamed: 128, TolerancePct: 40}}})
	AddRecords(w, []FaultRecord{{Base: Base{Label: "burst+scrub", Policy: "mincost", Planner: true, ConfigMs: 1.0, TolerancePct: 15}, Availability: 0.97}})
	entries := w.HistoryEntries("abc1234")
	if len(entries) < 4 {
		t.Fatalf("%d entries, want >= 4 (two gated metrics per record minimum)", len(entries))
	}
	for _, e := range entries {
		if e.SHA != "abc1234" {
			t.Errorf("entry %+v: wrong sha", e)
		}
		label, name := gate.SplitMetric(e.Metric)
		if label == "" || name == "" {
			t.Errorf("entry metric %q does not split into label/name", e.Metric)
		}
	}
	if entries[0].Suite != "S2" || entries[0].Deterministic || entries[0].TolerancePct != 40 {
		t.Errorf("S2 entry %+v: want host-dependent at 40%% tolerance", entries[0])
	}
	var sawAvail bool
	for _, e := range entries {
		if e.Suite == "S7" && e.Metric == "burst+scrub/availability" {
			sawAvail = true
			if !e.Deterministic || e.Value != 0.97 || e.Unit != "frac" {
				t.Errorf("availability entry %+v", e)
			}
		}
	}
	if !sawAvail {
		t.Error("no S7 availability entry emitted")
	}
}

// TestWriterAppendHistoryRoundTrip writes history through the Writer and
// reads it back through the gate reader.
func TestWriterAppendHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "history.jsonl")
	w := NewWriter()
	AddRecords(w, []RegionRecord{{Base: Base{Label: "paired", Policy: "mincost", Planner: true, ConfigMs: 3.25, BytesStreamed: 99, TolerancePct: 15}}})
	if err := w.AppendHistory(path, "d00d1e"); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.AppendHistory(path, "f00dca"); err != nil {
		t.Fatalf("second append: %v", err)
	}
	entries, skipped, err := func() ([]gate.Entry, int, error) {
		return gate.LoadEntries(path)
	}()
	if err != nil || skipped != 0 {
		t.Fatalf("load: err=%v skipped=%d", err, skipped)
	}
	if len(entries) != 2*len(w.Records()[0].Metrics()) {
		t.Fatalf("%d entries after two appends of %d metrics", len(entries), len(w.Records()[0].Metrics()))
	}
	if entries[0].SHA != "d00d1e" || entries[len(entries)-1].SHA != "f00dca" {
		t.Errorf("append order lost: first %s last %s", entries[0].SHA, entries[len(entries)-1].SHA)
	}
}
