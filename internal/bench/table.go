// Package bench regenerates every table and figure of the paper's
// evaluation from the simulated platforms: one generator per artifact,
// shared by the fpgasim command and the Go benchmark harness.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated paper artifact.
type Table struct {
	ID      string // e.g. "T2" for Table 2, "F3" for Figure 3
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string

	// rawNS carries the machine-readable values behind the formatted rows
	// (per-transfer times or speedups), for dependent tables and tests.
	rawNS []float64
}

// Raw returns the machine-readable values behind the rows (one per row for
// the measurement tables): per-transfer times in femtoseconds or speedup
// factors, depending on the table.
func (t *Table) Raw() []float64 { return t.rawNS }

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	total := 2
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", total-4))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtNS renders a femtosecond duration with an adequate unit.
func fmtNS(fs float64) string {
	switch {
	case fs >= 1e12:
		return fmt.Sprintf("%.3f ms", fs/1e12)
	case fs >= 1e9:
		return fmt.Sprintf("%.3f us", fs/1e9)
	default:
		return fmt.Sprintf("%.1f ns", fs/1e6)
	}
}
