package gate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Entry is one line of the append-only per-commit metric history
// (artifacts/bench/history.jsonl): a single measured value keyed by commit
// SHA, suite and metric. The bench Writer appends one entry per (label,
// metric) each time a snapshot is refreshed; cmd/benchdiff appends its
// comparison verdicts under the same schema so cmd/benchboard's regression
// annotations and the CI gate share one record of what happened.
type Entry struct {
	SHA   string `json:"sha"`
	Suite string `json:"suite"`
	// Metric is "<label>/<metric name>" — the configuration row and the
	// measured quantity. Labels may themselves contain slashes
	// (shards-4/rho-4/poisson), so consumers split at the LAST one.
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
	// Deterministic mirrors gate.SuiteDeterministic for the suite: true
	// rows reproduce byte-identically and gate hard, false rows are
	// host-dependent and informational.
	Deterministic bool `json:"deterministic"`
	// TolerancePct is the row's gate band (0 = the gate default).
	TolerancePct float64 `json:"tolerance_pct,omitempty"`

	// Stat marks multi-sample noise-estimation entries (fpgad -samples K):
	// "min" and "median" summarize a nondeterministic metric across the K
	// reruns of its suite. Empty on ordinary single-sample entries.
	Stat string `json:"stat,omitempty"`

	// Verdict ("ok" or "fail") and DeltaPct are set only on entries
	// appended by cmd/benchdiff -history: the gate's outcome for this
	// metric against the committed baseline.
	Verdict  string  `json:"verdict,omitempty"`
	DeltaPct float64 `json:"delta_pct,omitempty"`
}

// SplitMetric splits an Entry.Metric into its configuration label and
// metric name at the last slash.
func SplitMetric(metric string) (label, name string) {
	for i := len(metric) - 1; i >= 0; i-- {
		if metric[i] == '/' {
			return metric[:i], metric[i+1:]
		}
	}
	return "", metric
}

// AppendEntries appends one JSON object per entry to the history file,
// creating the file and its directory as needed. Appends are line-atomic
// for the sizes involved, so concurrent writers interleave whole lines.
func AppendEntries(path string, entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, e := range entries {
		data, err := json.Marshal(e)
		if err != nil {
			f.Close()
			return err
		}
		w.Write(data)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadEntries decodes a history stream, tolerating damage: a line that is
// not a complete JSON object (a torn tail from a killed run, editor
// garbage, a partial append) is skipped and counted rather than failing
// the read, mirroring internal/fault's JSONL reader. Entries missing a
// SHA, suite or metric are damage too — a verdict no consumer could key.
func ReadEntries(r io.Reader) (entries []Entry, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if json.Unmarshal(line, &e) != nil || e.SHA == "" || e.Suite == "" || e.Metric == "" {
			skipped++
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return entries, skipped, fmt.Errorf("gate: history: %w", err)
	}
	return entries, skipped, nil
}

// LoadEntries reads a history file from disk. A missing file is an empty
// history, not an error — the store starts existing at first append.
func LoadEntries(path string) (entries []Entry, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	return ReadEntries(f)
}
