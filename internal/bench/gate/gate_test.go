package gate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckPercentBand(t *testing.T) {
	cases := []struct {
		name      string
		base, now float64
		allowed   float64
		wantPass  bool
		wantDelta float64
	}{
		{"within band", 100, 110, 15, true, 10},
		{"exactly at band", 100, 115, 15, true, 15},
		{"past band", 100, 120, 15, false, 20},
		{"improvement", 100, 80, 15, true, -20},
		{"tight band", 100, 101, 0.5, false, 1},
	}
	for _, c := range cases {
		v := Check(c.base, c.now, c.allowed, ConfigMsZeroEps)
		if v.Pass != c.wantPass || v.Zero {
			t.Errorf("%s: pass=%v zero=%v, want pass=%v zero=false", c.name, v.Pass, v.Zero, c.wantPass)
		}
		if v.DeltaPct != c.wantDelta {
			t.Errorf("%s: delta %.3f, want %.3f", c.name, v.DeltaPct, c.wantDelta)
		}
		if v.Allowed != c.allowed {
			t.Errorf("%s: allowed %.3f, want %.3f", c.name, v.Allowed, c.allowed)
		}
	}
}

// TestCheckZeroBaseline: a percentage of zero is undefined, so zero
// baselines gate the absolute value against the metric's epsilon — the
// regime the all-hit S6 rows and diff-suppressed byte counts rely on.
func TestCheckZeroBaseline(t *testing.T) {
	if v := Check(0, 0.005, 15, ConfigMsZeroEps); !v.Pass || !v.Zero || v.Allowed != ConfigMsZeroEps {
		t.Errorf("config_ms 0 -> 0.005 ms: %+v, want zero-regime pass", v)
	}
	if v := Check(0, 0.5, 15, ConfigMsZeroEps); v.Pass || !v.Zero {
		t.Errorf("config_ms 0 -> 0.5 ms: %+v, want zero-regime FAIL", v)
	}
	if v := Check(0, 0, 15, BytesZeroEps); !v.Pass || !v.Zero {
		t.Errorf("bytes 0 -> 0: %+v, want pass", v)
	}
	if v := Check(0, 1, 15, BytesZeroEps); v.Pass {
		t.Errorf("bytes 0 -> 1: %+v, want FAIL (any byte on an all-hit path is a regression)", v)
	}
}

func TestCheckHigherBetter(t *testing.T) {
	if v := CheckHigherBetter(0.99, 0.97, 15); !v.Pass {
		t.Errorf("availability 0.99 -> 0.97 within 15%%: %+v", v)
	}
	if v := CheckHigherBetter(0.99, 0.50, 15); v.Pass {
		t.Errorf("availability 0.99 -> 0.50: %+v, want FAIL", v)
	}
	if v := CheckHigherBetter(100, 200, 15); !v.Pass || v.DeltaPct != 100 {
		t.Errorf("throughput doubling: %+v, want pass at +100%%", v)
	}
	if v := CheckHigherBetter(0, 5, 15); !v.Pass || !v.Zero {
		t.Errorf("zero baseline, higher-better: %+v, want unconditional pass", v)
	}
}

func TestAllowed(t *testing.T) {
	if got := Allowed(0); got != DefaultTolerancePct {
		t.Errorf("Allowed(0) = %v, want default %v", got, DefaultTolerancePct)
	}
	if got := Allowed(40); got != 40 {
		t.Errorf("Allowed(40) = %v, want the per-record override", got)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	for _, s := range []string{"S3", "S4", "S5", "S7", "S8"} {
		if !SuiteDeterministic(s) {
			t.Errorf("%s must gate as deterministic", s)
		}
	}
	for _, s := range []string{"S2", "S6", "single", ""} {
		if SuiteDeterministic(s) {
			t.Errorf("%s must gate as host-dependent", s)
		}
	}
}

func TestSplitMetric(t *testing.T) {
	cases := []struct{ in, label, name string }{
		{"lru+planner/config_ms", "lru+planner", "config_ms"},
		{"shards-4/rho-4/poisson/throughput_rps", "shards-4/rho-4/poisson", "throughput_rps"},
		{"bare", "", "bare"},
	}
	for _, c := range cases {
		label, name := SplitMetric(c.in)
		if label != c.label || name != c.name {
			t.Errorf("SplitMetric(%q) = (%q, %q), want (%q, %q)", c.in, label, name, c.label, c.name)
		}
	}
}

func TestHistoryAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "history.jsonl")
	first := []Entry{
		{SHA: "aaa111", Suite: "S3", Metric: "depth-2/config_ms", Value: 1.25, Unit: "ms", Deterministic: true},
		{SHA: "aaa111", Suite: "S2", Metric: "lru/bytes_streamed", Value: 4096, Unit: "B", TolerancePct: 40},
	}
	if err := AppendEntries(path, first); err != nil {
		t.Fatalf("append: %v", err)
	}
	second := []Entry{
		{SHA: "bbb222", Suite: "S3", Metric: "depth-2/config_ms", Value: 1.10, Unit: "ms", Deterministic: true, Verdict: "ok", DeltaPct: -12},
	}
	if err := AppendEntries(path, second); err != nil {
		t.Fatalf("second append: %v", err)
	}
	got, skipped, err := LoadEntries(path)
	if err != nil || skipped != 0 {
		t.Fatalf("load: err=%v skipped=%d", err, skipped)
	}
	if len(got) != 3 {
		t.Fatalf("%d entries, want 3", len(got))
	}
	if got[0] != first[0] || got[1] != first[1] || got[2] != second[0] {
		t.Errorf("round trip lost data:\n got %+v\nwant %+v", got, append(first, second...))
	}
}

// TestReadEntriesTolerant mirrors internal/fault's JSONL reader: damaged
// or truncated lines are skipped and counted, never fatal — a crashed
// bench run must not poison the whole history.
func TestReadEntriesTolerant(t *testing.T) {
	raw := strings.Join([]string{
		`{"sha":"aaa111","suite":"S4","metric":"paired/config_ms","value":2.5,"unit":"ms","deterministic":true}`,
		`{"sha":"aaa111","suite":"S4","met`, // truncated mid-write
		`not json at all`,
		``,
		`{"sha":"","suite":"S4","metric":"x/config_ms","value":1}`, // missing key fields
		`{"sha":"bbb222","suite":"S4","metric":"paired/config_ms","value":2.4,"unit":"ms","deterministic":true}`,
	}, "\n")
	entries, skipped, err := ReadEntries(strings.NewReader(raw))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d entries, want 2 survivors", len(entries))
	}
	if skipped != 3 {
		t.Errorf("skipped = %d, want 3 (truncated, garbage, missing-key)", skipped)
	}
	if entries[0].SHA != "aaa111" || entries[1].SHA != "bbb222" {
		t.Errorf("survivors %+v", entries)
	}
}

func TestLoadEntriesMissingFile(t *testing.T) {
	entries, skipped, err := LoadEntries(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || skipped != 0 || len(entries) != 0 {
		t.Fatalf("missing history must read as empty: %v %d %d", err, skipped, len(entries))
	}
}

func TestAppendEntriesNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := AppendEntries(path, nil); err != nil {
		t.Fatalf("empty append: %v", err)
	}
	if _, err := os.Stat(path); err == nil {
		// An empty append may create the file or not; either is fine, but
		// if it exists it must be empty.
		data, _ := os.ReadFile(path)
		if len(data) != 0 {
			t.Errorf("empty append wrote %d bytes", len(data))
		}
	}
}
