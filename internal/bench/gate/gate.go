// Package gate holds the bench-regression tolerance rules and the
// append-only per-commit metric history shared by the bench tooling:
// cmd/benchdiff (the CI pass/fail gate), internal/bench's Writer (which
// appends every refreshed metric to the history), and cmd/benchboard
// (which renders the history and flags the points this package would
// fail). Keeping the band math here means a trajectory annotation and a
// gate verdict can never disagree about what counts as a regression.
//
// Two gating regimes coexist, keyed on the baseline value:
//
//   - A nonzero baseline gates on relative growth: the fresh value may
//     exceed the baseline by at most the record's tolerance band (its own
//     tolerance_pct when it carries one, DefaultTolerancePct otherwise).
//
//   - A zero baseline gates on absolute growth against a per-metric
//     epsilon. A percentage of zero is undefined: scaling any band by a
//     zero baseline would admit nothing, and mapping it to a fixed
//     percent would admit arbitrary absolute growth. The S6 capacity
//     drive leans on this rule — its all-hit rows pin config_ms and
//     bytes_streamed at exactly zero, so any future miss on the request
//     path is a hard failure, not a percentage.
package gate

// DefaultTolerancePct is the gate's default relative band: a metric may
// grow this many percent over its nonzero baseline before the gate fails.
// Records from inherently noisy configurations carry their own wider
// tolerance_pct, which overrides the default.
const DefaultTolerancePct = 15

// Per-metric absolute epsilons for zero baselines. Visible configuration
// time tolerates rounding dust (the records store milliseconds at
// microsecond precision); request-path bytes are integral and tolerate
// nothing.
const (
	ConfigMsZeroEps = 0.01
	BytesZeroEps    = 0
)

// Allowed resolves a record's effective relative band: its own tolerance
// when it carries one, the gate default otherwise.
func Allowed(tolerancePct float64) float64 {
	if tolerancePct > 0 {
		return tolerancePct
	}
	return DefaultTolerancePct
}

// Verdict is one metric comparison's outcome.
type Verdict struct {
	// Pass is false when the fresh value regressed beyond the band.
	Pass bool
	// Zero marks a zero-baseline comparison: Allowed is then the absolute
	// epsilon in the metric's own unit and DeltaPct is zero (undefined).
	Zero bool
	// DeltaPct is the relative change in percent against a nonzero
	// baseline; negative is an improvement.
	DeltaPct float64
	// Allowed is the band the comparison was held to: percent growth for
	// a nonzero baseline, absolute units for a zero one.
	Allowed float64
}

// Check gates a smaller-is-better metric (config time, streamed bytes,
// latency): fresh may exceed base by at most allowedPct percent, or — when
// base is zero — by at most zeroEps in absolute units.
func Check(base, fresh, allowedPct, zeroEps float64) Verdict {
	if base == 0 {
		return Verdict{Pass: fresh <= zeroEps, Zero: true, Allowed: zeroEps}
	}
	delta := 100 * (fresh - base) / base
	return Verdict{Pass: delta <= allowedPct, DeltaPct: delta, Allowed: allowedPct}
}

// CheckHigherBetter gates a bigger-is-better metric (availability,
// throughput, hidden config time): fresh may fall short of base by at most
// allowedPct percent. A zero baseline passes unconditionally — there is no
// level to fall from, and absolute-epsilon gating has no analogue for
// growth metrics.
func CheckHigherBetter(base, fresh, allowedPct float64) Verdict {
	if base == 0 {
		return Verdict{Pass: true, Zero: true}
	}
	delta := 100 * (fresh - base) / base
	return Verdict{Pass: delta >= -allowedPct, DeltaPct: delta, Allowed: allowedPct}
}

// SuiteDeterministic reports whether a bench suite's rows reproduce
// byte-identically run to run on one machine, which decides how their
// history gates: deterministic rows hold their tolerance band exactly,
// while host-dependent rows (concurrent SubmitAll placement in S2, real
// wall-clock dispatch throughput in S6, ad-hoc single runs) are
// informational — their gated metrics still pin through config_ms /
// bytes_streamed, but their measured fields swing with the host.
func SuiteDeterministic(suite string) bool {
	switch suite {
	case "S3", "S4", "S5", "S7", "S8", "S9":
		return true
	default:
		return false
	}
}
