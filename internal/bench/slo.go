package bench

import (
	"fmt"

	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
)

// SLOSpec pins one S9 latency-SLO evaluation: the S6 capacity drive's
// arrival traces replayed against pinned placement through the
// deterministic k-server overlay. Where S6 drives the live sharded
// scheduler (host-dependent feeder interleaving, gated only through its
// zero config/bytes invariant), S9 removes every source of
// nondeterminism — the service trace comes from a paced window-1 all-hit
// drive and the queueing from the pure-arithmetic replay — so its sojourn
// percentiles reproduce byte-identically and can be gated as hard SLO
// columns.
type SLOSpec struct {
	Pool   pool.Config
	Seed   int64
	N      int
	Module string // the single module, pinned resident in every slot
	Policy string

	Process string // arrival process (see GenArrivals)

	// MeanService fixes the offered-load axis exactly as in ScalingSpec:
	// at offered load rho the mean inter-arrival gap is
	// MeanService/(members*rho), so the S9 arrival traces are the same
	// byte-identical traces the S6 drive consumes.
	MeanService sim.Time

	Rhos []float64
}

// DefaultSLOSpec is the committed S9 configuration: the same pool, seed,
// workload depth, module, arrival process and offered loads as
// DefaultScalingSpec, so the S9 rows are the deterministic twins of the
// S6 poisson column.
func DefaultSLOSpec() SLOSpec {
	return SLOSpec{
		Pool:        pool.Config{Sys32: 32},
		Seed:        7,
		N:           8000,
		Module:      "jenkins",
		Policy:      "lru",
		Process:     "poisson",
		MeanService: 60 * sim.Microsecond,
		Rhos:        []float64{0.25, 1, 4},
	}
}

// SLORun is one offered-load row of the S9 table.
type SLORun struct {
	Label   string
	Rho     float64
	Process string
	MeanGap sim.Time

	P50, P95, P99, Max sim.Time
	Makespan           sim.Time
	N                  int

	// Members is the replay's server count (the pool's member count) and
	// AvgService the measured mean of the shared all-hit service trace;
	// Stats is the paced pinned-placement run it was measured on.
	Members    int
	AvgService sim.Time
	Stats      sched.Stats
}

// SimThroughput is the replay's completion rate in requests per simulated
// second.
func (r SLORun) SimThroughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.N) / (float64(r.Makespan) / float64(sim.Second))
}

// SLOServiceTrace measures the spec's all-hit service trace: the module
// is pinned (pre-loaded) into every slot, then the seeded workload runs
// paced closed-loop (window 1, settled between arrivals), so every
// request is a bitstream cache hit and its latency is pure execution
// time. Paced submission makes the per-request trace byte-identical run
// to run — the property the S6 live drive gives up for capacity
// measurement and S9 exists to keep.
func SLOServiceTrace(spec SLOSpec) ([]sim.Time, int, sched.Stats, error) {
	policy, err := sched.PolicyByName(spec.Policy)
	if err != nil {
		return nil, 0, sched.Stats{}, err
	}
	mix, err := sched.ParseMix(spec.Module)
	if err != nil {
		return nil, 0, sched.Stats{}, err
	}
	w, err := sched.GenWorkload(spec.Seed, spec.N, mix)
	if err != nil {
		return nil, 0, sched.Stats{}, err
	}
	p, err := pool.New(spec.Pool)
	if err != nil {
		return nil, 0, sched.Stats{}, err
	}
	// Pin placement: host the module in every slot before the drive.
	for _, m := range p.Members() {
		for ri := 0; ri < m.Sys.NumRegions(); ri++ {
			if _, err := m.Sys.LoadModuleOn(ri, spec.Module); err != nil {
				return nil, 0, sched.Stats{}, fmt.Errorf("bench: pin member %d region %d: %w", m.ID, ri, err)
			}
		}
	}
	s := sched.New(p, sched.Options{Batch: 1, Policy: policy})
	services := make([]sim.Time, 0, len(w))
	var firstErr error
	s.SubmitWindowed(w, 1, func(r sched.Result) {
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("bench: request %d (%s): %w", r.ID, r.Task, r.Err)
		}
		services = append(services, r.Latency())
		settle(s)
	})
	s.Wait()
	if firstErr != nil {
		return nil, 0, sched.Stats{}, firstErr
	}
	return services, p.Size(), s.Stats(), nil
}

// SLORuns measures the pinned-placement service trace once and replays it
// through the virtual k-server queue under the spec's arrival process at
// each offered load — the same GenArrivals traces the S6 drive submits.
// Everything downstream of the paced run is arithmetic, so the rows
// reproduce exactly.
func SLORuns(spec SLOSpec) ([]SLORun, error) {
	services, members, stats, err := SLOServiceTrace(spec)
	if err != nil {
		return nil, err
	}
	var total sim.Time
	for _, s := range services {
		total += s
	}
	avg := total / sim.Time(len(services))
	runs := make([]SLORun, 0, len(spec.Rhos))
	for _, rho := range spec.Rhos {
		if rho <= 0 {
			return nil, fmt.Errorf("bench: offered load %v", rho)
		}
		mean := sim.Time(float64(spec.MeanService) / (float64(members) * rho))
		arr, err := GenArrivals(spec.Seed, len(services), spec.Process, mean)
		if err != nil {
			return nil, err
		}
		soj, makespan := ReplayOpenLoop(arr, services, members)
		run := SLORun{
			Label:   fmt.Sprintf("rho-%.2g/%s", rho, spec.Process),
			Rho:     rho,
			Process: spec.Process,
			MeanGap: mean, Makespan: makespan, N: len(soj),
			Members: members, AvgService: avg, Stats: stats,
		}
		for _, l := range soj {
			if l > run.Max {
				run.Max = l
			}
		}
		pct := Percentiles(soj, 0.50, 0.95, 0.99)
		run.P50, run.P95, run.P99 = pct[0], pct[1], pct[2]
		runs = append(runs, run)
	}
	return runs, nil
}

// SLORecords converts S9 runs into typed records. Unlike every other
// latency column in the bench economy, the percentiles here are
// deterministic, so all three are gated metrics: a commit that moves p99
// past the band fails benchdiff the same way a config_ms regression does.
func SLORecords(runs []SLORun) []SLORecord {
	out := make([]SLORecord, 0, len(runs))
	for _, r := range runs {
		out = append(out, SLORecord{
			Base: baseFromRun(PlacementRun{
				Label:   r.Label,
				Policy:  "lru",
				Planner: true,
				Stats:   r.Stats,
			}, 0),
			Process:          r.Process,
			OfferedLoad:      r.Rho,
			P50Ms:            r.P50.Milliseconds(),
			P95Ms:            r.P95.Milliseconds(),
			P99Ms:            r.P99.Milliseconds(),
			SimThroughputRPS: r.SimThroughput(),
		})
	}
	return out
}

// SLOTable renders table S9: deterministic sojourn percentiles of the
// pinned-placement service trace under the S6 arrival traces. Raw()
// carries each row's p99 sojourn in femtoseconds.
func SLOTable(runs []SLORun) *Table {
	t := &Table{ID: "S9", Title: "Latency SLO: gated sojourn percentiles of the pinned-placement replay",
		Columns: []string{"process", "offered load", "mean gap", "p50", "p95", "p99", "max", "throughput"}}
	for _, r := range runs {
		thr := "-"
		if r.Makespan > 0 {
			thr = fmt.Sprintf("%.0f/s", r.SimThroughput())
		}
		t.AddRow(r.Process, fmt.Sprintf("%.2f", r.Rho), fmtNS(float64(r.MeanGap)),
			fmtNS(float64(r.P50)), fmtNS(float64(r.P95)), fmtNS(float64(r.P99)),
			fmtNS(float64(r.Max)), thr)
		t.rawNS = append(t.rawNS, float64(r.P99))
	}
	if len(runs) > 0 {
		r := runs[0]
		t.Notes = append(t.Notes,
			fmt.Sprintf("service trace: %d all-hit requests, avg service %v, replayed over %d virtual servers (paced pinned-placement run)", r.N, r.AvgService, r.Members))
	}
	t.Notes = append(t.Notes,
		"deterministic twin of the S6 poisson column: same pool, seed, arrival traces and offered loads, but paced service measurement and arithmetic replay instead of the live sharded drive",
		"p50/p95/p99 here are CI-gated SLO columns — they reproduce byte-identically, so any regression past the band fails benchdiff")
	return t
}
