package bench

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestGenArrivalsDeterministicAndMonotonic: every process yields a seeded,
// reproducible, non-decreasing trace at roughly the configured mean rate.
func TestGenArrivalsDeterministicAndMonotonic(t *testing.T) {
	const n = 512
	mean := sim.Time(1_000_000_000) // 1 us
	for _, proc := range ArrivalProcesses() {
		a, err := GenArrivals(11, n, proc, mean)
		if err != nil {
			t.Fatalf("%s: %v", proc, err)
		}
		b, err := GenArrivals(11, n, proc, mean)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: trace not reproducible at %d (%v vs %v)", proc, i, a[i], b[i])
			}
			if i > 0 && a[i] < a[i-1] {
				t.Fatalf("%s: arrivals not monotonic at %d", proc, i)
			}
		}
		// The realized mean gap stays within 2x of the configured mean
		// (poisson/bursty jitter, exact for uniform).
		span := float64(a[n-1] - a[0])
		got := span / float64(n-1)
		if got < 0.5*float64(mean) || got > 2*float64(mean) {
			t.Errorf("%s: realized mean gap %.0f fs, configured %d fs", proc, got, mean)
		}
	}
	if _, err := GenArrivals(1, 8, "nope", mean); err == nil {
		t.Fatal("unknown process accepted")
	}
}

// TestReplayOpenLoopQueueing: a 2-server replay of a known trace produces
// hand-checkable sojourn times, and a saturating trace queues.
func TestReplayOpenLoopQueueing(t *testing.T) {
	// Arrivals at 0,0,0 with 10-unit services on 2 servers: the third
	// request waits for the first free server.
	arr := []sim.Time{0, 0, 0}
	svc := []sim.Time{10, 10, 10}
	soj, makespan := ReplayOpenLoop(arr, svc, 2)
	want := []sim.Time{10, 10, 20}
	for i := range want {
		if soj[i] != want[i] {
			t.Fatalf("sojourn[%d] = %v, want %v (all %v)", i, soj[i], want[i], soj)
		}
	}
	if makespan != 20 {
		t.Fatalf("makespan %v, want 20", makespan)
	}
	if p := Percentile(soj, 0.99); p != 20 {
		t.Fatalf("p99 %v, want 20", p)
	}
	if p := Percentile(soj, 0.50); p != 10 {
		t.Fatalf("p50 %v, want 10", p)
	}
}

// TestArrivalTableShape builds S5 over a small paced trace: one row per
// (load, process), p99 raw values present, and heavier load never improves
// the p99 of the same process.
func TestArrivalTableShape(t *testing.T) {
	spec := DefaultPlacementSpec()
	spec.N = 24
	tb, err := ArrivalTable(spec, 5, []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * len(ArrivalProcesses())
	if len(tb.Rows) != wantRows || len(tb.Raw()) != wantRows {
		t.Fatalf("table has %d rows / %d raw, want %d", len(tb.Rows), len(tb.Raw()), wantRows)
	}
	procs := len(ArrivalProcesses())
	for i := 0; i < procs; i++ {
		if tb.Raw()[i] > tb.Raw()[i+procs] {
			t.Errorf("%s: p99 at load 0.5 (%v) exceeds p99 at 0.9 (%v)",
				tb.Rows[i][0], tb.Raw()[i], tb.Raw()[i+procs])
		}
	}
}

// TestArrivalRecords: the S5 rows become typed records — one per
// (process, rho), deterministic at the 15% band, with the table built
// from the same runs matching the direct ArrivalTable path.
func TestArrivalRecords(t *testing.T) {
	spec := DefaultPlacementSpec()
	spec.N = 24
	runs, err := ArrivalRuns(spec, 5, []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	recs := ArrivalRecords(runs)
	if len(recs) != 2*len(ArrivalProcesses()) {
		t.Fatalf("%d records, want one per (rho, process)", len(recs))
	}
	for _, r := range recs {
		if r.Suite() != "S5" || !r.Deterministic() || r.Tolerance() != 15 {
			t.Fatalf("record %s: suite %s det %v tol %v, want S5/true/15", r.Key(), r.Suite(), r.Deterministic(), r.Tolerance())
		}
		if r.Process == "" || r.P99Ms < r.P50Ms || r.SimThroughputRPS <= 0 {
			t.Errorf("record %s implausible: %+v", r.Key(), r)
		}
		w := r.Wire()
		if w.Table != "S5" || w.Label != r.Label {
			t.Errorf("wire lowering lost identity: %+v", w)
		}
	}
	var direct strings.Builder
	tb, err := ArrivalTable(spec, 5, []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	tb.Format(&direct)
	var fromRuns strings.Builder
	ArrivalTableFromRuns(runs).Format(&fromRuns)
	if direct.String() != fromRuns.String() {
		t.Error("ArrivalTable and ArrivalTableFromRuns render differently for the same inputs")
	}
}
