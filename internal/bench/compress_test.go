package bench

import "testing"

// TestCompressRunsAcceptance runs the S8 comparison on a reduced spec and
// checks the relations the full benchmark is gated on: the compressed
// load path cuts wire bytes well below the differential planner's, and
// DMA overlap cuts visible configuration time below the CPU load path.
func TestCompressRunsAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("drives four full pool workloads")
	}
	spec := DefaultCompressSpec()
	spec.N = 24
	runs, err := CompressRuns(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(runs))
	}
	complete, diff, comp, dma := runs[0].Stats, runs[1].Stats, runs[2].Stats, runs[3].Stats

	if diff.BytesStreamed >= complete.BytesStreamed {
		t.Errorf("diff streamed %d B, not below complete's %d B", diff.BytesStreamed, complete.BytesStreamed)
	}
	// Acceptance: compression cuts wire bytes >=30% below the differential
	// planner on the same workload and placement.
	if 10*comp.BytesStreamed > 7*diff.BytesStreamed {
		t.Errorf("compressed streamed %d B, want <=70%% of diff's %d B", comp.BytesStreamed, diff.BytesStreamed)
	}
	if comp.CompressedLoads == 0 {
		t.Error("compressed row issued no compressed loads")
	}
	if comp.DMALoads != 0 || diff.DMALoads != 0 || complete.DMALoads != 0 {
		t.Error("CPU rows booked DMA loads")
	}

	// Acceptance: the DMA row hides part of each pair's configuration, so
	// its visible config time is below the CPU compressed row's.
	if dma.Config >= comp.Config {
		t.Errorf("compressed+dma visible config %v not below compressed %v", dma.Config, comp.Config)
	}
	if dma.DMALoads == 0 || dma.OverlapConfig == 0 {
		t.Errorf("DMA row: %d DMA loads, %v overlap — want both nonzero", dma.DMALoads, dma.OverlapConfig)
	}
	for i, r := range runs {
		if r.Availability <= 0 || r.Availability > 1 {
			t.Errorf("run %d (%s): availability %v out of range", i, r.Label, r.Availability)
		}
	}
	// The DMA row does the same work with less visible configuration, so
	// its availability is at least the CPU compressed row's.
	if runs[3].Availability < runs[2].Availability {
		t.Errorf("compressed+dma availability %.4f below compressed %.4f",
			runs[3].Availability, runs[2].Availability)
	}

	recs := CompressRecords(runs)
	for i, rec := range recs {
		if rec.Suite() != "S8" || rec.TolerancePct != 15 {
			t.Errorf("record %d: table %q tolerance %v, want S8/15", i, rec.Suite(), rec.TolerancePct)
		}
	}
	if recs[3].OverlapMs <= 0 || recs[3].DMALoads == 0 {
		t.Errorf("dma record: overlap %.3f ms, %d DMA loads", recs[3].OverlapMs, recs[3].DMALoads)
	}
}
