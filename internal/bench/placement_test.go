package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestPlannerBeatsCompleteOnlyBaseline is the acceptance criterion of the
// transition-aware refactor: on the seeded 60-request mixed workload, the
// planner with cost-aware placement strictly reduces both total simulated
// configuration time and configuration bytes streamed versus the PR 1
// baseline (lru placement, complete streams only).
func TestPlannerBeatsCompleteOnlyBaseline(t *testing.T) {
	spec := DefaultPlacementSpec()
	runs, err := PlacementRuns(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(runs))
	}
	base := runs[0] // lru + complete-only
	if base.Stats.DiffLoads != 0 {
		t.Fatalf("baseline issued %d differential loads, want 0", base.Stats.DiffLoads)
	}
	for _, r := range runs[1:] {
		st, bst := r.Stats, base.Stats
		if st.Done != bst.Done || st.Errors != 0 {
			t.Fatalf("%s: %d done %d errors, want %d clean", r.Label, st.Done, st.Errors, bst.Done)
		}
		if st.Config >= bst.Config {
			t.Errorf("%s config time %v not below baseline %v", r.Label, st.Config, bst.Config)
		}
		if st.BytesStreamed >= bst.BytesStreamed {
			t.Errorf("%s streamed %d B, not below baseline %d B", r.Label, st.BytesStreamed, bst.BytesStreamed)
		}
		if st.CompleteLoads != 0 {
			t.Errorf("%s paid %d complete streams; every miss should plan a differential on this workload",
				r.Label, st.CompleteLoads)
		}
	}
	tb := PlacementTable(runs)
	var buf bytes.Buffer
	tb.Format(&buf)
	out := buf.String()
	for _, want := range []string{"S2 —", "lru+complete-only", "lru+planner", "mincost+planner", "bytes streamed"} {
		if !strings.Contains(out, want) {
			t.Errorf("S2 table missing %q:\n%s", want, out)
		}
	}
	recs := ScheduleRecords(runs)
	if len(recs) != 3 || recs[0].ConfigMs <= recs[2].ConfigMs || recs[2].DiffLoads == 0 {
		t.Errorf("placement records inconsistent: %+v", recs)
	}
}
