package bench

import (
	"encoding/json"
	"os"

	"repro/internal/bench/gate"
)

// Writer accumulates typed bench records and emits them in both on-disk
// forms: the committed BENCH_sched.json layout (byte-compatible with the
// pre-refactor emitter, so cmd/benchdiff and the committed baseline are
// untouched) and the append-only per-commit history store
// (artifacts/bench/history.jsonl) that cmd/benchboard renders.
type Writer struct {
	recs []Record
}

// NewWriter returns a Writer over any initial records.
func NewWriter(recs ...Record) *Writer {
	return &Writer{recs: recs}
}

// Add appends records in emission order.
func (w *Writer) Add(recs ...Record) {
	w.recs = append(w.recs, recs...)
}

// AddRecords appends a typed slice — the suites return concrete record
// types, and a []ScheduleRecord is not a []Record.
func AddRecords[R Record](w *Writer, recs []R) {
	for _, r := range recs {
		w.recs = append(w.recs, r)
	}
}

// Records returns the accumulated records in emission order.
func (w *Writer) Records() []Record { return w.recs }

// MarshalWire renders the records in the legacy BENCH_sched.json layout:
// an indented JSON array of wire rows plus a trailing newline, byte-equal
// to what the pre-refactor emitter wrote for the same rows.
func (w *Writer) MarshalWire() ([]byte, error) {
	wires := make([]PlacementRecord, len(w.recs))
	for i, r := range w.recs {
		wires[i] = r.Wire()
	}
	data, err := json.MarshalIndent(wires, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the legacy layout to path.
func (w *Writer) WriteFile(path string) error {
	data, err := w.MarshalWire()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// HistoryEntries renders every record's metrics as history lines keyed by
// the given commit SHA: one entry per (suite, label, metric).
func (w *Writer) HistoryEntries(sha string) []gate.Entry {
	var out []gate.Entry
	for _, r := range w.recs {
		for _, m := range r.Metrics() {
			out = append(out, gate.Entry{
				SHA:           sha,
				Suite:         r.Suite(),
				Metric:        r.Key() + "/" + m.Name,
				Value:         m.Value,
				Unit:          m.Unit,
				Deterministic: r.Deterministic(),
				TolerancePct:  r.Tolerance(),
			})
		}
	}
	return out
}

// AppendHistory appends the records' metrics to the history file under
// the given commit SHA, creating the file as needed.
func (w *Writer) AppendHistory(path, sha string) error {
	return gate.AppendEntries(path, w.HistoryEntries(sha))
}
