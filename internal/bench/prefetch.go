package bench

import (
	"fmt"

	"repro/internal/pool"
	"repro/internal/predict"
	"repro/internal/sched"
)

// PrefetchSpec pins the paced workload of the prefetch evaluation: the
// placement spec's seeded mix driven closed-loop with a bounded submission
// window, so members regularly sit idle while others compute — the gap the
// prefetch pipeline fills with speculative reconfiguration. A SubmitAll
// workload would keep every member busy and leave nothing to overlap.
type PrefetchSpec struct {
	PlacementSpec
	// Window is the maximum number of outstanding requests; 1 drives the
	// workload fully sequentially.
	Window int
}

// DefaultPrefetchSpec is the S3 evaluation: the same seeded 60-request
// mixed workload as S2, driven with a window of 1 over the 2+2 pool.
func DefaultPrefetchSpec() PrefetchSpec {
	return PrefetchSpec{PlacementSpec: DefaultPlacementSpec(), Window: 1}
}

// PrefetchRun is one prefetch configuration's outcome over the paced
// workload.
type PrefetchRun struct {
	Label     string
	Policy    string
	Predictor string // "" = prefetch disabled
	Window    int
	Stats     sched.Stats
}

// RunPrefetch boots a fresh planner-backed pool and drives the spec's
// workload closed-loop under the given placement policy, with prefetching
// guided by the named predictor ("" disables prefetch — the visible-config
// baseline the other runs are measured against).
func RunPrefetch(spec PrefetchSpec, policyName, predictorName string) (PrefetchRun, error) {
	label := policyName + "+noprefetch"
	if predictorName != "" {
		label = policyName + "+prefetch-" + predictorName
	}
	run := PrefetchRun{Label: label, Policy: policyName, Predictor: predictorName, Window: spec.Window}
	policy, err := sched.PolicyByName(policyName)
	if err != nil {
		return run, err
	}
	opts := sched.Options{Batch: spec.Batch, Policy: policy}
	if predictorName != "" {
		pred, err := predict.New(predictorName)
		if err != nil {
			return run, err
		}
		opts.Prefetch, opts.Predictor = true, pred
	}
	mix, err := sched.ParseMix(spec.Mix)
	if err != nil {
		return run, err
	}
	w, err := sched.GenWorkload(spec.Seed, spec.N, mix)
	if err != nil {
		return run, err
	}
	p, err := pool.New(spec.Pool)
	if err != nil {
		return run, err
	}
	s := sched.New(p, opts)
	window := spec.Window
	if window < 1 {
		window = 1
	}
	// The think-time gap after each completion lets the pool settle
	// (member released, speculative streams landed): requests arrive
	// against settled state, so the run is reproducible (the CI gate
	// diffs these numbers at a tight threshold) and the comparison
	// measures prediction quality rather than host scheduling jitter.
	// Only meaningful fully sequential — with a wider window other
	// requests are still executing by design.
	var firstErr error
	s.SubmitWindowed(w, window, func(r sched.Result) {
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("bench: request %d (%s): %w", r.ID, r.Task, r.Err)
		}
		if window == 1 {
			settle(s)
		}
	})
	// Let the tail speculation land before Wait(): Wait aborts whatever is
	// still in flight at a wall-clock-dependent point, which would make
	// the speculative counters (completed/wasted) vary run to run and
	// churn the committed baseline. Quiescing precedes the error check so
	// an errored run never leaks speculative goroutines to the caller.
	settle(s)
	s.Wait()
	if firstErr != nil {
		return run, firstErr
	}
	for _, m := range p.Snapshot() {
		if m.Corrupted {
			return run, fmt.Errorf("bench: member %d corrupted under %s", m.ID, label)
		}
	}
	run.Stats = s.Stats()
	return run, nil
}

// PrefetchRuns executes the canonical S3 comparison on one spec: the PR 2
// configuration (mincost placement, differential planner, no prefetch)
// paced identically, then prefetching under both predictors, then the
// prediction-aware placement policy on top.
func PrefetchRuns(spec PrefetchSpec) ([]PrefetchRun, error) {
	configs := []struct{ policy, predictor string }{
		{"mincost", ""},
		{"mincost", "freq"},
		{"mincost", "markov"},
		{"prefetch", "markov"},
	}
	runs := make([]PrefetchRun, 0, len(configs))
	for _, c := range configs {
		r, err := RunPrefetch(spec, c.policy, c.predictor)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// PrefetchTable renders prefetch runs as table S3: how much of the
// baseline's visible configuration time the speculative pipeline hides on
// the same paced workload, and what it costs in wasted speculative bytes.
// Raw() carries each run's visible configuration time in femtoseconds.
func PrefetchTable(runs []PrefetchRun) *Table {
	t := &Table{ID: "S3", Title: "Prefetch pipeline: visible configuration time on the paced seeded workload",
		Columns: []string{"configuration", "hits", "pf hits", "pf abort", "config time", "hidden config", "bytes streamed", "pf bytes", "pf wasted"}}
	for _, r := range runs {
		st := r.Stats
		t.AddRow(r.Label,
			fmt.Sprint(st.Hits), fmt.Sprint(st.PrefetchHits), fmt.Sprint(st.PrefetchAborted),
			fmtNS(float64(st.Config)), fmtNS(float64(st.HiddenConfig)),
			fmt.Sprintf("%d B", st.BytesStreamed), fmt.Sprintf("%d B", st.PrefetchBytes),
			fmt.Sprintf("%d B", st.PrefetchWasted))
		t.rawNS = append(t.rawNS, float64(st.Config))
	}
	if len(runs) > 1 {
		base := runs[0].Stats
		for _, r := range runs[1:] {
			if base.Config > 0 {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"%s hides %.0f%% of %s's visible configuration time",
					r.Label, 100*(1-float64(r.Stats.Config)/float64(base.Config)), runs[0].Label))
			}
		}
	}
	t.Notes = append(t.Notes,
		"visible config time is what requests wait for; speculative streams run while members would sit idle",
		"an aborted speculative stream only wastes bytes: the §2.2 hazard gate forces the next real load onto a complete stream")
	return t
}

// PrefetchRecords converts prefetch runs into typed S3 records. Paced and
// quiesced, repeated runs are byte-identical, so the rows carry no
// tolerance override and gate at the CI default.
func PrefetchRecords(runs []PrefetchRun) []PrefetchRecord {
	out := make([]PrefetchRecord, 0, len(runs))
	for _, r := range runs {
		st := r.Stats
		out = append(out, PrefetchRecord{
			Base: baseFromRun(PlacementRun{Label: r.Label, Policy: r.Policy, Planner: true, Stats: st}, 0),
			Speculation: Speculation{
				Window:              r.Window,
				Predictor:           r.Predictor,
				PrefetchHits:        st.PrefetchHits,
				PrefetchAborted:     st.PrefetchAborted,
				PrefetchBytes:       st.PrefetchBytes,
				PrefetchWastedBytes: st.PrefetchWasted,
				HiddenMs:            float64(st.HiddenConfig.Microseconds()) / 1e3,
			},
		})
	}
	return out
}
