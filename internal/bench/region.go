package bench

import (
	"fmt"

	"repro/internal/pool"
	"repro/internal/predict"
	"repro/internal/region"
	"repro/internal/sched"
)

// RegionSpec pins the S4 evaluation: the same seeded mixed workload driven
// over pools of EQUAL TOTAL FABRIC organized at different region
// granularities.
//
// Two comparisons share the table:
//
//   - 4×1-region vs 2×2-region at identical region geometry (four
//     half-width areas, on four single-region boards or two dual-region
//     boards). Under the slot scheduler these pools are isomorphic — the
//     committed rows are byte-identical — so the dual-region pool matches
//     the four-board pool's entire configuration economy on HALF the
//     hardware: per board, throughput doubles.
//
//   - 2×1-full vs 2×2-split on the SAME two boards: the paper's full-width
//     dynamic area used as one region versus column-split into two
//     independently reconfigurable halves. Same fabric budget, twice the
//     residents: the split pool converts module-width slack into extra
//     bitstream-cache entries and cuts visible configuration time — the
//     floorplanning win multi-region fabrics exist for.
//
// The workload is driven closed-loop with a window of 1 and the pool
// settled between arrivals (the S3 discipline), so every row is
// deterministic and the CI gate holds them tight.
type RegionSpec struct {
	// Boards1 is the single-region half-width pool's board count; Boards2
	// the dual-region pool's. Boards1 = 2*Boards2 keeps total fabric equal.
	Boards1 int
	Boards2 int
	Seed    int64
	N       int
	Mix     string
	Batch   int
}

// DefaultRegionSpec is the committed S4 configuration: the seeded
// 60-request mixed workload of S2/S3 over 4×1 / 2×2 / 2×1-full pools.
func DefaultRegionSpec() RegionSpec {
	return RegionSpec{
		Boards1: 4,
		Boards2: 2,
		Seed:    7,
		N:       60,
		Mix:     "sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1",
		Batch:   4,
	}
}

// regionPools builds the three equal-fabric pool configurations: four
// single-region boards carrying the dual floorplan's first half-area, two
// dual-region boards carrying both halves, and two boards with the paper's
// full-width single region (the same fabric budget the split carves up).
func regionPools(spec RegionSpec) (single, dual, full pool.Config, err error) {
	fp, err := region.Default(true, 2)
	if err != nil {
		return pool.Config{}, pool.Config{}, pool.Config{}, err
	}
	half := region.Floorplan{Name: "half64", Areas: fp.Areas[:1]}
	for i := 0; i < spec.Boards1; i++ {
		single.Members = append(single.Members, pool.MemberSpec{Is64: true, Floorplan: half})
	}
	for i := 0; i < spec.Boards2; i++ {
		dual.Members = append(dual.Members, pool.MemberSpec{Is64: true, Floorplan: fp})
	}
	full = pool.Config{Sys64: spec.Boards2}
	return single, dual, full, nil
}

// RegionRun is one pool shape's outcome over the paced workload.
type RegionRun struct {
	Label     string
	Boards    int
	Slots     int
	Predictor string // "" = prefetch disabled
	Stats     sched.Stats
}

// RunRegion boots the pool configuration and drives the spec's workload
// closed-loop (window 1, settled between arrivals) under mincost
// placement, with prefetching guided by the named predictor ("" disables
// prefetch).
func RunRegion(spec RegionSpec, cfg pool.Config, label, predictorName string) (RegionRun, error) {
	run := RegionRun{Label: label, Predictor: predictorName}
	policy, err := sched.PolicyByName("mincost")
	if err != nil {
		return run, err
	}
	opts := sched.Options{Batch: spec.Batch, Policy: policy}
	if predictorName != "" {
		pred, err := predict.New(predictorName)
		if err != nil {
			return run, err
		}
		opts.Prefetch, opts.Predictor = true, pred
	}
	mix, err := sched.ParseMix(spec.Mix)
	if err != nil {
		return run, err
	}
	w, err := sched.GenWorkload(spec.Seed, spec.N, mix)
	if err != nil {
		return run, err
	}
	p, err := pool.New(cfg)
	if err != nil {
		return run, err
	}
	run.Boards = p.Size()
	run.Slots = p.Slots()
	s := sched.New(p, opts)
	var firstErr error
	s.SubmitWindowed(w, 1, func(r sched.Result) {
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("bench: request %d (%s): %w", r.ID, r.Task, r.Err)
		}
		settle(s)
	})
	// Quiesce before looking at the error: a bare return would leak the
	// tail speculation's goroutines into the caller's next run.
	settle(s)
	s.Wait()
	if firstErr != nil {
		return run, firstErr
	}
	for _, m := range p.Snapshot() {
		if m.Corrupted {
			return run, fmt.Errorf("bench: member %d corrupted under %s", m.ID, label)
		}
	}
	run.Stats = s.Stats()
	return run, nil
}

// RegionRuns executes the canonical S4 comparison: the three pool shapes
// without prefetch, then the two-board shapes with the markov-guided
// speculative pipeline (a dual-region board speculates into one region
// while the sibling holds — or serves — the working set).
func RegionRuns(spec RegionSpec) ([]RegionRun, error) {
	single, dual, full, err := regionPools(spec)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		cfg       pool.Config
		label     string
		predictor string
	}{
		{single, fmt.Sprintf("%dx1-half+mincost", spec.Boards1), ""},
		{dual, fmt.Sprintf("%dx2-half+mincost", spec.Boards2), ""},
		{full, fmt.Sprintf("%dx1-full+mincost", spec.Boards2), ""},
		{full, fmt.Sprintf("%dx1-full+prefetch-markov", spec.Boards2), "markov"},
		{dual, fmt.Sprintf("%dx2-half+prefetch-markov", spec.Boards2), "markov"},
	}
	runs := make([]RegionRun, 0, len(configs))
	for _, c := range configs {
		r, err := RunRegion(spec, c.cfg, c.label, c.predictor)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// RegionTable renders region runs as table S4: what region granularity is
// worth at equal total fabric. Raw() carries each run's visible
// configuration time in femtoseconds.
func RegionTable(runs []RegionRun) *Table {
	t := &Table{ID: "S4", Title: "Region granularity at equal total fabric on the paced seeded workload",
		Columns: []string{"configuration", "boards", "slots", "hits", "misses", "pf hits", "config time", "hidden config", "bytes streamed"}}
	for _, r := range runs {
		st := r.Stats
		t.AddRow(r.Label, fmt.Sprint(r.Boards), fmt.Sprint(r.Slots),
			fmt.Sprint(st.Hits), fmt.Sprint(st.Misses), fmt.Sprint(st.PrefetchHits),
			fmtNS(float64(st.Config)), fmtNS(float64(st.HiddenConfig)),
			fmt.Sprintf("%d B", st.BytesStreamed))
		t.rawNS = append(t.rawNS, float64(st.Config))
	}
	if len(runs) >= 3 {
		a, b, f := runs[0].Stats, runs[1].Stats, runs[2].Stats
		if a.Config > 0 && b.Config > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s matches %s (%v vs %v visible config) on half the boards: equal slots are equal economics, so per-board throughput doubles",
				runs[1].Label, runs[0].Label, b.Config, a.Config))
		}
		if f.Config > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s vs %s on the SAME two boards: splitting the area halves visible config time (%v vs %v) by doubling residents (%d vs %d hits)",
				runs[1].Label, runs[2].Label, b.Config, f.Config, b.Hits, f.Hits))
		}
	}
	t.Notes = append(t.Notes,
		"equal fabric: the half-width regions are the paper's 64-bit dynamic area column-split in two; the full rows use it whole",
		"a dual-region board holds two residents behind separate docks and pays no ICAP traffic when the sibling's neighbour is requested")
	return t
}

// RegionRecords converts region runs into typed S4 records. The window-1
// settled drive is deterministic, so the rows gate at a tight band.
func RegionRecords(runs []RegionRun) []RegionRecord {
	out := make([]RegionRecord, 0, len(runs))
	for _, r := range runs {
		st := r.Stats
		out = append(out, RegionRecord{
			Base: baseFromRun(PlacementRun{Label: r.Label, Policy: "mincost", Planner: true, Stats: st}, 15),
			Speculation: Speculation{
				Predictor:           r.Predictor,
				PrefetchHits:        st.PrefetchHits,
				PrefetchAborted:     st.PrefetchAborted,
				PrefetchBytes:       st.PrefetchBytes,
				PrefetchWastedBytes: st.PrefetchWasted,
				HiddenMs:            float64(st.HiddenConfig.Microseconds()) / 1e3,
			},
		})
	}
	return out
}
