package bench

import (
	"encoding/json"
	"fmt"

	"repro/internal/bench/gate"
)

// Metric is one measured quantity a record contributes to the per-commit
// trajectory store (artifacts/bench/history.jsonl).
type Metric struct {
	Name  string
	Value float64
	Unit  string
}

// Record is one bench table row in typed form. Every suite's rows —
// ScheduleRecord (S2), PrefetchRecord (S3), RegionRecord (S4),
// ArrivalRecord (S5), ScalingRecord (S6), FaultRecord (S7),
// CompressRecord (S8), SLORecord (S9) — implement it, as does the raw wire row itself
// (PlacementRecord) for ad-hoc single runs. The Writer consumes Records
// to emit both the committed BENCH_sched.json layout and the history
// store.
type Record interface {
	// Suite is the table ID ("S2" … "S9", or "single" for ad-hoc runs).
	Suite() string
	// Key is the configuration label, unique within the suite; the CI
	// gate and the trajectory store key rows as Suite()/Key().
	Key() string
	// Deterministic reports whether the row reproduces byte-identically
	// run to run on one machine (see gate.SuiteDeterministic).
	Deterministic() bool
	// Tolerance is the row's CI-gate band in percent (0 = gate default).
	Tolerance() float64
	// Metrics lists the quantities the row contributes to the history.
	Metrics() []Metric
	// Wire is the row in the legacy BENCH_sched.json layout.
	Wire() PlacementRecord
}

// Base carries the scheduler economics every suite reports for one
// configuration row: identity, cache behaviour, stream mix, and the two
// CI-gated metrics (visible config time and request-path bytes). The
// typed records embed it and add their suite's own columns.
type Base struct {
	Label   string
	Policy  string
	Planner bool

	Requests      uint64
	Hits          uint64
	Misses        uint64
	HitRate       float64
	DiffLoads     uint64
	CompleteLoads uint64

	ConfigMs      float64
	WorkMs        float64
	BusyMs        float64
	BytesStreamed uint64
	SimUsPerReq   float64

	// TolerancePct is how much this configuration may regress before the
	// CI gate (cmd/benchdiff) fails, overriding the gate's default. The
	// paced deterministic rows gate tight; the SubmitAll S2 rows react to
	// goroutine completion order (placement follows whoever finishes
	// first) and swing up to ~30% run to run, so they carry a wider band —
	// still far inside the 5x planner-vs-complete signal they guard.
	TolerancePct float64
}

// Key implements Record.
func (b Base) Key() string { return b.Label }

// Tolerance implements Record.
func (b Base) Tolerance() float64 { return b.TolerancePct }

// wire fills the shared fields of the legacy layout.
func (b Base) wire(table string) PlacementRecord {
	return PlacementRecord{
		Table:         table,
		Label:         b.Label,
		Policy:        b.Policy,
		Planner:       b.Planner,
		Requests:      b.Requests,
		Hits:          b.Hits,
		Misses:        b.Misses,
		HitRate:       b.HitRate,
		DiffLoads:     b.DiffLoads,
		CompleteLoads: b.CompleteLoads,
		ConfigMs:      b.ConfigMs,
		WorkMs:        b.WorkMs,
		BusyMs:        b.BusyMs,
		BytesStreamed: b.BytesStreamed,
		SimUsPerReq:   b.SimUsPerReq,
		TolerancePct:  b.TolerancePct,
	}
}

// metrics lists the two quantities every suite contributes: the CI-gated
// pair the whole bench economy is priced in.
func (b Base) metrics() []Metric {
	return []Metric{
		{Name: "config_ms", Value: b.ConfigMs, Unit: "ms"},
		{Name: "bytes_streamed", Value: float64(b.BytesStreamed), Unit: "B"},
	}
}

// baseOf recovers a Base from a wire row.
func baseOf(w PlacementRecord) Base {
	return Base{
		Label:         w.Label,
		Policy:        w.Policy,
		Planner:       w.Planner,
		Requests:      w.Requests,
		Hits:          w.Hits,
		Misses:        w.Misses,
		HitRate:       w.HitRate,
		DiffLoads:     w.DiffLoads,
		CompleteLoads: w.CompleteLoads,
		ConfigMs:      w.ConfigMs,
		WorkMs:        w.WorkMs,
		BusyMs:        w.BusyMs,
		BytesStreamed: w.BytesStreamed,
		SimUsPerReq:   w.SimUsPerReq,
		TolerancePct:  w.TolerancePct,
	}
}

// baseFromRun fills the shared fields from a run's scheduler stats.
func baseFromRun(r PlacementRun, tolerancePct float64) Base {
	st := r.Stats
	var busy float64
	for _, b := range st.BusyTime {
		busy += float64(b.Microseconds())
	}
	base := Base{
		Label:         r.Label,
		Policy:        r.Policy,
		Planner:       r.Planner,
		Requests:      st.Done,
		Hits:          st.Hits,
		Misses:        st.Misses,
		HitRate:       st.HitRate(),
		DiffLoads:     st.DiffLoads,
		CompleteLoads: st.CompleteLoads,
		ConfigMs:      float64(st.Config.Microseconds()) / 1e3,
		WorkMs:        float64(st.Work.Microseconds()) / 1e3,
		BusyMs:        busy / 1e3,
		BytesStreamed: st.BytesStreamed,
		TolerancePct:  tolerancePct,
	}
	if st.Done > 0 {
		base.SimUsPerReq = busy / float64(st.Done)
	}
	return base
}

// Speculation carries the prefetch-pipeline columns shared by the S3
// prefetch rows and the S4 region rows (both drive the speculative
// configuration pipeline; S4's paced drive leaves Window zero).
type Speculation struct {
	Window              int
	Predictor           string
	PrefetchHits        uint64
	PrefetchAborted     uint64
	PrefetchBytes       uint64
	PrefetchWastedBytes uint64
	HiddenMs            float64
}

// speculationOf recovers the block from a wire row.
func speculationOf(w PlacementRecord) Speculation {
	return Speculation{
		Window:              w.Window,
		Predictor:           w.Predictor,
		PrefetchHits:        w.PrefetchHits,
		PrefetchAborted:     w.PrefetchAborted,
		PrefetchBytes:       w.PrefetchBytes,
		PrefetchWastedBytes: w.PrefetchWastedBytes,
		HiddenMs:            w.HiddenMs,
	}
}

// wireInto copies the block onto a wire row.
func (sp Speculation) wireInto(w *PlacementRecord) {
	w.Window = sp.Window
	w.Predictor = sp.Predictor
	w.PrefetchHits = sp.PrefetchHits
	w.PrefetchAborted = sp.PrefetchAborted
	w.PrefetchBytes = sp.PrefetchBytes
	w.PrefetchWastedBytes = sp.PrefetchWastedBytes
	w.HiddenMs = sp.HiddenMs
}

// ScheduleRecord is one S2 placement row: the concurrent SubmitAll drive
// comparing placement policy and stream planning.
type ScheduleRecord struct{ Base }

// Suite implements Record.
func (ScheduleRecord) Suite() string { return "S2" }

// Deterministic implements Record: SubmitAll placement follows goroutine
// completion order, so S2 rows are host-dependent.
func (ScheduleRecord) Deterministic() bool { return false }

// Metrics implements Record.
func (r ScheduleRecord) Metrics() []Metric { return r.metrics() }

// Wire implements Record.
func (r ScheduleRecord) Wire() PlacementRecord { return r.wire("S2") }

// PrefetchRecord is one S3 prefetch row: the paced window-1 drive
// measuring how much visible configuration time speculation hides.
type PrefetchRecord struct {
	Base
	Speculation
}

// Suite implements Record.
func (PrefetchRecord) Suite() string { return "S3" }

// Deterministic implements Record: paced and settled, byte-identical.
func (PrefetchRecord) Deterministic() bool { return true }

// Metrics implements Record.
func (r PrefetchRecord) Metrics() []Metric {
	return append(r.metrics(), Metric{Name: "hidden_ms", Value: r.HiddenMs, Unit: "ms"})
}

// Wire implements Record.
func (r PrefetchRecord) Wire() PlacementRecord {
	w := r.wire("S3")
	r.Speculation.wireInto(&w)
	return w
}

// RegionRecord is one S4 region-granularity row: equal total fabric
// organized as different region counts, paced like S3.
type RegionRecord struct {
	Base
	Speculation
}

// Suite implements Record.
func (RegionRecord) Suite() string { return "S4" }

// Deterministic implements Record.
func (RegionRecord) Deterministic() bool { return true }

// Metrics implements Record.
func (r RegionRecord) Metrics() []Metric {
	return append(r.metrics(), Metric{Name: "hidden_ms", Value: r.HiddenMs, Unit: "ms"})
}

// Wire implements Record.
func (r RegionRecord) Wire() PlacementRecord {
	w := r.wire("S4")
	r.Speculation.wireInto(&w)
	return w
}

// ArrivalRecord is one S5 row: the measured service trace replayed
// through the virtual k-server queue under one open-loop arrival process
// and offered load. The replay is pure arithmetic over a deterministic
// trace, so the rows reproduce exactly; the scheduler-economics fields of
// Base describe the single paced run the whole table replays.
type ArrivalRecord struct {
	Base
	Process          string
	OfferedLoad      float64
	P50Ms            float64
	P95Ms            float64
	P99Ms            float64
	SimThroughputRPS float64
}

// Suite implements Record.
func (ArrivalRecord) Suite() string { return "S5" }

// Deterministic implements Record.
func (ArrivalRecord) Deterministic() bool { return true }

// Metrics implements Record.
func (r ArrivalRecord) Metrics() []Metric {
	return append(r.metrics(),
		Metric{Name: "p99_ms", Value: r.P99Ms, Unit: "ms"},
		Metric{Name: "sim_throughput_rps", Value: r.SimThroughputRPS, Unit: "req/s"})
}

// Wire implements Record.
func (r ArrivalRecord) Wire() PlacementRecord {
	w := r.wire("S5")
	w.ArrivalProcess = r.Process
	w.OfferedLoad = r.OfferedLoad
	w.P50Ms = r.P50Ms
	w.P95Ms = r.P95Ms
	w.P99Ms = r.P99Ms
	w.SimThroughputRPS = r.SimThroughputRPS
	return w
}

// ScalingRecord is one S6 scaling-sweep cell: the sharded dispatcher
// under an open-loop all-hit capacity drive at one (shard count, offered
// load) point.
type ScalingRecord struct {
	Base
	Shards           int
	OfferedLoad      float64
	Process          string
	ThroughputRPS    float64
	SimThroughputRPS float64
	P50Ms            float64
	P95Ms            float64
	P99Ms            float64
	Steals           uint64
	StolenRequests   uint64
}

// Suite implements Record.
func (ScalingRecord) Suite() string { return "S6" }

// Deterministic implements Record: real throughput is host wall-clock and
// the percentiles ride concurrent placement. The gated config_ms /
// bytes_streamed stay exact — zero by the all-hit construction.
func (ScalingRecord) Deterministic() bool { return false }

// Metrics implements Record.
func (r ScalingRecord) Metrics() []Metric {
	return append(r.metrics(),
		Metric{Name: "throughput_rps", Value: r.ThroughputRPS, Unit: "req/s"},
		Metric{Name: "p99_ms", Value: r.P99Ms, Unit: "ms"})
}

// Wire implements Record.
func (r ScalingRecord) Wire() PlacementRecord {
	w := r.wire("S6")
	w.Shards = r.Shards
	w.OfferedLoad = r.OfferedLoad
	w.ArrivalProcess = r.Process
	w.ThroughputRPS = r.ThroughputRPS
	w.SimThroughputRPS = r.SimThroughputRPS
	w.P50Ms = r.P50Ms
	w.P95Ms = r.P95Ms
	w.P99Ms = r.P99Ms
	w.Steals = r.Steals
	w.StolenRequests = r.StolenRequests
	return w
}

// FaultRecord is one S7 availability row: the paced drive under one
// seeded upset scenario with the scrub/quarantine/repair loop on.
type FaultRecord struct {
	Base
	FaultsInjected uint64
	FaultsDetected uint64
	Requeues       uint64
	Repairs        uint64
	RepairMs       float64
	Availability   float64
	P99Ms          float64
}

// Suite implements Record.
func (FaultRecord) Suite() string { return "S7" }

// Deterministic implements Record: seeded scenario, paced drive.
func (FaultRecord) Deterministic() bool { return true }

// Metrics implements Record.
func (r FaultRecord) Metrics() []Metric {
	return append(r.metrics(),
		Metric{Name: "availability", Value: r.Availability, Unit: "frac"},
		Metric{Name: "repair_ms", Value: r.RepairMs, Unit: "ms"})
}

// Wire implements Record.
func (r FaultRecord) Wire() PlacementRecord {
	w := r.wire("S7")
	w.FaultsInjected = r.FaultsInjected
	w.FaultsDetected = r.FaultsDetected
	w.Requeues = r.Requeues
	w.Repairs = r.Repairs
	w.RepairMs = r.RepairMs
	w.Availability = r.Availability
	w.P99Ms = r.P99Ms
	return w
}

// CompressRecord is one S8 load-path row: the paired deterministic drive
// comparing complete / differential / compressed / compressed+DMA
// configuration.
type CompressRecord struct {
	Base
	CompressedLoads uint64
	DMALoads        uint64
	OverlapMs       float64
	Availability    float64
}

// Suite implements Record.
func (CompressRecord) Suite() string { return "S8" }

// Deterministic implements Record: the paired drive is deterministic.
func (CompressRecord) Deterministic() bool { return true }

// Metrics implements Record.
func (r CompressRecord) Metrics() []Metric {
	return append(r.metrics(),
		Metric{Name: "availability", Value: r.Availability, Unit: "frac"},
		Metric{Name: "overlap_ms", Value: r.OverlapMs, Unit: "ms"})
}

// Wire implements Record.
func (r CompressRecord) Wire() PlacementRecord {
	w := r.wire("S8")
	w.CompressedLoads = r.CompressedLoads
	w.DMALoads = r.DMALoads
	w.OverlapMs = r.OverlapMs
	w.Availability = r.Availability
	return w
}

// SLORecord is one S9 latency-SLO row: the S6 arrival traces replayed
// against pinned placement through the deterministic k-server overlay.
// The percentile columns are the suite's point — deterministic sojourn
// p50/p95/p99, each a gated metric rather than an informational one.
type SLORecord struct {
	Base
	Process          string
	OfferedLoad      float64
	P50Ms            float64
	P95Ms            float64
	P99Ms            float64
	SimThroughputRPS float64
}

// Suite implements Record.
func (SLORecord) Suite() string { return "S9" }

// Deterministic implements Record: paced service measurement plus
// arithmetic replay, byte-identical run to run.
func (SLORecord) Deterministic() bool { return true }

// Metrics implements Record: the three SLO percentiles gate alongside
// the economy pair.
func (r SLORecord) Metrics() []Metric {
	return append(r.metrics(),
		Metric{Name: "p50_ms", Value: r.P50Ms, Unit: "ms"},
		Metric{Name: "p95_ms", Value: r.P95Ms, Unit: "ms"},
		Metric{Name: "p99_ms", Value: r.P99Ms, Unit: "ms"})
}

// Wire implements Record.
func (r SLORecord) Wire() PlacementRecord {
	w := r.wire("S9")
	w.ArrivalProcess = r.Process
	w.OfferedLoad = r.OfferedLoad
	w.P50Ms = r.P50Ms
	w.P95Ms = r.P95Ms
	w.P99Ms = r.P99Ms
	w.SimThroughputRPS = r.SimThroughputRPS
	return w
}

// Suite implements Record for the raw wire row: ad-hoc single runs tag
// themselves "single" (or leave the table empty in pre-gate files).
func (r PlacementRecord) Suite() string {
	if r.Table == "" {
		return "single"
	}
	return r.Table
}

// Key implements Record.
func (r PlacementRecord) Key() string { return r.Label }

// Deterministic implements Record.
func (r PlacementRecord) Deterministic() bool { return gate.SuiteDeterministic(r.Suite()) }

// Tolerance implements Record.
func (r PlacementRecord) Tolerance() float64 { return r.TolerancePct }

// Metrics implements Record: a raw row contributes only the gated pair.
func (r PlacementRecord) Metrics() []Metric {
	return []Metric{
		{Name: "config_ms", Value: r.ConfigMs, Unit: "ms"},
		{Name: "bytes_streamed", Value: float64(r.BytesStreamed), Unit: "B"},
	}
}

// Wire implements Record.
func (r PlacementRecord) Wire() PlacementRecord { return r }

// FromWire lifts a wire row into its suite's typed record. Rows of
// unknown tables (ad-hoc "single" runs, future suites) stay raw — the
// wire row itself implements Record.
func FromWire(w PlacementRecord) Record {
	switch w.Table {
	case "S2":
		return ScheduleRecord{Base: baseOf(w)}
	case "S3":
		return PrefetchRecord{Base: baseOf(w), Speculation: speculationOf(w)}
	case "S4":
		return RegionRecord{Base: baseOf(w), Speculation: speculationOf(w)}
	case "S5":
		return ArrivalRecord{
			Base:             baseOf(w),
			Process:          w.ArrivalProcess,
			OfferedLoad:      w.OfferedLoad,
			P50Ms:            w.P50Ms,
			P95Ms:            w.P95Ms,
			P99Ms:            w.P99Ms,
			SimThroughputRPS: w.SimThroughputRPS,
		}
	case "S6":
		return ScalingRecord{
			Base:             baseOf(w),
			Shards:           w.Shards,
			OfferedLoad:      w.OfferedLoad,
			Process:          w.ArrivalProcess,
			ThroughputRPS:    w.ThroughputRPS,
			SimThroughputRPS: w.SimThroughputRPS,
			P50Ms:            w.P50Ms,
			P95Ms:            w.P95Ms,
			P99Ms:            w.P99Ms,
			Steals:           w.Steals,
			StolenRequests:   w.StolenRequests,
		}
	case "S7":
		return FaultRecord{
			Base:           baseOf(w),
			FaultsInjected: w.FaultsInjected,
			FaultsDetected: w.FaultsDetected,
			Requeues:       w.Requeues,
			Repairs:        w.Repairs,
			RepairMs:       w.RepairMs,
			Availability:   w.Availability,
			P99Ms:          w.P99Ms,
		}
	case "S8":
		return CompressRecord{
			Base:            baseOf(w),
			CompressedLoads: w.CompressedLoads,
			DMALoads:        w.DMALoads,
			OverlapMs:       w.OverlapMs,
			Availability:    w.Availability,
		}
	case "S9":
		return SLORecord{
			Base:             baseOf(w),
			Process:          w.ArrivalProcess,
			OfferedLoad:      w.OfferedLoad,
			P50Ms:            w.P50Ms,
			P95Ms:            w.P95Ms,
			P99Ms:            w.P99Ms,
			SimThroughputRPS: w.SimThroughputRPS,
		}
	default:
		return w
	}
}

// DecodeRecords parses a BENCH_sched.json-layout document into typed
// records — the inverse of Writer.MarshalWire, used by cmd/benchboard to
// lift archived snapshots into the history store.
func DecodeRecords(data []byte) ([]Record, error) {
	var wires []PlacementRecord
	if err := json.Unmarshal(data, &wires); err != nil {
		return nil, fmt.Errorf("bench: decode records: %w", err)
	}
	recs := make([]Record, len(wires))
	for i, w := range wires {
		recs[i] = FromWire(w)
	}
	return recs, nil
}
