// Package bus models the CoreConnect on-chip buses of the two systems: the
// 32-bit On-chip Peripheral Bus (OPB), the 64-bit Processor Local Bus (PLB)
// with burst support, and the PLB→OPB bridge. Transactions are
// transaction-level: each access computes its duration from protocol
// parameters and slave wait states, occupies the bus for that span, and
// optionally blocks the simulated CPU.
package bus

import (
	"fmt"

	"repro/internal/sim"
)

// Slave is a device attached to a bus. Addresses passed to slaves are
// bus-relative to the mapping base. Implementations perform the access
// functionally and return their wait states in bus cycles.
type Slave interface {
	Name() string
	// Read returns the value at addr of the given size in bytes (1, 2, 4,
	// or 8 on 64-bit capable slaves) and the slave wait cycles.
	Read(addr uint32, size int) (uint64, int)
	// Write stores val at addr and returns the slave wait cycles.
	Write(addr uint32, val uint64, size int) int
}

// BurstSlave is implemented by slaves that support multi-beat bursts (memory
// controllers, the PLB Dock). BurstWaits returns the wait cycles for an
// n-beat burst in addition to the per-beat cycles.
type BurstSlave interface {
	Slave
	BurstWaits(addr uint32, beats int, write bool) int
}

// Params are the protocol cycle costs of a bus.
type Params struct {
	// ArbCycles covers arbitration plus the address phase.
	ArbCycles int
	// ReadExtra is added to read transactions (data return path).
	ReadExtra int
	// WriteExtra is added to write transactions.
	WriteExtra int
	// BeatCycles is the cost of each data beat (normally 1).
	BeatCycles int
}

type mapping struct {
	base, size uint32
	slave      Slave
}

// Bus is one bus instance: a clock domain, protocol parameters, an address
// map, and an occupancy resource for contention between masters.
type Bus struct {
	name  string
	k     *sim.Kernel
	clk   *sim.Clock
	width int // bytes per beat: 4 (OPB) or 8 (PLB)
	p     Params
	maps  []mapping
	res   *sim.Resource

	reads, writes, bursts uint64
}

// New returns a bus. width is the data width in bytes (4 or 8).
func New(name string, k *sim.Kernel, clk *sim.Clock, width int, p Params) *Bus {
	if width != 4 && width != 8 {
		panic("bus: width must be 4 or 8 bytes")
	}
	if p.BeatCycles <= 0 {
		p.BeatCycles = 1
	}
	return &Bus{name: name, k: k, clk: clk, width: width, p: p, res: sim.NewResource(k, name)}
}

// Name returns the bus name.
func (b *Bus) Name() string { return b.name }

// Clock returns the bus clock domain.
func (b *Bus) Clock() *sim.Clock { return b.clk }

// Width returns the data width in bytes.
func (b *Bus) Width() int { return b.width }

// Utilization reports the bus occupancy fraction since time zero.
func (b *Bus) Utilization() float64 { return b.res.Utilization() }

// Stats reports transaction counts.
func (b *Bus) Stats() (reads, writes, bursts uint64) { return b.reads, b.writes, b.bursts }

// Map attaches a slave at [base, base+size). Overlaps are rejected.
func (b *Bus) Map(base, size uint32, s Slave) error {
	if size == 0 {
		return fmt.Errorf("bus %s: empty mapping for %s", b.name, s.Name())
	}
	for _, m := range b.maps {
		if base < m.base+m.size && m.base < base+size {
			return fmt.Errorf("bus %s: mapping for %s overlaps %s", b.name, s.Name(), m.slave.Name())
		}
	}
	b.maps = append(b.maps, mapping{base: base, size: size, slave: s})
	return nil
}

// decode finds the slave owning addr.
func (b *Bus) decode(addr uint32) (Slave, uint32, error) {
	for _, m := range b.maps {
		if addr >= m.base && addr-m.base < m.size {
			return m.slave, addr - m.base, nil
		}
	}
	return nil, 0, fmt.Errorf("bus %s: no slave at address %#08x (bus error)", b.name, addr)
}

// checkSize validates an access size against the bus width.
func (b *Bus) checkSize(size int) error {
	switch size {
	case 1, 2, 4:
		return nil
	case 8:
		if b.width >= 8 {
			return nil
		}
		return fmt.Errorf("bus %s: 64-bit access on a 32-bit bus", b.name)
	default:
		return fmt.Errorf("bus %s: unsupported access size %d", b.name, size)
	}
}

// beats returns the number of data beats for size bytes.
func (b *Bus) beats(size int) int {
	n := (size + b.width - 1) / b.width
	if n < 1 {
		n = 1
	}
	return n
}

// Read performs a blocking single read: the caller (the CPU) is stalled for
// the queueing delay plus the transaction; the kernel is advanced.
func (b *Bus) Read(addr uint32, size int) (uint64, error) {
	v, d, err := b.readTransact(addr, size)
	if err != nil {
		return 0, err
	}
	_, done := b.res.Acquire(d)
	b.k.AdvanceTo(done)
	return v, nil
}

// readTransact performs the functional read and computes the duration.
func (b *Bus) readTransact(addr uint32, size int) (uint64, sim.Time, error) {
	if err := b.checkSize(size); err != nil {
		return 0, 0, err
	}
	s, off, err := b.decode(addr)
	if err != nil {
		return 0, 0, err
	}
	v, waits := s.Read(off, size)
	cycles := b.p.ArbCycles + waits + b.p.ReadExtra + b.beats(size)*b.p.BeatCycles
	b.reads++
	return v, b.clk.Cycles(uint64(cycles)), nil
}

// Write performs a blocking single write.
func (b *Bus) Write(addr uint32, val uint64, size int) error {
	d, err := b.writeTransact(addr, val, size)
	if err != nil {
		return err
	}
	_, done := b.res.Acquire(d)
	b.k.AdvanceTo(done)
	return nil
}

// WritePosted performs the functional write immediately and occupies the bus
// in the background, returning the completion time without advancing the
// kernel. CPU write buffers and the bridge's posted writes use it.
func (b *Bus) WritePosted(addr uint32, val uint64, size int) (sim.Time, error) {
	d, err := b.writeTransact(addr, val, size)
	if err != nil {
		return 0, err
	}
	_, done := b.res.Acquire(d)
	return done, nil
}

func (b *Bus) writeTransact(addr uint32, val uint64, size int) (sim.Time, error) {
	if err := b.checkSize(size); err != nil {
		return 0, err
	}
	s, off, err := b.decode(addr)
	if err != nil {
		return 0, err
	}
	waits := s.Write(off, val, size)
	cycles := b.p.ArbCycles + waits + b.p.WriteExtra + b.beats(size)*b.p.BeatCycles
	b.writes++
	return b.clk.Cycles(uint64(cycles)), nil
}

// BurstRead performs a functional+timed burst read of beats bus-width beats
// starting at addr, in the background (no kernel advance). It returns the
// data and the completion time.
func (b *Bus) BurstRead(addr uint32, beats int) ([]uint64, sim.Time, error) {
	s, off, err := b.decode(addr)
	if err != nil {
		return nil, 0, err
	}
	bs, ok := s.(BurstSlave)
	if !ok {
		return nil, 0, fmt.Errorf("bus %s: slave %s does not support bursts", b.name, s.Name())
	}
	if err := b.checkBurst(addr, beats); err != nil {
		return nil, 0, err
	}
	data := make([]uint64, beats)
	for i := range data {
		v, _ := bs.Read(off+uint32(i*b.width), b.width)
		data[i] = v
	}
	waits := bs.BurstWaits(off, beats, false)
	cycles := b.p.ArbCycles + waits + b.p.ReadExtra + beats*b.p.BeatCycles
	_, done := b.res.Acquire(b.clk.Cycles(uint64(cycles)))
	b.bursts++
	return data, done, nil
}

// BurstWrite performs a functional+timed burst write in the background.
func (b *Bus) BurstWrite(addr uint32, data []uint64) (sim.Time, error) {
	s, off, err := b.decode(addr)
	if err != nil {
		return 0, err
	}
	bs, ok := s.(BurstSlave)
	if !ok {
		return 0, fmt.Errorf("bus %s: slave %s does not support bursts", b.name, s.Name())
	}
	if err := b.checkBurst(addr, len(data)); err != nil {
		return 0, err
	}
	for i, v := range data {
		bs.Write(off+uint32(i*b.width), v, b.width)
	}
	waits := bs.BurstWaits(off, len(data), true)
	cycles := b.p.ArbCycles + waits + b.p.WriteExtra + len(data)*b.p.BeatCycles
	_, done := b.res.Acquire(b.clk.Cycles(uint64(cycles)))
	b.bursts++
	return done, nil
}

// BurstPenalty occupies the bus for the duration of a burst without data
// movement. The cache model uses it for line fills and write-backs, whose
// data is functionally already in memory (the cache is a timing model).
func (b *Bus) BurstPenalty(addr uint32, beats int, write bool) (sim.Time, error) {
	s, off, err := b.decode(addr)
	if err != nil {
		return 0, err
	}
	waits := 0
	if bs, ok := s.(BurstSlave); ok {
		waits = bs.BurstWaits(off, beats, write)
	} else {
		// Non-burst slaves degrade to per-beat wait states.
		if write {
			waits = beats * s.Write(off, 0, b.width)
		} else {
			_, w := s.Read(off, b.width)
			waits = beats * w
		}
	}
	extra := b.p.ReadExtra
	if write {
		extra = b.p.WriteExtra
	}
	cycles := b.p.ArbCycles + waits + extra + beats*b.p.BeatCycles
	_, done := b.res.Acquire(b.clk.Cycles(uint64(cycles)))
	b.bursts++
	return done, nil
}

func (b *Bus) checkBurst(addr uint32, beats int) error {
	if beats <= 0 {
		return fmt.Errorf("bus %s: empty burst", b.name)
	}
	// The whole burst must stay within one mapping.
	if _, _, err := b.decode(addr + uint32(beats*b.width) - 1); err != nil {
		return fmt.Errorf("bus %s: burst crosses mapping boundary: %w", b.name, err)
	}
	return nil
}

// Peek reads functionally with no timing effect (debugger/test access).
func (b *Bus) Peek(addr uint32, size int) (uint64, error) {
	s, off, err := b.decode(addr)
	if err != nil {
		return 0, err
	}
	v, _ := s.Read(off, size)
	return v, nil
}

// Poke writes functionally with no timing effect.
func (b *Bus) Poke(addr uint32, val uint64, size int) error {
	s, off, err := b.decode(addr)
	if err != nil {
		return err
	}
	s.Write(off, val, size)
	return nil
}
