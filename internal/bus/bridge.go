package bus

import "repro/internal/sim"

// Bridge is the PLB→OPB bridge: a PLB slave that forwards accesses to the
// OPB as that bus's master. Reads block for the full OPB round trip plus the
// bridge's own latency; writes are posted (the PLB side completes once the
// write is accepted, while the OPB transaction drains in the background) —
// which is why removing the bridge from the data path helps reads much more
// than writes (§4.2).
type Bridge struct {
	opb *Bus
	plb *Bus
	// base is added to forwarded addresses (the bridge's PLB window maps
	// onto this OPB base).
	base uint32
	// RequestCycles is the bridge's PLB-side handshake latency.
	RequestCycles int
	// PostDepth is the posted-write queue depth.
	PostDepth int

	posted []uint64 // completion times (femtoseconds) of in-flight writes
	reads  uint64
	writes uint64
}

// NewBridge returns a bridge forwarding to opb. plb is the bus the bridge
// lives on (used only for clock conversion); base is the OPB address the
// bridge's PLB window begins at.
func NewBridge(plb, opb *Bus, base uint32, requestCycles, postDepth int) *Bridge {
	if postDepth < 1 {
		postDepth = 1
	}
	return &Bridge{opb: opb, plb: plb, base: base, RequestCycles: requestCycles, PostDepth: postDepth}
}

// Name implements Slave.
func (br *Bridge) Name() string { return "plb2opb-bridge" }

// Stats reports forwarded transaction counts.
func (br *Bridge) Stats() (reads, writes uint64) { return br.reads, br.writes }

// Read implements Slave: the PLB-side wait states cover the complete OPB
// transaction plus bridge overhead.
func (br *Bridge) Read(addr uint32, size int) (uint64, int) {
	br.reads++
	if size > 4 {
		// The bridge narrows 64-bit requests into two OPB transfers.
		lo, w1 := br.Read(addr, 4)
		hi, w2 := br.Read(addr+4, 4)
		return lo<<32 | hi, w1 + w2 // big-endian: low address is high half
	}
	// A read must first drain posted writes (ordering).
	drain := br.drainTime()
	v, d, err := br.opb.readTransact(br.base+addr, size)
	if err != nil {
		// Bus errors surface as all-ones data, as on hardware.
		return ^uint64(0), br.RequestCycles
	}
	_, done := br.opb.res.Acquire(d + drain)
	now := br.plb.k.Now()
	waitCycles := int(br.plb.clk.CyclesIn(done-now)) + 1
	return v, br.RequestCycles + waitCycles
}

// Write implements Slave with posted-write semantics.
func (br *Bridge) Write(addr uint32, val uint64, size int) int {
	br.writes++
	if size > 4 {
		w1 := br.Write(addr, val>>32, 4)
		w2 := br.Write(addr+4, val&0xFFFFFFFF, 4)
		return w1 + w2
	}
	d, err := br.opb.writeTransact(br.base+addr, val, size)
	if err != nil {
		return br.RequestCycles
	}
	_, done := br.opb.res.Acquire(d)
	br.reapPosted()
	stall := 0
	if len(br.posted) >= br.PostDepth {
		// Queue full: the PLB side stalls until the oldest write retires.
		oldest := br.posted[0]
		br.posted = br.posted[1:]
		if now := uint64(br.plb.k.Now()); oldest > now {
			stall = int(br.plb.clk.CyclesIn(sim.Time(oldest-now))) + 1
		}
	}
	br.posted = append(br.posted, uint64(done))
	return br.RequestCycles + stall
}

// drainTime returns how long from now until all posted writes retire.
func (br *Bridge) drainTime() sim.Time {
	br.reapPosted()
	if len(br.posted) == 0 {
		return 0
	}
	last := br.posted[len(br.posted)-1]
	now := uint64(br.plb.k.Now())
	if last <= now {
		return 0
	}
	return sim.Time(last - now)
}

func (br *Bridge) reapPosted() {
	now := uint64(br.plb.k.Now())
	i := 0
	for i < len(br.posted) && br.posted[i] <= now {
		i++
	}
	br.posted = br.posted[i:]
}
