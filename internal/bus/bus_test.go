package bus

import (
	"testing"

	"repro/internal/memctl"
	"repro/internal/sim"
)

func testBus(k *sim.Kernel, width int) *Bus {
	clk := sim.NewClock("bus", 50_000_000) // 20 ns cycles
	return New("test", k, clk, width, Params{ArbCycles: 2, ReadExtra: 1, WriteExtra: 0, BeatCycles: 1})
}

func TestMappingAndDecode(t *testing.T) {
	k := sim.NewKernel()
	b := testBus(k, 4)
	m := memctl.NewBRAM(1 << 16)
	if err := b.Map(0x1000_0000, 1<<16, m); err != nil {
		t.Fatal(err)
	}
	if err := b.Map(0x1000_8000, 1<<16, memctl.NewBRAM(16)); err == nil {
		t.Fatal("overlapping mapping accepted")
	}
	if err := b.Map(0x2000_0000, 0, memctl.NewBRAM(16)); err == nil {
		t.Fatal("empty mapping accepted")
	}
	if _, err := b.Read(0x3000_0000, 4); err == nil {
		t.Fatal("unmapped read did not bus-error")
	}
	if err := b.Write(0x1000_0000, 0xDEADBEEF, 4); err != nil {
		t.Fatal(err)
	}
	v, err := b.Read(0x1000_0000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Fatalf("readback = %#x", v)
	}
}

func TestAccessSizeRules(t *testing.T) {
	k := sim.NewKernel()
	b32 := testBus(k, 4)
	if err := b32.Map(0, 1<<16, memctl.NewBRAM(1<<16)); err != nil {
		t.Fatal(err)
	}
	if _, err := b32.Read(0, 8); err == nil {
		t.Fatal("64-bit read on 32-bit bus accepted")
	}
	if _, err := b32.Read(0, 3); err == nil {
		t.Fatal("3-byte access accepted")
	}
	b64 := testBus(sim.NewKernel(), 8)
	if err := b64.Map(0, 1<<16, memctl.NewBRAM(1<<16)); err != nil {
		t.Fatal(err)
	}
	if _, err := b64.Read(0, 8); err != nil {
		t.Fatalf("64-bit read on 64-bit bus rejected: %v", err)
	}
}

func TestSingleTransferTiming(t *testing.T) {
	k := sim.NewKernel()
	b := testBus(k, 4)
	mem := memctl.New("m", 1<<16, 4, 3, -1) // 4 read waits, 3 write waits
	if err := b.Map(0, 1<<16, mem); err != nil {
		t.Fatal(err)
	}
	// Read: arb 2 + waits 4 + extra 1 + 1 beat = 8 cycles = 160 ns.
	start := k.Now()
	if _, err := b.Read(0, 4); err != nil {
		t.Fatal(err)
	}
	if d := k.Now() - start; d != 160*sim.Nanosecond {
		t.Errorf("read took %v, want 160ns", d)
	}
	// Write: arb 2 + waits 3 + 1 beat = 6 cycles = 120 ns.
	start = k.Now()
	if err := b.Write(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	if d := k.Now() - start; d != 120*sim.Nanosecond {
		t.Errorf("write took %v, want 120ns", d)
	}
}

func TestContentionSerializes(t *testing.T) {
	k := sim.NewKernel()
	b := testBus(k, 4)
	mem := memctl.New("m", 1<<16, 4, 3, -1)
	if err := b.Map(0, 1<<16, mem); err != nil {
		t.Fatal(err)
	}
	// A posted write occupies the bus; a following read must queue.
	if _, err := b.WritePosted(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	start := k.Now()
	if _, err := b.Read(0, 4); err != nil {
		t.Fatal(err)
	}
	// write holds 120 ns, then the 160 ns read.
	if d := k.Now() - start; d != 280*sim.Nanosecond {
		t.Errorf("queued read took %v, want 280ns", d)
	}
}

func TestBurstTiming(t *testing.T) {
	k := sim.NewKernel()
	b := testBus(k, 8)
	ddr := memctl.New("ddr", 1<<20, 6, 2, 6)
	if err := b.Map(0, 1<<20, ddr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		ddr.PokeBE(uint32(8*i), uint64(i)<<32|uint64(i), 8)
	}
	data, done, err := b.BurstRead(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if v != uint64(i)<<32|uint64(i) {
			t.Fatalf("beat %d = %#x", i, v)
		}
	}
	// arb 2 + burst waits 6 + extra 1 + 16 beats = 25 cycles = 500 ns.
	if done != 500*sim.Nanosecond {
		t.Errorf("burst read completes at %v, want 500ns", done)
	}
	// Burst on a non-burst slave is rejected.
	sram := memctl.NewSRAM()
	b2 := testBus(sim.NewKernel(), 4)
	if err := b2.Map(0, 1<<20, sram); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b2.BurstRead(0, 4); err != nil {
		t.Fatal("SRAM degrades to per-beat waits via BurstWaits; burst read should still work through the BurstSlave interface")
	}
}

func TestBurstBoundaryChecks(t *testing.T) {
	k := sim.NewKernel()
	b := testBus(k, 8)
	if err := b.Map(0, 128, memctl.NewBRAM(128)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.BurstRead(64, 16); err == nil {
		t.Fatal("burst past mapping end accepted")
	}
	if _, _, err := b.BurstRead(0, 0); err == nil {
		t.Fatal("empty burst accepted")
	}
	if _, err := b.BurstWrite(64, make([]uint64, 16)); err == nil {
		t.Fatal("burst write past mapping end accepted")
	}
}

func TestPeekPokeHaveNoTimingEffect(t *testing.T) {
	k := sim.NewKernel()
	b := testBus(k, 4)
	if err := b.Map(0, 1<<16, memctl.NewBRAM(1<<16)); err != nil {
		t.Fatal(err)
	}
	if err := b.Poke(0x10, 0xABCD, 4); err != nil {
		t.Fatal(err)
	}
	v, err := b.Peek(0x10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xABCD {
		t.Fatalf("peek = %#x", v)
	}
	if k.Now() != 0 {
		t.Fatal("peek/poke advanced time")
	}
	if u := b.Utilization(); u != 0 {
		t.Fatalf("utilization = %f after peek/poke", u)
	}
}

func TestBridgeReadSlowerThanDirect(t *testing.T) {
	k := sim.NewKernel()
	plbClk := sim.NewClock("plb", 50_000_000)
	opbClk := sim.NewClock("opb", 50_000_000)
	plb := New("plb", k, plbClk, 8, Params{ArbCycles: 2, ReadExtra: 2, BeatCycles: 1})
	opb := New("opb", k, opbClk, 4, Params{ArbCycles: 2, ReadExtra: 1, BeatCycles: 1})
	sram := memctl.NewSRAM()
	if err := opb.Map(0, 1<<20, sram); err != nil {
		t.Fatal(err)
	}
	br := NewBridge(plb, opb, 0, 1, 1)
	if err := plb.Map(0x2000_0000, 1<<20, br); err != nil {
		t.Fatal(err)
	}
	sram.PokeBE(0x100, 0x1234, 4)

	start := k.Now()
	v, err := plb.Read(0x2000_0100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1234 {
		t.Fatalf("bridged read = %#x", v)
	}
	bridged := k.Now() - start

	// Direct OPB read of the same SRAM: arb2+waits4+extra1+beat1 = 8 cycles.
	start = k.Now()
	if _, err := opb.Read(0x100, 4); err != nil {
		t.Fatal(err)
	}
	direct := k.Now() - start
	if bridged <= direct {
		t.Errorf("bridged read (%v) not slower than direct (%v)", bridged, direct)
	}
	rd, _ := br.Stats()
	if rd != 1 {
		t.Errorf("bridge read count = %d", rd)
	}
}

func TestBridgePostedWrites(t *testing.T) {
	k := sim.NewKernel()
	plbClk := sim.NewClock("plb", 50_000_000)
	plb := New("plb", k, plbClk, 8, Params{ArbCycles: 2, ReadExtra: 2, BeatCycles: 1})
	opb := New("opb", k, plbClk, 4, Params{ArbCycles: 2, ReadExtra: 1, BeatCycles: 1})
	sram := memctl.NewSRAM()
	if err := opb.Map(0, 1<<20, sram); err != nil {
		t.Fatal(err)
	}
	br := NewBridge(plb, opb, 0, 1, 2)
	if err := plb.Map(0x2000_0000, 1<<20, br); err != nil {
		t.Fatal(err)
	}
	// First write is posted: PLB-side cost is small.
	start := k.Now()
	if err := plb.Write(0x2000_0000, 7, 4); err != nil {
		t.Fatal(err)
	}
	first := k.Now() - start
	// Saturating the post queue forces stalls: issue several back to back.
	var last sim.Time
	for i := 0; i < 6; i++ {
		start = k.Now()
		if err := plb.Write(0x2000_0000+uint32(4*i), uint64(i), 4); err != nil {
			t.Fatal(err)
		}
		last = k.Now() - start
	}
	if last <= first {
		t.Errorf("saturated posted write (%v) not slower than first (%v)", last, first)
	}
	// A read after posted writes must see them drained first (ordering).
	sram.PokeBE(0x500, 42, 4)
	v, err := plb.Read(0x2000_0500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("read-after-write = %d", v)
	}
}

func TestBridge64BitSplit(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.NewClock("c", 50_000_000)
	plb := New("plb", k, clk, 8, Params{ArbCycles: 2, ReadExtra: 2, BeatCycles: 1})
	opb := New("opb", k, clk, 4, Params{ArbCycles: 2, ReadExtra: 1, BeatCycles: 1})
	sram := memctl.NewSRAM()
	if err := opb.Map(0, 1<<20, sram); err != nil {
		t.Fatal(err)
	}
	br := NewBridge(plb, opb, 0, 1, 2)
	if err := plb.Map(0x2000_0000, 1<<20, br); err != nil {
		t.Fatal(err)
	}
	if err := plb.Write(0x2000_0000, 0x1122334455667788, 8); err != nil {
		t.Fatal(err)
	}
	v, err := plb.Read(0x2000_0000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1122334455667788 {
		t.Fatalf("64-bit bridged roundtrip = %#x", v)
	}
}
