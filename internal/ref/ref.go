// Package ref holds plain-Go reference implementations of the paper's
// application kernels: Jenkins' lookup2 hash, 8x8 binary pattern matching,
// and the three grayscale image operations. They are the functional oracles
// the costed software models (swtask) and the behavioural hardware cores
// (hwcore) are tested against.
package ref

// Lookup2 is Bob Jenkins' lookup2 hash ("Hash functions", Dr. Dobb's
// Journal, 1997 — the paper's reference [8]): a 32-bit hash of a
// variable-length key. This is a faithful port of the original C.
func Lookup2(key []byte, initval uint32) uint32 {
	a := uint32(0x9e3779b9)
	b := uint32(0x9e3779b9)
	c := initval
	i := 0
	n := len(key)
	for n-i >= 12 {
		a += le32(key[i:])
		b += le32(key[i+4:])
		c += le32(key[i+8:])
		a, b, c = mix(a, b, c)
		i += 12
	}
	c += uint32(len(key))
	rest := key[i:]
	// The original switch falls through from 11 down to 1; byte k[8] and up
	// shift into the high bytes of c (the low byte of c holds the length).
	if len(rest) > 10 {
		c += uint32(rest[10]) << 24
	}
	if len(rest) > 9 {
		c += uint32(rest[9]) << 16
	}
	if len(rest) > 8 {
		c += uint32(rest[8]) << 8
	}
	if len(rest) > 7 {
		b += uint32(rest[7]) << 24
	}
	if len(rest) > 6 {
		b += uint32(rest[6]) << 16
	}
	if len(rest) > 5 {
		b += uint32(rest[5]) << 8
	}
	if len(rest) > 4 {
		b += uint32(rest[4])
	}
	if len(rest) > 3 {
		a += uint32(rest[3]) << 24
	}
	if len(rest) > 2 {
		a += uint32(rest[2]) << 16
	}
	if len(rest) > 1 {
		a += uint32(rest[1]) << 8
	}
	if len(rest) > 0 {
		a += uint32(rest[0])
	}
	_, _, c = mix(a, b, c)
	return c
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// mix is the lookup2 mixing function (36 operations).
func mix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= b
	a -= c
	a ^= c >> 13
	b -= c
	b -= a
	b ^= a << 8
	c -= a
	c -= b
	c ^= b >> 13
	a -= b
	a -= c
	a ^= c >> 12
	b -= c
	b -= a
	b ^= a << 16
	c -= a
	c -= b
	c ^= b >> 5
	a -= b
	a -= c
	a ^= c >> 3
	b -= c
	b -= a
	b ^= a << 10
	c -= a
	c -= b
	c ^= b >> 15
	return a, b, c
}

// BinaryImage is a bilevel image stored row-major, one bit per pixel, packed
// MSB-first into 32-bit words (big-endian pixel order within a word).
type BinaryImage struct {
	W, H  int
	Words []uint32 // H * WordsPerRow entries
}

// WordsPerRow returns the packed row stride in 32-bit words.
func (im *BinaryImage) WordsPerRow() int { return (im.W + 31) / 32 }

// NewBinaryImage returns an all-zero bilevel image.
func NewBinaryImage(w, h int) *BinaryImage {
	im := &BinaryImage{W: w, H: h}
	im.Words = make([]uint32, h*im.WordsPerRow())
	return im
}

// Get returns pixel (x, y) as 0 or 1.
func (im *BinaryImage) Get(x, y int) int {
	w := im.Words[y*im.WordsPerRow()+x/32]
	return int(w >> (31 - uint(x%32)) & 1)
}

// Set sets pixel (x, y).
func (im *BinaryImage) Set(x, y, v int) {
	idx := y*im.WordsPerRow() + x/32
	bit := uint32(1) << (31 - uint(x%32))
	if v != 0 {
		im.Words[idx] |= bit
	} else {
		im.Words[idx] &^= bit
	}
}

// Pattern8 is an 8x8 bilevel pattern, one byte per row (MSB = leftmost).
type Pattern8 [8]byte

// MatchCount returns how many of the 64 pattern pixels equal the image
// pixels of the 8x8 window whose top-left corner is (x, y).
func MatchCount(im *BinaryImage, p Pattern8, x, y int) int {
	count := 0
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			pp := int(p[j] >> (7 - uint(i)) & 1)
			if im.Get(x+i, y+j) == pp {
				count++
			}
		}
	}
	return count
}

// BestMatch scans every window position and returns the position with the
// highest match count (ties resolved to the first in row-major order) and
// the number of positions with count >= threshold.
func BestMatch(im *BinaryImage, p Pattern8, threshold int) (bestX, bestY, bestCount, hits int) {
	bestCount = -1
	for y := 0; y+8 <= im.H; y++ {
		for x := 0; x+8 <= im.W; x++ {
			c := MatchCount(im, p, x, y)
			if c > bestCount {
				bestX, bestY, bestCount = x, y, c
			}
			if c >= threshold {
				hits++
			}
		}
	}
	return bestX, bestY, bestCount, hits
}

// Brightness adds delta to every 8-bit pixel with saturation.
func Brightness(dst, src []byte, delta int) {
	for i, p := range src {
		v := int(p) + delta
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		dst[i] = byte(v)
	}
}

// Blend adds the pixels of two images with saturation.
func Blend(dst, a, b []byte) {
	for i := range a {
		v := int(a[i]) + int(b[i])
		if v > 255 {
			v = 255
		}
		dst[i] = byte(v)
	}
}

// Fade combines two images as (A-B)*f/256 + B, with f in [0, 256]. f=256
// yields A, f=0 yields B (the paper's fade-in-fade-out effect, §3.2).
func Fade(dst, a, b []byte, f int) {
	for i := range a {
		dst[i] = byte(int(b[i]) + ((int(a[i])-int(b[i]))*f)>>8)
	}
}
