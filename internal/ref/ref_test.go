package ref

import (
	"testing"
	"testing/quick"
)

// Known-answer vectors computed from the original lookup2.c semantics: the
// hash of the empty key with initval 0 is mix(golden, golden, len) — checked
// structurally rather than against magic numbers, plus stability checks.
func TestLookup2Stability(t *testing.T) {
	// The function must be a pure function of (key, initval).
	k := []byte("the quick brown fox jumps over the lazy dog")
	h1 := Lookup2(k, 0)
	h2 := Lookup2(k, 0)
	if h1 != h2 {
		t.Fatal("lookup2 not deterministic")
	}
	if Lookup2(k, 1) == h1 {
		t.Fatal("initval ignored")
	}
	// Every key length 0..40 must hash distinctly from its neighbours with
	// overwhelming probability for this fixed content.
	seen := map[uint32]int{}
	buf := make([]byte, 41)
	for i := range buf {
		buf[i] = byte(i * 17)
	}
	for n := 0; n <= 40; n++ {
		h := Lookup2(buf[:n], 0)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between lengths %d and %d", prev, n)
		}
		seen[h] = n
	}
}

func TestLookup2TailBytesMatter(t *testing.T) {
	// Flipping any byte of a 23-byte key (12-byte round + 11-byte tail)
	// must change the hash: exercises every fall-through branch.
	key := make([]byte, 23)
	for i := range key {
		key[i] = byte(i + 1)
	}
	base := Lookup2(key, 99)
	for i := range key {
		mod := make([]byte, len(key))
		copy(mod, key)
		mod[i] ^= 0x80
		if Lookup2(mod, 99) == base {
			t.Errorf("byte %d does not affect hash", i)
		}
	}
}

func TestBinaryImageBits(t *testing.T) {
	im := NewBinaryImage(70, 3) // 3 words per row
	if im.WordsPerRow() != 3 {
		t.Fatalf("words per row = %d", im.WordsPerRow())
	}
	im.Set(0, 0, 1)
	im.Set(31, 0, 1)
	im.Set(32, 0, 1)
	im.Set(69, 2, 1)
	if im.Words[0] != 0x80000001 {
		t.Fatalf("word0 = %#x", im.Words[0])
	}
	if im.Words[1]>>31 != 1 {
		t.Fatal("bit 32 not MSB of word 1")
	}
	if im.Get(69, 2) != 1 || im.Get(68, 2) != 0 {
		t.Fatal("get/set mismatch")
	}
	im.Set(0, 0, 0)
	if im.Get(0, 0) != 0 {
		t.Fatal("clear failed")
	}
}

func TestMatchCountExact(t *testing.T) {
	im := NewBinaryImage(16, 16)
	var p Pattern8
	// All-zero pattern on all-zero image: every pixel matches.
	if c := MatchCount(im, p, 0, 0); c != 64 {
		t.Fatalf("count = %d, want 64", c)
	}
	// Set one image pixel inside the window: one mismatch.
	im.Set(3, 4, 1)
	if c := MatchCount(im, p, 0, 0); c != 63 {
		t.Fatalf("count = %d, want 63", c)
	}
	// Make the pattern match it again.
	p[4] |= 1 << (7 - 3)
	if c := MatchCount(im, p, 0, 0); c != 64 {
		t.Fatalf("count = %d, want 64", c)
	}
}

func TestBestMatchFindsPlantedPattern(t *testing.T) {
	im := NewBinaryImage(64, 48)
	var p Pattern8
	for j := range p {
		p[j] = byte(0xA5 ^ j)
	}
	// Plant the pattern at (20, 10).
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			im.Set(20+i, 10+j, int(p[j]>>(7-uint(i))&1))
		}
	}
	x, y, c, hits := BestMatch(im, p, 64)
	if x != 20 || y != 10 || c != 64 {
		t.Fatalf("best = (%d,%d) count %d", x, y, c)
	}
	if hits < 1 {
		t.Fatal("planted pattern not counted as hit")
	}
}

func TestImageOps(t *testing.T) {
	src := []byte{0, 1, 100, 200, 255}
	dst := make([]byte, len(src))
	Brightness(dst, src, 100)
	want := []byte{100, 101, 200, 255, 255}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("brightness[%d] = %d want %d", i, dst[i], want[i])
		}
	}
	Brightness(dst, src, -150)
	want = []byte{0, 0, 0, 50, 105}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("brightness-[%d] = %d want %d", i, dst[i], want[i])
		}
	}
	a := []byte{10, 200, 255}
	b := []byte{20, 100, 255}
	Blend(dst[:3], a, b)
	want = []byte{30, 255, 255}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("blend[%d] = %d want %d", i, dst[i], want[i])
		}
	}
	Fade(dst[:3], a, b, 256)
	for i := range a {
		if dst[i] != a[i] {
			t.Fatal("fade f=256 should return A")
		}
	}
	Fade(dst[:3], a, b, 0)
	for i := range b {
		if dst[i] != b[i] {
			t.Fatal("fade f=0 should return B")
		}
	}
}

// Property: brightness saturates into [0,255] and is monotone in delta.
func TestBrightnessProperty(t *testing.T) {
	f := func(px []byte, d int16) bool {
		delta := int(d % 512)
		dst := make([]byte, len(px))
		Brightness(dst, px, delta)
		for i, p := range px {
			v := int(p) + delta
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			if dst[i] != byte(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: fade output always lies between its two inputs.
func TestFadeBetweenProperty(t *testing.T) {
	f := func(a, b byte, f8 uint8) bool {
		fv := int(f8)
		dst := make([]byte, 1)
		Fade(dst, []byte{a}, []byte{b}, fv)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return dst[0] >= lo && dst[0] <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
