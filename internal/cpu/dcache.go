package cpu

// dcache is the D-cache timing model: set-associative tag array with LRU
// replacement and write-back, write-allocate policy. It tracks only tags —
// data lives in the simulated memories, so the cache influences time, never
// values.
type dcache struct {
	ways     int
	lineBits uint
	setBits  uint
	sets     [][]dline
	useClock uint64
}

type dline struct {
	tag     uint32
	valid   bool
	dirty   bool
	lastUse uint64
}

func newDCache(size, ways, line int) *dcache {
	if size <= 0 || ways <= 0 || line <= 0 || size%(ways*line) != 0 {
		panic("cpu: bad cache geometry")
	}
	nsets := size / (ways * line)
	lineBits := uint(0)
	for 1<<lineBits < line {
		lineBits++
	}
	setBits := uint(0)
	for 1<<setBits < nsets {
		setBits++
	}
	if 1<<lineBits != line || 1<<setBits != nsets {
		panic("cpu: cache geometry must be a power of two")
	}
	sets := make([][]dline, nsets)
	backing := make([]dline, nsets*ways)
	for i := range sets {
		sets[i], backing = backing[:ways:ways], backing[ways:]
	}
	return &dcache{ways: ways, lineBits: lineBits, setBits: setBits, sets: sets}
}

func (d *dcache) index(addr uint32) (set int, tag uint32) {
	return int(addr >> d.lineBits & (1<<d.setBits - 1)), addr >> (d.lineBits + d.setBits)
}

// access performs a lookup, allocating on miss. It returns whether the
// access hit, and on miss the address of the victim line and whether it was
// dirty (requiring write-back).
func (d *dcache) access(addr uint32, write bool) (hit bool, victimAddr uint32, victimDirty bool) {
	d.useClock++
	set, tag := d.index(addr)
	lines := d.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lastUse = d.useClock
			if write {
				lines[i].dirty = true
			}
			return true, 0, false
		}
	}
	// Miss: choose LRU victim (preferring invalid lines).
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].lastUse < lines[victim].lastUse {
			victim = i
		}
	}
	v := &lines[victim]
	victimDirty = v.valid && v.dirty
	victimAddr = d.lineAddr(v.tag, set)
	v.tag, v.valid, v.dirty, v.lastUse = tag, true, write, d.useClock
	return false, victimAddr, victimDirty
}

func (d *dcache) lineAddr(tag uint32, set int) uint32 {
	return tag<<(d.lineBits+d.setBits) | uint32(set)<<d.lineBits
}

// flushLine writes back (if dirty) and invalidates the line holding addr.
// It reports whether a write-back was needed.
func (d *dcache) flushLine(addr uint32) bool {
	set, tag := d.index(addr)
	lines := d.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			dirty := lines[i].dirty
			lines[i].valid, lines[i].dirty = false, false
			return dirty
		}
	}
	return false
}

// invalidateLine discards the line holding addr without write-back.
func (d *dcache) invalidateLine(addr uint32) {
	set, tag := d.index(addr)
	lines := d.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].valid, lines[i].dirty = false, false
			return
		}
	}
}
