// Package cpu models the embedded PowerPC 405 core at transaction level:
// software is written as Go code against a costed primitive API (ALU ops,
// branches, loads/stores), and every primitive advances simulated time
// according to the core's parameters, the data cache model, and the bus.
//
// Two properties of the real core that the paper leans on are enforced:
// load/store instructions move at most 32 bits ("the CPU does not support
// 64-bit wide data transfers at the instruction level", §4.1), and only
// cache-line refills/write-backs use the full 64-bit PLB width.
package cpu

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/sim"
)

// Params are the core's cost parameters, in CPU cycles.
type Params struct {
	Clk *sim.Clock

	OpCycles     int // simple integer ALU op
	MulCycles    int // multiply
	DivCycles    int // divide
	BranchCycles int // branch, not taken
	TakenExtra   int // extra cycles for a taken branch
	CallCycles   int // function call prologue
	RetCycles    int // function return
	LoadCycles   int // load instruction base cost (before memory)
	StoreCycles  int // store instruction base cost

	WBufDepth int // posted-write buffer depth (0 disables posting)

	IRQEntryCycles int // interrupt entry (context save, vectoring)
	IRQExitCycles  int // interrupt exit

	// Data cache geometry; CacheSize 0 disables the D-cache.
	CacheSize   int
	CacheWays   int
	CacheLine   int
	FlushCycles int // per-line dispatch cost of dcbf/dccci style ops
}

// DefaultParams returns PowerPC-405-like cost parameters at the given clock.
func DefaultParams(clk *sim.Clock) Params {
	return Params{
		Clk:            clk,
		OpCycles:       1,
		MulCycles:      4,
		DivCycles:      35,
		BranchCycles:   1,
		TakenExtra:     2,
		CallCycles:     4,
		RetCycles:      4,
		LoadCycles:     1,
		StoreCycles:    1,
		WBufDepth:      4,
		IRQEntryCycles: 40,
		IRQExitCycles:  40,
		CacheSize:      16 << 10,
		CacheWays:      2,
		CacheLine:      32,
		FlushCycles:    3,
	}
}

// RegionAttr marks an address range cacheable (the PPC405 controls
// cacheability per storage region; peripheral ranges stay guarded).
type RegionAttr struct {
	Base, Size uint32
	Cacheable  bool
}

// Stats are the core's execution statistics.
type Stats struct {
	Ops, Branches uint64
	Loads, Stores uint64
	CacheHits     uint64
	CacheMisses   uint64
	Evictions     uint64
	PostedStalls  uint64
	IRQs          uint64
}

// CPU is one embedded processor core.
type CPU struct {
	k     *sim.Kernel
	p     Params
	bus   *bus.Bus
	dc    *dcache
	attr  []RegionAttr
	guard []RegionAttr
	wbuf  []sim.Time

	stats Stats
}

// New returns a core attached to its data-side bus.
func New(k *sim.Kernel, p Params, b *bus.Bus) *CPU {
	c := &CPU{k: k, p: p, bus: b}
	if p.CacheSize > 0 {
		c.dc = newDCache(p.CacheSize, p.CacheWays, p.CacheLine)
	}
	return c
}

// Clock returns the CPU clock.
func (c *CPU) Clock() *sim.Clock { return c.p.Clk }

// Stats returns a copy of the execution statistics.
func (c *CPU) Stats() Stats { return c.stats }

// CacheEnabled reports whether the D-cache model is active.
func (c *CPU) CacheEnabled() bool { return c.dc != nil }

// MapCacheable marks [base, base+size) as cacheable.
func (c *CPU) MapCacheable(base, size uint32) {
	c.attr = append(c.attr, RegionAttr{Base: base, Size: size, Cacheable: true})
}

// MapGuarded marks [base, base+size) as guarded storage (device windows):
// stores to guarded addresses bypass the write buffer and block until the
// bus transaction completes, as on the PowerPC 405.
func (c *CPU) MapGuarded(base, size uint32) {
	c.guard = append(c.guard, RegionAttr{Base: base, Size: size})
}

func (c *CPU) guarded(addr uint32) bool {
	for _, a := range c.guard {
		if addr >= a.Base && addr-a.Base < a.Size {
			return true
		}
	}
	return false
}

func (c *CPU) cacheable(addr uint32) bool {
	if c.dc == nil {
		return false
	}
	for _, a := range c.attr {
		if addr >= a.Base && addr-a.Base < a.Size {
			return a.Cacheable
		}
	}
	return false
}

// tick advances time by n CPU cycles.
func (c *CPU) tick(n int) {
	if n > 0 {
		c.k.Advance(c.p.Clk.Cycles(uint64(n)))
	}
}

// Op executes n simple ALU operations.
func (c *CPU) Op(n int) {
	c.stats.Ops += uint64(n)
	c.tick(n * c.p.OpCycles)
}

// Mul executes one multiply.
func (c *CPU) Mul() {
	c.stats.Ops++
	c.tick(c.p.MulCycles)
}

// Div executes one divide.
func (c *CPU) Div() {
	c.stats.Ops++
	c.tick(c.p.DivCycles)
}

// Branch executes a conditional branch.
func (c *CPU) Branch(taken bool) {
	c.stats.Branches++
	n := c.p.BranchCycles
	if taken {
		n += c.p.TakenExtra
	}
	c.tick(n)
}

// Call accounts a function-call prologue.
func (c *CPU) Call() { c.tick(c.p.CallCycles) }

// Ret accounts a function return.
func (c *CPU) Ret() { c.tick(c.p.RetCycles) }

// load is the common load path. size must be 1, 2 or 4.
func (c *CPU) load(addr uint32, size int) uint32 {
	if size > 4 {
		panic("cpu: load wider than 32 bits — the PPC405 ISA has no 64-bit loads")
	}
	c.stats.Loads++
	c.tick(c.p.LoadCycles)
	if c.cacheable(addr) {
		c.dcAccess(addr, false)
		v, err := c.bus.Peek(addr, size) // data is functionally in memory
		if err != nil {
			panic(fmt.Sprintf("cpu: load %#x: %v", addr, err))
		}
		return uint32(v)
	}
	v, err := c.bus.Read(addr, size)
	if err != nil {
		panic(fmt.Sprintf("cpu: load %#x: %v", addr, err))
	}
	return uint32(v)
}

// store is the common store path. size must be 1, 2 or 4.
func (c *CPU) store(addr uint32, val uint32, size int) {
	if size > 4 {
		panic("cpu: store wider than 32 bits — the PPC405 ISA has no 64-bit stores")
	}
	c.stats.Stores++
	c.tick(c.p.StoreCycles)
	if c.cacheable(addr) {
		c.dcAccess(addr, true)
		if err := c.bus.Poke(addr, uint64(val), size); err != nil {
			panic(fmt.Sprintf("cpu: store %#x: %v", addr, err))
		}
		return
	}
	if c.p.WBufDepth > 0 && !c.guarded(addr) {
		c.postedWrite(addr, val, size)
		return
	}
	if err := c.bus.Write(addr, uint64(val), size); err != nil {
		panic(fmt.Sprintf("cpu: store %#x: %v", addr, err))
	}
}

// postedWrite sends an uncached store through the write buffer: the
// functional write and bus occupancy happen immediately, the CPU only stalls
// when the buffer is full.
func (c *CPU) postedWrite(addr uint32, val uint32, size int) {
	done, err := c.bus.WritePosted(addr, uint64(val), size)
	if err != nil {
		panic(fmt.Sprintf("cpu: store %#x: %v", addr, err))
	}
	// Reap retired entries.
	now := c.k.Now()
	i := 0
	for i < len(c.wbuf) && c.wbuf[i] <= now {
		i++
	}
	c.wbuf = c.wbuf[i:]
	if len(c.wbuf) >= c.p.WBufDepth {
		c.stats.PostedStalls++
		c.k.AdvanceTo(c.wbuf[0])
		c.wbuf = c.wbuf[1:]
	}
	c.wbuf = append(c.wbuf, done)
}

// dcAccess runs the cache timing model for a cacheable access.
func (c *CPU) dcAccess(addr uint32, write bool) {
	hit, victim, dirty := c.dc.access(addr, write)
	if hit {
		c.stats.CacheHits++
		return
	}
	c.stats.CacheMisses++
	beats := c.p.CacheLine / c.bus.Width()
	if dirty {
		c.stats.Evictions++
		done, err := c.bus.BurstPenalty(victim, beats, true)
		if err == nil {
			c.k.AdvanceTo(done)
		}
	}
	lineAddr := addr &^ uint32(c.p.CacheLine-1)
	done, err := c.bus.BurstPenalty(lineAddr, beats, false)
	if err != nil {
		panic(fmt.Sprintf("cpu: line fill %#x: %v", lineAddr, err))
	}
	c.k.AdvanceTo(done)
}

// Loads and stores of the three ISA sizes.

// LW loads a 32-bit word.
func (c *CPU) LW(addr uint32) uint32 { return c.load(addr, 4) }

// LH loads a 16-bit halfword (zero-extended).
func (c *CPU) LH(addr uint32) uint16 { return uint16(c.load(addr, 2)) }

// LB loads a byte (zero-extended).
func (c *CPU) LB(addr uint32) uint8 { return uint8(c.load(addr, 1)) }

// SW stores a 32-bit word.
func (c *CPU) SW(addr uint32, v uint32) { c.store(addr, v, 4) }

// SH stores a 16-bit halfword.
func (c *CPU) SH(addr uint32, v uint16) { c.store(addr, uint32(v), 2) }

// SB stores a byte.
func (c *CPU) SB(addr uint32, v uint8) { c.store(addr, uint32(v), 1) }

// FlushRange writes back and invalidates every cache line intersecting
// [addr, addr+size) — the dcbf loop a driver runs before DMA reads memory.
func (c *CPU) FlushRange(addr uint32, size int) {
	if c.dc == nil || size <= 0 {
		return
	}
	line := uint32(c.p.CacheLine)
	beats := c.p.CacheLine / c.bus.Width()
	for a := addr &^ (line - 1); a < addr+uint32(size); a += line {
		c.tick(c.p.FlushCycles)
		if c.dc.flushLine(a) {
			c.stats.Evictions++
			if done, err := c.bus.BurstPenalty(a, beats, true); err == nil {
				c.k.AdvanceTo(done)
			}
		}
	}
}

// InvalidateRange discards cache lines intersecting the range without
// writing them back — used on DMA target buffers before reading them.
func (c *CPU) InvalidateRange(addr uint32, size int) {
	if c.dc == nil || size <= 0 {
		return
	}
	line := uint32(c.p.CacheLine)
	for a := addr &^ (line - 1); a < addr+uint32(size); a += line {
		c.tick(c.p.FlushCycles)
		c.dc.invalidateLine(a)
	}
}

// Sync drains the write buffer and waits for the bus to go idle (msync).
func (c *CPU) Sync() {
	if len(c.wbuf) > 0 {
		last := c.wbuf[len(c.wbuf)-1]
		if last > c.k.Now() {
			c.k.AdvanceTo(last)
		}
		c.wbuf = c.wbuf[:0]
	}
	c.tick(1)
}

// WaitForIRQ idles the core until pending reports true (events continue to
// fire), then pays the interrupt entry/exit overhead — the "CPU is free
// during DMA transfers" path of §4.1.
func (c *CPU) WaitForIRQ(pending func() bool) error {
	if !pending() {
		if err := c.k.RunUntil(pending); err != nil {
			return fmt.Errorf("cpu: WaitForIRQ: %w", err)
		}
	}
	c.stats.IRQs++
	c.tick(c.p.IRQEntryCycles + c.p.IRQExitCycles)
	return nil
}

// Spin models a polling loop: repeatedly evaluates cond every pollCycles
// until it reports true.
func (c *CPU) Spin(pollCycles int, cond func() bool) error {
	for i := 0; ; i++ {
		if cond() {
			return nil
		}
		if i > 1<<22 {
			return fmt.Errorf("cpu: Spin exceeded iteration budget")
		}
		c.tick(pollCycles)
	}
}
