package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/bus"
	"repro/internal/memctl"
	"repro/internal/sim"
)

// rig builds a 64-bit PLB with a burstable memory and a CPU, cache optional.
func rig(cacheOn bool) (*sim.Kernel, *CPU, *memctl.Memory) {
	k := sim.NewKernel()
	plbClk := sim.NewClock("plb", 100_000_000)
	cpuClk := sim.NewClock("cpu", 300_000_000)
	plb := bus.New("plb", k, plbClk, 8, bus.Params{ArbCycles: 2, ReadExtra: 2, BeatCycles: 1})
	mem := memctl.New("ddr", 1<<20, 6, 2, 6)
	if err := plb.Map(0, 1<<20, mem); err != nil {
		panic(err)
	}
	p := DefaultParams(cpuClk)
	if !cacheOn {
		p.CacheSize = 0
	}
	c := New(k, p, plb)
	if cacheOn {
		c.MapCacheable(0, 1<<19) // lower half cacheable, upper half not
	}
	return k, c, mem
}

func TestOpCosts(t *testing.T) {
	k, c, _ := rig(false)
	cyc := c.Clock().Period()
	start := k.Now()
	c.Op(10)
	if d := k.Now() - start; d != 10*cyc {
		t.Errorf("10 ops took %v, want %v", d, 10*cyc)
	}
	start = k.Now()
	c.Mul()
	if d := k.Now() - start; d != 4*cyc {
		t.Errorf("mul took %v", d)
	}
	start = k.Now()
	c.Branch(true)
	if d := k.Now() - start; d != 3*cyc {
		t.Errorf("taken branch took %v, want 3 cycles", d)
	}
	start = k.Now()
	c.Branch(false)
	if d := k.Now() - start; d != 1*cyc {
		t.Errorf("untaken branch took %v, want 1 cycle", d)
	}
}

func TestNo64BitLoadStore(t *testing.T) {
	_, c, _ := rig(false)
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic — PPC405 has no 64-bit load/store", name)
			}
		}()
		fn()
	}
	assertPanics("load", func() { c.load(0, 8) })
	assertPanics("store", func() { c.store(0, 0, 8) })
}

func TestUncachedLoadTiming(t *testing.T) {
	k, c, mem := rig(false)
	mem.PokeBE(0x100, 0xCAFE, 4)
	start := k.Now()
	v := c.LW(0x100)
	if v != 0xCAFE {
		t.Fatalf("LW = %#x", v)
	}
	// bus: arb2 + waits6 + extra2 + beat1 = 11 bus cycles (10ns) = 110ns,
	// plus 1 CPU cycle LoadCycles.
	want := 110*sim.Nanosecond + c.Clock().Period()
	if d := k.Now() - start; d != want {
		t.Errorf("uncached load took %v, want %v", d, want)
	}
}

func TestCachedLoadsHitAfterMiss(t *testing.T) {
	k, c, mem := rig(true)
	mem.PokeBE(0x200, 77, 4)
	c.LW(0x200) // miss: fill
	st := c.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 0 {
		t.Fatalf("after first load: %+v", st)
	}
	start := k.Now()
	for i := 0; i < 7; i++ {
		c.LW(0x200 + uint32(4*i)) // same 32-byte line
	}
	st = c.Stats()
	if st.CacheHits != 7 {
		t.Fatalf("hits = %d, want 7", st.CacheHits)
	}
	// 7 hits cost 7 * (LoadCycles + 1 hit cycle)? Hit cost is LoadCycles only.
	want := 7 * c.Clock().Period()
	if d := k.Now() - start; d != want {
		t.Errorf("7 cached hits took %v, want %v", d, want)
	}
}

func TestCacheMissFasterAmortizedThanUncached(t *testing.T) {
	k, c, _ := rig(true)
	// Sequential cached walk over 4 KB.
	start := k.Now()
	for a := uint32(0); a < 4096; a += 4 {
		c.LW(a)
	}
	cached := k.Now() - start
	// Same walk uncached (upper half of the map).
	start = k.Now()
	for a := uint32(0x8_0000); a < 0x8_0000+4096; a += 4 {
		c.LW(a)
	}
	uncached := k.Now() - start
	if cached >= uncached {
		t.Errorf("cached walk (%v) not faster than uncached (%v)", cached, uncached)
	}
}

func TestDirtyEvictionCostsWriteback(t *testing.T) {
	_, c, _ := rig(true)
	// Dirty a line, then walk addresses mapping to the same set to force
	// eviction. Sets = 16KB/(2*32) = 256, so stride = 256*32 = 8 KB.
	c.SW(0x0, 1)
	c.LW(0x2000)
	c.LW(0x4000) // evicts the dirty line at 0x0 (LRU)
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("no eviction recorded for dirty line")
	}
}

func TestStoresFunctionallyVisible(t *testing.T) {
	_, c, mem := rig(true)
	c.SW(0x300, 0xAABBCCDD)
	if v := mem.PeekBE(0x300, 4); v != 0xAABBCCDD {
		t.Fatalf("cached store not visible in memory: %#x", v)
	}
	c.SB(0x300, 0x11)
	if v := mem.PeekBE(0x300, 4); v != 0x11BBCCDD {
		t.Fatalf("byte store wrong: %#x", v)
	}
	c.SH(0x302, 0x2233)
	if v := mem.PeekBE(0x300, 4); v != 0x11BB2233 {
		t.Fatalf("halfword store wrong: %#x", v)
	}
	if c.LB(0x301) != 0xBB || c.LH(0x302) != 0x2233 {
		t.Fatal("sub-word loads wrong")
	}
}

func TestWriteBufferPostsAndStalls(t *testing.T) {
	k, c, _ := rig(false)
	// A single uncached store should cost much less than the full bus write
	// (it is posted).
	start := k.Now()
	c.SW(0x100, 1)
	first := k.Now() - start
	busWrite := 50 * sim.Nanosecond // arb2+waits2+beat1 = 5 bus cycles
	if first >= busWrite {
		t.Errorf("posted store took %v, want < %v", first, busWrite)
	}
	// Saturate the buffer: eventually stores stall at the bus service rate.
	var last sim.Time
	for i := 0; i < 12; i++ {
		start = k.Now()
		c.SW(uint32(0x200+4*i), uint32(i))
		last = k.Now() - start
	}
	if last <= first {
		t.Errorf("saturated store (%v) not slower than first (%v)", last, first)
	}
	if c.Stats().PostedStalls == 0 {
		t.Error("no posted-write stalls recorded")
	}
}

func TestReadAfterPostedWriteOrdering(t *testing.T) {
	_, c, mem := rig(false)
	c.SW(0x400, 99)
	// The read queues behind the posted write on the bus resource, so it
	// must observe the value (functional write happens immediately anyway,
	// but timing-wise the read completes after).
	if v := c.LW(0x400); v != 99 {
		t.Fatalf("read after posted write = %d", v)
	}
	_ = mem
}

func TestFlushRange(t *testing.T) {
	k, c, _ := rig(true)
	for a := uint32(0); a < 256; a += 4 {
		c.SW(a, a)
	}
	st := c.Stats()
	if st.CacheMisses == 0 {
		t.Fatal("expected store misses with write-allocate")
	}
	start := k.Now()
	c.FlushRange(0, 256)
	flushTime := k.Now() - start
	if flushTime == 0 {
		t.Error("flush of dirty range cost no time")
	}
	// Second flush: everything clean/invalid, only dispatch cost.
	start = k.Now()
	c.FlushRange(0, 256)
	if d := k.Now() - start; d >= flushTime {
		t.Error("flush of clean range not cheaper than dirty flush")
	}
}

func TestInvalidateRange(t *testing.T) {
	_, c, mem := rig(true)
	mem.PokeBE(0x500, 1, 4)
	c.LW(0x500)
	h0 := c.Stats().CacheHits
	c.LW(0x500)
	if c.Stats().CacheHits != h0+1 {
		t.Fatal("expected hit before invalidate")
	}
	c.InvalidateRange(0x500, 4)
	m0 := c.Stats().CacheMisses
	c.LW(0x500)
	if c.Stats().CacheMisses != m0+1 {
		t.Fatal("expected miss after invalidate")
	}
}

func TestWaitForIRQ(t *testing.T) {
	k, c, _ := rig(false)
	fired := false
	k.Schedule(5*sim.Microsecond, func() { fired = true })
	if err := c.WaitForIRQ(func() bool { return fired }); err != nil {
		t.Fatal(err)
	}
	if k.Now() < 5*sim.Microsecond {
		t.Fatalf("woke too early at %v", k.Now())
	}
	if c.Stats().IRQs != 1 {
		t.Error("IRQ not counted")
	}
	// With no event pending, WaitForIRQ must fail rather than hang.
	if err := c.WaitForIRQ(func() bool { return false }); err == nil {
		t.Fatal("WaitForIRQ with empty queue should error")
	}
}

func TestSpin(t *testing.T) {
	k, c, _ := rig(false)
	n := 0
	if err := c.Spin(10, func() bool { n++; return n > 3 }); err != nil {
		t.Fatal(err)
	}
	if k.Now() == 0 {
		t.Error("spin cost no time")
	}
}

func TestSyncDrainsWriteBuffer(t *testing.T) {
	k, c, _ := rig(false)
	c.SW(0x100, 1)
	c.SW(0x104, 2)
	c.Sync()
	// After sync, the bus must be idle: a fresh read starts immediately.
	start := k.Now()
	c.LW(0x100)
	d := k.Now() - start
	want := 110*sim.Nanosecond + c.Clock().Period()
	if d != want {
		t.Errorf("read after sync took %v, want %v (no queueing)", d, want)
	}
}

// Property: LRU cache never reports more hits than accesses and the miss
// count matches distinct line/eviction behaviour for a random walk.
func TestCacheStatsSanityProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		_, c, _ := rig(true)
		for _, a := range addrs {
			c.LW(uint32(a) & 0xFFFC)
		}
		st := c.Stats()
		return st.CacheHits+st.CacheMisses == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDCacheGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry accepted")
		}
	}()
	newDCache(1000, 3, 32)
}
