package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Event is a scheduled callback. Events may be cancelled before they fire.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// At returns the time at which the event fires.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Safe to call more than once.
func (e *Event) Cancel() { e.cancelled = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the discrete-event simulation kernel. It is single-threaded by
// design: the platform's CPU driver advances time explicitly and scheduled
// events fire as the timeline passes them.
type Kernel struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	maxRun int
}

// NewKernel returns a kernel with the timeline at zero.
func NewKernel() *Kernel {
	return &Kernel{maxRun: 1 << 24}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// EventsFired reports how many events have executed so far.
func (k *Kernel) EventsFired() uint64 { return k.fired }

// Pending reports how many events are scheduled (including cancelled ones
// that have not been reaped yet).
func (k *Kernel) Pending() int { return len(k.queue) }

// Schedule arranges for fn to run delay from now. It returns the event so the
// caller may cancel it.
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	return k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute time at. Scheduling in the
// past is an error expressed by panic, since it indicates a broken model.
func (k *Kernel) ScheduleAt(at Time, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (at=%v now=%v)", at, k.now))
	}
	k.seq++
	e := &Event{at: at, seq: k.seq, fn: fn}
	heap.Push(&k.queue, e)
	return e
}

// Advance moves the timeline forward by d, firing every event that falls
// inside the advanced span (in timestamp order).
func (k *Kernel) Advance(d Time) { k.AdvanceTo(k.now + d) }

// AdvanceTo moves the timeline to absolute time t (which must not be in the
// past), firing due events in order.
func (k *Kernel) AdvanceTo(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: AdvanceTo into the past (t=%v now=%v)", t, k.now))
	}
	for len(k.queue) > 0 && k.queue[0].at <= t {
		e := heap.Pop(&k.queue).(*Event)
		if e.cancelled {
			continue
		}
		k.now = e.at
		k.fired++
		e.fn()
	}
	k.now = t
}

// ErrNoEvents is returned by Step and RunUntil when the queue drains before
// the goal is met.
var ErrNoEvents = errors.New("sim: no pending events")

// Step pops and fires the next pending event, moving time to it.
func (k *Kernel) Step() error {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.cancelled {
			continue
		}
		k.now = e.at
		k.fired++
		e.fn()
		return nil
	}
	return ErrNoEvents
}

// RunUntil steps events until pred reports true. It fails if the event queue
// drains or the step budget is exhausted first (a guard against models that
// reschedule forever).
func (k *Kernel) RunUntil(pred func() bool) error {
	for steps := 0; !pred(); steps++ {
		if steps > k.maxRun {
			return fmt.Errorf("sim: RunUntil exceeded %d steps", k.maxRun)
		}
		if err := k.Step(); err != nil {
			return fmt.Errorf("sim: RunUntil: %w", err)
		}
	}
	return nil
}
