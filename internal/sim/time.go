// Package sim provides the discrete-event simulation substrate used by the
// whole platform model: a femtosecond-resolution timeline, named clock
// domains, an event kernel, and shared-resource occupancy accounting.
//
// The simulator is transaction-level: components compute the duration of each
// transaction from protocol parameters and advance the kernel, instead of
// toggling signals cycle by cycle. Background engines (DMA, ICAP) schedule
// completion events on the kernel.
package sim

import "fmt"

// Time is a point on (or a span of) the simulated timeline, in femtoseconds.
// Femtosecond resolution keeps rounding error negligible for non-integer
// clock periods (e.g. 300 MHz) while still covering hours of simulated time
// in a uint64.
type Time uint64

// Common durations.
const (
	Femtosecond Time = 1
	Picosecond  Time = 1000 * Femtosecond
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders t with an automatically chosen unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3f s", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3f ms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3f us", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3f ns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%d fs", uint64(t))
	}
}

// Clock is a named clock domain with a fixed frequency.
type Clock struct {
	name   string
	hz     uint64
	period Time
}

// NewClock returns a clock domain running at hz hertz.
func NewClock(name string, hz uint64) *Clock {
	if hz == 0 {
		panic("sim: zero-frequency clock " + name)
	}
	return &Clock{name: name, hz: hz, period: Time(uint64(Second) / hz)}
}

// Name returns the clock domain name.
func (c *Clock) Name() string { return c.name }

// Hz returns the clock frequency in hertz.
func (c *Clock) Hz() uint64 { return c.hz }

// Period returns the duration of a single cycle.
func (c *Clock) Period() Time { return c.period }

// Cycles returns the duration of n cycles.
func (c *Clock) Cycles(n uint64) Time { return Time(n) * c.period }

// CyclesIn reports how many full cycles fit in d.
func (c *Clock) CyclesIn(d Time) uint64 { return uint64(d / c.period) }

func (c *Clock) String() string {
	return fmt.Sprintf("%s@%dMHz", c.name, c.hz/1_000_000)
}
