package sim

import (
	"testing"
	"testing/quick"
)

func TestClockPeriods(t *testing.T) {
	cases := []struct {
		hz     uint64
		period Time
	}{
		{50_000_000, 20 * Nanosecond},
		{100_000_000, 10 * Nanosecond},
		{200_000_000, 5 * Nanosecond},
		{300_000_000, Time(3_333_333)}, // femtoseconds, truncated
	}
	for _, c := range cases {
		clk := NewClock("clk", c.hz)
		if clk.Period() != c.period {
			t.Errorf("hz=%d: period=%v want %v", c.hz, clk.Period(), c.period)
		}
		if got := clk.Cycles(10); got != 10*c.period {
			t.Errorf("hz=%d: Cycles(10)=%v want %v", c.hz, got, 10*c.period)
		}
	}
}

func TestClockCyclesIn(t *testing.T) {
	clk := NewClock("bus", 50_000_000)
	if n := clk.CyclesIn(100 * Nanosecond); n != 5 {
		t.Errorf("CyclesIn(100ns)=%d want 5", n)
	}
	if n := clk.CyclesIn(19 * Nanosecond); n != 0 {
		t.Errorf("CyclesIn(19ns)=%d want 0", n)
	}
}

func TestZeroFrequencyClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-frequency clock")
		}
	}()
	NewClock("bad", 0)
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t Time
		s string
	}{
		{500 * Femtosecond, "500 fs"},
		{2 * Nanosecond, "2.000 ns"},
		{1500 * Nanosecond, "1.500 us"},
		{2500 * Microsecond, "2.500 ms"},
		{3 * Second, "3.000 s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.s {
			t.Errorf("String(%d)=%q want %q", uint64(c.t), got, c.s)
		}
	}
}

func TestKernelEventOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(30*Nanosecond, func() { order = append(order, 3) })
	k.Schedule(10*Nanosecond, func() { order = append(order, 1) })
	k.Schedule(20*Nanosecond, func() { order = append(order, 2) })
	k.Advance(25 * Nanosecond)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order after 25ns = %v, want [1 2]", order)
	}
	if k.Now() != 25*Nanosecond {
		t.Fatalf("now = %v, want 25ns", k.Now())
	}
	k.Advance(10 * Nanosecond)
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("order after 35ns = %v, want [1 2 3]", order)
	}
}

func TestKernelSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(10*Nanosecond, func() { order = append(order, i) })
	}
	k.Advance(10 * Nanosecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of order: %v", order)
		}
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.Schedule(10*Nanosecond, func() { fired = true })
	e.Cancel()
	k.Advance(20 * Nanosecond)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestKernelEventSchedulesEvent(t *testing.T) {
	k := NewKernel()
	var hits []Time
	k.Schedule(10*Nanosecond, func() {
		hits = append(hits, k.Now())
		k.Schedule(5*Nanosecond, func() { hits = append(hits, k.Now()) })
	})
	k.Advance(100 * Nanosecond)
	if len(hits) != 2 || hits[0] != 10*Nanosecond || hits[1] != 15*Nanosecond {
		t.Fatalf("hits = %v", hits)
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Advance(100 * Nanosecond)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	k.ScheduleAt(50*Nanosecond, func() {})
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	done := false
	k.Schedule(10*Nanosecond, func() {})
	k.Schedule(20*Nanosecond, func() { done = true })
	if err := k.RunUntil(func() bool { return done }); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 20*Nanosecond {
		t.Fatalf("now=%v want 20ns", k.Now())
	}
	if err := k.RunUntil(func() bool { return false }); err == nil {
		t.Fatal("expected error when queue drains")
	}
}

func TestResourceSerialization(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bus")
	wait, done := r.Acquire(100 * Nanosecond)
	if wait != 0 || done != 100*Nanosecond {
		t.Fatalf("first acquire: wait=%v done=%v", wait, done)
	}
	// Second transaction issued at t=0 must queue behind the first.
	wait, done = r.Acquire(50 * Nanosecond)
	if wait != 100*Nanosecond || done != 150*Nanosecond {
		t.Fatalf("second acquire: wait=%v done=%v", wait, done)
	}
	k.Advance(500 * Nanosecond)
	wait, done = r.Acquire(10 * Nanosecond)
	if wait != 0 || done != 510*Nanosecond {
		t.Fatalf("idle acquire: wait=%v done=%v", wait, done)
	}
	busy, grants, waited := r.Stats()
	if busy != 160*Nanosecond || grants != 3 || waited != 100*Nanosecond {
		t.Fatalf("stats: busy=%v grants=%d waited=%v", busy, grants, waited)
	}
}

func TestResourceUtilization(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bus")
	if r.Utilization() != 0 {
		t.Fatal("utilization before time passes should be 0")
	}
	r.Acquire(50 * Nanosecond)
	k.Advance(100 * Nanosecond)
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %f, want ~0.5", u)
	}
}

// Property: advancing in arbitrary chunks fires every scheduled event exactly
// once and in timestamp order.
func TestKernelAdvanceChunksProperty(t *testing.T) {
	f := func(delays []uint16, chunks []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		k := NewKernel()
		var fired []Time
		var max Time
		for _, d := range delays {
			at := Time(d) * Nanosecond
			if at > max {
				max = at
			}
			k.ScheduleAt(at, func() { fired = append(fired, k.Now()) })
		}
		for _, c := range chunks {
			k.Advance(Time(c) * Nanosecond)
		}
		if end := max + Nanosecond; end > k.Now() {
			k.AdvanceTo(end)
		}
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
