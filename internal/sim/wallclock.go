package sim

import "sync/atomic"

// WallClock is a monotonic simulated wall clock shared across member
// timelines. Each member's Kernel owns a private timeline that only moves
// while that member executes; the wall clock stitches those independent
// timelines into one pool-wide "now" for open-loop driving: every
// completion advances it to the completing request's simulated finish
// time, and it never moves backwards. All methods are lock-free and safe
// for concurrent use from any goroutine.
type WallClock struct{ t atomic.Uint64 }

// Now returns the current pool-wide simulated time.
func (c *WallClock) Now() Time { return Time(c.t.Load()) }

// Advance moves the clock forward to at least `to` and returns the clock's
// resulting value. A stale advance (to earlier than the clock) is a no-op
// — concurrent completions land in any order, the clock keeps the maximum.
func (c *WallClock) Advance(to Time) Time {
	for {
		cur := c.t.Load()
		if uint64(to) <= cur {
			return Time(cur)
		}
		if c.t.CompareAndSwap(cur, uint64(to)) {
			return to
		}
	}
}
