package sim

// Resource models a shared, serially-occupied resource such as a bus. A
// transaction acquires the resource for a hold time; if the resource is busy,
// the transaction queues behind the current occupant. Occupancy statistics
// feed the utilization reports.
type Resource struct {
	k         *Kernel
	name      string
	busyUntil Time
	busyTotal Time
	grants    uint64
	waited    Time
}

// NewResource returns a resource bound to kernel k.
func NewResource(k *Kernel, name string) *Resource {
	return &Resource{k: k, name: name}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Acquire reserves the resource for hold starting at the earliest moment it
// is free, and returns (wait, done): how long the caller must wait before the
// transaction starts, and the absolute completion time. The caller decides
// whether to block the simulated CPU on the completion (synchronous
// transaction) or to schedule follow-up work at done (background engine).
func (r *Resource) Acquire(hold Time) (wait Time, done Time) {
	now := r.k.Now()
	start := now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	wait = start - now
	done = start + hold
	r.busyUntil = done
	r.busyTotal += hold
	r.grants++
	r.waited += wait
	return wait, done
}

// FreeAt reports when the resource next becomes free.
func (r *Resource) FreeAt() Time {
	if r.busyUntil < r.k.Now() {
		return r.k.Now()
	}
	return r.busyUntil
}

// Stats reports cumulative occupancy, grant count, and queuing delay.
func (r *Resource) Stats() (busy Time, grants uint64, waited Time) {
	return r.busyTotal, r.grants, r.waited
}

// Utilization reports the fraction of elapsed simulated time the resource was
// occupied. It returns 0 before any time has elapsed.
func (r *Resource) Utilization() float64 {
	if r.k.Now() == 0 {
		return 0
	}
	return float64(r.busyTotal) / float64(r.k.Now())
}
