package fabric

import "fmt"

// Region is a rectangular reconfigurable region of the CLB array, the
// paper's "dynamic area". Because configuration frames span the full device
// height, a region that does not cover all rows shares its frames with the
// static design above and below — the central implementation issue of §2.2.
type Region struct {
	Name string
	Col0 int // leftmost CLB column
	Row0 int // bottom CLB row of the band
	W    int // width in CLB columns
	H    int // height in CLB rows
	// BRAMBudget is the number of block RAMs the floorplan reserves for the
	// region. It must not exceed the blocks of the enclosed BRAM columns
	// that intersect the row band.
	BRAMBudget int
}

// CLBs returns the number of CLBs in the region.
func (r Region) CLBs() int { return r.W * r.H }

// Slices returns the number of slices in the region.
func (r Region) Slices() int { return 4 * r.CLBs() }

// LUTs returns the number of 4-input LUTs in the region.
func (r Region) LUTs() int { return 2 * r.Slices() }

// FFs returns the number of flip-flops in the region.
func (r Region) FFs() int { return 2 * r.Slices() }

// ContainsCol reports whether CLB column c is inside the region.
func (r Region) ContainsCol(c int) bool { return c >= r.Col0 && c < r.Col0+r.W }

// ContainsSite reports whether the CLB site (row, col) is inside the region.
func (r Region) ContainsSite(row, col int) bool {
	return row >= r.Row0 && row < r.Row0+r.H && r.ContainsCol(col)
}

func (r Region) String() string {
	return fmt.Sprintf("%s: cols[%d,%d) rows[%d,%d) (%d CLBs, %d BRAMs)",
		r.Name, r.Col0, r.Col0+r.W, r.Row0, r.Row0+r.H, r.CLBs(), r.BRAMBudget)
}

// BRAMColumns returns the indices (in the device's BRAM column numbering) of
// the BRAM columns enclosed by the region.
func (d *Device) BRAMColumns(r Region) []int {
	var cols []int
	for i, p := range d.BRAMColPos {
		// A BRAM column between CLB columns p and p+1 is enclosed when both
		// neighbours are inside the region.
		if r.ContainsCol(p) && r.ContainsCol(p+1) {
			cols = append(cols, i)
		}
	}
	return cols
}

// bramBlockSpan returns the half-open row interval of block k in a BRAM
// column holding n blocks over the device height.
func (d *Device) bramBlockSpan(k int) (lo, hi int) {
	n := d.BRAMsPerCol
	return k * d.Rows / n, (k + 1) * d.Rows / n
}

// BRAMsIntersecting returns how many block RAMs of the enclosed columns
// intersect the region's row band — the upper bound for Region.BRAMBudget.
func (d *Device) BRAMsIntersecting(r Region) int {
	cols := len(d.BRAMColumns(r))
	perCol := 0
	for k := 0; k < d.BRAMsPerCol; k++ {
		lo, hi := d.bramBlockSpan(k)
		if hi > r.Row0 && lo < r.Row0+r.H {
			perCol++
		}
	}
	return cols * perCol
}

// BRAMsContained returns how many block RAMs fall entirely inside the row
// band (and can therefore be reconfigured without touching static BRAMs).
func (d *Device) BRAMsContained(r Region) int {
	cols := len(d.BRAMColumns(r))
	perCol := 0
	for k := 0; k < d.BRAMsPerCol; k++ {
		lo, hi := d.bramBlockSpan(k)
		if lo >= r.Row0 && hi <= r.Row0+r.H {
			perCol++
		}
	}
	return cols * perCol
}

// ValidateRegion checks that the region fits the device, does not overlap a
// hard block, and does not over-commit BRAM.
func (d *Device) ValidateRegion(r Region) error {
	if r.W <= 0 || r.H <= 0 {
		return fmt.Errorf("fabric: region %s has non-positive extent", r.Name)
	}
	if r.Col0 < 0 || r.Row0 < 0 || r.Col0+r.W > d.Cols || r.Row0+r.H > d.Rows {
		return fmt.Errorf("fabric: region %s exceeds device %s bounds", r.Name, d.Name)
	}
	for _, hb := range d.HardBlocks {
		if r.Col0 < hb.Col0+hb.W && hb.Col0 < r.Col0+r.W &&
			r.Row0 < hb.Row0+hb.H && hb.Row0 < r.Row0+r.H {
			return fmt.Errorf("fabric: region %s overlaps hard block %s", r.Name, hb.Name)
		}
	}
	if max := d.BRAMsIntersecting(r); r.BRAMBudget > max {
		return fmt.Errorf("fabric: region %s reserves %d BRAMs, only %d available", r.Name, r.BRAMBudget, max)
	}
	return nil
}

// FullHeight reports whether the region spans every row of the device.
// Full-height regions isolate the two sides of the device from each other,
// which is why practical dynamic areas avoid them (§2.2).
func (d *Device) FullHeight(r Region) bool { return r.Row0 == 0 && r.H == d.Rows }
