package fabric

import "fmt"

// FAR is a frame address: block type, major address (column) and minor
// address (frame within the column), mirroring the Virtex-II frame address
// register.
type FAR struct {
	Block BlockType
	Major int
	Minor int
}

// Word packs the address into the 32-bit register layout used by the
// bitstream format: block[31:28] major[27:14] minor[13:0].
func (f FAR) Word() uint32 {
	return uint32(f.Block)<<28 | uint32(f.Major&0x3FFF)<<14 | uint32(f.Minor&0x3FFF)
}

// ParseFAR unpacks a frame address register word.
func ParseFAR(w uint32) FAR {
	return FAR{
		Block: BlockType(w >> 28),
		Major: int(w >> 14 & 0x3FFF),
		Minor: int(w & 0x3FFF),
	}
}

func (f FAR) String() string {
	return fmt.Sprintf("%s[%d].%d", f.Block, f.Major, f.Minor)
}

// FrameIndex maps a frame address to the device's linear frame numbering
// (CLB columns first, then BRAM columns).
func (d *Device) FrameIndex(f FAR) (int, error) {
	switch f.Block {
	case BlockCLB:
		if f.Major < 0 || f.Major >= d.Cols || f.Minor < 0 || f.Minor >= FramesPerCLBColumn {
			return 0, fmt.Errorf("fabric: %s: frame address %v out of range", d.Name, f)
		}
		return f.Major*FramesPerCLBColumn + f.Minor, nil
	case BlockBRAM:
		if f.Major < 0 || f.Major >= len(d.BRAMColPos) || f.Minor < 0 || f.Minor >= FramesPerBRAMColumn {
			return 0, fmt.Errorf("fabric: %s: frame address %v out of range", d.Name, f)
		}
		return d.Cols*FramesPerCLBColumn + f.Major*FramesPerBRAMColumn + f.Minor, nil
	default:
		return 0, fmt.Errorf("fabric: %s: unknown block type in %v", d.Name, f)
	}
}

// FARAt is the inverse of FrameIndex.
func (d *Device) FARAt(index int) (FAR, error) {
	clbFrames := d.Cols * FramesPerCLBColumn
	if index < 0 || index >= d.NumFrames() {
		return FAR{}, fmt.Errorf("fabric: %s: frame index %d out of range", d.Name, index)
	}
	if index < clbFrames {
		return FAR{Block: BlockCLB, Major: index / FramesPerCLBColumn, Minor: index % FramesPerCLBColumn}, nil
	}
	index -= clbFrames
	return FAR{Block: BlockBRAM, Major: index / FramesPerBRAMColumn, Minor: index % FramesPerBRAMColumn}, nil
}

// NextFAR returns the frame address following f in linear order, supporting
// the auto-increment behaviour of consecutive FDRI frame writes. ok is false
// when f is the last frame of the device.
func (d *Device) NextFAR(f FAR) (next FAR, ok bool) {
	i, err := d.FrameIndex(f)
	if err != nil {
		return FAR{}, false
	}
	if i+1 >= d.NumFrames() {
		return FAR{}, false
	}
	n, err := d.FARAt(i + 1)
	if err != nil {
		return FAR{}, false
	}
	return n, true
}
