package fabric

// XC2VP7 returns the device used by the 32-bit system: a Virtex-II Pro with
// one PowerPC 405 block, 4928 slices and 44 block RAMs (speed grade -6).
//
// Geometry: a 40x34 CLB site grid with one 16x8 hard block displacing 128
// sites leaves 1232 CLBs = 4928 slices. Four BRAM columns of 11 blocks sit
// near the device edges, as on the real part.
func XC2VP7() *Device {
	return &Device{
		Name:        "XC2VP7",
		Rows:        40,
		Cols:        34,
		BRAMColPos:  []int{1, 3, 30, 32},
		BRAMsPerCol: 11,
		HardBlocks: []HardBlock{
			{Name: "PPC405_0", Row0: 24, Col0: 26, H: 16, W: 8},
		},
		SpeedGrade: 6,
	}
}

// XC2VP30 returns the device used by the 64-bit system: a Virtex-II Pro with
// two PowerPC 405 blocks, 13696 slices and 136 block RAMs (speed grade -7).
//
// Geometry: an 80x46 site grid with two 16x8 hard blocks (256 sites) leaves
// 3424 CLBs = 13696 slices. Eight BRAM columns of 17 blocks each.
func XC2VP30() *Device {
	return &Device{
		Name:        "XC2VP30",
		Rows:        80,
		Cols:        46,
		BRAMColPos:  []int{2, 5, 14, 19, 26, 31, 40, 43},
		BRAMsPerCol: 17,
		HardBlocks: []HardBlock{
			{Name: "PPC405_0", Row0: 8, Col0: 38, H: 16, W: 8},
			{Name: "PPC405_1", Row0: 48, Col0: 38, H: 16, W: 8},
		},
		SpeedGrade: 7,
	}
}

// DynamicRegion32 is the dynamic area of the 32-bit system: 28x11 = 308 CLBs
// (25% of the device's slices) and 6 block RAMs, as reported in §3.1.
func DynamicRegion32() Region {
	return Region{Name: "dynamic32", Col0: 0, Row0: 7, W: 28, H: 11, BRAMBudget: 6}
}

// DynamicRegion64 is the dynamic area of the 64-bit system: 32x24 = 768 CLBs
// = 3072 slices (22.4% of the device) and 22 block RAMs, as reported in §4.1.
func DynamicRegion64() Region {
	return Region{Name: "dynamic64", Col0: 5, Row0: 14, W: 32, H: 24, BRAMBudget: 22}
}

// DynamicRegion64B is the second dynamic area the paper's §4.1 suggests as
// future work: "the use of the remaining free slices is made more difficult
// by the presence of the second CPU core and alternative approaches (like
// having two separate dynamic areas) may be necessary to put them to use".
// It occupies the 8x24 CLB strip between the two PPC405 blocks on the right
// side of the XC2VP30.
func DynamicRegion64B() Region {
	return Region{Name: "dynamic64b", Col0: 38, Row0: 24, W: 8, H: 24, BRAMBudget: 8}
}
