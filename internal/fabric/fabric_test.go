package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPublishedCapacities(t *testing.T) {
	v7 := XC2VP7()
	if err := v7.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := v7.SliceCount(); got != 4928 {
		t.Errorf("XC2VP7 slices = %d, want 4928 (paper §3.1)", got)
	}
	if got := v7.BRAMCount(); got != 44 {
		t.Errorf("XC2VP7 BRAMs = %d, want 44 (paper §3.1)", got)
	}
	v30 := XC2VP30()
	if err := v30.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := v30.SliceCount(); got != 13696 {
		t.Errorf("XC2VP30 slices = %d, want 13696 (paper §4.1)", got)
	}
	if got := v30.BRAMCount(); got != 136 {
		t.Errorf("XC2VP30 BRAMs = %d, want 136 (paper §4.1)", got)
	}
	// "about 2.7 times more slices than the previously used device"
	ratio := float64(v30.SliceCount()) / float64(v7.SliceCount())
	if ratio < 2.6 || ratio > 2.9 {
		t.Errorf("slice ratio = %.2f, want ~2.7", ratio)
	}
}

func TestDynamicRegions(t *testing.T) {
	v7, r32 := XC2VP7(), DynamicRegion32()
	if err := v7.ValidateRegion(r32); err != nil {
		t.Fatal(err)
	}
	if got := r32.CLBs(); got != 308 {
		t.Errorf("dynamic32 CLBs = %d, want 308 = 28x11", got)
	}
	// "the dynamic area contains 25% of the total number of slices"
	if pct := 100 * float64(r32.Slices()) / float64(v7.SliceCount()); pct != 25.0 {
		t.Errorf("dynamic32 slice share = %.2f%%, want 25%%", pct)
	}
	if r32.BRAMBudget != 6 {
		t.Errorf("dynamic32 BRAMs = %d, want 6", r32.BRAMBudget)
	}
	if got := v7.BRAMsContained(r32); got != 6 {
		t.Errorf("dynamic32 fully-contained BRAMs = %d, want 6", got)
	}

	v30, r64 := XC2VP30(), DynamicRegion64()
	if err := v30.ValidateRegion(r64); err != nil {
		t.Fatal(err)
	}
	if got := r64.CLBs(); got != 768 {
		t.Errorf("dynamic64 CLBs = %d, want 768 = 32x24", got)
	}
	if got := r64.Slices(); got != 3072 {
		t.Errorf("dynamic64 slices = %d, want 3072", got)
	}
	// "3072 slices (22.4% of the total)"
	pct := 100 * float64(r64.Slices()) / float64(v30.SliceCount())
	if pct < 22.3 || pct > 22.5 {
		t.Errorf("dynamic64 slice share = %.2f%%, want ~22.4%%", pct)
	}
	if r64.BRAMBudget != 22 {
		t.Errorf("dynamic64 BRAMs = %d, want 22", r64.BRAMBudget)
	}
	if max := v30.BRAMsIntersecting(r64); max < 22 {
		t.Errorf("dynamic64 intersecting BRAMs = %d, must cover budget 22", max)
	}
	// Neither region spans the full height: the paper explains a full-height
	// dynamic area would isolate the two sides of the device.
	if v7.FullHeight(r32) || v30.FullHeight(r64) {
		t.Error("dynamic regions must not span the full device height")
	}
}

func TestRegionValidation(t *testing.T) {
	d := XC2VP7()
	cases := []struct {
		name string
		r    Region
	}{
		{"out of bounds", Region{Name: "r", Col0: 30, Row0: 0, W: 10, H: 10}},
		{"overlaps hard block", Region{Name: "r", Col0: 25, Row0: 25, W: 5, H: 5}},
		{"negative extent", Region{Name: "r", Col0: 0, Row0: 0, W: -1, H: 5}},
		{"BRAM overcommit", Region{Name: "r", Col0: 0, Row0: 7, W: 28, H: 11, BRAMBudget: 100}},
	}
	for _, c := range cases {
		if err := d.ValidateRegion(c.r); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestFARRoundTrip(t *testing.T) {
	f := func(block bool, major, minor uint16) bool {
		far := FAR{Block: BlockCLB, Major: int(major & 0x3FFF), Minor: int(minor & 0x3FFF)}
		if block {
			far.Block = BlockBRAM
		}
		return ParseFAR(far.Word()) == far
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameIndexRoundTrip(t *testing.T) {
	for _, d := range []*Device{XC2VP7(), XC2VP30()} {
		seen := make(map[int]bool)
		for i := 0; i < d.NumFrames(); i++ {
			far, err := d.FARAt(i)
			if err != nil {
				t.Fatalf("%s: FARAt(%d): %v", d.Name, i, err)
			}
			j, err := d.FrameIndex(far)
			if err != nil {
				t.Fatalf("%s: FrameIndex(%v): %v", d.Name, far, err)
			}
			if j != i {
				t.Fatalf("%s: roundtrip %d -> %v -> %d", d.Name, i, far, j)
			}
			if seen[j] {
				t.Fatalf("%s: duplicate index %d", d.Name, j)
			}
			seen[j] = true
		}
	}
}

func TestNextFAR(t *testing.T) {
	d := XC2VP7()
	far, _ := d.FARAt(0)
	count := 1
	for {
		next, ok := d.NextFAR(far)
		if !ok {
			break
		}
		far = next
		count++
	}
	if count != d.NumFrames() {
		t.Fatalf("walked %d frames, want %d", count, d.NumFrames())
	}
}

func TestFrameIndexErrors(t *testing.T) {
	d := XC2VP7()
	bad := []FAR{
		{Block: BlockCLB, Major: d.Cols, Minor: 0},
		{Block: BlockCLB, Major: 0, Minor: FramesPerCLBColumn},
		{Block: BlockBRAM, Major: len(d.BRAMColPos), Minor: 0},
		{Block: BlockBRAM, Major: 0, Minor: FramesPerBRAMColumn},
		{Block: BlockType(7), Major: 0, Minor: 0},
	}
	for _, f := range bad {
		if _, err := d.FrameIndex(f); err == nil {
			t.Errorf("FrameIndex(%v): expected error", f)
		}
	}
	if _, err := d.FARAt(-1); err == nil {
		t.Error("FARAt(-1): expected error")
	}
	if _, err := d.FARAt(d.NumFrames()); err == nil {
		t.Error("FARAt(NumFrames): expected error")
	}
}

func TestConfigMemoryWriteRead(t *testing.T) {
	d := XC2VP7()
	cm := NewConfigMemory(d)
	far := FAR{Block: BlockCLB, Major: 5, Minor: 3}
	data := make([]uint32, d.FrameLen())
	for i := range data {
		data[i] = uint32(i * 7)
	}
	if err := cm.WriteFrame(far, data); err != nil {
		t.Fatal(err)
	}
	got, err := cm.ReadFrame(far)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("word %d: got %#x want %#x", i, got[i], data[i])
		}
	}
	// Wrong length rejected.
	if err := cm.WriteFrame(far, data[:10]); err == nil {
		t.Fatal("short frame write accepted")
	}
	// Readback is a copy: mutating it must not affect the memory.
	got[0] ^= 0xFFFFFFFF
	again, _ := cm.ReadFrame(far)
	if again[0] != data[0] {
		t.Fatal("ReadFrame returned a live reference")
	}
}

func TestRegionHashTracksRegionOnly(t *testing.T) {
	d := XC2VP7()
	r := DynamicRegion32()
	cm := NewConfigMemory(d)
	h0 := cm.RegionHash(r)
	s0 := cm.StaticHash(r)

	// Writing a frame word inside the region band changes the region hash
	// but not the static hash.
	far := FAR{Block: BlockCLB, Major: r.Col0 + 2, Minor: 1}
	frame := make([]uint32, d.FrameLen())
	lo, _ := d.RowWordRange(r.Row0, r.H)
	frame[lo] = 0xDEAD
	if err := cm.WriteFrame(far, frame); err != nil {
		t.Fatal(err)
	}
	if cm.RegionHash(r) == h0 {
		t.Error("region hash unchanged after in-region write")
	}
	if cm.StaticHash(r) != s0 {
		t.Error("static hash changed by in-region write")
	}

	// Writing above the band (same column) changes the static hash but
	// restores the region hash if the band words are zeroed again.
	frame2 := make([]uint32, d.FrameLen())
	_, hi := d.RowWordRange(r.Row0, r.H)
	frame2[hi] = 0xBEEF // first word above the band
	if err := cm.WriteFrame(far, frame2); err != nil {
		t.Fatal(err)
	}
	if cm.RegionHash(r) != h0 {
		t.Error("region hash affected by out-of-band write")
	}
	if cm.StaticHash(r) == s0 {
		t.Error("static hash unchanged after out-of-band write")
	}
}

func TestRegionHashCoversBRAMColumns(t *testing.T) {
	d := XC2VP7()
	r := DynamicRegion32()
	cm := NewConfigMemory(d)
	h0 := cm.RegionHash(r)
	bcols := d.BRAMColumns(r)
	if len(bcols) == 0 {
		t.Fatal("dynamic32 must enclose BRAM columns")
	}
	frame := make([]uint32, d.FrameLen())
	lo, _ := d.RowWordRange(r.Row0, r.H)
	frame[lo] = 1
	if err := cm.WriteFrame(FAR{Block: BlockBRAM, Major: bcols[0], Minor: 0}, frame); err != nil {
		t.Fatal(err)
	}
	if cm.RegionHash(r) == h0 {
		t.Error("region hash ignores enclosed BRAM column contents")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := XC2VP7()
	cm := NewConfigMemory(d)
	far := FAR{Block: BlockCLB, Major: 0, Minor: 0}
	frame := make([]uint32, d.FrameLen())
	frame[5] = 42
	if err := cm.WriteFrame(far, frame); err != nil {
		t.Fatal(err)
	}
	snap := cm.Clone()
	frame[5] = 99
	if err := cm.WriteFrame(far, frame); err != nil {
		t.Fatal(err)
	}
	got, _ := snap.ReadFrame(far)
	if got[5] != 42 {
		t.Fatalf("clone mutated: word=%d want 42", got[5])
	}
}

// Property: the region hash is a pure function of the region's bits — random
// writes confined to the region band always leave the static hash intact, and
// restoring the region's frames restores its hash.
func TestRegionHashProperty(t *testing.T) {
	d := XC2VP7()
	r := DynamicRegion32()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cm := NewConfigMemory(d)
		s0 := cm.StaticHash(r)
		lo, hi := d.RowWordRange(r.Row0, r.H)
		for n := 0; n < 10; n++ {
			col := r.Col0 + rng.Intn(r.W)
			minor := rng.Intn(FramesPerCLBColumn)
			far := FAR{Block: BlockCLB, Major: col, Minor: minor}
			frame, _ := cm.ReadFrame(far)
			frame[lo+rng.Intn(hi-lo)] = rng.Uint32()
			if err := cm.WriteFrame(far, frame); err != nil {
				return false
			}
		}
		if cm.StaticHash(r) != s0 {
			return false
		}
		// Restore: zero the band everywhere in the region.
		for col := r.Col0; col < r.Col0+r.W; col++ {
			for minor := 0; minor < FramesPerCLBColumn; minor++ {
				far := FAR{Block: BlockCLB, Major: col, Minor: minor}
				frame, _ := cm.ReadFrame(far)
				for i := lo; i < hi; i++ {
					frame[i] = 0
				}
				if err := cm.WriteFrame(far, frame); err != nil {
					return false
				}
			}
		}
		return cm.RegionHash(r) == NewConfigMemory(d).RegionHash(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestResources(t *testing.T) {
	a := Resources{Slices: 100, LUTs: 150, FFs: 120, BRAMs: 2}
	b := Resources{Slices: 50, LUTs: 60, FFs: 70, BRAMs: 1}
	sum := a.Add(b)
	if sum.Slices != 150 || sum.LUTs != 210 || sum.FFs != 190 || sum.BRAMs != 3 {
		t.Fatalf("Add = %+v", sum)
	}
	r := DynamicRegion32()
	if !(Resources{Slices: 1232, BRAMs: 6}).FitsRegion(r) {
		t.Error("exact-fit resources should fit region")
	}
	if (Resources{Slices: 1233}).FitsRegion(r) {
		t.Error("oversized resources should not fit region")
	}
	if (Resources{BRAMs: 7}).FitsRegion(r) {
		t.Error("BRAM overcommit should not fit region")
	}
	d := XC2VP7()
	if !(Resources{Slices: 4928, BRAMs: 44}).FitsDevice(d) {
		t.Error("device-exact resources should fit device")
	}
	if (Resources{Slices: 4929}).FitsDevice(d) {
		t.Error("oversized resources should not fit device")
	}
	if pct := (Resources{Slices: 1232}).SlicePercent(d); pct != 25 {
		t.Errorf("SlicePercent = %f, want 25", pct)
	}
}

func TestDeviceMetrics(t *testing.T) {
	d := XC2VP7()
	if d.LUTCount() != 2*d.SliceCount() || d.FFCount() != 2*d.SliceCount() {
		t.Error("LUT/FF counts must be 2 per slice")
	}
	if d.FrameLen() != 3+3*d.Rows {
		t.Errorf("FrameLen = %d", d.FrameLen())
	}
	wantFrames := d.Cols*FramesPerCLBColumn + len(d.BRAMColPos)*FramesPerBRAMColumn
	if d.NumFrames() != wantFrames {
		t.Errorf("NumFrames = %d want %d", d.NumFrames(), wantFrames)
	}
	if d.ConfigBits() != wantFrames*d.FrameLen()*32 {
		t.Error("ConfigBits inconsistent")
	}
	if !d.SiteDisplaced(30, 30) {
		t.Error("site inside PPC405 block should be displaced")
	}
	if d.SiteDisplaced(0, 0) {
		t.Error("site (0,0) should not be displaced")
	}
}

func TestSecondDynamicRegion(t *testing.T) {
	// The paper's §4.1 future-work suggestion: a second dynamic area using
	// the free slices near the second CPU core.
	d := XC2VP30()
	a, b := DynamicRegion64(), DynamicRegion64B()
	if err := d.ValidateRegion(b); err != nil {
		t.Fatal(err)
	}
	// The two regions must not overlap (column ranges are disjoint).
	if a.Col0+a.W > b.Col0 && b.Col0+b.W > a.Col0 &&
		a.Row0+a.H > b.Row0 && b.Row0+b.H > a.Row0 {
		t.Fatal("dynamic regions overlap")
	}
	if b.CLBs() != 192 {
		t.Errorf("second region CLBs = %d, want 192", b.CLBs())
	}
	// Both regions' frames hash independently: writing one must not affect
	// the other.
	cm := NewConfigMemory(d)
	ha, hb := cm.RegionHash(a), cm.RegionHash(b)
	lo, _ := d.RowWordRange(b.Row0, b.H)
	frame := make([]uint32, d.FrameLen())
	frame[lo] = 0xCAFE
	if err := cm.WriteFrame(FAR{Block: BlockCLB, Major: b.Col0, Minor: 0}, frame); err != nil {
		t.Fatal(err)
	}
	if cm.RegionHash(a) != ha {
		t.Error("write in region B changed region A's hash")
	}
	if cm.RegionHash(b) == hb {
		t.Error("write in region B did not change its own hash")
	}
	// The static hash excluding both regions is also unaffected.
	if cm.StaticHash(a, b) != NewConfigMemory(d).StaticHash(a, b) {
		t.Error("static hash (excluding both regions) affected")
	}
}
