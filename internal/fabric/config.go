package fabric

import "fmt"

// ConfigMemory holds the current contents of the device's configuration
// memory, frame by frame. It is the state that partial bitstreams mutate and
// that behavioural binding (hashing a region's frames) observes.
type ConfigMemory struct {
	dev    *Device
	frames [][]uint32
	writes uint64
}

// NewConfigMemory returns the configuration memory of an erased device
// (all-zero frames).
func NewConfigMemory(d *Device) *ConfigMemory {
	frames := make([][]uint32, d.NumFrames())
	flen := d.FrameLen()
	backing := make([]uint32, len(frames)*flen)
	for i := range frames {
		frames[i], backing = backing[:flen:flen], backing[flen:]
	}
	return &ConfigMemory{dev: d, frames: frames}
}

// Device returns the device this memory belongs to.
func (cm *ConfigMemory) Device() *Device { return cm.dev }

// FrameWrites reports how many frame writes have been applied (configuration
// activity statistic).
func (cm *ConfigMemory) FrameWrites() uint64 { return cm.writes }

// WriteFrame replaces the frame at far with data (which must be exactly one
// frame long).
func (cm *ConfigMemory) WriteFrame(far FAR, data []uint32) error {
	if len(data) != cm.dev.FrameLen() {
		return fmt.Errorf("fabric: frame write to %v with %d words, frame length is %d",
			far, len(data), cm.dev.FrameLen())
	}
	i, err := cm.dev.FrameIndex(far)
	if err != nil {
		return err
	}
	copy(cm.frames[i], data)
	cm.writes++
	return nil
}

// ReadFrame returns a copy of the frame at far (configuration readback).
func (cm *ConfigMemory) ReadFrame(far FAR) ([]uint32, error) {
	i, err := cm.dev.FrameIndex(far)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, len(cm.frames[i]))
	copy(out, cm.frames[i])
	return out, nil
}

// FlipBit inverts a single configuration bit in place — the soft-error
// model of the fault-injection campaign (an SEU flips one SRAM cell).
// Unlike WriteFrame it does not count as configuration activity: nothing
// streamed through the configuration port.
func (cm *ConfigMemory) FlipBit(far FAR, word int, bit uint) error {
	i, err := cm.dev.FrameIndex(far)
	if err != nil {
		return err
	}
	if word < 0 || word >= cm.dev.FrameLen() || bit > 31 {
		return fmt.Errorf("fabric: bit (%d,%d) outside the %d-word frame geometry",
			word, bit, cm.dev.FrameLen())
	}
	cm.frames[i][word] ^= 1 << bit
	return nil
}

// frame returns the live frame slice (internal use).
func (cm *ConfigMemory) frame(far FAR) []uint32 {
	i, err := cm.dev.FrameIndex(far)
	if err != nil {
		panic(err)
	}
	return cm.frames[i]
}

// Clone returns a deep copy — used to snapshot the static design baseline
// after the initial full configuration.
func (cm *ConfigMemory) Clone() *ConfigMemory {
	out := NewConfigMemory(cm.dev)
	for i, f := range cm.frames {
		copy(out.frames[i], f)
	}
	out.writes = cm.writes
	return out
}

// fnv1a64 is the 64-bit FNV-1a hash, used for content binding. It is not a
// cryptographic hash; it binds configuration contents to behavioural models.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvWord(h uint64, w uint32) uint64 {
	for shift := 0; shift < 32; shift += 8 {
		h ^= uint64(w >> shift & 0xFF)
		h *= fnvPrime
	}
	return h
}

// RegionHash hashes the configuration bits owned by the region: for every
// enclosed CLB column, the frame words of the row band across all frames of
// the column; for every enclosed BRAM column, the same band of its content
// frames. The hash identifies which circuit is currently configured in the
// region.
func (cm *ConfigMemory) RegionHash(r Region) uint64 {
	h := uint64(fnvOffset)
	lo, hi := cm.dev.RowWordRange(r.Row0, r.H)
	for col := r.Col0; col < r.Col0+r.W; col++ {
		for minor := 0; minor < FramesPerCLBColumn; minor++ {
			f := cm.frame(FAR{Block: BlockCLB, Major: col, Minor: minor})
			for _, w := range f[lo:hi] {
				h = fnvWord(h, w)
			}
		}
	}
	for _, bcol := range cm.dev.BRAMColumns(r) {
		for minor := 0; minor < FramesPerBRAMColumn; minor++ {
			f := cm.frame(FAR{Block: BlockBRAM, Major: bcol, Minor: minor})
			for _, w := range f[lo:hi] {
				h = fnvWord(h, w)
			}
		}
	}
	return h
}

// StaticHash hashes every configuration bit not owned by any of the given
// regions. The platform uses it to detect partial configurations that
// disturb the static design (the hazard BitLinker exists to prevent).
func (cm *ConfigMemory) StaticHash(regions ...Region) uint64 {
	h := uint64(fnvOffset)
	for col := 0; col < cm.dev.Cols; col++ {
		for minor := 0; minor < FramesPerCLBColumn; minor++ {
			f := cm.frame(FAR{Block: BlockCLB, Major: col, Minor: minor})
			for wi, w := range f {
				if wordInRegions(cm.dev, regions, col, wi, false, 0) {
					continue
				}
				h = fnvWord(h, w)
			}
		}
	}
	for bcol := range cm.dev.BRAMColPos {
		for minor := 0; minor < FramesPerBRAMColumn; minor++ {
			f := cm.frame(FAR{Block: BlockBRAM, Major: bcol, Minor: minor})
			for wi, w := range f {
				if wordInRegions(cm.dev, regions, 0, wi, true, bcol) {
					continue
				}
				h = fnvWord(h, w)
			}
		}
	}
	return h
}

// wordInRegions reports whether frame word index wi of the given column
// belongs to one of the regions.
func wordInRegions(d *Device, regions []Region, col, wi int, bram bool, bcol int) bool {
	for _, r := range regions {
		lo, hi := d.RowWordRange(r.Row0, r.H)
		if wi < lo || wi >= hi {
			continue
		}
		if bram {
			for _, c := range d.BRAMColumns(r) {
				if c == bcol {
					return true
				}
			}
			continue
		}
		if r.ContainsCol(col) {
			return true
		}
	}
	return false
}
