// Package fabric models the reconfigurable fabric of Virtex-II Pro style
// platform FPGAs at the granularity the paper's implementation issues live
// at: a CLB site array with hard-block displacement, BRAM columns, and a
// frame-addressed configuration memory in which every frame spans the full
// height of the device.
//
// The geometry constants of the two concrete devices are chosen so that the
// published capacities hold exactly: XC2VP7 has 4928 slices and 44 BRAMs,
// XC2VP30 has 13696 slices and 136 BRAMs, with the PowerPC 405 hard blocks
// displacing CLB sites.
package fabric

import (
	"fmt"
	"sort"
)

// BlockType selects a configuration block address space, as in the Virtex-II
// frame address register.
type BlockType uint8

const (
	// BlockCLB addresses CLB (and interconnect) columns.
	BlockCLB BlockType = 0
	// BlockBRAM addresses block-RAM content columns.
	BlockBRAM BlockType = 1
)

func (b BlockType) String() string {
	switch b {
	case BlockCLB:
		return "CLB"
	case BlockBRAM:
		return "BRAM"
	default:
		return fmt.Sprintf("BlockType(%d)", uint8(b))
	}
}

// Frame geometry. A frame configures one vertical stripe of a column over the
// full device height: wordsPerRow words of configuration per CLB row plus a
// fixed overhead (clock row and padding), as in Virtex-II.
const (
	// FramesPerCLBColumn is the number of frames in a CLB column.
	FramesPerCLBColumn = 22
	// FramesPerBRAMColumn is the number of frames in a BRAM content column.
	FramesPerBRAMColumn = 64
	// wordsPerRow is the number of 32-bit frame words holding the bits of
	// one CLB row within one frame.
	wordsPerRow = 3
	// frameOverheadWords covers the clock row and pad words of each frame.
	frameOverheadWords = 3
)

// HardBlock is an embedded block (a PowerPC 405 core) that displaces CLB
// sites from the array.
type HardBlock struct {
	Name string
	Row0 int // first displaced row
	Col0 int // first displaced column
	H    int // rows displaced
	W    int // columns displaced
}

// Contains reports whether the CLB site (row, col) is displaced by the block.
func (h HardBlock) Contains(row, col int) bool {
	return row >= h.Row0 && row < h.Row0+h.H && col >= h.Col0 && col < h.Col0+h.W
}

// Device describes one FPGA: the CLB site grid, BRAM columns, embedded hard
// blocks and configuration frame geometry.
type Device struct {
	Name       string
	Rows, Cols int // CLB site grid dimensions
	// BRAMColPos holds, for each BRAM column, the CLB column index it sits
	// immediately to the right of. Must be sorted ascending.
	BRAMColPos []int
	// BRAMsPerCol is the number of 18 kbit block RAMs in each BRAM column.
	BRAMsPerCol int
	HardBlocks  []HardBlock
	SpeedGrade  int
}

// Validate checks internal consistency of the device description.
func (d *Device) Validate() error {
	if d.Rows <= 0 || d.Cols <= 0 {
		return fmt.Errorf("fabric: %s: non-positive grid %dx%d", d.Name, d.Rows, d.Cols)
	}
	if !sort.IntsAreSorted(d.BRAMColPos) {
		return fmt.Errorf("fabric: %s: BRAM column positions not sorted", d.Name)
	}
	for _, p := range d.BRAMColPos {
		if p < 0 || p >= d.Cols {
			return fmt.Errorf("fabric: %s: BRAM column position %d out of range", d.Name, p)
		}
	}
	for _, hb := range d.HardBlocks {
		if hb.Row0 < 0 || hb.Col0 < 0 || hb.Row0+hb.H > d.Rows || hb.Col0+hb.W > d.Cols {
			return fmt.Errorf("fabric: %s: hard block %s out of bounds", d.Name, hb.Name)
		}
	}
	return nil
}

// SiteDisplaced reports whether the CLB site at (row, col) is displaced by a
// hard block.
func (d *Device) SiteDisplaced(row, col int) bool {
	for _, hb := range d.HardBlocks {
		if hb.Contains(row, col) {
			return true
		}
	}
	return false
}

// CLBCount returns the number of usable CLBs (sites minus hard-block
// displacement).
func (d *Device) CLBCount() int {
	displaced := 0
	for _, hb := range d.HardBlocks {
		displaced += hb.H * hb.W
	}
	return d.Rows*d.Cols - displaced
}

// SliceCount returns the number of slices (4 per CLB on Virtex-II Pro).
func (d *Device) SliceCount() int { return 4 * d.CLBCount() }

// LUTCount returns the number of 4-input LUTs (2 per slice).
func (d *Device) LUTCount() int { return 2 * d.SliceCount() }

// FFCount returns the number of flip-flops (2 per slice).
func (d *Device) FFCount() int { return 2 * d.SliceCount() }

// BRAMCount returns the number of 18 kbit block RAMs.
func (d *Device) BRAMCount() int { return len(d.BRAMColPos) * d.BRAMsPerCol }

// FrameLen returns the length of every configuration frame, in 32-bit words.
func (d *Device) FrameLen() int { return frameOverheadWords + wordsPerRow*d.Rows }

// NumFrames returns the total number of configuration frames of the device.
func (d *Device) NumFrames() int {
	return d.Cols*FramesPerCLBColumn + len(d.BRAMColPos)*FramesPerBRAMColumn
}

// ConfigBits returns the total configuration size in bits.
func (d *Device) ConfigBits() int { return d.NumFrames() * d.FrameLen() * 32 }

// RowWordRange returns the half-open frame-word interval [lo, hi) occupied by
// the CLB rows [row0, row0+h) inside a frame. BitLinker uses this to merge a
// component's row band into a full-height frame without disturbing the bits
// above and below.
func (d *Device) RowWordRange(row0, h int) (lo, hi int) {
	return frameOverheadWords + wordsPerRow*row0, frameOverheadWords + wordsPerRow*(row0+h)
}

// FramesFor returns the number of frames per column for the block type.
func FramesFor(b BlockType) int {
	if b == BlockBRAM {
		return FramesPerBRAMColumn
	}
	return FramesPerCLBColumn
}

// MajorCount returns the number of columns in the block type's address space.
func (d *Device) MajorCount(b BlockType) int {
	if b == BlockBRAM {
		return len(d.BRAMColPos)
	}
	return d.Cols
}

func (d *Device) String() string {
	return fmt.Sprintf("%s (%d slices, %d BRAMs, speed -%d)", d.Name, d.SliceCount(), d.BRAMCount(), d.SpeedGrade)
}
