package fabric

import "fmt"

// Resources is a fabric resource budget: slices, LUTs, flip-flops and block
// RAMs. It is used both for the static designs' resource-usage tables
// (Tables 1 and 6) and for fit-checking dynamic components against a region.
type Resources struct {
	Slices int
	LUTs   int
	FFs    int
	BRAMs  int
}

// Add returns the element-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		Slices: r.Slices + o.Slices,
		LUTs:   r.LUTs + o.LUTs,
		FFs:    r.FFs + o.FFs,
		BRAMs:  r.BRAMs + o.BRAMs,
	}
}

// FitsRegion reports whether the budget fits the region's capacity.
func (r Resources) FitsRegion(reg Region) bool {
	return r.Slices <= reg.Slices() && r.LUTs <= reg.LUTs() &&
		r.FFs <= reg.FFs() && r.BRAMs <= reg.BRAMBudget
}

// FitsDevice reports whether the budget fits the whole device.
func (r Resources) FitsDevice(d *Device) bool {
	return r.Slices <= d.SliceCount() && r.LUTs <= d.LUTCount() &&
		r.FFs <= d.FFCount() && r.BRAMs <= d.BRAMCount()
}

// SlicePercent returns the slice usage as a percentage of the device.
func (r Resources) SlicePercent(d *Device) float64 {
	return 100 * float64(r.Slices) / float64(d.SliceCount())
}

func (r Resources) String() string {
	return fmt.Sprintf("%d slices, %d LUTs, %d FFs, %d BRAMs", r.Slices, r.LUTs, r.FFs, r.BRAMs)
}
