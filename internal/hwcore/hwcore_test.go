package hwcore

import (
	"crypto/sha1"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/busmacro"
	"repro/internal/fabric"
	"repro/internal/ref"
)

// --- Pattern matcher ---

// drivePatternMatch streams an image through the core exactly as the
// platform driver does and returns (bestX, bestY, bestCount, hits),
// accumulating them from the per-position count stream.
func drivePatternMatch(pm *PatternMatch, im *ref.BinaryImage, p ref.Pattern8, threshold int) (int, int, int, int) {
	pm.Reset()
	pm.Write(uint64(p[0])<<24|uint64(p[1])<<16|uint64(p[2])<<8|uint64(p[3]), 4)
	pm.Write(uint64(p[4])<<24|uint64(p[5])<<16|uint64(p[6])<<8|uint64(p[7]), 4)
	wpr := im.WordsPerRow()
	bands := im.H - 7
	pm.Write(uint64(wpr)<<12|uint64(bands), 4)
	positions := im.W - 7
	bestX, bestY, bestCount, hits := 0, 0, -1, 0
	for b := 0; b < bands; b++ {
		for c := 0; c < wpr; c++ {
			for j := 0; j < 8; j++ {
				pm.Write(uint64(im.Words[(b+j)*wpr+c]), 4)
			}
		}
		for rw := 0; rw < ResultWordsPerBand(im.W); rw++ {
			w := uint32(pm.Read())
			for j := 0; j < 4; j++ {
				x := 4*rw + j
				if x >= positions {
					break
				}
				count := int(w >> uint(8*(3-j)) & 0xFF)
				if count > bestCount {
					bestX, bestY, bestCount = x, b, count
				}
				if count >= threshold {
					hits++
				}
			}
		}
	}
	return bestX, bestY, bestCount, hits
}

func TestPatternMatchAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		im := ref.NewBinaryImage(64, 32)
		for i := range im.Words {
			im.Words[i] = rng.Uint32()
		}
		var p ref.Pattern8
		for j := range p {
			p[j] = byte(rng.Uint32())
		}
		// Plant the pattern somewhere to make the best match unambiguous.
		px, py := rng.Intn(im.W-8), rng.Intn(im.H-8)
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				im.Set(px+i, py+j, int(p[j]>>(7-uint(i))&1))
			}
		}
		wx, wy, wc, wh := ref.BestMatch(im, p, 60)
		gx, gy, gc, gh := drivePatternMatch(NewPatternMatch(), im, p, 60)
		if gx != wx || gy != wy || gc != wc || gh != wh {
			t.Fatalf("trial %d: hw=(%d,%d,%d,%d) ref=(%d,%d,%d,%d)",
				trial, gx, gy, gc, gh, wx, wy, wc, wh)
		}
		if gc != 64 {
			t.Fatalf("planted pattern not found (count %d)", gc)
		}
	}
}

func TestPatternMatch64BitWrites(t *testing.T) {
	// Feeding the same stream as 64-bit beats (two words per beat, high
	// first) must give the same count stream as 32-bit writes.
	rng := rand.New(rand.NewSource(8))
	im := ref.NewBinaryImage(64, 16)
	for i := range im.Words {
		im.Words[i] = rng.Uint32()
	}
	var p ref.Pattern8
	for j := range p {
		p[j] = byte(rng.Uint32())
	}

	var words []uint32
	words = append(words,
		uint32(p[0])<<24|uint32(p[1])<<16|uint32(p[2])<<8|uint32(p[3]),
		uint32(p[4])<<24|uint32(p[5])<<16|uint32(p[6])<<8|uint32(p[7]),
		uint32(im.WordsPerRow())<<12|uint32(im.H-7))
	for b := 0; b < im.H-7; b++ {
		for c := 0; c < im.WordsPerRow(); c++ {
			for j := 0; j < 8; j++ {
				words = append(words, im.Words[(b+j)*im.WordsPerRow()+c])
			}
		}
	}

	pm32 := NewPatternMatch()
	for _, w := range words {
		pm32.Write(uint64(w), 4)
	}
	pm64 := NewPatternMatch()
	w2 := append([]uint32{}, words...)
	if len(w2)%2 == 1 {
		w2 = append(w2, 0) // pad; ignored after the last band
	}
	for i := 0; i < len(w2); i += 2 {
		pm64.Write(uint64(w2[i])<<32|uint64(w2[i+1]), 8)
	}
	if pm32.CountsAvailable() != pm64.CountsAvailable() {
		t.Fatalf("count words: 32-bit feed %d, 64-bit feed %d",
			pm32.CountsAvailable(), pm64.CountsAvailable())
	}
	n := pm32.CountsAvailable()
	for i := 0; i < n; i++ {
		if pm32.Read() != pm64.Read() {
			t.Fatalf("result word %d differs between feed widths", i)
		}
	}
}

// --- Jenkins ---

// driveJenkins streams a key through the hash core as the driver does.
func driveJenkins(j *Jenkins, key []byte, initval uint32) uint32 {
	j.Reset()
	j.Write(uint64(len(key)), 4)
	j.Write(uint64(initval), 4)
	full := len(key) / 12
	le := func(b []byte, n int) uint32 {
		var v uint32
		for i := 0; i < n && i < len(b); i++ {
			v |= uint32(b[i]) << (8 * uint(i))
		}
		return v
	}
	for r := 0; r < full; r++ {
		k := key[12*r:]
		j.Write(uint64(le(k, 4)), 4)
		j.Write(uint64(le(k[4:], 4)), 4)
		j.Write(uint64(le(k[8:], 4)), 4)
	}
	tail := key[12*full:]
	var a, b, c uint32
	a = le(tail, 4)
	if len(tail) > 4 {
		b = le(tail[4:], 4)
	}
	if len(tail) > 8 {
		c = le(tail[8:], 3) // bytes 8..10 only; k[11] would be a full round
	}
	j.Write(uint64(a), 4)
	j.Write(uint64(b), 4)
	j.Write(uint64(c), 4)
	return uint32(j.Read())
}

func TestJenkinsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for n := 0; n <= 64; n++ {
		key := make([]byte, n)
		rng.Read(key)
		want := ref.Lookup2(key, 12345)
		got := driveJenkins(NewJenkins(), key, 12345)
		if got != want {
			t.Fatalf("len %d: hw=%#x ref=%#x", n, got, want)
		}
	}
}

func TestJenkinsProperty(t *testing.T) {
	j := NewJenkins()
	f := func(key []byte, initval uint32) bool {
		return driveJenkins(j, key, initval) == ref.Lookup2(key, initval)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- SHA-1 ---

// padSHA1 produces the padded message blocks (RFC 3174 padding).
func padSHA1(msg []byte) []uint32 {
	l := len(msg)
	padded := make([]byte, 0, l+72)
	padded = append(padded, msg...)
	padded = append(padded, 0x80)
	for len(padded)%64 != 56 {
		padded = append(padded, 0)
	}
	var lenBytes [8]byte
	binary.BigEndian.PutUint64(lenBytes[:], uint64(l)*8)
	padded = append(padded, lenBytes[:]...)
	words := make([]uint32, len(padded)/4)
	for i := range words {
		words[i] = binary.BigEndian.Uint32(padded[4*i:])
	}
	return words
}

func driveSHA1(s *SHA1, msg []byte) [20]byte {
	s.Reset()
	for _, w := range padSHA1(msg) {
		s.Write(uint64(w), 4)
	}
	var digest [20]byte
	for i := 0; i < 5; i++ {
		binary.BigEndian.PutUint32(digest[4*i:], uint32(s.Read()))
	}
	return digest
}

func TestSHA1MatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	core := NewSHA1()
	for _, n := range []int{0, 1, 55, 56, 63, 64, 65, 128, 1000} {
		msg := make([]byte, n)
		rng.Read(msg)
		want := sha1.Sum(msg)
		got := driveSHA1(core, msg)
		if got != want {
			t.Fatalf("len %d: hw=%x want=%x", n, got, want)
		}
	}
}

func TestSHA1Property(t *testing.T) {
	core := NewSHA1()
	f := func(msg []byte) bool {
		return driveSHA1(core, msg) == sha1.Sum(msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- Image cores ---

func TestBrightnessCoreMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, delta := range []int{-150, -1, 0, 1, 100, 255} {
		src := make([]byte, 32)
		rng.Read(src)
		want := make([]byte, len(src))
		ref.Brightness(want, src, delta)

		b := NewBrightness()
		b.Write(uint64(uint16(int16(delta))), 4)
		got := make([]byte, 0, len(src))
		for i := 0; i < len(src); i += 4 {
			w := uint64(src[i])<<24 | uint64(src[i+1])<<16 | uint64(src[i+2])<<8 | uint64(src[i+3])
			b.Write(w, 4)
			r := b.Read()
			got = append(got, byte(r>>24), byte(r>>16), byte(r>>8), byte(r))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("delta %d px %d: hw=%d ref=%d", delta, i, got[i], want[i])
			}
		}
	}
}

func TestBrightness64BitPath(t *testing.T) {
	b := NewBrightness()
	delta := int16(-10)
	b.Write(uint64(uint16(delta)), 8)
	b.Write(0x0005_0A0F_1450_FFFE, 8)
	want := []byte{0, 0, 0, 5, 10, 70, 245, 244}
	v, ok := b.PopOut()
	if !ok {
		t.Fatal("no stream output")
	}
	for i, w := range want {
		if byte(v>>uint(8*(7-i))) != w {
			t.Fatalf("px %d: got %d want %d", i, byte(v>>uint(8*(7-i))), w)
		}
	}
}

func TestBlendCoreMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := make([]byte, 16)
	bb := make([]byte, 16)
	rng.Read(a)
	rng.Read(bb)
	want := make([]byte, 16)
	ref.Blend(want, a, bb)

	core := NewBlend()
	var got []byte
	for i := 0; i < 16; i += 2 {
		w := uint64(a[i])<<24 | uint64(a[i+1])<<16 | uint64(bb[i])<<8 | uint64(bb[i+1])
		core.Write(w, 4)
		if (i/2)%2 == 1 { // every second write: 4 pixels ready
			r := core.Read()
			got = append(got, byte(r>>24), byte(r>>16), byte(r>>8), byte(r))
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("px %d: hw=%d ref=%d", i, got[i], want[i])
		}
	}
}

func TestFadeCoreMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := make([]byte, 16)
	bb := make([]byte, 16)
	rng.Read(a)
	rng.Read(bb)
	for _, f := range []int{0, 64, 128, 200, 256} {
		want := make([]byte, 16)
		ref.Fade(want, a, bb, f)
		core := NewFade()
		core.Write(uint64(f), 4)
		var got []byte
		for i := 0; i < 16; i += 2 {
			w := uint64(a[i])<<24 | uint64(a[i+1])<<16 | uint64(bb[i])<<8 | uint64(bb[i+1])
			core.Write(w, 4)
			if (i/2)%2 == 1 {
				r := core.Read()
				got = append(got, byte(r>>24), byte(r>>16), byte(r>>8), byte(r))
			}
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("f=%d px %d: hw=%d ref=%d", f, i, got[i], want[i])
			}
		}
	}
}

func TestCombiner64BitStream(t *testing.T) {
	// 64-bit blend: 4+4 pixels per beat, outputs packed 8 per word after
	// two beats.
	core := NewBlend()
	core.Write(0x01020304_05060708, 8) // A=1,2,3,4  B=5,6,7,8
	if _, ok := core.PopOut(); ok {
		t.Fatal("output before a full 8-pixel word")
	}
	core.Write(0x11121314_15161718, 8)
	v, ok := core.PopOut()
	if !ok {
		t.Fatal("no output after two beats")
	}
	want := []byte{6, 8, 10, 12, 0x26, 0x28, 0x2A, 0x2C}
	for i, w := range want {
		if byte(v>>uint(8*(7-i))) != w {
			t.Fatalf("px %d = %#x want %#x", i, byte(v>>uint(8*(7-i))), w)
		}
	}
}

// --- Specs and component building ---

func TestSpecsFitTheirSystems(t *testing.T) {
	v7, r32 := fabric.XC2VP7(), fabric.DynamicRegion32()
	v30, r64 := fabric.XC2VP30(), fabric.DynamicRegion64()
	d32, d64 := busmacro.Dock32(), busmacro.Dock64()
	for _, s := range Specs() {
		_, err64 := BuildComponent(s, v30, r64, d64)
		if err64 != nil {
			t.Errorf("%s must fit the 64-bit system: %v", s.Name, err64)
		}
		_, err32 := BuildComponent(s, v7, r32, d32)
		if s.Name == "sha1" {
			if err32 == nil {
				t.Error("sha1 must NOT fit the 32-bit dynamic area (paper §4.2)")
			}
		} else if err32 != nil {
			t.Errorf("%s must fit the 32-bit system: %v", s.Name, err32)
		}
	}
}

func TestBuildComponentDeterministic(t *testing.T) {
	s, err := SpecByName("jenkins")
	if err != nil {
		t.Fatal(err)
	}
	v7, r32 := fabric.XC2VP7(), fabric.DynamicRegion32()
	c1, err := BuildComponent(s, v7, r32, busmacro.Dock32())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildComponent(s, v7, r32, busmacro.Dock32())
	if err != nil {
		t.Fatal(err)
	}
	if c1.W != c2.W || c1.H != c2.H || c1.BRAMSeed != c2.BRAMSeed {
		t.Fatal("component build not deterministic")
	}
	if c1.H != r32.H {
		t.Fatalf("component height %d, want region height %d", c1.H, r32.H)
	}
	if err := c1.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("nonexistent"); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestCoreResets(t *testing.T) {
	cores := []interface {
		Reset()
		Write(uint64, int)
		Read() uint64
		Name() string
	}{
		NewPatternMatch(), NewJenkins(), NewSHA1(), NewBrightness(), NewBlend(), NewFade(), NewPassthrough(),
	}
	for _, c := range cores {
		c.Write(123, 4)
		c.Write(45, 4)
		c.Reset()
		c.Write(1, 4)
		// Just exercising: Reset must not leave the core unusable.
		_ = c.Read()
	}
}
