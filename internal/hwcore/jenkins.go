package hwcore

// Jenkins is the hardware implementation of the lookup2 hash function of
// the paper's reference [8] ("accelerating a public domain implementation
// of a hashing function that returns a 32-bit value for a variable-length
// key", §3.2). The whole hashing function is implemented in hardware; the
// CPU only streams the key.
//
// Dock protocol (32-bit words):
//
//	word 0: key length in bytes
//	word 1: initval
//	then floor(len/12) full rounds of three little-endian-composed words
//	(a, b, c), followed by one tail round of three words: the remaining
//	bytes composed little-endian with zero padding, where the c word holds
//	bytes 8..10 in its low 24 bits (the hardware shifts it up one byte and
//	adds the length, as lookup2 does).
//
//	read 0: the 32-bit hash.
type Jenkins struct {
	state    int // 0: len, 1: initval, 2: rounds
	length   uint32
	rounds   int // full rounds remaining
	a, b, c  uint32
	roundBuf [3]uint32
	roundN   int
	done     bool
}

// NewJenkins returns a reset hash core.
func NewJenkins() *Jenkins {
	j := &Jenkins{}
	j.Reset()
	return j
}

// Name implements hw.Core.
func (j *Jenkins) Name() string { return "jenkins" }

// Reset implements hw.Core.
func (j *Jenkins) Reset() { *j = Jenkins{} }

// CyclesPerWord implements hw.Core: the sequential mix network needs about
// 12 bus cycles per 12-byte round, i.e. 8 per 64-bit beat.
func (j *Jenkins) CyclesPerWord() int { return 8 }

// Write implements hw.Core.
func (j *Jenkins) Write(v uint64, size int) {
	if size == 8 {
		j.writeWord(uint32(v >> 32))
		j.writeWord(uint32(v))
		return
	}
	j.writeWord(uint32(v))
}

func (j *Jenkins) writeWord(w uint32) {
	switch j.state {
	case 0:
		j.length = w
		j.rounds = int(w / 12)
		j.state = 1
	case 1:
		j.a, j.b = 0x9e3779b9, 0x9e3779b9
		j.c = w
		j.state = 2
	case 2:
		if j.done {
			return
		}
		j.roundBuf[j.roundN] = w
		j.roundN++
		if j.roundN == 3 {
			j.roundN = 0
			j.round()
		}
	}
}

func (j *Jenkins) round() {
	if j.rounds > 0 {
		j.rounds--
		j.a += j.roundBuf[0]
		j.b += j.roundBuf[1]
		j.c += j.roundBuf[2]
		j.a, j.b, j.c = mix(j.a, j.b, j.c)
		return
	}
	// Tail round: c receives the length in its low byte and the tail bytes
	// shifted up by one byte.
	j.a += j.roundBuf[0]
	j.b += j.roundBuf[1]
	j.c += j.length + j.roundBuf[2]<<8
	j.a, j.b, j.c = mix(j.a, j.b, j.c)
	j.done = true
}

// mix is the lookup2 mixing network (combinational cascade in hardware).
func mix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= b
	a -= c
	a ^= c >> 13
	b -= c
	b -= a
	b ^= a << 8
	c -= a
	c -= b
	c ^= b >> 13
	a -= b
	a -= c
	a ^= c >> 12
	b -= c
	b -= a
	b ^= a << 16
	c -= a
	c -= b
	c ^= b >> 5
	a -= b
	a -= c
	a ^= c >> 3
	b -= c
	b -= a
	b ^= a << 10
	c -= a
	c -= b
	c ^= b >> 15
	return a, b, c
}

// Read implements hw.Core: the hash value.
func (j *Jenkins) Read() uint64 { return uint64(j.c) }

// PopOut implements hw.Core.
func (j *Jenkins) PopOut() (uint64, bool) { return 0, false }
