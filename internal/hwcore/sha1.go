package hwcore

// SHA1 is the hardware SHA-1 core of §4.2 (RFC 3174, the paper's reference
// [4]). The message is padded by software; the core consumes 512-bit blocks
// as sixteen big-endian words and updates the digest after each block. This
// implementation is too large for the 32-bit system's dynamic area — as in
// the paper ("our implementation does not fit into the dynamic area of the
// 32-bit system, so no comparison can be done").
//
// Dock protocol (32-bit words):
//
//	writes: 16 words per block, big-endian, block after block
//	reads:  h0..h4 on five consecutive reads
type SHA1 struct {
	h       [5]uint32
	block   [16]uint32
	n       int
	readIdx int
	blocks  uint64
}

// NewSHA1 returns a reset SHA-1 core.
func NewSHA1() *SHA1 {
	s := &SHA1{}
	s.Reset()
	return s
}

// Name implements hw.Core.
func (s *SHA1) Name() string { return "sha1" }

// Reset implements hw.Core: loads the initial digest.
func (s *SHA1) Reset() {
	*s = SHA1{h: [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}}
}

// CyclesPerWord implements hw.Core: 80 rounds per 8 beats of block data.
func (s *SHA1) CyclesPerWord() int { return 10 }

// Blocks reports how many blocks were processed (diagnostics).
func (s *SHA1) Blocks() uint64 { return s.blocks }

// Write implements hw.Core.
func (s *SHA1) Write(v uint64, size int) {
	if size == 8 {
		s.writeWord(uint32(v >> 32))
		s.writeWord(uint32(v))
		return
	}
	s.writeWord(uint32(v))
}

func (s *SHA1) writeWord(w uint32) {
	s.block[s.n] = w
	s.n++
	if s.n == 16 {
		s.n = 0
		s.process()
	}
}

// process runs the 80-round compression function on the buffered block.
func (s *SHA1) process() {
	var w [80]uint32
	copy(w[:16], s.block[:])
	for t := 16; t < 80; t++ {
		w[t] = rotl(w[t-3]^w[t-8]^w[t-14]^w[t-16], 1)
	}
	a, b, c, d, e := s.h[0], s.h[1], s.h[2], s.h[3], s.h[4]
	for t := 0; t < 80; t++ {
		var f, k uint32
		switch {
		case t < 20:
			f, k = b&c|^b&d, 0x5A827999
		case t < 40:
			f, k = b^c^d, 0x6ED9EBA1
		case t < 60:
			f, k = b&c|b&d|c&d, 0x8F1BBCDC
		default:
			f, k = b^c^d, 0xCA62C1D6
		}
		tmp := rotl(a, 5) + f + e + w[t] + k
		e, d, c, b, a = d, c, rotl(b, 30), a, tmp
	}
	s.h[0] += a
	s.h[1] += b
	s.h[2] += c
	s.h[3] += d
	s.h[4] += e
	s.blocks++
}

func rotl(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }

// Read implements hw.Core: digest words h0..h4 on consecutive reads.
func (s *SHA1) Read() uint64 {
	v := s.h[s.readIdx%5]
	s.readIdx++
	return uint64(v)
}

// PopOut implements hw.Core.
func (s *SHA1) PopOut() (uint64, bool) { return 0, false }
