package hwcore

import (
	"fmt"

	"repro/internal/bitlinker"
	"repro/internal/busmacro"
	"repro/internal/fabric"
	"repro/internal/hw"
)

// Spec describes one dynamic module: its behavioural factory and the
// synthesis result (resource usage) used for fit checking and the resource
// tables.
type Spec struct {
	Name    string
	Version string
	// Res is the synthesis result of the module's datapath.
	Res fabric.Resources
	// New creates the behavioural model.
	New func() hw.Core
}

// Specs returns the module library. Resource figures are sized after
// EDK-era implementations; the SHA-1 core deliberately exceeds the 32-bit
// system's 308-CLB dynamic area, as reported in §4.2.
func Specs() []Spec {
	return []Spec{
		{Name: "passthrough", Version: "1.0",
			Res: fabric.Resources{Slices: 40, LUTs: 66, FFs: 70},
			New: func() hw.Core { return NewPassthrough() }},
		{Name: "patternmatch", Version: "1.2",
			Res: fabric.Resources{Slices: 460, LUTs: 710, FFs: 640, BRAMs: 2},
			New: func() hw.Core { return NewPatternMatch() }},
		{Name: "jenkins", Version: "1.1",
			Res: fabric.Resources{Slices: 360, LUTs: 650, FFs: 210},
			New: func() hw.Core { return NewJenkins() }},
		{Name: "sha1", Version: "1.0",
			Res: fabric.Resources{Slices: 1390, LUTs: 2410, FFs: 1120},
			New: func() hw.Core { return NewSHA1() }},
		{Name: "brightness", Version: "1.0",
			Res: fabric.Resources{Slices: 90, LUTs: 150, FFs: 120},
			New: func() hw.Core { return NewBrightness() }},
		{Name: "blend", Version: "1.0",
			Res: fabric.Resources{Slices: 120, LUTs: 200, FFs: 150},
			New: func() hw.Core { return NewBlend() }},
		{Name: "fade", Version: "1.1",
			Res: fabric.Resources{Slices: 260, LUTs: 430, FFs: 280},
			New: func() hw.Core { return NewFade() }},
	}
}

// SpecByName finds a module spec.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("hwcore: unknown module %q", name)
}

// BuildComponent "implements" the module for a concrete region and bus
// macro: it chooses a footprint (full region height, docked at the edge),
// checks the fit, and produces the relocatable component configuration the
// assembly tool consumes. An error is returned when the module does not fit
// the region — the 32-bit system's answer for SHA-1.
func BuildComponent(s Spec, dev *fabric.Device, region fabric.Region, macro *busmacro.Macro) (*bitlinker.Component, error) {
	h := region.H
	clbs := (s.Res.Slices + 3) / 4
	w := (clbs + h - 1) / h
	// The footprint must host the LUT/FF counts too.
	for w <= region.W {
		if s.Res.LUTs <= 8*w*h && s.Res.FFs <= 8*w*h {
			break
		}
		w++
	}
	if w > region.W {
		return nil, fmt.Errorf("hwcore: module %s (%v) does not fit region %s (%d CLBs)",
			s.Name, s.Res, region.Name, region.CLBs())
	}
	if s.Res.BRAMs > region.BRAMBudget {
		return nil, fmt.Errorf("hwcore: module %s needs %d BRAMs, region %s reserves %d",
			s.Name, s.Res.BRAMs, region.Name, region.BRAMBudget)
	}
	if macro.RowsNeeded() > h {
		return nil, fmt.Errorf("hwcore: macro %s taller than region %s", macro.Name, region.Name)
	}
	version := s.Version + "+" + dev.Name + "/" + region.Name
	return &bitlinker.Component{
		Name:      s.Name,
		Version:   version,
		W:         w,
		H:         h,
		Resources: s.Res,
		Macro:     macro,
		PortRow0:  macro.Row0,
		CLBFrames: bitlinker.SynthesizeFrames(s.Name, version, w, h),
		BRAMSeed:  bramSeed(s.Name, version),
	}, nil
}

func bramSeed(name, version string) uint64 {
	var h uint64 = 14695981039346656037
	for _, s := range []string{name, "#", version} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	return h
}
