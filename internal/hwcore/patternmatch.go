package hwcore

// PatternMatch is the bilevel pattern matcher of §3.2: a pipeline of eight
// stages, each comparing one row of an 8x8 pattern against the sliding
// window; the stage results are summed into a per-position match count.
//
// Dock protocol (32-bit words; 64-bit writes carry two words, high first):
//
//	word 0: pattern rows 0..3 (row 0 in the most significant byte)
//	word 1: pattern rows 4..7
//	word 2: wordsPerRow(12) | bands(12) in the low 24 bits
//	then, for each band b (window rows [b, b+8)) and each 32-pixel chunk:
//	eight words, the chunk's bits of band rows 0..7.
//
// The pipeline produces one match count (0..64) per window position, in
// row-major order, packed four 8-bit counts per result word (most
// significant byte first). Each band yields ceil((W-7)/4) result words,
// zero-padded at the end; the CPU reads them back after streaming the band.
type PatternMatch struct {
	state   int // 0,1,2 = config words; 3 = streaming
	pattern [8]byte
	wpr     int
	bands   int

	band  int
	chunk int
	row   int
	rows  [8][]uint32

	counts  []byte   // counts of the current band, in position order
	results []uint32 // packed result words ready for read-back
	readPos int
	done    bool
}

// NewPatternMatch returns a freshly configured (reset) pattern matcher.
func NewPatternMatch() *PatternMatch {
	p := &PatternMatch{}
	p.Reset()
	return p
}

// Name implements hw.Core.
func (p *PatternMatch) Name() string { return "patternmatch" }

// Reset implements hw.Core.
func (p *PatternMatch) Reset() { *p = PatternMatch{} }

// CyclesPerWord implements hw.Core: the pipeline absorbs one word per cycle.
func (p *PatternMatch) CyclesPerWord() int { return 1 }

// ResultWordsPerBand returns how many packed result words each band
// produces for an image of the given width in pixels.
func ResultWordsPerBand(w int) int { return (w - 7 + 3) / 4 }

// Write implements hw.Core.
func (p *PatternMatch) Write(v uint64, size int) {
	if size == 8 {
		p.writeWord(uint32(v >> 32))
		p.writeWord(uint32(v))
		return
	}
	p.writeWord(uint32(v))
}

func (p *PatternMatch) writeWord(w uint32) {
	switch p.state {
	case 0:
		p.pattern[0], p.pattern[1], p.pattern[2], p.pattern[3] = byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
		p.state = 1
	case 1:
		p.pattern[4], p.pattern[5], p.pattern[6], p.pattern[7] = byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
		p.state = 2
	case 2:
		p.wpr = int(w >> 12 & 0xFFF)
		p.bands = int(w & 0xFFF)
		p.state = 3
		p.startBand()
	case 3:
		if p.done {
			return // words after the last band are ignored
		}
		p.rows[p.row] = append(p.rows[p.row], w)
		p.row++
		if p.row == 8 {
			p.row = 0
			p.evalChunk()
			p.chunk++
			if p.chunk == p.wpr {
				p.flushBand()
				p.band++
				if p.band == p.bands {
					p.done = true
					return
				}
				p.startBand()
			}
		}
	}
}

func (p *PatternMatch) startBand() {
	p.chunk = 0
	p.row = 0
	p.counts = p.counts[:0]
	for j := range p.rows {
		p.rows[j] = p.rows[j][:0]
	}
}

// evalChunk scores every window position that became fully available with
// the chunk just completed.
func (p *PatternMatch) evalChunk() {
	c := p.chunk
	lo := 32*c - 7
	if lo < 0 {
		lo = 0
	}
	hi := 32*c + 24 // inclusive; window [x, x+8) needs bits through 32c+31
	maxX := 32*p.wpr - 8
	if hi > maxX {
		hi = maxX
	}
	for x := lo; x <= hi; x++ {
		count := 0
		for j := 0; j < 8; j++ {
			bits := p.extract8(j, x)
			count += popcount8(^(bits ^ p.pattern[j]))
		}
		p.counts = append(p.counts, byte(count))
	}
}

// flushBand packs the band's counts into result words.
func (p *PatternMatch) flushBand() {
	for i := 0; i < len(p.counts); i += 4 {
		var w uint32
		for j := 0; j < 4; j++ {
			w <<= 8
			if i+j < len(p.counts) {
				w |= uint32(p.counts[i+j])
			}
		}
		p.results = append(p.results, w)
	}
}

// extract8 returns the 8 pixels of band row j starting at x.
func (p *PatternMatch) extract8(j, x int) byte {
	wi, off := x/32, uint(x%32)
	w := p.rows[j][wi]
	if off == 0 {
		return byte(w >> 24)
	}
	var next uint32
	if wi+1 < len(p.rows[j]) {
		next = p.rows[j][wi+1]
	}
	v := w<<off | next>>(32-off)
	return byte(v >> 24)
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// Read implements hw.Core: the next packed result word.
func (p *PatternMatch) Read() uint64 {
	if p.readPos >= len(p.results) {
		return 0
	}
	v := p.results[p.readPos]
	p.readPos++
	return uint64(v)
}

// PopOut implements hw.Core: the matcher's results are read back through
// the data register (the paper drives this task with CPU-controlled
// transfers on both systems), so nothing feeds the FIFO path.
func (p *PatternMatch) PopOut() (uint64, bool) { return 0, false }

// CountsAvailable reports how many packed result words are pending.
func (p *PatternMatch) CountsAvailable() int { return len(p.results) - p.readPos }
