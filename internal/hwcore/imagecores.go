package hwcore

// The three grayscale image-processing datapaths of §3.2 and §4.2. Pixels
// are 8 bits, packed big-endian (first pixel in the most significant byte).
//
// Brightness processes whole words of pixels from one source image. Blend
// and Fade combine two source images: each input word carries pixels from
// both images (first half from A, second half from B), which is the "data
// must be combined by the CPU before being sent" overhead the paper
// highlights; output pixels accumulate into full words before they are
// readable ("the resulting pixels are packed in groups of four, before
// being read back by the CPU").

// outQueue is a small helper for stream outputs feeding the dock FIFO.
type outQueue struct{ q []uint64 }

func (o *outQueue) push(v uint64) { o.q = append(o.q, v) }
func (o *outQueue) pop() (uint64, bool) {
	if len(o.q) == 0 {
		return 0, false
	}
	v := o.q[0]
	o.q = o.q[1:]
	return v, true
}

// Brightness adds a signed constant to every pixel with saturation
// (saturating add, four pixels per 32-bit transfer).
//
// Dock protocol: word 0 = delta as signed 16-bit value in the low bits;
// then every write carries size pixels; Read returns the last result word;
// the stream output queues one word per input word.
type Brightness struct {
	cfg   bool
	delta int
	last  uint64
	out   outQueue
}

// NewBrightness returns a reset brightness core.
func NewBrightness() *Brightness { b := &Brightness{}; b.Reset(); return b }

// Name implements hw.Core.
func (b *Brightness) Name() string { return "brightness" }

// Reset implements hw.Core.
func (b *Brightness) Reset() { *b = Brightness{} }

// CyclesPerWord implements hw.Core: one word per cycle (parallel adders).
func (b *Brightness) CyclesPerWord() int { return 1 }

// Write implements hw.Core.
func (b *Brightness) Write(v uint64, size int) {
	if !b.cfg {
		b.cfg = true
		b.delta = int(int16(v))
		return
	}
	var out uint64
	for i := 0; i < size; i++ {
		shift := uint(8 * (size - 1 - i))
		px := int(v>>shift&0xFF) + b.delta
		if px < 0 {
			px = 0
		}
		if px > 255 {
			px = 255
		}
		out |= uint64(px) << shift
	}
	b.last = out
	b.out.push(out)
}

// Read implements hw.Core.
func (b *Brightness) Read() uint64 { return b.last }

// PopOut implements hw.Core.
func (b *Brightness) PopOut() (uint64, bool) { return b.out.pop() }

// combiner is the shared machinery of Blend and Fade: consume words holding
// pixels of both images, emit packed result words.
type combiner struct {
	apply func(a, b int) int
	// acc packs produced pixels until a full output word (4 pixels for the
	// 32-bit channel, 8 for 64-bit) is available.
	acc     uint64
	accN    int
	accGoal int
	last    uint64
	out     outQueue
}

func (c *combiner) write(v uint64, size int) {
	half := size / 2
	if c.accGoal == 0 {
		c.accGoal = size // first write fixes the packing width
	}
	for i := 0; i < half; i++ {
		a := int(v >> uint(8*(size-1-i)) & 0xFF)
		b := int(v >> uint(8*(half-1-i)) & 0xFF)
		px := c.apply(a, b)
		c.acc = c.acc<<8 | uint64(px)
		c.accN++
		if c.accN == c.accGoal {
			c.last = c.acc
			c.out.push(c.acc)
			c.acc, c.accN = 0, 0
		}
	}
}

// Blend is the additive blending core: out = sat(A + B), two output pixels
// per transfer, packed in groups of four before read-back.
type Blend struct{ c combiner }

// NewBlend returns a reset blending core.
func NewBlend() *Blend { b := &Blend{}; b.Reset(); return b }

// Name implements hw.Core.
func (b *Blend) Name() string { return "blend" }

// Reset implements hw.Core.
func (b *Blend) Reset() {
	b.c = combiner{apply: func(a, bb int) int {
		v := a + bb
		if v > 255 {
			v = 255
		}
		return v
	}}
}

// CyclesPerWord implements hw.Core.
func (b *Blend) CyclesPerWord() int { return 1 }

// Write implements hw.Core.
func (b *Blend) Write(v uint64, size int) { b.c.write(v, size) }

// Read implements hw.Core.
func (b *Blend) Read() uint64 { return b.c.last }

// PopOut implements hw.Core.
func (b *Blend) PopOut() (uint64, bool) { return b.c.out.pop() }

// Fade combines two images as (A-B)*f + B with an 8.8 fixed-point factor:
// the fade-in-fade-out effect is produced by sweeping f (§3.2).
type Fade struct {
	cfg bool
	f   int
	c   combiner
}

// NewFade returns a reset fade core.
func NewFade() *Fade { f := &Fade{}; f.Reset(); return f }

// Name implements hw.Core.
func (f *Fade) Name() string { return "fade" }

// Reset implements hw.Core.
func (f *Fade) Reset() {
	*f = Fade{}
	f.c = combiner{apply: func(a, b int) int {
		return b + ((a-b)*f.f)>>8
	}}
}

// CyclesPerWord implements hw.Core: the multipliers pipeline one word per
// cycle.
func (f *Fade) CyclesPerWord() int { return 1 }

// Write implements hw.Core: the first word after reset is the factor f in
// [0, 256].
func (f *Fade) Write(v uint64, size int) {
	if !f.cfg {
		f.cfg = true
		f.f = int(v & 0x1FF)
		return
	}
	f.c.write(v, size)
}

// Read implements hw.Core.
func (f *Fade) Read() uint64 { return f.c.last }

// PopOut implements hw.Core.
func (f *Fade) PopOut() (uint64, bool) { return f.c.out.pop() }

// Passthrough is a trivial diagnostic core: output equals input. It is used
// by the transfer-time benchmarks (Tables 2, 7 and 8), which measure pure
// data movement.
type Passthrough struct {
	last uint64
	out  outQueue
}

// NewPassthrough returns a reset passthrough core.
func NewPassthrough() *Passthrough { return &Passthrough{} }

// Name implements hw.Core.
func (p *Passthrough) Name() string { return "passthrough" }

// Reset implements hw.Core.
func (p *Passthrough) Reset() { *p = Passthrough{} }

// CyclesPerWord implements hw.Core.
func (p *Passthrough) CyclesPerWord() int { return 1 }

// Write implements hw.Core.
func (p *Passthrough) Write(v uint64, size int) {
	p.last = v
	p.out.push(v)
}

// Read implements hw.Core.
func (p *Passthrough) Read() uint64 { return p.last }

// PopOut implements hw.Core.
func (p *Passthrough) PopOut() (uint64, bool) { return p.out.pop() }
