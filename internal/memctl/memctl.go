// Package memctl provides the memory controllers of the two systems: the
// on-chip BRAM controller (PLB), the external SRAM controller (OPB, 32-bit
// system) and the DDR SDRAM controller (PLB, 64-bit system). Backing storage
// is big-endian, matching the PowerPC 405, and paged so that large memories
// cost only what is touched.
package memctl

import "fmt"

const pageBits = 16 // 64 KB pages
const pageSize = 1 << pageBits

// Memory is a byte-addressable big-endian backing store with configurable
// wait states, shared by all controllers.
type Memory struct {
	name       string
	size       int
	pages      map[uint32][]byte
	readWaits  int
	writeWaits int
	// burstFirstWaits is the first-access latency of a burst; subsequent
	// beats stream at bus rate. Negative disables burst support.
	burstFirstWaits int

	reads, writes uint64
}

// New returns a memory of the given size with the given wait states.
func New(name string, size int, readWaits, writeWaits, burstFirstWaits int) *Memory {
	return &Memory{
		name:            name,
		size:            size,
		pages:           make(map[uint32][]byte),
		readWaits:       readWaits,
		writeWaits:      writeWaits,
		burstFirstWaits: burstFirstWaits,
	}
}

// NewBRAM returns an on-chip BRAM block: single-cycle, burstable.
func NewBRAM(size int) *Memory { return New("bram", size, 0, 0, 0) }

// NewSRAM returns the 32 MB external static memory of the 32-bit system,
// attached to the OPB ("using the OPB instead of the PLB to access external
// memory requires a much smaller controller", §3.1). Asynchronous SRAM plus
// controller overhead costs wait states on every access; the OPB EMC does
// not burst.
func NewSRAM() *Memory { return New("sram", 32<<20, 4, 3, -1) }

// NewDDR returns the 512 MB DDR memory of the 64-bit system on the PLB:
// higher first-access latency, streaming bursts.
func NewDDR() *Memory { return New("ddr", 512<<20, 6, 2, 6) }

// Name implements bus.Slave.
func (m *Memory) Name() string { return m.name }

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return m.size }

// Stats returns access counts.
func (m *Memory) Stats() (reads, writes uint64) { return m.reads, m.writes }

// page returns the backing page for addr, allocating on demand when write
// is true; a nil return means an untouched page (reads as zero) or an
// out-of-range address.
func (m *Memory) page(addr uint32, write bool) []byte {
	if int(addr) >= m.size {
		return nil
	}
	idx := addr >> pageBits
	p := m.pages[idx]
	if p == nil && write {
		p = make([]byte, pageSize)
		m.pages[idx] = p
	}
	return p
}

// byteAt reads one byte functionally.
func (m *Memory) byteAt(addr uint32) byte {
	if int(addr) >= m.size {
		return 0xFF // floating bus
	}
	p := m.pages[addr>>pageBits]
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// setByte writes one byte functionally.
func (m *Memory) setByte(addr uint32, v byte) {
	p := m.page(addr, true)
	if p == nil {
		return
	}
	p[addr&(pageSize-1)] = v
}

// Read implements bus.Slave.
func (m *Memory) Read(addr uint32, size int) (uint64, int) {
	m.reads++
	return m.PeekBE(addr, size), m.readWaits
}

// Write implements bus.Slave.
func (m *Memory) Write(addr uint32, val uint64, size int) int {
	m.writes++
	m.PokeBE(addr, val, size)
	return m.writeWaits
}

// BurstWaits implements bus.BurstSlave when bursts are supported.
func (m *Memory) BurstWaits(addr uint32, beats int, write bool) int {
	if m.burstFirstWaits < 0 {
		// Degenerate to per-beat wait states (OPB EMC behaviour).
		if write {
			return beats * m.writeWaits
		}
		return beats * m.readWaits
	}
	return m.burstFirstWaits
}

// PeekBE reads big-endian without timing effects. Out-of-range reads return
// all ones (floating bus).
func (m *Memory) PeekBE(addr uint32, size int) uint64 {
	if int(addr)+size > m.size {
		return ^uint64(0)
	}
	var v uint64
	for i := 0; i < size; i++ {
		v = v<<8 | uint64(m.byteAt(addr+uint32(i)))
	}
	return v
}

// PokeBE writes big-endian without timing effects. Out-of-range writes are
// dropped.
func (m *Memory) PokeBE(addr uint32, val uint64, size int) {
	if int(addr)+size > m.size {
		return
	}
	for i := size - 1; i >= 0; i-- {
		m.setByte(addr+uint32(i), byte(val))
		val >>= 8
	}
}

// LoadBytes copies raw bytes into memory at addr (test/program loading).
func (m *Memory) LoadBytes(addr uint32, data []byte) error {
	if int(addr)+len(data) > m.size {
		return fmt.Errorf("memctl: %s: load of %d bytes at %#x out of range", m.name, len(data), addr)
	}
	for i, b := range data {
		m.setByte(addr+uint32(i), b)
	}
	return nil
}

// ReadBytes copies size raw bytes out of memory at addr.
func (m *Memory) ReadBytes(addr uint32, size int) ([]byte, error) {
	if int(addr)+size > m.size {
		return nil, fmt.Errorf("memctl: %s: read of %d bytes at %#x out of range", m.name, size, addr)
	}
	out := make([]byte, size)
	for i := range out {
		out[i] = m.byteAt(addr + uint32(i))
	}
	return out, nil
}
