package memctl

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBigEndianLayout(t *testing.T) {
	m := NewBRAM(64)
	m.PokeBE(0, 0x11223344, 4)
	if b := m.byteAt(0); b != 0x11 {
		t.Errorf("byte 0 = %#x, want 0x11 (big-endian)", b)
	}
	if b := m.byteAt(3); b != 0x44 {
		t.Errorf("byte 3 = %#x, want 0x44", b)
	}
	if v := m.PeekBE(2, 2); v != 0x3344 {
		t.Errorf("halfword at 2 = %#x", v)
	}
	m.PokeBE(8, 0x0102030405060708, 8)
	if v := m.PeekBE(8, 8); v != 0x0102030405060708 {
		t.Errorf("doubleword = %#x", v)
	}
	if v := m.PeekBE(12, 4); v != 0x05060708 {
		t.Errorf("low word of doubleword = %#x", v)
	}
}

func TestOutOfRangeSemantics(t *testing.T) {
	m := NewBRAM(16)
	if v := m.PeekBE(16, 4); v != ^uint64(0) {
		t.Errorf("out-of-range read = %#x, want all ones", v)
	}
	m.PokeBE(14, 0xFFFF_FFFF, 4) // straddles the end: dropped
	if v := m.PeekBE(12, 4); v != 0 {
		t.Errorf("straddling write not dropped: %#x", v)
	}
	if err := m.LoadBytes(8, make([]byte, 9)); err == nil {
		t.Error("out-of-range LoadBytes accepted")
	}
	if _, err := m.ReadBytes(8, 9); err == nil {
		t.Error("out-of-range ReadBytes accepted")
	}
}

func TestSparsePaging(t *testing.T) {
	m := NewDDR() // 512 MB, should not allocate eagerly
	if len(m.pages) != 0 {
		t.Fatal("pages allocated before any write")
	}
	if v := m.PeekBE(400<<20, 4); v != 0 {
		t.Fatalf("untouched page reads %#x, want 0", v)
	}
	if len(m.pages) != 0 {
		t.Fatal("read allocated a page")
	}
	m.PokeBE(400<<20, 7, 4)
	if len(m.pages) != 1 {
		t.Fatalf("pages after one write = %d", len(m.pages))
	}
	if v := m.PeekBE(400<<20, 4); v != 7 {
		t.Fatalf("readback = %d", v)
	}
}

func TestLoadReadBytesAcrossPages(t *testing.T) {
	m := New("m", 3*pageSize, 0, 0, 0)
	data := make([]byte, pageSize+100)
	for i := range data {
		data[i] = byte(i * 7)
	}
	base := uint32(pageSize - 50)
	if err := m.LoadBytes(base, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBytes(base, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page roundtrip mismatch")
	}
}

func TestWaitStates(t *testing.T) {
	sram := NewSRAM()
	if _, w := sram.Read(0, 4); w != 4 {
		t.Errorf("SRAM read waits = %d, want 4", w)
	}
	if w := sram.Write(0, 0, 4); w != 3 {
		t.Errorf("SRAM write waits = %d, want 3", w)
	}
	// OPB EMC does not burst: waits scale with beats.
	if w := sram.BurstWaits(0, 8, false); w != 32 {
		t.Errorf("SRAM burst waits = %d, want 8*4", w)
	}
	ddr := NewDDR()
	if w := ddr.BurstWaits(0, 16, false); w != 6 {
		t.Errorf("DDR burst waits = %d, want first-access 6", w)
	}
	reads, writes := sram.Stats()
	if reads != 1 || writes != 1 {
		t.Errorf("stats = %d/%d", reads, writes)
	}
}

// Property: PokeBE/PeekBE roundtrip for every size at arbitrary addresses.
func TestPeekPokeRoundTripProperty(t *testing.T) {
	m := New("m", 1<<20, 0, 0, 0)
	f := func(addr uint32, val uint64, sizeSel uint8) bool {
		sizes := []int{1, 2, 4, 8}
		size := sizes[sizeSel%4]
		addr %= 1<<20 - 8
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		m.PokeBE(addr, val, size)
		return m.PeekBE(addr, size) == val&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
