// Package pool manages a farm of independent simulated platforms — the
// "many boards" a production deployment would rack up to serve concurrent
// reconfiguration workloads. Each member is one platform.System with its
// own simulated timeline; members are built concurrently (boot is pure
// setup) and are driven concurrently through the system's serialized
// Execute surface. Placement policy lives above the pool, in sched.
package pool

import (
	"fmt"
	"sync"

	"repro/internal/platform"
)

// Config sizes the pool: how many 32-bit and 64-bit systems to build.
type Config struct {
	Sys32 int
	Sys64 int
}

// Member is one platform in the pool.
type Member struct {
	ID  int
	Sys *platform.System
}

// Pool is a fixed set of booted platforms.
type Pool struct {
	members []*Member
}

// New boots the configured mix of systems, in parallel. Member IDs are
// stable: 32-bit systems first, then 64-bit.
func New(cfg Config) (*Pool, error) {
	n := cfg.Sys32 + cfg.Sys64
	if n <= 0 {
		return nil, fmt.Errorf("pool: empty pool (sys32=%d sys64=%d)", cfg.Sys32, cfg.Sys64)
	}
	members := make([]*Member, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mk := platform.NewSys32
			if i >= cfg.Sys32 {
				mk = platform.NewSys64
			}
			s, err := mk()
			if err != nil {
				errs[i] = err
				return
			}
			members[i] = &Member{ID: i, Sys: s}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Pool{members: members}, nil
}

// Members returns the pool's platforms.
func (p *Pool) Members() []*Member { return p.members }

// Size returns the number of platforms.
func (p *Pool) Size() int { return len(p.members) }

// SetPlanning toggles the differential-stream planner on every member:
// off reproduces the complete-only baseline, on lets each member's load
// path pick the cheapest safe stream per transition.
func (p *Pool) SetPlanning(on bool) {
	for _, m := range p.members {
		m.Sys.SetPlanning(on)
	}
}

// Supports reports whether at least one member can host the module.
func (p *Pool) Supports(module string) bool {
	for _, m := range p.members {
		if m.Sys.Supports(module) {
			return true
		}
	}
	return false
}

// MemberState is a point-in-time view of one platform for reporting.
type MemberState struct {
	ID     int
	System string
	platform.Status
}

// Snapshot reports every member's resident module and reconfiguration
// statistics. Safe to call while the pool is being driven.
func (p *Pool) Snapshot() []MemberState {
	out := make([]MemberState, len(p.members))
	for i, m := range p.members {
		out[i] = MemberState{ID: m.ID, System: m.Sys.Name, Status: m.Sys.Status()}
	}
	return out
}
