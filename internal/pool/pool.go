// Package pool manages a farm of independent simulated platforms — the
// "many boards" a production deployment would rack up to serve concurrent
// reconfiguration workloads. Each member is one platform.System with its
// own simulated timeline; members are built concurrently (boot is pure
// setup) and are driven concurrently through the system's serialized
// Execute surface. Placement policy lives above the pool, in sched.
package pool

import (
	"fmt"
	"sync"

	"repro/internal/platform"
	"repro/internal/region"
)

// Config sizes the pool: how many 32-bit and 64-bit systems to build, and
// how many independently reconfigurable regions each member's dynamic area
// is split into (0 or 1 = the paper's fixed single-region floorplan).
// Members, when non-empty, overrides the counts entirely: each spec builds
// one member with an explicit floorplan — how benchmark pools compare
// region granularities at equal total fabric.
type Config struct {
	Sys32   int
	Sys64   int
	Regions int
	Members []MemberSpec
}

// MemberSpec describes one explicitly floorplanned member.
type MemberSpec struct {
	Is64      bool
	Floorplan region.Floorplan
}

// Member is one platform in the pool.
type Member struct {
	ID  int
	Sys *platform.System
}

// Pool is a fixed set of booted platforms.
type Pool struct {
	members []*Member
}

// New boots the configured mix of systems, in parallel. Member IDs are
// stable: 32-bit systems first, then 64-bit (or Members order).
func New(cfg Config) (*Pool, error) {
	regions := cfg.Regions
	if regions < 1 {
		regions = 1
	}
	builders := make([]func() (*platform.System, error), 0, cfg.Sys32+cfg.Sys64+len(cfg.Members))
	if len(cfg.Members) > 0 {
		for _, spec := range cfg.Members {
			spec := spec
			builders = append(builders, func() (*platform.System, error) {
				return platform.NewSystem(spec.Is64, spec.Floorplan)
			})
		}
	} else {
		for i := 0; i < cfg.Sys32; i++ {
			builders = append(builders, func() (*platform.System, error) { return platform.NewSys32N(regions) })
		}
		for i := 0; i < cfg.Sys64; i++ {
			builders = append(builders, func() (*platform.System, error) { return platform.NewSys64N(regions) })
		}
	}
	n := len(builders)
	if n <= 0 {
		return nil, fmt.Errorf("pool: empty pool (sys32=%d sys64=%d)", cfg.Sys32, cfg.Sys64)
	}
	members := make([]*Member, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := builders[i]()
			if err != nil {
				errs[i] = err
				return
			}
			members[i] = &Member{ID: i, Sys: s}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Pool{members: members}, nil
}

// Members returns the pool's platforms.
func (p *Pool) Members() []*Member { return p.members }

// Size returns the number of platforms.
func (p *Pool) Size() int { return len(p.members) }

// SetPlanning toggles the differential-stream planner on every member:
// off reproduces the complete-only baseline, on lets each member's load
// path pick the cheapest safe stream per transition.
func (p *Pool) SetPlanning(on bool) {
	for _, m := range p.members {
		m.Sys.SetPlanning(on)
	}
}

// SetCompression toggles the compressed stream kind on every member's
// planners. Off (the default) keeps plans byte-identical to the three-kind
// planner.
func (p *Pool) SetCompression(on bool) {
	for _, m := range p.members {
		m.Sys.SetCompression(on)
	}
}

// Partition splits the members into n round-robin groups — the shard-aware
// construction the sharded scheduler builds on. Members are dealt by ID
// (member i lands in group i mod n), so a mixed 32/64-bit pool spreads
// both fabric widths across every group, and a member's sibling regions
// always stay together (a member is never split — the scheduler's
// member-quiet and DMA gang invariants depend on one shard owning all of
// a board's slots). n is clamped to [1, Size()]; every group is non-empty.
func (p *Pool) Partition(n int) [][]*Member {
	if n < 1 {
		n = 1
	}
	if n > len(p.members) {
		n = len(p.members)
	}
	groups := make([][]*Member, n)
	for i, m := range p.members {
		groups[i%n] = append(groups[i%n], m)
	}
	return groups
}

// Supports reports whether at least one member can host the module.
func (p *Pool) Supports(module string) bool {
	for _, m := range p.members {
		if m.Sys.Supports(module) {
			return true
		}
	}
	return false
}

// MemberState is a point-in-time view of one platform for reporting:
// the aggregate status plus every region's slice of it.
type MemberState struct {
	ID     int
	System string
	platform.Status
	Regions []platform.RegionStatus
}

// Snapshot reports every member's resident modules and reconfiguration
// statistics. Safe to call while the pool is being driven.
func (p *Pool) Snapshot() []MemberState {
	out := make([]MemberState, len(p.members))
	for i, m := range p.members {
		out[i] = MemberState{ID: m.ID, System: m.Sys.Name,
			Status: m.Sys.Status(), Regions: m.Sys.RegionStatuses()}
	}
	return out
}

// Slots returns the pool's total count of dynamic regions — the pool-wide
// bitstream cache capacity.
func (p *Pool) Slots() int {
	n := 0
	for _, m := range p.members {
		n += m.Sys.NumRegions()
	}
	return n
}
