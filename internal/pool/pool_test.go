package pool

import (
	"sync"
	"testing"

	"repro/internal/tasks"
)

func TestNewBuildsConfiguredMix(t *testing.T) {
	p, err := New(Config{Sys32: 2, Sys64: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 3 {
		t.Fatalf("size = %d, want 3", p.Size())
	}
	for i, m := range p.Members() {
		want := "sys32"
		if i >= 2 {
			want = "sys64"
		}
		if m.Sys.Name != want || m.ID != i {
			t.Errorf("member %d: %s id=%d, want %s id=%d", i, m.Sys.Name, m.ID, want, i)
		}
	}
	if !p.Supports("sha1") {
		t.Error("pool with a 64-bit member must support sha1")
	}
	if p32, _ := New(Config{Sys32: 1}); p32.Supports("sha1") {
		t.Error("pure 32-bit pool must not support sha1")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("empty pool config accepted")
	}
}

func TestSnapshotDuringConcurrentExecution(t *testing.T) {
	p, err := New(Config{Sys32: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, m := range p.Members() {
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			r := tasks.FadeRun{Seed: int64(m.ID), N: 256, F: 64}
			for i := 0; i < 3; i++ {
				if _, err := m.Sys.Execute(r.Module(), func() error { return r.Run(m.Sys) }); err != nil {
					t.Error(err)
				}
			}
		}(m)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
			p.Snapshot() // must be race-free against Execute
		}
	}
	for _, st := range p.Snapshot() {
		if st.Resident != "fade" || st.Loads != 1 || st.Corrupted {
			t.Errorf("member %d: %+v, want fade resident after exactly one load", st.ID, st)
		}
	}
}
