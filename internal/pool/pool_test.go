package pool

import (
	"sync"
	"testing"

	"repro/internal/region"
	"repro/internal/tasks"
)

func TestNewBuildsConfiguredMix(t *testing.T) {
	p, err := New(Config{Sys32: 2, Sys64: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 3 {
		t.Fatalf("size = %d, want 3", p.Size())
	}
	for i, m := range p.Members() {
		want := "sys32"
		if i >= 2 {
			want = "sys64"
		}
		if m.Sys.Name != want || m.ID != i {
			t.Errorf("member %d: %s id=%d, want %s id=%d", i, m.Sys.Name, m.ID, want, i)
		}
	}
	if !p.Supports("sha1") {
		t.Error("pool with a 64-bit member must support sha1")
	}
	if p32, _ := New(Config{Sys32: 1}); p32.Supports("sha1") {
		t.Error("pure 32-bit pool must not support sha1")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("empty pool config accepted")
	}
}

func TestSnapshotDuringConcurrentExecution(t *testing.T) {
	p, err := New(Config{Sys32: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, m := range p.Members() {
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			r := tasks.FadeRun{Seed: int64(m.ID), N: 256, F: 64}
			for i := 0; i < 3; i++ {
				if _, err := m.Sys.Execute(r.Module(), func() error { return r.Run(m.Sys) }); err != nil {
					t.Error(err)
				}
			}
		}(m)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
			p.Snapshot() // must be race-free against Execute
		}
	}
	for _, st := range p.Snapshot() {
		if st.Resident != "fade" || st.Loads != 1 || st.Corrupted {
			t.Errorf("member %d: %+v, want fade resident after exactly one load", st.ID, st)
		}
	}
}

// TestRegionsConfig: Config.Regions splits every member's dynamic area;
// explicit MemberSpec floorplans override the counts entirely.
func TestRegionsConfig(t *testing.T) {
	p, err := New(Config{Sys32: 1, Sys64: 1, Regions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Slots() != 4 {
		t.Fatalf("2 dual-region members expose %d slots, want 4", p.Slots())
	}
	for _, m := range p.Members() {
		if m.Sys.NumRegions() != 2 {
			t.Errorf("member %d has %d regions, want 2", m.ID, m.Sys.NumRegions())
		}
	}
	for _, st := range p.Snapshot() {
		if len(st.Regions) != 2 {
			t.Errorf("snapshot of member %d carries %d region statuses, want 2", st.ID, len(st.Regions))
		}
	}
	fp, err := region.Default(true, 2)
	if err != nil {
		t.Fatal(err)
	}
	single := region.Floorplan{Name: "half64", Areas: fp.Areas[:1]}
	p2, err := New(Config{Members: []MemberSpec{
		{Is64: true, Floorplan: single},
		{Is64: true, Floorplan: fp},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Slots() != 3 {
		t.Fatalf("explicit members expose %d slots, want 3", p2.Slots())
	}
	if got := p2.Members()[0].Sys.RegionAt(0); got != fp.Areas[0].R {
		t.Errorf("explicit single-region member region %v, want %v", got, fp.Areas[0].R)
	}
}
