package sched

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/pool"
	"repro/internal/predict"
	"repro/internal/tasks"
)

var updateDispatchGolden = flag.Bool("update", false, "rewrite the dispatch-order goldens from the current scheduler")

// The dispatch goldens pin the scheduler's full observable placement — for
// every request of a paced deterministic drive: which (member, region) slot
// served it, what stream kind and wire bytes the load paid, and its
// completion sequence. The sharded scheduler's 1-shard configuration must
// reproduce these byte for byte (the goldens were captured against the
// pre-shard single-mutex dispatcher), the same discipline the 98-row stream
// goldens applied to the single-region refactor in PR 4.

// settleSched busy-waits for a fully drained scheduler — the pacing
// discipline the deterministic bench drives share (see bench.settle).
func settleSched(s *Scheduler) {
	for !s.Drained() {
		time.Sleep(50 * time.Microsecond)
	}
}

// dispatchLine renders one result's pinned placement. pinSeq pins the
// pool-wide completion sequence too — only meaningful for fully serialized
// (window-1 paced) drives: the paired drive keeps two members in flight,
// and concurrently completing members race for the sequence counter even
// in the pre-shard scheduler, so pinning it there would pin host timing.
func dispatchLine(r Result, pinSeq bool) string {
	line := fmt.Sprintf("id=%02d mod=%s member=%d region=%d kind=%s bytes=%d",
		r.ID, r.Module, r.Member, r.Region, r.Report.Kind, r.Report.BytesStreamed)
	if pinSeq {
		line += fmt.Sprintf(" seq=%02d", r.Seq)
	}
	return line + fmt.Sprintf(" hit=%v", r.Report.CacheHit)
}

const goldenMix = "sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1"

func goldenWorkload(t *testing.T, n int) []tasks.Runner {
	t.Helper()
	mix, err := ParseMix(goldenMix)
	if err != nil {
		t.Fatal(err)
	}
	w, err := GenWorkload(7, n, mix)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// dispatchGoldenCases enumerates the paced deterministic drives the goldens
// cover: the S3-style window-1 mincost run (with and without the markov
// prefetch pipeline) on the 2+2 pool, and the S8-style paired gang+DMA
// drive with compressed streams on the dual-region 64-bit pair.
var dispatchGoldenCases = []struct {
	name   string
	pinSeq bool
	run    func(t *testing.T, shards int) []Result
}{
	{"paced_mincost_2p2", true, func(t *testing.T, shards int) []Result {
		return runPacedGolden(t, pool.Config{Sys32: 2, Sys64: 2}, "mincost", "", false, shards)
	}},
	{"paced_prefetch_markov_2p2", true, func(t *testing.T, shards int) []Result {
		return runPacedGolden(t, pool.Config{Sys32: 2, Sys64: 2}, "mincost", "markov", false, shards)
	}},
	{"paired_gang_dma_dual64", false, func(t *testing.T, shards int) []Result {
		return runPairedGolden(t, shards)
	}},
}

// runPacedGolden drives the seeded 60-request mix window-1 paced (settled
// between arrivals) and returns the results in submission order.
func runPacedGolden(t *testing.T, cfg pool.Config, policyName, predictorName string, compress bool, shards int) []Result {
	t.Helper()
	policy, err := PolicyByName(policyName)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pool.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.SetCompression(compress)
	opts := Options{Batch: 4, Policy: policy, Shards: shards}
	if predictorName != "" {
		pred, err := predict.New(predictorName)
		if err != nil {
			t.Fatal(err)
		}
		opts.Prefetch, opts.Predictor = true, pred
	}
	s := New(p, opts)
	w := goldenWorkload(t, 60)
	var res []Result
	s.SubmitWindowed(w, 1, func(r Result) {
		if r.Err != nil {
			t.Fatalf("request %d (%s): %v", r.ID, r.Task, r.Err)
		}
		res = append(res, r)
		settleSched(s)
	})
	settleSched(s)
	s.Wait()
	return res
}

// runPairedGolden drives the S8-style paired batches (gang placement,
// compressed streams, DMA load path) on the dual-region 64-bit pair.
func runPairedGolden(t *testing.T, shards int) []Result {
	t.Helper()
	policy, err := PolicyByName("gang")
	if err != nil {
		t.Fatal(err)
	}
	p, err := pool.New(pool.Config{Sys64: 2, Regions: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.SetCompression(true)
	s := New(p, Options{Batch: 4, Policy: policy, DMA: true, Shards: shards})
	w := goldenWorkload(t, 60)
	res := make([]Result, 0, len(w))
	for i := 0; i < len(w); i += 2 {
		end := i + 2
		if end > len(w) {
			end = len(w)
		}
		for _, ch := range s.SubmitBatch(w[i:end]) {
			r := <-ch
			if r.Err != nil {
				t.Fatalf("request %d (%s): %v", r.ID, r.Task, r.Err)
			}
			res = append(res, r)
		}
		settleSched(s)
	}
	s.Wait()
	return res
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "dispatch_"+name+".golden")
}

// TestDispatchOrderGolden pins the 1-shard dispatch order against the
// pre-shard scheduler's captured placements.
func TestDispatchOrderGolden(t *testing.T) {
	for _, tc := range dispatchGoldenCases {
		t.Run(tc.name, func(t *testing.T) {
			res := tc.run(t, 1)
			lines := make([]string, len(res))
			for i, r := range res {
				lines[i] = dispatchLine(r, tc.pinSeq)
			}
			got := strings.Join(lines, "\n") + "\n"
			path := goldenPath(tc.name)
			if *updateDispatchGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to capture): %v", err)
			}
			if got != string(want) {
				t.Fatalf("dispatch order diverged from the pre-shard golden %s:\n%s",
					path, diffLines(string(want), got))
			}
		})
	}
}

// diffLines reports the first few divergent lines of two line-oriented
// strings, with one line of context.
func diffLines(want, got string) string {
	ws, gs := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(ws) || i < len(gs); i++ {
		var w, g string
		if i < len(ws) {
			w = ws[i]
		}
		if i < len(gs) {
			g = gs[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  want: %s\n  got:  %s\n", i+1, w, g)
		if shown++; shown >= 5 {
			b.WriteString("  ...\n")
			break
		}
	}
	return b.String()
}
