// Package sched multiplexes a pool of dynamically reconfigurable platforms
// across competing task requests — the scheduling layer the paper's
// time-sharing methodology implies once more than one task (and more than
// one board) contends for the dynamic area.
//
// The pool's N dynamic areas collectively form an N-entry bitstream cache
// keyed by module name: a request whose module is already resident on an
// idle member runs there without any ICAP traffic (a cache hit); otherwise
// a pluggable placement policy chooses the miss victim — "lru" evicts the
// least-recently-dispatched idle member, "mincost" the member whose
// resident module minimizes the planned (differential-aware) configuration
// cost of the transition. Dispatch order is FIFO over schedulable
// requests; an optional batch window pulls up to Batch-1 queued requests
// for the same module forward so they ride a warm configuration, bounding
// how far any request can be overtaken.
package sched

import (
	"fmt"
	"sync"

	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/tasks"
)

// Options tunes the scheduler.
type Options struct {
	// Batch is the maximum number of same-module requests dispatched
	// consecutively to one member ahead of strict FIFO order. 0 or 1
	// disables reordering entirely (pure FIFO).
	Batch int
	// Policy places cache-missing requests on idle members. nil means LRU.
	Policy Policy
}

// Result is the outcome of one scheduled request.
type Result struct {
	ID     uint64 // submission order, 1-based
	Seq    uint64 // completion order across the pool, 1-based
	Task   string
	Module string
	Member int
	System string
	Report platform.ExecReport
	Err    error
}

// Latency is the simulated time the request occupied its member
// (reconfiguration plus work).
func (r Result) Latency() sim.Time { return r.Report.Latency() }

// ModuleStats aggregates per-module outcomes.
type ModuleStats struct {
	Requests uint64
	Hits     uint64
	Misses   uint64
	Config   sim.Time
	Work     sim.Time
	Errors   uint64
	// Bytes counts configuration bytes streamed for this module's
	// requests; Diffs and Completes split its misses by stream kind.
	Bytes     uint64
	Diffs     uint64
	Completes uint64
}

// Stats aggregates scheduler-wide outcomes.
type Stats struct {
	Requests uint64 // submitted
	Done     uint64 // completed (including errors)
	Hits     uint64
	Misses   uint64
	Config   sim.Time // total simulated reconfiguration time
	Work     sim.Time // total simulated work time
	Errors   uint64
	Modules  map[string]ModuleStats
	// BusyTime is each member's simulated busy time (config+work).
	BusyTime []sim.Time
	// BytesStreamed counts all configuration bytes through the pool's
	// HWICAPs; DiffLoads and CompleteLoads split the misses by the stream
	// kind the planner chose.
	BytesStreamed uint64
	DiffLoads     uint64
	CompleteLoads uint64
}

// HitRate returns the bitstream-cache hit fraction of executed requests
// (submit-rejected requests never touch the cache and are excluded).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// request is one queued task.
type request struct {
	id   uint64
	task tasks.Runner
	ch   chan Result
}

type memberState struct {
	m *pool.Member
	// busy marks a member with a dispatched batch in flight.
	busy bool
	// lastUsed is the dispatch tick of the most recent assignment; the
	// idle member with the smallest tick is the LRU eviction victim.
	lastUsed uint64
}

// Scheduler dispatches task requests onto a pool.
type Scheduler struct {
	opts Options
	// planAware: the policy reads Candidate.Plan, so pickLocked must fill
	// it (the first fill per transition assembles the differential — a
	// one-time cost under the scheduler lock; later fills are memoized).
	planAware bool

	mu      sync.Mutex
	pending []*request
	members []*memberState
	tick    uint64
	nextID  uint64
	stats   Stats
	wg      sync.WaitGroup
}

// New returns a scheduler over the pool. The pool must not be driven by
// anyone else while the scheduler owns it.
func New(p *pool.Pool, opts Options) *Scheduler {
	if opts.Batch < 1 {
		opts.Batch = 1
	}
	if opts.Policy == nil {
		opts.Policy = lruPolicy{}
	}
	s := &Scheduler{opts: opts, stats: Stats{Modules: make(map[string]ModuleStats)}}
	if pa, ok := opts.Policy.(interface{ NeedsPlan() bool }); ok {
		s.planAware = pa.NeedsPlan()
	}
	for _, m := range p.Members() {
		s.members = append(s.members, &memberState{m: m})
	}
	s.stats.BusyTime = make([]sim.Time, len(s.members))
	return s
}

// Submit queues a task request and returns a channel that delivers its
// Result exactly once. A request whose module no member supports fails
// immediately.
func (s *Scheduler) Submit(t tasks.Runner) <-chan Result {
	ch := make(chan Result, 1)
	s.mu.Lock()
	s.nextID++
	req := &request{id: s.nextID, task: t, ch: ch}
	s.stats.Requests++
	if !s.supported(t.Module()) {
		s.stats.Done++
		s.stats.Errors++
		ms := s.stats.Modules[t.Module()]
		ms.Requests++
		ms.Errors++
		s.stats.Modules[t.Module()] = ms
		s.mu.Unlock()
		ch <- Result{ID: req.id, Task: t.Name(), Module: t.Module(),
			Member: -1, Err: fmt.Errorf("sched: no member supports module %q", t.Module())}
		return ch
	}
	s.wg.Add(1)
	s.pending = append(s.pending, req)
	s.dispatchLocked()
	s.mu.Unlock()
	return ch
}

// SubmitAll queues a whole workload and returns the result channels in
// submission order.
func (s *Scheduler) SubmitAll(ts []tasks.Runner) []<-chan Result {
	out := make([]<-chan Result, len(ts))
	for i, t := range ts {
		out[i] = s.Submit(t)
	}
	return out
}

// Wait blocks until every submitted request has completed.
func (s *Scheduler) Wait() { s.wg.Wait() }

// Stats returns a copy of the aggregate counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Modules = make(map[string]ModuleStats, len(s.stats.Modules))
	for k, v := range s.stats.Modules {
		st.Modules[k] = v
	}
	st.BusyTime = append([]sim.Time(nil), s.stats.BusyTime...)
	return st
}

func (s *Scheduler) supported(module string) bool {
	for _, ms := range s.members {
		if ms.m.Sys.Supports(module) {
			return true
		}
	}
	return false
}

// dispatchLocked assigns as many pending requests as the idle members
// allow. Called with s.mu held.
//
// Dispatch: scan pending in FIFO order; the first request with an eligible
// idle member is dispatched (later requests may only overtake it inside
// the same-module batch window below, or when no idle member supports its
// module — e.g. a sha1 request waiting for a 64-bit member while 32-bit
// members sit idle). Member choice is delegated to the placement policy;
// every built-in policy sends a request to a member with the module
// already resident when one is idle (cache hit).
func (s *Scheduler) dispatchLocked() {
	for {
		ri, mi := s.pickLocked()
		if ri < 0 {
			return
		}
		head := s.pending[ri]
		batch := []*request{head}
		s.pending = append(s.pending[:ri], s.pending[ri+1:]...)
		// Pull queued same-module requests into the batch window.
		for i := 0; i < len(s.pending) && len(batch) < s.opts.Batch; {
			if s.pending[i].task.Module() == head.task.Module() {
				batch = append(batch, s.pending[i])
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				continue
			}
			i++
		}
		ms := s.members[mi]
		ms.busy = true
		s.tick++
		ms.lastUsed = s.tick
		go s.runBatch(ms, mi, batch)
	}
}

// pickLocked returns the indices of the first schedulable pending request
// and its chosen member, or (-1, -1).
func (s *Scheduler) pickLocked() (int, int) {
	for ri, req := range s.pending {
		mod := req.task.Module()
		var cands []Candidate
		hit := -1
		for mi, ms := range s.members {
			if ms.busy || !ms.m.Sys.Supports(mod) {
				continue
			}
			c := Candidate{Index: mi, Resident: ms.m.Sys.Resident(), LastUsed: ms.lastUsed}
			if c.Resident == mod {
				hit = mi
				break
			}
			cands = append(cands, c)
		}
		// Cache hit: dispatch there without consulting the policy (every
		// built-in policy would pick it anyway), skipping the per-member
		// plan sizing below.
		if hit >= 0 {
			return ri, hit
		}
		if s.planAware {
			for i := range cands {
				if p, err := s.members[cands[i].Index].m.Sys.PlanFor(mod); err == nil {
					cands[i].Plan, cands[i].PlanOK = p, true
				}
			}
		}
		if len(cands) > 0 {
			return ri, cands[s.opts.Policy.Pick(mod, cands)].Index
		}
	}
	return -1, -1
}

func (s *Scheduler) runBatch(ms *memberState, mi int, batch []*request) {
	for _, req := range batch {
		t := req.task
		sys := ms.m.Sys
		rep, err := sys.Execute(t.Module(), func() error { return t.Run(sys) })
		res := Result{ID: req.id, Task: t.Name(), Module: t.Module(),
			Member: ms.m.ID, System: sys.Name, Report: rep, Err: err}
		res.Seq = s.record(mi, res)
		req.ch <- res
		s.wg.Done()
	}
	s.mu.Lock()
	ms.busy = false
	s.dispatchLocked()
	s.mu.Unlock()
}

func (s *Scheduler) record(mi int, res Result) (seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &s.stats
	st.Done++
	seq = st.Done
	st.Config += res.Report.Config
	st.Work += res.Report.Work
	st.BusyTime[mi] += res.Report.Latency()
	st.BytesStreamed += uint64(res.Report.BytesStreamed)
	m := st.Modules[res.Module]
	m.Requests++
	m.Config += res.Report.Config
	m.Work += res.Report.Work
	m.Bytes += uint64(res.Report.BytesStreamed)
	switch res.Report.Kind {
	case plan.StreamDifferential:
		st.DiffLoads++
		m.Diffs++
	case plan.StreamComplete:
		st.CompleteLoads++
		m.Completes++
	}
	if res.Report.CacheHit {
		st.Hits++
		m.Hits++
	} else {
		st.Misses++
		m.Misses++
	}
	if res.Err != nil {
		st.Errors++
		m.Errors++
	}
	st.Modules[res.Module] = m
	return seq
}
