// Package sched multiplexes a pool of dynamically reconfigurable platforms
// across competing task requests — the scheduling layer the paper's
// time-sharing methodology implies once more than one task (and more than
// one board) contends for the dynamic area.
//
// The pool's N dynamic areas collectively form an N-entry bitstream cache
// keyed by module name: a request whose module is already resident on an
// idle member runs there without any ICAP traffic (a cache hit); otherwise
// a pluggable placement policy chooses the miss victim — "lru" evicts the
// least-recently-dispatched idle member, "mincost" the member whose
// resident module minimizes the planned (differential-aware) configuration
// cost of the transition, "prefetch" mincost with an eviction penalty for
// modules the predictor expects back. Dispatch order is FIFO over
// schedulable requests; an optional batch window pulls up to Batch-1
// queued requests for the same module forward so they ride a warm
// configuration, bounding how far any request can be overtaken.
//
// With Options.Prefetch the scheduler also overlaps reconfiguration with
// computation: whenever a member goes idle, an online next-module
// predictor (internal/predict) and the members' planners choose the
// cheapest speculative (resident → predicted) transition, and the stream
// is issued as a cancellable background load. A real request always wins:
// dispatching a different module to a speculating member triggers its
// abort token, the stream parks at the next safe boundary, and the §2.2
// hazard gate guarantees the partial region content is never executed
// against — a wrong guess wastes speculative bytes, never correctness.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/pool"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/tasks"
)

// Options tunes the scheduler.
type Options struct {
	// Batch is the maximum number of same-module requests dispatched
	// consecutively to one member ahead of strict FIFO order. 0 or 1
	// disables reordering entirely (pure FIFO).
	Batch int
	// Policy places cache-missing requests on idle members. nil means LRU.
	Policy Policy
	// Prefetch enables speculative configuration of idle members with the
	// predictor's next-module guesses.
	Prefetch bool
	// Predictor guides prefetching and fills Candidate.ReuseProb; it is
	// trained online from the arrival stream. nil with Prefetch enabled
	// selects the default markov predictor.
	Predictor predict.Predictor
}

// Result is the outcome of one scheduled request.
type Result struct {
	ID     uint64 // submission order, 1-based
	Seq    uint64 // completion order across the pool, 1-based
	Task   string
	Module string
	Member int
	System string
	Report platform.ExecReport
	Err    error
}

// Latency is the simulated time the request occupied its member
// (reconfiguration plus work).
func (r Result) Latency() sim.Time { return r.Report.Latency() }

// ModuleStats aggregates per-module outcomes.
type ModuleStats struct {
	Requests uint64
	Hits     uint64
	Misses   uint64
	Config   sim.Time
	Work     sim.Time
	Errors   uint64
	// Bytes counts configuration bytes streamed for this module's
	// requests; Diffs and Completes split its misses by stream kind.
	Bytes     uint64
	Diffs     uint64
	Completes uint64
}

// Stats aggregates scheduler-wide outcomes.
type Stats struct {
	Requests uint64 // submitted
	Done     uint64 // completed (including errors)
	Hits     uint64
	Misses   uint64
	Config   sim.Time // total simulated reconfiguration time
	Work     sim.Time // total simulated work time
	Errors   uint64
	Modules  map[string]ModuleStats
	// BusyTime is each member's simulated busy time (config+work).
	BusyTime []sim.Time
	// BytesStreamed counts all configuration bytes through the pool's
	// HWICAPs on the request path; DiffLoads and CompleteLoads split the
	// misses by the stream kind the planner chose.
	BytesStreamed uint64
	DiffLoads     uint64
	CompleteLoads uint64

	// Prefetch accounting — all zero unless Options.Prefetch is enabled.
	// Config above counts only visible (request-path) configuration time;
	// speculative streams live here.
	PrefetchIssued    uint64 // speculative loads launched
	PrefetchLoads     uint64 // speculative streams that reached an ICAP
	PrefetchCompleted uint64 // speculative streams that ran to completion
	PrefetchAborted   uint64 // speculative streams aborted or failed
	PrefetchHits      uint64 // requests served by a prefetched resident
	PrefetchBytes     uint64 // bytes streamed speculatively
	// PrefetchWasted counts speculative bytes whose guess was aborted or
	// overwritten unconsumed. A completed guess still sitting resident is
	// in neither bucket — it can yet be consumed by a later request.
	PrefetchWasted uint64
	// HiddenConfig is the speculative configuration time later consumed by
	// prefetch hits — time the pipeline moved off the request critical
	// path; PrefetchConfig is all speculative configuration time. A
	// request riding an in-flight stream credits the full stream time, so
	// under continuous arrivals HiddenConfig is an upper bound on the
	// truly overlapped time: the rider's wait for the stream remainder is
	// queue-wait, which the per-member simulated-time model does not
	// measure anywhere (waiting for a busy member is likewise uncounted).
	HiddenConfig   sim.Time
	PrefetchConfig sim.Time
}

// HitRate returns the bitstream-cache hit fraction of executed requests
// (submit-rejected requests never touch the cache and are excluded).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// request is one queued task.
type request struct {
	id   uint64
	task tasks.Runner
	ch   chan Result
}

// abortToken cancels one speculative load; the loader polls it at safe
// stream boundaries.
type abortToken struct{ flag atomic.Bool }

func (a *abortToken) trigger()      { a.flag.Store(true) }
func (a *abortToken) aborted() bool { return a.flag.Load() }

type memberState struct {
	m *pool.Member
	// busy marks a member with a dispatched batch in flight.
	busy bool
	// lastModule is the module of the most recent dispatch — the resident
	// module a busy member converges to, read without touching its lock.
	lastModule string
	// lastUsed is the dispatch tick of the most recent assignment; the
	// idle member with the smallest tick is the LRU eviction victim.
	lastUsed uint64

	// specBusy marks an in-flight speculative load of specModule;
	// specAbort is its cancellation token. A real dispatch of a different
	// module triggers the token and proceeds — Execute serializes behind
	// the parking stream on the member's own lock.
	specBusy   bool
	specModule string
	specAbort  *abortToken
	// specHitPending marks a dispatch that is riding the in-flight
	// speculative stream (same module): when the stream completes it is
	// credited as a prefetch hit there and then, since the request's own
	// record may run before the speculative goroutine's.
	specHitPending bool
	// prefetched names the last completed, still unconsumed speculative
	// load, with the stream bytes/time it paid off the request path. The
	// first request hitting it converts prefetchedTime into HiddenConfig;
	// a real load overwriting it books prefetchedBytes as wasted.
	prefetched      string
	prefetchedBytes int
	prefetchedTime  sim.Time
}

// residentView is the member's resident module as the dispatcher sees it:
// the last dispatched module while busy (a busy member converges to it —
// including when the dispatch just aborted a speculation, whose doomed
// guess must not be reported), else the speculative target while a stream
// is in flight (it either completes into exactly that state or the
// dispatch that invalidates it aborts it), else the live authoritative
// resident. Only the last case takes the member's lock.
func (ms *memberState) residentView() string {
	switch {
	case ms.busy:
		return ms.lastModule
	case ms.specBusy:
		return ms.specModule
	default:
		return ms.m.Sys.Resident()
	}
}

// Scheduler dispatches task requests onto a pool.
type Scheduler struct {
	opts Options
	// planAware: the policy reads Candidate.Plan, so pickLocked must fill
	// it (the first fill per transition assembles the differential — a
	// one-time cost under the scheduler lock; later fills are memoized).
	planAware bool

	mu      sync.Mutex
	pending []*request
	members []*memberState
	tick    uint64
	nextID  uint64
	stats   Stats
	wg      sync.WaitGroup

	// specWG tracks speculative load goroutines; stopped (set by Wait,
	// cleared by Submit) keeps a drained scheduler from speculating into
	// the void after the last result is delivered.
	specWG  sync.WaitGroup
	stopped bool
}

// New returns a scheduler over the pool. The pool must not be driven by
// anyone else while the scheduler owns it.
func New(p *pool.Pool, opts Options) *Scheduler {
	if opts.Batch < 1 {
		opts.Batch = 1
	}
	if opts.Policy == nil {
		opts.Policy = lruPolicy{}
	}
	if opts.Prefetch && opts.Predictor == nil {
		opts.Predictor, _ = predict.New("")
	}
	s := &Scheduler{opts: opts, stats: Stats{Modules: make(map[string]ModuleStats)}}
	if pa, ok := opts.Policy.(interface{ NeedsPlan() bool }); ok {
		s.planAware = pa.NeedsPlan()
	}
	for _, m := range p.Members() {
		s.members = append(s.members, &memberState{m: m})
	}
	s.stats.BusyTime = make([]sim.Time, len(s.members))
	return s
}

// Submit queues a task request and returns a channel that delivers its
// Result exactly once. A request whose module no member supports fails
// immediately.
func (s *Scheduler) Submit(t tasks.Runner) <-chan Result {
	ch := make(chan Result, 1)
	s.mu.Lock()
	s.stopped = false
	s.nextID++
	req := &request{id: s.nextID, task: t, ch: ch}
	s.stats.Requests++
	if s.opts.Predictor != nil {
		// Train on the arrival stream — including requests that fail below:
		// the workload asked for the module either way.
		s.opts.Predictor.Observe(t.Module())
	}
	if !s.supported(t.Module()) {
		s.stats.Done++
		s.stats.Errors++
		ms := s.stats.Modules[t.Module()]
		ms.Requests++
		ms.Errors++
		s.stats.Modules[t.Module()] = ms
		s.mu.Unlock()
		ch <- Result{ID: req.id, Task: t.Name(), Module: t.Module(),
			Member: -1, Err: fmt.Errorf("sched: no member supports module %q", t.Module())}
		return ch
	}
	s.wg.Add(1)
	s.pending = append(s.pending, req)
	s.dispatchLocked()
	s.mu.Unlock()
	return ch
}

// SubmitAll queues a whole workload and returns the result channels in
// submission order.
func (s *Scheduler) SubmitAll(ts []tasks.Runner) []<-chan Result {
	out := make([]<-chan Result, len(ts))
	for i, t := range ts {
		out[i] = s.Submit(t)
	}
	return out
}

// SubmitWindowed drives a workload closed-loop: at most window requests
// are outstanding, and onResult sees each completed result in submission
// order before the next request is submitted (window < 1 is treated as
// fully sequential). Callers model think time — e.g. waiting for
// Drained() — inside onResult.
func (s *Scheduler) SubmitWindowed(ts []tasks.Runner, window int, onResult func(Result)) {
	if window < 1 {
		window = 1
	}
	var inflight []<-chan Result
	for _, t := range ts {
		if len(inflight) == window {
			onResult(<-inflight[0])
			inflight = inflight[1:]
		}
		inflight = append(inflight, s.Submit(t))
	}
	for _, ch := range inflight {
		onResult(<-ch)
	}
}

// Wait blocks until every submitted request has completed and all
// speculative activity has quiesced: in-flight speculative streams are
// aborted (nothing is coming that could consume them) and their goroutines
// joined, so Stats() is stable and the pool is untouched afterwards.
func (s *Scheduler) Wait() {
	s.wg.Wait()
	s.mu.Lock()
	s.stopped = true
	for _, ms := range s.members {
		if ms.specBusy {
			ms.specAbort.trigger()
		}
	}
	s.mu.Unlock()
	s.specWG.Wait()
}

// Drained reports whether the scheduler is fully settled: no pending
// request, no member executing, and no speculative stream in flight.
// Closed-loop drivers that need reproducible runs poll it between
// arrivals — a delivered Result precedes the member's release and the
// tail dispatch that may issue new speculation, so observing counters
// alone can race with both.
func (s *Scheduler) Drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) > 0 {
		return false
	}
	for _, ms := range s.members {
		if ms.busy || ms.specBusy {
			return false
		}
	}
	return true
}

// Stats returns a copy of the aggregate counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Modules = make(map[string]ModuleStats, len(s.stats.Modules))
	for k, v := range s.stats.Modules {
		st.Modules[k] = v
	}
	st.BusyTime = append([]sim.Time(nil), s.stats.BusyTime...)
	return st
}

func (s *Scheduler) supported(module string) bool {
	for _, ms := range s.members {
		if ms.m.Sys.Supports(module) {
			return true
		}
	}
	return false
}

// dispatchLocked assigns as many pending requests as the idle members
// allow. Called with s.mu held.
//
// Dispatch: scan pending in FIFO order; the first request with an eligible
// idle member is dispatched (later requests may only overtake it inside
// the same-module batch window below, or when no idle member supports its
// module — e.g. a sha1 request waiting for a 64-bit member while 32-bit
// members sit idle). Member choice is delegated to the placement policy;
// every built-in policy sends a request to a member with the module
// already resident when one is idle (cache hit).
func (s *Scheduler) dispatchLocked() {
	for {
		ri, mi := s.pickLocked()
		if ri < 0 {
			break
		}
		head := s.pending[ri]
		batch := []*request{head}
		s.pending = append(s.pending[:ri], s.pending[ri+1:]...)
		// Pull queued same-module requests into the batch window.
		for i := 0; i < len(s.pending) && len(batch) < s.opts.Batch; {
			if s.pending[i].task.Module() == head.task.Module() {
				batch = append(batch, s.pending[i])
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				continue
			}
			i++
		}
		ms := s.members[mi]
		if ms.specBusy {
			if ms.specModule != head.task.Module() {
				// Preempt: the speculative stream parks at its next safe
				// boundary; Execute then serializes behind it on the
				// member's lock.
				ms.specAbort.trigger()
			} else {
				// The dispatch rides the in-flight stream — the overlap
				// paying off; the speculative goroutine credits the hit.
				ms.specHitPending = true
			}
		}
		ms.busy = true
		ms.lastModule = head.task.Module()
		s.tick++
		ms.lastUsed = s.tick
		go s.runBatch(ms, mi, batch)
	}
	s.prefetchLocked()
}

// pickLocked returns the indices of the first schedulable pending request
// and its chosen member, or (-1, -1).
func (s *Scheduler) pickLocked() (int, int) {
	for ri, req := range s.pending {
		mod := req.task.Module()
		var cands []Candidate
		hit := -1
		for mi, ms := range s.members {
			if ms.busy || !ms.m.Sys.Supports(mod) {
				continue
			}
			// For a speculating member the view is the in-flight target: a
			// matching request dispatched there rides the stream to a hit,
			// a different one aborts it (see dispatchLocked).
			c := Candidate{Index: mi, Resident: ms.residentView(),
				LastUsed: ms.lastUsed, Speculating: ms.specBusy}
			if c.Resident == mod {
				hit = mi
				break
			}
			cands = append(cands, c)
		}
		// Cache hit: dispatch there without consulting the policy (every
		// built-in policy would pick it anyway), skipping the per-member
		// plan sizing below.
		if hit >= 0 {
			return ri, hit
		}
		for i := range cands {
			// A speculating member's plan cannot be sized without waiting
			// out its stream; leaving PlanOK false costs it as worst case,
			// so policies abort speculation only as a last resort.
			if s.planAware && !cands[i].Speculating {
				if p, err := s.members[cands[i].Index].m.Sys.PlanFor(mod); err == nil {
					cands[i].Plan, cands[i].PlanOK = p, true
				}
			}
			if s.opts.Predictor != nil {
				cands[i].ReuseProb = s.opts.Predictor.Prob(cands[i].Resident)
			}
		}
		if len(cands) > 0 {
			return ri, cands[s.opts.Policy.Pick(mod, cands)].Index
		}
	}
	return -1, -1
}

// prefetchLocked speculatively configures idle members with the
// predictor's next-module guesses. Called with s.mu held at the end of
// every dispatch round. For each ranked module not already resident (or
// in flight) anywhere in the pool, the idle member whose planner offers
// the cheapest (resident → predicted) transition hosts the speculative
// load; at least one member slot is always left unspeculated so a miss
// for an unpredicted module finds a quiet home. Members carrying an
// unconsumed prefetch are skipped — replacing their guess before anyone
// used it would only convert speculative bytes into waste.
func (s *Scheduler) prefetchLocked() {
	if !s.opts.Prefetch || s.stopped || s.opts.Predictor == nil {
		return
	}
	speculating := 0
	var idle []*memberState
	for _, ms := range s.members {
		if ms.specBusy {
			speculating++
			continue
		}
		if !ms.busy && ms.prefetched == "" {
			idle = append(idle, ms)
		}
	}
	// At most half the pool speculates at once: a miss for an unpredicted
	// module must still find quiet members to choose among, or placement
	// degenerates to "the one member not speculating" and the per-miss
	// streams grow past what prefetch hits save.
	limit := len(s.members) / 2
	if limit < 1 {
		limit = 1
	}
	if len(idle) == 0 || speculating >= limit {
		return
	}
	// Modules already resident (or arriving) anywhere in the pool are not
	// worth a second copy.
	resident := make(map[string]bool, len(s.members))
	for _, ms := range s.members {
		resident[ms.residentView()] = true
	}
	candidates := s.opts.Predictor.Rank(2 * len(s.members) * len(s.members))
	// The eviction loss is constant per member within the round; computing
	// it once avoids per-candidate Resident/RestoreEstimate round trips
	// through the members' locks.
	loss := make(map[*memberState]float64, len(idle))
	for _, ms := range idle {
		if r := ms.m.Sys.Resident(); r != "" {
			loss[ms] = s.opts.Predictor.Prob(r) * float64(restoreBytes(ms.m.Sys, r))
		}
	}
	for speculating < limit && len(idle) > 0 {
		// Choose the (idle member, predicted module) pair with the highest
		// expected profit in stream bytes:
		//
		//   Prob(predicted) * restore(predicted) - Prob(resident) * restore(resident)
		//
		// where restore(x) is the planner's state-independent estimate of
		// re-hosting x later. The first term is what a predicted hit saves;
		// the second what evicting the resident costs when it is requested
		// again. The gate is what keeps speculation from strip-mining
		// affinity: a wide, occasionally-requested resident (sha1) beats a
		// narrow frequent guess because every transition touching it
		// streams its full width, while a blank or cold resident loses to
		// any warm prediction. Only positive-profit speculation is issued.
		bestIdle, bestMod, bestProfit, bestPlan := -1, "", 0.0, 0
		for _, mod := range candidates {
			if mod == "" || resident[mod] {
				continue
			}
			prob := s.opts.Predictor.Prob(mod)
			if prob <= 0 {
				continue
			}
			for i, ms := range idle {
				if !ms.m.Sys.Supports(mod) {
					continue
				}
				// Sized per member: restore estimates differ between the
				// 32- and 64-bit fabrics.
				save := prob * float64(restoreBytes(ms.m.Sys, mod))
				profit := save - loss[ms]
				if profit <= 0 || profit < bestProfit {
					continue
				}
				// Only potential winners are stream-sized: PlanFor breaks
				// profit ties toward the cheaper speculative transition,
				// and skipping the clear losers keeps the member-lock
				// round trips under the scheduler lock proportional to
				// improvements, not candidates.
				pb := int(^uint(0) >> 1)
				if p, err := ms.m.Sys.PlanFor(mod); err == nil {
					pb = p.Bytes
				}
				if profit > bestProfit || pb < bestPlan {
					bestIdle, bestMod, bestProfit, bestPlan = i, mod, profit, pb
				}
			}
		}
		if bestIdle < 0 {
			return
		}
		ms := idle[bestIdle]
		idle = append(idle[:bestIdle], idle[bestIdle+1:]...)
		resident[bestMod] = true
		speculating++
		ms.specBusy, ms.specModule = true, bestMod
		ms.specAbort = &abortToken{}
		s.stats.PrefetchIssued++
		s.specWG.Add(1)
		go s.runSpeculative(ms, bestMod, ms.specAbort)
	}
}

// restoreBytes is a member's state-independent stream-size estimate for
// hosting the module, with an unknown module costed as free (never worth
// protecting or prefetching).
func restoreBytes(sys *platform.System, module string) int {
	b, err := sys.RestoreEstimate(module)
	if err != nil {
		return 0
	}
	return b
}

// runSpeculative drives one speculative load to completion or abort and
// records its outcome.
func (s *Scheduler) runSpeculative(ms *memberState, mod string, tok *abortToken) {
	defer s.specWG.Done()
	rep, err := ms.m.Sys.LoadSpeculative(mod, tok.aborted)
	s.mu.Lock()
	defer s.mu.Unlock()
	ms.specBusy, ms.specModule, ms.specAbort = false, "", nil
	st := &s.stats
	st.PrefetchBytes += uint64(rep.Bytes)
	st.PrefetchConfig += rep.Time
	if rep.Bytes > 0 {
		st.PrefetchLoads++
	}
	hitPending := ms.specHitPending
	ms.specHitPending = false
	switch {
	case err == nil && rep.Kind != plan.StreamNone:
		st.PrefetchCompleted++
		switch {
		case hitPending:
			// A request is riding this stream to a hit right now.
			st.PrefetchHits++
			st.HiddenConfig += rep.Time
		case tok.aborted():
			// The stream outran its abort: a dispatch for a different
			// module (or Wait) claimed the member while the last words
			// were going out. The guessed resident is about to be
			// overwritten — marking it prefetched now could outlive the
			// preempting load's record and starve the member, so the
			// bytes are waste directly.
			st.PrefetchWasted += uint64(rep.Bytes)
		default:
			ms.prefetched = mod
			ms.prefetchedBytes = rep.Bytes
			ms.prefetchedTime = rep.Time
		}
	case err == nil:
		// The module was already resident when the stream was about to be
		// planned (a racing real load beat us to it): nothing streamed,
		// nothing to consume — and any rider paid its own configuration.
		st.PrefetchCompleted++
	default:
		// Aborted by a real dispatch, or (defensively) a failed plan:
		// whatever was streamed is waste by definition.
		st.PrefetchAborted++
		st.PrefetchWasted += uint64(rep.Bytes)
	}
	if !ms.busy {
		// The member is idle again (completed or abandoned stream with no
		// real work waiting): a new dispatch round may find pending work it
		// can now serve as a hit, or fresh prefetch opportunities.
		s.dispatchLocked()
	}
}

func (s *Scheduler) runBatch(ms *memberState, mi int, batch []*request) {
	for _, req := range batch {
		t := req.task
		sys := ms.m.Sys
		rep, err := sys.Execute(t.Module(), func() error { return t.Run(sys) })
		res := Result{ID: req.id, Task: t.Name(), Module: t.Module(),
			Member: ms.m.ID, System: sys.Name, Report: rep, Err: err}
		res.Seq = s.record(mi, res)
		req.ch <- res
		s.wg.Done()
	}
	s.mu.Lock()
	ms.busy = false
	s.dispatchLocked()
	s.mu.Unlock()
}

func (s *Scheduler) record(mi int, res Result) (seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &s.stats
	st.Done++
	seq = st.Done
	st.Config += res.Report.Config
	st.Work += res.Report.Work
	st.BusyTime[mi] += res.Report.Latency()
	st.BytesStreamed += uint64(res.Report.BytesStreamed)
	m := st.Modules[res.Module]
	m.Requests++
	m.Config += res.Report.Config
	m.Work += res.Report.Work
	m.Bytes += uint64(res.Report.BytesStreamed)
	switch res.Report.Kind {
	case plan.StreamDifferential:
		st.DiffLoads++
		m.Diffs++
	case plan.StreamComplete:
		st.CompleteLoads++
		m.Completes++
	}
	if res.Report.CacheHit {
		st.Hits++
		m.Hits++
	} else {
		st.Misses++
		m.Misses++
	}
	// Consume the member's prefetched module: the first hit on it banks
	// the speculative stream time as hidden; a real load replacing it
	// books the speculative bytes as wasted.
	if ms := s.members[mi]; ms.prefetched != "" {
		switch {
		case res.Report.CacheHit && res.Module == ms.prefetched:
			st.PrefetchHits++
			st.HiddenConfig += ms.prefetchedTime
			ms.prefetched, ms.prefetchedBytes, ms.prefetchedTime = "", 0, 0
		case res.Report.Kind != plan.StreamNone:
			st.PrefetchWasted += uint64(ms.prefetchedBytes)
			ms.prefetched, ms.prefetchedBytes, ms.prefetchedTime = "", 0, 0
		}
	}
	if res.Err != nil {
		st.Errors++
		m.Errors++
	}
	st.Modules[res.Module] = m
	return seq
}
