// Package sched multiplexes a pool of dynamically reconfigurable platforms
// across competing task requests — the scheduling layer the paper's
// time-sharing methodology implies once more than one task (and more than
// one board) contends for the dynamic area.
//
// The pool's dynamic regions collectively form a bitstream cache keyed by
// module name: every (member, region) pair is one scheduling slot, so a
// dual-region board holds two residents and a request whose module is
// already resident on an idle slot runs there without any ICAP traffic (a
// cache hit) — even while a sibling region of the same board computes.
// Otherwise a pluggable placement policy chooses the miss victim among the
// idle slots — "lru" evicts the least-recently-dispatched, "mincost" the
// slot whose resident module minimizes the planned (differential-aware)
// configuration cost of the transition, "prefetch" mincost with an
// eviction penalty for modules the predictor expects back. Dispatch order
// is FIFO over schedulable requests; an optional batch window pulls up to
// Batch-1 queued requests for the same module forward so they ride a warm
// configuration, bounding how far any request can be overtaken.
//
// With Options.Prefetch the scheduler also overlaps reconfiguration with
// computation: whenever a slot goes idle, an online next-module predictor
// (internal/predict) and the regions' planners choose the cheapest
// speculative (resident → predicted) transition, and the stream is issued
// as a cancellable background load — including into an idle region whose
// sibling is mid-execution, the intra-device overlap multi-region
// floorplans add. A real request always wins: dispatching a different
// module to a speculating slot triggers its abort token, the stream parks
// at the next safe boundary, and the §2.2 hazard gate (per region)
// guarantees the partial region content is never executed against — a
// wrong guess wastes speculative bytes, never correctness.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/pool"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/tasks"
)

// Options tunes the scheduler.
type Options struct {
	// Batch is the maximum number of same-module requests dispatched
	// consecutively to one slot ahead of strict FIFO order. 0 or 1
	// disables reordering entirely (pure FIFO).
	Batch int
	// Policy places cache-missing requests on idle slots. nil means LRU.
	Policy Policy
	// Prefetch enables speculative configuration of idle slots with the
	// predictor's next-module guesses.
	Prefetch bool
	// Predictor guides prefetching and fills Candidate.ReuseProb; it is
	// trained online from the arrival stream. nil with Prefetch enabled
	// selects the default markov predictor.
	Predictor predict.Predictor
	// Scrub runs a readback-CRC scrub of the dispatched slot before each
	// batch executes. A detection quarantines the slot, requeues the batch
	// at the head of the queue, and launches a background repair; see
	// ScrubAll for the idle-slot scrub loop.
	Scrub bool
	// DMA issues miss streams through each region dock's DMA engine
	// instead of CPU stores: every assignment of one dispatch round to the
	// same member opens its port window before any of them settles, so
	// sibling regions' configurations overlap in simulated time — the
	// overlapped part is reported per request as ConfigHidden and summed
	// into Stats.OverlapConfig. Ignored while Scrub is set (the
	// scrub-on-dispatch pass needs the CPU path's pre-execution check).
	DMA bool
}

// Result is the outcome of one scheduled request.
type Result struct {
	ID     uint64 // submission order, 1-based
	Seq    uint64 // completion order across the pool, 1-based
	Task   string
	Module string
	Member int
	Region int // region index within the member
	System string
	Report platform.ExecReport
	Err    error
}

// Latency is the simulated time the request occupied its slot
// (reconfiguration plus work).
func (r Result) Latency() sim.Time { return r.Report.Latency() }

// ModuleStats aggregates per-module outcomes.
type ModuleStats struct {
	Requests uint64
	Hits     uint64
	Misses   uint64
	Config   sim.Time
	Work     sim.Time
	Errors   uint64
	// Bytes counts configuration bytes streamed for this module's
	// requests; Diffs, Completes and Compressed split its misses by
	// stream kind.
	Bytes      uint64
	Diffs      uint64
	Completes  uint64
	Compressed uint64
}

// SlotID names one scheduling slot: a member and a region index inside it.
type SlotID struct {
	Member int
	Region int
}

// Stats aggregates scheduler-wide outcomes.
type Stats struct {
	Requests uint64 // submitted
	Done     uint64 // completed (including errors)
	Hits     uint64
	Misses   uint64
	Config   sim.Time // total simulated reconfiguration time
	Work     sim.Time // total simulated work time
	Errors   uint64
	Modules  map[string]ModuleStats
	// Slots names each scheduling slot; BusyTime is the slot's simulated
	// busy time (config+work), indexed alike.
	Slots    []SlotID
	BusyTime []sim.Time
	// BytesStreamed counts all configuration bytes through the pool's
	// configuration ports on the request path (wire bytes — a compressed
	// container counts its wire size, matching the members' own
	// StreamedBytes counters); DiffLoads, CompleteLoads and
	// CompressedLoads split the misses by the stream kind the planner
	// chose.
	BytesStreamed   uint64
	DiffLoads       uint64
	CompleteLoads   uint64
	CompressedLoads uint64

	// DMA accounting — zero unless Options.DMA is enabled. DMALoads counts
	// request-path streams issued through dock DMA engines; OverlapConfig
	// is the part of their port windows that overlapped sibling loads,
	// dispatch or work — configuration time that never showed up as
	// request latency (Config counts only the visible remainder).
	DMALoads      uint64
	OverlapConfig sim.Time

	// Prefetch accounting — all zero unless Options.Prefetch is enabled.
	// Config above counts only visible (request-path) configuration time;
	// speculative streams live here.
	PrefetchIssued    uint64 // speculative loads launched
	PrefetchLoads     uint64 // speculative streams that reached an ICAP
	PrefetchCompleted uint64 // speculative streams that ran to completion
	PrefetchAborted   uint64 // speculative streams aborted or failed
	PrefetchHits      uint64 // requests served by a prefetched resident
	PrefetchBytes     uint64 // bytes streamed speculatively
	// Every speculative byte ends in exactly one of three places: consumed
	// by a prefetch hit (PrefetchConsumed), booked as waste when its guess
	// was aborted or overwritten unconsumed (PrefetchWasted), or still
	// sitting resident awaiting a request (PrefetchBytes minus the other
	// two). An abort books its partial bytes as waste exactly once — the
	// regression tests pin this against abort-then-retry on one region.
	PrefetchConsumed uint64
	PrefetchWasted   uint64
	// PrefetchPending is the byte total of completed speculative streams
	// still sitting resident unconsumed, summed from the slots when Stats
	// is taken. Conservation holds at every quiesced point:
	//   PrefetchBytes == PrefetchConsumed + PrefetchWasted + PrefetchPending
	// (between a stream's completion and its accounting the left side
	// briefly leads). TestSpeculativeByteConservation pins the equality.
	PrefetchPending uint64
	// HiddenConfig is the speculative configuration time later consumed by
	// prefetch hits — time the pipeline moved off the request critical
	// path; PrefetchConfig is all speculative configuration time. A
	// request riding an in-flight stream credits the full stream time, so
	// under continuous arrivals HiddenConfig is an upper bound on the
	// truly overlapped time: the rider's wait for the stream remainder is
	// queue-wait, which the per-member simulated-time model does not
	// measure anywhere (waiting for a busy member is likewise uncounted).
	HiddenConfig   sim.Time
	PrefetchConfig sim.Time

	// Fault/scrub accounting — all zero unless faults are injected and a
	// scrub (Options.Scrub or ScrubAll) looks. Every detection quarantines
	// its slot and every quarantine resolves in exactly one repair, so
	// FaultsDetected == Repairs at every quiesced point — the fault
	// counterpart of the speculative-byte conservation law. Requeues
	// counts requests bounced off a corrupted slot back to the queue head;
	// each is re-dispatched and completes (and is counted in Done) like
	// any other request.
	ScrubPasses    uint64 // readback scrub passes run by the scheduler
	FaultsDetected uint64 // scrubs that caught a corrupted slot
	Requeues       uint64 // requests requeued off quarantined slots
	Repairs        uint64 // quarantined slots returned to service
	RepairBytes    uint64 // bytes streamed by background repairs
	// RepairConfig is the simulated configuration time of background
	// repairs — off the request path, so not part of Config (a repair
	// overlaps request service elsewhere in the pool; a request hitting
	// the repaired slot later pays nothing, like a prefetch hit).
	RepairConfig sim.Time
}

// HitRate returns the bitstream-cache hit fraction of executed requests
// (submit-rejected requests never touch the cache and are excluded).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// request is one queued task.
type request struct {
	id   uint64
	task tasks.Runner
	ch   chan Result
}

// abortToken cancels one speculative load; the loader polls it at safe
// stream boundaries.
type abortToken struct{ flag atomic.Bool }

func (a *abortToken) trigger()      { a.flag.Store(true) }
func (a *abortToken) aborted() bool { return a.flag.Load() }

// slotState is one scheduling slot: a (member, region) pair. Sibling
// slots of one member have independent residents and speculation state but
// share the member's serialized simulated timeline.
type slotState struct {
	m  *pool.Member
	ri int // region index within the member
	// busy marks a slot with a dispatched batch in flight.
	busy bool
	// resident caches the slot's authoritative resident module as of the
	// last scheduler-driven action (batch execution or speculative
	// completion; "" after an abort, an error, or at boot). The scheduler
	// owns the pool, so nothing else can move a region's resident state —
	// and the dispatcher must never touch the member's own lock while
	// holding the scheduler lock: a sibling region mid-execution holds
	// that lock for its whole simulated run, which would stall dispatch
	// to every other board.
	resident string
	// lastModule is the module of the most recent dispatch — the resident
	// module a busy slot converges to, read without touching its lock.
	lastModule string
	// lastUsed is the dispatch tick of the most recent assignment; the
	// idle slot with the smallest tick is the LRU eviction victim.
	lastUsed uint64

	// specBusy marks an in-flight speculative load of specModule;
	// specAbort is its cancellation token. A real dispatch of a different
	// module to THIS slot triggers the token and proceeds — a dispatch to
	// a sibling region leaves the stream running, and Execute serializes
	// behind it on the member's own lock.
	specBusy   bool
	specModule string
	specAbort  *abortToken
	// specHitPending marks a dispatch that is riding the in-flight
	// speculative stream (same module): when the stream completes it is
	// credited as a prefetch hit there and then, since the request's own
	// record may run before the speculative goroutine's.
	specHitPending bool
	// prefetched names the last completed, still unconsumed speculative
	// load, with the stream bytes/time it paid off the request path. The
	// first request hitting it converts prefetchedTime into HiddenConfig
	// and the bytes into PrefetchConsumed; a real load overwriting it
	// books prefetchedBytes as wasted.
	prefetched      string
	prefetchedBytes int
	prefetchedTime  sim.Time

	// quarantined takes the slot out of service after a scrub detected
	// corruption: never picked, never speculated into, until its
	// background repair (runRepair) completes and clears it.
	quarantined bool
	// scrubbing marks a slot mid readback scrub (ScrubAll runs the pass
	// outside the scheduler lock); treated like busy by pick, prefetch
	// and Drained.
	scrubbing bool
}

// residentView is the slot's resident module as the dispatcher sees it:
// the last dispatched module while busy (a busy slot converges to it —
// including when the dispatch just aborted a speculation, whose doomed
// guess must not be reported), else the speculative target while a stream
// is in flight (it either completes into exactly that state or the
// dispatch that invalidates it aborts it), else the cached resident.
// Never takes the member's lock — see slotState.resident.
func (ss *slotState) residentView() string {
	switch {
	case ss.busy:
		return ss.lastModule
	case ss.specBusy:
		return ss.specModule
	default:
		return ss.resident
	}
}

func (ss *slotState) supports(module string) bool {
	return ss.m.Sys.SupportsOn(ss.ri, module)
}

// memberQuiet reports whether no slot of the member is executing or
// streaming: only then is the member's lock free to take briefly for plan
// sizing and restore estimates. Calls into a non-quiet member would block
// the scheduler lock behind the sibling's entire simulated run. On
// single-region pools quiet is exactly "this slot is idle and not
// speculating", so the pre-multi-region behaviour is unchanged.
func (s *Scheduler) memberQuiet(m *pool.Member) bool {
	for _, ss := range s.slots {
		if ss.m == m && (ss.busy || ss.specBusy || ss.quarantined || ss.scrubbing) {
			return false
		}
	}
	return true
}

// Scheduler dispatches task requests onto a pool's (member, region) slots.
type Scheduler struct {
	opts Options
	// planAware: the policy reads Candidate.Plan, so pickLocked must fill
	// it (the first fill per transition assembles the differential — a
	// one-time cost under the scheduler lock; later fills are memoized).
	planAware bool

	mu      sync.Mutex
	pending []*request
	slots   []*slotState
	tick    uint64
	nextID  uint64
	stats   Stats
	wg      sync.WaitGroup

	// specWG tracks speculative load goroutines; stopped (set by Wait,
	// cleared by Submit) keeps a drained scheduler from speculating into
	// the void after the last result is delivered.
	specWG  sync.WaitGroup
	stopped bool
	// repairWG tracks background repair goroutines of quarantined slots.
	repairWG sync.WaitGroup
}

// New returns a scheduler over the pool. The pool must not be driven by
// anyone else while the scheduler owns it.
func New(p *pool.Pool, opts Options) *Scheduler {
	if opts.Batch < 1 {
		opts.Batch = 1
	}
	if opts.Policy == nil {
		opts.Policy = lruPolicy{}
	}
	if opts.Prefetch && opts.Predictor == nil {
		opts.Predictor, _ = predict.New("")
	}
	s := &Scheduler{opts: opts, stats: Stats{Modules: make(map[string]ModuleStats)}}
	if pa, ok := opts.Policy.(interface{ NeedsPlan() bool }); ok {
		s.planAware = pa.NeedsPlan()
	}
	for _, m := range p.Members() {
		for ri := 0; ri < m.Sys.NumRegions(); ri++ {
			s.slots = append(s.slots, &slotState{m: m, ri: ri})
			s.stats.Slots = append(s.stats.Slots, SlotID{Member: m.ID, Region: ri})
		}
	}
	s.stats.BusyTime = make([]sim.Time, len(s.slots))
	return s
}

// Submit queues a task request and returns a channel that delivers its
// Result exactly once. A request whose module no slot supports fails
// immediately.
func (s *Scheduler) Submit(t tasks.Runner) <-chan Result {
	s.mu.Lock()
	ch := s.submitLocked(t)
	s.dispatchLocked()
	s.mu.Unlock()
	return ch
}

// submitLocked enqueues one request without dispatching. Called with s.mu
// held; unsupported modules fail immediately, like Submit.
func (s *Scheduler) submitLocked(t tasks.Runner) <-chan Result {
	ch := make(chan Result, 1)
	s.stopped = false
	s.nextID++
	req := &request{id: s.nextID, task: t, ch: ch}
	s.stats.Requests++
	if s.opts.Predictor != nil {
		// Train on the arrival stream — including requests that fail below:
		// the workload asked for the module either way.
		s.opts.Predictor.Observe(t.Module())
	}
	if !s.supported(t.Module()) {
		s.stats.Done++
		s.stats.Errors++
		ms := s.stats.Modules[t.Module()]
		ms.Requests++
		ms.Errors++
		s.stats.Modules[t.Module()] = ms
		ch <- Result{ID: req.id, Task: t.Name(), Module: t.Module(),
			Member: -1, Region: -1, Err: fmt.Errorf("sched: no slot supports module %q", t.Module())}
		return ch
	}
	s.wg.Add(1)
	s.pending = append(s.pending, req)
	return ch
}

// SubmitBatch queues a group of requests and dispatches them in ONE round:
// the placement of every request sees the whole group, so a round-aware
// policy ("gang") can co-locate two misses on sibling regions of one
// member, where DMA mode overlaps their configurations. Submitting the
// same requests one by one reaches the same slots only when wall-clock
// timing cooperates; the batch makes the pairing deterministic.
func (s *Scheduler) SubmitBatch(ts []tasks.Runner) []<-chan Result {
	out := make([]<-chan Result, len(ts))
	s.mu.Lock()
	for i, t := range ts {
		out[i] = s.submitLocked(t)
	}
	s.dispatchLocked()
	s.mu.Unlock()
	return out
}

// SubmitAll queues a whole workload and returns the result channels in
// submission order.
func (s *Scheduler) SubmitAll(ts []tasks.Runner) []<-chan Result {
	out := make([]<-chan Result, len(ts))
	for i, t := range ts {
		out[i] = s.Submit(t)
	}
	return out
}

// SubmitWindowed drives a workload closed-loop: at most window requests
// are outstanding, and onResult sees each completed result in submission
// order before the next request is submitted (window < 1 is treated as
// fully sequential). Callers model think time — e.g. waiting for
// Drained() — inside onResult.
func (s *Scheduler) SubmitWindowed(ts []tasks.Runner, window int, onResult func(Result)) {
	if window < 1 {
		window = 1
	}
	var inflight []<-chan Result
	for _, t := range ts {
		if len(inflight) == window {
			onResult(<-inflight[0])
			inflight = inflight[1:]
		}
		inflight = append(inflight, s.Submit(t))
	}
	for _, ch := range inflight {
		onResult(<-ch)
	}
}

// Wait blocks until every submitted request has completed and all
// speculative activity has quiesced: in-flight speculative streams are
// aborted (nothing is coming that could consume them) and their goroutines
// joined, so Stats() is stable and the pool is untouched afterwards.
func (s *Scheduler) Wait() {
	s.wg.Wait()
	s.mu.Lock()
	s.stopped = true
	for _, ss := range s.slots {
		if ss.specBusy {
			ss.specAbort.trigger()
		}
	}
	s.mu.Unlock()
	s.specWG.Wait()
	s.repairWG.Wait()
}

// Drained reports whether the scheduler is fully settled: no pending
// request, no slot executing, and no speculative stream in flight.
// Closed-loop drivers that need reproducible runs poll it between
// arrivals — a delivered Result precedes the slot's release and the
// tail dispatch that may issue new speculation, so observing counters
// alone can race with both.
func (s *Scheduler) Drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) > 0 {
		return false
	}
	for _, ss := range s.slots {
		if ss.busy || ss.specBusy || ss.quarantined || ss.scrubbing {
			return false
		}
	}
	return true
}

// Stats returns a copy of the aggregate counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Modules = make(map[string]ModuleStats, len(s.stats.Modules))
	for k, v := range s.stats.Modules {
		st.Modules[k] = v
	}
	st.Slots = append([]SlotID(nil), s.stats.Slots...)
	st.BusyTime = append([]sim.Time(nil), s.stats.BusyTime...)
	for _, ss := range s.slots {
		st.PrefetchPending += uint64(ss.prefetchedBytes)
	}
	return st
}

func (s *Scheduler) supported(module string) bool {
	for _, ss := range s.slots {
		if ss.supports(module) {
			return true
		}
	}
	return false
}

// dispatchLocked assigns as many pending requests as the idle slots
// allow. Called with s.mu held.
//
// Dispatch: scan pending in FIFO order; the first request with an eligible
// idle slot is dispatched (later requests may only overtake it inside
// the same-module batch window below, or when no idle slot supports its
// module — e.g. a sha1 request waiting for a 64-bit slot while 32-bit
// slots sit idle). Slot choice is delegated to the placement policy;
// every built-in policy sends a request to a slot with the module
// already resident when one is idle (cache hit) — including an idle
// region of a board whose sibling region is busy, the conflict a
// single-region pool must pay a miss for.
func (s *Scheduler) dispatchLocked() {
	// Scrub-on-dispatch needs the CPU path's pre-execution pass, so DMA
	// dispatch yields to it.
	useDMA := s.opts.DMA && !s.opts.Scrub
	var round []assignment
	assigned := make(map[int]bool)
	for {
		ri, si := s.pickLocked(assigned)
		if ri < 0 {
			break
		}
		head := s.pending[ri]
		batch := []*request{head}
		s.pending = append(s.pending[:ri], s.pending[ri+1:]...)
		// Pull queued same-module requests into the batch window.
		for i := 0; i < len(s.pending) && len(batch) < s.opts.Batch; {
			if s.pending[i].task.Module() == head.task.Module() {
				batch = append(batch, s.pending[i])
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				continue
			}
			i++
		}
		ss := s.slots[si]
		if ss.specBusy {
			if ss.specModule != head.task.Module() {
				// Preempt: the speculative stream parks at its next safe
				// boundary; Execute then serializes behind it on the
				// member's lock. Sibling regions' streams are left alone.
				ss.specAbort.trigger()
			} else {
				// The dispatch rides the in-flight stream — the overlap
				// paying off; the speculative goroutine credits the hit.
				ss.specHitPending = true
			}
		}
		ss.busy = true
		ss.lastModule = head.task.Module()
		s.tick++
		ss.lastUsed = s.tick
		assigned[ss.m.ID] = true
		round = append(round, assignment{ss: ss, si: si, batch: batch})
	}
	if len(round) > 0 {
		// One goroutine per member: a member's assignments of this round
		// run in assignment order on its serialized timeline (so a
		// multi-assignment round is deterministic), while different
		// members' groups proceed independently. In DMA mode the group
		// additionally Begins every head's stream back to back before any
		// settles — sibling regions' port windows open together and
		// overlap. A round launched one assignment at a time (the common
		// case: requests arrive singly) behaves exactly as before.
		var order []*pool.Member
		byMember := make(map[*pool.Member][]assignment)
		for _, a := range round {
			if _, ok := byMember[a.ss.m]; !ok {
				order = append(order, a.ss.m)
			}
			byMember[a.ss.m] = append(byMember[a.ss.m], a)
		}
		for _, m := range order {
			go s.runGroup(byMember[m], useDMA)
		}
	}
	s.prefetchLocked()
}

// assignment is one dispatched (slot, batch) pair of a round.
type assignment struct {
	ss    *slotState
	si    int
	batch []*request
}

// pickLocked returns the indices of the first schedulable pending request
// and its chosen slot, or (-1, -1). assigned holds the member IDs already
// given an assignment in the current dispatch round (Candidate.GroupMate).
func (s *Scheduler) pickLocked(assigned map[int]bool) (int, int) {
	for ri, req := range s.pending {
		mod := req.task.Module()
		var cands []Candidate
		hit := -1
		for si, ss := range s.slots {
			if ss.busy || ss.quarantined || ss.scrubbing || !ss.supports(mod) {
				continue
			}
			// For a speculating slot the view is the in-flight target: a
			// matching request dispatched there rides the stream to a hit,
			// a different one aborts it (see dispatchLocked).
			c := Candidate{Index: si, Member: ss.m.ID, Region: ss.ri,
				Resident: ss.residentView(), LastUsed: ss.lastUsed, Speculating: ss.specBusy,
				GroupMate: assigned[ss.m.ID]}
			if c.Resident == mod {
				hit = si
				break
			}
			cands = append(cands, c)
		}
		// Cache hit: dispatch there without consulting the policy (every
		// built-in policy would pick it anyway), skipping the per-slot
		// plan sizing below.
		if hit >= 0 {
			return ri, hit
		}
		for i := range cands {
			// A speculating slot's plan cannot be sized without waiting
			// out its stream, and a slot whose sibling region is executing
			// or streaming cannot be sized without waiting out the member
			// lock; leaving PlanOK false costs them as worst case, so
			// policies prefer quiet slots and abort speculation only as a
			// last resort.
			if s.planAware && !cands[i].Speculating {
				ss := s.slots[cands[i].Index]
				if s.memberQuiet(ss.m) {
					if p, err := ss.m.Sys.PlanForOn(ss.ri, mod); err == nil {
						cands[i].Plan, cands[i].PlanOK = p, true
					}
				}
			}
			if s.opts.Predictor != nil {
				cands[i].ReuseProb = s.opts.Predictor.Prob(cands[i].Resident)
			}
		}
		if len(cands) > 0 {
			return ri, cands[s.opts.Policy.Pick(mod, cands)].Index
		}
	}
	return -1, -1
}

// prefetchLocked speculatively configures idle slots with the predictor's
// next-module guesses. Called with s.mu held at the end of every dispatch
// round. For each ranked module not already resident (or in flight)
// anywhere in the pool, the idle slot whose planner offers the cheapest
// (resident → predicted) transition hosts the speculative load; at least
// one slot is always left unspeculated so a miss for an unpredicted
// module finds a quiet home. A busy slot is never a target, but an idle
// region whose sibling is computing is — the stream interleaves with the
// sibling's work on the member's serialized timeline, and the next
// request for the guess hits warm fabric on an already-loaded board.
// Slots carrying an unconsumed prefetch are skipped — replacing their
// guess before anyone used it would only convert speculative bytes into
// waste.
func (s *Scheduler) prefetchLocked() {
	if !s.opts.Prefetch || s.stopped || s.opts.Predictor == nil {
		return
	}
	speculating := 0
	var idle []*slotState
	for _, ss := range s.slots {
		if ss.specBusy {
			speculating++
			continue
		}
		// Only slots of quiet members are speculation targets this round:
		// sizing a stream for a member whose sibling region is executing
		// would block the scheduler lock behind that run. The member's
		// release re-enters dispatchLocked, so deferred slots are
		// revisited the moment the board frees up.
		if !ss.busy && ss.prefetched == "" && s.memberQuiet(ss.m) {
			idle = append(idle, ss)
		}
	}
	// At most half the pool's slots speculate at once: a miss for an
	// unpredicted module must still find quiet slots to choose among, or
	// placement degenerates to "the one slot not speculating" and the
	// per-miss streams grow past what prefetch hits save.
	limit := len(s.slots) / 2
	if limit < 1 {
		limit = 1
	}
	if len(idle) == 0 || speculating >= limit {
		return
	}
	// Modules already resident (or arriving) anywhere in the pool are not
	// worth a second copy.
	resident := make(map[string]bool, len(s.slots))
	for _, ss := range s.slots {
		resident[ss.residentView()] = true
	}
	candidates := s.opts.Predictor.Rank(2 * len(s.slots) * len(s.slots))
	// The eviction loss is constant per slot within the round; computing
	// it once avoids per-candidate RestoreEstimate round trips through
	// the members' locks (idle slots belong to quiet members, so those
	// trips are brief).
	loss := make(map[*slotState]float64, len(idle))
	for _, ss := range idle {
		if r := ss.resident; r != "" {
			loss[ss] = s.opts.Predictor.Prob(r) * float64(restoreBytes(ss, r))
		}
	}
	for speculating < limit && len(idle) > 0 {
		// Choose the (idle slot, predicted module) pair with the highest
		// expected profit in stream bytes:
		//
		//   Prob(predicted) * restore(predicted) - Prob(resident) * restore(resident)
		//
		// where restore(x) is the planner's state-independent estimate of
		// re-hosting x later. The first term is what a predicted hit saves;
		// the second what evicting the resident costs when it is requested
		// again. The gate is what keeps speculation from strip-mining
		// affinity: a wide, occasionally-requested resident (sha1) beats a
		// narrow frequent guess because every transition touching it
		// streams its full width, while a blank or cold resident loses to
		// any warm prediction. Only positive-profit speculation is issued.
		bestIdle, bestMod, bestProfit, bestPlan := -1, "", 0.0, 0
		for _, mod := range candidates {
			if mod == "" || resident[mod] {
				continue
			}
			prob := s.opts.Predictor.Prob(mod)
			if prob <= 0 {
				continue
			}
			for i, ss := range idle {
				if !ss.supports(mod) {
					continue
				}
				// Sized per slot: restore estimates differ between the
				// 32- and 64-bit fabrics (and between uneven regions).
				save := prob * float64(restoreBytes(ss, mod))
				profit := save - loss[ss]
				if profit <= 0 || profit < bestProfit {
					continue
				}
				// Only potential winners are stream-sized: PlanForOn breaks
				// profit ties toward the cheaper speculative transition,
				// and skipping the clear losers keeps the member-lock
				// round trips under the scheduler lock proportional to
				// improvements, not candidates.
				pb := int(^uint(0) >> 1)
				if p, err := ss.m.Sys.PlanForOn(ss.ri, mod); err == nil {
					pb = p.Bytes
				}
				if profit > bestProfit || pb < bestPlan {
					bestIdle, bestMod, bestProfit, bestPlan = i, mod, profit, pb
				}
			}
		}
		if bestIdle < 0 {
			return
		}
		ss := idle[bestIdle]
		// The launched stream holds the member's lock until it lands, so
		// the member is no longer quiet: drop every sibling slot from the
		// idle list too, or the next iteration's plan sizing would block
		// the scheduler lock behind this stream.
		kept := idle[:0]
		for _, other := range idle {
			if other.m != ss.m {
				kept = append(kept, other)
			}
		}
		idle = kept
		resident[bestMod] = true
		speculating++
		ss.specBusy, ss.specModule = true, bestMod
		ss.specAbort = &abortToken{}
		s.stats.PrefetchIssued++
		s.specWG.Add(1)
		go s.runSpeculative(ss, bestMod, ss.specAbort)
	}
}

// restoreBytes is a slot's state-independent stream-size estimate for
// hosting the module, with an unknown module costed as free (never worth
// protecting or prefetching).
func restoreBytes(ss *slotState, module string) int {
	b, err := ss.m.Sys.RestoreEstimateOn(ss.ri, module)
	if err != nil {
		return 0
	}
	return b
}

// runSpeculative drives one speculative load to completion or abort and
// records its outcome. Every speculative byte is booked exactly once:
// either as waste (here, on abort or on a completed stream that outran
// its abort) or as consumed (on the prefetch hit that uses it) or it
// stays pending in the slot's prefetched fields until one of the two.
func (s *Scheduler) runSpeculative(ss *slotState, mod string, tok *abortToken) {
	defer s.specWG.Done()
	rep, err := ss.m.Sys.LoadSpeculativeOn(ss.ri, mod, tok.aborted)
	s.mu.Lock()
	defer s.mu.Unlock()
	ss.specBusy, ss.specModule, ss.specAbort = false, "", nil
	st := &s.stats
	st.PrefetchBytes += uint64(rep.Bytes)
	st.PrefetchConfig += rep.Time
	if rep.Bytes > 0 {
		st.PrefetchLoads++
	}
	hitPending := ss.specHitPending
	ss.specHitPending = false
	// Refresh the cached resident — but only when the slot was neither
	// preempted nor claimed: a triggered token means a real dispatch (or
	// Wait) owns the slot's fate, and its record() may already have run,
	// so writing here could clobber the authoritative value with stale
	// state (the same ordering hazard the prefetched fields guard
	// against). A skipped write can leave the cache conservatively stale
	// after a Wait-time abort; the manager's live hazard gate still plans
	// every stream correctly.
	if !tok.aborted() && !ss.busy {
		if err == nil {
			ss.resident = mod
		} else {
			ss.resident = ""
		}
	}
	switch {
	case err == nil && rep.Kind != plan.StreamNone:
		st.PrefetchCompleted++
		switch {
		case hitPending:
			// A request is riding this stream to a hit right now.
			st.PrefetchHits++
			st.PrefetchConsumed += uint64(rep.Bytes)
			st.HiddenConfig += rep.Time
		case tok.aborted():
			// The stream outran its abort: a dispatch for a different
			// module (or Wait) claimed the slot while the last words
			// were going out. The guessed resident is about to be
			// overwritten — marking it prefetched now could outlive the
			// preempting load's record and starve the slot, so the
			// bytes are waste directly.
			st.PrefetchWasted += uint64(rep.Bytes)
		default:
			ss.prefetched = mod
			ss.prefetchedBytes = rep.Bytes
			ss.prefetchedTime = rep.Time
		}
	case err == nil:
		// The module was already resident when the stream was about to be
		// planned (a racing real load beat us to it): nothing streamed,
		// nothing to consume — and any rider paid its own configuration.
		st.PrefetchCompleted++
	default:
		// Aborted by a real dispatch, or (defensively) a failed plan:
		// whatever was streamed is waste by definition.
		st.PrefetchAborted++
		st.PrefetchWasted += uint64(rep.Bytes)
	}
	if !ss.busy {
		// The slot is idle again (completed or abandoned stream with no
		// real work waiting): a new dispatch round may find pending work it
		// can now serve as a hit, or fresh prefetch opportunities.
		s.dispatchLocked()
	}
}

func (s *Scheduler) runBatch(ss *slotState, si int, batch []*request) {
	if s.opts.Scrub {
		// Scrub-on-dispatch: verify the slot's region before trusting its
		// resident. The pass takes the member's lock — a speculative
		// stream in flight on this slot is serialized out first, and an
		// aborted one reads as already-demoted, never as a fresh fault.
		rep := ss.m.Sys.ScrubOn(ss.ri)
		s.mu.Lock()
		s.stats.ScrubPasses++
		if rep.Detected {
			// The batch never ran: bounce it back to the head of the queue
			// in order, take the slot out of service, and let dispatch
			// place the requests elsewhere (or wait out the repair).
			s.stats.Requeues += uint64(len(batch))
			s.pending = append(append([]*request(nil), batch...), s.pending...)
			s.quarantineLocked(ss, rep.Module)
			ss.busy = false
			s.dispatchLocked()
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
	}
	for _, req := range batch {
		t := req.task
		sys := ss.m.Sys
		rep, err := sys.ExecuteOn(ss.ri, t.Module(), func() error { return t.Run(sys) })
		res := Result{ID: req.id, Task: t.Name(), Module: t.Module(),
			Member: ss.m.ID, Region: ss.ri, System: sys.Name, Report: rep, Err: err}
		res.Seq = s.record(si, res)
		req.ch <- res
		s.wg.Done()
	}
	s.mu.Lock()
	ss.busy = false
	s.dispatchLocked()
	s.mu.Unlock()
}

// runGroup runs one member's assignments of a dispatch round in order. In
// DMA mode every head's stream Begins before any assignment settles, so
// sibling regions' port windows overlap; then each assignment settles its
// window, runs its batch and releases its slot on the member's serialized
// timeline. On the CPU path the assignments simply run back to back.
func (s *Scheduler) runGroup(group []assignment, dma bool) {
	if !dma {
		for _, a := range group {
			s.runBatch(a.ss, a.si, a.batch)
		}
		return
	}
	tickets := make([]*platform.LoadTicket, len(group))
	for i, a := range group {
		tk, err := a.ss.m.Sys.BeginExecuteOn(a.ss.ri, a.batch[0].task.Module())
		if err == nil {
			tickets[i] = tk
		}
		// On a Begin error the ticket stays nil and the run phase falls
		// back to the CPU path's ExecuteOn, which re-plans after the
		// demotion and reports whatever happens through the normal path.
	}
	for i, a := range group {
		s.runAssignment(a, tickets[i])
	}
}

func (s *Scheduler) runAssignment(a assignment, tk *platform.LoadTicket) {
	ss, si := a.ss, a.si
	sys := ss.m.Sys
	for bi, req := range a.batch {
		t := req.task
		var rep platform.ExecReport
		var err error
		if bi == 0 && tk != nil {
			rep, err = sys.FinishExecuteOn(tk, func() error { return t.Run(sys) })
		} else {
			// Batch riders behind the head (and Begin-error fallbacks) take
			// the ordinary load path — for riders a zero-stream cache hit.
			rep, err = sys.ExecuteOn(ss.ri, t.Module(), func() error { return t.Run(sys) })
		}
		res := Result{ID: req.id, Task: t.Name(), Module: t.Module(),
			Member: ss.m.ID, Region: ss.ri, System: sys.Name, Report: rep, Err: err}
		res.Seq = s.record(si, res)
		req.ch <- res
		s.wg.Done()
	}
	s.mu.Lock()
	ss.busy = false
	s.dispatchLocked()
	s.mu.Unlock()
}

// quarantineLocked takes a corruption-detected slot out of service and
// launches its background repair. The scrub already demoted the region
// through the §2.2 hazard gate, so the repair's reload streams a complete
// configuration that overwrites every span frame — healing the flip is a
// side effect of the same invariant that makes abort recovery safe.
// Called with s.mu held.
func (s *Scheduler) quarantineLocked(ss *slotState, module string) {
	st := &s.stats
	st.FaultsDetected++
	ss.quarantined = true
	ss.resident = ""
	// A prefetched-but-unconsumed guess sat in the corrupted region: its
	// bytes can never be consumed now, so they are waste — booked here,
	// exactly once, keeping the speculative conservation law intact.
	if ss.prefetched != "" {
		st.PrefetchWasted += uint64(ss.prefetchedBytes)
		ss.prefetched, ss.prefetchedBytes, ss.prefetchedTime = "", 0, 0
	}
	s.repairWG.Add(1)
	go s.runRepair(ss, module)
}

// runRepair restores a quarantined slot off the request path: reload the
// module the fault evicted (a complete stream, by the hazard gate), then
// return the slot to service warm. A blank region needs no stream — its
// next real load is complete by construction — so that repair is free.
func (s *Scheduler) runRepair(ss *slotState, module string) {
	defer s.repairWG.Done()
	var rep platform.ConfigReport
	var err error
	if module != "" {
		rep, err = ss.m.Sys.LoadModuleOn(ss.ri, module)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &s.stats
	st.Repairs++
	st.RepairBytes += uint64(rep.Bytes)
	st.RepairConfig += rep.Time
	ss.quarantined = false
	if module != "" && err == nil {
		ss.resident = module
	}
	// Requests that queued up behind the quarantine can go out now.
	s.dispatchLocked()
}

// ScrubAll runs one readback scrub pass over every idle slot — the
// periodic scrub loop a deployment would drive from a timer. Busy,
// speculating and quarantined slots are skipped (their members' locks are
// not free to take, and a demoted region has nothing to scrub); each
// detection quarantines the slot and launches its background repair.
// Returns how many corrupted slots the pass caught.
func (s *Scheduler) ScrubAll() int {
	s.mu.Lock()
	var targets []*slotState
	for _, ss := range s.slots {
		if ss.busy || ss.specBusy || ss.quarantined || ss.scrubbing || !s.memberQuiet(ss.m) {
			continue
		}
		targets = append(targets, ss)
	}
	// Mark after selecting: scrubbing flags make the member non-quiet, and
	// sibling regions of one quiet member should both be scrubbed this
	// pass (the passes serialize briefly on the member's lock).
	for _, ss := range targets {
		ss.scrubbing = true
	}
	s.mu.Unlock()
	detected := 0
	for _, ss := range targets {
		rep := ss.m.Sys.ScrubOn(ss.ri)
		s.mu.Lock()
		ss.scrubbing = false
		s.stats.ScrubPasses++
		if rep.Detected {
			detected++
			s.quarantineLocked(ss, rep.Module)
		}
		s.dispatchLocked()
		s.mu.Unlock()
	}
	return detected
}

func (s *Scheduler) record(si int, res Result) (seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &s.stats
	st.Done++
	seq = st.Done
	// Refresh the cached resident: a clean execution leaves its module
	// configured and verified; after an error the region's content is not
	// trustworthy, so the slot reads as blank (worst case, never unsafe —
	// the manager's own hazard gate still guards the streams).
	if res.Err == nil {
		s.slots[si].resident = res.Module
	} else {
		s.slots[si].resident = ""
	}
	st.Config += res.Report.Config
	st.Work += res.Report.Work
	st.BusyTime[si] += res.Report.Latency()
	st.BytesStreamed += uint64(res.Report.BytesStreamed)
	m := st.Modules[res.Module]
	m.Requests++
	m.Config += res.Report.Config
	m.Work += res.Report.Work
	m.Bytes += uint64(res.Report.BytesStreamed)
	switch res.Report.Kind {
	case plan.StreamDifferential:
		st.DiffLoads++
		m.Diffs++
	case plan.StreamComplete:
		st.CompleteLoads++
		m.Completes++
	case plan.StreamCompressed:
		st.CompressedLoads++
		m.Compressed++
	}
	if res.Report.DMA && res.Report.Kind != plan.StreamNone {
		st.DMALoads++
	}
	st.OverlapConfig += res.Report.ConfigHidden
	if res.Report.CacheHit {
		st.Hits++
		m.Hits++
	} else {
		st.Misses++
		m.Misses++
	}
	// Consume the slot's prefetched module: the first hit on it banks
	// the speculative stream time as hidden; a real load replacing it
	// books the speculative bytes as wasted.
	if ss := s.slots[si]; ss.prefetched != "" {
		switch {
		case res.Report.CacheHit && res.Module == ss.prefetched:
			st.PrefetchHits++
			st.PrefetchConsumed += uint64(ss.prefetchedBytes)
			st.HiddenConfig += ss.prefetchedTime
			ss.prefetched, ss.prefetchedBytes, ss.prefetchedTime = "", 0, 0
		case res.Report.Kind != plan.StreamNone:
			st.PrefetchWasted += uint64(ss.prefetchedBytes)
			ss.prefetched, ss.prefetchedBytes, ss.prefetchedTime = "", 0, 0
		}
	}
	if res.Err != nil {
		st.Errors++
		m.Errors++
	}
	st.Modules[res.Module] = m
	return seq
}
