// Package sched multiplexes a pool of dynamically reconfigurable platforms
// across competing task requests — the scheduling layer the paper's
// time-sharing methodology implies once more than one task (and more than
// one board) contends for the dynamic area.
//
// The pool's dynamic regions collectively form a bitstream cache keyed by
// module name: every (member, region) pair is one scheduling slot, so a
// dual-region board holds two residents and a request whose module is
// already resident on an idle slot runs there without any ICAP traffic (a
// cache hit) — even while a sibling region of the same board computes.
// Otherwise a pluggable placement policy chooses the miss victim among the
// idle slots — "lru" evicts the least-recently-dispatched, "mincost" the
// slot whose resident module minimizes the planned (differential-aware)
// configuration cost of the transition, "prefetch" mincost with an
// eviction penalty for modules the predictor expects back. Dispatch order
// is FIFO over schedulable requests; an optional batch window pulls up to
// Batch-1 queued requests for the same module forward so they ride a warm
// configuration, bounding how far any request can be overtaken.
//
// With Options.Prefetch the scheduler also overlaps reconfiguration with
// computation: whenever a slot goes idle, an online next-module predictor
// (internal/predict) and the regions' planners choose the cheapest
// speculative (resident → predicted) transition, and the stream is issued
// as a cancellable background load — including into an idle region whose
// sibling is mid-execution, the intra-device overlap multi-region
// floorplans add. A real request always wins: dispatching a different
// module to a speculating slot triggers its abort token, the stream parks
// at the next safe boundary, and the §2.2 hazard gate (per region)
// guarantees the partial region content is never executed against — a
// wrong guess wastes speculative bytes, never correctness.
//
// With Options.Shards > 1 the pool's members are partitioned into
// independently locked shards, each with its own run queue, slot set and
// placement state; requests are routed round-robin among the shards that
// can host their module, a shard whose queue drains steals queued work
// from its siblings (see shard.stealLocked), and the hot-path identity
// counters (submission ID, completion sequence, in-flight count) are
// atomics, so no pool-wide lock exists anywhere on the dispatch path. One
// shard reproduces the pre-shard scheduler's dispatch order byte for byte
// — the dispatch-order goldens pin that equivalence.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/platform"
	"repro/internal/pool"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/tasks"
	"repro/internal/trace"
)

// Options tunes the scheduler.
type Options struct {
	// Batch is the maximum number of same-module requests dispatched
	// consecutively to one slot ahead of strict FIFO order. 0 or 1
	// disables reordering entirely (pure FIFO).
	Batch int
	// Policy places cache-missing requests on idle slots. nil means LRU.
	// Policies must be stateless (all built-ins are): shards consult the
	// policy concurrently.
	Policy Policy
	// Prefetch enables speculative configuration of idle slots with the
	// predictor's next-module guesses.
	Prefetch bool
	// Predictor guides prefetching and fills Candidate.ReuseProb; it is
	// trained online from the arrival stream and shared by all shards
	// (implementations serialize internally). nil with Prefetch enabled
	// selects the default markov predictor.
	Predictor predict.Predictor
	// Scrub runs a readback-CRC scrub of the dispatched slot before each
	// batch executes. A detection quarantines the slot, requeues the batch
	// at the head of the queue, and launches a background repair; see
	// ScrubAll for the idle-slot scrub loop.
	Scrub bool
	// Shards partitions the pool's members into this many independently
	// locked scheduler shards (run queue + slot set + placement state),
	// with work stealing between them. 0 or 1 keeps the whole pool under
	// one shard — bitwise-identical to the pre-shard scheduler; the
	// dispatch-order goldens pin that equivalence. Clamped to the member
	// count (a member's sibling regions are never split across shards).
	Shards int
	// DMA issues miss streams through each region dock's DMA engine
	// instead of CPU stores: every assignment of one dispatch round to the
	// same member opens its port window before any of them settles, so
	// sibling regions' configurations overlap in simulated time — the
	// overlapped part is reported per request as ConfigHidden and summed
	// into Stats.OverlapConfig. Ignored while Scrub is set (the
	// scrub-on-dispatch pass needs the CPU path's pre-execution check).
	DMA bool
	// Trace records the run's event stream: submit/dispatch/steal/
	// config/compute/complete spans plus prefetch, scrub, quarantine and
	// repair events, all stamped with simulated time. New threads it
	// through every member's platform layer too (plan decisions, hazard
	// verdicts, demotions, DMA windows). nil (the default) disables
	// tracing entirely — the hot path then constructs no events at all.
	Trace *trace.Tracer
}

// Result is the outcome of one scheduled request.
type Result struct {
	ID     uint64 // submission order, 1-based
	Seq    uint64 // completion order across the pool, 1-based
	Task   string
	Module string
	Member int
	Region int // region index within the member
	System string
	Report platform.ExecReport
	Err    error

	// Open-loop accounting — all zero unless the request was submitted
	// through SubmitAt. Times are on the pool-wide simulated wall clock:
	// the request arrives at Arrival, starts when its member's timeline
	// frees up (Start), and finishes at DoneAt; Sojourn = DoneAt - Arrival
	// is queue wait plus service, the latency an open-loop client sees.
	Arrival sim.Time
	Start   sim.Time
	DoneAt  sim.Time
	Sojourn sim.Time
}

// Latency is the simulated time the request occupied its slot
// (reconfiguration plus work).
func (r Result) Latency() sim.Time { return r.Report.Latency() }

// ModuleStats aggregates per-module outcomes.
type ModuleStats struct {
	Requests uint64
	Hits     uint64
	Misses   uint64
	Config   sim.Time
	Work     sim.Time
	Errors   uint64
	// Bytes counts configuration bytes streamed for this module's
	// requests; Diffs, Completes and Compressed split its misses by
	// stream kind.
	Bytes      uint64
	Diffs      uint64
	Completes  uint64
	Compressed uint64
}

// add merges another module's worth of counters into m.
func (m *ModuleStats) add(o ModuleStats) {
	m.Requests += o.Requests
	m.Hits += o.Hits
	m.Misses += o.Misses
	m.Config += o.Config
	m.Work += o.Work
	m.Errors += o.Errors
	m.Bytes += o.Bytes
	m.Diffs += o.Diffs
	m.Completes += o.Completes
	m.Compressed += o.Compressed
}

// SlotID names one scheduling slot: a member and a region index inside it.
type SlotID struct {
	Member int
	Region int
}

// Stats aggregates scheduler-wide outcomes.
type Stats struct {
	Requests uint64 // submitted
	Done     uint64 // completed (including errors)
	Hits     uint64
	Misses   uint64
	Config   sim.Time // total simulated reconfiguration time
	Work     sim.Time // total simulated work time
	Errors   uint64
	Modules  map[string]ModuleStats
	// Slots names each scheduling slot; BusyTime is the slot's simulated
	// busy time (config+work), indexed alike. Pool order (member, region)
	// regardless of how the slots are sharded.
	Slots    []SlotID
	BusyTime []sim.Time
	// BytesStreamed counts all configuration bytes through the pool's
	// configuration ports on the request path (wire bytes — a compressed
	// container counts its wire size, matching the members' own
	// StreamedBytes counters); DiffLoads, CompleteLoads and
	// CompressedLoads split the misses by the stream kind the planner
	// chose.
	BytesStreamed   uint64
	DiffLoads       uint64
	CompleteLoads   uint64
	CompressedLoads uint64

	// DMA accounting — zero unless Options.DMA is enabled. DMALoads counts
	// request-path streams issued through dock DMA engines; OverlapConfig
	// is the part of their port windows that overlapped sibling loads,
	// dispatch or work — configuration time that never showed up as
	// request latency (Config counts only the visible remainder).
	DMALoads      uint64
	OverlapConfig sim.Time

	// Sharded-dispatch accounting — zero with a single shard. Steals
	// counts successful cross-shard steal operations (a drained shard
	// pulling queued work from a sibling); StolenRequests the requests
	// moved. A stolen request completes on the thief shard and is booked
	// there — no counter is ever double-counted by a steal, so every
	// conservation law below holds shard by shard and in the aggregate.
	Steals         uint64
	StolenRequests uint64

	// Prefetch accounting — all zero unless Options.Prefetch is enabled.
	// Config above counts only visible (request-path) configuration time;
	// speculative streams live here.
	PrefetchIssued    uint64 // speculative loads launched
	PrefetchLoads     uint64 // speculative streams that reached an ICAP
	PrefetchCompleted uint64 // speculative streams that ran to completion
	PrefetchAborted   uint64 // speculative streams aborted or failed
	PrefetchHits      uint64 // requests served by a prefetched resident
	PrefetchBytes     uint64 // bytes streamed speculatively
	// Every speculative byte ends in exactly one of three places: consumed
	// by a prefetch hit (PrefetchConsumed), booked as waste when its guess
	// was aborted or overwritten unconsumed (PrefetchWasted), or still
	// sitting resident awaiting a request (PrefetchBytes minus the other
	// two). An abort books its partial bytes as waste exactly once — the
	// regression tests pin this against abort-then-retry on one region.
	PrefetchConsumed uint64
	PrefetchWasted   uint64
	// PrefetchPending is the byte total of completed speculative streams
	// still sitting resident unconsumed, summed from the slots when Stats
	// is taken. Conservation holds at every quiesced point:
	//   PrefetchBytes == PrefetchConsumed + PrefetchWasted + PrefetchPending
	// (between a stream's completion and its accounting the left side
	// briefly leads). TestSpeculativeByteConservation pins the equality.
	PrefetchPending uint64
	// HiddenConfig is the speculative configuration time later consumed by
	// prefetch hits — time the pipeline moved off the request critical
	// path; PrefetchConfig is all speculative configuration time. A
	// request riding an in-flight stream credits the full stream time, so
	// under continuous arrivals HiddenConfig is an upper bound on the
	// truly overlapped time: the rider's wait for the stream remainder is
	// queue-wait, which the per-member simulated-time model does not
	// measure anywhere (waiting for a busy member is likewise uncounted).
	HiddenConfig   sim.Time
	PrefetchConfig sim.Time

	// Fault/scrub accounting — all zero unless faults are injected and a
	// scrub (Options.Scrub or ScrubAll) looks. Every detection quarantines
	// its slot and every quarantine resolves in exactly one repair, so
	// FaultsDetected == Repairs at every quiesced point — the fault
	// counterpart of the speculative-byte conservation law. Requeues
	// counts requests bounced off a corrupted slot back to the queue head;
	// each is re-dispatched and completes (and is counted in Done) like
	// any other request.
	ScrubPasses    uint64 // readback scrub passes run by the scheduler
	FaultsDetected uint64 // scrubs that caught a corrupted slot
	Requeues       uint64 // requests requeued off quarantined slots
	Repairs        uint64 // quarantined slots returned to service
	RepairBytes    uint64 // bytes streamed by background repairs
	// RepairConfig is the simulated configuration time of background
	// repairs — off the request path, so not part of Config (a repair
	// overlaps request service elsewhere in the pool; a request hitting
	// the repaired slot later pays nothing, like a prefetch hit).
	RepairConfig sim.Time
}

// addScalars sums another stats block's scalar counters (everything except
// Requests/Done, which are scheduler-level atomics, and Slots/BusyTime,
// which Stats() stitches in pool order) into s.
func (s *Stats) addScalars(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Config += o.Config
	s.Work += o.Work
	s.Errors += o.Errors
	s.BytesStreamed += o.BytesStreamed
	s.DiffLoads += o.DiffLoads
	s.CompleteLoads += o.CompleteLoads
	s.CompressedLoads += o.CompressedLoads
	s.DMALoads += o.DMALoads
	s.OverlapConfig += o.OverlapConfig
	s.Steals += o.Steals
	s.StolenRequests += o.StolenRequests
	s.PrefetchIssued += o.PrefetchIssued
	s.PrefetchLoads += o.PrefetchLoads
	s.PrefetchCompleted += o.PrefetchCompleted
	s.PrefetchAborted += o.PrefetchAborted
	s.PrefetchHits += o.PrefetchHits
	s.PrefetchBytes += o.PrefetchBytes
	s.PrefetchConsumed += o.PrefetchConsumed
	s.PrefetchWasted += o.PrefetchWasted
	s.PrefetchPending += o.PrefetchPending
	s.HiddenConfig += o.HiddenConfig
	s.PrefetchConfig += o.PrefetchConfig
	s.ScrubPasses += o.ScrubPasses
	s.FaultsDetected += o.FaultsDetected
	s.Requeues += o.Requeues
	s.Repairs += o.Repairs
	s.RepairBytes += o.RepairBytes
	s.RepairConfig += o.RepairConfig
	for k, v := range o.Modules {
		m := s.Modules[k]
		m.add(v)
		s.Modules[k] = m
	}
}

// HitRate returns the bitstream-cache hit fraction of executed requests
// (submit-rejected requests never touch the cache and are excluded).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// request is one queued task.
type request struct {
	id   uint64
	task tasks.Runner
	ch   chan Result
	// arrival stamps the request's open-loop simulated arrival time;
	// openLoop marks requests submitted through SubmitAt, whose record
	// computes the wall-clock sojourn overlay.
	arrival  sim.Time
	openLoop bool
}

// abortToken cancels one speculative load; the loader polls it at safe
// stream boundaries.
type abortToken struct{ flag atomic.Bool }

func (a *abortToken) trigger()      { a.flag.Store(true) }
func (a *abortToken) aborted() bool { return a.flag.Load() }

// slotState is one scheduling slot: a (member, region) pair. Sibling
// slots of one member have independent residents and speculation state but
// share the member's serialized simulated timeline. A slot belongs to
// exactly one shard for the scheduler's lifetime; all mutable fields are
// guarded by that shard's mu.
type slotState struct {
	m  *pool.Member
	ri int // region index within the member
	// busy marks a slot with a dispatched batch in flight.
	busy bool
	// resident caches the slot's authoritative resident module as of the
	// last scheduler-driven action (batch execution or speculative
	// completion; "" after an abort, an error, or at boot). The scheduler
	// owns the pool, so nothing else can move a region's resident state —
	// and the dispatcher must never touch the member's own lock while
	// holding the shard lock: a sibling region mid-execution holds
	// that lock for its whole simulated run, which would stall dispatch
	// to every other board of the shard.
	resident string
	// lastModule is the module of the most recent dispatch — the resident
	// module a busy slot converges to, read without touching its lock.
	lastModule string
	// lastUsed is the dispatch tick of the most recent assignment; the
	// idle slot with the smallest tick is the LRU eviction victim.
	lastUsed uint64

	// specBusy marks an in-flight speculative load of specModule;
	// specAbort is its cancellation token. A real dispatch of a different
	// module to THIS slot triggers the token and proceeds — a dispatch to
	// a sibling region leaves the stream running, and Execute serializes
	// behind it on the member's own lock.
	specBusy   bool
	specModule string
	specAbort  *abortToken
	// specHitPending marks a dispatch that is riding the in-flight
	// speculative stream (same module): when the stream completes it is
	// credited as a prefetch hit there and then, since the request's own
	// record may run before the speculative goroutine's.
	specHitPending bool
	// prefetched names the last completed, still unconsumed speculative
	// load, with the stream bytes/time it paid off the request path. The
	// first request hitting it converts prefetchedTime into HiddenConfig
	// and the bytes into PrefetchConsumed; a real load overwriting it
	// books prefetchedBytes as wasted.
	prefetched      string
	prefetchedBytes int
	prefetchedTime  sim.Time

	// quarantined takes the slot out of service after a scrub detected
	// corruption: never picked, never speculated into, until its
	// background repair (runRepair) completes and clears it.
	quarantined bool
	// scrubbing marks a slot mid readback scrub (ScrubAll runs the pass
	// outside the shard lock); treated like busy by pick, prefetch
	// and Drained.
	scrubbing bool
}

// residentView is the slot's resident module as the dispatcher sees it:
// the last dispatched module while busy (a busy slot converges to it —
// including when the dispatch just aborted a speculation, whose doomed
// guess must not be reported), else the speculative target while a stream
// is in flight (it either completes into exactly that state or the
// dispatch that invalidates it aborts it), else the cached resident.
// Never takes the member's lock — see slotState.resident.
func (ss *slotState) residentView() string {
	switch {
	case ss.busy:
		return ss.lastModule
	case ss.specBusy:
		return ss.specModule
	default:
		return ss.resident
	}
}

func (ss *slotState) supports(module string) bool {
	return ss.m.Sys.SupportsOn(ss.ri, module)
}

// slotRef addresses one slot globally: which shard holds it and at which
// shard-local index. Scheduler.Stats uses the refs to stitch the
// per-shard Slots/BusyTime slices back into pool order.
type slotRef struct {
	shard int
	idx   int
}

// Scheduler dispatches task requests onto a pool's (member, region) slots,
// partitioned into one or more independently locked shards.
type Scheduler struct {
	opts Options
	// planAware: the policy reads Candidate.Plan, so pickLocked must fill
	// it (the first fill per transition assembles the differential — a
	// one-time cost under the shard lock; later fills are memoized).
	planAware bool

	shards    []*shard
	slotOrder []slotRef
	// clock is the pool-wide simulated wall clock: every open-loop
	// completion advances it to the request's simulated finish time.
	clock sim.WallClock

	// Lock-free hot-path counters. nextID hands out submission IDs, done
	// the pool-wide completion sequence, requests the submission count,
	// inflight the accepted-but-undelivered count (Drained's fast path);
	// rr rotates the round-robin router. None of them ever takes a lock,
	// so shards never serialize on shared identity state.
	rr       atomic.Uint64
	nextID   atomic.Uint64
	requests atomic.Uint64
	done     atomic.Uint64
	inflight atomic.Int64
	// stopped (set by Wait, cleared by Submit) keeps a drained scheduler
	// from speculating into the void after the last result is delivered.
	stopped atomic.Bool

	wg sync.WaitGroup
	// specWG tracks speculative load goroutines; repairWG background
	// repair goroutines of quarantined slots.
	specWG   sync.WaitGroup
	repairWG sync.WaitGroup
}

// New returns a scheduler over the pool. The pool must not be driven by
// anyone else while the scheduler owns it.
func New(p *pool.Pool, opts Options) *Scheduler {
	if opts.Batch < 1 {
		opts.Batch = 1
	}
	if opts.Policy == nil {
		opts.Policy = lruPolicy{}
	}
	if opts.Prefetch && opts.Predictor == nil {
		opts.Predictor, _ = predict.New("")
	}
	s := &Scheduler{opts: opts}
	if pa, ok := opts.Policy.(interface{ NeedsPlan() bool }); ok {
		s.planAware = pa.NeedsPlan()
	}
	groups := p.Partition(opts.Shards)
	memberShard := make(map[int]int) // member ID -> shard index
	memberBase := make(map[int]int)  // member ID -> first shard-local slot
	s.shards = make([]*shard, len(groups))
	for i, g := range groups {
		sh := &shard{sc: s, id: i, freeAt: make(map[*pool.Member]sim.Time)}
		sh.stats.Modules = make(map[string]ModuleStats)
		for _, m := range g {
			memberShard[m.ID] = i
			memberBase[m.ID] = len(sh.slots)
			for ri := 0; ri < m.Sys.NumRegions(); ri++ {
				sh.slots = append(sh.slots, &slotState{m: m, ri: ri})
				sh.stats.Slots = append(sh.stats.Slots, SlotID{Member: m.ID, Region: ri})
			}
		}
		sh.stats.BusyTime = make([]sim.Time, len(sh.slots))
		s.shards[i] = sh
	}
	if opts.Trace != nil {
		// Thread the tracer through every member's platform layer, so
		// plan/hazard/demote/DMA-window events land in the same stream as
		// the scheduler's own spans.
		for _, m := range p.Members() {
			m.Sys.SetTracer(opts.Trace, m.ID)
		}
	}
	// Global slot order = pool order (member ID, region) — exactly the
	// pre-shard flattening, so Stats' Slots/BusyTime layout is unchanged
	// under any shard count.
	for _, m := range p.Members() {
		for ri := 0; ri < m.Sys.NumRegions(); ri++ {
			s.slotOrder = append(s.slotOrder,
				slotRef{shard: memberShard[m.ID], idx: memberBase[m.ID] + ri})
		}
	}
	return s
}

// Shards reports how many shards the scheduler dispatches over.
func (s *Scheduler) Shards() int { return len(s.shards) }

// Clock returns the pool-wide simulated wall clock: the maximum DoneAt of
// any completed open-loop request so far. Zero until SubmitAt is used.
func (s *Scheduler) Clock() sim.Time { return s.clock.Now() }

// route picks the target shard for a module: round-robin among the shards
// with a slot that can host it, so independent submitters spread across
// the pool. Falls back to the rotation's first shard when nothing supports
// the module (submitLocked fails the request there).
func (s *Scheduler) route(module string) *shard {
	n := len(s.shards)
	if n == 1 {
		return s.shards[0]
	}
	start := int(s.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		sh := s.shards[(start+i)%n]
		if sh.supportsModule(module) {
			return sh
		}
	}
	return s.shards[start]
}

// Submit queues a task request and returns a channel that delivers its
// Result exactly once. A request whose module no slot supports fails
// immediately.
func (s *Scheduler) Submit(t tasks.Runner) <-chan Result {
	return s.submit(t, 0, false)
}

// SubmitAt queues a task request stamped with its open-loop simulated
// arrival time. The result additionally carries the wall-clock overlay
// (Arrival/Start/DoneAt/Sojourn): the request starts when it has both
// arrived and found its member's timeline free, so sojourn measures queue
// wait plus service — the open-loop latency dimension the per-member
// simulated-time model cannot see. Arrival times should be non-decreasing
// per submitter, as a real request stream's are.
func (s *Scheduler) SubmitAt(t tasks.Runner, arrival sim.Time) <-chan Result {
	return s.submit(t, arrival, true)
}

func (s *Scheduler) submit(t tasks.Runner, arrival sim.Time, openLoop bool) <-chan Result {
	sh := s.route(t.Module())
	sh.mu.Lock()
	ch := sh.submitLocked(t, arrival, openLoop)
	sh.dispatchLocked()
	sh.mu.Unlock()
	return ch
}

// SubmitBatch queues a group of requests and dispatches them in ONE round:
// the placement of every request sees the whole group, so a round-aware
// policy ("gang") can co-locate two misses on sibling regions of one
// member, where DMA mode overlaps their configurations. Submitting the
// same requests one by one reaches the same slots only when wall-clock
// timing cooperates; the batch makes the pairing deterministic. Under
// sharding the whole batch lands on one shard (so the gang pairing
// survives); only requests that shard cannot host are routed away.
func (s *Scheduler) SubmitBatch(ts []tasks.Runner) []<-chan Result {
	out := make([]<-chan Result, len(ts))
	if len(ts) == 0 {
		return out
	}
	n := len(s.shards)
	primary := s.shards[int(s.rr.Add(1)-1)%n]
	var order []*shard
	byShard := make(map[*shard][]int, 1)
	for i, t := range ts {
		sh := primary
		if n > 1 && !sh.supportsModule(t.Module()) {
			sh = s.route(t.Module())
		}
		if _, ok := byShard[sh]; !ok {
			order = append(order, sh)
		}
		byShard[sh] = append(byShard[sh], i)
	}
	for _, sh := range order {
		sh.mu.Lock()
		for _, i := range byShard[sh] {
			out[i] = sh.submitLocked(ts[i], 0, false)
		}
		sh.dispatchLocked()
		sh.mu.Unlock()
	}
	return out
}

// SubmitAll queues a whole workload and returns the result channels in
// submission order.
func (s *Scheduler) SubmitAll(ts []tasks.Runner) []<-chan Result {
	out := make([]<-chan Result, len(ts))
	for i, t := range ts {
		out[i] = s.Submit(t)
	}
	return out
}

// SubmitWindowed drives a workload closed-loop: at most window requests
// are outstanding, and onResult sees each completed result in submission
// order before the next request is submitted (window < 1 is treated as
// fully sequential). Callers model think time — e.g. waiting for
// Drained() — inside onResult.
func (s *Scheduler) SubmitWindowed(ts []tasks.Runner, window int, onResult func(Result)) {
	if window < 1 {
		window = 1
	}
	var inflight []<-chan Result
	for _, t := range ts {
		if len(inflight) == window {
			onResult(<-inflight[0])
			inflight = inflight[1:]
		}
		inflight = append(inflight, s.Submit(t))
	}
	for _, ch := range inflight {
		onResult(<-ch)
	}
}

// Wait blocks until every submitted request has completed and all
// speculative activity has quiesced: in-flight speculative streams are
// aborted (nothing is coming that could consume them) and their goroutines
// joined, so Stats() is stable and the pool is untouched afterwards.
func (s *Scheduler) Wait() {
	s.wg.Wait()
	s.stopped.Store(true)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, ss := range sh.slots {
			if ss.specBusy {
				ss.specAbort.trigger()
			}
		}
		sh.mu.Unlock()
	}
	s.specWG.Wait()
	s.repairWG.Wait()
}

// Drained reports whether the scheduler is fully settled: no accepted
// request undelivered, no slot executing, and no speculative stream in
// flight. Closed-loop drivers that need reproducible runs poll it between
// arrivals — a delivered Result precedes the slot's release and the
// tail dispatch that may issue new speculation, so observing counters
// alone can race with both. The in-flight fast path is atomic; the
// per-shard slot scan takes each shard's lock in turn.
func (s *Scheduler) Drained() bool {
	if s.inflight.Load() > 0 {
		return false
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		ok := len(sh.pending) == 0
		if ok {
			for _, ss := range sh.slots {
				if ss.busy || ss.specBusy || ss.quarantined || ss.scrubbing {
					ok = false
					break
				}
			}
		}
		sh.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// Stats returns a copy of the aggregate counters: the atomic identity
// counters, the per-shard counter blocks summed, and Slots/BusyTime
// stitched back into pool (member, region) order.
func (s *Scheduler) Stats() Stats {
	agg := Stats{Modules: make(map[string]ModuleStats)}
	per := make([]Stats, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		st := sh.stats
		st.Modules = make(map[string]ModuleStats, len(sh.stats.Modules))
		for k, v := range sh.stats.Modules {
			st.Modules[k] = v
		}
		st.Slots = append([]SlotID(nil), sh.stats.Slots...)
		st.BusyTime = append([]sim.Time(nil), sh.stats.BusyTime...)
		for _, ss := range sh.slots {
			st.PrefetchPending += uint64(ss.prefetchedBytes)
		}
		sh.mu.Unlock()
		per[i] = st
		agg.addScalars(st)
	}
	agg.Requests = s.requests.Load()
	agg.Done = s.done.Load()
	for _, ref := range s.slotOrder {
		agg.Slots = append(agg.Slots, per[ref.shard].Slots[ref.idx])
		agg.BusyTime = append(agg.BusyTime, per[ref.shard].BusyTime[ref.idx])
	}
	return agg
}

// ScrubAll runs one readback scrub pass over every idle slot — the
// periodic scrub loop a deployment would drive from a timer. Busy,
// speculating and quarantined slots are skipped (their members' locks are
// not free to take, and a demoted region has nothing to scrub); each
// detection quarantines the slot and launches its background repair.
// Returns how many corrupted slots the pass caught.
func (s *Scheduler) ScrubAll() int {
	detected := 0
	for _, sh := range s.shards {
		detected += sh.scrubAll()
	}
	return detected
}

// supported reports whether any slot of any shard can host the module.
// Structural (lock-free), like shard.supportsModule.
func (s *Scheduler) supported(module string) bool {
	for _, sh := range s.shards {
		if sh.supportsModule(module) {
			return true
		}
	}
	return false
}

func errUnsupported(module string) error {
	return fmt.Errorf("sched: no slot supports module %q", module)
}
