package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tasks"
)

// MixItem weights one task type in a generated workload.
type MixItem struct {
	Task   string
	Weight int
}

// TaskNames lists the task types GenWorkload can produce.
func TaskNames() []string {
	return []string{"sha1", "jenkins", "patternmatch", "brightness", "blend", "fade", "transfer"}
}

// ParseMix parses "jenkins=3,fade=1" into weighted mix items. A bare name
// gets weight 1.
func ParseMix(spec string) ([]MixItem, error) {
	known := make(map[string]bool)
	for _, n := range TaskNames() {
		known[n] = true
	}
	var mix []MixItem
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, ws, has := strings.Cut(part, "=")
		w := 1
		if has {
			var err error
			if w, err = strconv.Atoi(ws); err != nil || w < 1 {
				return nil, fmt.Errorf("sched: bad weight in mix item %q", part)
			}
		}
		if !known[name] {
			return nil, fmt.Errorf("sched: unknown task %q (have %s)", name, strings.Join(TaskNames(), ", "))
		}
		mix = append(mix, MixItem{Task: name, Weight: w})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("sched: empty workload mix %q", spec)
	}
	sort.SliceStable(mix, func(i, j int) bool { return mix[i].Task < mix[j].Task })
	return mix, nil
}

// GenWorkload draws n task requests from the weighted mix with a seeded
// generator: the same (seed, n, mix) always yields the same workload.
// Payload sizes are kept small — the point of a scheduler workload is
// contention for the dynamic area, not long kernels.
func GenWorkload(seed int64, n int, mix []MixItem) ([]tasks.Runner, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: workload size %d", n)
	}
	total := 0
	for _, m := range mix {
		total += m.Weight
	}
	if total == 0 {
		return nil, fmt.Errorf("sched: zero-weight mix")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]tasks.Runner, 0, n)
	for i := 0; i < n; i++ {
		pick := rng.Intn(total)
		var name string
		for _, m := range mix {
			if pick < m.Weight {
				name = m.Task
				break
			}
			pick -= m.Weight
		}
		r, err := makeRunner(name, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// makeRunner builds one small-payload runner of the named type.
func makeRunner(name string, rng *rand.Rand) (tasks.Runner, error) {
	seed := rng.Int63()
	switch name {
	case "sha1":
		return tasks.SHA1Run{Seed: seed, Len: 64 + rng.Intn(512)}, nil
	case "jenkins":
		return tasks.JenkinsRun{Seed: seed, Len: 64 + rng.Intn(1024), InitVal: rng.Uint32()}, nil
	case "patternmatch":
		return tasks.PatternRun{Seed: seed, W: 32, H: 16 + 8*rng.Intn(3), Threshold: 56}, nil
	case "brightness":
		return tasks.BrightnessRun{Seed: seed, N: 256 + 8*rng.Intn(64), Delta: rng.Intn(101) - 50}, nil
	case "blend":
		return tasks.BlendRun{Seed: seed, N: 256 + 8*rng.Intn(64)}, nil
	case "fade":
		return tasks.FadeRun{Seed: seed, N: 256 + 8*rng.Intn(64), F: rng.Intn(257)}, nil
	case "transfer":
		return tasks.TransferRun{Kind: tasks.TransferKind(rng.Intn(3)), Words: 64 + rng.Intn(192)}, nil
	}
	return nil, fmt.Errorf("sched: unknown task %q", name)
}
