package sched

import (
	"testing"

	"repro/internal/tasks"
)

// pairWorkload is the deterministic paired drive: rounds of two distinct
// cold modules submitted as one batch against a quiesced scheduler, so the
// gang policy's pairing decision is reproducible.
func pairWorkload(rounds int) [][]tasks.Runner {
	out := make([][]tasks.Runner, 0, rounds)
	a := []tasks.Runner{
		tasks.JenkinsRun{Seed: 1, Len: 256, InitVal: 1},
		tasks.BrightnessRun{Seed: 2, N: 256, Delta: 9},
		tasks.PatternRun{Seed: 3, W: 32, H: 16, Threshold: 56},
	}
	b := []tasks.Runner{
		tasks.FadeRun{Seed: 4, N: 256, F: 33},
		tasks.BlendRun{Seed: 5, N: 256},
		tasks.SHA1Run{Seed: 6, Len: 128},
	}
	for i := 0; i < rounds; i++ {
		out = append(out, []tasks.Runner{a[i%len(a)], b[(i+1)%len(b)]})
	}
	return out
}

func runPaired(t *testing.T, s *Scheduler, rounds int) {
	t.Helper()
	for _, pair := range pairWorkload(rounds) {
		for _, r := range collect(t, s.SubmitBatch(pair)) {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Task, r.Err)
			}
		}
		quiesce(t, s)
	}
	s.Wait()
}

// TestDMAGangOverlap: in DMA mode with the gang policy, a batch of two
// cold misses lands on sibling regions of one member, their port windows
// open together, and the overlapped configuration shows up as
// OverlapConfig instead of request latency.
func TestDMAGangOverlap(t *testing.T) {
	p := pool64x2(t, 2)
	gang, err := PolicyByName("gang")
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Options{DMA: true, Policy: gang})
	pair := pairWorkload(1)[0]
	res := collect(t, s.SubmitBatch(pair))
	s.Wait()
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("errors: %v / %v", res[0].Err, res[1].Err)
	}
	if res[0].Member != res[1].Member || res[0].Region == res[1].Region {
		t.Fatalf("gang did not pair sibling regions: (%d,%d) and (%d,%d)",
			res[0].Member, res[0].Region, res[1].Member, res[1].Region)
	}
	st := s.Stats()
	if st.DMALoads != 2 {
		t.Errorf("DMALoads = %d, want 2", st.DMALoads)
	}
	if st.OverlapConfig == 0 {
		t.Errorf("no overlapped configuration time: %+v / %+v", res[0].Report, res[1].Report)
	}
	// The overlapped window part never shows up as visible config time.
	total := res[0].Report.Config + res[0].Report.ConfigHidden +
		res[1].Report.Config + res[1].Report.ConfigHidden
	if st.Config+st.OverlapConfig != total {
		t.Errorf("Config %v + OverlapConfig %v != window total %v", st.Config, st.OverlapConfig, total)
	}
}

// TestDMAByteConservation: wire bytes booked by the scheduler equal the
// bytes the members' own configuration-port counters saw, DMA or not —
// the accounting law the CPU path already obeys.
func TestDMAByteConservation(t *testing.T) {
	for _, dma := range []bool{false, true} {
		p := pool64x2(t, 2)
		gang, _ := PolicyByName("gang")
		s := New(p, Options{DMA: dma, Policy: gang})
		runPaired(t, s, 6)
		st := s.Stats()
		var member uint64
		for _, m := range p.Members() {
			member += m.Sys.Status().StreamedBytes
		}
		if st.BytesStreamed != member {
			t.Errorf("dma=%v: scheduler booked %d B, members streamed %d B", dma, st.BytesStreamed, member)
		}
		if dma && st.DMALoads == 0 {
			t.Error("no DMA loads in DMA mode")
		}
		if !dma && (st.DMALoads != 0 || st.OverlapConfig != 0) {
			t.Errorf("CPU mode booked DMA counters: %d loads, %v overlap", st.DMALoads, st.OverlapConfig)
		}
	}
}

// TestDMADeterministic: two fresh pools driven by the identical paired
// workload produce identical aggregate statistics — the property the S8
// benchmark rows rely on.
func TestDMADeterministic(t *testing.T) {
	run := func() Stats {
		p := pool64x2(t, 2)
		p.SetCompression(true)
		gang, _ := PolicyByName("gang")
		s := New(p, Options{DMA: true, Policy: gang, Batch: 2})
		runPaired(t, s, 8)
		return s.Stats()
	}
	a, b := run(), run()
	if a.Config != b.Config || a.Work != b.Work || a.BytesStreamed != b.BytesStreamed ||
		a.OverlapConfig != b.OverlapConfig || a.Hits != b.Hits || a.Misses != b.Misses ||
		a.DMALoads != b.DMALoads || a.CompressedLoads != b.CompressedLoads {
		t.Errorf("runs diverged:\n%+v\n%+v", a, b)
	}
	if a.CompressedLoads == 0 {
		t.Error("compression on but no compressed loads")
	}
	if a.Errors != 0 {
		t.Errorf("errors: %d", a.Errors)
	}
}

// TestDMAPairFasterThanSerial: under identical gang placement, turning on
// DMA moves the overlapped part of each pair's configuration off the
// visible path — same bytes, less visible config time. This is the
// wall-clock win S8 measures, reproduced at test scale.
func TestDMAPairFasterThanSerial(t *testing.T) {
	run := func(dma bool) Stats {
		p := pool64x2(t, 2)
		gang, _ := PolicyByName("gang")
		s := New(p, Options{DMA: dma, Policy: gang})
		runPaired(t, s, 6)
		return s.Stats()
	}
	serial, overlapped := run(false), run(true)
	if got, want := overlapped.BytesStreamed, serial.BytesStreamed; got != want {
		t.Fatalf("placement diverged: %d B streamed with DMA, %d without", got, want)
	}
	if overlapped.Config >= serial.Config {
		t.Errorf("visible config with DMA %v not below CPU path %v "+
			"(overlap %v)", overlapped.Config, serial.Config, overlapped.OverlapConfig)
	}
	if overlapped.OverlapConfig == 0 {
		t.Error("no overlapped configuration time")
	}
}
