package sched

import (
	"testing"
	"time"

	"repro/internal/predict"
	"repro/internal/tasks"
)

// TestScrubQuarantineRepairReturnsSlotToService drives the idle-slot fault
// loop end to end: a fault injected into a warm slot is caught by a
// ScrubAll pass, the slot is quarantined and repaired in the background
// (reloading the module the fault evicted), and the next request for that
// module finds the repaired slot warm again — a cache hit, as if the fault
// never happened.
func TestScrubQuarantineRepairReturnsSlotToService(t *testing.T) {
	p := pool64x2(t, 1)
	s := New(p, Options{})
	r := <-s.Submit(tasks.JenkinsRun{Seed: 1, Len: 256, InitVal: 3})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	quiesce(t, s)
	if err := p.Members()[0].Sys.InjectFaultOn(r.Region, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if n := s.ScrubAll(); n != 1 {
		t.Fatalf("ScrubAll detected %d corrupted slots, want 1", n)
	}
	quiesce(t, s) // waits out the background repair (Drained covers quarantines)
	st := s.Stats()
	if st.FaultsDetected != 1 || st.Repairs != 1 {
		t.Fatalf("detected %d / repaired %d, want 1 / 1", st.FaultsDetected, st.Repairs)
	}
	if st.RepairBytes == 0 || st.RepairConfig == 0 {
		t.Fatalf("repair streamed %d B in %v, want a real complete reload", st.RepairBytes, st.RepairConfig)
	}
	if st.ScrubPasses < 2 {
		t.Fatalf("scrub passes %d, want both slots scrubbed", st.ScrubPasses)
	}
	// The repair restored the evicted module: same request, zero streams.
	r2 := <-s.Submit(tasks.JenkinsRun{Seed: 2, Len: 256, InitVal: 3})
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if !r2.Report.CacheHit || r2.Region != r.Region {
		t.Fatalf("post-repair request got %+v on region %d, want cache hit on repaired region %d",
			r2.Report, r2.Region, r.Region)
	}
	s.Wait()
	for _, m := range p.Snapshot() {
		if m.Corrupted {
			t.Fatal("static design corrupted")
		}
	}
}

// TestFaultRequeueOnDispatchScrub pins the in-flight half of the loop:
// with Options.Scrub the dispatch-time scrub catches a fault on the very
// slot a request was placed on (a cache hit on the corrupted resident),
// requeues the request, and dispatch serves it from a healthy slot while
// the faulted one repairs in the background. The request completes
// cleanly — the fault cost a requeue and a stream, never correctness.
func TestFaultRequeueOnDispatchScrub(t *testing.T) {
	p := pool64x2(t, 1)
	s := New(p, Options{Scrub: true})
	warm := <-s.Submit(tasks.JenkinsRun{Seed: 1, Len: 256, InitVal: 3})
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	quiesce(t, s)
	other := <-s.Submit(tasks.FadeRun{Seed: 2, N: 256, F: 9})
	if other.Err != nil {
		t.Fatal(other.Err)
	}
	quiesce(t, s)
	if warm.Region == other.Region {
		t.Fatalf("warmup landed both modules on region %d", warm.Region)
	}
	if err := p.Members()[0].Sys.InjectFaultOn(warm.Region, 1, 1, 7); err != nil {
		t.Fatal(err)
	}
	// The jenkins request is dispatched to its (corrupted) resident slot;
	// the dispatch scrub bounces it to the fade slot.
	r := <-s.Submit(tasks.JenkinsRun{Seed: 3, Len: 256, InitVal: 3})
	if r.Err != nil {
		t.Fatalf("requeued request failed: %v", r.Err)
	}
	if r.Region != other.Region || r.Report.CacheHit {
		t.Fatalf("requeued request ran on region %d (%+v), want a miss on healthy region %d",
			r.Region, r.Report, other.Region)
	}
	quiesce(t, s)
	st := s.Stats()
	if st.Requeues != 1 || st.FaultsDetected != 1 || st.Repairs != 1 {
		t.Fatalf("requeues %d / detected %d / repairs %d, want 1 / 1 / 1",
			st.Requeues, st.FaultsDetected, st.Repairs)
	}
	if st.Done != 3 || st.Errors != 0 {
		t.Fatalf("stats %+v, want 3 clean completions", st)
	}
	s.Wait()
}

// TestScrubRaceKeepsSpeculativeByteConservation is the scrub/abort
// interaction audit alongside TestSpeculativeByteConservation, run with
// -race: the learned three-module rotation keeps speculative streams
// constantly in flight while a hammer goroutine scrubs every idle slot and
// faults are injected along the way. A scrub firing around an abortable
// speculative stream must neither double-demote the region nor break the
// conservation law — every speculative byte still lands in exactly one of
// consumed / wasted / pending, and every detection resolves in exactly one
// repair.
func TestScrubRaceKeepsSpeculativeByteConservation(t *testing.T) {
	check := func(t *testing.T, st Stats, when string) {
		t.Helper()
		if st.PrefetchBytes != st.PrefetchConsumed+st.PrefetchWasted+st.PrefetchPending {
			t.Fatalf("%s: speculative bytes unbalanced: streamed %d != consumed %d + wasted %d + pending %d",
				when, st.PrefetchBytes, st.PrefetchConsumed, st.PrefetchWasted, st.PrefetchPending)
		}
	}
	pred, err := predict.New("markov")
	if err != nil {
		t.Fatal(err)
	}
	p := pool64x2(t, 1)
	s := New(p, Options{Prefetch: true, Predictor: pred, Scrub: true})
	mk := func(i int) tasks.Runner {
		switch i % 3 {
		case 0:
			return tasks.JenkinsRun{Seed: int64(i), Len: 128, InitVal: 7}
		case 1:
			return tasks.FadeRun{Seed: int64(i), N: 256, F: 31}
		}
		return tasks.BrightnessRun{Seed: int64(i), N: 256, Delta: 11}
	}
	// The hammer scrubs whatever is idle, concurrently with dispatches,
	// speculative streams and aborts. It naps between passes so the
	// quiesce polls can still observe a fully drained instant.
	done := make(chan struct{})
	hammered := make(chan struct{})
	go func() {
		defer close(hammered)
		for {
			select {
			case <-done:
				return
			default:
				s.ScrubAll()
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	const rounds = 30
	for i := 0; i < rounds; i++ {
		quiesce(t, s)
		if i%5 == 4 {
			// Inject at a quiesced point and force a deterministic look:
			// either this pass or the hammer's concurrent one detects it
			// (the CRC16 catches every single-bit flip).
			if err := p.Members()[0].Sys.InjectFaultOn(i/5%2, 0, i, 3); err != nil {
				t.Fatal(err)
			}
			s.ScrubAll()
			quiesce(t, s)
		}
		if r := <-s.Submit(mk(i)); r.Err != nil {
			t.Fatalf("round %d: %v", i, r.Err)
		}
		check(t, s.Stats(), "round")
	}
	close(done)
	<-hammered
	s.Wait()
	st := s.Stats()
	check(t, st, "final")
	if st.PrefetchIssued != st.PrefetchCompleted+st.PrefetchAborted {
		t.Fatalf("speculative loads unresolved: issued %d, completed %d, aborted %d",
			st.PrefetchIssued, st.PrefetchCompleted, st.PrefetchAborted)
	}
	if st.FaultsDetected != st.Repairs {
		t.Fatalf("fault conservation broken: %d detected != %d repaired", st.FaultsDetected, st.Repairs)
	}
	if st.FaultsDetected == 0 {
		t.Fatal("no injected fault was ever detected")
	}
	if st.Done != rounds || st.Errors != 0 {
		t.Fatalf("stats %+v, want %d clean completions", st, rounds)
	}
	for _, m := range p.Snapshot() {
		if m.Corrupted {
			t.Fatal("static design corrupted")
		}
	}
}
