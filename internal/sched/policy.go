package sched

import (
	"fmt"
	"sort"

	"repro/internal/plan"
)

// Candidate is one idle (member, region) slot a placement policy may pick
// for a request. The scheduler fills it under its lock from the slot's
// live state, including the stream the region's planner would issue for
// the requested module.
type Candidate struct {
	// Index identifies the slot within the scheduler.
	Index int
	// Member and Region name the slot: the pool member's ID and the
	// region index within it. Policies scoring (member, region) pairs can
	// tell two regions of one board from two boards.
	Member int
	Region int
	// Resident is the module currently configured on the slot's region.
	Resident string
	// LastUsed is the dispatch tick of the slot's most recent
	// assignment; smaller means less recently used.
	LastUsed uint64
	// Plan is the stream the region would issue to host the module
	// (StreamNone when the module is already resident). Zero-valued when
	// planning failed — treated as a worst-case complete stream.
	Plan plan.Plan
	// PlanOK reports whether Plan is valid.
	PlanOK bool
	// Speculating marks a slot with a speculative load in flight toward
	// Resident (the predicted module). Dispatching another module there
	// aborts the stream; the scheduler leaves Plan unset, so cost-aware
	// policies prefer a quiet slot when one exists.
	Speculating bool
	// ReuseProb is the predictor's estimate that the slot's resident
	// module is the next one requested (0 without a predictor). Policies
	// can use it to avoid evicting a module that is about to be wanted.
	ReuseProb float64
	// GroupMate marks a slot whose member already received an assignment
	// earlier in the current dispatch round. In DMA mode a miss placed
	// there opens its port window alongside the sibling's, so the two
	// configurations overlap in simulated time.
	GroupMate bool
}

// Policy chooses which idle slot hosts a request on a bitstream-cache
// miss; the scheduler dispatches cache hits (an idle slot with the
// module resident) directly without consulting the policy. Pick is called
// with a non-empty candidate slice (every entry idle and supporting the
// module) and returns an index INTO the slice. Implementations must be
// deterministic functions of the candidates.
type Policy interface {
	Name() string
	Pick(module string, cands []Candidate) int
}

// lruPolicy reconfigures the least-recently-dispatched idle member — the
// PR 1 baseline. A member with the module already resident always wins.
type lruPolicy struct{}

func (lruPolicy) Name() string { return "lru" }

func (lruPolicy) Pick(module string, cands []Candidate) int {
	best := 0
	for i, c := range cands {
		if c.Resident == module {
			return i
		}
		if c.LastUsed < cands[best].LastUsed {
			best = i
		}
	}
	return best
}

// scoredPick is the shared selection loop of the cost-aware policies: a
// member with the module resident wins outright, otherwise the lowest
// score does, with ties falling back to LRU order.
func scoredPick(module string, cands []Candidate, score func(Candidate) float64) int {
	best := 0
	for i, c := range cands {
		if c.Resident == module {
			return i
		}
		if i == 0 {
			continue
		}
		cs, bs := score(c), score(cands[best])
		if cs < bs || (cs == bs && c.LastUsed < cands[best].LastUsed) {
			best = i
		}
	}
	return best
}

// minCostPolicy picks the idle member whose resident module minimizes the
// planned configuration cost of the transition — the cost-aware placement
// the differential planner enables: members whose resident state makes the
// (resident → wanted) differential small are preferred, so the pool pays
// the cheapest reconfigurations the workload allows. Ties (including
// equal-size complete streams) fall back to LRU order.
type minCostPolicy struct{}

func (minCostPolicy) Name() string { return "mincost" }

// NeedsPlan tells the scheduler to fill Candidate.Plan — plan-unaware
// policies (lru) skip the per-member PlanFor calls entirely.
func (minCostPolicy) NeedsPlan() bool { return true }

func (minCostPolicy) Pick(module string, cands []Candidate) int {
	return scoredPick(module, cands, func(c Candidate) float64 {
		return float64(planBytes(c))
	})
}

// planBytes is a candidate's planned stream size, with an unplannable
// member costed as worse than any real stream.
func planBytes(c Candidate) int {
	if !c.PlanOK {
		return int(^uint(0) >> 1)
	}
	return c.Plan.Bytes
}

// prefetchPolicy is the placement-aware companion of the prefetcher: it
// places a miss like mincost, but charges each candidate the expected cost
// of evicting its resident module — the predictor's estimate that the
// resident is wanted next, scaled by the worst planned stream among the
// candidates (a dimensionally honest stand-in for the reload it would
// cause). A member whose resident module is about to be requested is
// therefore spared unless every alternative is much more expensive.
// Without a predictor every ReuseProb is 0 and the policy degenerates to
// mincost.
type prefetchPolicy struct{}

func (prefetchPolicy) Name() string { return "prefetch" }

// NeedsPlan tells the scheduler to fill Candidate.Plan.
func (prefetchPolicy) NeedsPlan() bool { return true }

func (prefetchPolicy) Pick(module string, cands []Candidate) int {
	worst := 0
	for _, c := range cands {
		if c.PlanOK && c.Plan.Bytes > worst {
			worst = c.Plan.Bytes
		}
	}
	return scoredPick(module, cands, func(c Candidate) float64 {
		return float64(planBytes(c)) + c.ReuseProb*float64(worst)
	})
}

// gangPolicy co-locates the misses of one dispatch round: a slot whose
// member already received an assignment this round wins, so DMA mode can
// overlap the two streams' port windows on that member. A member with the
// module resident still wins outright (the overlap never beats streaming
// nothing), and sizing is unavailable for group mates anyway — the sibling
// assignment makes the member non-quiet, so Plan stays unset and the
// choice among mates falls back to LRU order. With no mate in the round
// the policy is exactly mincost.
type gangPolicy struct{}

func (gangPolicy) Name() string { return "gang" }

// NeedsPlan tells the scheduler to fill Candidate.Plan for the
// mincost fallback.
func (gangPolicy) NeedsPlan() bool { return true }

func (gangPolicy) Pick(module string, cands []Candidate) int {
	best := -1
	for i, c := range cands {
		if c.Resident == module {
			return i
		}
		if !c.GroupMate {
			continue
		}
		if best < 0 || c.LastUsed < cands[best].LastUsed {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	return minCostPolicy{}.Pick(module, cands)
}

// policies registers the built-in placement policies by name.
var policies = map[string]Policy{
	"lru":      lruPolicy{},
	"mincost":  minCostPolicy{},
	"prefetch": prefetchPolicy{},
	"gang":     gangPolicy{},
}

// PolicyNames lists the registered placement policies, sorted.
func PolicyNames() []string {
	names := make([]string, 0, len(policies))
	for n := range policies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PolicyByName resolves a placement policy ("" means lru).
func PolicyByName(name string) (Policy, error) {
	if name == "" {
		return policies["lru"], nil
	}
	p, ok := policies[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown placement policy %q (have %v)", name, PolicyNames())
	}
	return p, nil
}
