package sched

import (
	"sync"

	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/tasks"
	"repro/internal/trace"
)

// shard is one independently locked slice of the scheduler: a subset of the
// pool's members (never splitting a member — sibling regions share one
// serialized timeline, and the member-quiet and DMA-gang invariants assume
// one owner), with its own run queue, dispatch tick, placement state and
// statistics. With Options.Shards <= 1 the whole pool is one shard and
// every code path below is exactly the pre-shard scheduler's — the
// dispatch-order goldens pin that equivalence byte for byte.
//
// Locking rules: a shard's mu guards its own fields only. The one place two
// shard locks are ever held together is stealLocked, and there the victim
// is acquired with TryLock while the thief's lock is held — the thief never
// blocks on a victim, so no lock-order cycle can form. Cross-shard
// hot-path counters (submission IDs, completion sequence, in-flight count)
// live as atomics on the Scheduler.
type shard struct {
	sc *Scheduler
	id int

	mu      sync.Mutex
	pending []*request
	slots   []*slotState
	tick    uint64
	// stats holds the shard-local slice of the aggregate counters; Slots
	// and BusyTime are indexed by shard-local slot index and stitched back
	// into pool order by Scheduler.Stats.
	stats Stats
	// stealTick rotates the victim scan start so repeated steals spread
	// over the other shards instead of always draining the next neighbour.
	stealTick uint64
	// freeAt is the open-loop wall-clock overlay: per member, the simulated
	// time its timeline frees up. Sibling regions serialize on the member's
	// single kernel, so the overlay is per member, matching the S5 replay's
	// k = members rationale.
	freeAt map[*pool.Member]sim.Time
}

// supportsModule reports whether any of the shard's slots can host the
// module. Structural only (fabric width and floorplan, via the lock-free
// SupportsOn), so it is safe to call without the shard lock — the router
// uses it to pick a target shard.
func (sh *shard) supportsModule(module string) bool {
	for _, ss := range sh.slots {
		if ss.supports(module) {
			return true
		}
	}
	return false
}

// memberQuiet reports whether no slot of the member is executing or
// streaming: only then is the member's lock free to take briefly for plan
// sizing and restore estimates. Calls into a non-quiet member would block
// the shard lock behind the sibling's entire simulated run. The member's
// slots all live on this shard, so the shard-local scan is authoritative.
func (sh *shard) memberQuiet(m *pool.Member) bool {
	for _, ss := range sh.slots {
		if ss.m == m && (ss.busy || ss.specBusy || ss.quarantined || ss.scrubbing) {
			return false
		}
	}
	return true
}

// submitLocked enqueues one request without dispatching. Called with sh.mu
// held; unsupported modules fail immediately.
func (sh *shard) submitLocked(t tasks.Runner, arrival sim.Time, openLoop bool) <-chan Result {
	sc := sh.sc
	ch := make(chan Result, 1)
	sc.stopped.Store(false)
	req := &request{id: sc.nextID.Add(1), task: t, ch: ch, arrival: arrival, openLoop: openLoop}
	sc.requests.Add(1)
	if tr := sc.opts.Trace; tr != nil {
		// Scheduler-level instant (member/region -1): closed-loop
		// submissions carry Ts 0, open-loop ones their arrival stamp.
		tr.Emit(trace.Event{Ts: arrival, Kind: trace.KindSubmit,
			Member: -1, Region: -1, ID: req.id, Name: t.Module()})
	}
	if sc.opts.Predictor != nil {
		// Train on the arrival stream — including requests that fail below:
		// the workload asked for the module either way.
		sc.opts.Predictor.Observe(t.Module())
	}
	if !sc.supported(t.Module()) {
		sc.done.Add(1)
		sh.stats.Errors++
		ms := sh.stats.Modules[t.Module()]
		ms.Requests++
		ms.Errors++
		sh.stats.Modules[t.Module()] = ms
		ch <- Result{ID: req.id, Task: t.Name(), Module: t.Module(),
			Member: -1, Region: -1, Err: errUnsupported(t.Module())}
		return ch
	}
	sc.wg.Add(1)
	sc.inflight.Add(1)
	sh.pending = append(sh.pending, req)
	return ch
}

// dispatchLocked assigns as many pending requests as the idle slots
// allow. Called with sh.mu held.
//
// Dispatch: scan pending in FIFO order; the first request with an eligible
// idle slot is dispatched (later requests may only overtake it inside
// the same-module batch window below, or when no idle slot supports its
// module — e.g. a sha1 request waiting for a 64-bit slot while 32-bit
// slots sit idle). Slot choice is delegated to the placement policy;
// every built-in policy sends a request to a slot with the module
// already resident when one is idle (cache hit) — including an idle
// region of a board whose sibling region is busy, the conflict a
// single-region pool must pay a miss for.
//
// When the scan finds nothing dispatchable and an idle slot remains, the
// shard tries to steal queued work from a sibling shard — once per
// dispatch round, so a failed steal cannot spin.
func (sh *shard) dispatchLocked() {
	sc := sh.sc
	// Scrub-on-dispatch needs the CPU path's pre-execution pass, so DMA
	// dispatch yields to it.
	useDMA := sc.opts.DMA && !sc.opts.Scrub
	var round []assignment
	assigned := make(map[int]bool)
	stole := false
	for {
		ri, si := sh.pickLocked(assigned)
		if ri < 0 {
			if !stole && len(sc.shards) > 1 && sh.idleSlotLocked() && sh.stealLocked() {
				stole = true
				continue
			}
			break
		}
		head := sh.pending[ri]
		batch := []*request{head}
		sh.pending = append(sh.pending[:ri], sh.pending[ri+1:]...)
		// Pull queued same-module requests into the batch window.
		for i := 0; i < len(sh.pending) && len(batch) < sc.opts.Batch; {
			if sh.pending[i].task.Module() == head.task.Module() {
				batch = append(batch, sh.pending[i])
				sh.pending = append(sh.pending[:i], sh.pending[i+1:]...)
				continue
			}
			i++
		}
		ss := sh.slots[si]
		if ss.specBusy {
			if ss.specModule != head.task.Module() {
				// Preempt: the speculative stream parks at its next safe
				// boundary; Execute then serializes behind it on the
				// member's lock. Sibling regions' streams are left alone.
				ss.specAbort.trigger()
			} else {
				// The dispatch rides the in-flight stream — the overlap
				// paying off; the speculative goroutine credits the hit.
				ss.specHitPending = true
			}
		}
		ss.busy = true
		ss.lastModule = head.task.Module()
		sh.tick++
		ss.lastUsed = sh.tick
		assigned[ss.m.ID] = true
		if tr := sc.opts.Trace; tr != nil {
			// Placement instant on the chosen slot's track; Arg carries the
			// batch size riding this dispatch.
			tr.Emit(trace.Event{Ts: sc.clock.Now(), Kind: trace.KindDispatch,
				Member: int32(ss.m.ID), Region: int32(ss.ri),
				ID: head.id, Name: head.task.Module(), Arg: int64(len(batch))})
		}
		round = append(round, assignment{ss: ss, si: si, batch: batch})
	}
	if len(round) > 0 {
		// One goroutine per member: a member's assignments of this round
		// run in assignment order on its serialized timeline (so a
		// multi-assignment round is deterministic), while different
		// members' groups proceed independently. In DMA mode the group
		// additionally Begins every head's stream back to back before any
		// settles — sibling regions' port windows open together and
		// overlap. A round launched one assignment at a time (the common
		// case: requests arrive singly) behaves exactly as before.
		var order []*pool.Member
		byMember := make(map[*pool.Member][]assignment)
		for _, a := range round {
			if _, ok := byMember[a.ss.m]; !ok {
				order = append(order, a.ss.m)
			}
			byMember[a.ss.m] = append(byMember[a.ss.m], a)
		}
		for _, m := range order {
			go sh.runGroup(byMember[m], useDMA)
		}
	}
	sh.prefetchLocked()
}

// idleSlotLocked reports whether the shard has a slot a stolen request
// could be dispatched to. Called with sh.mu held.
func (sh *shard) idleSlotLocked() bool {
	for _, ss := range sh.slots {
		if !ss.busy && !ss.quarantined && !ss.scrubbing {
			return true
		}
	}
	return false
}

// stealLocked pulls queued work from a sibling shard into this one.
// Called with sh.mu held; the victim is acquired with TryLock only, so the
// thief never blocks while holding its own lock (no deadlock by
// construction — a victim busy with its own dispatch is simply skipped).
// Stolen requests are the victim's oldest queue entries this shard can
// host, capped at half the victim's queue (work stealing balances load, it
// must not just relocate the backlog); their relative order is preserved
// on both sides, so FIFO-per-tenant order within each shard survives the
// move. Returns whether anything was stolen.
func (sh *shard) stealLocked() bool {
	shards := sh.sc.shards
	n := len(shards)
	for off := 1; off < n; off++ {
		v := shards[(sh.id+int(sh.stealTick)+off)%n]
		if v == sh || !v.mu.TryLock() {
			continue
		}
		limit := (len(v.pending) + 1) / 2
		var take []*request
		kept := v.pending[:0]
		for _, r := range v.pending {
			if len(take) < limit && sh.supportsModule(r.task.Module()) {
				take = append(take, r)
			} else {
				kept = append(kept, r)
			}
		}
		v.pending = kept
		v.mu.Unlock()
		if len(take) > 0 {
			sh.stealTick++
			sh.pending = append(sh.pending, take...)
			sh.stats.Steals++
			sh.stats.StolenRequests += uint64(len(take))
			if tr := sh.sc.opts.Trace; tr != nil {
				tr.Emit(trace.Event{Ts: sh.sc.clock.Now(), Kind: trace.KindSteal,
					Member: -1, Region: -1, ID: take[0].id,
					Name: take[0].task.Module(), Arg: int64(len(take))})
			}
			return true
		}
	}
	return false
}

// assignment is one dispatched (slot, batch) pair of a round.
type assignment struct {
	ss    *slotState
	si    int
	batch []*request
}

// pickLocked returns the indices of the first schedulable pending request
// and its chosen slot, or (-1, -1). assigned holds the member IDs already
// given an assignment in the current dispatch round (Candidate.GroupMate).
func (sh *shard) pickLocked(assigned map[int]bool) (int, int) {
	sc := sh.sc
	for ri, req := range sh.pending {
		mod := req.task.Module()
		var cands []Candidate
		hit := -1
		for si, ss := range sh.slots {
			if ss.busy || ss.quarantined || ss.scrubbing || !ss.supports(mod) {
				continue
			}
			// For a speculating slot the view is the in-flight target: a
			// matching request dispatched there rides the stream to a hit,
			// a different one aborts it (see dispatchLocked).
			c := Candidate{Index: si, Member: ss.m.ID, Region: ss.ri,
				Resident: ss.residentView(), LastUsed: ss.lastUsed, Speculating: ss.specBusy,
				GroupMate: assigned[ss.m.ID]}
			if c.Resident == mod {
				hit = si
				break
			}
			cands = append(cands, c)
		}
		// Cache hit: dispatch there without consulting the policy (every
		// built-in policy would pick it anyway), skipping the per-slot
		// plan sizing below.
		if hit >= 0 {
			return ri, hit
		}
		for i := range cands {
			// A speculating slot's plan cannot be sized without waiting
			// out its stream, and a slot whose sibling region is executing
			// or streaming cannot be sized without waiting out the member
			// lock; leaving PlanOK false costs them as worst case, so
			// policies prefer quiet slots and abort speculation only as a
			// last resort.
			if sc.planAware && !cands[i].Speculating {
				ss := sh.slots[cands[i].Index]
				if sh.memberQuiet(ss.m) {
					if p, err := ss.m.Sys.PlanForOn(ss.ri, mod); err == nil {
						cands[i].Plan, cands[i].PlanOK = p, true
					}
				}
			}
			if sc.opts.Predictor != nil {
				cands[i].ReuseProb = sc.opts.Predictor.Prob(cands[i].Resident)
			}
		}
		if len(cands) > 0 {
			return ri, cands[sc.opts.Policy.Pick(mod, cands)].Index
		}
	}
	return -1, -1
}

// prefetchLocked speculatively configures idle slots with the predictor's
// next-module guesses. Called with sh.mu held at the end of every dispatch
// round. For each ranked module not already resident (or in flight)
// anywhere in the shard, the idle slot whose planner offers the cheapest
// (resident → predicted) transition hosts the speculative load; at least
// one slot is always left unspeculated so a miss for an unpredicted
// module finds a quiet home. A busy slot is never a target, but an idle
// region whose sibling is computing is — the stream interleaves with the
// sibling's work on the member's serialized timeline, and the next
// request for the guess hits warm fabric on an already-loaded board.
// Slots carrying an unconsumed prefetch are skipped — replacing their
// guess before anyone used it would only convert speculative bytes into
// waste. Residency and the speculation budget are shard-local: sibling
// shards may host their own copy of a hot module, which is by design —
// each shard serves its own request stream.
func (sh *shard) prefetchLocked() {
	sc := sh.sc
	if !sc.opts.Prefetch || sc.stopped.Load() || sc.opts.Predictor == nil {
		return
	}
	speculating := 0
	var idle []*slotState
	for _, ss := range sh.slots {
		if ss.specBusy {
			speculating++
			continue
		}
		// Only slots of quiet members are speculation targets this round:
		// sizing a stream for a member whose sibling region is executing
		// would block the shard lock behind that run. The member's
		// release re-enters dispatchLocked, so deferred slots are
		// revisited the moment the board frees up.
		if !ss.busy && ss.prefetched == "" && sh.memberQuiet(ss.m) {
			idle = append(idle, ss)
		}
	}
	// At most half the shard's slots speculate at once: a miss for an
	// unpredicted module must still find quiet slots to choose among, or
	// placement degenerates to "the one slot not speculating" and the
	// per-miss streams grow past what prefetch hits save.
	limit := len(sh.slots) / 2
	if limit < 1 {
		limit = 1
	}
	if len(idle) == 0 || speculating >= limit {
		return
	}
	// Modules already resident (or arriving) anywhere in the shard are not
	// worth a second copy.
	resident := make(map[string]bool, len(sh.slots))
	for _, ss := range sh.slots {
		resident[ss.residentView()] = true
	}
	candidates := sc.opts.Predictor.Rank(2 * len(sh.slots) * len(sh.slots))
	// The eviction loss is constant per slot within the round; computing
	// it once avoids per-candidate RestoreEstimate round trips through
	// the members' locks (idle slots belong to quiet members, so those
	// trips are brief).
	loss := make(map[*slotState]float64, len(idle))
	for _, ss := range idle {
		if r := ss.resident; r != "" {
			loss[ss] = sc.opts.Predictor.Prob(r) * float64(restoreBytes(ss, r))
		}
	}
	for speculating < limit && len(idle) > 0 {
		// Choose the (idle slot, predicted module) pair with the highest
		// expected profit in stream bytes:
		//
		//   Prob(predicted) * restore(predicted) - Prob(resident) * restore(resident)
		//
		// where restore(x) is the planner's state-independent estimate of
		// re-hosting x later. The first term is what a predicted hit saves;
		// the second what evicting the resident costs when it is requested
		// again. The gate is what keeps speculation from strip-mining
		// affinity: a wide, occasionally-requested resident (sha1) beats a
		// narrow frequent guess because every transition touching it
		// streams its full width, while a blank or cold resident loses to
		// any warm prediction. Only positive-profit speculation is issued.
		bestIdle, bestMod, bestProfit, bestPlan := -1, "", 0.0, 0
		for _, mod := range candidates {
			if mod == "" || resident[mod] {
				continue
			}
			prob := sc.opts.Predictor.Prob(mod)
			if prob <= 0 {
				continue
			}
			for i, ss := range idle {
				if !ss.supports(mod) {
					continue
				}
				// Sized per slot: restore estimates differ between the
				// 32- and 64-bit fabrics (and between uneven regions).
				save := prob * float64(restoreBytes(ss, mod))
				profit := save - loss[ss]
				if profit <= 0 || profit < bestProfit {
					continue
				}
				// Only potential winners are stream-sized: PlanForOn breaks
				// profit ties toward the cheaper speculative transition,
				// and skipping the clear losers keeps the member-lock
				// round trips under the shard lock proportional to
				// improvements, not candidates.
				pb := int(^uint(0) >> 1)
				if p, err := ss.m.Sys.PlanForOn(ss.ri, mod); err == nil {
					pb = p.Bytes
				}
				if profit > bestProfit || pb < bestPlan {
					bestIdle, bestMod, bestProfit, bestPlan = i, mod, profit, pb
				}
			}
		}
		if bestIdle < 0 {
			return
		}
		ss := idle[bestIdle]
		// The launched stream holds the member's lock until it lands, so
		// the member is no longer quiet: drop every sibling slot from the
		// idle list too, or the next iteration's plan sizing would block
		// the shard lock behind this stream.
		kept := idle[:0]
		for _, other := range idle {
			if other.m != ss.m {
				kept = append(kept, other)
			}
		}
		idle = kept
		resident[bestMod] = true
		speculating++
		ss.specBusy, ss.specModule = true, bestMod
		ss.specAbort = &abortToken{}
		sh.stats.PrefetchIssued++
		if tr := sc.opts.Trace; tr != nil {
			tr.Emit(trace.Event{Ts: sc.clock.Now(), Kind: trace.KindPrefetchLaunch,
				Member: int32(ss.m.ID), Region: int32(ss.ri), Name: bestMod})
		}
		sc.specWG.Add(1)
		go sh.runSpeculative(ss, bestMod, ss.specAbort)
	}
}

// restoreBytes is a slot's state-independent stream-size estimate for
// hosting the module, with an unknown module costed as free (never worth
// protecting or prefetching).
func restoreBytes(ss *slotState, module string) int {
	b, err := ss.m.Sys.RestoreEstimateOn(ss.ri, module)
	if err != nil {
		return 0
	}
	return b
}

// runSpeculative drives one speculative load to completion or abort and
// records its outcome. Every speculative byte is booked exactly once:
// either as waste (here, on abort or on a completed stream that outran
// its abort) or as consumed (on the prefetch hit that uses it) or it
// stays pending in the slot's prefetched fields until one of the two.
func (sh *shard) runSpeculative(ss *slotState, mod string, tok *abortToken) {
	defer sh.sc.specWG.Done()
	rep, err := ss.m.Sys.LoadSpeculativeOn(ss.ri, mod, tok.aborted)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ss.specBusy, ss.specModule, ss.specAbort = false, "", nil
	st := &sh.stats
	st.PrefetchBytes += uint64(rep.Bytes)
	st.PrefetchConfig += rep.Time
	if rep.Bytes > 0 {
		st.PrefetchLoads++
	}
	if tr := sh.sc.opts.Trace; tr != nil {
		if rep.Time > 0 {
			// The speculative stream's port span; conservation: these
			// spans sum per slot to Stats.PrefetchConfig.
			tr.Emit(trace.Event{Ts: rep.At, Dur: rep.Time, Kind: trace.KindPrefetchConfig,
				Member: int32(ss.m.ID), Region: int32(ss.ri), Name: mod, Arg: int64(rep.Bytes)})
		}
		if err != nil {
			tr.Emit(trace.Event{Ts: rep.At + rep.Time, Kind: trace.KindPrefetchAbort,
				Member: int32(ss.m.ID), Region: int32(ss.ri), Name: mod, Arg: int64(rep.Bytes)})
		}
	}
	hitPending := ss.specHitPending
	ss.specHitPending = false
	// Refresh the cached resident — but only when the slot was neither
	// preempted nor claimed: a triggered token means a real dispatch (or
	// Wait) owns the slot's fate, and its record() may already have run,
	// so writing here could clobber the authoritative value with stale
	// state (the same ordering hazard the prefetched fields guard
	// against). A skipped write can leave the cache conservatively stale
	// after a Wait-time abort; the manager's live hazard gate still plans
	// every stream correctly.
	if !tok.aborted() && !ss.busy {
		if err == nil {
			ss.resident = mod
		} else {
			ss.resident = ""
		}
	}
	switch {
	case err == nil && rep.Kind != plan.StreamNone:
		st.PrefetchCompleted++
		switch {
		case hitPending:
			// A request is riding this stream to a hit right now.
			st.PrefetchHits++
			st.PrefetchConsumed += uint64(rep.Bytes)
			st.HiddenConfig += rep.Time
			if tr := sh.sc.opts.Trace; tr != nil {
				tr.Emit(trace.Event{Ts: rep.At + rep.Time, Kind: trace.KindPrefetchHit,
					Member: int32(ss.m.ID), Region: int32(ss.ri), Name: mod, Arg: int64(rep.Bytes)})
			}
		case tok.aborted():
			// The stream outran its abort: a dispatch for a different
			// module (or Wait) claimed the slot while the last words
			// were going out. The guessed resident is about to be
			// overwritten — marking it prefetched now could outlive the
			// preempting load's record and starve the slot, so the
			// bytes are waste directly.
			st.PrefetchWasted += uint64(rep.Bytes)
		default:
			ss.prefetched = mod
			ss.prefetchedBytes = rep.Bytes
			ss.prefetchedTime = rep.Time
		}
	case err == nil:
		// The module was already resident when the stream was about to be
		// planned (a racing real load beat us to it): nothing streamed,
		// nothing to consume — and any rider paid its own configuration.
		st.PrefetchCompleted++
	default:
		// Aborted by a real dispatch, or (defensively) a failed plan:
		// whatever was streamed is waste by definition.
		st.PrefetchAborted++
		st.PrefetchWasted += uint64(rep.Bytes)
	}
	if !ss.busy {
		// The slot is idle again (completed or abandoned stream with no
		// real work waiting): a new dispatch round may find pending work it
		// can now serve as a hit, or fresh prefetch opportunities.
		sh.dispatchLocked()
	}
}

func (sh *shard) runBatch(ss *slotState, si int, batch []*request) {
	sc := sh.sc
	if sc.opts.Scrub {
		// Scrub-on-dispatch: verify the slot's region before trusting its
		// resident. The pass takes the member's lock — a speculative
		// stream in flight on this slot is serialized out first, and an
		// aborted one reads as already-demoted, never as a fresh fault.
		rep := ss.m.Sys.ScrubOn(ss.ri)
		sh.mu.Lock()
		sh.stats.ScrubPasses++
		if tr := sc.opts.Trace; tr != nil {
			arg := int64(0)
			if rep.Detected {
				arg = 1
			}
			tr.Emit(trace.Event{Ts: sc.clock.Now(), Kind: trace.KindScrub,
				Member: int32(ss.m.ID), Region: int32(ss.ri), Name: rep.Module, Arg: arg})
		}
		if rep.Detected {
			// The batch never ran: bounce it back to the head of the queue
			// in order, take the slot out of service, and let dispatch
			// place the requests elsewhere (or wait out the repair).
			sh.stats.Requeues += uint64(len(batch))
			sh.pending = append(append([]*request(nil), batch...), sh.pending...)
			sh.quarantineLocked(ss, rep.Module)
			ss.busy = false
			sh.dispatchLocked()
			sh.mu.Unlock()
			return
		}
		sh.mu.Unlock()
	}
	for _, req := range batch {
		t := req.task
		sys := ss.m.Sys
		rep, err := sys.ExecuteOn(ss.ri, t.Module(), func() error { return t.Run(sys) })
		res := Result{ID: req.id, Task: t.Name(), Module: t.Module(),
			Member: ss.m.ID, Region: ss.ri, System: sys.Name, Report: rep, Err: err}
		sh.record(si, &res, req)
		req.ch <- res
		sc.inflight.Add(-1)
		sc.wg.Done()
	}
	sh.mu.Lock()
	ss.busy = false
	sh.dispatchLocked()
	sh.mu.Unlock()
}

// runGroup runs one member's assignments of a dispatch round in order. In
// DMA mode every head's stream Begins before any assignment settles, so
// sibling regions' port windows overlap; then each assignment settles its
// window, runs its batch and releases its slot on the member's serialized
// timeline. On the CPU path the assignments simply run back to back.
func (sh *shard) runGroup(group []assignment, dma bool) {
	if !dma {
		for _, a := range group {
			sh.runBatch(a.ss, a.si, a.batch)
		}
		return
	}
	tickets := make([]*platform.LoadTicket, len(group))
	for i, a := range group {
		tk, err := a.ss.m.Sys.BeginExecuteOn(a.ss.ri, a.batch[0].task.Module())
		if err == nil {
			tickets[i] = tk
		}
		// On a Begin error the ticket stays nil and the run phase falls
		// back to the CPU path's ExecuteOn, which re-plans after the
		// demotion and reports whatever happens through the normal path.
	}
	for i, a := range group {
		sh.runAssignment(a, tickets[i])
	}
}

func (sh *shard) runAssignment(a assignment, tk *platform.LoadTicket) {
	sc := sh.sc
	ss, si := a.ss, a.si
	sys := ss.m.Sys
	for bi, req := range a.batch {
		t := req.task
		var rep platform.ExecReport
		var err error
		if bi == 0 && tk != nil {
			rep, err = sys.FinishExecuteOn(tk, func() error { return t.Run(sys) })
		} else {
			// Batch riders behind the head (and Begin-error fallbacks) take
			// the ordinary load path — for riders a zero-stream cache hit.
			rep, err = sys.ExecuteOn(ss.ri, t.Module(), func() error { return t.Run(sys) })
		}
		res := Result{ID: req.id, Task: t.Name(), Module: t.Module(),
			Member: ss.m.ID, Region: ss.ri, System: sys.Name, Report: rep, Err: err}
		sh.record(si, &res, req)
		req.ch <- res
		sc.inflight.Add(-1)
		sc.wg.Done()
	}
	sh.mu.Lock()
	ss.busy = false
	sh.dispatchLocked()
	sh.mu.Unlock()
}

// quarantineLocked takes a corruption-detected slot out of service and
// launches its background repair. The scrub already demoted the region
// through the §2.2 hazard gate, so the repair's reload streams a complete
// configuration that overwrites every span frame — healing the flip is a
// side effect of the same invariant that makes abort recovery safe.
// Called with sh.mu held.
func (sh *shard) quarantineLocked(ss *slotState, module string) {
	st := &sh.stats
	st.FaultsDetected++
	ss.quarantined = true
	ss.resident = ""
	if tr := sh.sc.opts.Trace; tr != nil {
		tr.Emit(trace.Event{Ts: sh.sc.clock.Now(), Kind: trace.KindQuarantine,
			Member: int32(ss.m.ID), Region: int32(ss.ri), Name: module})
	}
	// A prefetched-but-unconsumed guess sat in the corrupted region: its
	// bytes can never be consumed now, so they are waste — booked here,
	// exactly once, keeping the speculative conservation law intact.
	if ss.prefetched != "" {
		st.PrefetchWasted += uint64(ss.prefetchedBytes)
		ss.prefetched, ss.prefetchedBytes, ss.prefetchedTime = "", 0, 0
	}
	sh.sc.repairWG.Add(1)
	go sh.runRepair(ss, module)
}

// runRepair restores a quarantined slot off the request path: reload the
// module the fault evicted (a complete stream, by the hazard gate), then
// return the slot to service warm. A blank region needs no stream — its
// next real load is complete by construction — so that repair is free.
func (sh *shard) runRepair(ss *slotState, module string) {
	defer sh.sc.repairWG.Done()
	var rep platform.ConfigReport
	var err error
	if module != "" {
		rep, err = ss.m.Sys.LoadModuleOn(ss.ri, module)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := &sh.stats
	st.Repairs++
	st.RepairBytes += uint64(rep.Bytes)
	st.RepairConfig += rep.Time
	if tr := sh.sc.opts.Trace; tr != nil && module != "" {
		// The healing reload's span; conservation: repair spans sum per
		// slot to Stats.RepairConfig.
		tr.Emit(trace.Event{Ts: rep.At, Dur: rep.Time, Kind: trace.KindRepair,
			Member: int32(ss.m.ID), Region: int32(ss.ri), Name: module, Arg: int64(rep.Bytes)})
	}
	ss.quarantined = false
	if module != "" && err == nil {
		ss.resident = module
	}
	// Requests that queued up behind the quarantine can go out now.
	sh.dispatchLocked()
}

// scrubAll runs one readback scrub pass over the shard's idle slots; see
// Scheduler.ScrubAll.
func (sh *shard) scrubAll() int {
	sh.mu.Lock()
	var targets []*slotState
	for _, ss := range sh.slots {
		if ss.busy || ss.specBusy || ss.quarantined || ss.scrubbing || !sh.memberQuiet(ss.m) {
			continue
		}
		targets = append(targets, ss)
	}
	// Mark after selecting: scrubbing flags make the member non-quiet, and
	// sibling regions of one quiet member should both be scrubbed this
	// pass (the passes serialize briefly on the member's lock).
	for _, ss := range targets {
		ss.scrubbing = true
	}
	sh.mu.Unlock()
	detected := 0
	for _, ss := range targets {
		rep := ss.m.Sys.ScrubOn(ss.ri)
		sh.mu.Lock()
		ss.scrubbing = false
		sh.stats.ScrubPasses++
		if tr := sh.sc.opts.Trace; tr != nil {
			arg := int64(0)
			if rep.Detected {
				arg = 1
			}
			tr.Emit(trace.Event{Ts: sh.sc.clock.Now(), Kind: trace.KindScrub,
				Member: int32(ss.m.ID), Region: int32(ss.ri), Name: rep.Module, Arg: arg})
		}
		if rep.Detected {
			detected++
			sh.quarantineLocked(ss, rep.Module)
		}
		sh.dispatchLocked()
		sh.mu.Unlock()
	}
	return detected
}

// record books one completed request into the shard's counters, assigns
// its pool-wide completion sequence, and (for open-loop submissions)
// computes its wall-clock sojourn. Fills res.Seq and the open-loop fields
// in place.
func (sh *shard) record(si int, res *Result, req *request) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := &sh.stats
	res.Seq = sh.sc.done.Add(1)
	ss := sh.slots[si]
	// Refresh the cached resident: a clean execution leaves its module
	// configured and verified; after an error the region's content is not
	// trustworthy, so the slot reads as blank (worst case, never unsafe —
	// the manager's own hazard gate still guards the streams).
	if res.Err == nil {
		ss.resident = res.Module
	} else {
		ss.resident = ""
	}
	if req.openLoop {
		// The open-loop wall-clock overlay: the request starts when it has
		// both arrived and found its member's timeline free; sibling
		// regions serialize on the member's single kernel, so the overlay
		// is per member. Sojourn is queue wait plus service — the latency
		// dimension the per-member simulated-time model cannot see.
		start := req.arrival
		if f := sh.freeAt[ss.m]; f > start {
			start = f
		}
		done := start + res.Report.Latency()
		sh.freeAt[ss.m] = done
		res.Arrival, res.Start, res.DoneAt = req.arrival, start, done
		res.Sojourn = done - req.arrival
		sh.sc.clock.Advance(done)
	}
	if tr := sh.sc.opts.Trace; tr != nil {
		rep := &res.Report
		member, region := int32(ss.m.ID), int32(ss.ri)
		if rep.ConfigHidden > 0 {
			tr.Emit(trace.Event{Ts: rep.At - rep.ConfigHidden, Dur: rep.ConfigHidden,
				Kind: trace.KindOverlap, Member: member, Region: region,
				ID: req.id, Name: res.Module, Arg: int64(rep.BytesStreamed)})
		}
		if rep.Config > 0 {
			// Conservation: config spans sum per slot to Stats.Config.
			tr.Emit(trace.Event{Ts: rep.At, Dur: rep.Config,
				Kind: trace.KindConfig, Member: member, Region: region,
				ID: req.id, Name: res.Module, Arg: int64(rep.BytesStreamed)})
		}
		if rep.Work > 0 {
			tr.Emit(trace.Event{Ts: rep.At + rep.Config, Dur: rep.Work,
				Kind: trace.KindCompute, Member: member, Region: region,
				ID: req.id, Name: res.Module})
		}
		doneTs := rep.At + rep.Config + rep.Work
		arg := int64(rep.Latency())
		if req.openLoop {
			doneTs, arg = res.DoneAt, int64(res.Sojourn)
		}
		tr.Emit(trace.Event{Ts: doneTs, Kind: trace.KindComplete,
			Member: member, Region: region, ID: req.id, Name: res.Module, Arg: arg})
	}
	st.Config += res.Report.Config
	st.Work += res.Report.Work
	st.BusyTime[si] += res.Report.Latency()
	st.BytesStreamed += uint64(res.Report.BytesStreamed)
	m := st.Modules[res.Module]
	m.Requests++
	m.Config += res.Report.Config
	m.Work += res.Report.Work
	m.Bytes += uint64(res.Report.BytesStreamed)
	switch res.Report.Kind {
	case plan.StreamDifferential:
		st.DiffLoads++
		m.Diffs++
	case plan.StreamComplete:
		st.CompleteLoads++
		m.Completes++
	case plan.StreamCompressed:
		st.CompressedLoads++
		m.Compressed++
	}
	if res.Report.DMA && res.Report.Kind != plan.StreamNone {
		st.DMALoads++
	}
	st.OverlapConfig += res.Report.ConfigHidden
	if res.Report.CacheHit {
		st.Hits++
		m.Hits++
	} else {
		st.Misses++
		m.Misses++
	}
	// Consume the slot's prefetched module: the first hit on it banks
	// the speculative stream time as hidden; a real load replacing it
	// books the speculative bytes as wasted.
	if ss.prefetched != "" {
		switch {
		case res.Report.CacheHit && res.Module == ss.prefetched:
			st.PrefetchHits++
			st.PrefetchConsumed += uint64(ss.prefetchedBytes)
			st.HiddenConfig += ss.prefetchedTime
			if tr := sh.sc.opts.Trace; tr != nil {
				tr.Emit(trace.Event{Ts: res.Report.At, Kind: trace.KindPrefetchHit,
					Member: int32(ss.m.ID), Region: int32(ss.ri), ID: req.id,
					Name: ss.prefetched, Arg: int64(ss.prefetchedBytes)})
			}
			ss.prefetched, ss.prefetchedBytes, ss.prefetchedTime = "", 0, 0
		case res.Report.Kind != plan.StreamNone:
			st.PrefetchWasted += uint64(ss.prefetchedBytes)
			ss.prefetched, ss.prefetchedBytes, ss.prefetchedTime = "", 0, 0
		}
	}
	if res.Err != nil {
		st.Errors++
		m.Errors++
	}
	st.Modules[res.Module] = m
}
