package sched

import (
	"testing"

	"repro/internal/pool"
	"repro/internal/predict"
	"repro/internal/tasks"
)

// pool64x2 boots n dual-region 64-bit members.
func pool64x2(t testing.TB, n int) *pool.Pool {
	t.Helper()
	p, err := pool.New(pool.Config{Sys64: n, Regions: 2})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDualRegionPoolHoldsFourResidents: a 2-board × 2-region pool exposes
// four scheduling slots, so four distinct modules stay warm at once and a
// second pass over them is all cache hits — the bitstream-cache capacity
// of four boards on half the hardware.
func TestDualRegionPoolHoldsFourResidents(t *testing.T) {
	p := pool64x2(t, 2)
	s := New(p, Options{})
	if got := len(s.Stats().Slots); got != 4 {
		t.Fatalf("pool exposes %d slots, want 4", got)
	}
	mods := []tasks.Runner{
		tasks.JenkinsRun{Seed: 1, Len: 128, InitVal: 1},
		tasks.FadeRun{Seed: 2, N: 256, F: 9},
		tasks.BrightnessRun{Seed: 3, N: 256, Delta: 4},
		tasks.BlendRun{Seed: 4, N: 256},
	}
	for _, m := range mods {
		if r := <-s.Submit(m); r.Err != nil {
			t.Fatalf("%s: %v", r.Task, r.Err)
		}
	}
	quiesce(t, s)
	seen := make(map[SlotID]string)
	for _, m := range mods {
		r := <-s.Submit(m)
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Task, r.Err)
		}
		if !r.Report.CacheHit {
			t.Errorf("second pass %s: %+v, want cache hit", r.Task, r.Report)
		}
		seen[SlotID{Member: r.Member, Region: r.Region}] = r.Module
		quiesce(t, s)
	}
	s.Wait()
	if len(seen) != 4 {
		t.Fatalf("second pass used %d distinct slots (%v), want 4", len(seen), seen)
	}
}

// TestSiblingRegionHitWhileMemberBusy is the conflict a single-region pool
// must pay a miss for: the wanted module is resident on a board that is
// currently computing. With a second region the dispatcher sends the
// request to the idle sibling slot as a zero-stream cache hit — the
// executions interleave on the member's serialized timeline, but no ICAP
// traffic is paid.
func TestSiblingRegionHitWhileMemberBusy(t *testing.T) {
	p := pool64x2(t, 1)
	s := New(p, Options{})
	warm := []tasks.Runner{
		tasks.JenkinsRun{Seed: 1, Len: 128, InitVal: 1},
		tasks.FadeRun{Seed: 2, N: 256, F: 9},
	}
	var slots [2]int
	for i, m := range warm {
		r := <-s.Submit(m)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		slots[i] = r.Region
		quiesce(t, s)
	}
	if slots[0] == slots[1] {
		t.Fatalf("warmup landed both modules on region %d", slots[0])
	}
	// A long jenkins run occupies its slot; the fade submitted right
	// behind it finds its module resident on the sibling region of the
	// same (busy) member.
	chA := s.Submit(tasks.JenkinsRun{Seed: 3, Len: 8192, InitVal: 2})
	chB := s.Submit(tasks.FadeRun{Seed: 4, N: 256, F: 17})
	ra, rb := <-chA, <-chB
	s.Wait()
	if ra.Err != nil || rb.Err != nil {
		t.Fatalf("errors: %v / %v", ra.Err, rb.Err)
	}
	if !ra.Report.CacheHit || !rb.Report.CacheHit {
		t.Fatalf("reports (%+v, %+v), want two cache hits", ra.Report, rb.Report)
	}
	if ra.Member != rb.Member || ra.Region == rb.Region {
		t.Fatalf("requests ran on (m%d r%d) and (m%d r%d), want sibling regions of one member",
			ra.Member, ra.Region, rb.Member, rb.Region)
	}
}

// TestPrefetchIntoSiblingRegion reruns the learned-rotation prefetch test
// of the single-region pipeline on ONE dual-region board: three modules
// rotate over two regions, the markov predictor learns the cycle, and the
// speculative pipeline keeps the next module arriving on the idle sibling
// region — warm rounds execute with zero visible configuration time on a
// single device, where a single-region board would reconfigure on the
// request path every round.
func TestPrefetchIntoSiblingRegion(t *testing.T) {
	pred, err := predict.New("markov")
	if err != nil {
		t.Fatal(err)
	}
	p := pool64x2(t, 1)
	s := New(p, Options{Prefetch: true, Predictor: pred})
	mk := func(i int) tasks.Runner {
		switch i % 3 {
		case 0:
			return tasks.FadeRun{Seed: int64(i), N: 256, F: 50}
		case 1:
			return tasks.BrightnessRun{Seed: int64(i), N: 256, Delta: 5}
		}
		return tasks.BlendRun{Seed: int64(i), N: 256}
	}
	const rounds = 33
	regions := make(map[int]int)
	for i := 0; i < rounds; i++ {
		quiesce(t, s)
		r := <-s.Submit(mk(i))
		if r.Err != nil {
			t.Fatalf("round %d: %v", i, r.Err)
		}
		regions[r.Region]++
		if i >= 24 {
			if !r.Report.CacheHit || r.Report.Config != 0 {
				t.Errorf("round %d: report %+v, want prefetched zero-config hit", i, r.Report)
			}
		}
	}
	s.Wait()
	st := s.Stats()
	if st.PrefetchIssued == 0 || st.PrefetchHits == 0 {
		t.Fatalf("no prefetch activity on the dual-region board: %+v", st)
	}
	if len(regions) != 2 {
		t.Fatalf("all rounds ran on one region (%v): sibling never used", regions)
	}
	for _, m := range p.Snapshot() {
		if m.Corrupted {
			t.Fatal("static design corrupted")
		}
	}
}

// TestSpeculativeByteConservation is the accounting audit the speculative
// counters must survive: every speculative byte ends up in exactly one of
// consumed / wasted / still-pending, with nothing double-booked across
// abort-then-retry of the same region. The scenario forces an abort (Wait
// fires while a long speculative stream is in flight), then retries the
// same module on the same slot to a completed, consumed prefetch, and
// checks exact conservation at every quiesced step.
func TestSpeculativeByteConservation(t *testing.T) {
	check := func(t *testing.T, st Stats, when string) {
		t.Helper()
		if st.PrefetchBytes != st.PrefetchConsumed+st.PrefetchWasted+st.PrefetchPending {
			t.Fatalf("%s: speculative bytes unbalanced: streamed %d != consumed %d + wasted %d + pending %d",
				when, st.PrefetchBytes, st.PrefetchConsumed, st.PrefetchWasted, st.PrefetchPending)
		}
	}
	pred, err := predict.New("markov")
	if err != nil {
		t.Fatal(err)
	}
	p := pool64x2(t, 1)
	s := New(p, Options{Prefetch: true, Predictor: pred})
	// Teach the predictor a strict three-module rotation over the two
	// slots: the working set exceeds the cache, so every steady-state
	// round must speculate the next module into the idle sibling region.
	mk := func(i int) tasks.Runner {
		switch i % 3 {
		case 0:
			return tasks.JenkinsRun{Seed: int64(i), Len: 128, InitVal: 7}
		case 1:
			return tasks.FadeRun{Seed: int64(i), N: 256, F: 31}
		}
		return tasks.BrightnessRun{Seed: int64(i), N: 256, Delta: 11}
	}
	for i := 0; i < 15; i++ {
		quiesce(t, s)
		if r := <-s.Submit(mk(i)); r.Err != nil {
			t.Fatalf("round %d: %v", i, r.Err)
		}
		check(t, s.Stats(), "training")
	}
	// Abort: Wait() triggers the abort token of whatever speculation the
	// last dispatch round launched; a stream caught in flight parks at a
	// safe boundary and its partial bytes must be booked as waste exactly
	// once. (If the stream already completed, the bytes sit pending —
	// conservation holds either way.)
	s.Wait()
	st := s.Stats()
	check(t, st, "after abort")
	if st.PrefetchIssued != st.PrefetchCompleted+st.PrefetchAborted {
		t.Fatalf("speculative loads unresolved: issued %d, completed %d, aborted %d",
			st.PrefetchIssued, st.PrefetchCompleted, st.PrefetchAborted)
	}
	// Retry on the same region: the §2.2 gate forces the aborted region's
	// next load onto a complete stream, and the pipeline speculates into
	// it again. Driving the alternation on consumes pending prefetches —
	// any double-booking of the aborted bytes would break conservation on
	// the spot.
	for i := 15; i < 30; i++ {
		quiesce(t, s)
		if r := <-s.Submit(mk(i)); r.Err != nil {
			t.Fatalf("retry round %d: %v", i, r.Err)
		}
		check(t, s.Stats(), "retry")
	}
	s.Wait()
	st = s.Stats()
	check(t, st, "final")
	if st.PrefetchWasted > st.PrefetchBytes {
		t.Fatalf("wasted %d B exceeds speculative %d B", st.PrefetchWasted, st.PrefetchBytes)
	}
	if st.PrefetchHits == 0 {
		t.Fatalf("retry phase consumed no prefetch: %+v", st)
	}
}
