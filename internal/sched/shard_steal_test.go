package sched

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/pool"
	"repro/internal/predict"
	"repro/internal/tasks"
)

// stubRunner is a no-op task body: it needs the module configured (so the
// scheduler pays every stream the placement implies) but drives no
// hardware, keeping steal tests about dispatch order rather than kernel
// runtime.
type stubRunner struct{ module string }

func (r stubRunner) Name() string               { return "stub/" + r.module }
func (r stubRunner) Module() string             { return r.module }
func (r stubRunner) Run(*platform.System) error { return nil }

var _ tasks.Runner = stubRunner{}

// TestShardStealTakesOldestPrefix drives one steal synchronously and pins
// its FIFO contract: the thief takes the victim's oldest queue entries —
// at most half the queue — and both sides keep their relative order. The
// test is white-box on purpose: submitLocked enqueues without
// dispatching, so the victim's queue is in a known state when the thief's
// dispatch round runs on the test goroutine.
func TestShardStealTakesOldestPrefix(t *testing.T) {
	policy, err := PolicyByName("lru")
	if err != nil {
		t.Fatal(err)
	}
	p, err := pool.New(pool.Config{Sys32: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Options{Batch: 1, Policy: policy, Shards: 2})
	if s.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", s.Shards())
	}
	victim, thief := s.shards[0], s.shards[1]

	const n = 8
	chs := make([]<-chan Result, 0, n)
	victim.mu.Lock()
	for i := 0; i < n; i++ {
		chs = append(chs, victim.submitLocked(stubRunner{module: "jenkins"}, 0, false))
	}
	victim.mu.Unlock()

	// The thief's dispatch round finds no local work and one idle slot:
	// it must steal (n+1)/2 = 4 oldest requests (ids 1..4), dispatch the
	// head (id 1), and queue the rest in order.
	thief.mu.Lock()
	thief.dispatchLocked()
	if thief.stats.Steals != 1 || thief.stats.StolenRequests != 4 {
		t.Errorf("thief stole %d times / %d requests, want 1 / 4",
			thief.stats.Steals, thief.stats.StolenRequests)
	}
	gotThief := pendingIDs(thief)
	thief.mu.Unlock()

	victim.mu.Lock()
	gotVictim := pendingIDs(victim)
	victim.mu.Unlock()

	wantThief, wantVictim := []uint64{2, 3, 4}, []uint64{5, 6, 7, 8}
	if !equalIDs(gotThief, wantThief) {
		t.Errorf("thief queue after steal = %v, want oldest prefix %v (head dispatched)", gotThief, wantThief)
	}
	if !equalIDs(gotVictim, wantVictim) {
		t.Errorf("victim queue after steal = %v, want suffix %v in order", gotVictim, wantVictim)
	}

	// Release the victim's side and drain everything.
	victim.mu.Lock()
	victim.dispatchLocked()
	victim.mu.Unlock()
	for i, ch := range chs {
		if r := <-ch; r.Err != nil {
			t.Fatalf("request %d: %v", i+1, r.Err)
		}
	}
	s.Wait()
	st := s.Stats()
	if st.Requests != n || st.Done != n || st.Errors != 0 {
		t.Fatalf("requests/done/errors = %d/%d/%d, want %d/%d/0", st.Requests, st.Done, st.Errors, n, n)
	}
	if st.Steals < 1 || st.StolenRequests < 4 {
		t.Errorf("aggregate steals = %d/%d requests, want at least the pinned 1/4",
			st.Steals, st.StolenRequests)
	}
}

func pendingIDs(sh *shard) []uint64 {
	ids := make([]uint64, len(sh.pending))
	for i, r := range sh.pending {
		ids[i] = r.id
	}
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardConservationUnderStealing drives the full seeded mix through
// four single-member shards with the prefetch pipeline on — steals,
// speculative streams and cross-shard routing all active — and checks
// every conservation law the aggregate Stats promise. Run under -race
// this is the steal path's data-race probe.
func TestShardConservationUnderStealing(t *testing.T) {
	policy, err := PolicyByName("mincost")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := predict.New("markov")
	if err != nil {
		t.Fatal(err)
	}
	mix, err := ParseMix("sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1")
	if err != nil {
		t.Fatal(err)
	}
	const n = 80
	w, err := GenWorkload(7, n, mix)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pool.New(pool.Config{Sys32: 2, Sys64: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.SetPlanning(true)
	s := New(p, Options{Batch: 2, Policy: policy, Shards: 4, Prefetch: true, Predictor: pred})
	for i, ch := range s.SubmitAll(w) {
		if r := <-ch; r.Err != nil {
			t.Fatalf("request %d (%s): %v", i, w[i].Name(), r.Err)
		}
	}
	s.Wait()
	st := s.Stats()

	if st.Requests != n || st.Done != n || st.Errors != 0 {
		t.Fatalf("requests/done/errors = %d/%d/%d, want %d/%d/0", st.Requests, st.Done, st.Errors, n, n)
	}
	if st.Hits+st.Misses != st.Done {
		t.Errorf("hits %d + misses %d != done %d", st.Hits, st.Misses, st.Done)
	}
	if st.PrefetchBytes != st.PrefetchConsumed+st.PrefetchWasted+st.PrefetchPending {
		t.Errorf("speculative bytes leaked: streamed %d, consumed %d + wasted %d + pending %d",
			st.PrefetchBytes, st.PrefetchConsumed, st.PrefetchWasted, st.PrefetchPending)
	}
	var modReqs uint64
	for _, ms := range st.Modules {
		modReqs += ms.Requests
	}
	if modReqs != n {
		t.Errorf("per-module requests sum to %d, want %d", modReqs, n)
	}
	if len(st.Slots) != p.Slots() || len(st.BusyTime) != p.Slots() {
		t.Fatalf("stats carry %d slots / %d busy entries, want %d (pool order stitched across shards)",
			len(st.Slots), len(st.BusyTime), p.Slots())
	}
	for i := 1; i < len(st.Slots); i++ {
		a, b := st.Slots[i-1], st.Slots[i]
		if b.Member < a.Member || (b.Member == a.Member && b.Region <= a.Region) {
			t.Fatalf("slot order not pool order at %d: %+v then %+v", i, a, b)
		}
	}
}
