package sched

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/trace"
)

// drainTest busy-waits for a fully drained scheduler, like the bench
// suites' pacing discipline.
func drainTest(s *Scheduler) {
	for !s.Drained() {
		time.Sleep(50 * time.Microsecond)
	}
}

// tracedPacedDrive runs the deterministic paced drive the trace tests
// share — a mixed seeded workload, window 1, settled between arrivals —
// and returns the final stats and the pool it ran on (Options.Trace is
// nil when tr is nil).
func tracedPacedDrive(t *testing.T, tr *trace.Tracer) (Stats, *pool.Pool) {
	t.Helper()
	mix, err := ParseMix("jenkins=2,brightness=1,fade=2,blend=1")
	if err != nil {
		t.Fatal(err)
	}
	w, err := GenWorkload(7, 24, mix)
	if err != nil {
		t.Fatal(err)
	}
	p := pool32(t, 2)
	s := New(p, Options{Batch: 1, Trace: tr})
	s.SubmitWindowed(w, 1, func(r Result) {
		if r.Err != nil {
			t.Errorf("request %d (%s): %v", r.ID, r.Task, r.Err)
		}
		drainTest(s)
	})
	s.Wait()
	return s.Stats(), p
}

// TestTraceDeterministicPacedRuns drives the identical paced workload
// twice with tracing on: the exported Chrome trace-event JSON must be
// byte-identical — the reproducibility property that lets traced runs
// (and the S9 SLO suite built on the same clock) gate in CI.
func TestTraceDeterministicPacedRuns(t *testing.T) {
	var runs [][]byte
	for i := 0; i < 2; i++ {
		tr := trace.New()
		tracedPacedDrive(t, tr)
		if tr.Len() == 0 {
			t.Fatal("traced run emitted no events")
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		runs = append(runs, buf.Bytes())
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatalf("paced runs traced differently: %d vs %d bytes", len(runs[0]), len(runs[1]))
	}
}

// TestTraceConservationDispatch checks the span-sum conservation law on
// the request path: summed over every (member, region) track, the config
// spans equal Stats.Config exactly and the compute spans equal
// Stats.Work — the trace is the accounting, not an approximation of it.
func TestTraceConservationDispatch(t *testing.T) {
	tr := trace.New()
	st, p := tracedPacedDrive(t, tr)
	events := tr.Events()
	var config, work sim.Time
	for _, m := range p.Members() {
		for ri := 0; ri < m.Sys.NumRegions(); ri++ {
			config += trace.SumDur(events, trace.KindConfig, int32(m.ID), int32(ri))
			work += trace.SumDur(events, trace.KindCompute, int32(m.ID), int32(ri))
		}
	}
	if st.Config == 0 || st.Work == 0 {
		t.Fatalf("degenerate drive: config %v work %v", st.Config, st.Work)
	}
	if config != st.Config {
		t.Fatalf("config spans sum to %v, Stats.Config %v", config, st.Config)
	}
	if work != st.Work {
		t.Fatalf("compute spans sum to %v, Stats.Work %v", work, st.Work)
	}
}

// TestTraceDisabledMatchesUntraced reruns the paced drive with tracing
// off and on: the scheduler's simulated accounting must be identical —
// tracing observes the run, it never perturbs placement or time.
func TestTraceDisabledMatchesUntraced(t *testing.T) {
	off, _ := tracedPacedDrive(t, nil)
	on, _ := tracedPacedDrive(t, trace.New())
	if off.Config != on.Config || off.Work != on.Work ||
		off.BytesStreamed != on.BytesStreamed ||
		off.Hits != on.Hits || off.Misses != on.Misses ||
		off.Done != on.Done || off.Errors != on.Errors {
		t.Fatalf("stats diverge with tracing on:\noff %+v\non  %+v", off, on)
	}
}

// TestTraceDisabledZeroOverheadDispatch is the benchmark assertion
// guarding the hot path: the exact nil-check guard the dispatch and
// record paths use, plus a nil-receiver Emit, must allocate nothing and
// construct no event. A regression here (an unconditional Event build, a
// sink behind the nil tracer) fails the assertion immediately.
func TestTraceDisabledZeroOverheadDispatch(t *testing.T) {
	s := New(pool32(t, 1), Options{}) // Trace nil: the default
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if tr := s.opts.Trace; tr != nil {
				tr.Emit(trace.Event{Ts: 0, Kind: trace.KindDispatch})
			}
			s.opts.Trace.Emit(trace.Event{Kind: trace.KindComplete, Name: "noop"})
		}
	})
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("disabled-trace dispatch guard allocates %d/op, want 0", a)
	}
	s.Wait()
}
