package sched

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/tasks"
)

func cand(idx int, resident string, lastUsed uint64, bytes int) Candidate {
	return Candidate{Index: idx, Resident: resident, LastUsed: lastUsed,
		Plan: plan.Plan{Module: "m", Kind: plan.StreamDifferential, Bytes: bytes}, PlanOK: true}
}

func TestPolicyRegistry(t *testing.T) {
	for _, name := range []string{"", "lru", "mincost", "prefetch", "gang"} {
		if _, err := PolicyByName(name); err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
	if names := PolicyNames(); len(names) != 4 || names[0] != "gang" || names[1] != "lru" || names[2] != "mincost" || names[3] != "prefetch" {
		t.Errorf("PolicyNames() = %v", names)
	}
}

func TestLRUPolicyPick(t *testing.T) {
	p, _ := PolicyByName("lru")
	cands := []Candidate{cand(0, "a", 5, 100), cand(1, "b", 2, 900), cand(2, "c", 7, 10)}
	if got := p.Pick("m", cands); got != 1 {
		t.Errorf("lru picked %d, want 1 (least recently used)", got)
	}
	// A member with the module resident always wins.
	cands[2].Resident = "m"
	if got := p.Pick("m", cands); got != 2 {
		t.Errorf("lru picked %d, want resident member 2", got)
	}
}

func TestMinCostPolicyPick(t *testing.T) {
	p, _ := PolicyByName("mincost")
	cands := []Candidate{cand(0, "a", 1, 500), cand(1, "b", 9, 40), cand(2, "c", 3, 300)}
	if got := p.Pick("m", cands); got != 1 {
		t.Errorf("mincost picked %d, want 1 (cheapest planned stream)", got)
	}
	// Resident module wins outright.
	cands[0].Resident = "m"
	if got := p.Pick("m", cands); got != 0 {
		t.Errorf("mincost picked %d, want resident member 0", got)
	}
	cands[0].Resident = "a"
	// Cost ties fall back to LRU order.
	cands[1].Plan.Bytes = 300
	if got := p.Pick("m", cands); got != 2 {
		t.Errorf("mincost picked %d on tie, want 2 (older lastUsed)", got)
	}
	// An unplannable member is the last resort.
	cands[2].PlanOK = false
	if got := p.Pick("m", cands); got != 1 {
		t.Errorf("mincost picked %d, want 1 (plannable beats unplannable)", got)
	}
}

func TestPrefetchPolicyPick(t *testing.T) {
	p, _ := PolicyByName("prefetch")
	// Without reuse estimates the policy is mincost.
	cands := []Candidate{cand(0, "a", 1, 500), cand(1, "b", 9, 40), cand(2, "c", 3, 300)}
	if got := p.Pick("m", cands); got != 1 {
		t.Errorf("prefetch picked %d without predictor, want 1 (cheapest)", got)
	}
	// A hot resident is protected: evicting b (cheapest stream, but its
	// resident is predicted next with certainty) costs 40 + 1.0*500 = 540,
	// so the mid-priced quiet member wins.
	cands[1].ReuseProb = 1
	if got := p.Pick("m", cands); got != 2 {
		t.Errorf("prefetch picked %d, want 2 (protects hot resident)", got)
	}
	// The resident module still wins outright.
	cands[0].Resident = "m"
	if got := p.Pick("m", cands); got != 0 {
		t.Errorf("prefetch picked %d, want resident member 0", got)
	}
}

// TestMinCostPlacementPicksCheaperMember warms two members with different
// modules, then checks that a request for a third module lands on the
// member whose planned transition streams fewer bytes — agreeing with the
// members' own planners.
func TestMinCostPlacementPicksCheaperMember(t *testing.T) {
	p := pool32(t, 2)
	policy, _ := PolicyByName("mincost")
	s := New(p, Options{Policy: policy})
	r1 := <-s.Submit(tasks.JenkinsRun{Seed: 1, Len: 128})
	r2 := <-s.Submit(tasks.PatternRun{Seed: 2, W: 32, H: 16, Threshold: 56})
	if r1.Err != nil || r2.Err != nil {
		t.Fatalf("warmup errors: %v / %v", r1.Err, r2.Err)
	}
	if r1.Member == r2.Member {
		t.Fatalf("warmup requests share member %d", r1.Member)
	}
	members := p.Members()
	pl1, err := members[r1.Member].Sys.PlanFor("blend")
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := members[r2.Member].Sys.PlanFor("blend")
	if err != nil {
		t.Fatal(err)
	}
	if pl1.Bytes == pl2.Bytes {
		t.Skipf("transitions cost the same (%d B): placement is cost-indifferent", pl1.Bytes)
	}
	want := r1.Member
	wantBytes, otherBytes := pl1.Bytes, pl2.Bytes
	if pl2.Bytes < pl1.Bytes {
		want = r2.Member
		wantBytes, otherBytes = pl2.Bytes, pl1.Bytes
	}
	r3 := <-s.Submit(tasks.BlendRun{Seed: 3, N: 256})
	s.Wait()
	if r3.Err != nil {
		t.Fatal(r3.Err)
	}
	if r3.Member != want {
		t.Fatalf("blend ran on member %d (%d B planned), want member %d (%d B)",
			r3.Member, otherBytes, want, wantBytes)
	}
	if r3.Report.Kind != plan.StreamDifferential || r3.Report.BytesStreamed != wantBytes {
		t.Fatalf("blend report %+v, want differential of %d B", r3.Report, wantBytes)
	}
}

// TestStressInvariantsMinCost drives the seeded mixed stress workload with
// cost-aware placement (run with -race) and checks the accounting
// invariants that tie the three layers together: the sum of member busy
// times equals the scheduler's Config+Work totals, and the pool snapshot's
// per-member manager counters add up to the scheduler's miss, config-time
// and streamed-byte totals.
func TestStressInvariantsMinCost(t *testing.T) {
	p, err := pool.New(pool.Config{Sys32: 2, Sys64: 2})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := ParseMix("sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1")
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	w, err := GenWorkload(99, n, mix)
	if err != nil {
		t.Fatal(err)
	}
	policy, _ := PolicyByName("mincost")
	s := New(p, Options{Batch: 3, Policy: policy})
	for i, r := range collect(t, s.SubmitAll(w)) {
		if r.Err != nil {
			t.Fatalf("request %d (%s): %v", i, r.Task, r.Err)
		}
	}
	s.Wait()
	st := s.Stats()
	if st.Done != n || st.Errors != 0 {
		t.Fatalf("stats %+v, want %d clean completions", st, n)
	}
	var busy sim.Time
	for _, b := range st.BusyTime {
		busy += b
	}
	if busy != st.Config+st.Work {
		t.Errorf("sum of member busy time %v != config %v + work %v", busy, st.Config, st.Work)
	}
	if st.DiffLoads+st.CompleteLoads != st.Misses {
		t.Errorf("diff %d + complete %d loads != misses %d", st.DiffLoads, st.CompleteLoads, st.Misses)
	}
	var modBytes, modDiffs, modCompletes uint64
	for _, ms := range st.Modules {
		modBytes += ms.Bytes
		modDiffs += ms.Diffs
		modCompletes += ms.Completes
	}
	if modBytes != st.BytesStreamed || modDiffs != st.DiffLoads || modCompletes != st.CompleteLoads {
		t.Errorf("per-module sums (bytes %d diffs %d completes %d) != totals (%d %d %d)",
			modBytes, modDiffs, modCompletes, st.BytesStreamed, st.DiffLoads, st.CompleteLoads)
	}
	var loads, completeLoads, diffLoads, bytes uint64
	var loadTime sim.Time
	for _, m := range p.Snapshot() {
		if m.Corrupted {
			t.Fatalf("member %d: static design corrupted", m.ID)
		}
		loads += m.Loads
		completeLoads += m.CompleteLoads
		diffLoads += m.DiffLoads
		bytes += m.StreamedBytes
		loadTime += m.LoadTime
	}
	if loads != st.Misses {
		t.Errorf("snapshot loads %d != scheduler misses %d", loads, st.Misses)
	}
	if completeLoads != st.CompleteLoads || diffLoads != st.DiffLoads {
		t.Errorf("snapshot kinds (%d complete, %d diff) != scheduler (%d, %d)",
			completeLoads, diffLoads, st.CompleteLoads, st.DiffLoads)
	}
	if bytes != st.BytesStreamed {
		t.Errorf("snapshot streamed bytes %d != scheduler %d", bytes, st.BytesStreamed)
	}
	if loadTime != st.Config {
		t.Errorf("snapshot config time %v != scheduler %v", loadTime, st.Config)
	}
}
