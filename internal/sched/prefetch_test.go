package sched

import (
	"testing"
	"time"

	"repro/internal/pool"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/tasks"
)

// quiesce waits until the scheduler has fully settled, so sequential
// tests can observe prefetch outcomes deterministically.
func quiesce(t testing.TB, s *Scheduler) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !s.Drained() {
		if time.Now().After(deadline) {
			t.Fatalf("scheduler never drained: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPrefetchDisabledByDefault: without Options.Prefetch the scheduler
// never touches a member speculatively.
func TestPrefetchDisabledByDefault(t *testing.T) {
	s := New(pool32(t, 2), Options{})
	if r := <-s.Submit(tasks.FadeRun{Seed: 1, N: 256, F: 10}); r.Err != nil {
		t.Fatal(r.Err)
	}
	s.Wait()
	st := s.Stats()
	if st.PrefetchIssued != 0 || st.PrefetchBytes != 0 || st.HiddenConfig != 0 {
		t.Fatalf("prefetch activity without Prefetch enabled: %+v", st)
	}
}

// TestPrefetchHidesConfigOnLearnedCycle trains the markov predictor on a
// strict fade → brightness → blend rotation driven closed-loop over only
// two members: the three modules cannot all stay resident, so without
// prefetch every third request would reconfigure on the request path. Once
// the transition rows are warm, each next request must find its module
// already configured (or arriving) on the idle member and execute with
// zero visible configuration time.
func TestPrefetchHidesConfigOnLearnedCycle(t *testing.T) {
	pred, err := predict.New("markov")
	if err != nil {
		t.Fatal(err)
	}
	s := New(pool32(t, 2), Options{Prefetch: true, Predictor: pred})
	mk := func(i int) tasks.Runner {
		switch i % 3 {
		case 0:
			return tasks.FadeRun{Seed: int64(i), N: 256, F: 50}
		case 1:
			return tasks.BrightnessRun{Seed: int64(i), N: 256, Delta: 5}
		}
		return tasks.BlendRun{Seed: int64(i), N: 256}
	}
	const rounds = 33
	var warmHits int
	for i := 0; i < rounds; i++ {
		quiesce(t, s) // let any speculative stream finish before submitting
		r := <-s.Submit(mk(i))
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		// Warmup: the first cycles are cold and each of the three markov
		// rows needs its observations (one per three arrivals) before the
		// predictor trusts it. From round 24 on, every request must be a
		// zero-config hit on the prefetched member.
		if i >= 24 {
			if !r.Report.CacheHit || r.Report.Config != 0 {
				t.Errorf("round %d: report %+v, want prefetched zero-config hit", i, r.Report)
			} else {
				warmHits++
			}
		}
	}
	s.Wait()
	st := s.Stats()
	if st.PrefetchIssued == 0 || st.PrefetchHits == 0 {
		t.Fatalf("no prefetch activity recorded: %+v", st)
	}
	if warmHits == 0 {
		t.Fatal("no warm rounds hit")
	}
	if st.HiddenConfig == 0 {
		t.Fatalf("prefetch hits hid no configuration time: %+v", st)
	}
	if st.PrefetchHits > st.Hits {
		t.Fatalf("prefetch hits %d exceed total hits %d", st.PrefetchHits, st.Hits)
	}
}

// TestPrefetchStressNoHazard is the §2.2 safety stress for the prefetch
// pipeline (run with -race): a seeded mixed workload driven with a small
// submission window over a 2+2 pool, with speculative streams constantly
// being issued, ridden and aborted. Every task self-verifies against its
// oracle, so a single execution against stale speculative state — the
// hazard the gate must make impossible — turns into a hard failure, as
// does any static-design corruption. The cross-layer accounting must
// balance with the speculative traffic included.
func TestPrefetchStressNoHazard(t *testing.T) {
	p, err := pool.New(pool.Config{Sys32: 2, Sys64: 2})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := ParseMix("sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1")
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	w, err := GenWorkload(99, n, mix)
	if err != nil {
		t.Fatal(err)
	}
	policy, _ := PolicyByName("prefetch")
	s := New(p, Options{Batch: 3, Policy: policy, Prefetch: true})

	// Closed loop with a window of 2: members regularly go idle while
	// others compute — the overlap the prefetcher exploits.
	s.SubmitWindowed(w, 2, func(r Result) {
		if r.Err != nil {
			t.Fatalf("request %d (%s): %v", r.ID, r.Task, r.Err)
		}
	})
	s.Wait()

	st := s.Stats()
	if st.Done != n || st.Errors != 0 {
		t.Fatalf("stats %+v, want %d clean completions", st, n)
	}
	if st.PrefetchIssued == 0 {
		t.Fatal("stress run issued no speculative loads")
	}
	if st.PrefetchIssued != st.PrefetchCompleted+st.PrefetchAborted {
		t.Fatalf("speculative loads unresolved after Wait: issued %d, completed %d, aborted %d",
			st.PrefetchIssued, st.PrefetchCompleted, st.PrefetchAborted)
	}
	if st.PrefetchWasted > st.PrefetchBytes {
		t.Fatalf("wasted %d B exceeds speculative %d B", st.PrefetchWasted, st.PrefetchBytes)
	}
	// Exact conservation: every speculative byte is consumed, wasted, or
	// still pending — counted once, even across abort-then-retry cycles.
	if st.PrefetchBytes != st.PrefetchConsumed+st.PrefetchWasted+st.PrefetchPending {
		t.Fatalf("speculative bytes unbalanced: streamed %d != consumed %d + wasted %d + pending %d",
			st.PrefetchBytes, st.PrefetchConsumed, st.PrefetchWasted, st.PrefetchPending)
	}
	if st.PrefetchHits > st.Hits {
		t.Fatalf("prefetch hits %d exceed hits %d", st.PrefetchHits, st.Hits)
	}

	// Visible (request-path) accounting still balances...
	var busy sim.Time
	for _, b := range st.BusyTime {
		busy += b
	}
	if busy != st.Config+st.Work {
		t.Errorf("sum of member busy time %v != config %v + work %v", busy, st.Config, st.Work)
	}
	if st.DiffLoads+st.CompleteLoads != st.Misses {
		t.Errorf("diff %d + complete %d loads != misses %d", st.DiffLoads, st.CompleteLoads, st.Misses)
	}
	// ...and the pool's manager counters equal request-path plus
	// speculative traffic: nothing streamed is unaccounted.
	var loads, aborted, bytes uint64
	var loadTime sim.Time
	for _, m := range p.Snapshot() {
		if m.Corrupted {
			t.Fatalf("member %d: static design corrupted", m.ID)
		}
		loads += m.Loads
		aborted += m.AbortedLoads
		bytes += m.StreamedBytes
		loadTime += m.LoadTime
	}
	if loads != st.Misses+st.PrefetchLoads {
		t.Errorf("snapshot loads %d != misses %d + speculative streams %d",
			loads, st.Misses, st.PrefetchLoads)
	}
	if aborted > st.PrefetchAborted {
		t.Errorf("snapshot aborted loads %d exceed scheduler count %d", aborted, st.PrefetchAborted)
	}
	if bytes != st.BytesStreamed+st.PrefetchBytes {
		t.Errorf("snapshot streamed bytes %d != visible %d + speculative %d",
			bytes, st.BytesStreamed, st.PrefetchBytes)
	}
	if loadTime != st.Config+st.PrefetchConfig {
		t.Errorf("snapshot config time %v != visible %v + speculative %v",
			loadTime, st.Config, st.PrefetchConfig)
	}
}
