package sched

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/tasks"
)

// warmWorkload issues n requests for the same module; coldWorkload
// alternates two modules so every request misses the bitstream cache.
func warmWorkload(n int) []tasks.Runner {
	w := make([]tasks.Runner, 0, n)
	for i := 0; i < n; i++ {
		w = append(w, tasks.BrightnessRun{Seed: int64(i), N: 512, Delta: 9})
	}
	return w
}

func coldWorkload(n int) []tasks.Runner {
	w := make([]tasks.Runner, 0, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			w = append(w, tasks.BrightnessRun{Seed: int64(i), N: 512, Delta: 9})
		} else {
			w = append(w, tasks.BlendRun{Seed: int64(i), N: 512})
		}
	}
	return w
}

func runWorkload(t testing.TB, w []tasks.Runner) Stats {
	s := New(pool32(t, 1), Options{})
	for _, ch := range s.SubmitAll(w) {
		if r := <-ch; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	s.Wait()
	return s.Stats()
}

func busy(st Stats) sim.Time {
	var total sim.Time
	for _, b := range st.BusyTime {
		total += b
	}
	return total
}

// TestCacheFriendlySpeedup is the acceptance criterion: the same request
// count on the same pool must complete at least twice as fast (in
// simulated time) when the workload is cache-friendly as when every
// request reconfigures.
func TestCacheFriendlySpeedup(t *testing.T) {
	const n = 12
	warm := runWorkload(t, warmWorkload(n))
	cold := runWorkload(t, coldWorkload(n))
	if warm.Misses != 1 || warm.Hits != n-1 {
		t.Fatalf("warm workload: hits=%d misses=%d, want %d/1", warm.Hits, warm.Misses, n-1)
	}
	if cold.Misses != n {
		t.Fatalf("cold workload: misses=%d, want %d", cold.Misses, n)
	}
	bw, bc := busy(warm), busy(cold)
	speedup := float64(bc) / float64(bw)
	t.Logf("simulated busy time: warm %v, cold %v, speedup %.1fx (config warm %v vs cold %v)",
		bw, bc, speedup, warm.Config, cold.Config)
	if speedup < 2 {
		t.Fatalf("cache-friendly speedup %.2fx < 2x", speedup)
	}
}

// The benchmarks report the simulated-time economics of the bitstream
// cache alongside wall-clock cost: sim-us/req is the metric that matches
// the paper's tables.
func benchWorkload(b *testing.B, mk func(int) []tasks.Runner) {
	const n = 12
	for i := 0; i < b.N; i++ {
		st := runWorkload(b, mk(n))
		b.ReportMetric(busy(st).Microseconds()/float64(n), "sim-us/req")
		b.ReportMetric(st.HitRate(), "hit-rate")
	}
}

func BenchmarkSchedulerCacheFriendly(b *testing.B) { benchWorkload(b, warmWorkload) }

func BenchmarkSchedulerCacheCold(b *testing.B) { benchWorkload(b, coldWorkload) }
