package sched

import (
	"testing"

	"repro/internal/pool"
	"repro/internal/tasks"
)

func pool32(t testing.TB, n int) *pool.Pool {
	t.Helper()
	p, err := pool.New(pool.Config{Sys32: n})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func collect(t testing.TB, chans []<-chan Result) []Result {
	t.Helper()
	out := make([]Result, len(chans))
	for i, ch := range chans {
		out[i] = <-ch
	}
	return out
}

// TestCacheHitBeatsMiss is the table-driven core property: for every
// module, the second consecutive request is a cache hit with zero
// configuration time and strictly lower latency than the cold request.
func TestCacheHitBeatsMiss(t *testing.T) {
	cases := []struct {
		name string
		mk   func(seed int64) tasks.Runner
	}{
		{"brightness", func(s int64) tasks.Runner { return tasks.BrightnessRun{Seed: s, N: 512, Delta: 10} }},
		{"blend", func(s int64) tasks.Runner { return tasks.BlendRun{Seed: s, N: 512} }},
		{"fade", func(s int64) tasks.Runner { return tasks.FadeRun{Seed: s, N: 512, F: 77} }},
		{"jenkins", func(s int64) tasks.Runner { return tasks.JenkinsRun{Seed: s, Len: 256} }},
		{"patternmatch", func(s int64) tasks.Runner { return tasks.PatternRun{Seed: s, W: 32, H: 16, Threshold: 56} }},
		{"passthrough", func(s int64) tasks.Runner { return tasks.TransferRun{Kind: tasks.TransferWrite, Words: 128} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(pool32(t, 1), Options{})
			res := collect(t, s.SubmitAll([]tasks.Runner{tc.mk(1), tc.mk(2)}))
			s.Wait()
			miss, hit := res[0], res[1]
			if miss.Err != nil || hit.Err != nil {
				t.Fatalf("errors: %v / %v", miss.Err, hit.Err)
			}
			if miss.Report.CacheHit || miss.Report.Config == 0 {
				t.Fatalf("first request: %+v, want cold miss", miss.Report)
			}
			if !hit.Report.CacheHit || hit.Report.Config != 0 {
				t.Fatalf("second request: %+v, want warm hit", hit.Report)
			}
			if hit.Latency() >= miss.Latency() {
				t.Fatalf("hit latency %v not below miss latency %v", hit.Latency(), miss.Latency())
			}
			st := s.Stats()
			if st.Hits != 1 || st.Misses != 1 {
				t.Fatalf("stats hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
			}
		})
	}
}

// TestFIFOFairnessUnderContention submits an alternating-module workload
// to a single member with batching disabled: completion order must equal
// submission order even though reordering by module would halve the
// reconfigurations.
func TestFIFOFairnessUnderContention(t *testing.T) {
	s := New(pool32(t, 1), Options{Batch: 1})
	var w []tasks.Runner
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			w = append(w, tasks.FadeRun{Seed: int64(i), N: 256, F: 50})
		} else {
			w = append(w, tasks.BrightnessRun{Seed: int64(i), N: 256, Delta: 5})
		}
	}
	res := collect(t, s.SubmitAll(w))
	s.Wait()
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if r.Seq != r.ID {
			t.Fatalf("request %d completed as seq %d (ID %d): FIFO violated", i, r.Seq, r.ID)
		}
		if r.Report.CacheHit {
			t.Errorf("request %d: unexpected cache hit in alternating FIFO workload", i)
		}
	}
	if st := s.Stats(); st.Misses != 10 {
		t.Fatalf("misses = %d, want 10 (every request reconfigures)", st.Misses)
	}
}

// TestBatchingGroupsSameModule enables a batch window on the same
// alternating workload: the scheduler may pull same-module requests
// forward, cutting reconfigurations to one per module.
func TestBatchingGroupsSameModule(t *testing.T) {
	s := New(pool32(t, 1), Options{Batch: 8})
	var w []tasks.Runner
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			w = append(w, tasks.FadeRun{Seed: int64(i), N: 256, F: 50})
		} else {
			w = append(w, tasks.BrightnessRun{Seed: int64(i), N: 256, Delta: 5})
		}
	}
	res := collect(t, s.SubmitAll(w))
	s.Wait()
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	st := s.Stats()
	if st.Misses > 3 {
		t.Fatalf("misses = %d, want <=3 (batching rides warm configurations)", st.Misses)
	}
	if st.Hits+st.Misses != 10 {
		t.Fatalf("hits+misses = %d, want 10", st.Hits+st.Misses)
	}
}

// TestUnsupportedModuleFailsFast: sha1 does not fit a pure 32-bit pool.
func TestUnsupportedModuleFailsFast(t *testing.T) {
	s := New(pool32(t, 2), Options{})
	r := <-s.Submit(tasks.SHA1Run{Seed: 1, Len: 64})
	s.Wait()
	if r.Err == nil || r.Member != -1 {
		t.Fatalf("result %+v, want immediate unsupported-module error", r)
	}
	if st := s.Stats(); st.Errors != 1 || st.Done != 1 {
		t.Fatalf("stats %+v, want one errored completion", st)
	}
}

// TestStressMixedWorkload drives a seeded random mixed workload across a
// 4-system pool (run with -race): every request must verify, every sha1
// must land on a 64-bit member, and the counters must balance.
func TestStressMixedWorkload(t *testing.T) {
	p, err := pool.New(pool.Config{Sys32: 2, Sys64: 2})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := ParseMix("sha1=1,jenkins=2,patternmatch=1,brightness=2,blend=2,fade=2,transfer=1")
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	w, err := GenWorkload(99, n, mix)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Options{Batch: 3})
	res := collect(t, s.SubmitAll(w))
	s.Wait()

	seenID := make(map[uint64]bool)
	perModule := make(map[string]uint64)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("request %d (%s): %v", i, r.Task, r.Err)
		}
		if seenID[r.ID] {
			t.Fatalf("duplicate result for request %d", r.ID)
		}
		seenID[r.ID] = true
		if r.Module == "sha1" && r.System != "sys64" {
			t.Fatalf("sha1 request ran on %s", r.System)
		}
		if r.Member < 0 || r.Member >= p.Size() {
			t.Fatalf("request %d ran on member %d", i, r.Member)
		}
		perModule[r.Module]++
	}
	st := s.Stats()
	if st.Done != n || st.Hits+st.Misses != n || st.Errors != 0 {
		t.Fatalf("stats %+v, want %d clean completions", st, n)
	}
	var fromStats uint64
	for mod, ms := range st.Modules {
		if ms.Requests != perModule[mod] {
			t.Errorf("module %s: stats count %d, results count %d", mod, ms.Requests, perModule[mod])
		}
		fromStats += ms.Requests
	}
	if fromStats != n {
		t.Fatalf("per-module stats sum %d, want %d", fromStats, n)
	}
	for _, m := range p.Snapshot() {
		if m.Corrupted {
			t.Fatalf("member %d: static design corrupted", m.ID)
		}
	}
	// Determinism of the generator itself.
	w2, err := GenWorkload(99, n, mix)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if w[i].Name() != w2[i].Name() {
			t.Fatalf("workload not deterministic at %d: %s vs %s", i, w[i].Name(), w2[i].Name())
		}
	}
}

// TestAffinityPrefersWarmMember: with two members and a warm module on the
// second, a new request for that module must land on the warm member even
// though the first is the LRU choice.
func TestAffinityPrefersWarmMember(t *testing.T) {
	p := pool32(t, 2)
	s := New(p, Options{})
	// Warm member selection is deterministic here: the first dispatch goes
	// to the LRU member (member 0), the second must go to... member 1 only
	// if member 0 is busy; serialize instead: run fade, then brightness
	// (evicts nothing on the other member), then fade again.
	r1 := <-s.Submit(tasks.FadeRun{Seed: 1, N: 256, F: 10})
	r2 := <-s.Submit(tasks.BrightnessRun{Seed: 2, N: 256, Delta: 3})
	r3 := <-s.Submit(tasks.FadeRun{Seed: 3, N: 256, F: 20})
	s.Wait()
	for _, r := range []Result{r1, r2, r3} {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if !r3.Report.CacheHit || r3.Member != r1.Member {
		t.Fatalf("third request member=%d hit=%v; want warm member %d",
			r3.Member, r3.Report.CacheHit, r1.Member)
	}
	if r2.Member == r1.Member {
		t.Fatalf("second request reused member %d; want the LRU (blank) member", r1.Member)
	}
}
