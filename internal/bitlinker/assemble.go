package bitlinker

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/busmacro"
	"repro/internal/fabric"
)

// Placed is a component plus its placement inside the region (CLB offsets
// relative to the region origin).
type Placed struct {
	C      *Component
	ColOff int
	RowOff int
}

// Assembler produces partial configurations for one dynamic region. It keeps
// the static design baseline (the frames of the initial full configuration),
// which it needs to rebuild full-height frames without disturbing the static
// circuits above and below the region.
type Assembler struct {
	dev      *fabric.Device
	region   fabric.Region
	baseline *fabric.ConfigMemory
	dock     *busmacro.Macro
}

// New returns an assembler for the region. baseline must hold the static
// design's configuration; dock is the bus macro offered by the static side
// (nil if the region has no dock).
func New(dev *fabric.Device, region fabric.Region, baseline *fabric.ConfigMemory, dock *busmacro.Macro) (*Assembler, error) {
	if err := dev.ValidateRegion(region); err != nil {
		return nil, err
	}
	if baseline.Device() != dev {
		return nil, fmt.Errorf("bitlinker: baseline belongs to a different device")
	}
	if dock != nil {
		if err := dock.Validate(dev, region); err != nil {
			return nil, err
		}
	}
	return &Assembler{dev: dev, region: region, baseline: baseline, dock: dock}, nil
}

// Result is an assembled partial configuration.
type Result struct {
	Stream *bitstream.Stream
	// Frames is the number of configuration frames the stream writes.
	Frames int
	// RegionHash is the content hash the region will have after loading the
	// stream (used to register behavioural bindings).
	RegionHash uint64
}

// Assemble relocates and merges the placed components and emits a complete
// (non-differential) configuration of the whole region: every frame of every
// region column is written, so the result is correct regardless of the
// region's previous configuration.
func (a *Assembler) Assemble(placements ...Placed) (*Result, error) {
	if err := a.check(placements); err != nil {
		return nil, err
	}
	target := a.targetImage(placements)
	runs, frames := a.regionRuns(target)
	s, err := bitstream.Build(a.dev, runs)
	if err != nil {
		return nil, err
	}
	return &Result{Stream: s, Frames: frames, RegionHash: target.RegionHash(a.region)}, nil
}

// AssembleDifferential emits only the frames that differ from the assumed
// prior image (the paper's "differential" configurations, §2.2). The stream
// is smaller and loads faster, but yields a correct region configuration
// only when the region actually holds the assumed image at load time.
func (a *Assembler) AssembleDifferential(assumed *fabric.ConfigMemory, placements ...Placed) (*Result, error) {
	if err := a.check(placements); err != nil {
		return nil, err
	}
	if assumed.Device() != a.dev {
		return nil, fmt.Errorf("bitlinker: assumed image belongs to a different device")
	}
	target := a.targetImage(placements)
	var runs []bitstream.FrameRun
	cur := -1 // index into runs of the run being extended, -1 if none
	frames := 0
	a.forEachRegionFAR(func(far fabric.FAR) {
		want, _ := target.ReadFrame(far)
		have, _ := assumed.ReadFrame(far)
		same := true
		for i := range want {
			if want[i] != have[i] {
				same = false
				break
			}
		}
		if same {
			cur = -1
			return
		}
		frames++
		if cur >= 0 {
			// Extend the current run when far follows its last frame.
			startIdx, _ := a.dev.FrameIndex(runs[cur].Start)
			farIdx, _ := a.dev.FrameIndex(far)
			if farIdx == startIdx+len(runs[cur].Frames) {
				runs[cur].Frames = append(runs[cur].Frames, want)
				return
			}
		}
		runs = append(runs, bitstream.FrameRun{Start: far, Frames: [][]uint32{want}})
		cur = len(runs) - 1
	})
	if len(runs) == 0 {
		return nil, fmt.Errorf("bitlinker: differential configuration is empty (target equals assumed image)")
	}
	s, err := bitstream.Build(a.dev, runs)
	if err != nil {
		return nil, err
	}
	return &Result{Stream: s, Frames: frames, RegionHash: target.RegionHash(a.region)}, nil
}

// AssembleNaive emits a configuration of the region columns whose frames
// carry the component data in the band but ZEROS above and below it —
// the mistake a configuration assembly tool must avoid, since it destroys
// the static circuits sharing those full-height frames. It exists to
// demonstrate the hazard (ablation A2); production code must use Assemble.
func (a *Assembler) AssembleNaive(placements ...Placed) (*Result, error) {
	if err := a.check(placements); err != nil {
		return nil, err
	}
	blank := fabric.NewConfigMemory(a.dev)
	target := a.stampInto(blank, placements)
	runs, frames := a.regionRuns(target)
	s, err := bitstream.Build(a.dev, runs)
	if err != nil {
		return nil, err
	}
	return &Result{Stream: s, Frames: frames, RegionHash: target.RegionHash(a.region)}, nil
}

// check validates placements: footprint fit, overlap, dock alignment, BRAM
// budget, and macro compatibility.
func (a *Assembler) check(placements []Placed) error {
	if len(placements) == 0 {
		return fmt.Errorf("bitlinker: nothing to assemble")
	}
	r := a.region
	bram := 0
	occupied := make(map[[2]int]string)
	docked := 0
	for _, p := range placements {
		c := p.C
		if err := c.Validate(); err != nil {
			return err
		}
		if p.ColOff < 0 || p.RowOff < 0 || p.ColOff+c.W > r.W || p.RowOff+c.H > r.H {
			return fmt.Errorf("bitlinker: component %s at (%d,%d) exceeds region %s",
				c.Name, p.ColOff, p.RowOff, r.Name)
		}
		for col := p.ColOff; col < p.ColOff+c.W; col++ {
			for row := p.RowOff; row < p.RowOff+c.H; row++ {
				key := [2]int{col, row}
				if prev, ok := occupied[key]; ok {
					return fmt.Errorf("bitlinker: components %s and %s overlap at region CLB (%d,%d)",
						prev, c.Name, col, row)
				}
				occupied[key] = c.Name
			}
		}
		bram += c.Resources.BRAMs
		if c.Macro != nil {
			docked++
			if a.dock == nil {
				return fmt.Errorf("bitlinker: component %s needs a dock, region has none", c.Name)
			}
			if !busmacro.Compatible(c.Macro, a.dock) {
				return fmt.Errorf("bitlinker: component %s port contract %v does not match dock macro %v",
					c.Name, c.Macro, a.dock)
			}
			// The ports must land exactly on the dock macro LUT rows, and
			// the component must abut the dock edge of the region.
			if p.RowOff+c.PortRow0 != a.dock.Row0 {
				return fmt.Errorf("bitlinker: component %s ports land on region row %d, dock macro is at row %d",
					c.Name, p.RowOff+c.PortRow0, a.dock.Row0)
			}
			switch a.dock.Side {
			case busmacro.RightEdge:
				if p.ColOff+c.W != r.W {
					return fmt.Errorf("bitlinker: component %s must abut the region's right edge to reach the dock", c.Name)
				}
			case busmacro.LeftEdge:
				if p.ColOff != 0 {
					return fmt.Errorf("bitlinker: component %s must abut the region's left edge to reach the dock", c.Name)
				}
			}
		}
	}
	if docked > 1 {
		return fmt.Errorf("bitlinker: %d components claim the dock, at most one may", docked)
	}
	if bram > r.BRAMBudget {
		return fmt.Errorf("bitlinker: placements need %d BRAMs, region reserves %d", bram, r.BRAMBudget)
	}
	return nil
}

// targetImage builds the post-configuration image: the static baseline with
// the region band replaced by the assembled components (blank where no
// component is placed).
func (a *Assembler) targetImage(placements []Placed) *fabric.ConfigMemory {
	return a.stampInto(a.baseline.Clone(), placements)
}

// Target returns the configuration image the placements would leave in the
// device: the static baseline with the region band holding the assembled
// components. Callers use it as the assumed-state input of differential
// assembly.
func (a *Assembler) Target(placements ...Placed) *fabric.ConfigMemory {
	return a.targetImage(placements)
}

// stampInto writes the region band of base: zeros everywhere in the band,
// then each component's frames at its placement, then deterministic BRAM
// content for enclosed BRAM columns.
func (a *Assembler) stampInto(base *fabric.ConfigMemory, placements []Placed) *fabric.ConfigMemory {
	r := a.region
	lo, _ := a.dev.RowWordRange(r.Row0, r.H)
	for col := 0; col < r.W; col++ {
		abs := r.Col0 + col
		for minor := 0; minor < fabric.FramesPerCLBColumn; minor++ {
			far := fabric.FAR{Block: fabric.BlockCLB, Major: abs, Minor: minor}
			frame, _ := base.ReadFrame(far)
			for row := 0; row < r.H; row++ {
				for w := 0; w < wordsPerRow; w++ {
					frame[lo+wordsPerRow*row+w] = 0
				}
			}
			for _, p := range placements {
				if col < p.ColOff || col >= p.ColOff+p.C.W {
					continue
				}
				src := p.C.CLBFrames[col-p.ColOff][minor]
				for row := 0; row < p.C.H; row++ {
					for w := 0; w < wordsPerRow; w++ {
						frame[lo+wordsPerRow*(p.RowOff+row)+w] = src[wordsPerRow*row+w]
					}
				}
			}
			if err := base.WriteFrame(far, frame); err != nil {
				panic(err) // addresses are constructed in range
			}
		}
	}
	for bi, bcol := range a.dev.BRAMColumns(r) {
		pos := a.dev.BRAMColPos[bcol]
		for minor := 0; minor < fabric.FramesPerBRAMColumn; minor++ {
			far := fabric.FAR{Block: fabric.BlockBRAM, Major: bcol, Minor: minor}
			frame, _ := base.ReadFrame(far)
			for i := lo; i < lo+wordsPerRow*r.H; i++ {
				frame[i] = 0
			}
			for _, p := range placements {
				if p.C.Resources.BRAMs == 0 {
					continue
				}
				// The component covers this BRAM column when both CLB
				// neighbours of the column lie inside its span.
				c0 := r.Col0 + p.ColOff
				if pos >= c0 && pos+1 < c0+p.C.W {
					for i := lo; i < lo+wordsPerRow*r.H; i++ {
						frame[i] = splitmix(p.C.BRAMSeed ^ uint64(bi)<<32 ^ uint64(minor)<<16 ^ uint64(i))
					}
				}
			}
			if err := base.WriteFrame(far, frame); err != nil {
				panic(err)
			}
		}
	}
	return base
}

// regionRuns converts the region's frames in the target image into frame
// runs for the stream builder: one run covering all CLB columns (they are
// contiguous in frame address space) plus one run per enclosed BRAM column.
func (a *Assembler) regionRuns(target *fabric.ConfigMemory) ([]bitstream.FrameRun, int) {
	r := a.region
	var clbFrames [][]uint32
	for col := 0; col < r.W; col++ {
		for minor := 0; minor < fabric.FramesPerCLBColumn; minor++ {
			f, _ := target.ReadFrame(fabric.FAR{Block: fabric.BlockCLB, Major: r.Col0 + col, Minor: minor})
			clbFrames = append(clbFrames, f)
		}
	}
	runs := []bitstream.FrameRun{{
		Start:  fabric.FAR{Block: fabric.BlockCLB, Major: r.Col0, Minor: 0},
		Frames: clbFrames,
	}}
	total := len(clbFrames)
	for _, bcol := range a.dev.BRAMColumns(r) {
		var frames [][]uint32
		for minor := 0; minor < fabric.FramesPerBRAMColumn; minor++ {
			f, _ := target.ReadFrame(fabric.FAR{Block: fabric.BlockBRAM, Major: bcol, Minor: minor})
			frames = append(frames, f)
		}
		runs = append(runs, bitstream.FrameRun{
			Start:  fabric.FAR{Block: fabric.BlockBRAM, Major: bcol, Minor: 0},
			Frames: frames,
		})
		total += len(frames)
	}
	return runs, total
}

// forEachRegionFAR visits every frame address owned by the region, in linear
// order.
func (a *Assembler) forEachRegionFAR(fn func(fabric.FAR)) {
	r := a.region
	for col := 0; col < r.W; col++ {
		for minor := 0; minor < fabric.FramesPerCLBColumn; minor++ {
			fn(fabric.FAR{Block: fabric.BlockCLB, Major: r.Col0 + col, Minor: minor})
		}
	}
	for _, bcol := range a.dev.BRAMColumns(r) {
		for minor := 0; minor < fabric.FramesPerBRAMColumn; minor++ {
			fn(fabric.FAR{Block: fabric.BlockBRAM, Major: bcol, Minor: minor})
		}
	}
}
