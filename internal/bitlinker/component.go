// Package bitlinker implements the configuration assembly tool the paper's
// experiments rely on (reference [12], "BitLinker"): it relocates the
// configurations of separately implemented components into a dynamic region,
// merges them with the static design's frames so that circuits above and
// below the region are not disturbed, verifies bus-macro port compatibility,
// and emits *complete* (non-differential) partial bitstreams that configure
// the region correctly regardless of its previous contents — at the price of
// a larger stream and a longer configuration time (§2.2).
package bitlinker

import (
	"fmt"

	"repro/internal/busmacro"
	"repro/internal/fabric"
)

// wordsPerRow mirrors the fabric frame layout (3 words per CLB row).
const wordsPerRow = 3

// Component is the relocatable configuration of one dynamic module, as
// produced by the component design flow: frame data covering its own
// footprint (relative coordinates), its resource needs, and the bus-macro
// contract it was implemented against.
type Component struct {
	Name    string
	Version string
	// W, H is the CLB footprint.
	W, H int
	// Resources is the synthesis result (must fit the footprint).
	Resources fabric.Resources
	// Macro is the port contract, nil for components with no boundary I/O.
	Macro *busmacro.Macro
	// PortRow0 is the component-relative row where the macro ports sit.
	PortRow0 int
	// CLBFrames holds the configuration band: CLBFrames[c][m] is the
	// frame-band data (wordsPerRow*H words) of relative column c, minor m.
	CLBFrames [][][]uint32
	// BRAMSeed determinizes the content stamped into BRAM columns the
	// component encloses (block RAM initialization).
	BRAMSeed uint64
}

// Validate checks internal consistency of a component.
func (c *Component) Validate() error {
	if c.W <= 0 || c.H <= 0 {
		return fmt.Errorf("bitlinker: component %s has empty footprint", c.Name)
	}
	if len(c.CLBFrames) != c.W {
		return fmt.Errorf("bitlinker: component %s has %d frame columns, footprint is %d wide",
			c.Name, len(c.CLBFrames), c.W)
	}
	for col := range c.CLBFrames {
		if len(c.CLBFrames[col]) != fabric.FramesPerCLBColumn {
			return fmt.Errorf("bitlinker: component %s column %d has %d minors, want %d",
				c.Name, col, len(c.CLBFrames[col]), fabric.FramesPerCLBColumn)
		}
		for m := range c.CLBFrames[col] {
			if len(c.CLBFrames[col][m]) != wordsPerRow*c.H {
				return fmt.Errorf("bitlinker: component %s frame (%d,%d) has %d words, want %d",
					c.Name, col, m, len(c.CLBFrames[col][m]), wordsPerRow*c.H)
			}
		}
	}
	if got, max := c.Resources.Slices, 4*c.W*c.H; got > max {
		return fmt.Errorf("bitlinker: component %s uses %d slices, footprint holds %d", c.Name, got, max)
	}
	if c.Macro != nil && (c.PortRow0 < 0 || c.PortRow0+c.Macro.RowsNeeded() > c.H) {
		return fmt.Errorf("bitlinker: component %s port rows exceed footprint", c.Name)
	}
	return nil
}

// SynthesizeFrames generates the deterministic configuration band for a
// component footprint. It stands in for the vendor implementation flow: the
// content is a pure function of (name, version, footprint), so the same
// component always produces the same frames — which is what lets the
// platform bind configuration contents back to behavioural models.
func SynthesizeFrames(name, version string, w, h int) [][][]uint32 {
	frames := make([][][]uint32, w)
	seed := stringSeed(name + "/" + version)
	for c := range frames {
		frames[c] = make([][]uint32, fabric.FramesPerCLBColumn)
		for m := range frames[c] {
			f := make([]uint32, wordsPerRow*h)
			for i := range f {
				f[i] = splitmix(seed ^ uint64(c)<<40 ^ uint64(m)<<20 ^ uint64(i))
			}
			frames[c][m] = f
		}
	}
	return frames
}

// stringSeed hashes a string to a 64-bit seed (FNV-1a).
func stringSeed(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix is the SplitMix64 mixer: a deterministic word generator.
func splitmix(x uint64) uint32 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return uint32(x ^ (x >> 31))
}
