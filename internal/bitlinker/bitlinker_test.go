package bitlinker

import (
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/busmacro"
	"repro/internal/fabric"
)

// testComponent builds a docked component covering part of the region.
func testComponent(name string, w, h int, macro *busmacro.Macro) *Component {
	return &Component{
		Name:      name,
		Version:   "1",
		W:         w,
		H:         h,
		Resources: fabric.Resources{Slices: 4 * w * h / 2, LUTs: w * h, FFs: w * h},
		Macro:     macro,
		PortRow0:  macro.Row0,
		CLBFrames: SynthesizeFrames(name, "1", w, h),
		BRAMSeed:  stringSeed(name),
	}
}

// staticBaseline builds a non-trivial static image so merging is observable:
// the static design occupies every frame, but leaves the dynamic region's
// band blank (the initial full configuration places no logic there).
func staticBaseline(dev *fabric.Device, region fabric.Region) *fabric.ConfigMemory {
	cm := fabric.NewConfigMemory(dev)
	frame := make([]uint32, dev.FrameLen())
	lo, hi := dev.RowWordRange(region.Row0, region.H)
	for col := 0; col < dev.Cols; col++ {
		for i := range frame {
			frame[i] = 0xC0FFEE00 + uint32(i)
			if region.ContainsCol(col) && i >= lo && i < hi {
				frame[i] = 0
			}
		}
		for minor := 0; minor < fabric.FramesPerCLBColumn; minor++ {
			if err := cm.WriteFrame(fabric.FAR{Block: fabric.BlockCLB, Major: col, Minor: minor}, frame); err != nil {
				panic(err)
			}
		}
	}
	return cm
}

func newTestAssembler(t *testing.T) (*Assembler, *fabric.Device, fabric.Region, *fabric.ConfigMemory) {
	t.Helper()
	dev := fabric.XC2VP7()
	region := fabric.DynamicRegion32()
	base := staticBaseline(dev, region)
	a, err := New(dev, region, base, busmacro.Dock32())
	if err != nil {
		t.Fatal(err)
	}
	return a, dev, region, base
}

func TestAssemblePreservesStaticDesign(t *testing.T) {
	a, dev, region, base := newTestAssembler(t)
	comp := testComponent("adder", region.W, region.H, busmacro.Dock32())
	res, err := a.Assemble(Placed{C: comp})
	if err != nil {
		t.Fatal(err)
	}
	// Load the stream onto a device currently holding the static design.
	cm := base.Clone()
	if err := bitstream.NewLoader(cm).Load(res.Stream); err != nil {
		t.Fatal(err)
	}
	if got, want := cm.StaticHash(region), base.StaticHash(region); got != want {
		t.Error("complete partial configuration disturbed the static design")
	}
	if cm.RegionHash(region) != res.RegionHash {
		t.Error("region hash after load differs from assembly prediction")
	}
	_ = dev
}

func TestAssembleIsStateIndependent(t *testing.T) {
	a, _, region, base := newTestAssembler(t)
	compA := testComponent("alpha", region.W, region.H, busmacro.Dock32())
	compB := testComponent("beta", region.W, region.H, busmacro.Dock32())
	resA, err := a.Assemble(Placed{C: compA})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := a.Assemble(Placed{C: compB})
	if err != nil {
		t.Fatal(err)
	}
	if resA.RegionHash == resB.RegionHash {
		t.Fatal("different components produced the same region hash")
	}
	// Loading B after A must give the same region hash as loading B alone:
	// BitLinker output is complete, not differential.
	cm1 := base.Clone()
	if err := bitstream.NewLoader(cm1).Load(resB.Stream); err != nil {
		t.Fatal(err)
	}
	cm2 := base.Clone()
	l := bitstream.NewLoader(cm2)
	if err := l.Load(resA.Stream); err != nil {
		t.Fatal(err)
	}
	if err := l.Load(resB.Stream); err != nil {
		t.Fatal(err)
	}
	if cm1.RegionHash(region) != cm2.RegionHash(region) {
		t.Error("complete configuration result depends on prior region state")
	}
}

func TestDifferentialHazard(t *testing.T) {
	a, _, region, base := newTestAssembler(t)
	// A fills the whole region; B is a narrower component docked at the
	// right edge, so a differential stream for B (relative to the blank
	// post-boot state) does not touch the columns A uses.
	compA := testComponent("alpha", region.W, region.H, busmacro.Dock32())
	compB := testComponent("beta", 10, region.H, busmacro.Dock32())
	placeB := Placed{C: compB, ColOff: region.W - 10}

	// Differential stream for B, assuming the region holds the blank
	// baseline (the state right after the initial full configuration).
	diffB, err := a.AssembleDifferential(base, placeB)
	if err != nil {
		t.Fatal(err)
	}
	fullB, err := a.Assemble(placeB)
	if err != nil {
		t.Fatal(err)
	}
	if diffB.Frames >= fullB.Frames {
		t.Errorf("differential stream writes %d frames, complete writes %d — differential should be smaller",
			diffB.Frames, fullB.Frames)
	}

	// Applied on the assumed state, the differential stream is correct.
	cm := base.Clone()
	if err := bitstream.NewLoader(cm).Load(diffB.Stream); err != nil {
		t.Fatal(err)
	}
	if cm.RegionHash(region) != fullB.RegionHash {
		t.Fatal("differential configuration incorrect even on its assumed base state")
	}

	// Applied after A was loaded, the differential stream leaves stale
	// frames behind: the region hash is wrong — the paper's §2.2 hazard.
	fullA, err := a.Assemble(Placed{C: compA})
	if err != nil {
		t.Fatal(err)
	}
	cm2 := base.Clone()
	l := bitstream.NewLoader(cm2)
	if err := l.Load(fullA.Stream); err != nil {
		t.Fatal(err)
	}
	if err := l.Load(diffB.Stream); err != nil {
		t.Fatal(err)
	}
	if cm2.RegionHash(region) == fullB.RegionHash {
		t.Error("differential configuration on the wrong prior state still produced a correct region — hazard not modelled")
	}
}

func TestNaiveAssemblyDisturbsStatic(t *testing.T) {
	a, _, region, base := newTestAssembler(t)
	comp := testComponent("gamma", region.W, region.H, busmacro.Dock32())
	naive, err := a.AssembleNaive(Placed{C: comp})
	if err != nil {
		t.Fatal(err)
	}
	cm := base.Clone()
	if err := bitstream.NewLoader(cm).Load(naive.Stream); err != nil {
		t.Fatal(err)
	}
	if cm.StaticHash(region) == base.StaticHash(region) {
		t.Error("naive assembly left static design intact — hazard not modelled")
	}
}

func TestSmallComponentRelocation(t *testing.T) {
	a, _, region, base := newTestAssembler(t)
	// An 8x8 undocked component placed at two different positions must
	// produce different region hashes but identical component bits.
	comp := &Component{
		Name: "blob", Version: "2", W: 8, H: 8,
		Resources: fabric.Resources{Slices: 100},
		CLBFrames: SynthesizeFrames("blob", "2", 8, 8),
	}
	r1, err := a.Assemble(Placed{C: comp, ColOff: 0, RowOff: 0})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Assemble(Placed{C: comp, ColOff: 12, RowOff: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r1.RegionHash == r2.RegionHash {
		t.Error("relocation did not change region contents")
	}
	// Check the relocated bits land where expected.
	cm := base.Clone()
	if err := bitstream.NewLoader(cm).Load(r2.Stream); err != nil {
		t.Fatal(err)
	}
	lo, _ := cm.Device().RowWordRange(region.Row0, region.H)
	far := fabric.FAR{Block: fabric.BlockCLB, Major: region.Col0 + 12, Minor: 0}
	frame, _ := cm.ReadFrame(far)
	want := comp.CLBFrames[0][0][0] // relative (col 0, minor 0, row 0, word 0)
	got := frame[lo+3*2]            // region row offset 2
	if got != want {
		t.Errorf("relocated bits wrong: got %#x want %#x", got, want)
	}
}

func TestMultiComponentAssembly(t *testing.T) {
	a, _, region, _ := newTestAssembler(t)
	docked := testComponent("docked", 10, region.H, busmacro.Dock32())
	helper := &Component{
		Name: "helper", Version: "1", W: 8, H: 8,
		Resources: fabric.Resources{Slices: 64},
		CLBFrames: SynthesizeFrames("helper", "1", 8, 8),
	}
	res, err := a.Assemble(
		Placed{C: docked, ColOff: region.W - 10},
		Placed{C: helper, ColOff: 0, RowOff: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != region.W*fabric.FramesPerCLBColumn+2*fabric.FramesPerBRAMColumn {
		t.Errorf("complete assembly frame count = %d", res.Frames)
	}
}

func TestAssembleChecks(t *testing.T) {
	a, _, region, _ := newTestAssembler(t)
	dock := busmacro.Dock32()

	toowide := testComponent("toowide", region.W+1, region.H, dock)
	if _, err := a.Assemble(Placed{C: toowide}); err == nil {
		t.Error("oversized component accepted")
	}

	badmacro := testComponent("badmacro", region.W, region.H, busmacro.Dock64())
	if _, err := a.Assemble(Placed{C: badmacro}); err == nil {
		t.Error("incompatible bus macro accepted")
	}

	misaligned := testComponent("misaligned", 10, region.H-1, dock)
	if _, err := a.Assemble(Placed{C: misaligned, ColOff: region.W - 10, RowOff: 1}); err == nil {
		t.Error("port misalignment accepted (ports must land on macro rows)")
	}

	notAbutting := testComponent("floating", 10, region.H, dock)
	if _, err := a.Assemble(Placed{C: notAbutting, ColOff: 0}); err == nil {
		t.Error("docked component not abutting the dock edge accepted")
	}

	c1 := testComponent("c1", region.W, region.H, dock)
	c2 := &Component{Name: "c2", Version: "1", W: 4, H: 4,
		CLBFrames: SynthesizeFrames("c2", "1", 4, 4)}
	if _, err := a.Assemble(Placed{C: c1}, Placed{C: c2, ColOff: 1, RowOff: 1}); err == nil {
		t.Error("overlapping components accepted")
	}

	greedy := testComponent("greedy", region.W, region.H, dock)
	greedy.Resources.BRAMs = region.BRAMBudget + 1
	if _, err := a.Assemble(Placed{C: greedy}); err == nil {
		t.Error("BRAM overcommit accepted")
	}

	if _, err := a.Assemble(); err == nil {
		t.Error("empty assembly accepted")
	}

	two1 := testComponent("two1", 10, region.H, dock)
	two2 := testComponent("two2", 10, region.H, dock)
	if _, err := a.Assemble(
		Placed{C: two1, ColOff: region.W - 10},
		Placed{C: two2, ColOff: region.W - 10, RowOff: 0},
	); err == nil {
		t.Error("two docked components accepted")
	}
}

func TestComponentValidate(t *testing.T) {
	good := testComponent("ok", 4, 11, busmacro.Dock32())
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.CLBFrames = bad.CLBFrames[:2]
	if err := bad.Validate(); err == nil {
		t.Error("frame column count mismatch accepted")
	}
	bad2 := testComponent("ok", 4, 11, busmacro.Dock32())
	bad2.Resources.Slices = 4*4*11 + 1
	if err := bad2.Validate(); err == nil {
		t.Error("slice overcommit vs footprint accepted")
	}
	bad3 := testComponent("ok", 4, 5, busmacro.Dock32())
	bad3.PortRow0 = 3 // 3 + 9 rows > 5
	if err := bad3.Validate(); err == nil {
		t.Error("ports beyond footprint accepted")
	}
}

// Property: SynthesizeFrames is deterministic and version-sensitive.
func TestSynthesizeFramesProperty(t *testing.T) {
	f := func(nameSel uint8, w8, h8 uint8) bool {
		names := []string{"a", "b", "longer-name"}
		name := names[int(nameSel)%len(names)]
		w, h := 1+int(w8%6), 1+int(h8%6)
		x := SynthesizeFrames(name, "1", w, h)
		y := SynthesizeFrames(name, "1", w, h)
		z := SynthesizeFrames(name, "2", w, h)
		if len(x) != w || len(x[0]) != fabric.FramesPerCLBColumn {
			return false
		}
		same, diff := true, false
		for c := range x {
			for m := range x[c] {
				for i := range x[c][m] {
					if x[c][m][i] != y[c][m][i] {
						same = false
					}
					if x[c][m][i] != z[c][m][i] {
						diff = true
					}
				}
			}
		}
		return same && diff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidations(t *testing.T) {
	dev := fabric.XC2VP7()
	base := fabric.NewConfigMemory(dev)
	badRegion := fabric.Region{Name: "bad", Col0: 0, Row0: 0, W: 100, H: 100}
	if _, err := New(dev, badRegion, base, nil); err == nil {
		t.Error("invalid region accepted")
	}
	other := fabric.NewConfigMemory(fabric.XC2VP30())
	if _, err := New(dev, fabric.DynamicRegion32(), other, nil); err == nil {
		t.Error("baseline from another device accepted")
	}
}
