// Package metrics is a small dependency-free registry of counters, gauges
// and fixed-bucket histograms with a Prometheus-style text exposition.
// The trace sink feeds it (FeedTracer), so every traced run doubles as a
// scrape target: fpgad mounts WriteText on the -pprof mux at /metrics.
//
// Metric names may carry a label set in Prometheus brace syntax
// (`events_total{kind="config"}`): the registry treats the full string as
// the identity and the text writer sorts by it, so exposition order is
// deterministic.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets (plus the
// implicit +Inf bucket) and tracks sum and count.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	n      uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count reports how many samples were observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Registry holds named metrics. The zero value is not ready; use New.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// upper bounds on first use (bounds are ignored on later lookups).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// baseName strips a label set from a metric name for TYPE lines.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelSuffix returns the label set of a metric name including braces
// ("" when unlabelled).
func labelSuffix(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[i:]
	}
	return ""
}

// WriteText renders the registry in the Prometheus text exposition
// format, sorted by metric name — deterministic for a fixed state.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	cnames := make([]string, 0, len(r.counters))
	for n := range r.counters {
		cnames = append(cnames, n)
	}
	gnames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	hnames := make([]string, 0, len(r.histograms))
	for n := range r.histograms {
		hnames = append(hnames, n)
	}
	r.mu.Unlock()
	sort.Strings(cnames)
	sort.Strings(gnames)
	sort.Strings(hnames)

	typed := map[string]bool{}
	for _, n := range cnames {
		if base := baseName(n); !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s counter\n", base)
		}
		fmt.Fprintf(w, "%s %d\n", n, r.Counter(n).Value())
	}
	for _, n := range gnames {
		if base := baseName(n); !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s gauge\n", base)
		}
		fmt.Fprintf(w, "%s %g\n", n, r.Gauge(n).Value())
	}
	for _, n := range hnames {
		base, labels := baseName(n), labelSuffix(n)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s histogram\n", base)
		}
		h := r.histograms[n]
		h.mu.Lock()
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", base, mergeLabel(labels, fmt.Sprintf("le=%q", fmtBound(b))), cum)
		}
		cum += h.counts[len(h.bounds)]
		fmt.Fprintf(w, "%s_bucket%s %d\n", base, mergeLabel(labels, `le="+Inf"`), cum)
		fmt.Fprintf(w, "%s_sum%s %g\n", base, labels, h.sum)
		fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.n)
		h.mu.Unlock()
	}
}

// fmtBound renders a bucket bound compactly ("0.5", "10", "2500").
func fmtBound(b float64) string { return fmt.Sprintf("%g", b) }

// mergeLabel inserts an extra label into an existing label set ("" set →
// a fresh one).
func mergeLabel(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}
