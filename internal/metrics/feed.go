package metrics

import (
	"fmt"

	"repro/internal/trace"
)

// Default histogram bounds in milliseconds of simulated time: config
// transfers live in the 0.1–50 ms range on the modelled HWICAP, sojourns
// stretch into seconds under overload.
var (
	msBounds = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}
)

// FeedTracer installs a sink on the tracer that mirrors every event into
// the registry: an events_total counter per kind, plus config-span and
// sojourn histograms. The sink runs under the tracer lock, so registry
// updates are ordered with the event stream.
func FeedTracer(t *trace.Tracer, r *Registry) {
	if t == nil || r == nil {
		return
	}
	spans := r.Histogram("fpgad_config_span_ms", msBounds)
	sojourn := r.Histogram("fpgad_sojourn_ms", msBounds)
	t.SetSink(func(e trace.Event) {
		r.Counter(fmt.Sprintf("fpgad_trace_events_total{kind=%q}", e.Kind.String())).Inc()
		switch e.Kind {
		case trace.KindConfig:
			spans.Observe(e.Dur.Milliseconds())
		case trace.KindComplete:
			if e.Arg > 0 {
				sojourn.Observe(float64(e.Arg) / 1e12)
			}
		}
	})
}
