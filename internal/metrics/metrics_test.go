package metrics

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	r.Counter("reqs").Add(3)
	r.Counter("reqs").Inc()
	if got := r.Counter("reqs").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	r.Gauge("depth").Set(2.5)
	if got := r.Gauge("depth").Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat_ms", []float64{1, 10})
	for _, v := range []float64{0.5, 1.0, 5, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		`lat_ms_bucket{le="1"} 2`,  // 0.5 and the boundary value 1.0
		`lat_ms_bucket{le="10"} 3`, // + 5
		`lat_ms_bucket{le="+Inf"} 4`,
		`lat_ms_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter(`ev{kind="a"}`).Inc()
		r.Counter(`ev{kind="b"}`).Add(2)
		r.Gauge("g").Set(1)
		r.Histogram("h", []float64{1, 2}).Observe(1.5)
		return r
	}
	var a, b bytes.Buffer
	build().WriteText(&a)
	build().WriteText(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("exposition not deterministic")
	}
	if !strings.Contains(a.String(), "# TYPE ev counter") {
		t.Fatalf("missing TYPE line:\n%s", a.String())
	}
}

func TestFeedTracer(t *testing.T) {
	tr := trace.New()
	r := New()
	FeedTracer(tr, r)
	tr.Emit(trace.Event{Kind: trace.KindConfig, Dur: 2_000_000_000_000}) // 2 ms
	tr.Emit(trace.Event{Kind: trace.KindComplete, Arg: 5_000_000_000_000})
	tr.Emit(trace.Event{Kind: trace.KindSubmit})
	if got := r.Counter(`fpgad_trace_events_total{kind="config"}`).Value(); got != 1 {
		t.Fatalf("config counter = %d, want 1", got)
	}
	if got := r.Histogram("fpgad_config_span_ms", nil).Count(); got != 1 {
		t.Fatalf("config histogram count = %d, want 1", got)
	}
	if got := r.Histogram("fpgad_sojourn_ms", nil).Count(); got != 1 {
		t.Fatalf("sojourn histogram count = %d, want 1", got)
	}
}
