package intc

import "testing"

func TestMaskingAndAck(t *testing.T) {
	c := New()
	c.Raise(3)
	if c.Pending() {
		t.Fatal("disabled interrupt reported pending")
	}
	c.Write(RegIER, 1<<3, 4)
	if !c.Pending() {
		t.Fatal("enabled interrupt not pending")
	}
	if m := c.PendingMask(); m != 1<<3 {
		t.Fatalf("mask = %#x", m)
	}
	v, _ := c.Read(RegISR, 4)
	if v != 1<<3 {
		t.Fatalf("ISR = %#x", v)
	}
	c.Write(RegIAR, 1<<3, 4)
	if c.Pending() {
		t.Fatal("pending after acknowledge")
	}
	if c.Raised() != 1 {
		t.Fatalf("raised = %d", c.Raised())
	}
}

func TestMultipleLines(t *testing.T) {
	c := New()
	c.Write(RegIER, 0xFF, 4)
	c.Raise(0)
	c.Raise(5)
	if m := c.PendingMask(); m != 0b100001 {
		t.Fatalf("mask = %#b", m)
	}
	c.Write(RegIAR, 1, 4)
	if m := c.PendingMask(); m != 0b100000 {
		t.Fatalf("mask after partial ack = %#b", m)
	}
	if v, _ := c.Read(RegIER, 4); v != 0xFF {
		t.Fatalf("IER readback = %#x", v)
	}
}
