// Package intc models the OPB interrupt controller added to the 64-bit
// system so the CPU need not poll the PLB Dock during DMA transfers (§4.1).
package intc

// Register offsets.
const (
	RegISR = 0x00 // interrupt status (read)
	RegIER = 0x04 // interrupt enable (read/write)
	RegIAR = 0x08 // interrupt acknowledge (write 1 to clear)
)

// Controller is a simple 32-line interrupt controller.
type Controller struct {
	pending uint32
	enabled uint32
	raised  uint64
}

// New returns an interrupt controller with all lines disabled.
func New() *Controller { return &Controller{} }

// Name implements bus.Slave.
func (c *Controller) Name() string { return "opb-intc" }

// Raise asserts interrupt line n (device side).
func (c *Controller) Raise(line int) {
	c.pending |= 1 << uint(line)
	c.raised++
}

// Pending reports whether any enabled interrupt is asserted — the CPU's
// external-interrupt input.
func (c *Controller) Pending() bool { return c.pending&c.enabled != 0 }

// PendingMask returns the masked pending lines.
func (c *Controller) PendingMask() uint32 { return c.pending & c.enabled }

// Raised reports how many interrupts devices have asserted in total.
func (c *Controller) Raised() uint64 { return c.raised }

// Read implements bus.Slave.
func (c *Controller) Read(addr uint32, size int) (uint64, int) {
	switch addr {
	case RegISR:
		return uint64(c.pending), 1
	case RegIER:
		return uint64(c.enabled), 1
	default:
		return 0, 1
	}
}

// Write implements bus.Slave.
func (c *Controller) Write(addr uint32, val uint64, size int) int {
	switch addr {
	case RegIER:
		c.enabled = uint32(val)
	case RegIAR:
		c.pending &^= uint32(val)
	}
	return 1
}
