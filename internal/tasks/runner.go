package tasks

import (
	"bytes"
	"crypto/sha1"
	"fmt"
	"math/rand"

	"repro/internal/platform"
	"repro/internal/ref"
)

// Runner is the uniform task interface the reconfiguration scheduler
// dispatches: every application kernel packages its own input generation,
// hardware driver and result verification behind it, so a scheduler can mix
// arbitrary task types without knowing their argument structures.
//
// Run is called with the named module already configured in the dynamic
// area and with the system lock held (inside platform.Execute); it must
// drive only the system it is given and must not call Execute or Resident
// on it.
type Runner interface {
	// Name is a descriptive label ("jenkins/1024B").
	Name() string
	// Module is the dynamic-area circuit the task needs.
	Module() string
	// Run writes the task's inputs into external memory, drives the
	// hardware core and verifies the result against the functional oracle.
	Run(s *platform.System) error
}

// Fixed external-memory layout shared by all runners, as offsets from
// MemBase (requests on one system run serially, so ranges are reused).
const (
	runLUTOff     = 0x00_8040 // popcount table (.data)
	runInputOff   = 0x10_0000 // primary input (message, key, image A)
	runAuxOff     = 0x20_0040 // secondary input (image B)
	runDstOff     = 0x30_0080 // result buffer
	runScratchOff = 0x60_0000 // padding / stack scratch
)

func runnerData(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// SHA1Run hashes a Len-byte seeded message on the SHA-1 core and checks the
// digest against the standard-library implementation.
type SHA1Run struct {
	Seed int64
	Len  int
}

func (r SHA1Run) Name() string   { return fmt.Sprintf("sha1/%dB", r.Len) }
func (r SHA1Run) Module() string { return "sha1" }

func (r SHA1Run) Run(s *platform.System) error {
	msg := runnerData(r.Seed, r.Len)
	addr := s.MemBase() + runInputOff
	if err := s.WriteMem(addr, msg); err != nil {
		return err
	}
	got, err := SHA1HW(s, SHA1Args{MsgAddr: addr, MsgLen: r.Len, PadAddr: s.MemBase() + runScratchOff})
	if err != nil {
		return err
	}
	want := sha1.Sum(msg)
	var gotB [20]byte
	for i, w := range got {
		gotB[4*i] = byte(w >> 24)
		gotB[4*i+1] = byte(w >> 16)
		gotB[4*i+2] = byte(w >> 8)
		gotB[4*i+3] = byte(w)
	}
	if gotB != want {
		return fmt.Errorf("%s: digest %x, want %x", r.Name(), gotB, want)
	}
	return nil
}

// JenkinsRun hashes a Len-byte seeded key on the lookup2 core and checks
// the value against ref.Lookup2.
type JenkinsRun struct {
	Seed    int64
	Len     int
	InitVal uint32
}

func (r JenkinsRun) Name() string   { return fmt.Sprintf("jenkins/%dB", r.Len) }
func (r JenkinsRun) Module() string { return "jenkins" }

func (r JenkinsRun) Run(s *platform.System) error {
	key := runnerData(r.Seed, r.Len)
	addr := s.MemBase() + runInputOff
	if err := s.WriteMem(addr, key); err != nil {
		return err
	}
	got, err := JenkinsHW(s, JenkinsArgs{KeyAddr: addr, KeyLen: r.Len, InitVal: r.InitVal})
	if err != nil {
		return err
	}
	if want := ref.Lookup2(key, r.InitVal); got != want {
		return fmt.Errorf("%s: hash %#x, want %#x", r.Name(), got, want)
	}
	return nil
}

// PatternRun matches a seeded 8x8 pattern against a seeded WxH bilevel
// image on the matching pipeline and checks against ref.BestMatch.
type PatternRun struct {
	Seed      int64
	W, H      int
	Threshold int
}

func (r PatternRun) Name() string   { return fmt.Sprintf("patternmatch/%dx%d", r.W, r.H) }
func (r PatternRun) Module() string { return "patternmatch" }

func (r PatternRun) Run(s *platform.System) error {
	rng := rand.New(rand.NewSource(r.Seed))
	im := ref.NewBinaryImage(r.W, r.H)
	for i := range im.Words {
		im.Words[i] = rng.Uint32()
	}
	var p ref.Pattern8
	for j := range p {
		p[j] = byte(rng.Uint32())
	}
	a := PatternArgs{
		ImgAddr: s.MemBase() + runInputOff, W: r.W, H: r.H,
		Pattern: p, Threshold: r.Threshold, LUTAddr: s.MemBase() + runLUTOff,
	}
	if err := LoadPatternImage(s, a.ImgAddr, im); err != nil {
		return err
	}
	got, err := PatternMatchHW(s, a)
	if err != nil {
		return err
	}
	bx, by, bc, hits := ref.BestMatch(im, p, r.Threshold)
	want := PatternResult{BestX: bx, BestY: by, BestCount: bc, Hits: hits}
	if got != want {
		return fmt.Errorf("%s: result %+v, want %+v", r.Name(), got, want)
	}
	return nil
}

// imageRun loads two seeded N-pixel sources and returns the argument block
// shared by the three image runners.
func imageRun(s *platform.System, seed int64, n int) (ImageArgs, []byte, []byte, error) {
	srcA := runnerData(seed, n)
	srcB := runnerData(seed+1, n)
	a := ImageArgs{
		SrcA: s.MemBase() + runInputOff,
		SrcB: s.MemBase() + runAuxOff,
		Dst:  s.MemBase() + runDstOff,
		N:    n,
	}
	if err := s.WriteMem(a.SrcA, srcA); err != nil {
		return a, nil, nil, err
	}
	if err := s.WriteMem(a.SrcB, srcB); err != nil {
		return a, nil, nil, err
	}
	return a, srcA, srcB, nil
}

func checkImage(s *platform.System, a ImageArgs, name string, want []byte) error {
	got, err := s.ReadMem(a.Dst, a.N)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("%s: result diverges from reference", name)
	}
	return nil
}

// BrightnessRun adds Delta to every pixel of a seeded N-pixel image on the
// brightness core and checks against ref.Brightness.
type BrightnessRun struct {
	Seed  int64
	N     int
	Delta int
}

func (r BrightnessRun) Name() string   { return fmt.Sprintf("brightness/%dpx", r.N) }
func (r BrightnessRun) Module() string { return "brightness" }

func (r BrightnessRun) Run(s *platform.System) error {
	a, srcA, _, err := imageRun(s, r.Seed, r.N)
	if err != nil {
		return err
	}
	a.Delta = r.Delta
	if err := BrightnessHW(s, a); err != nil {
		return err
	}
	want := make([]byte, r.N)
	ref.Brightness(want, srcA, r.Delta)
	return checkImage(s, a, r.Name(), want)
}

// BlendRun additively blends two seeded N-pixel images on the blend core
// and checks against ref.Blend.
type BlendRun struct {
	Seed int64
	N    int
}

func (r BlendRun) Name() string   { return fmt.Sprintf("blend/%dpx", r.N) }
func (r BlendRun) Module() string { return "blend" }

func (r BlendRun) Run(s *platform.System) error {
	a, srcA, srcB, err := imageRun(s, r.Seed, r.N)
	if err != nil {
		return err
	}
	if err := BlendHW(s, a); err != nil {
		return err
	}
	want := make([]byte, r.N)
	ref.Blend(want, srcA, srcB)
	return checkImage(s, a, r.Name(), want)
}

// FadeRun computes the fade effect (A-B)*F/256+B over two seeded N-pixel
// images on the fade core and checks against ref.Fade.
type FadeRun struct {
	Seed int64
	N    int
	F    int
}

func (r FadeRun) Name() string   { return fmt.Sprintf("fade/%dpx", r.N) }
func (r FadeRun) Module() string { return "fade" }

func (r FadeRun) Run(s *platform.System) error {
	a, srcA, srcB, err := imageRun(s, r.Seed, r.N)
	if err != nil {
		return err
	}
	a.F = r.F
	if err := FadeHW(s, a); err != nil {
		return err
	}
	want := make([]byte, r.N)
	ref.Fade(want, srcA, srcB, r.F)
	return checkImage(s, a, r.Name(), want)
}

// TransferRun moves Words 32-bit words through the passthrough core — the
// raw data-movement measurement as a schedulable task.
type TransferRun struct {
	Kind  TransferKind
	Words int
}

func (r TransferRun) Name() string   { return fmt.Sprintf("transfer/%s/%dw", r.Kind, r.Words) }
func (r TransferRun) Module() string { return "passthrough" }

func (r TransferRun) Run(s *platform.System) error {
	_, err := TransferCPU(s, r.Kind, r.Words)
	return err
}
