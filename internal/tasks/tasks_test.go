package tasks

import (
	"crypto/sha1"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/ref"
	"repro/internal/sim"
)

func sys32(t *testing.T) *platform.System {
	t.Helper()
	s, err := platform.NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sys64(t *testing.T) *platform.System {
	t.Helper()
	s, err := platform.NewSys64()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func load(t *testing.T, s *platform.System, mod string) {
	t.Helper()
	if _, err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
}

func randImage(rng *rand.Rand, w, h int) *ref.BinaryImage {
	im := ref.NewBinaryImage(w, h)
	for i := range im.Words {
		im.Words[i] = rng.Uint32()
	}
	return im
}

func patternSetup(t *testing.T, s *platform.System, rng *rand.Rand, w, h int) (PatternArgs, *ref.BinaryImage) {
	t.Helper()
	im := randImage(rng, w, h)
	var p ref.Pattern8
	for j := range p {
		p[j] = byte(rng.Uint32())
	}
	a := PatternArgs{
		ImgAddr:   s.MemBase() + 0x10000,
		W:         w,
		H:         h,
		Pattern:   p,
		Threshold: 56,
		LUTAddr:   s.MemBase() + 0x8000,
	}
	if err := LoadPatternImage(s, a.ImgAddr, im); err != nil {
		t.Fatal(err)
	}
	if err := LoadPopcountLUT(s, a.LUTAddr); err != nil {
		t.Fatal(err)
	}
	return a, im
}

func TestPatternMatchSWHWAgreeWithReference(t *testing.T) {
	for _, mk := range []func(*testing.T) *platform.System{sys32, sys64} {
		s := mk(t)
		rng := rand.New(rand.NewSource(21))
		a, im := patternSetup(t, s, rng, 64, 24)
		wx, wy, wc, wh := ref.BestMatch(im, a.Pattern, a.Threshold)

		swRes := PatternMatchSW(s, a)
		if swRes.BestX != wx || swRes.BestY != wy || swRes.BestCount != wc || swRes.Hits != wh {
			t.Fatalf("%s SW = %+v, ref = (%d,%d,%d,%d)", s.Name, swRes, wx, wy, wc, wh)
		}
		load(t, s, "patternmatch")
		hwRes, err := PatternMatchHW(s, a)
		if err != nil {
			t.Fatal(err)
		}
		if hwRes != swRes {
			t.Fatalf("%s HW = %+v, SW = %+v", s.Name, hwRes, swRes)
		}
	}
}

func TestPatternMatchSpeedup32(t *testing.T) {
	s := sys32(t)
	rng := rand.New(rand.NewSource(22))
	a, _ := patternSetup(t, s, rng, 96, 32)
	swTime := s.Measure(func() { PatternMatchSW(s, a) })
	load(t, s, "patternmatch")
	var err error
	hwTime := s.Measure(func() { _, err = PatternMatchHW(s, a) })
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(swTime) / float64(hwTime)
	// "speedup factors of more than 26 were obtained" (§3.2)
	if speedup < 26 {
		t.Errorf("32-bit pattern matching speedup = %.1f, paper reports > 26", speedup)
	}
	t.Logf("sys32 pattern matching: sw=%v hw=%v speedup=%.1f", swTime, hwTime, speedup)
}

func TestJenkinsSWHWAgreeWithReference(t *testing.T) {
	for _, mk := range []func(*testing.T) *platform.System{sys32, sys64} {
		s := mk(t)
		rng := rand.New(rand.NewSource(23))
		for _, n := range []int{0, 1, 11, 12, 13, 100, 1024} {
			key := make([]byte, n)
			rng.Read(key)
			addr := s.MemBase() + 0x20000
			if err := s.WriteMem(addr, key); err != nil {
				t.Fatal(err)
			}
			a := JenkinsArgs{KeyAddr: addr, KeyLen: n, InitVal: 77}
			want := ref.Lookup2(key, 77)
			if got := JenkinsSW(s, a); got != want {
				t.Fatalf("%s SW len %d: %#x want %#x", s.Name, n, got, want)
			}
			load(t, s, "jenkins")
			got, err := JenkinsHW(s, a)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s HW len %d: %#x want %#x", s.Name, n, got, want)
			}
		}
	}
}

func TestJenkinsSpeedupModest(t *testing.T) {
	s := sys32(t)
	key := make([]byte, 4096)
	rand.New(rand.NewSource(24)).Read(key)
	addr := s.MemBase() + 0x20000
	if err := s.WriteMem(addr, key); err != nil {
		t.Fatal(err)
	}
	a := JenkinsArgs{KeyAddr: addr, KeyLen: len(key), InitVal: 1}
	swTime := s.Measure(func() { JenkinsSW(s, a) })
	load(t, s, "jenkins")
	var err error
	hwTime := s.Measure(func() { _, err = JenkinsHW(s, a) })
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(swTime) / float64(hwTime)
	// "the speedup in this case is much more modest" (§3.2): above 1 but
	// nowhere near the pattern matcher's >26.
	if speedup < 1.0 || speedup > 5 {
		t.Errorf("32-bit hash speedup = %.2f, want modest (1..5)", speedup)
	}
	t.Logf("sys32 jenkins: sw=%v hw=%v speedup=%.2f", swTime, hwTime, speedup)
}

func TestSHA1SWHWMatchStdlib(t *testing.T) {
	s := sys64(t)
	rng := rand.New(rand.NewSource(25))
	for _, n := range []int{0, 1, 55, 56, 64, 100, 1000} {
		msg := make([]byte, n)
		rng.Read(msg)
		addr := s.MemBase() + 0x30000
		if err := s.WriteMem(addr, msg); err != nil {
			t.Fatal(err)
		}
		a := SHA1Args{MsgAddr: addr, MsgLen: n, PadAddr: s.MemBase() + 0x40000}
		want := sha1.Sum(msg)

		swH, err := SHA1SW(s, a)
		if err != nil {
			t.Fatal(err)
		}
		var got [20]byte
		for i, h := range swH {
			binary.BigEndian.PutUint32(got[4*i:], h)
		}
		if got != want {
			t.Fatalf("SW len %d: %x want %x", n, got, want)
		}

		load(t, s, "sha1")
		hwH, err := SHA1HW(s, a)
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hwH {
			binary.BigEndian.PutUint32(got[4*i:], h)
		}
		if got != want {
			t.Fatalf("HW len %d: %x want %x", n, got, want)
		}
	}
}

func TestSHA1NotAvailableOn32(t *testing.T) {
	s := sys32(t)
	if _, err := s.LoadModule("sha1"); err == nil {
		t.Fatal("sha1 must not be loadable on the 32-bit system (§4.2)")
	}
}

func imageSetup(t *testing.T, s *platform.System, rng *rand.Rand, n int) (ImageArgs, []byte, []byte) {
	t.Helper()
	srcA := make([]byte, n)
	srcB := make([]byte, n)
	rng.Read(srcA)
	rng.Read(srcB)
	a := ImageArgs{
		SrcA:  s.MemBase() + 0x100000,
		SrcB:  s.MemBase() + 0x200000,
		Dst:   s.MemBase() + 0x300000,
		N:     n,
		Delta: 37,
		F:     120,
	}
	if err := s.WriteMem(a.SrcA, srcA); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteMem(a.SrcB, srcB); err != nil {
		t.Fatal(err)
	}
	return a, srcA, srcB
}

func readDst(t *testing.T, s *platform.System, a ImageArgs) []byte {
	t.Helper()
	got, err := s.ReadMem(a.Dst, a.N)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestImageTasksSWHWAgree(t *testing.T) {
	for _, mk := range []func(*testing.T) *platform.System{sys32, sys64} {
		s := mk(t)
		rng := rand.New(rand.NewSource(26))
		a, srcA, srcB := imageSetup(t, s, rng, 512)

		want := make([]byte, a.N)
		ref.Brightness(want, srcA, a.Delta)
		if err := BrightnessSW(s, a); err != nil {
			t.Fatal(err)
		}
		s.CPU.Sync()
		checkBytes(t, s.Name+" brightness SW", readDst(t, s, a), want)
		load(t, s, "brightness")
		if err := BrightnessHW(s, a); err != nil {
			t.Fatal(err)
		}
		checkBytes(t, s.Name+" brightness HW", readDst(t, s, a), want)

		ref.Blend(want, srcA, srcB)
		if err := BlendSW(s, a); err != nil {
			t.Fatal(err)
		}
		s.CPU.Sync()
		checkBytes(t, s.Name+" blend SW", readDst(t, s, a), want)
		load(t, s, "blend")
		if err := BlendHW(s, a); err != nil {
			t.Fatal(err)
		}
		checkBytes(t, s.Name+" blend HW", readDst(t, s, a), want)

		ref.Fade(want, srcA, srcB, a.F)
		if err := FadeSW(s, a); err != nil {
			t.Fatal(err)
		}
		s.CPU.Sync()
		checkBytes(t, s.Name+" fade SW", readDst(t, s, a), want)
		load(t, s, "fade")
		if err := FadeHW(s, a); err != nil {
			t.Fatal(err)
		}
		checkBytes(t, s.Name+" fade HW", readDst(t, s, a), want)
	}
}

func TestImageDMATasks(t *testing.T) {
	s := sys64(t)
	rng := rand.New(rand.NewSource(27))
	a, srcA, srcB := imageSetup(t, s, rng, 64*1024)
	scratch := s.MemBase() + 0x600000
	packed := s.MemBase() + 0x800000

	want := make([]byte, a.N)
	ref.Brightness(want, srcA, a.Delta)
	load(t, s, "brightness")
	if err := BrightnessDMA(s, a, scratch); err != nil {
		t.Fatal(err)
	}
	checkBytes(t, "brightness DMA", readDst(t, s, a), want)

	ref.Blend(want, srcA, srcB)
	load(t, s, "blend")
	res, err := BlendDMA(s, a, scratch, packed)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrepTime == 0 {
		t.Error("blend DMA reported no data-preparation time")
	}
	checkBytes(t, "blend DMA", readDst(t, s, a), want)

	ref.Fade(want, srcA, srcB, a.F)
	load(t, s, "fade")
	res, err = FadeDMA(s, a, scratch, packed)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrepTime == 0 {
		t.Error("fade DMA reported no data-preparation time")
	}
	checkBytes(t, "fade DMA", readDst(t, s, a), want)
}

func TestBrightnessDMAFasterThanCPUControlled(t *testing.T) {
	s := sys64(t)
	rng := rand.New(rand.NewSource(28))
	a, _, _ := imageSetup(t, s, rng, 256*1024)
	scratch := s.MemBase() + 0x600000
	load(t, s, "brightness")
	cpuTime := s.Measure(func() {
		if err := BrightnessHW(s, a); err != nil {
			t.Fatal(err)
		}
	})
	dmaTime := s.Measure(func() {
		if err := BrightnessDMA(s, a, scratch); err != nil {
			t.Fatal(err)
		}
	})
	if dmaTime >= cpuTime {
		t.Errorf("DMA (%v) not faster than CPU-controlled (%v)", dmaTime, cpuTime)
	}
	t.Logf("brightness 256K px: cpu-controlled=%v dma=%v", cpuTime, dmaTime)
}

func checkBytes(t *testing.T, what string, got, want []byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: byte %d = %d, want %d", what, i, got[i], want[i])
		}
	}
}

func TestTransferCPUPatterns(t *testing.T) {
	s32 := sys32(t)
	load(t, s32, "passthrough")
	s64 := sys64(t)
	load(t, s64, "passthrough")
	for _, kind := range []TransferKind{TransferWrite, TransferRead, TransferInterleaved} {
		t32, err := TransferCPU(s32, kind, 4096)
		if err != nil {
			t.Fatal(err)
		}
		t64, err := TransferCPU(s64, kind, 4096)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(t32) / float64(t64)
		t.Logf("%v: sys32=%v sys64=%v ratio=%.1f", kind, t32, t64, ratio)
		// "A decrease in transfer time between 4 and 6 times, depending on
		// the transfer type, can be observed." (§4.2)
		if ratio < 3.0 || ratio > 8.0 {
			t.Errorf("%v: sys32/sys64 ratio %.2f far outside the paper's 4-6x band", kind, ratio)
		}
	}
}

func TestTransferDMAFasterPerItem(t *testing.T) {
	s := sys64(t)
	load(t, s, "passthrough")
	for _, kind := range []TransferKind{TransferWrite, TransferRead, TransferInterleaved} {
		cpuT, err := TransferCPU(s, kind, 4096)
		if err != nil {
			t.Fatal(err)
		}
		dmaT, err := TransferDMA(s, kind, 4096)
		if err != nil {
			t.Fatal(err)
		}
		// A DMA transfer moves 64 bits vs the CPU's 32: compare per byte.
		cpuPerByte := float64(cpuT) / 4
		dmaPerByte := float64(dmaT) / 8
		t.Logf("%v: cpu=%v/32b dma=%v/64b", kind, cpuT, dmaT)
		if dmaPerByte >= cpuPerByte {
			t.Errorf("%v: DMA (%.0f fs/B) not faster than CPU (%.0f fs/B)", kind, dmaPerByte, cpuPerByte)
		}
	}
}

func TestTransferTimesAreStable(t *testing.T) {
	s := sys32(t)
	load(t, s, "passthrough")
	a, err := TransferCPU(s, TransferWrite, 1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TransferCPU(s, TransferWrite, 1024)
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(a) - float64(b)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(a) > 0.02 {
		t.Errorf("transfer time not stable: %v vs %v", a, b)
	}
	_ = sim.Time(0)
}
