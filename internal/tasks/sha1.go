package tasks

import (
	"fmt"

	"repro/internal/platform"
)

// SHA1Args describes a hash run over a message in external memory.
type SHA1Args struct {
	MsgAddr uint32
	MsgLen  int
	// PadAddr is scratch memory for the padded tail blocks.
	PadAddr uint32
}

// SHA-1 round structure shared by the software model.
func sha1F(t int, b, c, d uint32) (uint32, uint32) {
	switch {
	case t < 20:
		return b&c | ^b&d, 0x5A827999
	case t < 40:
		return b ^ c ^ d, 0x6ED9EBA1
	case t < 60:
		return b&c | b&d | c&d, 0x8F1BBCDC
	default:
		return b ^ c ^ d, 0xCA62C1D6
	}
}

func rotl(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }

// sha1CallOverheadOps models the fixed per-call cost of the RFC 3174
// reference code: SHA1Reset, the SHA1Input state machine entry per chunk,
// SHA1Result's padding path and digest assembly. It is deliberately heavy —
// "the software implementation (taken from the RFC document) has a large
// overhead for smaller data sets" (§4.2).
const sha1CallOverheadOps = 2600

// SHA1SW is the software baseline, cost-modelled after the RFC 3174
// reference code: the message is copied byte-wise into the context's block
// buffer, the schedule array W[80] lives in memory, and each of the 80
// rounds loads its schedule word.
func SHA1SW(s *platform.System, a SHA1Args) ([5]uint32, error) {
	c := s.CPU
	blocks, err := sha1Pad(s, a)
	if err != nil {
		return [5]uint32{}, err
	}
	c.Call()
	c.Op(sha1CallOverheadOps)
	h := [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	wBase := a.PadAddr + 0x1000 // the W[80] array on the stack
	for _, blockAddr := range blocks {
		// SHA1Input: byte-wise copy into Message_Block.
		for i := 0; i < 64; i++ {
			b := c.LB(blockAddr + uint32(i))
			c.SB(a.PadAddr+0x2000+uint32(i), b)
			c.Op(3)
		}
		var w [80]uint32
		// Schedule W[0..15]: four byte loads and shifts per word.
		for t := 0; t < 16; t++ {
			var v uint32
			for i := 0; i < 4; i++ {
				v = v<<8 | uint32(c.LB(a.PadAddr+0x2000+uint32(4*t+i)))
				c.Op(2)
			}
			w[t] = v
			c.SW(wBase+uint32(4*t), v)
			c.Op(1)
		}
		for t := 16; t < 80; t++ {
			x := c.LW(wBase+uint32(4*(t-3))) ^ c.LW(wBase+uint32(4*(t-8))) ^
				c.LW(wBase+uint32(4*(t-14))) ^ c.LW(wBase+uint32(4*(t-16)))
			v := rotl(x, 1)
			w[t] = v
			c.SW(wBase+uint32(4*t), v)
			c.Op(6)
			c.Branch(true)
		}
		av, bv, cv, dv, ev := h[0], h[1], h[2], h[3], h[4]
		for t := 0; t < 80; t++ {
			f, k := sha1F(t, bv, cv, dv)
			wt := c.LW(wBase + uint32(4*t))
			_ = wt // w[t] already known functionally; the load is the cost
			tmp := rotl(av, 5) + f + ev + w[t] + k
			ev, dv, cv, bv, av = dv, cv, rotl(bv, 30), av, tmp
			c.Op(12)
			c.Branch(true)
		}
		h[0] += av
		h[1] += bv
		h[2] += cv
		h[3] += dv
		h[4] += ev
		c.Op(10)
	}
	c.Ret()
	return h, nil
}

// SHA1HW drives the SHA-1 core in the dynamic area with CPU-controlled
// 32-bit transfers (Table 11's configuration).
func SHA1HW(s *platform.System, a SHA1Args) ([5]uint32, error) {
	if cur := s.CurrentModule(); cur != "sha1" {
		return [5]uint32{}, fmt.Errorf("tasks: sha1 module not loaded (current %q)", cur)
	}
	resetCore(s)
	c := s.CPU
	d := s.DockData()
	blocks, err := sha1Pad(s, a)
	if err != nil {
		return [5]uint32{}, err
	}
	c.Call()
	c.Op(30) // driver setup
	for _, blockAddr := range blocks {
		for t := 0; t < 16; t++ {
			w := c.LW(blockAddr + uint32(4*t))
			c.SW(d, w)
			c.Op(2)
			c.Branch(true)
		}
	}
	c.Sync()
	var h [5]uint32
	for i := range h {
		h[i] = c.LW(d)
		c.Op(1)
	}
	c.Ret()
	return h, nil
}

// sha1Pad builds the RFC padding in scratch memory under CPU cost and
// returns the addresses of all 64-byte blocks to process. Full payload
// blocks are processed in place; the padded tail (one or two blocks) is
// written to PadAddr.
func sha1Pad(s *platform.System, a SHA1Args) ([]uint32, error) {
	c := s.CPU
	full := a.MsgLen / 64
	var blocks []uint32
	for i := 0; i < full; i++ {
		blocks = append(blocks, a.MsgAddr+uint32(64*i))
	}
	rem := a.MsgLen - 64*full
	// Copy the remainder and append 0x80, zeros, and the bit length.
	tailLen := rem + 1 + 8
	tailBlocks := 1
	if tailLen > 64 {
		tailBlocks = 2
	}
	c.Op(12) // length math
	for i := 0; i < rem; i++ {
		b := c.LB(a.MsgAddr + uint32(64*full+i))
		c.SB(a.PadAddr+uint32(i), b)
		c.Op(3)
	}
	c.SB(a.PadAddr+uint32(rem), 0x80)
	for i := rem + 1; i < 64*tailBlocks-8; i++ {
		c.SB(a.PadAddr+uint32(i), 0)
		c.Op(2)
	}
	bits := uint64(a.MsgLen) * 8
	c.SW(a.PadAddr+uint32(64*tailBlocks-8), uint32(bits>>32))
	c.SW(a.PadAddr+uint32(64*tailBlocks-4), uint32(bits))
	c.Op(4)
	for i := 0; i < tailBlocks; i++ {
		blocks = append(blocks, a.PadAddr+uint32(64*i))
	}
	return blocks, nil
}
