package tasks

import (
	"repro/internal/dock"
	"repro/internal/platform"
)

// resetCore pulses the dock's core-reset control bit, returning the circuit
// in the dynamic area to its post-configuration state. Every hardware
// driver starts with it, as the real software would.
func resetCore(s *platform.System) {
	s.CPU.SW(s.DockBase()+dock.RegCtrl, dock.CtrlCoreReset)
	s.CPU.Sync()
}
