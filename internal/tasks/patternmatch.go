// Package tasks implements the paper's application kernels twice on every
// platform: as costed software running on the embedded CPU (the C baseline)
// and as drivers for the hardware modules in the dynamic area. Software and
// hardware paths operate on the same simulated memory and must produce
// bit-identical results; only the simulated time differs.
package tasks

import (
	"fmt"

	"repro/internal/hwcore"
	"repro/internal/platform"
	"repro/internal/ref"
)

// PatternArgs describes a pattern-matching run: a bilevel image in external
// memory (row-major, 32-bit packed words, MSB-first pixels) and an 8x8
// pattern held in registers.
type PatternArgs struct {
	ImgAddr   uint32
	W, H      int
	Pattern   ref.Pattern8
	Threshold int
	// LUTAddr is where the software's 256-entry popcount table lives
	// (the .data section of the C program).
	LUTAddr uint32
}

// PatternResult is the task outcome.
type PatternResult struct {
	BestX, BestY, BestCount int
	Hits                    int
}

// LoadPatternImage writes a binary image into external memory at addr.
func LoadPatternImage(s *platform.System, addr uint32, im *ref.BinaryImage) error {
	buf := make([]byte, 4*len(im.Words))
	for i, w := range im.Words {
		buf[4*i] = byte(w >> 24)
		buf[4*i+1] = byte(w >> 16)
		buf[4*i+2] = byte(w >> 8)
		buf[4*i+3] = byte(w)
	}
	return s.WriteMem(addr, buf)
}

// LoadPopcountLUT installs the software baseline's 256-byte popcount table.
func LoadPopcountLUT(s *platform.System, addr uint32) error {
	lut := make([]byte, 256)
	for i := range lut {
		n := 0
		for b := i; b != 0; b &= b - 1 {
			n++
		}
		lut[i] = byte(n)
	}
	return s.WriteMem(addr, lut)
}

// PatternMatchSW is the software baseline: straightforward C, sliding the
// window position by position, extracting eight window bits per pattern row
// from the packed image and counting matches through the popcount table.
// The bit manipulation is exactly the kind the paper calls "cumbersome to
// express in the C programming language".
func PatternMatchSW(s *platform.System, a PatternArgs) PatternResult {
	c := s.CPU
	wpr := (a.W + 31) / 32
	res := PatternResult{BestCount: -1}
	c.Call()
	c.Op(8) // prologue: pattern rows into registers, pointer setup
	for y := 0; y+8 <= a.H; y++ {
		c.Op(2)
		c.Branch(true)
		for x := 0; x+8 <= a.W; x++ {
			c.Op(2)
			c.Branch(true)
			count := 0
			for j := 0; j < 8; j++ {
				c.Op(2)
				c.Branch(true)
				// Address arithmetic for the packed row word.
				c.Op(4)
				row := y + j
				wi := x / 32
				off := uint(x % 32)
				w0 := c.LW(a.ImgAddr + uint32(4*(row*wpr+wi)))
				var bits byte
				if off == 0 {
					c.Op(2)
					bits = byte(w0 >> 24)
				} else {
					// The window may straddle two words: shift/or/mask.
					var w1 uint32
					if wi+1 < wpr {
						w1 = c.LW(a.ImgAddr + uint32(4*(row*wpr+wi+1)))
					} else {
						c.Op(1)
					}
					c.Op(4)
					bits = byte((w0<<off | w1>>(32-off)) >> 24)
				}
				v := ^(bits ^ a.Pattern[j])
				c.Op(2)
				count += int(c.LB(a.LUTAddr + uint32(v)))
				c.Op(1)
			}
			c.Op(2) // compare against best
			if count > res.BestCount {
				c.Branch(true)
				c.Op(3)
				res.BestX, res.BestY, res.BestCount = x, y, count
			} else {
				c.Branch(false)
			}
			c.Op(1)
			if count >= a.Threshold {
				c.Branch(true)
				c.Op(1)
				res.Hits++
			} else {
				c.Branch(false)
			}
		}
	}
	c.Ret()
	return res
}

// PatternMatchHW drives the 8-stage matching pipeline in the dynamic area
// with CPU-controlled transfers: the packed image is streamed band by band
// and the per-position match counts are read back packed four per word.
// The caller must have loaded the "patternmatch" module.
func PatternMatchHW(s *platform.System, a PatternArgs) (PatternResult, error) {
	if cur := s.CurrentModule(); cur != "patternmatch" {
		return PatternResult{}, fmt.Errorf("tasks: patternmatch module not loaded (current %q)", cur)
	}
	resetCore(s)
	c := s.CPU
	d := s.DockData()
	wpr := (a.W + 31) / 32
	bands := a.H - 7
	positions := a.W - 7
	res := PatternResult{BestCount: -1}

	c.Call()
	c.Op(10) // configuration word assembly
	p := a.Pattern
	c.SW(d, uint32(p[0])<<24|uint32(p[1])<<16|uint32(p[2])<<8|uint32(p[3]))
	c.SW(d, uint32(p[4])<<24|uint32(p[5])<<16|uint32(p[6])<<8|uint32(p[7]))
	c.SW(d, uint32(wpr)<<12|uint32(bands))
	for b := 0; b < bands; b++ {
		c.Op(2)
		c.Branch(true)
		for cw := 0; cw < wpr; cw++ {
			c.Op(2)
			c.Branch(true)
			for j := 0; j < 8; j++ {
				c.Op(3) // address arithmetic
				w := c.LW(a.ImgAddr + uint32(4*((b+j)*wpr+cw)))
				c.SW(d, w)
				c.Op(2)
				c.Branch(true)
			}
		}
		// Read back the band's packed counts.
		for rw := 0; rw < hwcore.ResultWordsPerBand(a.W); rw++ {
			c.Op(2)
			c.Branch(true)
			w := c.LW(d)
			for j := 0; j < 4; j++ {
				x := 4*rw + j
				if x >= positions {
					break
				}
				count := int(w >> uint(8*(3-j)) & 0xFF)
				c.Op(3) // extract + compare
				if count > res.BestCount {
					c.Branch(true)
					c.Op(3)
					res.BestX, res.BestY, res.BestCount = x, b, count
				} else {
					c.Branch(false)
				}
				if count >= a.Threshold {
					c.Branch(true)
					c.Op(1)
					res.Hits++
				} else {
					c.Branch(false)
				}
			}
		}
	}
	c.Ret()
	return res, nil
}
