package tasks_test

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/tasks"
)

// runners is the table of one small instance per task type.
func runners() []tasks.Runner {
	return []tasks.Runner{
		tasks.SHA1Run{Seed: 1, Len: 200},
		tasks.JenkinsRun{Seed: 2, Len: 300, InitVal: 7},
		tasks.PatternRun{Seed: 3, W: 32, H: 32, Threshold: 56},
		tasks.BrightnessRun{Seed: 4, N: 512, Delta: 40},
		tasks.BlendRun{Seed: 5, N: 512},
		tasks.FadeRun{Seed: 6, N: 512, F: 96},
		tasks.TransferRun{Kind: tasks.TransferWrite, Words: 64},
	}
}

func TestRunnersVerifyOnBothSystems(t *testing.T) {
	for _, build := range []struct {
		name string
		mk   func() (*platform.System, error)
	}{
		{"sys32", platform.NewSys32},
		{"sys64", platform.NewSys64},
	} {
		t.Run(build.name, func(t *testing.T) {
			s, err := build.mk()
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range runners() {
				if !s.Supports(r.Module()) {
					continue // sha1 does not fit the 32-bit dynamic area
				}
				rep, err := s.Execute(r.Module(), func() error { return r.Run(s) })
				if err != nil {
					t.Fatalf("%s: %v", r.Name(), err)
				}
				if rep.Work == 0 {
					t.Errorf("%s: zero simulated work time", r.Name())
				}
			}
		})
	}
}

func TestRunnerVerificationCatchesWrongModule(t *testing.T) {
	s, err := platform.NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	// Load a different module than the runner needs: the driver must refuse.
	if _, err := s.LoadModule("blend"); err != nil {
		t.Fatal(err)
	}
	r := tasks.FadeRun{Seed: 1, N: 64, F: 128}
	if err := r.Run(s); err == nil {
		t.Fatal("fade runner succeeded with blend loaded")
	}
}
