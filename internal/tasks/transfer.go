package tasks

import (
	"fmt"

	"repro/internal/dock"
	"repro/internal/intc"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Transfer measures the raw data-movement cost between the dynamic region
// and external memory — the lower bound the developer uses "to make a first
// assessment of the improvements that can be obtained by moving a function
// from software to hardware" (§3.2). The passthrough module must be loaded.

// TransferKind selects one of the three measured patterns.
type TransferKind int

const (
	// TransferWrite is a sequence of write operations (memory → region).
	TransferWrite TransferKind = iota
	// TransferRead is a sequence of read operations (region → memory).
	TransferRead
	// TransferInterleaved alternates writes and reads.
	TransferInterleaved
)

func (k TransferKind) String() string {
	switch k {
	case TransferWrite:
		return "write"
	case TransferRead:
		return "read"
	default:
		return "write/read"
	}
}

// TransferCPU runs n 32-bit program-controlled transfers of the given kind
// and returns the average time per transfer. "Transfers between external
// memory and dynamic area use the data bus twice, since data is fetched
// from the origin to the CPU and then from the CPU to the destination"
// (§3.2) — both halves are included, as is the controlling software.
func TransferCPU(s *platform.System, kind TransferKind, n int) (sim.Time, error) {
	if cur := s.CurrentModule(); cur != "passthrough" {
		return 0, fmt.Errorf("tasks: passthrough module not loaded (current %q)", cur)
	}
	resetCore(s)
	c := s.CPU
	d := s.DockData()
	mem := s.MemBase() + 0x0010_0000
	c.Sync()
	start := s.Now()
	switch kind {
	case TransferWrite:
		for i := 0; i < n; i++ {
			w := c.LW(mem + uint32(4*i))
			c.SW(d, w)
			c.Op(4)
			c.Branch(true)
		}
	case TransferRead:
		for i := 0; i < n; i++ {
			w := c.LW(d)
			c.SW(mem+uint32(4*i), w)
			c.Op(4)
			c.Branch(true)
		}
	case TransferInterleaved:
		for i := 0; i < n; i++ {
			w := c.LW(mem + uint32(4*i))
			c.SW(d, w)
			r := c.LW(d)
			c.SW(mem+uint32(4*(n+i)), r)
			c.Op(6)
			c.Branch(true)
		}
	}
	c.Sync()
	total := s.Now() - start
	return total / sim.Time(n), nil
}

// TransferDMA runs n 64-bit DMA-controlled transfers of the given kind on
// the 64-bit system and returns the average time per 64-bit transfer
// (Table 8). Interleaved transfers are block-interleaved through the output
// FIFO, exactly as §4.2 describes.
func TransferDMA(s *platform.System, kind TransferKind, n int) (sim.Time, error) {
	if !s.Is64 {
		return 0, fmt.Errorf("tasks: DMA transfers need the 64-bit system")
	}
	if cur := s.CurrentModule(); cur != "passthrough" {
		return 0, fmt.Errorf("tasks: passthrough module not loaded (current %q)", cur)
	}
	resetCore(s)
	c := s.CPU
	scratch := s.MemBase() + 0x0080_0000
	src := s.MemBase() + 0x0010_0000
	dst := s.MemBase() + 0x0040_0000
	bytes := 8 * n

	c.Sync()
	start := s.Now()
	switch kind {
	case TransferWrite:
		// Feed blocks; the FIFO is reset between blocks since the results
		// are not collected in this pattern.
		addr := scratch
		off := 0
		for off < bytes {
			nb := bytes - off
			if nb > fifoBlockBeats*8 {
				nb = fifoBlockBeats * 8
			}
			var next uint32
			if off+nb < bytes {
				next = addr + 0x20
			}
			writeDesc(c, addr, next, src+uint32(off), uint32(nb), dock.DirToDock)
			off += nb
			addr += 0x20
		}
		c.FlushRange(scratch, int(addr-scratch))
		if err := runDMA(s, scratch); err != nil {
			return 0, err
		}
		s.Dock64.FIFO().Reset()
	case TransferRead:
		// Drain pre-filled FIFO blocks to memory; refills are functional
		// (they model a producing circuit) and cost no time.
		off := 0
		for off < bytes {
			nb := bytes - off
			if nb > fifoBlockBeats*8 {
				nb = fifoBlockBeats * 8
			}
			prefillFIFO(s, nb/8)
			writeDesc(c, scratch, 0, dst+uint32(off), uint32(nb), dock.DirToMem)
			c.FlushRange(scratch, 0x20)
			if err := runDMA(s, scratch); err != nil {
				return 0, err
			}
			off += nb
		}
	case TransferInterleaved:
		chain := buildInterleavedChain(s, scratch, src, dst, bytes, 256)
		if err := runDMA(s, chain); err != nil {
			return 0, err
		}
	}
	c.Sync()
	total := s.Now() - start
	return total / sim.Time(n), nil
}

// prefillFIFO loads the dock's output FIFO functionally with n words.
func prefillFIFO(s *platform.System, n int) {
	core := s.Dock64.Core()
	for i := 0; i < n; i++ {
		core.Write(uint64(i), 8)
	}
	// Move the produced words into the FIFO.
	for {
		v, ok := core.PopOut()
		if !ok {
			break
		}
		if !s.Dock64.FIFO().Push(v) {
			break
		}
	}
}

// EnableDockIRQ programs the interrupt controller for the dock line (used
// by examples).
func EnableDockIRQ(s *platform.System) {
	s.CPU.SW(platform.AddrINTC+intc.RegIER, 1<<uint(s.DockIRQ()))
}
