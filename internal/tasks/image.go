package tasks

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/dock"
	"repro/internal/intc"
	"repro/internal/platform"
)

// ImageArgs describes a grayscale image task: 8-bit pixels at SrcA (and
// SrcB for the two-source tasks), result at Dst, N pixels. N must be a
// multiple of 8.
type ImageArgs struct {
	SrcA, SrcB, Dst uint32
	N               int
	Delta           int // brightness constant (signed)
	F               int // fade factor, 0..256
}

func (a ImageArgs) check() error {
	if a.N%8 != 0 || a.N == 0 {
		return fmt.Errorf("tasks: pixel count %d must be a positive multiple of 8", a.N)
	}
	return nil
}

// satAdd is the saturating byte add of the software models.
func satAdd(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// BrightnessSW is the software baseline: plain byte-wise C with a
// saturating add per pixel.
func BrightnessSW(s *platform.System, a ImageArgs) error {
	if err := a.check(); err != nil {
		return err
	}
	c := s.CPU
	c.Call()
	c.Op(6)
	for i := 0; i < a.N; i++ {
		px := c.LB(a.SrcA + uint32(i))
		v := int(px) + a.Delta
		c.Op(5) // add, two clamp compares, select
		c.Branch(v < 0 || v > 255)
		c.SB(a.Dst+uint32(i), satAdd(v))
		c.Op(3) // pointer/counter upkeep
		c.Branch(true)
	}
	c.Ret()
	return nil
}

// BrightnessHW drives the brightness core with CPU-controlled transfers:
// four pixels per 32-bit transfer in each direction (§3.2).
func BrightnessHW(s *platform.System, a ImageArgs) error {
	if err := a.check(); err != nil {
		return err
	}
	if cur := s.CurrentModule(); cur != "brightness" {
		return fmt.Errorf("tasks: brightness module not loaded (current %q)", cur)
	}
	resetCore(s)
	c := s.CPU
	d := s.DockData()
	c.Call()
	c.Op(6)
	c.SW(d, uint32(uint16(int16(a.Delta))))
	for i := 0; i < a.N; i += 4 {
		w := c.LW(a.SrcA + uint32(i))
		c.SW(d, w)
		r := c.LW(d)
		c.SW(a.Dst+uint32(i), r)
		c.Op(4)
		c.Branch(true)
	}
	c.Sync()
	c.Ret()
	return nil
}

// BlendSW is the software baseline for additive blending.
func BlendSW(s *platform.System, a ImageArgs) error {
	if err := a.check(); err != nil {
		return err
	}
	c := s.CPU
	c.Call()
	c.Op(8)
	for i := 0; i < a.N; i++ {
		pa := c.LB(a.SrcA + uint32(i))
		pb := c.LB(a.SrcB + uint32(i))
		v := int(pa) + int(pb)
		c.Op(4)
		c.Branch(v > 255)
		c.SB(a.Dst+uint32(i), satAdd(v))
		c.Op(4)
		c.Branch(true)
	}
	c.Ret()
	return nil
}

// BlendHW drives the blending core: each 32-bit transfer carries two pixels
// from each image; results pack into groups of four before read-back, so
// the CPU reads once every two writes (§3.2). The packing work is the
// combine overhead the paper attributes to the CPU.
func BlendHW(s *platform.System, a ImageArgs) error {
	if err := a.check(); err != nil {
		return err
	}
	if cur := s.CurrentModule(); cur != "blend" {
		return fmt.Errorf("tasks: blend module not loaded (current %q)", cur)
	}
	return combineHW(s, a, 0)
}

// FadeSW is the software baseline for the fade effect (A-B)*f/256 + B.
func FadeSW(s *platform.System, a ImageArgs) error {
	if err := a.check(); err != nil {
		return err
	}
	c := s.CPU
	c.Call()
	c.Op(8)
	for i := 0; i < a.N; i++ {
		pa := c.LB(a.SrcA + uint32(i))
		pb := c.LB(a.SrcB + uint32(i))
		c.Mul()
		c.Op(5) // subtract, shift, add, pack
		v := int(pb) + ((int(pa)-int(pb))*a.F)>>8
		c.SB(a.Dst+uint32(i), byte(v))
		c.Op(4)
		c.Branch(true)
	}
	c.Ret()
	return nil
}

// FadeHW drives the fade core; the dataflow is identical to blending
// (§3.2: "the data transfer pattern is identical to the one used in the
// additive blending task").
func FadeHW(s *platform.System, a ImageArgs) error {
	if err := a.check(); err != nil {
		return err
	}
	if cur := s.CurrentModule(); cur != "fade" {
		return fmt.Errorf("tasks: fade module not loaded (current %q)", cur)
	}
	return combineHW(s, a, 1+a.F)
}

// combineHW is the shared two-source CPU-controlled driver. cfg != 0 sends
// one configuration word (the fade factor) first.
func combineHW(s *platform.System, a ImageArgs, cfg int) error {
	resetCore(s)
	c := s.CPU
	d := s.DockData()
	c.Call()
	c.Op(8)
	if cfg != 0 {
		c.SW(d, uint32(cfg-1))
	}
	// The CPU combines the two sources before each transfer: the C code
	// builds every dock word from individual pixels of both images
	// (byte loads plus shifts), which is the overhead the paper blames for
	// the smaller speedups of the two-source tasks (§3.2).
	pack2 := func(i int) uint32 {
		va0 := uint32(c.LB(a.SrcA + uint32(i)))
		va1 := uint32(c.LB(a.SrcA + uint32(i+1)))
		vb0 := uint32(c.LB(a.SrcB + uint32(i)))
		vb1 := uint32(c.LB(a.SrcB + uint32(i+1)))
		c.Op(6)
		return va0<<24 | va1<<16 | vb0<<8 | vb1
	}
	var held uint32 // result word collected every two writes
	for i := 0; i < a.N; i += 4 {
		c.SW(d, pack2(i))
		c.SW(d, pack2(i+2))
		held = c.LW(d)
		c.SW(a.Dst+uint32(i), held)
		c.Op(5)
		c.Branch(true)
	}
	c.Sync()
	c.Ret()
	return nil
}

// --- 64-bit DMA drivers (Table 12) ---

// fifoBlockBeats is the block size (in 64-bit beats) of block-interleaved
// DMA transfers: the output FIFO stores up to 2047 values, so blocks of
// 2040 keep it from overflowing (§4.2).
const fifoBlockBeats = 2040

// descChainAddr is where drivers build descriptor chains in memory,
// relative to the scratch area they are given.
type dmaPlan struct {
	scratch uint32
	ndesc   int
}

// writeDesc stores one descriptor with CPU stores (the driver builds the
// chain at run time, which is part of the measured overhead).
func writeDesc(c *cpu.CPU, addr, next, mem, length, flags uint32) {
	c.SW(addr+0x00, next)
	c.SW(addr+0x04, mem)
	c.SW(addr+0x08, length)
	c.SW(addr+0x0C, flags)
	c.Op(6)
}

// runDMA programs the interrupt controller and the dock's DMA registers,
// starts the chain, and idles the CPU until the completion interrupt —
// "to avoid the need for polling the PLB dock to determine the status of
// the transfers, an interrupt generator was added to the dock" (§4.1).
func runDMA(s *platform.System, chain uint32) error {
	c := s.CPU
	base := s.DockBase()
	c.SW(platform.AddrINTC+intc.RegIER, 1<<uint(s.DockIRQ()))
	c.SW(base+dock.RegDMAPtr, chain)
	c.SW(base+dock.RegDMACtrl, dock.DMAStart|dock.DMAIrqEn)
	c.Sync()
	if err := c.WaitForIRQ(s.INTC.Pending); err != nil {
		return err
	}
	st := c.LW(base + dock.RegDMAStat)
	c.SW(base+dock.RegDMAStat, dock.DMADone)
	c.SW(platform.AddrINTC+intc.RegIAR, 1<<uint(s.DockIRQ()))
	if st&dock.DMAError != 0 {
		return fmt.Errorf("tasks: DMA error reported by the dock")
	}
	return nil
}

// buildInterleavedChain writes a feed/drain descriptor chain that moves
// srcBytes from src into the dock and the module's output back to dst,
// block-interleaved through the FIFO. ratio is output bytes per input byte
// times 256 (e.g. 256 for 1:1, 128 for the two-source cores).
func buildInterleavedChain(s *platform.System, scratch, src, dst uint32, srcBytes, ratio int) uint32 {
	c := s.CPU
	addr := scratch
	blockIn := fifoBlockBeats * 8
	off, outOff := 0, 0
	for off < srcBytes {
		n := srcBytes - off
		if n > blockIn {
			n = blockIn
		}
		outN := n * ratio / 256
		feed := addr
		drain := addr + 0x20
		nextOff := off + n
		var next uint32
		if nextOff < srcBytes {
			next = addr + 0x40
		}
		writeDesc(c, feed, drain, src+uint32(off), uint32(n), 0)
		writeDesc(c, drain, next, dst+uint32(outOff), uint32(outN), 1)
		off = nextOff
		outOff += outN
		addr += 0x40
	}
	// Make the chain visible to the DMA master.
	c.FlushRange(scratch, int(addr-scratch))
	return scratch
}

// BrightnessDMA is the 64-bit DMA-controlled implementation: the source
// image streams into the dynamic area with scatter-gather DMA (64-bit
// beats) and results return through the output FIFO, block-interleaved.
// "The 64-bit data transfers could be employed without additional work,
// since only one image is involved" (§4.2).
func BrightnessDMA(s *platform.System, a ImageArgs, scratch uint32) error {
	if err := a.check(); err != nil {
		return err
	}
	if !s.Is64 {
		return fmt.Errorf("tasks: DMA drivers need the 64-bit system")
	}
	if cur := s.CurrentModule(); cur != "brightness" {
		return fmt.Errorf("tasks: brightness module not loaded (current %q)", cur)
	}
	resetCore(s)
	c := s.CPU
	c.Call()
	c.Op(10)
	c.SW(s.DockData(), uint32(uint16(int16(a.Delta))))
	// Coherence: source must be in memory, destination lines discarded.
	c.FlushRange(a.SrcA, a.N)
	c.InvalidateRange(a.Dst, a.N)
	chain := buildInterleavedChain(s, scratch, a.SrcA, a.Dst, a.N, 256)
	if err := runDMA(s, chain); err != nil {
		return err
	}
	c.Ret()
	return nil
}

// prepCombined interleaves the two source images into the packed layout
// the two-source cores consume over the 64-bit channel (4 bytes of A, then
// 4 bytes of B per beat). This is the measured "data preparation" overhead
// of Table 12.
func prepCombined(s *platform.System, a ImageArgs, packed uint32) {
	c := s.CPU
	for i := 0; i < a.N; i += 4 {
		wa := c.LW(a.SrcA + uint32(i))
		wb := c.LW(a.SrcB + uint32(i))
		c.SW(packed+uint32(2*i), wa)
		c.SW(packed+uint32(2*i+4), wb)
		c.Op(6)
		c.Branch(true)
	}
}

// CombineDMAResult carries the time split of a two-source DMA run.
type CombineDMAResult struct {
	PrepTime int64 // data preparation, in femtoseconds (sim.Time)
}

// BlendDMA is the 64-bit DMA-controlled blending implementation.
func BlendDMA(s *platform.System, a ImageArgs, scratch, packed uint32) (CombineDMAResult, error) {
	if cur := s.CurrentModule(); cur != "blend" {
		return CombineDMAResult{}, fmt.Errorf("tasks: blend module not loaded (current %q)", cur)
	}
	return combineDMA(s, a, scratch, packed, 0)
}

// FadeDMA is the 64-bit DMA-controlled fade implementation.
func FadeDMA(s *platform.System, a ImageArgs, scratch, packed uint32) (CombineDMAResult, error) {
	if cur := s.CurrentModule(); cur != "fade" {
		return CombineDMAResult{}, fmt.Errorf("tasks: fade module not loaded (current %q)", cur)
	}
	return combineDMA(s, a, scratch, packed, 1+a.F)
}

func combineDMA(s *platform.System, a ImageArgs, scratch, packed uint32, cfg int) (CombineDMAResult, error) {
	var res CombineDMAResult
	if err := a.check(); err != nil {
		return res, err
	}
	if !s.Is64 {
		return res, fmt.Errorf("tasks: DMA drivers need the 64-bit system")
	}
	resetCore(s)
	c := s.CPU
	c.Call()
	c.Op(10)
	if cfg != 0 {
		c.SW(s.DockData(), uint32(cfg-1))
	}
	prepStart := s.Now()
	prepCombined(s, a, packed)
	c.FlushRange(packed, 2*a.N)
	res.PrepTime = int64(s.Now() - prepStart)
	c.InvalidateRange(a.Dst, a.N)
	chain := buildInterleavedChain(s, scratch, packed, a.Dst, 2*a.N, 128)
	if err := runDMA(s, chain); err != nil {
		return res, err
	}
	c.Ret()
	return res, nil
}
