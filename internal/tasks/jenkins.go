package tasks

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/platform"
)

// JenkinsArgs describes a hash run over a key in external memory.
type JenkinsArgs struct {
	KeyAddr uint32
	KeyLen  int
	InitVal uint32
}

// leWord loads a little-endian-composed word from big-endian memory with a
// single byte-reversed load (the PowerPC lwbrx instruction).
func leWord(c *cpu.CPU, addr uint32) uint32 {
	v := c.LW(addr)
	return v<<24 | v>>24 | v<<8&0xFF0000 | v>>8&0xFF00
}

// leTail composes up to n tail bytes little-endian (byte loads, as the C
// code's fall-through switch does).
func leTail(c *cpu.CPU, addr uint32, n int) uint32 {
	var v uint32
	for i := 0; i < n; i++ {
		v |= uint32(c.LB(addr+uint32(i))) << (8 * uint(i))
		c.Op(2)
	}
	return v
}

// jenkinsMixOps is the cost of the mix network plus loop bookkeeping in the
// compiled C: 36 mix operations and ~6 of pointer/counter upkeep.
const jenkinsMixOps = 42

// JenkinsSW is the software baseline: the public-domain lookup2 code. Its
// arithmetic is "optimized for 32-bit CPUs" (§3.2), but it consumes the key
// byte-wise to stay alignment- and endian-agnostic, exactly like the
// original C (a += k[0] + ((ub4)k[1]<<8) + ...).
func JenkinsSW(s *platform.System, a JenkinsArgs) uint32 {
	c := s.CPU
	c.Call()
	c.Op(8) // init a, b, c and pointers
	av, bv := uint32(0x9e3779b9), uint32(0x9e3779b9)
	cv := a.InitVal
	addr := a.KeyAddr
	n := a.KeyLen
	for n >= 12 {
		av += leTail(c, addr, 4)
		bv += leTail(c, addr+4, 4)
		cv += leTail(c, addr+8, 4)
		av, bv, cv = mix(av, bv, cv)
		c.Op(jenkinsMixOps)
		c.Branch(true)
		addr += 12
		n -= 12
	}
	// Tail: byte-wise composition, then the final mix.
	cv += uint32(a.KeyLen)
	c.Op(3)
	av += leTail(c, addr, min(n, 4))
	if n > 4 {
		bv += leTail(c, addr+4, min(n-4, 4))
	}
	if n > 8 {
		cv += leTail(c, addr+8, n-8) << 8
	}
	av, bv, cv = mix(av, bv, cv)
	c.Op(jenkinsMixOps)
	c.Ret()
	return cv
}

// JenkinsHW streams the key into the hash module in the dynamic area: the
// whole hashing function runs in hardware, the CPU only moves data — which
// is why "the data transfer times are significant when compared to the
// original software processing times" (§3.2).
func JenkinsHW(s *platform.System, a JenkinsArgs) (uint32, error) {
	if cur := s.CurrentModule(); cur != "jenkins" {
		return 0, fmt.Errorf("tasks: jenkins module not loaded (current %q)", cur)
	}
	resetCore(s)
	c := s.CPU
	d := s.DockData()
	c.Call()
	c.Op(6)
	c.SW(d, uint32(a.KeyLen))
	c.SW(d, a.InitVal)
	addr := a.KeyAddr
	n := a.KeyLen
	for n >= 12 {
		c.SW(d, leWord(c, addr))
		c.SW(d, leWord(c, addr+4))
		c.SW(d, leWord(c, addr+8))
		c.Op(6)
		c.Branch(true)
		addr += 12
		n -= 12
	}
	// Tail round, composed exactly as the hardware expects.
	var tw [3]uint32
	tw[0] = leTail(c, addr, min(n, 4))
	if n > 4 {
		tw[1] = leTail(c, addr+4, min(n-4, 4))
	}
	if n > 8 {
		tw[2] = leTail(c, addr+8, n-8)
	}
	c.Op(6)
	c.SW(d, tw[0])
	c.SW(d, tw[1])
	c.SW(d, tw[2])
	c.Sync()
	v := c.LW(d)
	c.Ret()
	return v, nil
}

// mix is the lookup2 mixing function (functional part of the software
// model; its cost is accounted via jenkinsMixOps).
func mix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= b
	a -= c
	a ^= c >> 13
	b -= c
	b -= a
	b ^= a << 8
	c -= a
	c -= b
	c ^= b >> 13
	a -= b
	a -= c
	a ^= c >> 12
	b -= c
	b -= a
	b ^= a << 16
	c -= a
	c -= b
	c ^= b >> 5
	a -= b
	a -= c
	a ^= c >> 3
	b -= c
	b -= a
	b ^= a << 10
	c -= a
	c -= b
	c ^= b >> 15
	return a, b, c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
