package core

import (
	"testing"

	"repro/internal/bitlinker"
	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/busmacro"
	"repro/internal/cpu"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/icap"
	"repro/internal/plan"
	"repro/internal/sim"
)

// testCore is a minimal behavioural model for manager tests.
type testCore struct{ id uint64 }

func (c *testCore) Name() string             { return "test" }
func (c *testCore) Reset()                   {}
func (c *testCore) Write(v uint64, size int) {}
func (c *testCore) Read() uint64             { return c.id }
func (c *testCore) PopOut() (uint64, bool)   { return 0, false }
func (c *testCore) CyclesPerWord() int       { return 1 }

// rig assembles a minimal platform around a manager: CPU, one bus, HWICAP.
func rig(t *testing.T) (*Manager, *fabric.ConfigMemory, fabric.Region, func() hw.Core) {
	t.Helper()
	dev := fabric.XC2VP7()
	region := fabric.DynamicRegion32()
	cm := fabric.NewConfigMemory(dev)
	baseline := cm.Clone()
	loader := bitstream.NewLoader(cm)

	k := sim.NewKernel()
	busClk := sim.NewClock("bus", 50_000_000)
	cpuClk := sim.NewClock("cpu", 200_000_000)
	b := bus.New("plb", k, busClk, 8, bus.Params{ArbCycles: 2, ReadExtra: 2, BeatCycles: 1})
	hi := icap.New(k, busClk, loader)
	if err := b.Map(0x4100_0000, 0x100, hi); err != nil {
		t.Fatal(err)
	}
	params := cpu.DefaultParams(cpuClk)
	params.CacheSize = 0
	c := cpu.New(k, params, b)

	macro := busmacro.Dock32()
	asm, err := bitlinker.New(dev, region, baseline, macro)
	if err != nil {
		t.Fatal(err)
	}
	var bound hw.Core
	mgr, err := NewManager(Config{
		Device: dev, Region: region, ConfigMem: cm, Baseline: baseline,
		Assembler: asm, Loader: loader, CPU: c, ICAPBase: 0x4100_0000,
		Bind:   func(core hw.Core) { bound = core },
		Kernel: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mgr, cm, region, func() hw.Core { return bound }
}

func testComponent(name string, region fabric.Region) *bitlinker.Component {
	return testComponentW(name, region, 6)
}

// testComponentW builds a component of the given footprint width. Widths
// matter for the differential-hazard test: a differential stream only
// touches the columns its own component uses, so stale state survives when
// the previous occupant was wider.
func testComponentW(name string, region fabric.Region, w int) *bitlinker.Component {
	macro := busmacro.Dock32()
	return &bitlinker.Component{
		Name: name, Version: "1", W: w, H: region.H,
		Resources: fabric.Resources{Slices: 100},
		Macro:     macro, PortRow0: macro.Row0,
		CLBFrames: bitlinker.SynthesizeFrames(name, "1", w, region.H),
	}
}

func TestRegisterAndLoad(t *testing.T) {
	mgr, _, region, bound := rig(t)
	if err := mgr.Register(testComponent("alpha", region), func() hw.Core { return &testCore{id: 1} }); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register(testComponent("beta", region), func() hw.Core { return &testCore{id: 2} }); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Modules(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("modules = %v", got)
	}
	d, err := mgr.Load("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Fatal("load cost no time")
	}
	if mgr.Current() != "alpha" || bound() == nil || bound().Read() != 1 {
		t.Fatal("alpha not bound")
	}
	// Swap and check rebinding.
	if _, err := mgr.Load("beta"); err != nil {
		t.Fatal(err)
	}
	if mgr.Current() != "beta" || bound().Read() != 2 {
		t.Fatal("beta not bound after swap")
	}
	// Re-loading the current module is free.
	d, err = mgr.Load("beta")
	if err != nil || d != 0 {
		t.Fatalf("reload: d=%v err=%v", d, err)
	}
	loads, total, bytes := mgr.Stats()
	if loads != 2 || total == 0 || bytes == 0 {
		t.Fatalf("stats: %d %v %d", loads, total, bytes)
	}
	if mgr.Corrupted() {
		t.Fatal("corrupted after clean loads")
	}
}

func TestDuplicateAndUnknown(t *testing.T) {
	mgr, _, region, _ := rig(t)
	if err := mgr.Register(testComponent("alpha", region), func() hw.Core { return &testCore{} }); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register(testComponent("alpha", region), func() hw.Core { return &testCore{} }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := mgr.Load("nope"); err == nil {
		t.Fatal("unknown module loaded")
	}
	if _, err := mgr.LoadDifferential("nope", ""); err == nil {
		t.Fatal("unknown differential module loaded")
	}
	if _, err := mgr.LoadNaive("nope"); err == nil {
		t.Fatal("unknown naive module loaded")
	}
	if _, err := mgr.StreamSize("nope"); err == nil {
		t.Fatal("unknown stream size")
	}
	if n, err := mgr.StreamSize("alpha"); err != nil || n == 0 {
		t.Fatalf("stream size: %d %v", n, err)
	}
}

func TestDifferentialBindsBrokenOnWrongState(t *testing.T) {
	mgr, _, region, bound := rig(t)
	// alpha is wider than beta: a differential stream for beta leaves
	// alpha's extra columns stale.
	if err := mgr.Register(testComponentW("alpha", region, 12), func() hw.Core { return &testCore{id: 1} }); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register(testComponentW("beta", region, 6), func() hw.Core { return &testCore{id: 2} }); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Load("alpha"); err != nil {
		t.Fatal(err)
	}
	// Differential for beta assuming a blank region — wrong, alpha is there.
	if _, err := mgr.LoadDifferential("beta", ""); err != nil {
		t.Fatal(err)
	}
	if mgr.Current() != "" {
		t.Fatalf("current = %q, want broken binding", mgr.Current())
	}
	if _, ok := bound().(*hw.BrokenCore); !ok {
		t.Fatal("expected BrokenCore")
	}
	// Differential with the right assumption works.
	if _, err := mgr.Load("beta"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.LoadDifferential("alpha", "beta"); err != nil {
		t.Fatal(err)
	}
	if mgr.Current() != "alpha" {
		t.Fatal("correct differential did not bind")
	}
}

func TestNaiveLoadCorrupts(t *testing.T) {
	mgr, cm, region, _ := rig(t)
	// Give the static area some content so corruption is observable.
	dev := cm.Device()
	frame := make([]uint32, dev.FrameLen())
	for i := range frame {
		frame[i] = 0xA5A5A5A5
	}
	// Write outside the region band only — region columns' band stays blank.
	far := fabric.FAR{Block: fabric.BlockCLB, Major: region.Col0, Minor: 0}
	lo, hi := dev.RowWordRange(region.Row0, region.H)
	for i := lo; i < hi; i++ {
		frame[i] = 0
	}
	if err := cm.WriteFrame(far, frame); err != nil {
		t.Fatal(err)
	}
	// Rebuild the manager against this baseline.
	_ = mgr
	mgr2, _, _, _ := rigWithState(t, cm)
	if err := mgr2.Register(testComponent("alpha", region), func() hw.Core { return &testCore{} }); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr2.LoadNaive("alpha"); err != nil {
		t.Fatal(err)
	}
	if !mgr2.Corrupted() {
		t.Fatal("naive load did not corrupt the static design")
	}
}

// rigWithState builds a manager over an existing configuration state.
func rigWithState(t *testing.T, cm *fabric.ConfigMemory) (*Manager, *fabric.ConfigMemory, fabric.Region, func() hw.Core) {
	t.Helper()
	dev := cm.Device()
	region := fabric.DynamicRegion32()
	baseline := cm.Clone()
	loader := bitstream.NewLoader(cm)
	k := sim.NewKernel()
	busClk := sim.NewClock("bus", 50_000_000)
	cpuClk := sim.NewClock("cpu", 200_000_000)
	b := bus.New("plb", k, busClk, 8, bus.Params{ArbCycles: 2, ReadExtra: 2, BeatCycles: 1})
	hi := icap.New(k, busClk, loader)
	if err := b.Map(0x4100_0000, 0x100, hi); err != nil {
		t.Fatal(err)
	}
	params := cpu.DefaultParams(cpuClk)
	params.CacheSize = 0
	c := cpu.New(k, params, b)
	asm, err := bitlinker.New(dev, region, baseline, busmacro.Dock32())
	if err != nil {
		t.Fatal(err)
	}
	var bound hw.Core
	mgr, err := NewManager(Config{
		Device: dev, Region: region, ConfigMem: cm, Baseline: baseline,
		Assembler: asm, Loader: loader, CPU: c, ICAPBase: 0x4100_0000,
		Bind:   func(core hw.Core) { bound = core },
		Kernel: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mgr, cm, region, func() hw.Core { return bound }
}

func TestIncompleteConfigRejected(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

// TestDifferentialAssemblyMemoized is the regression test for the
// (assumed, name) differential cache: repeated loads of the same
// transition must not re-run AssembleDifferential.
func TestDifferentialAssemblyMemoized(t *testing.T) {
	mgr, _, region, _ := rig(t)
	if err := mgr.Register(testComponent("alpha", region), func() hw.Core { return &testCore{id: 1} }); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register(testComponent("beta", region), func() hw.Core { return &testCore{id: 2} }); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Load("alpha"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := mgr.LoadDifferential("beta", "alpha"); err != nil {
			t.Fatalf("round %d alpha->beta: %v", i, err)
		}
		if _, err := mgr.LoadDifferential("alpha", "beta"); err != nil {
			t.Fatalf("round %d beta->alpha: %v", i, err)
		}
	}
	if n := mgr.DiffAssemblies(); n != 2 {
		t.Fatalf("AssembleDifferential ran %d times for 10 loads of 2 transitions, want 2", n)
	}
	// Size queries share the same cache.
	if _, _, err := mgr.DifferentialSize("alpha", "beta"); err != nil {
		t.Fatal(err)
	}
	if n := mgr.DiffAssemblies(); n != 2 {
		t.Fatalf("DifferentialSize re-assembled: %d assemblies", n)
	}
}

// TestPlannedLoadHazardGate is the §2.2 safety property: a differential
// plan whose assumed from-state no longer matches the authoritative
// resident state is refused without any ICAP traffic, and a non-
// authoritative state can never yield a differential plan at all.
func TestPlannedLoadHazardGate(t *testing.T) {
	mgr, _, region, _ := rig(t)
	// alpha is wider than beta/gamma, so a differential for a narrow module
	// that wrongly assumes a blank region leaves alpha's extra columns
	// stale — the poisoning step below depends on that asymmetry.
	for i, c := range []struct {
		name string
		w    int
	}{{"alpha", 12}, {"beta", 6}, {"gamma", 6}} {
		id := uint64(i + 1)
		if err := mgr.Register(testComponentW(c.name, region, c.w), func() hw.Core { return &testCore{id: id} }); err != nil {
			t.Fatal(err)
		}
	}
	planner := plan.New(mgr)
	if _, err := mgr.Load("alpha"); err != nil {
		t.Fatal(err)
	}
	resident, ok := mgr.ResidentState()
	if resident != "alpha" || !ok {
		t.Fatalf("resident state = (%q, %v), want authoritative alpha", resident, ok)
	}
	// Plan a differential alpha -> beta, then make it stale.
	p, err := planner.Plan(resident, ok, "beta")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != plan.StreamDifferential || p.From != "alpha" {
		t.Fatalf("plan %+v, want differential from alpha", p)
	}
	if _, err := mgr.Load("gamma"); err != nil {
		t.Fatal(err)
	}
	loads, _, bytes := mgr.Stats()
	if _, err := mgr.LoadPlanned(p); err == nil {
		t.Fatal("stale differential plan was issued")
	}
	if l2, _, b2 := mgr.Stats(); l2 != loads || b2 != bytes {
		t.Fatalf("stale plan touched the ICAP: loads %d->%d bytes %d->%d", loads, l2, bytes, b2)
	}
	if cur := mgr.Current(); cur != "gamma" {
		t.Fatalf("region binds %q after refused plan, want gamma", cur)
	}
	// Re-planning against the current state succeeds and loads.
	resident, ok = mgr.ResidentState()
	p2, err := planner.Plan(resident, ok, "beta")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.LoadPlanned(p2); err != nil {
		t.Fatal(err)
	}
	if mgr.Current() != "beta" || mgr.Corrupted() {
		t.Fatal("re-planned differential did not bind cleanly")
	}

	// Poison the tracked state with the legacy hazard API: a differential
	// for narrow beta that wrongly assumes a blank region while wide alpha
	// is resident leaves unrecognized region content.
	if _, err := mgr.Load("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.LoadDifferential("beta", ""); err != nil {
		t.Fatal(err)
	}
	resident, ok = mgr.ResidentState()
	if ok {
		t.Fatalf("resident state (%q) still authoritative after wrong-assumption differential", resident)
	}
	p3, err := planner.Plan(resident, ok, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if p3.Kind != plan.StreamComplete {
		t.Fatalf("planner offered %v against non-authoritative state, must be complete", p3.Kind)
	}
	if _, err := mgr.LoadPlanned(p3); err != nil {
		t.Fatal(err)
	}
	if mgr.Current() != "alpha" {
		t.Fatal("complete recovery load did not bind")
	}
	if resident, ok = mgr.ResidentState(); !ok || resident != "alpha" {
		t.Fatalf("resident state = (%q, %v) after recovery, want authoritative alpha", resident, ok)
	}
}

// TestStaleNoOpPlanRefused: even a no-op plan is verified against the
// resident state at issue time.
func TestStaleNoOpPlanRefused(t *testing.T) {
	mgr, _, region, _ := rig(t)
	if err := mgr.Register(testComponent("alpha", region), func() hw.Core { return &testCore{id: 1} }); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register(testComponent("beta", region), func() hw.Core { return &testCore{id: 2} }); err != nil {
		t.Fatal(err)
	}
	planner := plan.New(mgr)
	if _, err := mgr.Load("alpha"); err != nil {
		t.Fatal(err)
	}
	p, err := planner.Plan("alpha", true, "alpha")
	if err != nil || p.Kind != plan.StreamNone {
		t.Fatalf("plan %+v err %v, want no-op", p, err)
	}
	if _, err := mgr.Load("beta"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.LoadPlanned(p); err == nil {
		t.Fatal("stale no-op plan accepted while beta is resident")
	}
}
