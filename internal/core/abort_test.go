package core

import (
	"errors"
	"testing"

	"repro/internal/hw"
	"repro/internal/plan"
)

// stopAfter returns a stop function that trips on its nth poll (1-based).
func stopAfter(n int) func() bool {
	calls := 0
	return func() bool {
		calls++
		return calls >= n
	}
}

func TestAbortableLoadCompletes(t *testing.T) {
	mgr, _, region, bound := rig(t)
	if err := mgr.Register(testComponent("alpha", region), func() hw.Core { return &testCore{id: 1} }); err != nil {
		t.Fatal(err)
	}
	pl, err := plan.New(mgr).Plan("", true, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	// A stop function that never trips must behave exactly like LoadPlanned.
	elapsed, bytes, err := mgr.LoadPlannedAbortable(pl, func() bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if elapsed == 0 || bytes != pl.Bytes {
		t.Fatalf("elapsed=%v bytes=%d, want full stream of %d B", elapsed, bytes, pl.Bytes)
	}
	if mgr.Current() != "alpha" || bound().Read() != 1 {
		t.Fatal("alpha not bound after abortable load")
	}
	if _, ok := mgr.ResidentState(); !ok {
		t.Fatal("resident state not authoritative after completed load")
	}
}

func TestAbortBeforeStartTouchesNothing(t *testing.T) {
	mgr, _, region, _ := rig(t)
	if err := mgr.Register(testComponent("alpha", region), func() hw.Core { return &testCore{id: 1} }); err != nil {
		t.Fatal(err)
	}
	pl, err := plan.New(mgr).Plan("", true, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	_, bytes, err := mgr.LoadPlannedAbortable(pl, func() bool { return true })
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if bytes != 0 {
		t.Fatalf("streamed %d B before an immediate abort", bytes)
	}
	if _, ok := mgr.ResidentState(); !ok {
		t.Fatal("an abort before the first word must not demote the resident state")
	}
	if loads, _, streamed := mgr.Stats(); loads != 0 || streamed != 0 {
		t.Fatalf("stats after clean abort: loads=%d bytes=%d, want 0/0", loads, streamed)
	}
}

// TestAbortMidStreamIsSafe aborts a complete stream partway through and
// verifies the §2.2 safety argument: the tracked state is demoted, the
// planner refuses differentials against it, and a complete reload restores
// a verified binding without ever corrupting the static design.
func TestAbortMidStreamIsSafe(t *testing.T) {
	mgr, _, region, bound := rig(t)
	for i, name := range []string{"alpha", "beta"} {
		id := uint64(i + 1)
		if err := mgr.Register(testComponent(name, region), func() hw.Core { return &testCore{id: id} }); err != nil {
			t.Fatal(err)
		}
	}
	pln := plan.New(mgr)
	if _, err := mgr.Load("alpha"); err != nil {
		t.Fatal(err)
	}

	pl, err := pln.Plan("alpha", true, "beta")
	if err != nil {
		t.Fatal(err)
	}
	_, bytes, err := mgr.LoadPlannedAbortable(pl, stopAfter(2))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if bytes <= 0 || bytes >= pl.Bytes {
		t.Fatalf("aborted after %d B of a %d B stream, want a strict partial", bytes, pl.Bytes)
	}
	if mgr.AbortedLoads() != 1 {
		t.Fatalf("AbortedLoads = %d, want 1", mgr.AbortedLoads())
	}
	if _, ok := mgr.ResidentState(); ok {
		t.Fatal("resident state still authoritative after a partial stream")
	}

	// The planner must now refuse differentials: only the complete stream
	// is safe against unknown region content.
	resident, authoritative := mgr.ResidentState()
	repl, err := pln.Plan(resident, authoritative, "beta")
	if err != nil {
		t.Fatal(err)
	}
	if repl.Kind != plan.StreamComplete {
		t.Fatalf("re-plan after abort chose %v, want complete", repl.Kind)
	}
	// And a stale differential plan is refused by the gate without ICAP
	// traffic (the §2.2 hazard gate, unchanged by the abortable path).
	if _, _, err := mgr.LoadPlannedAbortable(pl, nil); err == nil {
		t.Fatal("stale differential plan accepted after abort")
	}

	if _, err := mgr.LoadPlanned(repl); err != nil {
		t.Fatal(err)
	}
	if mgr.Current() != "beta" || bound().Read() != 2 {
		t.Fatal("beta not bound after recovery load")
	}
	if _, ok := mgr.ResidentState(); !ok {
		t.Fatal("resident state not authoritative after recovery")
	}
	if mgr.Corrupted() {
		t.Fatal("static design corrupted by abort/recovery")
	}
}
