// Package core implements the run-time reconfiguration manager — the
// paper's methodology as a library. It owns one dynamic area: it keeps the
// store of relocatable components, assembles complete partial configurations
// with the BitLinker flow (cached per module), streams them through the
// HWICAP under CPU control, verifies that the static design was not
// disturbed, and binds the dynamic region's behavioural core to the dock
// after every reconfiguration by hashing the configuration contents.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitlinker"
	"repro/internal/bitstream"
	"repro/internal/cpu"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/icap"
	"repro/internal/plan"
	"repro/internal/region"
	"repro/internal/sim"
)

// Config wires a Manager into a platform.
type Config struct {
	Device *fabric.Device
	Region fabric.Region
	// AllRegions lists every dynamic region of the device's floorplan,
	// including Region itself. The static design is everything outside ALL
	// of them: a sibling region's reconfiguration must not read as static
	// corruption here. Empty means Region is the device's only dynamic
	// area (the paper's fixed floorplan).
	AllRegions []fabric.Region
	ConfigMem  *fabric.ConfigMemory
	// Baseline is the configuration image right after the initial full
	// configuration (static design present, region blank).
	Baseline *fabric.ConfigMemory
	// Assembler is the BitLinker instance for the region.
	Assembler *bitlinker.Assembler
	// Loader is the device's configuration logic (shared with the HWICAP).
	Loader *bitstream.Loader
	// CPU drives the HWICAP; ICAPBase is its bus address.
	CPU      *cpu.CPU
	ICAPBase uint32
	// ICAP is the HWICAP slave itself. The CPU path reaches it through the
	// bus at ICAPBase; the direct reference is needed to arm the
	// compressed-stream decoder front-end. nil disables compressed loads.
	ICAP *icap.HWICAP
	// Bind attaches a behavioural core to the dock.
	Bind func(hw.Core)
	// Kernel provides timing for configuration statistics.
	Kernel *sim.Kernel
	// StaticHashes, when set, is the device's shared static-hash
	// memoizer: on a multi-region floorplan every manager's rebind runs
	// after every configuration sequence, and without sharing each would
	// recompute the identical O(device) hash. nil means the manager
	// hashes directly (single-manager setups and tests).
	StaticHashes *StaticHasher
}

// StaticHasher memoizes the static hash of one device's configuration
// memory per completed configuration sequence, shared by every manager of
// the device. Not safe for concurrent use on its own: callers serialize on
// the system lock, like all simulated activity.
type StaticHasher struct {
	loader  *bitstream.Loader
	cm      *fabric.ConfigMemory
	regions []fabric.Region
	valid   bool
	configs uint64
	hash    uint64
}

// NewStaticHasher returns a memoizer over the configuration memory,
// excluding the given dynamic regions (the device's whole floorplan).
func NewStaticHasher(loader *bitstream.Loader, cm *fabric.ConfigMemory, regions []fabric.Region) *StaticHasher {
	return &StaticHasher{loader: loader, cm: cm, regions: regions}
}

// Hash returns the static hash as of the loader's current completed
// configuration count, computing it at most once per sequence.
func (h *StaticHasher) Hash() uint64 {
	_, configs, _ := h.loader.Stats()
	if !h.valid || configs != h.configs {
		h.hash = h.cm.StaticHash(h.regions...)
		h.configs = configs
		h.valid = true
	}
	return h.hash
}

// entry is one registered module.
type entry struct {
	comp    *bitlinker.Component
	factory func() hw.Core
	// assembled holds the cached complete configuration.
	assembled *bitlinker.Result
	// target is the post-load configuration image (for differential
	// assembly experiments).
	target *fabric.ConfigMemory
	loads  uint64
}

// diffKey identifies one (assumed → wanted) differential transition.
type diffKey struct{ from, to string }

// Manager is the run-time reconfiguration manager of one dynamic area.
type Manager struct {
	cfg        Config
	modules    map[string]*entry
	byHash     map[uint64]*entry
	current    string
	staticHash uint64

	// residentOK marks the tracked resident state as authoritative: the
	// region's content hash matched a registered module (or the blank
	// baseline) after the last configuration. Only then may a differential
	// stream be issued against it.
	residentOK   bool
	baselineHash uint64
	// lastHash is the region hash observed by the last rebind. On a
	// multi-region device every manager's rebind runs after every
	// configuration sequence; an unchanged hash over an authoritative
	// state means the stream belonged to a sibling region, so this
	// region's binding and counters are left untouched.
	lastHash uint64

	// diffs caches assembled differential configurations per transition,
	// so planning and repeated loads never re-run AssembleDifferential.
	diffs          map[diffKey]*bitlinker.Result
	diffAssemblies uint64
	// zdiffs and zfulls cache compressed containers: per transition for
	// differential-based ones, per module for complete-based (RLE-only)
	// ones. The encoder reuses the memoized differential's stream, so a
	// compressed size query costs one encode per pair, ever.
	zdiffs map[diffKey]*bitstream.Compressed
	zfulls map[string]*bitstream.Compressed

	loadCount       uint64
	loadTime        sim.Time
	bytesStreamed   uint64
	diffLoads       uint64
	completeLoads   uint64
	compressedLoads uint64
	dmaLoads        uint64
	abortedLoads    uint64
	corrupted       bool

	// spans are the region's frame-index intervals — the readback window
	// of the scrub pass and the injectable surface of the fault campaign.
	// bandLo/bandHi bound the region's row-band words inside those frames:
	// faults are confined to the band because a flip outside it (static
	// content sharing the region's full-height frames) would read as
	// static-design corruption, which is sticky by design.
	spans          []region.Span
	bandLo, bandHi int
	// goldenCRC is the readback CRC over the span frames as of the last
	// verified configuration; valid exactly while residentOK holds.
	goldenCRC      uint16
	scrubPasses    uint64
	scrubFaults    uint64
	faultsInjected uint64

	// notify, when set, observes hazard-gate refusals and resident-state
	// demotions ("hazard"/"demote" plus a short reason). The trace spine
	// hooks in here, so core never depends on the tracer package.
	notify func(event, reason string)
}

// ErrAborted reports that an abortable load was stopped at a safe stream
// boundary before the configuration sequence completed. The region content
// is then partial, so the tracked resident state is demoted to
// non-authoritative and the next load must plan a complete stream.
var ErrAborted = errors.New("core: load aborted at stream boundary")

// NewManager returns a manager for the configured dynamic area.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Device == nil || cfg.ConfigMem == nil || cfg.Baseline == nil ||
		cfg.Assembler == nil || cfg.Loader == nil || cfg.CPU == nil ||
		cfg.Bind == nil || cfg.Kernel == nil {
		return nil, fmt.Errorf("core: incomplete manager configuration")
	}
	if len(cfg.AllRegions) == 0 {
		cfg.AllRegions = []fabric.Region{cfg.Region}
	}
	m := &Manager{
		cfg:          cfg,
		modules:      make(map[string]*entry),
		byHash:       make(map[uint64]*entry),
		staticHash:   cfg.Baseline.StaticHash(cfg.AllRegions...),
		baselineHash: cfg.Baseline.RegionHash(cfg.Region),
		diffs:        make(map[diffKey]*bitlinker.Result),
		zdiffs:       make(map[diffKey]*bitstream.Compressed),
		zfulls:       make(map[string]*bitstream.Compressed),
		residentOK:   true, // the initial full configuration leaves the region blank
	}
	m.lastHash = m.baselineHash
	m.spans = region.Spans(cfg.Device, cfg.Region)
	m.bandLo, m.bandHi = cfg.Device.RowWordRange(cfg.Region.Row0, cfg.Region.H)
	m.goldenCRC = m.readbackCRC()
	cfg.Loader.OnDone(m.rebind)
	return m, nil
}

// Region returns the dynamic area this manager owns.
func (m *Manager) Region() fabric.Region { return m.cfg.Region }

// SetNotify installs the observability hook: it is called, under the same
// serialization as the load path itself, with ("hazard", reason) when the
// §2.2 gate refuses a stale plan and ("demote", reason) whenever the
// tracked resident state loses authority. nil disables it.
func (m *Manager) SetNotify(fn func(event, reason string)) { m.notify = fn }

// event reports one observability event to the installed notify hook.
func (m *Manager) event(kind, reason string) {
	if m.notify != nil {
		m.notify(kind, reason)
	}
}

// demote marks the tracked resident state non-authoritative and reports
// the demotion with its reason.
func (m *Manager) demote(reason string) {
	m.residentOK = false
	m.event("demote", reason)
}

// Register adds a module: its relocatable component and behavioural factory.
// The complete partial configuration is assembled once and cached; its
// region hash is indexed for post-configuration binding.
func (m *Manager) Register(comp *bitlinker.Component, factory func() hw.Core) error {
	if _, dup := m.modules[comp.Name]; dup {
		return fmt.Errorf("core: module %s already registered", comp.Name)
	}
	placed := bitlinker.Placed{C: comp, ColOff: m.cfg.Region.W - comp.W}
	res, err := m.cfg.Assembler.Assemble(placed)
	if err != nil {
		return fmt.Errorf("core: assembling %s: %w", comp.Name, err)
	}
	target := m.cfg.Assembler.Target(placed)
	e := &entry{comp: comp, factory: factory, assembled: res, target: target}
	m.modules[comp.Name] = e
	m.byHash[res.RegionHash] = e
	return nil
}

// Modules lists the registered module names, sorted.
func (m *Manager) Modules() []string {
	names := make([]string, 0, len(m.modules))
	for n := range m.modules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Current returns the name of the loaded module ("" when none or unknown).
func (m *Manager) Current() string { return m.current }

// ResidentState returns the tracked resident module and whether that
// tracking is authoritative — i.e. the region's post-configuration hash
// matched the module (or the blank baseline) and the static design is
// intact. Differential streams may only be planned against an
// authoritative state.
func (m *Manager) ResidentState() (string, bool) {
	return m.current, m.residentOK && !m.corrupted
}

// Has reports whether a module of that name is registered (a module that
// does not fit the dynamic area is never registered).
func (m *Manager) Has(name string) bool {
	_, ok := m.modules[name]
	return ok
}

// Corrupted reports whether a reconfiguration has damaged the static design
// (never happens with BitLinker-assembled streams; the naive/differential
// experiment paths can trigger it).
func (m *Manager) Corrupted() bool { return m.corrupted }

// Stats reports load count, cumulative configuration time and streamed
// bytes.
func (m *Manager) Stats() (loads uint64, total sim.Time, bytes uint64) {
	return m.loadCount, m.loadTime, m.bytesStreamed
}

// LoadKinds reports how many loads streamed a complete configuration and
// how many streamed a differential one.
func (m *Manager) LoadKinds() (complete, differential uint64) {
	return m.completeLoads, m.diffLoads
}

// CompressedLoads reports how many loads streamed a compressed container.
func (m *Manager) CompressedLoads() uint64 { return m.compressedLoads }

// DMALoads reports how many loads went through a dock DMA engine instead of
// CPU stores.
func (m *Manager) DMALoads() uint64 { return m.dmaLoads }

// AbortedLoads reports how many loads were stopped at a stream boundary
// before completing (speculative streams preempted by a real request).
func (m *Manager) AbortedLoads() uint64 { return m.abortedLoads }

// DiffAssemblies reports how often AssembleDifferential actually ran —
// repeated loads of a memoized transition do not grow this counter.
func (m *Manager) DiffAssemblies() uint64 { return m.diffAssemblies }

// StreamSize returns the size in bytes of a module's cached complete
// configuration.
func (m *Manager) StreamSize(name string) (int, error) {
	e, ok := m.modules[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown module %s", name)
	}
	return e.assembled.Stream.SizeBytes(), nil
}

// CompleteSize implements plan.Source: byte and frame count of the cached
// complete configuration.
func (m *Manager) CompleteSize(name string) (int, int, error) {
	e, ok := m.modules[name]
	if !ok {
		return 0, 0, fmt.Errorf("core: unknown module %s", name)
	}
	return e.assembled.Stream.SizeBytes(), e.assembled.Frames, nil
}

// DifferentialSize implements plan.Source: byte and frame count of the
// (from → to) differential stream. The assembled result is memoized, so
// planning shares the cache with the load path.
func (m *Manager) DifferentialSize(from, to string) (int, int, error) {
	res, err := m.differential(from, to)
	if err != nil {
		return 0, 0, err
	}
	return res.Stream.SizeBytes(), res.Frames, nil
}

// CompressedSize implements plan.Source: wire bytes, decoded bytes and
// frame count of the compressed container for the (from → to) transition.
// The container is encoded from the memoized differential and itself
// memoized, so sizing shares the cache with the load path.
func (m *Manager) CompressedSize(from, to string) (int, int, int, error) {
	z, err := m.compressedDiff(from, to)
	if err != nil {
		return 0, 0, 0, err
	}
	return z.SizeBytes(), z.RawBytes(), z.Frames, nil
}

// CompleteCompressedSize implements plan.Source: sizes of the RLE-only
// container encoding the module's complete stream. No configuration-memory
// references, so it is as state-independent as the complete stream.
func (m *Manager) CompleteCompressedSize(name string) (int, int, int, error) {
	z, err := m.compressedFull(name)
	if err != nil {
		return 0, 0, 0, err
	}
	return z.SizeBytes(), z.RawBytes(), z.Frames, nil
}

// compressedDiff returns the cached compressed container for the
// transition, encoding it at most once per (from, to) pair. The encoder
// diffs against the same assumed image the differential was built from, so
// its configuration-memory KEEP references are valid exactly when the
// differential itself is — under the §2.2 residency gate.
func (m *Manager) compressedDiff(from, to string) (*bitstream.Compressed, error) {
	key := diffKey{from: from, to: to}
	if z, ok := m.zdiffs[key]; ok {
		return z, nil
	}
	res, err := m.differential(from, to)
	if err != nil {
		return nil, err
	}
	base, err := m.assumedImage(from)
	if err != nil {
		return nil, err
	}
	z, err := bitstream.Compress(m.cfg.Device, res.Stream, base, res.Frames)
	if err != nil {
		return nil, err
	}
	m.zdiffs[key] = z
	return z, nil
}

// compressedFull returns the cached RLE-only container for the module's
// complete stream.
func (m *Manager) compressedFull(name string) (*bitstream.Compressed, error) {
	if z, ok := m.zfulls[name]; ok {
		return z, nil
	}
	e, ok := m.modules[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown module %s", name)
	}
	z, err := bitstream.Compress(m.cfg.Device, e.assembled.Stream, nil, e.assembled.Frames)
	if err != nil {
		return nil, err
	}
	m.zfulls[name] = z
	return z, nil
}

// assumedImage resolves a from-state name to its configuration image: the
// blank baseline for "", the module's post-load target otherwise.
func (m *Manager) assumedImage(from string) (*fabric.ConfigMemory, error) {
	if from == "" {
		return m.cfg.Baseline, nil
	}
	ae, ok := m.modules[from]
	if !ok {
		return nil, fmt.Errorf("core: unknown assumed module %s", from)
	}
	return ae.target, nil
}

// differential returns the cached differential configuration for the
// transition, assembling it at most once per (from, to) pair.
func (m *Manager) differential(from, to string) (*bitlinker.Result, error) {
	if _, ok := m.modules[to]; !ok {
		return nil, fmt.Errorf("core: unknown module %s", to)
	}
	base, err := m.assumedImage(from)
	if err != nil {
		return nil, err
	}
	key := diffKey{from: from, to: to}
	if res, ok := m.diffs[key]; ok {
		return res, nil
	}
	e := m.modules[to]
	placed := bitlinker.Placed{C: e.comp, ColOff: m.cfg.Region.W - e.comp.W}
	m.diffAssemblies++
	res, err := m.cfg.Assembler.AssembleDifferential(base, placed)
	if err != nil {
		return nil, err
	}
	m.diffs[key] = res
	return res, nil
}

// Load reconfigures the dynamic area with the named module's complete
// configuration, streaming it through the HWICAP under CPU control. It
// returns the configuration time. Loading the already-current module is a
// no-op (the paper's systems likewise keep a configuration until another
// task needs the area).
func (m *Manager) Load(name string) (sim.Time, error) {
	e, ok := m.modules[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown module %s", name)
	}
	// The shortcut requires an authoritative resident state: after an
	// aborted stream m.current may still name the old module while the
	// region content is unknown — then the module must really be loaded.
	if m.current == name && m.residentOK && !m.corrupted {
		return 0, nil
	}
	return m.stream(e.assembled.Stream, false)
}

// LoadDifferential loads the cached differential configuration for the
// named module, valid only if the region currently holds assumed's
// configuration. This is the smaller/faster stream of §2.2 — and the hazard
// demonstration when assumed does not match reality. Production code goes
// through LoadPlanned, which verifies the assumption before streaming.
func (m *Manager) LoadDifferential(name, assumed string) (sim.Time, error) {
	res, err := m.differential(assumed, name)
	if err != nil {
		return 0, err
	}
	return m.stream(res.Stream, true)
}

// LoadPlanned executes a plan produced by plan.Planner. The safety gate of
// §2.2 lives here: a differential stream is only issued when the plan's
// assumed from-state still matches the authoritative resident state —
// otherwise LoadPlanned refuses without touching the ICAP, and the caller
// must re-plan against the current state.
func (m *Manager) LoadPlanned(p plan.Plan) (sim.Time, error) {
	t, _, err := m.LoadPlannedAbortable(p, nil)
	return t, err
}

// LoadPlannedAbortable executes a plan like LoadPlanned, but polls stop at
// safe stream boundaries (every abortCheckWords words) — the cancellable
// load a speculative prefetcher issues, so a real request never waits for
// a full speculative stream. On abort the configuration logic is reset,
// the words streamed so far are accounted, the tracked resident state is
// demoted to non-authoritative (partial region content), and ErrAborted is
// returned. bytes reports the words actually streamed, complete or not.
func (m *Manager) LoadPlannedAbortable(p plan.Plan, stop func() bool) (elapsed sim.Time, bytes int, err error) {
	e, ok := m.modules[p.Module]
	if !ok {
		return 0, 0, fmt.Errorf("core: unknown module %s", p.Module)
	}
	if stop != nil && stop() {
		return 0, 0, ErrAborted
	}
	resident, authoritative := m.ResidentState()
	switch p.Kind {
	case plan.StreamNone:
		if !authoritative || resident != p.Module {
			m.event("hazard", "stale-noop")
			return 0, 0, fmt.Errorf("core: stale plan: no-op for %s but resident state is %q (authoritative=%v)",
				p.Module, resident, authoritative)
		}
		return 0, 0, nil
	case plan.StreamDifferential:
		if !authoritative || resident != p.From {
			m.event("hazard", "stale-differential")
			return 0, 0, fmt.Errorf("core: stale plan: differential %q -> %s but resident state is %q (authoritative=%v)",
				p.From, p.Module, resident, authoritative)
		}
		res, err := m.differential(p.From, p.Module)
		if err != nil {
			return 0, 0, err
		}
		return m.streamAbortable(res.Stream, true, stop)
	case plan.StreamComplete:
		return m.streamAbortable(e.assembled.Stream, false, stop)
	case plan.StreamCompressed:
		z, err := m.planContainer(p, resident, authoritative)
		if err != nil {
			return 0, 0, err
		}
		return m.streamCompressedAbortable(z, stop)
	}
	return 0, 0, fmt.Errorf("core: unknown stream kind %v", p.Kind)
}

// planContainer resolves a compressed plan to its container, enforcing the
// §2.2 gate for differential-based ones. Complete-based containers carry no
// configuration-memory references and need no gate.
func (m *Manager) planContainer(p plan.Plan, resident string, authoritative bool) (*bitstream.Compressed, error) {
	switch p.Base {
	case plan.StreamDifferential:
		if !authoritative || resident != p.From {
			m.event("hazard", "stale-compressed")
			return nil, fmt.Errorf("core: stale plan: compressed differential %q -> %s but resident state is %q (authoritative=%v)",
				p.From, p.Module, resident, authoritative)
		}
		return m.compressedDiff(p.From, p.Module)
	case plan.StreamComplete:
		return m.compressedFull(p.Module)
	}
	return nil, fmt.Errorf("core: compressed plan with base %v", p.Base)
}

// PendingLoad is one in-flight DMA load. The stream content is already
// applied (the configuration sequence is atomic at Begin); what is pending
// is the settlement of the engine's port window against the member's
// timeline, done by FinishLoad when the requester needs the result.
type PendingLoad struct {
	Plan        plan.Plan
	start, done sim.Time
	bytes       int
	none        bool
}

// Bytes reports the wire bytes the transfer moved.
func (pl *PendingLoad) Bytes() int { return pl.bytes }

// BeginPlanned starts a plan's stream on a dock DMA engine. The same §2.2
// gates as LoadPlannedAbortable apply — a differential-based stream (plain
// or compressed) is refused unless the plan's assumed from-state still
// matches the authoritative resident state. The returned PendingLoad's port
// window overlaps sibling engines' windows and CPU work; call FinishLoad
// before using the loaded module. A configuration error is returned
// immediately (the engine resets the loader) and demotes the resident
// state, exactly like a CPU-path failure.
func (m *Manager) BeginPlanned(p plan.Plan, eng *icap.DMA) (*PendingLoad, error) {
	e, ok := m.modules[p.Module]
	if !ok {
		return nil, fmt.Errorf("core: unknown module %s", p.Module)
	}
	resident, authoritative := m.ResidentState()
	var words []uint32
	compressed := false
	switch p.Kind {
	case plan.StreamNone:
		if !authoritative || resident != p.Module {
			m.event("hazard", "stale-noop")
			return nil, fmt.Errorf("core: stale plan: no-op for %s but resident state is %q (authoritative=%v)",
				p.Module, resident, authoritative)
		}
		return &PendingLoad{Plan: p, none: true}, nil
	case plan.StreamDifferential:
		if !authoritative || resident != p.From {
			m.event("hazard", "stale-differential")
			return nil, fmt.Errorf("core: stale plan: differential %q -> %s but resident state is %q (authoritative=%v)",
				p.From, p.Module, resident, authoritative)
		}
		res, err := m.differential(p.From, p.Module)
		if err != nil {
			return nil, err
		}
		words = res.Stream.Words
	case plan.StreamComplete:
		words = e.assembled.Stream.Words
	case plan.StreamCompressed:
		z, err := m.planContainer(p, resident, authoritative)
		if err != nil {
			return nil, err
		}
		words, compressed = z.Words, true
	default:
		return nil, fmt.Errorf("core: unknown stream kind %v", p.Kind)
	}
	start, done, err := eng.Begin(words, compressed)
	m.loadCount++
	m.dmaLoads++
	m.loadTime += done - start
	m.bytesStreamed += uint64(4 * len(words))
	switch {
	case compressed:
		m.compressedLoads++
	case p.Kind == plan.StreamDifferential:
		m.diffLoads++
	default:
		m.completeLoads++
	}
	if err != nil {
		m.demote("dma-error")
		return nil, fmt.Errorf("core: dma load of %s: %w", p.Module, err)
	}
	return &PendingLoad{Plan: p, start: start, done: done, bytes: 4 * len(words)}, nil
}

// FinishLoad settles a pending DMA load against the member's timeline: it
// advances simulated time to the end of the engine's port window and
// reports the split between visible configuration time (what the requester
// actually waited) and hidden time (the part of the window that overlapped
// dispatch, work or sibling loads).
func (m *Manager) FinishLoad(pl *PendingLoad) (visible, hidden sim.Time) {
	if pl == nil || pl.none {
		return 0, 0
	}
	now := m.cfg.Kernel.Now()
	if pl.done > now {
		visible = pl.done - now
		m.cfg.Kernel.AdvanceTo(pl.done)
	}
	hidden = (pl.done - pl.start) - visible
	if hidden < 0 {
		hidden = 0
	}
	return visible, hidden
}

// LoadNaive streams a naively assembled configuration (zeros outside the
// region band) — the §2.2 hazard that corrupts the static design.
func (m *Manager) LoadNaive(name string) (sim.Time, error) {
	e, ok := m.modules[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown module %s", name)
	}
	placed := bitlinker.Placed{C: e.comp, ColOff: m.cfg.Region.W - e.comp.W}
	res, err := m.cfg.Assembler.AssembleNaive(placed)
	if err != nil {
		return 0, err
	}
	return m.stream(res.Stream, false)
}

// abortCheckWords is how often an abortable stream polls its stop
// function: every 256 words (1 KiB) — a handful of frames — so a real
// request preempts a speculative stream within microseconds of real time.
const abortCheckWords = 256

// stream drives the words through the HWICAP with CPU stores and checks the
// completion status.
func (m *Manager) stream(s *bitstream.Stream, differential bool) (sim.Time, error) {
	t, _, err := m.streamAbortable(s, differential, nil)
	return t, err
}

// streamAbortable streams like stream, polling stop at chunk boundaries.
// An aborted stream resets the configuration logic (so the next load finds
// the packet state machine at power-up, as a real HWICAP abort does),
// counts the words it actually pushed, and leaves the resident state
// non-authoritative: some frames may have been committed without a rebind.
// The §2.2 hazard gate then refuses any differential against this region
// until a complete load restores a verified state, so an abort can waste
// stream bytes but can never corrupt an execution.
func (m *Manager) streamAbortable(s *bitstream.Stream, differential bool, stop func() bool) (sim.Time, int, error) {
	c := m.cfg.CPU
	start := m.cfg.Kernel.Now()
	for i, w := range s.Words {
		if stop != nil && i > 0 && i%abortCheckWords == 0 && stop() {
			c.SW(m.cfg.ICAPBase+icap.RegControl, icap.CtrlReset)
			c.Sync()
			elapsed := m.cfg.Kernel.Now() - start
			m.loadCount++
			m.abortedLoads++
			m.loadTime += elapsed
			m.bytesStreamed += uint64(4 * i)
			m.demote("abort")
			return elapsed, 4 * i, ErrAborted
		}
		c.SW(m.cfg.ICAPBase+icap.RegWriteFIFO, w)
	}
	c.Sync()
	// Poll the status register until the engine reports done or error.
	var status uint32
	err := c.Spin(32, func() bool {
		status = c.LW(m.cfg.ICAPBase + icap.RegStatus)
		return status&(icap.StatDone|icap.StatError) != 0 && status&icap.StatBusy == 0
	})
	elapsed := m.cfg.Kernel.Now() - start
	m.loadCount++
	m.loadTime += elapsed
	m.bytesStreamed += uint64(s.SizeBytes())
	if differential {
		m.diffLoads++
	} else {
		m.completeLoads++
	}
	if err != nil {
		// The sequence never completed: frames may have been committed
		// without a rebind, so the tracked state is no longer trustworthy.
		m.demote("stream-error")
		return elapsed, s.SizeBytes(), err
	}
	if status&icap.StatError != 0 {
		m.demote("config-error")
		return elapsed, s.SizeBytes(), fmt.Errorf("core: configuration error reported by HWICAP")
	}
	return elapsed, s.SizeBytes(), nil
}

// streamCompressedAbortable pushes a compressed container through the
// HWICAP with the decoder front-end armed, polling stop at the same
// 256-word FIFO-write boundaries as an uncompressed stream — an abort
// resets the configuration logic (which also disarms the decoder), so the
// abort-demote semantics are unchanged. Wire bytes are what software
// streamed and what the byte counters book; the port time is bound by the
// decoded words, which the armed HWICAP charges per expansion.
func (m *Manager) streamCompressedAbortable(z *bitstream.Compressed, stop func() bool) (sim.Time, int, error) {
	if m.cfg.ICAP == nil {
		return 0, 0, fmt.Errorf("core: compressed load without an HWICAP decoder front-end")
	}
	c := m.cfg.CPU
	start := m.cfg.Kernel.Now()
	m.cfg.ICAP.ArmDecoder()
	for i, w := range z.Words {
		if stop != nil && i > 0 && i%abortCheckWords == 0 && stop() {
			c.SW(m.cfg.ICAPBase+icap.RegControl, icap.CtrlReset)
			c.Sync()
			elapsed := m.cfg.Kernel.Now() - start
			m.loadCount++
			m.abortedLoads++
			m.loadTime += elapsed
			m.bytesStreamed += uint64(4 * i)
			m.demote("abort")
			return elapsed, 4 * i, ErrAborted
		}
		c.SW(m.cfg.ICAPBase+icap.RegWriteFIFO, w)
	}
	c.Sync()
	var status uint32
	err := c.Spin(32, func() bool {
		status = c.LW(m.cfg.ICAPBase + icap.RegStatus)
		return status&(icap.StatDone|icap.StatError) != 0 && status&icap.StatBusy == 0
	})
	derr := m.cfg.ICAP.DisarmDecoder()
	elapsed := m.cfg.Kernel.Now() - start
	m.loadCount++
	m.loadTime += elapsed
	m.bytesStreamed += uint64(z.SizeBytes())
	m.compressedLoads++
	if err == nil && derr != nil {
		err = fmt.Errorf("core: compressed stream: %w", derr)
	}
	if err != nil {
		m.demote("stream-error")
		return elapsed, z.SizeBytes(), err
	}
	if status&icap.StatError != 0 {
		m.demote("config-error")
		return elapsed, z.SizeBytes(), fmt.Errorf("core: configuration error reported by HWICAP")
	}
	return elapsed, z.SizeBytes(), nil
}

// rebind runs after every completed configuration sequence: it hashes the
// region, binds the matching behavioural core (or a BrokenCore), and checks
// the static design for disturbance. On a multi-region device the loader
// fires every region's rebind; a sibling's stream leaves this region's
// hash unchanged and is skipped, so only the affected region re-binds —
// and an aborted stream (which never fires rebind) demotes only its own
// region's resident state.
func (m *Manager) rebind() {
	h := m.cfg.ConfigMem.RegionHash(m.cfg.Region)
	if h == m.lastHash && m.residentOK && !m.corrupted {
		// Sibling-region stream (or a band-identical overwrite): keep this
		// region's binding, but never skip the static-design check — a
		// naively assembled stream can zero static rows while reproducing
		// the resident band content exactly.
		if m.liveStaticHash() != m.staticHash {
			m.corrupted = true
		}
		return
	}
	m.lastHash = h
	if e, ok := m.byHash[h]; ok {
		e.loads++
		m.current = e.comp.Name
		m.residentOK = true
		m.goldenCRC = m.readbackCRC()
		core := e.factory()
		core.Reset()
		m.cfg.Bind(core)
	} else if h == m.baselineHash {
		// The region went back to the blank baseline: tracked and known.
		m.current = ""
		m.residentOK = true
		m.goldenCRC = m.readbackCRC()
		m.cfg.Bind(hw.NewBrokenCore(h))
	} else {
		// Unrecognized content (e.g. a differential stream applied against
		// the wrong state): the resident state is no longer authoritative.
		m.current = ""
		m.demote("unverified")
		m.cfg.Bind(hw.NewBrokenCore(h))
	}
	if m.liveStaticHash() != m.staticHash {
		m.corrupted = true
	}
}

// readbackCRC folds every frame of the region's spans into one CRC16, the
// way a readback scrub would see them coming out of the configuration
// port. The bit-serial CRC detects every single-bit upset in the window.
func (m *Manager) readbackCRC() uint16 {
	var crc uint16
	for _, sp := range m.spans {
		for fi := sp.Lo; fi < sp.Hi; fi++ {
			far, err := m.cfg.Device.FARAt(fi)
			if err != nil {
				continue // unreachable: spans come from the same device
			}
			f, err := m.cfg.ConfigMem.ReadFrame(far)
			if err != nil {
				continue
			}
			crc = bitstream.FrameCRC(crc, f)
		}
	}
	return crc
}

// Scrub runs one readback-CRC pass over the region's frame spans. A
// mismatch against the golden CRC means the resident configuration took a
// soft error: the tracked resident state is demoted to non-authoritative
// (detected=true, module names what was lost — "" for a blank region),
// and the §2.2 hazard gate forces the region's next load onto a complete
// stream, which overwrites every span frame and thereby heals the flip. A
// region whose state is already non-authoritative (aborted speculative
// stream, earlier detection) is not re-scrubbed: its golden CRC is stale
// by definition and a second demotion would double-count the same loss.
func (m *Manager) Scrub() (detected bool, module string) {
	m.scrubPasses++
	if !m.residentOK || m.corrupted {
		return false, ""
	}
	if m.readbackCRC() == m.goldenCRC {
		return false, ""
	}
	m.scrubFaults++
	module = m.current
	m.demote("scrub")
	return true, module
}

// ScrubStats reports how many scrub passes ran and how many detected
// corruption.
func (m *Manager) ScrubStats() (passes, faults uint64) {
	return m.scrubPasses, m.scrubFaults
}

// FaultsInjected reports how many bit-flips InjectFault applied.
func (m *Manager) FaultsInjected() uint64 { return m.faultsInjected }

// FaultSpace reports the injectable coordinate space of the region: the
// number of span frames and the number of row-band words per frame. A
// fault campaign draws (frame, word, bit) coordinates inside this space.
func (m *Manager) FaultSpace() (frames, words int) {
	for _, sp := range m.spans {
		frames += sp.Frames()
	}
	return frames, m.bandHi - m.bandLo
}

// InjectFault flips one configuration bit of the region: frame indexes the
// span frames in span order, word the row-band words of that frame, bit
// the bit within the word. The flip lands directly in configuration
// memory — an SEU, not a stream — so nothing rebinds and no counter but
// the injection count moves until a scrub (or the next rebind's hash
// mismatch) notices. Coordinates outside the region's band are rejected:
// the band boundary is what separates a region fault (recoverable by a
// complete reload) from static-design damage (sticky corruption).
func (m *Manager) InjectFault(frame, word int, bit uint) error {
	fi := -1
	rest := frame
	for _, sp := range m.spans {
		if rest < sp.Frames() {
			fi = sp.Lo + rest
			break
		}
		rest -= sp.Frames()
	}
	if frame < 0 || fi < 0 {
		return fmt.Errorf("core: fault frame %d outside region %s's spans", frame, m.cfg.Region.Name)
	}
	if word < 0 || m.bandLo+word >= m.bandHi {
		return fmt.Errorf("core: fault word %d outside region %s's row band", word, m.cfg.Region.Name)
	}
	far, err := m.cfg.Device.FARAt(fi)
	if err != nil {
		return err
	}
	if err := m.cfg.ConfigMem.FlipBit(far, m.bandLo+word, bit); err != nil {
		return err
	}
	m.faultsInjected++
	return nil
}

// liveStaticHash is the current static hash, through the shared memoizer
// when the platform provided one.
func (m *Manager) liveStaticHash() uint64 {
	if m.cfg.StaticHashes != nil {
		return m.cfg.StaticHashes.Hash()
	}
	return m.cfg.ConfigMem.StaticHash(m.cfg.AllRegions...)
}
