package core

import (
	"testing"

	"repro/internal/hw"
)

// TestScrubDetectsInjectedFault drives the manager-level fault loop: a
// clean region scrubs clean, an injected bit-flip is caught by the next
// readback pass (demoting the resident state), and the forced complete
// reload both restores authority and heals the flip.
func TestScrubDetectsInjectedFault(t *testing.T) {
	mgr, _, region, _ := rig(t)
	if err := mgr.Register(testComponent("alpha", region), func() hw.Core { return &testCore{id: 1} }); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Load("alpha"); err != nil {
		t.Fatal(err)
	}
	if detected, _ := mgr.Scrub(); detected {
		t.Fatal("clean region scrubbed dirty")
	}
	frames, words := mgr.FaultSpace()
	if frames <= 0 || words <= 0 {
		t.Fatalf("fault space (%d, %d), want nonempty", frames, words)
	}
	if err := mgr.InjectFault(frames-1, words-1, 31); err != nil {
		t.Fatal(err)
	}
	// The flip is invisible to everything but readback until then.
	if cur, ok := mgr.ResidentState(); !ok || cur != "alpha" {
		t.Fatalf("resident state (%q, %v) moved by silent fault", cur, ok)
	}
	detected, module := mgr.Scrub()
	if !detected || module != "alpha" {
		t.Fatalf("scrub returned (%v, %q), want detection of alpha", detected, module)
	}
	if _, ok := mgr.ResidentState(); ok {
		t.Fatal("resident state still authoritative after detection")
	}
	// A second scrub of the demoted region must not report a second loss.
	if detected, _ := mgr.Scrub(); detected {
		t.Fatal("second scrub double-demoted the region")
	}
	// Repair: reloading the lost module streams complete (the gate refuses
	// the free-reload shortcut on non-authoritative state) and heals.
	d, err := mgr.Load("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Fatal("repair load cost no time: the demoted region took the resident shortcut")
	}
	if cur, ok := mgr.ResidentState(); !ok || cur != "alpha" {
		t.Fatalf("resident state (%q, %v) after repair, want authoritative alpha", cur, ok)
	}
	if detected, _ := mgr.Scrub(); detected {
		t.Fatal("scrub detects corruption after the healing reload")
	}
	if mgr.Corrupted() {
		t.Fatal("static design corrupted: injection escaped the region band")
	}
	passes, faults := mgr.ScrubStats()
	if passes != 4 || faults != 1 {
		t.Errorf("scrub stats (%d passes, %d faults), want (4, 1)", passes, faults)
	}
	if mgr.FaultsInjected() != 1 {
		t.Errorf("faults injected = %d, want 1", mgr.FaultsInjected())
	}
}

// TestInjectFaultRejectsOutOfBand: coordinates outside the region's span
// frames or row band are refused — a flip outside the band would damage
// static frame content, which is sticky corruption, not a recoverable
// region fault.
func TestInjectFaultRejectsOutOfBand(t *testing.T) {
	mgr, _, _, _ := rig(t)
	frames, words := mgr.FaultSpace()
	cases := []struct {
		name        string
		frame, word int
		bit         uint
	}{
		{"frame past spans", frames, 0, 0},
		{"negative frame", -1, 0, 0},
		{"word past band", 0, words, 0},
		{"negative word", 0, -1, 0},
		{"bit past word", 0, 0, 32},
	}
	for _, tc := range cases {
		if err := mgr.InjectFault(tc.frame, tc.word, tc.bit); err == nil {
			t.Errorf("%s: injection accepted", tc.name)
		}
	}
	if mgr.FaultsInjected() != 0 {
		t.Errorf("rejected injections counted: %d", mgr.FaultsInjected())
	}
}
