// Package fifo provides the synchronous FIFO used by the PLB Dock's output
// path: the results produced by the dynamic area are buffered here before a
// DMA transfer moves them to main memory (§4.1). The paper's FIFO stores up
// to 2047 64-bit values.
package fifo

// F is a bounded FIFO of 64-bit words. The zero value is unusable; use New.
type F struct {
	buf        []uint64
	head, tail int
	n          int
	overflows  uint64
	maxDepth   int
}

// DockDepth is the output FIFO capacity of the PLB Dock (2047 x 64 bit).
const DockDepth = 2047

// New returns a FIFO with the given capacity.
func New(capacity int) *F {
	if capacity <= 0 {
		panic("fifo: non-positive capacity")
	}
	return &F{buf: make([]uint64, capacity)}
}

// Cap returns the capacity.
func (f *F) Cap() int { return len(f.buf) }

// Len returns the current occupancy.
func (f *F) Len() int { return f.n }

// Full reports whether the FIFO is full.
func (f *F) Full() bool { return f.n == len(f.buf) }

// Empty reports whether the FIFO is empty.
func (f *F) Empty() bool { return f.n == 0 }

// Overflows reports how many pushes were dropped on a full FIFO.
func (f *F) Overflows() uint64 { return f.overflows }

// MaxDepth reports the high-water mark.
func (f *F) MaxDepth() int { return f.maxDepth }

// Push appends v; it reports false (and counts an overflow) when full.
func (f *F) Push(v uint64) bool {
	if f.Full() {
		f.overflows++
		return false
	}
	f.buf[f.tail] = v
	f.tail = (f.tail + 1) % len(f.buf)
	f.n++
	if f.n > f.maxDepth {
		f.maxDepth = f.n
	}
	return true
}

// Pop removes the oldest word; ok is false when empty.
func (f *F) Pop() (v uint64, ok bool) {
	if f.n == 0 {
		return 0, false
	}
	v = f.buf[f.head]
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return v, true
}

// Reset empties the FIFO (overflow statistics are preserved).
func (f *F) Reset() {
	f.head, f.tail, f.n = 0, 0, 0
}
