package fifo

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrdering(t *testing.T) {
	f := New(4)
	for i := uint64(0); i < 4; i++ {
		if !f.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if !f.Full() {
		t.Fatal("not full after capacity pushes")
	}
	if f.Push(99) {
		t.Fatal("push on full FIFO succeeded")
	}
	if f.Overflows() != 1 {
		t.Fatalf("overflows = %d", f.Overflows())
	}
	for i := uint64(0); i < 4; i++ {
		v, ok := f.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: v=%d ok=%v", i, v, ok)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop on empty FIFO succeeded")
	}
	if f.MaxDepth() != 4 {
		t.Fatalf("max depth = %d", f.MaxDepth())
	}
}

func TestDockDepthMatchesPaper(t *testing.T) {
	// "The current output FIFO stores up to 2047 64-bit values." (§4.2)
	if DockDepth != 2047 {
		t.Fatalf("DockDepth = %d, want 2047", DockDepth)
	}
	f := New(DockDepth)
	n := 0
	for f.Push(uint64(n)) {
		n++
	}
	if n != 2047 {
		t.Fatalf("capacity = %d, want 2047", n)
	}
}

func TestReset(t *testing.T) {
	f := New(8)
	f.Push(1)
	f.Push(2)
	f.Reset()
	if !f.Empty() {
		t.Fatal("not empty after reset")
	}
	f.Push(7)
	if v, ok := f.Pop(); !ok || v != 7 {
		t.Fatal("FIFO unusable after reset")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

// Property: a FIFO behaves as a queue under any push/pop sequence that fits.
func TestFIFOQueueProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		fi := New(16)
		var model []uint64
		next := uint64(0)
		for _, op := range ops {
			if op%2 == 0 {
				if fi.Push(next) {
					model = append(model, next)
				} else if len(model) != 16 {
					return false
				}
				next++
			} else {
				v, ok := fi.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if fi.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
