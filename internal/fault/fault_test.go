package fault

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/pool"
)

func testSlots() []Slot {
	return []Slot{
		{Member: 0, Region: 0, Frames: 12, Words: 28},
		{Member: 0, Region: 1, Frames: 12, Words: 28},
		{Member: 1, Region: 0, Frames: 12, Words: 28},
	}
}

// TestGenerateDeterministicAndInBounds: the same (seed, n, rate, slots)
// yields the same schedule, the schedule is ordered by completion count,
// and every event stays inside its slot's fault space.
func TestGenerateDeterministicAndInBounds(t *testing.T) {
	slots := testSlots()
	a := Generate("u", 42, 200, 0.2, slots)
	b := Generate("u", 42, 200, 0.2, slots)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a.Events) == 0 {
		t.Fatal("rate 0.2 over 200 requests drew no events")
	}
	if c := Generate("u", 43, 200, 0.2, slots); reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
	last := 0
	for _, e := range a.Events {
		if e.AfterDone < last || e.AfterDone < 1 || e.AfterDone > 200 {
			t.Fatalf("event out of order or range: %+v after %d", e, last)
		}
		last = e.AfterDone
		if e.Frame < 0 || e.Frame >= 12 || e.Word < 0 || e.Word >= 28 || e.Bit > 31 {
			t.Fatalf("event outside fault space: %+v", e)
		}
	}
	if zero := Generate("z", 42, 200, 0, slots); len(zero.Events) != 0 {
		t.Fatalf("rate 0 drew %d events", len(zero.Events))
	}
}

// TestBurstClustersInMiddleThird: every burst event lands in the middle
// third of the workload, at roughly the uniform scenario's total volume.
func TestBurstClustersInMiddleThird(t *testing.T) {
	const n = 300
	sc := Burst("b", 7, n, 0.15, testSlots())
	if len(sc.Events) == 0 {
		t.Fatal("burst drew no events")
	}
	for _, e := range sc.Events {
		if e.AfterDone <= n/3 || e.AfterDone > 2*n/3 {
			t.Fatalf("burst event outside middle third: %+v", e)
		}
	}
}

// TestCampaignPresets: sweep yields one scenario per rate, covering rate
// zero; unknown presets are rejected.
func TestCampaignPresets(t *testing.T) {
	slots := testSlots()
	sweep, err := Campaign("sweep", 7, 100, slots)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != len(Rates) {
		t.Fatalf("sweep produced %d scenarios, want %d", len(sweep), len(Rates))
	}
	for i, sc := range sweep {
		if sc.Rate != Rates[i] || !strings.HasPrefix(sc.Name, "rate-") {
			t.Fatalf("sweep scenario %d = %q rate %g, want rate-%g", i, sc.Name, sc.Rate, Rates[i])
		}
	}
	if len(sweep[0].Events) != 0 {
		t.Fatal("rate-0 sweep scenario has events")
	}
	for _, preset := range []string{"uniform", "burst"} {
		scs, err := Campaign(preset, 7, 100, slots)
		if err != nil || len(scs) != 1 {
			t.Fatalf("Campaign(%q) = %d scenarios, %v", preset, len(scs), err)
		}
	}
	if _, err := Campaign("meteor", 7, 100, slots); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestWriteReadRoundTrip: the JSONL artifact reproduces the scenarios
// exactly, and a truncated artifact is rejected by the header count.
func TestWriteReadRoundTrip(t *testing.T) {
	slots := testSlots()
	scs, err := Campaign("sweep", 11, 120, slots)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, scs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scs, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", scs, got)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if _, err := Read(strings.NewReader(strings.Join(lines[:len(lines)-1], "\n"))); err == nil {
		t.Fatal("truncated artifact accepted")
	}
	if _, err := Read(strings.NewReader(`{"kind":"fault","after_done":1}`)); err == nil {
		t.Fatal("fault line before any scenario header accepted")
	}
	if _, err := Read(strings.NewReader(`{"kind":"meteor"}`)); err == nil {
		t.Fatal("unknown record kind accepted")
	}
}

// TestCursorFiresEachEventOnce: Due returns exactly the events at or
// before the completion count, in order, and never re-fires them.
func TestCursorFiresEachEventOnce(t *testing.T) {
	sc := Scenario{Events: []Event{
		{AfterDone: 2}, {AfterDone: 2}, {AfterDone: 5}, {AfterDone: 9},
	}}
	cur := sc.Cursor()
	if got := cur.Due(1); len(got) != 0 {
		t.Fatalf("Due(1) = %v", got)
	}
	if got := cur.Due(2); len(got) != 2 {
		t.Fatalf("Due(2) fired %d events, want 2", len(got))
	}
	if got := cur.Due(2); len(got) != 0 {
		t.Fatalf("Due(2) re-fired: %v", got)
	}
	if got := cur.Due(100); len(got) != 2 {
		t.Fatalf("Due(100) fired %d events, want the remaining 2", len(got))
	}
	if got := cur.Due(100); len(got) != 0 {
		t.Fatalf("cursor not exhausted: %v", got)
	}
}

// TestPoolSlotsAndApply: slots enumerate every (member, region) with a
// real fault space, Apply lands an injection, and out-of-range events
// are refused without touching the pool.
func TestPoolSlotsAndApply(t *testing.T) {
	p, err := pool.New(pool.Config{Sys64: 2, Regions: 2})
	if err != nil {
		t.Fatal(err)
	}
	slots := PoolSlots(p)
	if len(slots) != 4 {
		t.Fatalf("got %d slots, want 4", len(slots))
	}
	for _, s := range slots {
		if s.Frames <= 0 || s.Words <= 0 {
			t.Fatalf("slot %+v has empty fault space", s)
		}
	}
	e := Event{Member: 1, Region: 1, Frame: 0, Word: 0, Bit: 3}
	if err := Apply(p, e); err != nil {
		t.Fatal(err)
	}
	if got := p.Members()[1].Sys.Status().FaultsInjected; got != 1 {
		t.Fatalf("member 1 reports %d injections, want 1", got)
	}
	if err := Apply(p, Event{Member: 9}); err == nil {
		t.Fatal("event for missing member accepted")
	}
	if err := Apply(p, Event{Member: 0, Region: 0, Frame: 1 << 20}); err == nil {
		t.Fatal("out-of-band frame accepted")
	}
	if got := p.Members()[0].Sys.Status().FaultsInjected; got != 0 {
		t.Fatalf("rejected injections counted on member 0: %d", got)
	}
}
