// Package fault generates, serializes, and replays configuration-memory
// upset scenarios against a pool of simulated platforms. A scenario is a
// seeded, fully deterministic schedule of single-bit flips — "after the
// k-th request completes, flip bit b of word w of frame f in region r of
// member m" — so a fault campaign can be written to a JSONL artifact once
// and re-run bit-identically by the replay bench and by CI. Injection
// itself is delegated to platform.InjectFaultOn, which restricts flips to
// the region's own frame band: every scenario event is a recoverable
// region fault, never sticky static-design damage.
package fault

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/pool"
)

// Event is one scheduled bit-flip. AfterDone is the request-completion
// count that triggers it: the event fires once at least that many
// requests have finished, modelling an upset arriving mid-workload.
// Frame and Word are span-local coordinates inside the target region's
// fault space (see platform.FaultSpaceOn).
type Event struct {
	AfterDone int  `json:"after_done"`
	Member    int  `json:"member"`
	Region    int  `json:"region"`
	Frame     int  `json:"frame"`
	Word      int  `json:"word"`
	Bit       uint `json:"bit"`
}

// Scenario is a named, seeded fault schedule for one workload run.
// Rate is the per-request upset probability the schedule was drawn with;
// Requests is the workload length it was sized for. Events are ordered
// by AfterDone.
type Scenario struct {
	Name     string  `json:"name"`
	Seed     int64   `json:"seed"`
	Rate     float64 `json:"rate"`
	Requests int     `json:"requests"`
	Events   []Event `json:"-"`
}

// Slot describes one injectable (member, region) target and the size of
// its fault space, in span-local frames and band words.
type Slot struct {
	Member int
	Region int
	Frames int
	Words  int
}

// PoolSlots enumerates every region of every member of the pool as an
// injection target.
func PoolSlots(p *pool.Pool) []Slot {
	var out []Slot
	for _, m := range p.Members() {
		for ri := 0; ri < m.Sys.NumRegions(); ri++ {
			frames, words := m.Sys.FaultSpaceOn(ri)
			out = append(out, Slot{Member: m.ID, Region: ri, Frames: frames, Words: words})
		}
	}
	return out
}

// Apply injects one event into the pool. The platform rejects
// out-of-band coordinates, so a malformed or stale artifact cannot
// corrupt static state.
func Apply(p *pool.Pool, e Event) error {
	members := p.Members()
	if e.Member < 0 || e.Member >= len(members) {
		return fmt.Errorf("fault: event targets member %d of %d", e.Member, len(members))
	}
	return members[e.Member].Sys.InjectFaultOn(e.Region, e.Frame, e.Word, e.Bit)
}

// Generate draws a uniform scenario: after each of the n request
// completions, with probability rate, one bit flips in a uniformly
// chosen slot, frame, word, and bit. The same (seed, n, rate, slots)
// always yields the same schedule.
func Generate(name string, seed int64, n int, rate float64, slots []Slot) Scenario {
	sc := Scenario{Name: name, Seed: seed, Rate: rate, Requests: n}
	rng := rand.New(rand.NewSource(seed))
	for done := 1; done <= n; done++ {
		if rng.Float64() >= rate {
			continue
		}
		sc.Events = append(sc.Events, draw(rng, done, slots))
	}
	return sc
}

// Burst draws a clustered scenario: the same expected number of upsets
// as Generate at the given rate, but concentrated (at 3x intensity) in
// the middle third of the workload — the correlated-upset shape that
// stresses quarantine backlog rather than steady-state repair.
func Burst(name string, seed int64, n int, rate float64, slots []Slot) Scenario {
	sc := Scenario{Name: name, Seed: seed, Rate: rate, Requests: n}
	rng := rand.New(rand.NewSource(seed))
	for done := n / 3; done < 2*n/3; done++ {
		if rng.Float64() >= rate*3 {
			continue
		}
		sc.Events = append(sc.Events, draw(rng, done+1, slots))
	}
	return sc
}

func draw(rng *rand.Rand, done int, slots []Slot) Event {
	s := slots[rng.Intn(len(slots))]
	return Event{
		AfterDone: done,
		Member:    s.Member,
		Region:    s.Region,
		Frame:     rng.Intn(s.Frames),
		Word:      rng.Intn(s.Words),
		Bit:       uint(rng.Intn(32)),
	}
}

// Rates is the upset-probability sweep the S7 availability table reports.
var Rates = []float64{0, 0.05, 0.15, 0.3}

// Campaign expands a named preset into its scenarios:
//
//	sweep   — one uniform scenario per rate in Rates ("rate-0", "rate-0.05", ...)
//	uniform — a single uniform scenario at rate 0.15
//	burst   — a single clustered scenario at rate 0.15
func Campaign(preset string, seed int64, n int, slots []Slot) ([]Scenario, error) {
	switch preset {
	case "sweep":
		out := make([]Scenario, 0, len(Rates))
		for i, rate := range Rates {
			out = append(out, Generate(fmt.Sprintf("rate-%g", rate), seed+int64(i), n, rate, slots))
		}
		return out, nil
	case "uniform":
		return []Scenario{Generate("uniform", seed, n, 0.15, slots)}, nil
	case "burst":
		return []Scenario{Burst("burst", seed, n, 0.15, slots)}, nil
	}
	return nil, fmt.Errorf("fault: unknown campaign %q (want sweep, uniform, or burst)", preset)
}

// Cursor walks a scenario's events in completion order.
type Cursor struct {
	events []Event
	next   int
}

// Cursor returns a walker over the scenario's events.
func (sc Scenario) Cursor() *Cursor { return &Cursor{events: sc.Events} }

// Due returns the events triggered by reaching the given completion
// count, advancing past them. Events fire at most once.
func (c *Cursor) Due(done int) []Event {
	start := c.next
	for c.next < len(c.events) && c.events[c.next].AfterDone <= done {
		c.next++
	}
	return c.events[start:c.next]
}

// scenarioLine and faultLine are the two JSONL record kinds: a scenario
// header followed by one line per event, so the artifact is greppable
// and diffs line-by-line.
type scenarioLine struct {
	Kind     string  `json:"kind"`
	Name     string  `json:"name"`
	Seed     int64   `json:"seed"`
	Rate     float64 `json:"rate"`
	Requests int     `json:"requests"`
	Events   int     `json:"events"`
}

type faultLine struct {
	Kind string `json:"kind"`
	Event
}

// Write serializes scenarios as JSONL: each scenario emits a
// {"kind":"scenario",...} header line followed by its
// {"kind":"fault",...} event lines.
func Write(w io.Writer, scenarios []Scenario) error {
	enc := json.NewEncoder(w)
	for _, sc := range scenarios {
		if err := enc.Encode(scenarioLine{Kind: "scenario", Name: sc.Name, Seed: sc.Seed,
			Rate: sc.Rate, Requests: sc.Requests, Events: len(sc.Events)}); err != nil {
			return err
		}
		for _, e := range sc.Events {
			if err := enc.Encode(faultLine{Kind: "fault", Event: e}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Read parses a JSONL artifact written by Write. Fault lines attach to
// the most recent scenario header; the header's event count is checked
// so a truncated artifact is caught rather than silently replayed short.
func Read(r io.Reader) ([]Scenario, error) {
	var out []Scenario
	var want []int
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return nil, fmt.Errorf("fault: line %d: %w", lineNo, err)
		}
		switch kind.Kind {
		case "scenario":
			var h scenarioLine
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, fmt.Errorf("fault: line %d: %w", lineNo, err)
			}
			out = append(out, Scenario{Name: h.Name, Seed: h.Seed, Rate: h.Rate, Requests: h.Requests})
			want = append(want, h.Events)
		case "fault":
			if len(out) == 0 {
				return nil, fmt.Errorf("fault: line %d: fault before any scenario header", lineNo)
			}
			var f faultLine
			if err := json.Unmarshal(line, &f); err != nil {
				return nil, fmt.Errorf("fault: line %d: %w", lineNo, err)
			}
			out[len(out)-1].Events = append(out[len(out)-1].Events, f.Event)
		default:
			return nil, fmt.Errorf("fault: line %d: unknown kind %q", lineNo, kind.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range out {
		if len(out[i].Events) != want[i] {
			return nil, fmt.Errorf("fault: scenario %q has %d events, header promised %d (truncated artifact?)",
				out[i].Name, len(out[i].Events), want[i])
		}
	}
	return out, nil
}
