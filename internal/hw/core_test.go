package hw

import "testing"

func TestBrokenCoreIsDeterministicGarbage(t *testing.T) {
	a := NewBrokenCore(42)
	b := NewBrokenCore(42)
	for i := 0; i < 16; i++ {
		if a.Read() != b.Read() {
			t.Fatal("broken core output not deterministic for equal seeds")
		}
	}
	c := NewBrokenCore(43)
	same := true
	a2 := NewBrokenCore(42)
	for i := 0; i < 16; i++ {
		if a2.Read() != c.Read() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical garbage")
	}
}

func TestBrokenCoreNeverStreams(t *testing.T) {
	b := NewBrokenCore(0) // zero seed gets a fallback
	b.Write(123, 4)
	if _, ok := b.PopOut(); ok {
		t.Fatal("broken core produced stream output")
	}
	if b.Name() != "BROKEN" {
		t.Fatal("name")
	}
	if b.CyclesPerWord() != 1 {
		t.Fatal("cycles per word")
	}
	b.Reset() // must not panic or clear the garbage stream
}

func TestBrokenCoreReadsVary(t *testing.T) {
	b := NewBrokenCore(7)
	seen := map[uint64]bool{}
	for i := 0; i < 32; i++ {
		seen[b.Read()] = true
	}
	if len(seen) < 30 {
		t.Fatalf("garbage stream too repetitive: %d distinct of 32", len(seen))
	}
}
