// Package hw defines the behavioural contract of circuits configured into
// the dynamic area, plus the BrokenCore that models a corrupted or unknown
// configuration. The dock wrappers drive cores through this interface; the
// hwcore package provides the task implementations.
package hw

// Core is the behaviour of the circuit currently configured in the dynamic
// region, as seen through the dock's connection interface: a write channel
// with a strobe, a read channel, and (on the 64-bit system) an output stream
// that feeds the dock's FIFO.
type Core interface {
	// Name identifies the module (diagnostics).
	Name() string
	// Reset returns the circuit to its post-configuration state.
	Reset()
	// Write presents one data word on the write channel with the write
	// strobe asserted. size is the transfer size in bytes (4 or 8).
	Write(v uint64, size int)
	// Read samples the read channel (the module's output register).
	Read() uint64
	// PopOut removes one word from the module's output stream for the
	// FIFO path; ok is false when no output is pending.
	PopOut() (v uint64, ok bool)
	// CyclesPerWord is the minimum number of bus-clock cycles the module
	// needs between consecutive writes (pipeline throughput limit). The
	// dock throttles DMA bursts accordingly.
	CyclesPerWord() int
}

// BrokenCore is what the dock binds when the region's configuration hash
// matches no known module — the observable result of loading a differential
// configuration onto the wrong prior state (§2.2) or of a corrupted stream.
// Its outputs are deterministic garbage (an LFSR), never valid results.
type BrokenCore struct {
	state uint64
}

// NewBrokenCore returns a broken core seeded from the bogus region hash.
func NewBrokenCore(seed uint64) *BrokenCore {
	if seed == 0 {
		seed = 0xBAD_C0DE
	}
	return &BrokenCore{state: seed}
}

// Name implements Core.
func (b *BrokenCore) Name() string { return "BROKEN" }

// Reset implements Core. The garbage stream is deliberately not reset so
// that repeated reads keep disagreeing with any expected sequence.
func (b *BrokenCore) Reset() {}

// Write implements Core.
func (b *BrokenCore) Write(v uint64, size int) { b.state ^= v }

// Read implements Core: deterministic garbage.
func (b *BrokenCore) Read() uint64 {
	b.state = b.state*6364136223846793005 + 1442695040888963407
	return b.state
}

// PopOut implements Core: broken cores never produce stream output, so DMA
// interleaved transfers hang on them — detectable by timeouts.
func (b *BrokenCore) PopOut() (uint64, bool) { return 0, false }

// CyclesPerWord implements Core.
func (b *BrokenCore) CyclesPerWord() int { return 1 }
