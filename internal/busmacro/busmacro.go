// Package busmacro models LUT-based bus macros (paper §2.2, figure 2): the
// fixed-position port contract that lets separately-implemented components
// communicate after their configurations are assembled. Each signal crosses
// the boundary between the static design and the dynamic area through a pair
// of route-through LUTs at agreed positions; a component is compatible with
// a dock only if its ports line up with the macro, which the assembly tool
// verifies before producing a configuration.
package busmacro

import (
	"fmt"

	"repro/internal/fabric"
)

// Side says on which edge of the dynamic region the macro column sits.
type Side uint8

const (
	// LeftEdge places the static side of the macro on the column just left
	// of the region.
	LeftEdge Side = iota
	// RightEdge places it just right of the region.
	RightEdge
)

func (s Side) String() string {
	if s == LeftEdge {
		return "left"
	}
	return "right"
}

// Macro is a LUT-based bus macro specification: the widths of the write and
// read channels, the control signals, and the boundary placement.
type Macro struct {
	Name string
	// DataIn is the width of the write channel (static → dynamic).
	DataIn int
	// DataOut is the width of the read channel (dynamic → static).
	DataOut int
	// Ctrl lists control signals crossing the boundary (e.g. the write
	// strobe the OPB Dock generates, usable as a clock enable, §3.1).
	Ctrl []string
	// Side is the region edge the macro crosses.
	Side Side
	// Row0 is the first region-relative row occupied by macro LUTs.
	Row0 int
}

// lutsPerRow is how many route-through LUTs fit in one CLB row of the
// boundary column (4 slices x 2 LUTs).
const lutsPerRow = 8

// SignalCount returns the number of boundary-crossing signals.
func (m *Macro) SignalCount() int { return m.DataIn + m.DataOut + len(m.Ctrl) }

// RowsNeeded returns how many CLB rows of the boundary columns the macro
// occupies.
func (m *Macro) RowsNeeded() int {
	return (m.SignalCount() + lutsPerRow - 1) / lutsPerRow
}

// Resources returns the fabric cost of the macro: one route-through LUT per
// signal on each side of the boundary. LUT-based macros are used "since they
// consume less area" than tristate ones (§2.2).
func (m *Macro) Resources() fabric.Resources {
	luts := 2 * m.SignalCount()
	return fabric.Resources{LUTs: luts, Slices: (luts + 1) / 2, FFs: 0}
}

// Validate checks that the macro fits the region boundary on the device: the
// static-side column must exist and the occupied rows must lie inside the
// region band.
func (m *Macro) Validate(d *fabric.Device, r fabric.Region) error {
	staticCol := r.Col0 - 1
	if m.Side == RightEdge {
		staticCol = r.Col0 + r.W
	}
	if staticCol < 0 || staticCol >= d.Cols {
		return fmt.Errorf("busmacro: %s: static-side column %d outside device %s", m.Name, staticCol, d.Name)
	}
	if m.Row0 < 0 || m.Row0+m.RowsNeeded() > r.H {
		return fmt.Errorf("busmacro: %s: rows [%d,%d) exceed region band of %d rows",
			m.Name, m.Row0, m.Row0+m.RowsNeeded(), r.H)
	}
	if d.SiteDisplaced(r.Row0+m.Row0, staticCol) {
		return fmt.Errorf("busmacro: %s: static-side column %d displaced by a hard block", m.Name, staticCol)
	}
	return nil
}

// Compatible reports whether two macro specifications describe the same port
// contract: identical widths, control signals, side and row placement. A
// component built against macro a can dock onto macro b only when this holds
// — the assembly-time check the paper attributes to the configuration tool.
func Compatible(a, b *Macro) bool {
	if a.DataIn != b.DataIn || a.DataOut != b.DataOut ||
		a.Side != b.Side || a.Row0 != b.Row0 || len(a.Ctrl) != len(b.Ctrl) {
		return false
	}
	for i := range a.Ctrl {
		if a.Ctrl[i] != b.Ctrl[i] {
			return false
		}
	}
	return true
}

func (m *Macro) String() string {
	return fmt.Sprintf("%s: in=%d out=%d ctrl=%d @%s edge rows[%d,%d)",
		m.Name, m.DataIn, m.DataOut, len(m.Ctrl), m.Side, m.Row0, m.Row0+m.RowsNeeded())
}

// Dock32 is the bus macro of the 32-bit system's OPB Dock: two 32-bit
// unidirectional channels plus the write-strobe signal (§3.1).
func Dock32() *Macro {
	return &Macro{Name: "dock32", DataIn: 32, DataOut: 32, Ctrl: []string{"WE"}, Side: RightEdge, Row0: 1}
}

// Dock64 is the bus macro of the 64-bit system's PLB Dock: 64-bit channels,
// write strobe, plus read-enable and output-valid handshakes for the output
// FIFO path (§4.1).
func Dock64() *Macro {
	return &Macro{Name: "dock64", DataIn: 64, DataOut: 64, Ctrl: []string{"WE", "RE", "OV"}, Side: RightEdge, Row0: 1}
}
