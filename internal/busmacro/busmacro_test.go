package busmacro

import (
	"testing"

	"repro/internal/fabric"
)

func TestDockMacrosFitTheirRegions(t *testing.T) {
	if err := Dock32().Validate(fabric.XC2VP7(), fabric.DynamicRegion32()); err != nil {
		t.Errorf("dock32 macro does not fit its region: %v", err)
	}
	if err := Dock64().Validate(fabric.XC2VP30(), fabric.DynamicRegion64()); err != nil {
		t.Errorf("dock64 macro does not fit its region: %v", err)
	}
}

func TestSignalAndRowCounts(t *testing.T) {
	m := Dock32()
	if got := m.SignalCount(); got != 65 {
		t.Errorf("dock32 signals = %d, want 65 (32+32+WE)", got)
	}
	if got := m.RowsNeeded(); got != 9 { // ceil(65/8)
		t.Errorf("dock32 rows = %d, want 9", got)
	}
	m64 := Dock64()
	if got := m64.SignalCount(); got != 131 {
		t.Errorf("dock64 signals = %d, want 131 (64+64+3)", got)
	}
	res := m.Resources()
	if res.LUTs != 130 || res.Slices != 65 {
		t.Errorf("dock32 resources = %+v", res)
	}
}

func TestValidateErrors(t *testing.T) {
	d := fabric.XC2VP7()
	r := fabric.DynamicRegion32()
	tooTall := &Macro{Name: "tall", DataIn: 64, DataOut: 64, Side: RightEdge, Row0: 8}
	if err := tooTall.Validate(d, r); err == nil {
		t.Error("macro exceeding region band accepted")
	}
	offLeft := &Macro{Name: "off", DataIn: 1, DataOut: 1, Side: LeftEdge, Row0: 0}
	if err := offLeft.Validate(d, r); err == nil {
		t.Error("macro off the left device edge accepted (region touches column 0)")
	}
}

func TestCompatible(t *testing.T) {
	a, b := Dock32(), Dock32()
	if !Compatible(a, b) {
		t.Error("identical macros reported incompatible")
	}
	if Compatible(Dock32(), Dock64()) {
		t.Error("dock32 and dock64 reported compatible")
	}
	c := Dock32()
	c.Row0 = 2
	if Compatible(a, c) {
		t.Error("different row placement reported compatible")
	}
	d := Dock32()
	d.Ctrl = []string{"CE"}
	if Compatible(a, d) {
		t.Error("different control signals reported compatible")
	}
	e := Dock32()
	e.Side = LeftEdge
	if Compatible(a, e) {
		t.Error("different side reported compatible")
	}
}
