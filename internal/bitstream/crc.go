package bitstream

// The configuration logic maintains a running 16-bit CRC over every
// register-write data word together with the register address, as on
// Virtex-II (polynomial x^16 + x^15 + x^2 + 1, i.e. 0x8005, bit-serial).
// Writing the expected value to the CRC register checks it; a mismatch
// aborts configuration. The CmdRCRC command resets it.

const crcPoly uint32 = 0x8005

// crcUpdate folds one (register, data) pair into the running CRC. The 37-bit
// value {addr[4:0], data[31:0]} is shifted in LSB first.
func crcUpdate(crc uint16, reg Reg, data uint32) uint16 {
	val := uint64(reg&0x1F)<<32 | uint64(data)
	c := uint32(crc)
	for i := 0; i < 37; i++ {
		bit := uint32(val>>uint(i)) & 1
		msb := c >> 15 & 1
		c = c<<1 | (bit ^ msb)
		if msb != 0 {
			c ^= crcPoly // feedback taps (x^15, x^2 folded via poly)
		}
		c &= 0xFFFF
	}
	return uint16(c)
}

// crcStream folds a sequence of data words written to one register.
func crcStream(crc uint16, reg Reg, words []uint32) uint16 {
	for _, w := range words {
		crc = crcUpdate(crc, reg, w)
	}
	return crc
}

// FrameCRC folds one frame's words into a running readback CRC, exactly as
// the configuration logic would see them arriving at the FDRI register. A
// readback scrubber folds every frame of a region's spans and compares the
// result against the value recorded when the region was last verified: the
// bit-serial CRC16 catches every single-bit upset.
func FrameCRC(crc uint16, words []uint32) uint16 {
	return crcStream(crc, RegFDRI, words)
}
