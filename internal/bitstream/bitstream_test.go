package bitstream

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
)

func randFrame(rng *rand.Rand, flen int) []uint32 {
	f := make([]uint32, flen)
	for i := range f {
		f[i] = rng.Uint32()
	}
	return f
}

func TestBuildLoadRoundTrip(t *testing.T) {
	dev := fabric.XC2VP7()
	rng := rand.New(rand.NewSource(1))
	flen := dev.FrameLen()
	runs := []FrameRun{
		{Start: fabric.FAR{Block: fabric.BlockCLB, Major: 3, Minor: 5},
			Frames: [][]uint32{randFrame(rng, flen), randFrame(rng, flen), randFrame(rng, flen)}},
		{Start: fabric.FAR{Block: fabric.BlockBRAM, Major: 1, Minor: 0},
			Frames: [][]uint32{randFrame(rng, flen)}},
	}
	s, err := Build(dev, runs)
	if err != nil {
		t.Fatal(err)
	}
	cm := fabric.NewConfigMemory(dev)
	l := NewLoader(cm)
	doneCalls := 0
	l.OnDone(func() { doneCalls++ })
	if err := l.Load(s); err != nil {
		t.Fatal(err)
	}
	if !l.Done() {
		t.Fatal("loader not done after full stream")
	}
	if doneCalls != 1 {
		t.Fatalf("OnDone fired %d times, want 1", doneCalls)
	}
	// Every frame must be present at its auto-incremented address.
	for _, run := range runs {
		far := run.Start
		for i, want := range run.Frames {
			got, err := cm.ReadFrame(far)
			if err != nil {
				t.Fatal(err)
			}
			for w := range want {
				if got[w] != want[w] {
					t.Fatalf("run@%v frame %d word %d: got %#x want %#x", run.Start, i, w, got[w], want[w])
				}
			}
			far, _ = dev.NextFAR(far)
		}
	}
	frames, configs, crcErrs := l.Stats()
	if frames != 4 || configs != 1 || crcErrs != 0 {
		t.Fatalf("stats: frames=%d configs=%d crcErrs=%d", frames, configs, crcErrs)
	}
}

func TestCRCMismatchRejected(t *testing.T) {
	dev := fabric.XC2VP7()
	rng := rand.New(rand.NewSource(2))
	runs := []FrameRun{{Start: fabric.FAR{}, Frames: [][]uint32{randFrame(rng, dev.FrameLen())}}}
	s, err := BuildCorrupt(dev, runs)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(fabric.NewConfigMemory(dev))
	err = l.Load(s)
	if err == nil {
		t.Fatal("corrupt CRC accepted")
	}
	if l.Done() {
		t.Fatal("loader reports done despite CRC error")
	}
	if _, _, crcErrs := l.Stats(); crcErrs != 1 {
		t.Fatalf("crcErrs = %d, want 1", crcErrs)
	}
	// Error is sticky until reset.
	if err := l.WriteWord(DummyWord); err == nil {
		t.Fatal("sticky error not reported")
	}
	l.Reset()
	if l.Err() != nil {
		t.Fatal("Reset did not clear error")
	}
}

func TestFlippedFrameBitFailsCRC(t *testing.T) {
	dev := fabric.XC2VP7()
	rng := rand.New(rand.NewSource(3))
	runs := []FrameRun{{Start: fabric.FAR{}, Frames: [][]uint32{randFrame(rng, dev.FrameLen())}}}
	s, err := Build(dev, runs)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit somewhere inside the FDRI payload.
	idx := len(s.Words) / 2
	s.Words[idx] ^= 1 << 7
	l := NewLoader(fabric.NewConfigMemory(dev))
	if err := l.Load(s); err == nil {
		t.Fatal("bit-flipped stream accepted")
	}
}

func TestPreSyncWordsIgnored(t *testing.T) {
	dev := fabric.XC2VP7()
	l := NewLoader(fabric.NewConfigMemory(dev))
	for i := 0; i < 16; i++ {
		if err := l.WriteWord(0x12345678); err != nil {
			t.Fatal(err)
		}
	}
	if l.Err() != nil {
		t.Fatal("pre-sync garbage raised an error")
	}
}

func TestWrongIDCODERejected(t *testing.T) {
	v7, v30 := fabric.XC2VP7(), fabric.XC2VP30()
	rng := rand.New(rand.NewSource(4))
	// Stream built for the XC2VP7 fed into an XC2VP30 (frame lengths and
	// IDCODE both differ; IDCODE is checked first).
	runs := []FrameRun{{Start: fabric.FAR{}, Frames: [][]uint32{randFrame(rng, v7.FrameLen())}}}
	s, err := Build(v7, runs)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(fabric.NewConfigMemory(v30))
	if err := l.Load(s); err == nil {
		t.Fatal("stream for wrong device accepted")
	}
}

func TestFDRIWithoutWCFGRejected(t *testing.T) {
	dev := fabric.XC2VP7()
	flen := dev.FrameLen()
	var words []uint32
	words = append(words, SyncWord)
	words = append(words, type1Header(opWrite, RegFLR, 1), uint32(flen))
	words = append(words, type1Header(opWrite, RegFAR, 1), fabric.FAR{}.Word())
	words = append(words, type1Header(opWrite, RegFDRI, 0), type2Header(opWrite, 2*flen))
	words = append(words, make([]uint32, 2*flen)...)
	l := NewLoader(fabric.NewConfigMemory(dev))
	var err error
	for _, w := range words {
		if err = l.WriteWord(w); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("FDRI without WCFG accepted")
	}
}

func TestRunPastLastFrameRejected(t *testing.T) {
	dev := fabric.XC2VP7()
	rng := rand.New(rand.NewSource(5))
	flen := dev.FrameLen()
	last := fabric.FAR{Block: fabric.BlockBRAM, Major: len(dev.BRAMColPos) - 1, Minor: fabric.FramesPerBRAMColumn - 1}
	runs := []FrameRun{{Start: last, Frames: [][]uint32{randFrame(rng, flen), randFrame(rng, flen)}}}
	if _, err := Build(dev, runs); err == nil {
		t.Fatal("builder accepted run past last frame")
	}
}

func TestBuilderRejectsBadFrames(t *testing.T) {
	dev := fabric.XC2VP7()
	if _, err := Build(dev, []FrameRun{{Start: fabric.FAR{}, Frames: [][]uint32{make([]uint32, 7)}}}); err == nil {
		t.Fatal("wrong frame length accepted")
	}
	if _, err := Build(dev, []FrameRun{{Start: fabric.FAR{}}}); err == nil {
		t.Fatal("empty run accepted")
	}
	bad := fabric.FAR{Block: fabric.BlockCLB, Major: 9999, Minor: 0}
	if _, err := Build(dev, []FrameRun{{Start: bad, Frames: [][]uint32{make([]uint32, dev.FrameLen())}}}); err == nil {
		t.Fatal("bad start address accepted")
	}
}

func TestLoaderReusableAcrossConfigs(t *testing.T) {
	dev := fabric.XC2VP7()
	rng := rand.New(rand.NewSource(6))
	cm := fabric.NewConfigMemory(dev)
	l := NewLoader(cm)
	for i := 0; i < 3; i++ {
		runs := []FrameRun{{Start: fabric.FAR{Block: fabric.BlockCLB, Major: i, Minor: 0},
			Frames: [][]uint32{randFrame(rng, dev.FrameLen())}}}
		s, err := Build(dev, runs)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Load(s); err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if !l.Done() {
			t.Fatalf("config %d: not done", i)
		}
	}
	if _, configs, _ := l.Stats(); configs != 3 {
		t.Fatalf("configs = %d, want 3", configs)
	}
}

func TestStreamBytesRoundTrip(t *testing.T) {
	f := func(words []uint32) bool {
		s := &Stream{Device: "XC2VP7", Words: words}
		back, err := FromBytes("XC2VP7", s.Bytes())
		if err != nil {
			return false
		}
		if len(back.Words) != len(words) {
			return false
		}
		for i := range words {
			if back.Words[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := FromBytes("X", []byte{1, 2, 3}); err == nil {
		t.Fatal("unaligned byte stream accepted")
	}
}

func TestContainerRoundTrip(t *testing.T) {
	s := &Stream{Device: "XC2VP30", Words: []uint32{1, 2, 3, SyncWord}}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Stream
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Device != s.Device || len(back.Words) != len(s.Words) {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
	for i := range s.Words {
		if back.Words[i] != s.Words[i] {
			t.Fatal("word mismatch")
		}
	}
	if err := back.UnmarshalBinary([]byte("nope")); err == nil {
		t.Fatal("bad magic accepted")
	}
	blob2 := bytes.Clone(blob)
	blob2 = blob2[:len(blob2)-1]
	if err := back.UnmarshalBinary(blob2); err == nil {
		t.Fatal("truncated container accepted")
	}
}

// Property: the running CRC distinguishes different register targets for the
// same data, and is order-sensitive.
func TestCRCProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		if a == b {
			return true
		}
		c1 := crcUpdate(0, RegFDRI, a)
		c2 := crcUpdate(0, RegFAR, a)
		if c1 == c2 {
			return false // register address must be folded in
		}
		o1 := crcUpdate(crcUpdate(0, RegFDRI, a), RegFDRI, b)
		o2 := crcUpdate(crcUpdate(0, RegFDRI, b), RegFDRI, a)
		return o1 != o2 || a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: build→load roundtrip applies exactly the frames described, for
// random single runs.
func TestBuildLoadProperty(t *testing.T) {
	dev := fabric.XC2VP7()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		col := rng.Intn(dev.Cols)
		minor := rng.Intn(fabric.FramesPerCLBColumn - 3)
		n := 1 + rng.Intn(3)
		frames := make([][]uint32, n)
		for i := range frames {
			frames[i] = randFrame(rng, dev.FrameLen())
		}
		start := fabric.FAR{Block: fabric.BlockCLB, Major: col, Minor: minor}
		s, err := Build(dev, []FrameRun{{Start: start, Frames: frames}})
		if err != nil {
			return false
		}
		cm := fabric.NewConfigMemory(dev)
		if err := NewLoader(cm).Load(s); err != nil {
			return false
		}
		far := start
		for _, want := range frames {
			got, err := cm.ReadFrame(far)
			if err != nil {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			far, _ = dev.NextFAR(far)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
