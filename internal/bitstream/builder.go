package bitstream

import (
	"fmt"

	"repro/internal/fabric"
)

// FrameRun is a contiguous run of frames starting at a frame address.
// Address auto-increment writes them back to back.
type FrameRun struct {
	Start  fabric.FAR
	Frames [][]uint32
}

// Builder assembles a configuration stream for a device. The zero Builder is
// not usable; call NewBuilder.
type Builder struct {
	dev   *fabric.Device
	words []uint32
	crc   uint16
	// crcAt is the index of the CRC check value Finish wrote (-1 before).
	// Recorded rather than rediscovered: scanning the finished stream for
	// the CRC register header can land on a frame data word that happens
	// to equal it.
	crcAt int
	err   error
}

// NewBuilder returns a stream builder for the device.
func NewBuilder(dev *fabric.Device) *Builder {
	return &Builder{dev: dev, crcAt: -1}
}

// Err returns the first error encountered while building.
func (b *Builder) Err() error { return b.err }

// Preamble emits dummy padding, the sync word, the device IDCODE, the frame
// length register and a CRC reset — the standard stream prologue.
func (b *Builder) Preamble() *Builder {
	b.words = append(b.words, DummyWord, SyncWord)
	b.writeReg(RegIDCODE, idcode(b.dev))
	b.writeReg(RegFLR, uint32(b.dev.FrameLen()))
	b.Command(CmdRCRC)
	b.crc = 0
	return b
}

// Command writes the command register.
func (b *Builder) Command(c Cmd) *Builder {
	b.writeReg(RegCMD, uint32(c))
	if c == CmdRCRC {
		b.crc = 0
	}
	return b
}

// writeReg emits a type-1 register write.
func (b *Builder) writeReg(reg Reg, vals ...uint32) {
	b.words = append(b.words, type1Header(opWrite, reg, len(vals)))
	b.words = append(b.words, vals...)
	b.crc = crcStream(b.crc, reg, vals)
}

// WriteRun emits one contiguous frame run: WCFG, FAR, then FDRI data with a
// trailing pad frame that pushes the last real frame through the frame data
// pipeline. Frame lengths must match the device.
func (b *Builder) WriteRun(run FrameRun) *Builder {
	if b.err != nil {
		return b
	}
	flen := b.dev.FrameLen()
	if len(run.Frames) == 0 {
		b.err = fmt.Errorf("bitstream: empty frame run at %v", run.Start)
		return b
	}
	// Validate the run stays within the column-major address space.
	far := run.Start
	for i := range run.Frames {
		if len(run.Frames[i]) != flen {
			b.err = fmt.Errorf("bitstream: frame %d of run at %v has %d words, want %d",
				i, run.Start, len(run.Frames[i]), flen)
			return b
		}
		if _, err := b.dev.FrameIndex(far); err != nil {
			b.err = err
			return b
		}
		if i < len(run.Frames)-1 {
			next, ok := b.dev.NextFAR(far)
			if !ok {
				b.err = fmt.Errorf("bitstream: frame run at %v runs past the last frame", run.Start)
				return b
			}
			far = next
		}
	}
	b.Command(CmdWCFG)
	b.writeReg(RegFAR, run.Start.Word())
	// FDRI via type-1 header with zero count followed by a type-2 packet, as
	// real streams do for long frame data.
	total := (len(run.Frames) + 1) * flen
	b.words = append(b.words, type1Header(opWrite, RegFDRI, 0), type2Header(opWrite, total))
	for _, f := range run.Frames {
		b.words = append(b.words, f...)
		b.crc = crcStream(b.crc, RegFDRI, f)
	}
	pad := make([]uint32, flen)
	b.words = append(b.words, pad...)
	b.crc = crcStream(b.crc, RegFDRI, pad)
	b.Command(CmdLFRM)
	return b
}

// Finish appends the CRC check, a start-up command and desynchronization,
// and returns the completed stream.
func (b *Builder) Finish() (*Stream, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Writing the running CRC value makes the device-side comparison pass.
	b.crcAt = len(b.words) + 1
	b.words = append(b.words, type1Header(opWrite, RegCRC, 1), uint32(b.crc))
	b.Command(CmdStart)
	b.Command(CmdDesync)
	b.words = append(b.words, DummyWord, DummyWord)
	return &Stream{Device: b.dev.Name, Words: b.words}, nil
}

// idcode derives a stable 32-bit identifier from the device name.
func idcode(d *fabric.Device) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(d.Name); i++ {
		h ^= uint32(d.Name[i])
		h *= 16777619
	}
	return h
}

// Build assembles a full stream for a set of frame runs.
func Build(dev *fabric.Device, runs []FrameRun) (*Stream, error) {
	b := NewBuilder(dev).Preamble()
	for _, r := range runs {
		b.WriteRun(r)
	}
	return b.Finish()
}

// BuildCorrupt is Build with the final CRC deliberately damaged; used by
// tests and the fault-injection benchmarks. The damaged word is the one
// Finish recorded — a payload word that happens to equal the CRC register
// header cannot decoy the corruption onto frame data.
func BuildCorrupt(dev *fabric.Device, runs []FrameRun) (*Stream, error) {
	b := NewBuilder(dev).Preamble()
	for _, r := range runs {
		b.WriteRun(r)
	}
	s, err := b.Finish()
	if err != nil {
		return nil, err
	}
	s.Words[b.crcAt] ^= 0x5555
	return s, nil
}
