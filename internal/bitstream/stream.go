package bitstream

import (
	"encoding/binary"
	"fmt"
)

// Stream is a built configuration stream: the 32-bit words fed to the
// configuration port, plus the device it targets.
type Stream struct {
	Device string
	Words  []uint32
}

// SizeBytes returns the stream size in bytes as transferred through ICAP.
func (s *Stream) SizeBytes() int { return 4 * len(s.Words) }

// Bytes serializes the stream words big-endian, the byte order of the
// SelectMAP/ICAP interface.
func (s *Stream) Bytes() []byte {
	out := make([]byte, 4*len(s.Words))
	for i, w := range s.Words {
		binary.BigEndian.PutUint32(out[4*i:], w)
	}
	return out
}

// FromBytes reconstructs stream words from ICAP byte order. The length must
// be a multiple of four.
func FromBytes(device string, data []byte) (*Stream, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("bitstream: byte stream length %d not word-aligned", len(data))
	}
	words := make([]uint32, len(data)/4)
	for i := range words {
		words[i] = binary.BigEndian.Uint32(data[4*i:])
	}
	return &Stream{Device: device, Words: words}, nil
}

// container file format for cmd/bitlinker: magic, device name, word count,
// words. All integers big-endian.
var containerMagic = [4]byte{'X', 'B', 'F', '1'}

// MarshalBinary encodes the stream in the XBF1 container format.
func (s *Stream) MarshalBinary() ([]byte, error) {
	name := []byte(s.Device)
	if len(name) > 255 {
		return nil, fmt.Errorf("bitstream: device name too long")
	}
	out := make([]byte, 0, 4+1+len(name)+4+4*len(s.Words))
	out = append(out, containerMagic[:]...)
	out = append(out, byte(len(name)))
	out = append(out, name...)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(s.Words)))
	out = append(out, n[:]...)
	return append(out, s.Bytes()...), nil
}

// UnmarshalBinary decodes the XBF1 container format.
func (s *Stream) UnmarshalBinary(data []byte) error {
	if len(data) < 9 || [4]byte(data[:4]) != containerMagic {
		return fmt.Errorf("bitstream: not an XBF1 container")
	}
	nameLen := int(data[4])
	if len(data) < 5+nameLen+4 {
		return fmt.Errorf("bitstream: truncated container header")
	}
	name := string(data[5 : 5+nameLen])
	wc := int(binary.BigEndian.Uint32(data[5+nameLen:]))
	body := data[5+nameLen+4:]
	if len(body) != 4*wc {
		return fmt.Errorf("bitstream: container declares %d words, body has %d bytes", wc, len(body))
	}
	parsed, err := FromBytes(name, body)
	if err != nil {
		return err
	}
	*s = *parsed
	return nil
}
