package bitstream

import (
	"fmt"

	"repro/internal/fabric"
)

// Compressed configuration streams (the fourth stream kind).
//
// A compressed stream is an opcode encoding of an ordinary configuration
// stream: the decoder reproduces the original stream words one by one and
// feeds them to the configuration logic, so the packet state machine, the
// running stream CRC and the frame-commit rules are exactly those of an
// uncompressed load. On top of the stream CRC the container carries its own
// decode-side CRC over every decoded word (folded with the FDRI register
// address, the readback-scrub convention), so a damaged container is caught
// even when the damage hides inside an opcode rather than a data word.
//
// Four opcodes, tag in the top 8 bits of the op word:
//
//	LIT n        — the next n container words are literal stream words
//	RUN n, v     — emit n copies of the value word v
//	CM  off,n, f — emit n words from offset off of the live configuration
//	               memory frame at address f (the KEEP op: the encoder
//	               verified those words already match the assumed image)
//	REF n, o     — emit n words repeated from decoded output offset o
//	               (duplicate-frame dedup)
//
// The CM op is what makes the codec effective: a differential stream must
// ship full-height frames even when only the region band changed, and the
// static fill above and below the band is identical in the assumed image.
// It is safe because the loader commits an FDRI packet's frames only when
// the packet ends — while a frame's words are still decoding, the live
// frame at its own address holds the pre-load content the encoder diffed
// against. The encoder additionally refuses CM references to any frame
// address written by an earlier packet of the same stream.
type Compressed struct {
	Device string
	// Words is the container: 3 header words (magic, raw word count,
	// decode CRC) followed by the opcode stream.
	Words []uint32
	// RawWords is the decoded (original) stream length in words.
	RawWords int
	// Frames is the number of configuration frames the decoded stream
	// writes (copied from the source differential's accounting).
	Frames int
}

// SizeBytes returns the container size in bytes as transferred through ICAP.
func (c *Compressed) SizeBytes() int { return 4 * len(c.Words) }

// RawBytes returns the decoded stream size in bytes — what the
// configuration port actually consumes.
func (c *Compressed) RawBytes() int { return 4 * c.RawWords }

// CompressedMagic heads every compressed container.
const CompressedMagic uint32 = 0x434D5052 // "CMPR"

const (
	opLit = 0x4C // 'L': low 24 bits = count, then count literal words
	opRun = 0x52 // 'R': low 24 bits = count, then 1 value word
	opCM  = 0x43 // 'C': bits 23:12 = frame offset, 11:0 = count, then 1 FAR word
	opRef = 0x44 // 'D': low 24 bits = count, then 1 output-offset word

	// minRun is the shortest run worth an opcode: a RUN/CM op costs two
	// container words, so runs of three or more win over literals.
	minRun = 3

	maxLitRun = 0xFFFFFF
	maxCMRun  = 0xFFF
)

// span is one parsed slice of the source stream: either generic words
// (headers, register payloads, padding) or one frame's FDRI payload.
type span struct {
	words   []uint32
	start   int // absolute index into the source stream
	isFrame bool
	far     fabric.FAR
	packet  int // FDRI packet ordinal, frames only
}

// parseSpans walks the stream with a minimal mirror of the loader's packet
// state machine and splits it into generic and frame spans.
func parseSpans(dev *fabric.Device, words []uint32) ([]span, error) {
	flen := dev.FrameLen()
	var spans []span
	generic := func(lo, hi int) {
		if hi > lo {
			spans = append(spans, span{words: words[lo:hi], start: lo})
		}
	}
	synced := false
	var far fabric.FAR
	farSet := false
	packet := 0
	glo := 0 // start of the pending generic span
	i := 0
	for i < len(words) {
		w := words[i]
		if !synced {
			if w == SyncWord {
				synced = true
			}
			i++
			continue
		}
		if packetType(w) == 1 && headerOp(w) == opWrite {
			reg, wc := headerReg(w), type1WordCount(w)
			if reg == RegFDRI && wc == 0 {
				// Long-form FDRI: type-2 header follows with the count.
				if i+1 >= len(words) || packetType(words[i+1]) != 2 {
					return nil, fmt.Errorf("bitstream: compress: missing type-2 FDRI header at %d", i)
				}
				n := type2WordCount(words[i+1])
				generic(glo, i+2)
				if err := emitFrames(dev, words, i+2, n, far, farSet, flen, packet, &spans); err != nil {
					return nil, err
				}
				packet++
				i += 2 + n
				glo = i
				continue
			}
			if reg == RegFDRI {
				generic(glo, i+1)
				if err := emitFrames(dev, words, i+1, wc, far, farSet, flen, packet, &spans); err != nil {
					return nil, err
				}
				packet++
				i += 1 + wc
				glo = i
				continue
			}
			if reg == RegFAR && wc == 1 && i+1 < len(words) {
				far, farSet = fabric.ParseFAR(words[i+1]), true
			}
			i += 1 + wc
			continue
		}
		// NOPs, dummies and anything else stay generic words.
		i++
	}
	generic(glo, len(words))
	return spans, nil
}

// emitFrames splits one FDRI payload into per-frame spans plus a generic
// span for the trailing pad frame.
func emitFrames(dev *fabric.Device, words []uint32, at, n int, far fabric.FAR, farSet bool, flen, packet int, spans *[]span) error {
	if !farSet {
		return fmt.Errorf("bitstream: compress: FDRI payload without FAR")
	}
	if at+n > len(words) || n%flen != 0 || n/flen < 2 {
		return fmt.Errorf("bitstream: compress: malformed FDRI payload of %d words at %d", n, at)
	}
	frames := n/flen - 1 // last chunk is the pad frame
	f := far
	for j := 0; j < frames; j++ {
		*spans = append(*spans, span{
			words: words[at+j*flen : at+(j+1)*flen], start: at + j*flen,
			isFrame: true, far: f, packet: packet,
		})
		if j < frames-1 {
			next, ok := dev.NextFAR(f)
			if !ok {
				return fmt.Errorf("bitstream: compress: frame run past the last frame")
			}
			f = next
		}
	}
	// Pad frame: all zeros, handled by generic RLE.
	*spans = append(*spans, span{words: words[at+frames*flen : at+n], start: at + frames*flen})
	return nil
}

// encoder accumulates the opcode stream.
type encoder struct {
	out []uint32
	lit []uint32
}

func (e *encoder) flushLit() {
	for len(e.lit) > 0 {
		n := len(e.lit)
		if n > maxLitRun {
			n = maxLitRun
		}
		e.out = append(e.out, uint32(opLit)<<24|uint32(n))
		e.out = append(e.out, e.lit[:n]...)
		e.lit = e.lit[n:]
	}
}

func (e *encoder) run(v uint32, n int) {
	e.flushLit()
	e.out = append(e.out, uint32(opRun)<<24|uint32(n&maxLitRun), v)
}

func (e *encoder) cm(off, n int, far fabric.FAR) {
	e.flushLit()
	e.out = append(e.out, uint32(opCM)<<24|uint32(off&maxCMRun)<<12|uint32(n&maxCMRun), far.Word())
}

func (e *encoder) ref(off, n int) {
	e.flushLit()
	e.out = append(e.out, uint32(opRef)<<24|uint32(n&maxLitRun), uint32(off))
}

// generic RLE-encodes a run of non-frame words.
func (e *encoder) generic(words []uint32) {
	for i := 0; i < len(words); {
		n := 1
		for i+n < len(words) && words[i+n] == words[i] {
			n++
		}
		if n >= minRun {
			e.run(words[i], n)
			i += n
		} else {
			e.lit = append(e.lit, words[i])
			i++
		}
	}
}

// frame encodes one frame against the assumed image: CM-keep runs where the
// frame matches the assumed content, value runs, literals otherwise.
func (e *encoder) frame(fw, af []uint32, far fabric.FAR, cmOK bool) {
	for i := 0; i < len(fw); {
		cmLen := 0
		if cmOK && af != nil {
			for i+cmLen < len(fw) && cmLen < maxCMRun && fw[i+cmLen] == af[i+cmLen] {
				cmLen++
			}
		}
		runLen := 1
		for i+runLen < len(fw) && fw[i+runLen] == fw[i] {
			runLen++
		}
		switch {
		case cmLen >= minRun && cmLen >= runLen:
			e.cm(i, cmLen, far)
			i += cmLen
		case runLen >= minRun:
			e.run(fw[i], runLen)
			i += runLen
		default:
			e.lit = append(e.lit, fw[i])
			i++
		}
	}
}

// Compress encodes a built stream against the assumed pre-load image (the
// same image a differential was diffed against). The result decodes to the
// byte-identical original stream, but only on a device whose live
// configuration matches the assumed image in every CM-referenced frame —
// exactly the §2.2 differential hazard, which the load path's resident-state
// gate already enforces.
func Compress(dev *fabric.Device, s *Stream, assumed *fabric.ConfigMemory, frames int) (*Compressed, error) {
	if s.Device != dev.Name {
		return nil, fmt.Errorf("bitstream: compress: stream targets %q, device is %q", s.Device, dev.Name)
	}
	if assumed != nil && assumed.Device() != dev {
		return nil, fmt.Errorf("bitstream: compress: assumed image belongs to a different device")
	}
	spans, err := parseSpans(dev, s.Words)
	if err != nil {
		return nil, err
	}
	e := &encoder{}
	written := make(map[fabric.FAR]int) // FAR -> packet that wrote it
	dedup := make(map[uint64]int)       // frame hash -> decoded offset of first copy
	for _, sp := range spans {
		if !sp.isFrame {
			e.generic(sp.words)
			continue
		}
		// Duplicate-frame dedup: an identical frame decoded earlier is a
		// two-word back-reference.
		h := hashWords(sp.words)
		if off, ok := dedup[h]; ok && wordsEqual(s.Words[off:off+len(sp.words)], sp.words) {
			e.ref(off, len(sp.words))
			continue
		}
		dedup[h] = sp.start
		// CM keeps are only safe against frames this stream has not already
		// rewritten: the loader commits a packet's frames when the packet
		// ends, so frames written by earlier packets no longer hold the
		// assumed content at decode time.
		cmOK := true
		if p, ok := written[sp.far]; ok && p < sp.packet {
			cmOK = false
		}
		var af []uint32
		if assumed != nil {
			af, _ = assumed.ReadFrame(sp.far)
		}
		e.frame(sp.words, af, sp.far, cmOK)
		written[sp.far] = sp.packet
	}
	e.flushLit()
	crc := FrameCRC(0, s.Words)
	out := make([]uint32, 0, 3+len(e.out))
	out = append(out, CompressedMagic, uint32(len(s.Words)), uint32(crc))
	out = append(out, e.out...)
	return &Compressed{Device: s.Device, Words: out, RawWords: len(s.Words), Frames: frames}, nil
}

func hashWords(ws []uint32) uint64 {
	var h uint64 = 14695981039346656037
	for _, w := range ws {
		h ^= uint64(w)
		h *= 1099511628211
	}
	return h
}

func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Decoder streams a compressed container into a loader, one container word
// at a time, reproducing the original stream words. It verifies the
// container's decode CRC when the declared word count has been emitted;
// structural damage (bad magic, bad opcode, overrun, trailing input) and
// CRC mismatches latch a sticky error. Loader-side errors stay the
// loader's: they are reported through the ICAP status register exactly as
// for an uncompressed stream.
type Decoder struct {
	l *Loader

	state    int
	rawWords int
	wantCRC  uint16
	crc      uint16
	emitted  int
	out      []uint32
	err      error
	done     bool

	litLeft   int
	pendN     int
	pendOff   int
	pendIsCM  bool
	pendIsRef bool
	pendIsRun bool
}

const (
	dsMagic = iota
	dsRaw
	dsCRC
	dsOp
	dsPayload
)

// NewDecoder returns a decoder feeding the loader.
func NewDecoder(l *Loader) *Decoder {
	return &Decoder{l: l}
}

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Done reports whether the full declared word count decoded and the decode
// CRC checked out.
func (d *Decoder) Done() bool { return d.done }

// Emitted reports how many raw stream words have been produced so far.
func (d *Decoder) Emitted() int { return d.emitted }

func (d *Decoder) fail(err error) (int, error) {
	if d.err == nil {
		d.err = err
	}
	return 0, d.err
}

// emit produces one decoded stream word.
func (d *Decoder) emit(w uint32) error {
	if d.emitted >= d.rawWords {
		d.err = fmt.Errorf("bitstream: decode: output overruns declared %d words", d.rawWords)
		return d.err
	}
	d.out = append(d.out, w)
	d.crc = crcUpdate(d.crc, RegFDRI, w)
	d.emitted++
	// Configuration-logic errors are sticky in the loader and surface via
	// the ICAP status register, as for an uncompressed stream.
	_ = d.l.WriteWord(w)
	if d.emitted == d.rawWords {
		if d.crc != d.wantCRC {
			d.err = fmt.Errorf("bitstream: decode: CRC mismatch: container %#04x, computed %#04x", d.wantCRC, d.crc)
			return d.err
		}
		d.done = true
	}
	return nil
}

// WriteWord consumes one container word and returns how many raw stream
// words it caused to be emitted into the loader.
func (d *Decoder) WriteWord(w uint32) (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	if d.done {
		return d.fail(fmt.Errorf("bitstream: decode: input past end of container"))
	}
	switch d.state {
	case dsMagic:
		if w != CompressedMagic {
			return d.fail(fmt.Errorf("bitstream: decode: bad container magic %#08x", w))
		}
		d.state = dsRaw
		return 0, nil
	case dsRaw:
		if w == 0 || w > 1<<28 {
			return d.fail(fmt.Errorf("bitstream: decode: implausible raw word count %d", w))
		}
		d.rawWords = int(w)
		d.state = dsCRC
		return 0, nil
	case dsCRC:
		if w>>16 != 0 {
			return d.fail(fmt.Errorf("bitstream: decode: damaged CRC header %#08x", w))
		}
		d.wantCRC = uint16(w)
		d.state = dsOp
		return 0, nil
	case dsOp:
		if d.litLeft > 0 {
			d.litLeft--
			if err := d.emit(w); err != nil {
				return 0, err
			}
			return 1, nil
		}
		tag := int(w >> 24)
		switch tag {
		case opLit:
			n := int(w & maxLitRun)
			if n == 0 {
				return d.fail(fmt.Errorf("bitstream: decode: zero-length literal run"))
			}
			d.litLeft = n
			return 0, nil
		case opRun:
			d.pendN = int(w & maxLitRun)
			d.pendIsRun, d.pendIsCM, d.pendIsRef = true, false, false
			d.state = dsPayload
			return 0, nil
		case opCM:
			d.pendOff = int(w >> 12 & maxCMRun)
			d.pendN = int(w & maxCMRun)
			d.pendIsCM, d.pendIsRun, d.pendIsRef = true, false, false
			d.state = dsPayload
			return 0, nil
		case opRef:
			d.pendN = int(w & maxLitRun)
			d.pendIsRef, d.pendIsRun, d.pendIsCM = true, false, false
			d.state = dsPayload
			return 0, nil
		default:
			return d.fail(fmt.Errorf("bitstream: decode: bad opcode %#08x", w))
		}
	case dsPayload:
		d.state = dsOp
		n := d.pendN
		if n == 0 {
			return d.fail(fmt.Errorf("bitstream: decode: zero-length run"))
		}
		switch {
		case d.pendIsRun:
			for i := 0; i < n; i++ {
				if err := d.emit(w); err != nil {
					return i, err
				}
			}
			return n, nil
		case d.pendIsCM:
			// The KEEP op: copy from the live configuration memory. The
			// frame still holds its pre-load content — the loader commits
			// FDRI packets only at packet end, and the encoder never
			// CM-references a frame an earlier packet rewrote.
			frame, err := d.l.cm.ReadFrame(fabric.ParseFAR(w))
			if err != nil {
				return d.fail(fmt.Errorf("bitstream: decode: CM reference: %w", err))
			}
			if d.pendOff+n > len(frame) {
				return d.fail(fmt.Errorf("bitstream: decode: CM run [%d,%d) exceeds frame length %d", d.pendOff, d.pendOff+n, len(frame)))
			}
			for i := 0; i < n; i++ {
				if err := d.emit(frame[d.pendOff+i]); err != nil {
					return i, err
				}
			}
			return n, nil
		case d.pendIsRef:
			off := int(w)
			if off < 0 || off+n > len(d.out) {
				return d.fail(fmt.Errorf("bitstream: decode: back-reference [%d,%d) exceeds %d decoded words", off, off+n, len(d.out)))
			}
			for i := 0; i < n; i++ {
				if err := d.emit(d.out[off+i]); err != nil {
					return i, err
				}
			}
			return n, nil
		}
		return d.fail(fmt.Errorf("bitstream: decode: internal payload state"))
	}
	return d.fail(fmt.Errorf("bitstream: decode: internal state %d", d.state))
}

// Decode feeds the whole container through a fresh decoder into the loader.
func (c *Compressed) Decode(l *Loader) error {
	d := NewDecoder(l)
	for _, w := range c.Words {
		if _, err := d.WriteWord(w); err != nil {
			return err
		}
	}
	if !d.Done() {
		return fmt.Errorf("bitstream: decode: container truncated (%d of %d words emitted)", d.Emitted(), d.rawWords)
	}
	return nil
}
