package bitstream

import (
	"math/rand"
	"testing"

	"repro/internal/fabric"
)

// buildWithBase sets up an assumed image and a stream rewriting some of its
// frames: frame 0 is mostly kept from the assumed content (a band change),
// frame 1 is a duplicate of frame 0 at another address, frame 2 is fresh
// random content.
func compressFixture(t testing.TB, seed int64) (*fabric.Device, *Stream, *fabric.ConfigMemory, [][]uint32, []fabric.FAR) {
	t.Helper()
	dev := fabric.XC2VP7()
	rng := rand.New(rand.NewSource(seed))
	flen := dev.FrameLen()
	assumed := fabric.NewConfigMemory(dev)
	// Static-looking fill in the assumed image.
	fars := []fabric.FAR{
		{Block: fabric.BlockCLB, Major: 2, Minor: 0},
		{Block: fabric.BlockCLB, Major: 2, Minor: 1},
		{Block: fabric.BlockCLB, Major: 5, Minor: 3},
	}
	for _, far := range fars {
		if err := assumed.WriteFrame(far, randFrame(rng, flen)); err != nil {
			t.Fatal(err)
		}
	}
	// Target frames: band change in the middle of assumed frame 0, an exact
	// duplicate of it, and fresh content.
	base, _ := assumed.ReadFrame(fars[0])
	banded := append([]uint32(nil), base...)
	for i := flen / 3; i < flen/2; i++ {
		banded[i] = rng.Uint32()
	}
	frames := [][]uint32{banded, append([]uint32(nil), banded...), randFrame(rng, flen)}
	var runs []FrameRun
	for i, far := range fars {
		runs = append(runs, FrameRun{Start: far, Frames: [][]uint32{frames[i]}})
	}
	s, err := Build(dev, runs)
	if err != nil {
		t.Fatal(err)
	}
	return dev, s, assumed, frames, fars
}

func TestCompressRoundTrip(t *testing.T) {
	dev, s, assumed, frames, fars := compressFixture(t, 11)
	c, err := Compress(dev, s, assumed, len(frames))
	if err != nil {
		t.Fatal(err)
	}
	if c.RawWords != len(s.Words) {
		t.Fatalf("RawWords = %d, want %d", c.RawWords, len(s.Words))
	}
	if c.SizeBytes() >= s.SizeBytes() {
		t.Fatalf("compressed %d B not smaller than raw %d B", c.SizeBytes(), s.SizeBytes())
	}
	// Decode against a live image equal to the assumed one (the hazard-gate
	// precondition) and check frame-byte identity.
	cm := assumed.Clone()
	l := NewLoader(cm)
	if err := c.Decode(l); err != nil {
		t.Fatal(err)
	}
	if !l.Done() {
		t.Fatal("loader not done after decoded stream")
	}
	for i, far := range fars {
		got, err := cm.ReadFrame(far)
		if err != nil {
			t.Fatal(err)
		}
		if !wordsEqual(got, frames[i]) {
			t.Fatalf("frame %d at %v differs after decode", i, far)
		}
	}
}

func TestCompressDecodedWordsIdentical(t *testing.T) {
	dev, s, assumed, _, _ := compressFixture(t, 12)
	c, err := Compress(dev, s, assumed, 3)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(assumed.Clone())
	d := NewDecoder(l)
	for _, w := range c.Words {
		if _, err := d.WriteWord(w); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Done() {
		t.Fatal("decoder not done")
	}
	if !wordsEqual(d.out, s.Words) {
		t.Fatalf("decoded stream differs from original (%d vs %d words)", len(d.out), len(s.Words))
	}
}

func TestCompressTruncationNeverCompletes(t *testing.T) {
	dev, s, assumed, _, _ := compressFixture(t, 13)
	c, err := Compress(dev, s, assumed, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(c.Words) / 2, len(c.Words) - 1} {
		l := NewLoader(assumed.Clone())
		d := NewDecoder(l)
		for _, w := range c.Words[:cut] {
			if _, err := d.WriteWord(w); err != nil {
				t.Fatalf("truncated container at %d errored early: %v", cut, err)
			}
		}
		// The loader may have seen DESYNC already (only trailing padding
		// was cut); the decoder's done flag is what the load path gates
		// on, and it must stay false.
		if d.Done() {
			t.Fatalf("truncated container at %d reported decoder done", cut)
		}
	}
}

func TestCompressBitFlipRejected(t *testing.T) {
	dev, s, assumed, _, _ := compressFixture(t, 14)
	c, err := Compress(dev, s, assumed, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	rejected := 0
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(len(c.Words))
		bit := uint32(1) << rng.Intn(32)
		words := append([]uint32(nil), c.Words...)
		words[i] ^= bit
		l := NewLoader(assumed.Clone())
		d := NewDecoder(l)
		bad := false
		for _, w := range words {
			if _, err := d.WriteWord(w); err != nil {
				bad = true
				break
			}
		}
		if !bad && d.Done() && l.Done() && l.Err() == nil {
			// A flip in a don't-care bit (e.g. an unused FAR field bit)
			// may decode successfully — acceptable only when the decoded
			// stream is byte-identical to the original. Silent
			// misconfiguration is the failure mode that must not exist.
			if !wordsEqual(d.out, s.Words) {
				t.Fatalf("bit flip word %d bit %#x decoded silently to different content", i, bit)
			}
		}
		rejected++
	}
	if rejected != 200 {
		t.Fatalf("ran %d trials", rejected)
	}
}

func TestCompressCMRefsSkipRewrittenFrames(t *testing.T) {
	// A stream that writes the same FAR twice (two packets): the second
	// write must not CM-reference the frame, since by then the live frame
	// holds the first packet's content.
	dev := fabric.XC2VP7()
	rng := rand.New(rand.NewSource(21))
	flen := dev.FrameLen()
	far := fabric.FAR{Block: fabric.BlockCLB, Major: 4, Minor: 2}
	assumed := fabric.NewConfigMemory(dev)
	orig := randFrame(rng, flen)
	if err := assumed.WriteFrame(far, orig); err != nil {
		t.Fatal(err)
	}
	first := randFrame(rng, flen)
	// Second write mostly matches the ASSUMED content — a naive encoder
	// would CM-reference it, but the live frame then holds `first`.
	second := append([]uint32(nil), orig...)
	second[0] ^= 1
	s, err := Build(dev, []FrameRun{
		{Start: far, Frames: [][]uint32{first}},
		{Start: far, Frames: [][]uint32{second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compress(dev, s, assumed, 2)
	if err != nil {
		t.Fatal(err)
	}
	cm := assumed.Clone()
	l := NewLoader(cm)
	if err := c.Decode(l); err != nil {
		t.Fatal(err)
	}
	got, _ := cm.ReadFrame(far)
	if !wordsEqual(got, second) {
		t.Fatal("second write of a rewritten frame decoded wrong content")
	}
}
