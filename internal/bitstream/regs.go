// Package bitstream implements the configuration stream format of the
// simulated Virtex-II Pro fabric: synchronization, type-1/type-2 packets,
// configuration registers, running CRC, frame data input with address
// auto-increment and pad-frame flushing.
//
// The format follows the Virtex-II architecture closely enough that every
// implementation issue the paper discusses is present: frames are the unit
// of (re)configuration, partial streams are by nature differential with
// respect to the current device state, and a complete (non-differential)
// stream is larger and takes proportionally longer to load.
package bitstream

import "fmt"

// SyncWord marks the start of packet processing, as on Xilinx devices.
const SyncWord uint32 = 0xAA995566

// DummyWord pads a stream before synchronization.
const DummyWord uint32 = 0xFFFFFFFF

// Reg is a configuration register address.
type Reg uint8

// Configuration registers (Virtex-II register file subset).
const (
	RegCRC    Reg = 0  // CRC check register
	RegFAR    Reg = 1  // frame address register
	RegFDRI   Reg = 2  // frame data register, input
	RegFDRO   Reg = 3  // frame data register, output (readback)
	RegCMD    Reg = 4  // command register
	RegCTL    Reg = 5  // control register
	RegMASK   Reg = 6  // control mask
	RegSTAT   Reg = 7  // status register
	RegLOUT   Reg = 8  // legacy output
	RegCOR    Reg = 9  // configuration options
	RegMFWR   Reg = 10 // multi-frame write (not used by this model)
	RegFLR    Reg = 11 // frame length register
	RegIDCODE Reg = 13 // device identification
)

func (r Reg) String() string {
	names := map[Reg]string{
		RegCRC: "CRC", RegFAR: "FAR", RegFDRI: "FDRI", RegFDRO: "FDRO",
		RegCMD: "CMD", RegCTL: "CTL", RegMASK: "MASK", RegSTAT: "STAT",
		RegLOUT: "LOUT", RegCOR: "COR", RegMFWR: "MFWR", RegFLR: "FLR",
		RegIDCODE: "IDCODE",
	}
	if n, ok := names[r]; ok {
		return n
	}
	return fmt.Sprintf("Reg(%d)", uint8(r))
}

// Cmd is a command register opcode.
type Cmd uint32

// Command register opcodes (Virtex-II subset).
const (
	CmdNull   Cmd = 0  // no operation
	CmdWCFG   Cmd = 1  // enable frame writes
	CmdLFRM   Cmd = 3  // last frame: flush pipeline
	CmdRCFG   Cmd = 4  // enable readback
	CmdStart  Cmd = 5  // begin start-up sequence
	CmdRCRC   Cmd = 7  // reset CRC register
	CmdDesync Cmd = 13 // end configuration, resynchronization required
)

func (c Cmd) String() string {
	names := map[Cmd]string{
		CmdNull: "NULL", CmdWCFG: "WCFG", CmdLFRM: "LFRM", CmdRCFG: "RCFG",
		CmdStart: "START", CmdRCRC: "RCRC", CmdDesync: "DESYNC",
	}
	if n, ok := names[c]; ok {
		return n
	}
	return fmt.Sprintf("Cmd(%d)", uint32(c))
}

// Packet header encoding.
//
// Type 1: [31:29]=001 [28:27]=op [17:13]=register [10:0]=word count.
// Type 2: [31:29]=010 [28:27]=op [26:0]=word count (register from the
// preceding type-1 header).
const (
	opNOP   = 0
	opRead  = 1
	opWrite = 2
)

func type1Header(op int, reg Reg, wc int) uint32 {
	return 1<<29 | uint32(op&3)<<27 | uint32(reg&0x1F)<<13 | uint32(wc&0x7FF)
}

func type2Header(op int, wc int) uint32 {
	return 2<<29 | uint32(op&3)<<27 | uint32(wc&0x7FFFFFF)
}

// packetType extracts the packet type field from a header word.
func packetType(w uint32) int { return int(w >> 29 & 7) }

func headerOp(w uint32) int { return int(w >> 27 & 3) }

func headerReg(w uint32) Reg { return Reg(w >> 13 & 0x1F) }

func type1WordCount(w uint32) int { return int(w & 0x7FF) }

func type2WordCount(w uint32) int { return int(w & 0x7FFFFFF) }
