package bitstream

import (
	"encoding/binary"
	"testing"

	"repro/internal/fabric"
)

// diffStream builds a sparse multi-run stream of the shape the
// differential assembler emits: disjoint frame runs, each with its own
// WCFG/FAR/FDRI sequence, sharing one CRC check.
func diffStream(tb testing.TB) (*fabric.Device, *Stream) {
	tb.Helper()
	dev := fabric.XC2VP7()
	flen := dev.FrameLen()
	mk := func(seed uint32) []uint32 {
		f := make([]uint32, flen)
		for i := range f {
			x := seed + uint32(i)*2654435761
			x ^= x >> 13
			f[i] = x * 2246822519
		}
		return f
	}
	runs := []FrameRun{
		{Start: fabric.FAR{Block: fabric.BlockCLB, Major: 4, Minor: 0}, Frames: [][]uint32{mk(1), mk(2)}},
		{Start: fabric.FAR{Block: fabric.BlockCLB, Major: 7, Minor: 3}, Frames: [][]uint32{mk(3)}},
	}
	s, err := Build(dev, runs)
	if err != nil {
		tb.Fatal(err)
	}
	return dev, s
}

func encodeWords(words []uint32) []byte {
	out := make([]byte, 4*len(words))
	for i, w := range words {
		binary.BigEndian.PutUint32(out[4*i:], w)
	}
	return out
}

// feed streams bytes word-by-word into a fresh loader, stopping at the
// first error the way the HWICAP does.
func feed(dev *fabric.Device, data []byte) *Loader {
	l := NewLoader(fabric.NewConfigMemory(dev))
	for i := 0; i+4 <= len(data); i += 4 {
		if l.WriteWord(binary.BigEndian.Uint32(data[i:])) != nil {
			break
		}
	}
	return l
}

// FuzzLoaderDifferentialStream feeds arbitrary byte mutations of a
// differential-shaped stream into the loader state machine. Whatever the
// input, the loader must never panic, must keep its first error sticky,
// and must still load a pristine stream after a reset — a damaged stream
// can wedge neither the state machine nor the device model.
func FuzzLoaderDifferentialStream(f *testing.F) {
	dev, s := diffStream(f)
	enc := encodeWords(s.Words)
	f.Add(enc)
	f.Add(enc[:len(enc)/2]) // truncated mid-FDRI
	f.Add(enc[:4*3])        // truncated right after sync
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/3] ^= 0x40 // bit flip inside frame data
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		l := feed(dev, data)
		if err := l.Err(); err != nil {
			// The first error must be sticky: the loader refuses further
			// words instead of resynchronizing on garbage.
			if l.WriteWord(SyncWord) == nil {
				t.Fatal("loader accepted words after a configuration error")
			}
		}
		// A reset must always recover the state machine for a clean load.
		l.Reset()
		if err := l.Err(); err != nil {
			t.Fatalf("error survived reset: %v", err)
		}
		if err := l.Load(s); err != nil {
			t.Fatalf("pristine stream rejected after fuzzed input: %v", err)
		}
		if !l.Done() {
			t.Fatal("pristine stream did not complete after reset")
		}
	})
}

// FuzzCompressedStream feeds arbitrary byte mutations of a compressed
// container into the decoder. Whatever the input: no panic, the first
// decode error is sticky, and a decode that completes with every check
// green (container CRC, decoder done, loader done and error-free) must
// have reproduced the original stream words exactly — silent decode
// divergence is the failure mode that must not exist; damage is only
// ever rejected loudly, by the container CRC or the stream's own. A
// pristine container must still decode cleanly afterwards.
func FuzzCompressedStream(f *testing.F) {
	dev, s, assumed, frames, _ := compressFixture(f, 31)
	c, err := Compress(dev, s, assumed, len(frames))
	if err != nil {
		f.Fatal(err)
	}
	enc := encodeWords(c.Words)
	f.Add(enc)
	f.Add(enc[:len(enc)/2]) // truncated mid-container
	f.Add(enc[:4*2])        // truncated inside the header
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/3] ^= 0x04 // bit flip inside an op payload
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(NewLoader(assumed.Clone()))
		for i := 0; i+4 <= len(data); i += 4 {
			if _, err := d.WriteWord(binary.BigEndian.Uint32(data[i:])); err != nil {
				break
			}
		}
		if d.Err() != nil {
			// The first error must be sticky: the decoder refuses further
			// container words instead of resynchronizing on garbage.
			if _, err := d.WriteWord(CompressedMagic); err == nil {
				t.Fatal("decoder accepted words after a decode error")
			}
		}
		if d.Done() && d.l.Done() && d.l.Err() == nil {
			if !wordsEqual(d.out, s.Words) {
				t.Fatalf("silent divergent decode: %d words out, %d in original", len(d.out), len(s.Words))
			}
		}
		// A fresh decoder must still take the pristine container in full.
		d2 := NewDecoder(NewLoader(assumed.Clone()))
		for _, w := range c.Words {
			if _, err := d2.WriteWord(w); err != nil {
				t.Fatalf("pristine container rejected after fuzzed input: %v", err)
			}
		}
		if !d2.Done() || !d2.l.Done() {
			t.Fatal("pristine container did not complete after fuzzed input")
		}
	})
}

// TestTruncatedDifferentialNeverCompletes cuts the stream at every word
// boundary up to the DESYNC command: no truncation may be reported as a
// completed configuration, and none may panic.
func TestTruncatedDifferentialNeverCompletes(t *testing.T) {
	dev, s := diffStream(t)
	// Locate the DESYNC command value (the word that flags completion).
	desync := -1
	for i := 1; i < len(s.Words); i++ {
		if s.Words[i-1] == type1Header(opWrite, RegCMD, 1) && s.Words[i] == uint32(CmdDesync) {
			desync = i
		}
	}
	if desync < 0 {
		t.Fatal("no DESYNC in stream")
	}
	enc := encodeWords(s.Words)
	for cut := 0; cut <= desync; cut++ {
		l := feed(dev, enc[:4*cut])
		if l.Done() {
			t.Fatalf("stream truncated at word %d/%d reported a completed configuration", cut, len(s.Words))
		}
	}
}

// TestBitFlippedDifferentialFailsCRC flips one bit in the frame data ahead
// of the CRC check: the loader must reject the stream with a CRC error and
// count it, not silently accept a damaged configuration.
func TestBitFlippedDifferentialFailsCRC(t *testing.T) {
	dev, s := diffStream(t)
	crcHdr := type1Header(opWrite, RegCRC, 1)
	crcIdx := -1
	for i, w := range s.Words {
		if w == crcHdr {
			crcIdx = i
		}
	}
	if crcIdx < 2 {
		t.Fatal("no CRC header in stream")
	}
	words := append([]uint32(nil), s.Words...)
	// The CRC header is preceded by [CMD hdr, LFRM]; the word before those
	// is the last pad-frame word of the final FDRI packet — CRC-covered
	// frame data.
	words[crcIdx-3] ^= 1 << 9
	l := feed(dev, encodeWords(words))
	if l.Err() == nil {
		t.Fatal("bit-flipped stream accepted")
	}
	if _, _, crcErrs := l.Stats(); crcErrs != 1 {
		t.Fatalf("crc errors = %d, want 1", crcErrs)
	}
	if l.Done() {
		t.Fatal("bit-flipped stream reported completion")
	}
}
