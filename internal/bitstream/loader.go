package bitstream

import (
	"fmt"

	"repro/internal/fabric"
)

// Loader is the device-side configuration logic: it consumes stream words
// (as delivered by the ICAP), maintains the packet state machine and the
// running CRC, and applies frame writes to the configuration memory.
type Loader struct {
	cm  *fabric.ConfigMemory
	dev *fabric.Device

	synced bool
	done   bool
	err    error

	crc    uint16
	far    fabric.FAR
	farSet bool
	flr    int
	wcfg   bool

	pendReg     Reg
	pendWords   int
	expectType2 bool
	fdri        []uint32

	onDone []func()

	framesWritten uint64
	configsDone   uint64
	crcErrors     uint64
}

// NewLoader returns a loader applying configurations to cm.
func NewLoader(cm *fabric.ConfigMemory) *Loader {
	return &Loader{cm: cm, dev: cm.Device()}
}

// OnDone registers a callback fired every time a configuration sequence
// completes (DESYNC command). The platform uses it to rebind the dynamic
// region's behavioural core to the new configuration contents.
func (l *Loader) OnDone(fn func()) { l.onDone = append(l.onDone, fn) }

// Err returns the sticky configuration error, if any.
func (l *Loader) Err() error { return l.err }

// Done reports whether the last configuration sequence completed.
func (l *Loader) Done() bool { return l.done }

// Stats reports frames written, configurations completed and CRC errors.
func (l *Loader) Stats() (frames, configs, crcErrs uint64) {
	return l.framesWritten, l.configsDone, l.crcErrors
}

// Reset returns the configuration logic to its power-up state (the sticky
// error is cleared; configuration memory contents are preserved, as a real
// ICAP reset does not erase the array).
func (l *Loader) Reset() {
	l.synced, l.done, l.err = false, false, nil
	l.crc, l.farSet, l.flr, l.wcfg = 0, false, 0, false
	l.pendReg, l.pendWords, l.expectType2 = 0, 0, false
	l.fdri = nil
}

// WriteWord feeds one stream word to the configuration logic.
func (l *Loader) WriteWord(w uint32) error {
	if l.err != nil {
		return l.err
	}
	if !l.synced {
		if w == SyncWord {
			l.synced = true
			l.done = false
		}
		return nil // pre-sync words are ignored
	}
	if l.pendWords > 0 {
		l.dataWord(w)
		return l.err
	}
	if l.expectType2 {
		if packetType(w) != 2 || headerOp(w) != opWrite {
			l.fail(fmt.Errorf("bitstream: expected type-2 FDRI header, got %#08x", w))
			return l.err
		}
		l.expectType2 = false
		l.pendReg = RegFDRI
		l.pendWords = type2WordCount(w)
		l.fdri = l.fdri[:0]
		return nil
	}
	switch packetType(w) {
	case 1:
		switch headerOp(w) {
		case opNOP:
			return nil
		case opWrite:
			reg, wc := headerReg(w), type1WordCount(w)
			if reg == RegFDRI && wc == 0 {
				l.expectType2 = true
				return nil
			}
			l.pendReg, l.pendWords = reg, wc
			if reg == RegFDRI {
				l.fdri = l.fdri[:0]
			}
			return nil
		default:
			l.fail(fmt.Errorf("bitstream: unsupported packet op %d", headerOp(w)))
		}
	case 2:
		l.fail(fmt.Errorf("bitstream: type-2 packet without preceding FDRI header"))
	default:
		// Dummy words between packets are tolerated, as on hardware.
		if w == DummyWord {
			return nil
		}
		l.fail(fmt.Errorf("bitstream: unexpected word %#08x", w))
	}
	return l.err
}

// Load feeds a whole stream.
func (l *Loader) Load(s *Stream) error {
	for _, w := range s.Words {
		if err := l.WriteWord(w); err != nil {
			return err
		}
	}
	return nil
}

func (l *Loader) fail(err error) {
	if l.err == nil {
		l.err = err
	}
}

func (l *Loader) dataWord(w uint32) {
	reg := l.pendReg
	l.pendWords--
	if reg != RegCRC {
		l.crc = crcUpdate(l.crc, reg, w)
	}
	switch reg {
	case RegFDRI:
		l.fdri = append(l.fdri, w)
		if l.pendWords == 0 {
			l.commitFrames()
		}
	case RegCMD:
		l.command(Cmd(w))
	case RegFAR:
		far := fabric.ParseFAR(w)
		if _, err := l.dev.FrameIndex(far); err != nil {
			l.fail(err)
			return
		}
		l.far, l.farSet = far, true
	case RegFLR:
		l.flr = int(w)
		if l.flr != l.dev.FrameLen() {
			l.fail(fmt.Errorf("bitstream: FLR %d does not match device frame length %d", l.flr, l.dev.FrameLen()))
		}
	case RegIDCODE:
		if w != idcode(l.dev) {
			l.fail(fmt.Errorf("bitstream: IDCODE %#08x does not match device %s", w, l.dev.Name))
		}
	case RegCRC:
		if uint16(w) != l.crc {
			l.crcErrors++
			l.fail(fmt.Errorf("bitstream: CRC mismatch: stream %#04x, computed %#04x", uint16(w), l.crc))
		}
	case RegCTL, RegMASK, RegCOR, RegLOUT:
		// accepted, no behavioural effect in this model
	default:
		l.fail(fmt.Errorf("bitstream: write to unsupported register %v", reg))
	}
}

func (l *Loader) command(c Cmd) {
	switch c {
	case CmdNull, CmdStart, CmdRCFG:
	case CmdRCRC:
		l.crc = 0
	case CmdWCFG:
		l.wcfg = true
	case CmdLFRM:
		l.wcfg = false
	case CmdDesync:
		l.synced = false
		l.done = true
		l.configsDone++
		for _, fn := range l.onDone {
			fn()
		}
	default:
		l.fail(fmt.Errorf("bitstream: unsupported command %v", c))
	}
}

// commitFrames applies a completed FDRI packet: every frame-length chunk
// except the final pad frame is written at the auto-incrementing address.
func (l *Loader) commitFrames() {
	if !l.wcfg {
		l.fail(fmt.Errorf("bitstream: FDRI data without WCFG"))
		return
	}
	if !l.farSet {
		l.fail(fmt.Errorf("bitstream: FDRI data without FAR"))
		return
	}
	if l.flr == 0 {
		l.fail(fmt.Errorf("bitstream: FDRI data without FLR"))
		return
	}
	if len(l.fdri)%l.flr != 0 {
		l.fail(fmt.Errorf("bitstream: FDRI packet of %d words is not a multiple of frame length %d", len(l.fdri), l.flr))
		return
	}
	n := len(l.fdri)/l.flr - 1 // last chunk is the pad frame
	if n <= 0 {
		l.fail(fmt.Errorf("bitstream: FDRI packet too short (%d words)", len(l.fdri)))
		return
	}
	far := l.far
	for i := 0; i < n; i++ {
		if err := l.cm.WriteFrame(far, l.fdri[i*l.flr:(i+1)*l.flr]); err != nil {
			l.fail(err)
			return
		}
		l.framesWritten++
		if i < n-1 {
			next, ok := l.dev.NextFAR(far)
			if !ok {
				l.fail(fmt.Errorf("bitstream: frame write ran past the last frame"))
				return
			}
			far = next
		}
	}
	l.fdri = l.fdri[:0]
}
