package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
)

// Property: any single-bit corruption of a configuration stream ahead of
// its CRC check is either detected (the loader errors or never completes)
// or harmless (the resulting configuration is bit-identical — flips of
// parser-don't-care header bits). A damaged stream can never silently
// produce a different configuration.
func TestSingleBitCorruptionDetected(t *testing.T) {
	dev := fabric.XC2VP7()
	base := rand.New(rand.NewSource(77))
	flen := dev.FrameLen()
	frames := [][]uint32{make([]uint32, flen), make([]uint32, flen)}
	for _, f := range frames {
		for i := range f {
			f[i] = base.Uint32()
		}
	}
	runs := []FrameRun{{Start: fabric.FAR{Block: fabric.BlockCLB, Major: 4, Minor: 0}, Frames: frames}}
	s, err := Build(dev, runs)
	if err != nil {
		t.Fatal(err)
	}
	// Find the CRC-check header: flips after it (start-up commands, pads)
	// land after verification and are out of scope.
	crcHdr := type1Header(opWrite, RegCRC, 1)
	crcIdx := -1
	for i, w := range s.Words {
		if w == crcHdr {
			crcIdx = i
		}
	}
	if crcIdx < 0 {
		t.Fatal("no CRC header in stream")
	}
	// Reference configuration from the clean stream.
	good := fabric.NewConfigMemory(dev)
	if err := NewLoader(good).Load(s); err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Skip the dummy/sync prologue (index 0 is a dummy word; flipping
		// pre-sync words is defined to be ignored).
		idx := 2 + rng.Intn(crcIdx-1) // in [2, crcIdx]
		bit := uint32(1) << rng.Intn(32)
		words := make([]uint32, len(s.Words))
		copy(words, s.Words)
		words[idx] ^= bit
		l := NewLoader(fabric.NewConfigMemory(dev))
		var loadErr error
		for _, w := range words {
			if loadErr = l.WriteWord(w); loadErr != nil {
				break
			}
		}
		// Detected: error or incomplete. (Flipping the sync word itself
		// desynchronizes the whole stream: nothing completes.)
		if loadErr != nil || !l.Done() {
			return true
		}
		// Otherwise the flip must have been harmless: identical result.
		cm := l.cm
		for minor := 0; minor < 2; minor++ {
			far := fabric.FAR{Block: fabric.BlockCLB, Major: 4, Minor: minor}
			got, _ := cm.ReadFrame(far)
			want, _ := good.ReadFrame(far)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Regression: BuildCorrupt must damage the CRC check value Finish wrote,
// not a frame data word that happens to equal the CRC register header.
// The payload here is maximally adversarial — every data word IS the
// header encoding — so any rediscovery-by-scanning picks a decoy, while
// the recorded index cannot be fooled.
func TestBuildCorruptFlipsRecordedCRCWord(t *testing.T) {
	dev := fabric.XC2VP7()
	flen := dev.FrameLen()
	decoy := type1Header(opWrite, RegCRC, 1)
	frame := make([]uint32, flen)
	for i := range frame {
		frame[i] = decoy
	}
	runs := []FrameRun{{Start: fabric.FAR{Block: fabric.BlockCLB, Major: 4, Minor: 0},
		Frames: [][]uint32{frame}}}
	clean, err := Build(dev, runs)
	if err != nil {
		t.Fatal(err)
	}
	corrupt, err := BuildCorrupt(dev, runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Words) != len(corrupt.Words) {
		t.Fatalf("stream lengths differ: %d vs %d", len(clean.Words), len(corrupt.Words))
	}
	diff := -1
	for i := range clean.Words {
		if clean.Words[i] != corrupt.Words[i] {
			if diff >= 0 {
				t.Fatalf("streams differ at both %d and %d, want exactly one damaged word", diff, i)
			}
			diff = i
		}
	}
	// Finish's epilogue is CRC hdr, CRC value, CMD hdr, START, CMD hdr,
	// DESYNC, two pads: the check value sits seven words from the end.
	if want := len(clean.Words) - 7; diff != want {
		t.Fatalf("damaged word at %d, want the CRC check value at %d", diff, want)
	}
	if clean.Words[diff-1] != decoy {
		t.Fatalf("word before the damaged one is %#x, want the CRC register header", clean.Words[diff-1])
	}
	// The clean stream must configure; the corrupt one must be rejected.
	if err := NewLoader(fabric.NewConfigMemory(dev)).Load(clean); err != nil {
		t.Fatalf("clean stream rejected: %v", err)
	}
	if err := NewLoader(fabric.NewConfigMemory(dev)).Load(corrupt); err == nil {
		t.Fatal("corrupt stream accepted")
	}
}
