package dock

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/hw"
	"repro/internal/intc"
	"repro/internal/memctl"
	"repro/internal/sim"
)

// echoCore is a trivial dynamic circuit: output = last input + 1, and every
// write also queues input+1 on the stream output.
type echoCore struct {
	last   uint64
	outq   []uint64
	resets int
	cpw    int
}

func (e *echoCore) Name() string { return "echo" }
func (e *echoCore) Reset()       { e.last = 0; e.outq = nil; e.resets++ }
func (e *echoCore) Write(v uint64, size int) {
	e.last = v + 1
	e.outq = append(e.outq, v+1)
}
func (e *echoCore) Read() uint64 { return e.last }
func (e *echoCore) PopOut() (uint64, bool) {
	if len(e.outq) == 0 {
		return 0, false
	}
	v := e.outq[0]
	e.outq = e.outq[1:]
	return v, true
}
func (e *echoCore) CyclesPerWord() int {
	if e.cpw == 0 {
		return 1
	}
	return e.cpw
}

func TestOPBDockDataPath(t *testing.T) {
	d := NewOPBDock(2, 1)
	if v, _ := d.Read(RegData, 4); v != ^uint64(0) {
		t.Fatal("unbound dock read should float high")
	}
	core := &echoCore{}
	d.SetCore(core)
	d.Write(RegData, 41, 4)
	if v, _ := d.Read(RegData, 4); v != 42 {
		t.Fatalf("read = %d, want 42", v)
	}
	if st, _ := d.Read(RegStatus, 4); st&StatBound == 0 {
		t.Fatal("status bound not set")
	}
	d.Write(RegCtrl, CtrlCoreReset, 4)
	if core.resets != 1 {
		t.Fatal("core reset not propagated")
	}
	in, out := d.Stats()
	if in != 1 || out != 1 {
		t.Fatalf("stats = %d/%d", in, out)
	}
}

func TestOPBDockBrokenStatus(t *testing.T) {
	d := NewOPBDock(2, 1)
	d.SetCore(hw.NewBrokenCore(1))
	st, _ := d.Read(RegStatus, 4)
	if st&StatBroken == 0 {
		t.Fatal("broken core not reported in status")
	}
}

// dmaRig wires a PLB with DDR, an interrupt controller and a PLB Dock.
func dmaRig(t *testing.T) (*sim.Kernel, *bus.Bus, *memctl.Memory, *intc.Controller, *PLBDock) {
	t.Helper()
	k := sim.NewKernel()
	clk := sim.NewClock("plb", 100_000_000)
	plb := bus.New("plb", k, clk, 8, bus.Params{ArbCycles: 2, ReadExtra: 2, BeatCycles: 1})
	ddr := memctl.New("ddr", 1<<20, 6, 2, 6)
	if err := plb.Map(0, 1<<20, ddr); err != nil {
		t.Fatal(err)
	}
	ic := intc.New()
	ic.Write(intc.RegIER, 1<<0, 4)
	d := NewPLBDock(k, plb, ic, 0, 3, 0)
	if err := plb.Map(0x5000_0000, 1<<16, d); err != nil {
		t.Fatal(err)
	}
	return k, plb, ddr, ic, d
}

// writeDesc writes a DMA descriptor into memory.
func writeDesc(m *memctl.Memory, addr, next, mem, length, flags uint32) {
	m.PokeBE(addr+descNext, uint64(next), 4)
	m.PokeBE(addr+descMem, uint64(mem), 4)
	m.PokeBE(addr+descLen, uint64(length), 4)
	m.PokeBE(addr+descFlags, uint64(flags), 4)
}

func TestPLBDockCPUPath(t *testing.T) {
	_, plb, _, _, d := dmaRig(t)
	core := &echoCore{}
	d.SetCore(core)
	if err := plb.Write(0x5000_0000+RegData, 7, 8); err != nil {
		t.Fatal(err)
	}
	v, err := plb.Read(0x5000_0000+RegData, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 8 {
		t.Fatalf("echo = %d", v)
	}
	// The write also queued a word which drained into the FIFO.
	if d.FIFO().Len() != 1 {
		t.Fatalf("fifo len = %d", d.FIFO().Len())
	}
	if v, _ := d.Read(RegFIFOPop, 8); v != 8 {
		t.Fatalf("fifo pop = %d", v)
	}
	// Underflow read returns 0.
	if v, _ := d.Read(RegFIFOPop, 8); v != 0 {
		t.Fatalf("underflow pop = %d", v)
	}
}

func TestDMAFeedToDock(t *testing.T) {
	k, _, ddr, ic, d := dmaRig(t)
	core := &echoCore{}
	d.SetCore(core)
	// 64 words of source data at 0x1000.
	for i := 0; i < 64; i++ {
		ddr.PokeBE(uint32(0x1000+8*i), uint64(i), 8)
	}
	writeDesc(ddr, 0x8000, 0, 0x1000, 64*8, DirToDock)
	d.Write(RegDMAPtr, 0x8000, 4)
	d.Write(RegDMACtrl, DMAStart|DMAIrqEn, 4)
	if st, _ := d.Read(RegDMAStat, 4); st&DMABusy == 0 {
		t.Fatal("DMA not busy after start")
	}
	if err := k.RunUntil(func() bool { return ic.Pending() }); err != nil {
		t.Fatal(err)
	}
	st, _ := d.Read(RegDMAStat, 4)
	if st&DMADone == 0 || st&DMAError != 0 {
		t.Fatalf("status = %#x", st)
	}
	in, _, dmaBytes, chains := d.Stats()
	if in != 64 || dmaBytes != 64*8 || chains != 1 {
		t.Fatalf("stats: in=%d bytes=%d chains=%d", in, dmaBytes, chains)
	}
	// The echo core queued 64 outputs into the FIFO.
	if d.FIFO().Len() != 64 {
		t.Fatalf("fifo len = %d", d.FIFO().Len())
	}
}

func TestDMADrainToMemory(t *testing.T) {
	k, _, ddr, ic, d := dmaRig(t)
	core := &echoCore{}
	d.SetCore(core)
	// Fill the FIFO via CPU writes.
	for i := 0; i < 32; i++ {
		d.Write(RegData, uint64(100+i), 8)
	}
	writeDesc(ddr, 0x8000, 0, 0x2000, 32*8, DirToMem)
	d.Write(RegDMAPtr, 0x8000, 4)
	d.Write(RegDMACtrl, DMAStart|DMAIrqEn, 4)
	if err := k.RunUntil(func() bool { return ic.Pending() }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if v := ddr.PeekBE(uint32(0x2000+8*i), 8); v != uint64(101+i) {
			t.Fatalf("drained word %d = %d, want %d", i, v, 101+i)
		}
	}
	if d.FIFO().Len() != 0 {
		t.Fatal("fifo not drained")
	}
}

func TestDMAScatterGatherChain(t *testing.T) {
	k, _, ddr, ic, d := dmaRig(t)
	d.SetCore(&echoCore{})
	for i := 0; i < 16; i++ {
		ddr.PokeBE(uint32(0x1000+8*i), uint64(i), 8)
	}
	// Chain: feed 16 words, then drain 16 results to 0x3000.
	writeDesc(ddr, 0x8000, 0x8020, 0x1000, 16*8, DirToDock)
	writeDesc(ddr, 0x8020, 0, 0x3000, 16*8, DirToMem)
	d.Write(RegDMAPtr, 0x8000, 4)
	d.Write(RegDMACtrl, DMAStart|DMAIrqEn, 4)
	if err := k.RunUntil(func() bool { return ic.Pending() }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if v := ddr.PeekBE(uint32(0x3000+8*i), 8); v != uint64(i+1) {
			t.Fatalf("result %d = %d", i, v)
		}
	}
	_, _, dmaBytes, _ := d.Stats()
	if dmaBytes != 2*16*8 {
		t.Fatalf("dma bytes = %d", dmaBytes)
	}
}

func TestDMAErrorCases(t *testing.T) {
	k, _, ddr, _, d := dmaRig(t)
	// Start with no core bound.
	d.Write(RegDMACtrl, DMAStart, 4)
	if st, _ := d.Read(RegDMAStat, 4); st&DMAError == 0 {
		t.Fatal("DMA with unbound core did not error")
	}
	d.Write(RegDMACtrl, DMAReset, 4)
	d.SetCore(&echoCore{})
	// Odd length.
	writeDesc(ddr, 0x8000, 0, 0x1000, 12, DirToDock)
	d.Write(RegDMAPtr, 0x8000, 4)
	d.Write(RegDMACtrl, DMAStart, 4)
	if err := k.RunUntil(func() bool {
		st, _ := d.Read(RegDMAStat, 4)
		return st&DMABusy == 0
	}); err != nil {
		t.Fatal(err)
	}
	if st, _ := d.Read(RegDMAStat, 4); st&DMAError == 0 {
		t.Fatal("unaligned length did not error")
	}
}

func TestDMADrainFromBrokenCoreTimesOut(t *testing.T) {
	k, _, ddr, _, d := dmaRig(t)
	d.SetCore(hw.NewBrokenCore(3))
	writeDesc(ddr, 0x8000, 0, 0x2000, 8, DirToMem)
	d.Write(RegDMAPtr, 0x8000, 4)
	d.Write(RegDMACtrl, DMAStart, 4)
	if err := k.RunUntil(func() bool {
		st, _ := d.Read(RegDMAStat, 4)
		return st&DMABusy == 0
	}); err != nil {
		t.Fatal(err)
	}
	if st, _ := d.Read(RegDMAStat, 4); st&DMAError == 0 {
		t.Fatal("broken core drain did not error out")
	}
}

func TestDMAThrottledByCore(t *testing.T) {
	// A core needing 4 cycles/word must make the feed take longer than a
	// core accepting one word per cycle.
	run := func(cpw int) sim.Time {
		k, _, ddr, ic, d := dmaRig(t)
		d.SetCore(&echoCore{cpw: cpw})
		for i := 0; i < 256; i++ {
			ddr.PokeBE(uint32(0x1000+8*i), uint64(i), 8)
		}
		writeDesc(ddr, 0x8000, 0, 0x1000, 256*8, DirToDock)
		d.Write(RegDMAPtr, 0x8000, 4)
		d.Write(RegDMACtrl, DMAStart|DMAIrqEn, 4)
		if err := k.RunUntil(func() bool { return ic.Pending() }); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	fast := run(1)
	slow := run(4)
	if slow <= fast {
		t.Errorf("throttled DMA (%v) not slower than unthrottled (%v)", slow, fast)
	}
}

func TestStartWhileBusyErrors(t *testing.T) {
	_, _, ddr, _, d := dmaRig(t)
	d.SetCore(&echoCore{})
	for i := 0; i < 1024; i++ {
		ddr.PokeBE(uint32(0x1000+8*i), 1, 8)
	}
	writeDesc(ddr, 0x8000, 0, 0x1000, 1024*8, DirToDock)
	d.Write(RegDMAPtr, 0x8000, 4)
	d.Write(RegDMACtrl, DMAStart, 4)
	d.Write(RegDMACtrl, DMAStart, 4) // second start while busy
	if st, _ := d.Read(RegDMAStat, 4); st&DMAError == 0 {
		t.Fatal("start-while-busy did not error")
	}
}
