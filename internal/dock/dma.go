package dock

// The scatter-gather DMA engine of the PLB Dock. It runs as an event chain
// on the simulation kernel: descriptor fetches and data bursts occupy the
// PLB through the background master interface, so DMA contends with (but
// does not block) the CPU — "since the CPU is free during DMA transfers, it
// can be used for other purposes" (§4.1).

// startDMA begins processing the descriptor chain at sgPtr.
func (d *PLBDock) startDMA() {
	if d.busy {
		d.dmaErr = true
		return
	}
	if d.core == nil {
		d.dmaErr = true
		d.finishDMA()
		return
	}
	d.busy, d.done, d.dmaErr = true, false, false
	d.dmaChains++
	d.curDesc = d.sgPtr
	d.fetchDescriptor()
}

// fetchDescriptor reads the 32-byte descriptor at curDesc with a burst.
func (d *PLBDock) fetchDescriptor() {
	if d.curDesc == 0 {
		d.finishDMA()
		return
	}
	data, done, err := d.plb.BurstRead(d.curDesc, descSize/8)
	if err != nil {
		d.dmaErr = true
		d.finishDMA()
		return
	}
	next := uint32(data[descNext/8] >> 32)
	mem := uint32(data[descMem/8])
	length := uint32(data[descLen/8] >> 32)
	flags := uint32(data[descFlags/8])
	d.k.ScheduleAt(done, func() {
		if length%8 != 0 || length == 0 {
			d.dmaErr = true
			d.finishDMA()
			return
		}
		d.memAddr, d.remain = mem, length
		d.dir = int(flags & 1)
		d.drainIdle = 0
		d.curDesc = next
		d.step()
	})
}

// step transfers the next burst of the current descriptor.
func (d *PLBDock) step() {
	if d.remain == 0 {
		d.fetchDescriptor()
		return
	}
	beats := int(d.remain / 8)
	if beats > maxBurstBeats {
		beats = maxBurstBeats
	}
	switch d.dir {
	case DirToDock:
		data, done, err := d.plb.BurstRead(d.memAddr, beats)
		if err != nil {
			d.dmaErr = true
			d.finishDMA()
			return
		}
		throttle := 0
		if cpw := d.core.CyclesPerWord(); cpw > 1 {
			throttle = (cpw - 1) * beats
		}
		at := done + d.plb.Clock().Cycles(uint64(throttle))
		d.k.ScheduleAt(at, func() {
			for _, v := range data {
				d.wordsIn++
				d.core.Write(v, 8)
				d.drainCore()
			}
			d.memAddr += uint32(8 * beats)
			d.remain -= uint32(8 * beats)
			d.step()
		})
	case DirToMem:
		if d.out.Len() == 0 {
			// Nothing produced yet: poll again shortly. A circuit that
			// never produces output (e.g. a broken configuration) trips
			// the idle limit and errors out instead of hanging.
			d.drainIdle++
			if d.drainIdle > 1<<16 {
				d.dmaErr = true
				d.finishDMA()
				return
			}
			d.k.Schedule(d.plb.Clock().Cycles(8), d.step)
			return
		}
		d.drainIdle = 0
		if n := d.out.Len(); beats > n {
			beats = n
		}
		data := make([]uint64, beats)
		for i := range data {
			v, _ := d.out.Pop()
			data[i] = v
		}
		done, err := d.plb.BurstWrite(d.memAddr, data)
		if err != nil {
			d.dmaErr = true
			d.finishDMA()
			return
		}
		d.k.ScheduleAt(done, func() {
			d.memAddr += uint32(8 * beats)
			d.remain -= uint32(8 * beats)
			d.dmaBytes += uint64(8 * beats)
			d.step()
		})
		return
	default:
		d.dmaErr = true
		d.finishDMA()
		return
	}
	if d.dir == DirToDock {
		d.dmaBytes += uint64(8 * beats)
	}
}

// finishDMA completes the chain: status update and interrupt.
func (d *PLBDock) finishDMA() {
	d.busy = false
	d.done = true
	if d.irqEn && d.ic != nil {
		d.ic.Raise(d.irq)
	}
}
