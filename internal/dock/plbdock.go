package dock

import (
	"repro/internal/bus"
	"repro/internal/fifo"
	"repro/internal/hw"
	"repro/internal/intc"
	"repro/internal/sim"
)

// PLB Dock register offsets (in addition to the shared ones).
const (
	RegFIFOPop   = 0x0100 // read: pop one output-FIFO word
	RegFIFOCount = 0x0104 // read: FIFO occupancy
	RegDMAPtr    = 0x0200 // write: scatter-gather descriptor chain address
	RegDMACtrl   = 0x0208 // control
	RegDMAStat   = 0x020C // status
)

// DMA control bits.
const (
	DMAStart = 1 << 0 // start the descriptor chain at RegDMAPtr
	DMAIrqEn = 1 << 1 // raise an interrupt when the chain completes
	DMAReset = 1 << 3 // reset DMA engine and FIFO
)

// DMA status bits.
const (
	DMABusy  = 1 << 0
	DMADone  = 1 << 1 // write 1 to clear
	DMAError = 1 << 2
)

// Descriptor layout (32 bytes in memory, big-endian words):
//
//	+0x00 next descriptor address (0 terminates the chain)
//	+0x04 memory address (source for feeds, destination for drains)
//	+0x08 length in bytes (multiple of 8)
//	+0x0C flags: bit0 = direction (0: memory→dock, 1: dock FIFO→memory)
const (
	descNext  = 0x00
	descMem   = 0x04
	descLen   = 0x08
	descFlags = 0x0C
	descSize  = 32

	// DirToDock feeds the dynamic region from memory.
	DirToDock = 0
	// DirToMem drains the output FIFO to memory.
	DirToMem = 1
)

// maxBurstBeats is the largest PLB burst the DMA engine issues (16 x 64 bit
// = 128 bytes).
const maxBurstBeats = 16

// PLBDock is the 64-bit wrapper: a PLB master/slave with the three added
// capabilities of §4.1 — DMA controller, output FIFO and interrupt
// generator.
type PLBDock struct {
	k    *sim.Kernel
	plb  *bus.Bus
	core hw.Core
	out  *fifo.F
	ic   *intc.Controller
	irq  int

	ReadWaits  int
	WriteWaits int

	// DMA engine state.
	sgPtr     uint32
	irqEn     bool
	busy      bool
	done      bool
	dmaErr    bool
	curDesc   uint32
	memAddr   uint32
	remain    uint32
	dir       int
	drainIdle int // consecutive empty-FIFO polls while draining

	wordsIn, wordsOut   uint64
	dmaBytes, dmaChains uint64
	underflows          uint64
}

// NewPLBDock returns the 64-bit dock. irqLine is the interrupt-controller
// input the dock's interrupt generator drives.
func NewPLBDock(k *sim.Kernel, plb *bus.Bus, ic *intc.Controller, irqLine, readWaits, writeWaits int) *PLBDock {
	return &PLBDock{
		k: k, plb: plb, ic: ic, irq: irqLine,
		out:        fifo.New(fifo.DockDepth),
		ReadWaits:  readWaits,
		WriteWaits: writeWaits,
	}
}

// Name implements bus.Slave.
func (d *PLBDock) Name() string { return "plb-dock" }

// SetCore binds the behavioural circuit.
func (d *PLBDock) SetCore(c hw.Core) { d.core = c }

// Core returns the bound circuit.
func (d *PLBDock) Core() hw.Core { return d.core }

// FIFO exposes the output FIFO (tests, statistics).
func (d *PLBDock) FIFO() *fifo.F { return d.out }

// Stats reports traffic counters.
func (d *PLBDock) Stats() (in, out, dmaBytes, chains uint64) {
	return d.wordsIn, d.wordsOut, d.dmaBytes, d.dmaChains
}

// Read implements bus.Slave.
func (d *PLBDock) Read(addr uint32, size int) (uint64, int) {
	switch addr {
	case RegData:
		if d.core == nil {
			return ^uint64(0), d.ReadWaits
		}
		d.wordsOut++
		v := d.core.Read()
		if size == 4 {
			v &= 0xFFFFFFFF
		}
		return v, d.ReadWaits
	case RegStatus:
		var s uint64
		if d.core != nil {
			s |= StatBound
			if _, broken := d.core.(*hw.BrokenCore); broken {
				s |= StatBroken
			}
		}
		return s, 1
	case RegFIFOPop:
		v, ok := d.out.Pop()
		if !ok {
			d.underflows++
			return 0, d.ReadWaits
		}
		if size == 4 {
			v &= 0xFFFFFFFF
		}
		return v, d.ReadWaits
	case RegFIFOCount:
		return uint64(d.out.Len()), 1
	case RegDMAStat:
		var s uint64
		if d.busy {
			s |= DMABusy
		}
		if d.done {
			s |= DMADone
		}
		if d.dmaErr {
			s |= DMAError
		}
		return s, 1
	default:
		return 0, 1
	}
}

// Write implements bus.Slave.
func (d *PLBDock) Write(addr uint32, val uint64, size int) int {
	switch addr {
	case RegData:
		if d.core != nil {
			d.wordsIn++
			d.core.Write(val, size)
			d.drainCore()
		}
		return d.WriteWaits
	case RegCtrl:
		if val&CtrlCoreReset != 0 && d.core != nil {
			d.core.Reset()
		}
		return 1
	case RegDMAPtr:
		d.sgPtr = uint32(val)
		return 1
	case RegDMACtrl:
		if val&DMAReset != 0 {
			d.busy, d.done, d.dmaErr = false, false, false
			d.out.Reset()
		}
		d.irqEn = val&DMAIrqEn != 0
		if val&DMAStart != 0 {
			d.startDMA()
		}
		return 1
	case RegDMAStat:
		if val&DMADone != 0 {
			d.done = false
		}
		return 1
	default:
		return 1
	}
}

// drainCore moves any output the circuit produced into the output FIFO.
func (d *PLBDock) drainCore() {
	for {
		v, ok := d.core.PopOut()
		if !ok {
			return
		}
		d.out.Push(v)
	}
}
