// Package dock implements the two wrapper modules that connect the dynamic
// region to the rest of the system: the OPB Dock of the 32-bit design (a
// slave peripheral with a 32-bit data channel, §3.1) and the PLB Dock of the
// 64-bit design (a master/slave peripheral with a 64-bit channel, a
// scatter-gather DMA controller, an output FIFO and an interrupt generator,
// §4.1). The behavioural circuit configured in the region is driven through
// the hw.Core interface; the platform rebinds it after each reconfiguration.
package dock

import "repro/internal/hw"

// Shared register offsets of both docks.
const (
	RegData   = 0x00 // write: data word to the region; read: region output
	RegCtrl   = 0x04 // control
	RegStatus = 0x08 // status
)

// Control bits.
const (
	CtrlCoreReset = 1 << 0 // reset the circuit in the region
)

// Status bits.
const (
	StatBound  = 1 << 0 // a circuit is bound to the region
	StatBroken = 1 << 1 // the bound circuit is the broken-configuration model
)

// OPBDock is the 32-bit wrapper: an OPB slave performing address decoding
// and I/O operations. Incoming data is stored, so it stays available to the
// region between write operations; a write-strobe signal accompanies every
// data write (usable as a clock enable by the dynamic circuit).
type OPBDock struct {
	core hw.Core

	// Wait states of the wrapper's data path, in OPB cycles.
	ReadWaits  int
	WriteWaits int

	lastIn        uint64
	wordsIn       uint64
	wordsOut      uint64
	writesDropped uint64
}

// NewOPBDock returns the 32-bit dock with calibrated wait states.
func NewOPBDock(readWaits, writeWaits int) *OPBDock {
	return &OPBDock{ReadWaits: readWaits, WriteWaits: writeWaits}
}

// Name implements bus.Slave.
func (d *OPBDock) Name() string { return "opb-dock" }

// SetCore binds the behavioural circuit (nil unbinds).
func (d *OPBDock) SetCore(c hw.Core) { d.core = c }

// Core returns the bound circuit.
func (d *OPBDock) Core() hw.Core { return d.core }

// Stats reports data words moved through the dock.
func (d *OPBDock) Stats() (in, out uint64) { return d.wordsIn, d.wordsOut }

// Read implements bus.Slave.
func (d *OPBDock) Read(addr uint32, size int) (uint64, int) {
	switch addr {
	case RegData:
		if d.core == nil {
			return ^uint64(0), d.ReadWaits
		}
		d.wordsOut++
		return d.core.Read() & 0xFFFFFFFF, d.ReadWaits
	case RegStatus:
		return d.statusBits(), 1
	default:
		return 0, 1
	}
}

// Write implements bus.Slave.
func (d *OPBDock) Write(addr uint32, val uint64, size int) int {
	switch addr {
	case RegData:
		d.lastIn = val & 0xFFFFFFFF
		if d.core == nil {
			d.writesDropped++
			return d.WriteWaits
		}
		d.wordsIn++
		d.core.Write(val&0xFFFFFFFF, 4)
		return d.WriteWaits
	case RegCtrl:
		if val&CtrlCoreReset != 0 && d.core != nil {
			d.core.Reset()
		}
		return 1
	default:
		return 1
	}
}

func (d *OPBDock) statusBits() uint64 {
	var s uint64
	if d.core != nil {
		s |= StatBound
		if _, broken := d.core.(*hw.BrokenCore); broken {
			s |= StatBroken
		}
	}
	return s
}
