// Package region models a device's reconfigurable floorplan as a set of
// independent dynamic areas. The paper fixes one dynamic area per device,
// but its sizing discussion (§2) implies a device can host several
// independently reconfigurable regions, each behind its own bus macro —
// the "two separate dynamic areas" §4.1 names as future work. A Floorplan
// is that generalization: N column-disjoint regions, each with its own
// dock macro, frame-address span and resident state, so reconfiguring one
// region can never touch a sibling's frames.
//
// Column-disjointness is the load-bearing rule. Virtex-II configuration
// frames span the full device height, so two regions sharing a CLB column
// would share frames: assembling a configuration for one would have to
// assume the other's current (dynamic, unknowable at assembly time)
// content — exactly the §2.2 stale-state hazard, now between regions.
// Validate therefore rejects floorplans whose regions, enclosed BRAM
// columns, or dock-macro boundary columns overlap in any column.
package region

import (
	"fmt"

	"repro/internal/busmacro"
	"repro/internal/fabric"
)

// Area is one dynamic region of a floorplan together with the bus macro
// that docks it to the static design.
type Area struct {
	R     fabric.Region
	Macro *busmacro.Macro
}

// DockCol returns the device column holding the static side of the area's
// bus macro.
func (a Area) DockCol() int {
	if a.Macro.Side == busmacro.LeftEdge {
		return a.R.Col0 - 1
	}
	return a.R.Col0 + a.R.W
}

// Floorplan is a device's set of dynamic areas.
type Floorplan struct {
	Name  string
	Areas []Area
}

// Regions returns the floorplan's regions in area order.
func (f Floorplan) Regions() []fabric.Region {
	out := make([]fabric.Region, len(f.Areas))
	for i, a := range f.Areas {
		out[i] = a.R
	}
	return out
}

// Validate checks every area individually (device fit, hard blocks, BRAM
// budget, macro placement) and then the floorplan-wide rules: no two areas
// may share a CLB column or an enclosed BRAM column, and no area's dock
// column may fall inside another area — the static side of a bus macro
// must stay static.
func (f Floorplan) Validate(dev *fabric.Device) error {
	if len(f.Areas) == 0 {
		return fmt.Errorf("region: floorplan %s has no areas", f.Name)
	}
	for _, a := range f.Areas {
		if err := dev.ValidateRegion(a.R); err != nil {
			return err
		}
		if a.Macro == nil {
			return fmt.Errorf("region: area %s has no dock macro", a.R.Name)
		}
		if err := a.Macro.Validate(dev, a.R); err != nil {
			return err
		}
	}
	owner := make(map[int]string, dev.Cols)
	for _, a := range f.Areas {
		for c := a.R.Col0; c < a.R.Col0+a.R.W; c++ {
			if prev, taken := owner[c]; taken {
				return fmt.Errorf("region: areas %s and %s share CLB column %d (full-height frames would alias)",
					prev, a.R.Name, c)
			}
			owner[c] = a.R.Name
		}
	}
	for _, a := range f.Areas {
		if prev, taken := owner[a.DockCol()]; taken && prev != a.R.Name {
			return fmt.Errorf("region: dock column %d of %s lies inside area %s",
				a.DockCol(), a.R.Name, prev)
		}
		if owner[a.DockCol()] == a.R.Name {
			return fmt.Errorf("region: dock column %d of %s lies inside its own area", a.DockCol(), a.R.Name)
		}
	}
	return nil
}

// Span is a half-open interval of the device's linear frame numbering —
// the ICAP stream addressing one region owns. A region's complete stream
// writes only frames inside its spans; Validate guarantees the spans of
// sibling areas never intersect.
type Span struct {
	Lo, Hi int // frame indices, [Lo, Hi)
}

// Frames returns the number of frames in the span.
func (s Span) Frames() int { return s.Hi - s.Lo }

// Spans returns the frame-index intervals a region's configuration streams
// may address on the device: one contiguous CLB run covering the region's
// columns, plus one run per enclosed BRAM column.
func Spans(dev *fabric.Device, r fabric.Region) []Span {
	lo, _ := dev.FrameIndex(fabric.FAR{Block: fabric.BlockCLB, Major: r.Col0})
	out := []Span{{Lo: lo, Hi: lo + r.W*fabric.FramesPerCLBColumn}}
	for _, bcol := range dev.BRAMColumns(r) {
		blo, _ := dev.FrameIndex(fabric.FAR{Block: fabric.BlockBRAM, Major: bcol})
		out = append(out, Span{Lo: blo, Hi: blo + fabric.FramesPerBRAMColumn})
	}
	return out
}

// Contains reports whether the frame index falls inside any of the spans.
func Contains(spans []Span, frame int) bool {
	for _, s := range spans {
		if frame >= s.Lo && frame < s.Hi {
			return true
		}
	}
	return false
}

// Single returns the one-area floorplan of the paper's fixed dynamic area
// — the degenerate case every pre-multi-region configuration maps to.
func Single(name string, r fabric.Region, m *busmacro.Macro) Floorplan {
	return Floorplan{Name: name, Areas: []Area{{R: r, Macro: m}}}
}

// Single32 is the 32-bit system's paper floorplan (§3.1).
func Single32() Floorplan {
	return Single("single32", fabric.DynamicRegion32(), busmacro.Dock32())
}

// Single64 is the 64-bit system's paper floorplan (§4.1).
func Single64() Floorplan {
	return Single("single64", fabric.DynamicRegion64(), busmacro.Dock64())
}

// Split divides a base area into n equal-width column-disjoint areas, each
// docked by its own copy of the base macro. One static gap column between
// consecutive parts hosts the left neighbour's (RightEdge) or the right
// neighbour's (LeftEdge) macro boundary, so every part keeps a static dock
// column; leftover columns (when the base width minus gaps is not
// divisible by n) return to the static design. n = 1 returns the base area
// unchanged — the single-region floorplan stays bit-identical.
func Split(base Area, n int) ([]Area, error) {
	if n < 1 {
		return nil, fmt.Errorf("region: cannot split %s into %d areas", base.R.Name, n)
	}
	if n == 1 {
		return []Area{base}, nil
	}
	w := (base.R.W - (n - 1)) / n
	if w < 1 {
		return nil, fmt.Errorf("region: area %s (%d columns wide) cannot host %d docked regions",
			base.R.Name, base.R.W, n)
	}
	out := make([]Area, n)
	for i := 0; i < n; i++ {
		r := base.R
		r.Name = fmt.Sprintf("%s.%c", base.R.Name, 'a'+i)
		r.Col0 = base.R.Col0 + i*(w+1)
		r.W = w
		out[i] = Area{R: r, Macro: base.Macro}
	}
	return out, nil
}

// SplitN builds the n-region floorplan of a paper default: the base
// dynamic area divided into n equal column bands. BRAM budgets are
// recomputed per part (a part encloses only the BRAM columns inside its
// band, capped by the base area's reservation).
func SplitN(base Floorplan, dev *fabric.Device, n int) (Floorplan, error) {
	if len(base.Areas) != 1 {
		return Floorplan{}, fmt.Errorf("region: SplitN wants a single-area base, got %d areas", len(base.Areas))
	}
	parts, err := Split(base.Areas[0], n)
	if err != nil {
		return Floorplan{}, err
	}
	if n > 1 {
		for i := range parts {
			budget := dev.BRAMsIntersecting(parts[i].R)
			if budget > base.Areas[0].R.BRAMBudget {
				budget = base.Areas[0].R.BRAMBudget
			}
			parts[i].R.BRAMBudget = budget
		}
	}
	fp := Floorplan{Name: fmt.Sprintf("%s/x%d", base.Name, n), Areas: parts}
	if err := fp.Validate(dev); err != nil {
		return Floorplan{}, err
	}
	return fp, nil
}

// Default returns the paper floorplan of a system kind split into n
// regions: n = 1 is exactly the fixed dynamic area of §3.1 / §4.1.
func Default(is64 bool, n int) (Floorplan, error) {
	if is64 {
		return SplitN(Single64(), fabric.XC2VP30(), n)
	}
	return SplitN(Single32(), fabric.XC2VP7(), n)
}
