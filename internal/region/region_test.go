package region

import (
	"testing"

	"repro/internal/busmacro"
	"repro/internal/fabric"
)

func TestPaperFloorplansValidate(t *testing.T) {
	if err := Single32().Validate(fabric.XC2VP7()); err != nil {
		t.Fatalf("single32: %v", err)
	}
	if err := Single64().Validate(fabric.XC2VP30()); err != nil {
		t.Fatalf("single64: %v", err)
	}
}

// TestSplitIdentity: n = 1 must return the paper area untouched, so every
// single-region configuration keeps its exact pre-multi-region geometry
// (and therefore byte-identical streams).
func TestSplitIdentity(t *testing.T) {
	for _, is64 := range []bool{false, true} {
		fp, err := Default(is64, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := Single32().Areas[0].R
		if is64 {
			want = Single64().Areas[0].R
		}
		if len(fp.Areas) != 1 || fp.Areas[0].R != want {
			t.Fatalf("is64=%v: split(1) = %+v, want %+v", is64, fp.Areas, want)
		}
	}
}

// TestSplitGeometry: the dual floorplans must produce equal-width,
// column-disjoint areas inside the base band, every dock column static.
func TestSplitGeometry(t *testing.T) {
	for _, tc := range []struct {
		is64  bool
		dev   *fabric.Device
		n     int
		wantW int
	}{
		{false, fabric.XC2VP7(), 2, 13},
		{true, fabric.XC2VP30(), 2, 15},
		{true, fabric.XC2VP30(), 3, 10},
	} {
		fp, err := Default(tc.is64, tc.n)
		if err != nil {
			t.Fatalf("is64=%v n=%d: %v", tc.is64, tc.n, err)
		}
		if len(fp.Areas) != tc.n {
			t.Fatalf("is64=%v: got %d areas, want %d", tc.is64, len(fp.Areas), tc.n)
		}
		base := Single32().Areas[0].R
		if tc.is64 {
			base = Single64().Areas[0].R
		}
		for i, a := range fp.Areas {
			if a.R.W != tc.wantW {
				t.Errorf("is64=%v n=%d area %d: width %d, want %d", tc.is64, tc.n, i, a.R.W, tc.wantW)
			}
			if a.R.Row0 != base.Row0 || a.R.H != base.H {
				t.Errorf("area %d: band rows[%d,%d), want the base band rows[%d,%d)",
					i, a.R.Row0, a.R.Row0+a.R.H, base.Row0, base.Row0+base.H)
			}
			if a.R.Col0 < base.Col0 || a.R.Col0+a.R.W > base.Col0+base.W {
				t.Errorf("area %d: cols[%d,%d) escape the base area cols[%d,%d)",
					i, a.R.Col0, a.R.Col0+a.R.W, base.Col0, base.Col0+base.W)
			}
		}
		if err := fp.Validate(tc.dev); err != nil {
			t.Errorf("is64=%v n=%d: validate: %v", tc.is64, tc.n, err)
		}
	}
}

// TestValidateRejectsSharedColumns: regions sharing a CLB column share
// full-height frames — the inter-region §2.2 hazard Validate must refuse.
func TestValidateRejectsSharedColumns(t *testing.T) {
	dev := fabric.XC2VP30()
	a := fabric.Region{Name: "a", Col0: 5, Row0: 14, W: 16, H: 24}
	b := fabric.Region{Name: "b", Col0: 20, Row0: 44, W: 16, H: 24} // col 20 in both
	fp := Floorplan{Name: "overlap", Areas: []Area{
		{R: a, Macro: busmacro.Dock64()},
		{R: b, Macro: busmacro.Dock64()},
	}}
	if err := fp.Validate(dev); err == nil {
		t.Fatal("floorplan with a shared CLB column validated")
	}
}

// TestValidateRejectsDockInsideSibling: a bus macro's static-side column
// must not be another area's dynamic fabric.
func TestValidateRejectsDockInsideSibling(t *testing.T) {
	dev := fabric.XC2VP30()
	a := fabric.Region{Name: "a", Col0: 5, Row0: 14, W: 16, H: 24}  // dock col 21
	b := fabric.Region{Name: "b", Col0: 21, Row0: 14, W: 10, H: 24} // owns col 21
	fp := Floorplan{Name: "dockclash", Areas: []Area{
		{R: a, Macro: busmacro.Dock64()},
		{R: b, Macro: busmacro.Dock64()},
	}}
	if err := fp.Validate(dev); err == nil {
		t.Fatal("floorplan with a dock column inside a sibling area validated")
	}
}

// TestSpansDisjoint: the ICAP stream addressing of split areas must never
// intersect — the frame-level statement of column disjointness.
func TestSpansDisjoint(t *testing.T) {
	for _, tc := range []struct {
		is64 bool
		dev  *fabric.Device
		n    int
	}{
		{false, fabric.XC2VP7(), 2},
		{true, fabric.XC2VP30(), 2},
		{true, fabric.XC2VP30(), 3},
	} {
		fp, err := Default(tc.is64, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		owner := make(map[int]int)
		for i, a := range fp.Areas {
			for _, sp := range Spans(tc.dev, a.R) {
				if sp.Frames() <= 0 {
					t.Fatalf("area %d: empty span %+v", i, sp)
				}
				for f := sp.Lo; f < sp.Hi; f++ {
					if prev, taken := owner[f]; taken {
						t.Fatalf("frame %d owned by areas %d and %d", f, prev, i)
					}
					owner[f] = i
				}
			}
		}
	}
}

// TestSpansMatchRegionGeometry: a region's CLB span counts exactly
// W*FramesPerCLBColumn frames starting at its first column.
func TestSpansMatchRegionGeometry(t *testing.T) {
	dev := fabric.XC2VP30()
	r := fabric.DynamicRegion64()
	spans := Spans(dev, r)
	if len(spans) == 0 {
		t.Fatal("no spans")
	}
	clb := spans[0]
	if clb.Frames() != r.W*fabric.FramesPerCLBColumn {
		t.Fatalf("CLB span %d frames, want %d", clb.Frames(), r.W*fabric.FramesPerCLBColumn)
	}
	wantLo, _ := dev.FrameIndex(fabric.FAR{Block: fabric.BlockCLB, Major: r.Col0})
	if clb.Lo != wantLo {
		t.Fatalf("CLB span starts at frame %d, want %d", clb.Lo, wantLo)
	}
	if got, want := len(spans)-1, len(dev.BRAMColumns(r)); got != want {
		t.Fatalf("%d BRAM spans, want %d", got, want)
	}
	if Contains(spans, clb.Lo-1) || !Contains(spans, clb.Lo) {
		t.Fatal("Contains disagrees with span bounds")
	}
}

func TestSplitTooNarrow(t *testing.T) {
	if _, err := Default(false, 20); err == nil {
		t.Fatal("splitting the 28-column area into 20 docked regions validated")
	}
}
