package plan_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bitlinker"
	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/region"
)

// The fuzz fixture: the dual-region 64-bit floorplan with a synthetic
// module library per area, shared across iterations (and rebuilt once per
// fuzz worker process).
type fuzzArea struct {
	area     region.Area
	asm      *bitlinker.Assembler
	spans    []region.Span
	names    []string
	placed   map[string]bitlinker.Placed
	images   map[string]*fabric.ConfigMemory // post-load region images ("" = baseline)
	complete map[string]*bitlinker.Result
}

type fuzzWorld struct {
	dev        *fabric.Device
	fp         region.Floorplan
	baseline   *fabric.ConfigMemory
	staticHash uint64
	areas      []*fuzzArea
}

var (
	fuzzOnce sync.Once
	world    *fuzzWorld
	fuzzErr  error
)

// fuzzSource adapts one area's assembler to plan.Source.
type fuzzSource struct{ fa *fuzzArea }

func (s fuzzSource) Has(name string) bool { _, ok := s.fa.placed[name]; return ok }

func (s fuzzSource) CompleteSize(name string) (int, int, error) {
	r, ok := s.fa.complete[name]
	if !ok {
		return 0, 0, fmt.Errorf("unknown module %s", name)
	}
	return r.Stream.SizeBytes(), r.Frames, nil
}

func (s fuzzSource) DifferentialSize(from, to string) (int, int, error) {
	res, err := s.fa.asm.AssembleDifferential(s.fa.images[from], s.fa.placed[to])
	if err != nil {
		return 0, 0, err
	}
	return res.Stream.SizeBytes(), res.Frames, nil
}

func (s fuzzSource) CompressedSize(from, to string) (int, int, int, error) {
	res, err := s.fa.asm.AssembleDifferential(s.fa.images[from], s.fa.placed[to])
	if err != nil {
		return 0, 0, 0, err
	}
	z, err := bitstream.Compress(s.fa.images[from].Device(), res.Stream, s.fa.images[from], res.Frames)
	if err != nil {
		return 0, 0, 0, err
	}
	return z.SizeBytes(), z.RawBytes(), z.Frames, nil
}

func (s fuzzSource) CompleteCompressedSize(name string) (int, int, int, error) {
	r, ok := s.fa.complete[name]
	if !ok {
		return 0, 0, 0, fmt.Errorf("unknown module %s", name)
	}
	z, err := bitstream.Compress(s.fa.images[name].Device(), r.Stream, nil, r.Frames)
	if err != nil {
		return 0, 0, 0, err
	}
	return z.SizeBytes(), z.RawBytes(), z.Frames, nil
}

func buildFuzzWorld() (*fuzzWorld, error) {
	dev := fabric.XC2VP30()
	fp, err := region.Default(true, 2)
	if err != nil {
		return nil, err
	}
	// Static design everywhere except the region bands (both blanked), as
	// the initial full configuration leaves them.
	cm := fabric.NewConfigMemory(dev)
	frame := make([]uint32, dev.FrameLen())
	for col := 0; col < dev.Cols; col++ {
		band := fabric.Region{}
		blank := false
		for _, a := range fp.Areas {
			if a.R.ContainsCol(col) {
				band, blank = a.R, true
			}
		}
		lo, hi := 0, 0
		if blank {
			lo, hi = dev.RowWordRange(band.Row0, band.H)
		}
		for i := range frame {
			frame[i] = 0xC0FFEE00 + uint32(col)<<8 + uint32(i)
			if blank && i >= lo && i < hi {
				frame[i] = 0
			}
		}
		for minor := 0; minor < fabric.FramesPerCLBColumn; minor++ {
			if err := cm.WriteFrame(fabric.FAR{Block: fabric.BlockCLB, Major: col, Minor: minor}, frame); err != nil {
				return nil, err
			}
		}
	}
	w := &fuzzWorld{dev: dev, fp: fp, baseline: cm, staticHash: cm.StaticHash(fp.Regions()...)}
	widths := []int{4, 7, 11, 15}
	for _, a := range fp.Areas {
		asm, err := bitlinker.New(dev, a.R, cm, a.Macro)
		if err != nil {
			return nil, err
		}
		fa := &fuzzArea{
			area:     a,
			asm:      asm,
			spans:    region.Spans(dev, a.R),
			placed:   make(map[string]bitlinker.Placed),
			images:   map[string]*fabric.ConfigMemory{"": cm},
			complete: make(map[string]*bitlinker.Result),
		}
		for _, wd := range widths {
			if wd > a.R.W {
				continue
			}
			name := fmt.Sprintf("mod%d", wd)
			comp := &bitlinker.Component{
				Name:      name,
				Version:   "fuzz+" + a.R.Name,
				W:         wd,
				H:         a.R.H,
				Resources: fabric.Resources{Slices: 2 * wd * a.R.H, LUTs: wd * a.R.H, FFs: wd * a.R.H},
				Macro:     a.Macro,
				PortRow0:  a.Macro.Row0,
				CLBFrames: bitlinker.SynthesizeFrames(name, "fuzz+"+a.R.Name, wd, a.R.H),
			}
			placed := bitlinker.Placed{C: comp, ColOff: a.R.W - wd}
			res, err := asm.Assemble(placed)
			if err != nil {
				return nil, err
			}
			fa.names = append(fa.names, name)
			fa.placed[name] = placed
			fa.images[name] = asm.Target(placed)
			fa.complete[name] = res
		}
		w.areas = append(w.areas, fa)
	}
	return w, nil
}

func fuzzSetup(t interface{ Fatal(...any) }) *fuzzWorld {
	fuzzOnce.Do(func() { world, fuzzErr = buildFuzzWorld() })
	if fuzzErr != nil {
		t.Fatal(fuzzErr)
	}
	return world
}

// FuzzRegionPlanner exercises the multi-region planning and assembly path
// with fuzzed (region, resident, wanted) triples: the chosen differential
// stream must stay inside the region's own frame spans (region-relative
// offsets can never alias a sibling or the static design), reproduce the
// wanted region hash, leave the sibling region and the static image
// untouched, and agree byte-for-byte with the planner's sizing.
func FuzzRegionPlanner(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(1))
	f.Add(uint8(1), uint8(4), uint8(2))
	f.Add(uint8(0), uint8(2), uint8(3))
	f.Add(uint8(1), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, ri, fromSel, toSel uint8) {
		w := fuzzSetup(t)
		fa := w.areas[int(ri)%len(w.areas)]
		sibling := w.areas[(int(ri)+1)%len(w.areas)]
		// fromSel may select the blank baseline (index == len(names)).
		from := ""
		if n := int(fromSel) % (len(fa.names) + 1); n < len(fa.names) {
			from = fa.names[n]
		}
		to := fa.names[int(toSel)%len(fa.names)]
		if from == to {
			return
		}
		res, err := fa.asm.AssembleDifferential(fa.images[from], fa.placed[to])
		if err != nil {
			// An empty differential (identical images) is the only
			// acceptable failure.
			return
		}
		// The planner must size this exact stream and carry the region.
		pl := plan.NewFor(fa.area.R.Name, fuzzSource{fa})
		p, err := pl.Plan(from, true, to)
		if err != nil {
			t.Fatalf("plan %q -> %q: %v", from, to, err)
		}
		if p.Region != fa.area.R.Name {
			t.Fatalf("plan carries region %q, want %q", p.Region, fa.area.R.Name)
		}
		if p.Kind == plan.StreamDifferential && p.Bytes != res.Stream.SizeBytes() {
			t.Fatalf("plan sized %d B, assembled stream is %d B", p.Bytes, res.Stream.SizeBytes())
		}
		// Apply the stream to the assumed image and verify frame locality.
		img := fa.images[from].Clone()
		if err := bitstream.NewLoader(img).Load(res.Stream); err != nil {
			t.Fatalf("loading differential %q -> %q: %v", from, to, err)
		}
		for idx := 0; idx < w.dev.NumFrames(); idx++ {
			far, err := w.dev.FARAt(idx)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := img.ReadFrame(far)
			was, _ := fa.images[from].ReadFrame(far)
			changed := false
			for i := range got {
				if got[i] != was[i] {
					changed = true
					break
				}
			}
			if changed && !region.Contains(fa.spans, idx) {
				t.Fatalf("differential %q -> %q on %s wrote frame %d (%v) outside the region's spans %v",
					from, to, fa.area.R.Name, idx, far, fa.spans)
			}
		}
		if h := img.RegionHash(fa.area.R); h != res.RegionHash {
			t.Fatalf("region hash %#x after load, assembler promised %#x", h, res.RegionHash)
		}
		if img.RegionHash(sibling.area.R) != fa.images[from].RegionHash(sibling.area.R) {
			t.Fatalf("differential %q -> %q disturbed sibling region %s", from, to, sibling.area.R.Name)
		}
		if img.StaticHash(w.fp.Regions()...) != w.staticHash {
			t.Fatalf("differential %q -> %q disturbed the static design", from, to)
		}
	})
}
