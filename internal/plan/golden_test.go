package plan_test

import (
	"testing"

	"repro/internal/platform"
)

// goldenRow pins one pre-refactor stream size: a (from, to) differential,
// or a complete stream when to carries the "complete:" prefix.
type goldenRow struct {
	from, to      string
	bytes, frames int
}

// The golden tables below were captured from the single-region planner
// BEFORE the multi-region refactor (PR 4 behaviour) and must never drift:
// a single-region system's plans stay byte-identical through any floorplan
// generalization. The CI bench gate cross-checks the same property on the
// aggregate S2/S3 rows.
var goldenSys32 = []goldenRow{
	{"", "complete:blend", 367684, 744},
	{"", "complete:brightness", 367684, 744},
	{"", "complete:fade", 367684, 744},
	{"", "complete:jenkins", 367684, 744},
	{"", "complete:passthrough", 367684, 744},
	{"", "complete:patternmatch", 367684, 744},
	{"", "blend", 33060, 66},
	{"", "brightness", 33060, 66},
	{"", "fade", 65532, 132},
	{"", "jenkins", 98004, 198},
	{"", "passthrough", 11412, 22},
	{"", "patternmatch", 119652, 242},
	{"blend", "brightness", 33060, 66},
	{"blend", "fade", 65532, 132},
	{"blend", "jenkins", 98004, 198},
	{"blend", "passthrough", 33060, 66},
	{"blend", "patternmatch", 119652, 242},
	{"brightness", "blend", 33060, 66},
	{"brightness", "fade", 65532, 132},
	{"brightness", "jenkins", 98004, 198},
	{"brightness", "passthrough", 33060, 66},
	{"brightness", "patternmatch", 119652, 242},
	{"fade", "blend", 65532, 132},
	{"fade", "brightness", 65532, 132},
	{"fade", "jenkins", 98004, 198},
	{"fade", "passthrough", 65532, 132},
	{"fade", "patternmatch", 119652, 242},
	{"jenkins", "blend", 98004, 198},
	{"jenkins", "brightness", 98004, 198},
	{"jenkins", "fade", 98004, 198},
	{"jenkins", "passthrough", 98004, 198},
	{"jenkins", "patternmatch", 119652, 242},
	{"passthrough", "blend", 33060, 66},
	{"passthrough", "brightness", 33060, 66},
	{"passthrough", "fade", 65532, 132},
	{"passthrough", "jenkins", 98004, 198},
	{"passthrough", "patternmatch", 119652, 242},
	{"patternmatch", "blend", 119652, 242},
	{"patternmatch", "brightness", 119652, 242},
	{"patternmatch", "fade", 119652, 242},
	{"patternmatch", "jenkins", 119652, 242},
	{"patternmatch", "passthrough", 119652, 242},
}

var goldenSys64 = []goldenRow{
	{"", "complete:blend", 1001416, 1024},
	{"", "complete:brightness", 1001416, 1024},
	{"", "complete:fade", 1001416, 1024},
	{"", "complete:jenkins", 1001416, 1024},
	{"", "complete:passthrough", 1001416, 1024},
	{"", "complete:patternmatch", 1001416, 1024},
	{"", "complete:sha1", 1001416, 1024},
	{"", "blend", 43836, 44},
	{"", "brightness", 22452, 22},
	{"", "fade", 65220, 66},
	{"", "jenkins", 86604, 88},
	{"", "passthrough", 22452, 22},
	{"", "patternmatch", 107988, 110},
	{"", "sha1", 321828, 330},
	{"blend", "brightness", 43836, 44},
	{"blend", "fade", 65220, 66},
	{"blend", "jenkins", 86604, 88},
	{"blend", "passthrough", 43836, 44},
	{"blend", "patternmatch", 107988, 110},
	{"blend", "sha1", 321828, 330},
	{"brightness", "blend", 43836, 44},
	{"brightness", "fade", 65220, 66},
	{"brightness", "jenkins", 86604, 88},
	{"brightness", "passthrough", 22452, 22},
	{"brightness", "patternmatch", 107988, 110},
	{"brightness", "sha1", 321828, 330},
	{"fade", "blend", 65220, 66},
	{"fade", "brightness", 65220, 66},
	{"fade", "jenkins", 86604, 88},
	{"fade", "passthrough", 65220, 66},
	{"fade", "patternmatch", 107988, 110},
	{"fade", "sha1", 321828, 330},
	{"jenkins", "blend", 86604, 88},
	{"jenkins", "brightness", 86604, 88},
	{"jenkins", "fade", 86604, 88},
	{"jenkins", "passthrough", 86604, 88},
	{"jenkins", "patternmatch", 107988, 110},
	{"jenkins", "sha1", 321828, 330},
	{"passthrough", "blend", 43836, 44},
	{"passthrough", "brightness", 22452, 22},
	{"passthrough", "fade", 65220, 66},
	{"passthrough", "jenkins", 86604, 88},
	{"passthrough", "patternmatch", 107988, 110},
	{"passthrough", "sha1", 321828, 330},
	{"patternmatch", "blend", 107988, 110},
	{"patternmatch", "brightness", 107988, 110},
	{"patternmatch", "fade", 107988, 110},
	{"patternmatch", "jenkins", 107988, 110},
	{"patternmatch", "passthrough", 107988, 110},
	{"patternmatch", "sha1", 321828, 330},
	{"sha1", "blend", 321828, 330},
	{"sha1", "brightness", 321828, 330},
	{"sha1", "fade", 321828, 330},
	{"sha1", "jenkins", 321828, 330},
	{"sha1", "passthrough", 321828, 330},
	{"sha1", "patternmatch", 321828, 330},
}

func checkGolden(t *testing.T, s *platform.System, rows []goldenRow) {
	t.Helper()
	for _, g := range rows {
		var bytes, frames int
		var err error
		if len(g.to) > 9 && g.to[:9] == "complete:" {
			bytes, frames, err = s.Mgr.CompleteSize(g.to[9:])
		} else {
			bytes, frames, err = s.Mgr.DifferentialSize(g.from, g.to)
		}
		if err != nil {
			t.Errorf("%s: %q -> %q: %v", s.Name, g.from, g.to, err)
			continue
		}
		if bytes != g.bytes || frames != g.frames {
			t.Errorf("%s: %q -> %q sized (%d B, %d frames), pre-refactor planner had (%d B, %d frames)",
				s.Name, g.from, g.to, bytes, frames, g.bytes, g.frames)
		}
	}
}

// TestSingleRegionPlannerGolden: every complete and differential stream of
// the paper's single-region systems is byte-identical to the pre-refactor
// planner's, on both the legacy constructors and the n=1 floorplan path.
func TestSingleRegionPlannerGolden(t *testing.T) {
	s32, err := platform.NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, s32, goldenSys32)
	s64, err := platform.NewSys64()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, s64, goldenSys64)
	s64n, err := platform.NewSys64N(1)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, s64n, goldenSys64)
}
