package plan

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// fakeSource is an in-memory stream catalog with call counting, so tests
// can assert the planner memoizes instead of re-asking.
type fakeSource struct {
	complete map[string]int    // module -> bytes
	diff     map[[2]string]int // (from,to) -> bytes
	calls    map[string]int    // method+args -> count
}

func newFakeSource() *fakeSource {
	return &fakeSource{
		complete: map[string]int{"a": 1000, "b": 1000, "c": 1000},
		diff: map[[2]string]int{
			{"", "a"}:  200,
			{"", "b"}:  300,
			{"a", "b"}: 120,
			{"b", "a"}: 130,
			{"a", "c"}: 2000, // pathological: differential bigger than complete
		},
		calls: make(map[string]int),
	}
}

func (f *fakeSource) Has(name string) bool { _, ok := f.complete[name]; return ok }

func (f *fakeSource) CompleteSize(name string) (int, int, error) {
	f.calls["complete:"+name]++
	b, ok := f.complete[name]
	if !ok {
		return 0, 0, fmt.Errorf("unknown %s", name)
	}
	return b, b / 100, nil
}

func (f *fakeSource) DifferentialSize(from, to string) (int, int, error) {
	f.calls[fmt.Sprintf("diff:%s->%s", from, to)]++
	b, ok := f.diff[[2]string{from, to}]
	if !ok {
		return 0, 0, fmt.Errorf("no differential %s->%s", from, to)
	}
	return b, b / 100, nil
}

// Compressed containers in the fake shave 60% off the wire size of the
// stream they encode; the raw size stays the source stream's.
func (f *fakeSource) CompressedSize(from, to string) (int, int, int, error) {
	f.calls[fmt.Sprintf("zdiff:%s->%s", from, to)]++
	b, ok := f.diff[[2]string{from, to}]
	if !ok {
		return 0, 0, 0, fmt.Errorf("no differential %s->%s", from, to)
	}
	return b * 2 / 5, b, b / 100, nil
}

func (f *fakeSource) CompleteCompressedSize(name string) (int, int, int, error) {
	f.calls["zfull:"+name]++
	b, ok := f.complete[name]
	if !ok {
		return 0, 0, 0, fmt.Errorf("unknown %s", name)
	}
	return b * 9 / 10, b, b / 100, nil
}

func TestPlanChoosesCheapestSafeStream(t *testing.T) {
	src := newFakeSource()
	p := New(src)

	cases := []struct {
		resident string
		auth     bool
		want     string
		kind     StreamKind
		bytes    int
	}{
		{"a", true, "a", StreamNone, 0},           // already resident
		{"", true, "a", StreamDifferential, 200},  // diff against blank baseline
		{"a", true, "b", StreamDifferential, 120}, // cheapest transition
		{"a", false, "b", StreamComplete, 1000},   // not authoritative: gate forces complete
		{"a", false, "a", StreamComplete, 1000},   // even "same module" is not trusted
		{"a", true, "c", StreamComplete, 1000},    // differential larger than complete
		{"b", true, "c", StreamComplete, 1000},    // no differential for this pair
	}
	for _, tc := range cases {
		got, err := p.Plan(tc.resident, tc.auth, tc.want)
		if err != nil {
			t.Fatalf("Plan(%q,%v,%q): %v", tc.resident, tc.auth, tc.want, err)
		}
		if got.Kind != tc.kind || got.Bytes != tc.bytes || got.Module != tc.want {
			t.Errorf("Plan(%q,%v,%q) = %+v, want kind %v bytes %d",
				tc.resident, tc.auth, tc.want, got, tc.kind, tc.bytes)
		}
		if got.Kind == StreamDifferential && got.From != tc.resident {
			t.Errorf("differential plan %+v does not carry the assumed from-state %q", got, tc.resident)
		}
	}
	if _, err := p.Plan("", true, "nope"); err == nil {
		t.Fatal("unknown module planned")
	}
}

func TestPlanMemoizesSizes(t *testing.T) {
	src := newFakeSource()
	p := New(src)
	for i := 0; i < 10; i++ {
		if _, err := p.Plan("a", true, "b"); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Plan("b", true, "c"); err != nil { // pair with no differential
			t.Fatal(err)
		}
	}
	if n := src.calls["diff:a->b"]; n != 1 {
		t.Errorf("differential a->b sized %d times, want 1 (memoized)", n)
	}
	if n := src.calls["diff:b->c"]; n != 1 {
		t.Errorf("absent differential b->c probed %d times, want 1 (negative result memoized)", n)
	}
	if n := src.calls["complete:b"] + src.calls["complete:c"]; n != 2 {
		t.Errorf("complete sizes asked %d times, want 2", n)
	}
	if p.Pairs() != 2 {
		t.Errorf("memoized pairs = %d, want 2", p.Pairs())
	}
}

func TestPlanCompression(t *testing.T) {
	src := newFakeSource()
	p := New(src)
	p.SetCompression(true)

	// Authoritative transition: the compressed differential container (40%
	// of the differential's wire size) wins.
	got, err := p.Plan("a", true, "b")
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != StreamCompressed || got.Base != StreamDifferential {
		t.Fatalf("plan = %+v, want compressed differential", got)
	}
	if got.Bytes != 120*2/5 || got.Raw != 120 || got.From != "a" {
		t.Fatalf("compressed plan sized %+v, want wire %d raw %d from a", got, 120*2/5, 120)
	}
	// The time estimate prices the decoded words the port consumes, not
	// the wire size: identical to the differential's estimate.
	if want := sim.Time(DefaultFsPerByte * 120); got.Est != want {
		t.Fatalf("compressed Est = %v, want raw-based %v", got.Est, want)
	}

	// Non-authoritative state: only state-independent candidates; the
	// RLE-only complete container undercuts the complete stream.
	got, err = p.Plan("a", false, "b")
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != StreamCompressed || got.Base != StreamComplete || got.From != "" {
		t.Fatalf("non-authoritative plan = %+v, want compressed complete", got)
	}
	if got.Bytes != 900 || got.Raw != 1000 {
		t.Fatalf("compressed complete sized %+v, want wire 900 raw 1000", got)
	}

	// Compression off: byte-identical to the three-kind planner.
	p.SetCompression(false)
	got, err = p.Plan("a", true, "b")
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != StreamDifferential || got.Bytes != 120 {
		t.Fatalf("plan with compression off = %+v, want plain differential", got)
	}
}

func TestRestoreBytesCompression(t *testing.T) {
	src := newFakeSource()
	p := New(src)

	// Compression off: the blank-baseline differential, falling back to
	// the complete stream when no differential exists — byte-identical to
	// the pre-compression estimate.
	if b, err := p.RestoreBytes("a"); err != nil || b != 200 {
		t.Fatalf("RestoreBytes(a) = %d, %v; want blank differential 200", b, err)
	}
	if b, err := p.RestoreBytes("c"); err != nil || b != 1000 {
		t.Fatalf("RestoreBytes(c) = %d, %v; want complete fallback 1000", b, err)
	}

	// Compression on: the estimate drops to the wire size Plan would
	// actually stream — the compressed blank differential for a (40% of
	// 200), the compressed complete container for c (90% of 1000, no
	// blank differential exists).
	p.SetCompression(true)
	if b, err := p.RestoreBytes("a"); err != nil || b != 200*2/5 {
		t.Fatalf("RestoreBytes(a) with compression = %d, %v; want compressed differential %d", b, err, 200*2/5)
	}
	if b, err := p.RestoreBytes("c"); err != nil || b != 900 {
		t.Fatalf("RestoreBytes(c) with compression = %d, %v; want compressed complete 900", b, err)
	}

	// Toggling back off restores the uncompressed estimate (memoized
	// compressed sizes must not leak into the plain path).
	p.SetCompression(false)
	if b, err := p.RestoreBytes("a"); err != nil || b != 200 {
		t.Fatalf("RestoreBytes(a) after toggle = %d, %v; want 200", b, err)
	}
	if _, err := p.RestoreBytes("nope"); err == nil {
		t.Fatal("unknown module estimated")
	}
}

func TestObserveCalibratesEstimate(t *testing.T) {
	src := newFakeSource()
	p := New(src)
	before, err := p.Plan("a", true, "b")
	if err != nil {
		t.Fatal(err)
	}
	if before.Est != sim.Time(DefaultFsPerByte*before.Bytes) {
		t.Errorf("uncalibrated estimate %v, want default %v", before.Est, sim.Time(DefaultFsPerByte*before.Bytes))
	}
	// Observe a load twice as slow as the default model.
	p.Observe(1000, sim.Time(2*DefaultFsPerByte*1000))
	after, err := p.Plan("a", true, "b")
	if err != nil {
		t.Fatal(err)
	}
	if after.Est <= before.Est {
		t.Errorf("estimate did not rise after a slow observation: %v -> %v", before.Est, after.Est)
	}
	// Degenerate observations are ignored.
	p.Observe(0, 100)
	p.Observe(100, 0)
}
