package plan_test

import (
	"strings"
	"testing"

	"repro/internal/platform"
)

// compressedGoldenRow pins one compressed container size: a (from, to)
// compressed differential, or a compressed complete stream when to
// carries the "complete:" prefix. wire is the container's on-the-wire
// size; raw is the size of the stream it decodes to, which must equal the
// uncompressed golden tables' byte counts row for row — compression
// changes what transits the ICAP, never what lands in configuration
// memory.
type compressedGoldenRow struct {
	from, to          string
	wire, raw, frames int
}

// The tables below were captured from the codec at its introduction and
// pin every single-region compressed container: the encoder is
// deterministic (greedy ops over fixed module content), so any drift in
// these sizes is an unintended codec change — and would silently shift
// every planner estimate and S8 row built on top of it.
var compressedGoldenSys32 = []compressedGoldenRow{
	{"", "complete:blend", 284900, 367684, 744},
	{"", "complete:brightness", 284900, 367684, 744},
	{"", "complete:fade", 292820, 367684, 744},
	{"", "complete:jenkins", 300740, 367684, 744},
	{"", "complete:passthrough", 279620, 367684, 744},
	{"", "complete:patternmatch", 306020, 367684, 744},
	{"", "blend", 10156, 33060, 66},
	{"", "brightness", 10156, 33060, 66},
	{"", "fade", 20188, 65532, 132},
	{"", "jenkins", 30220, 98004, 198},
	{"", "passthrough", 3468, 11412, 22},
	{"", "patternmatch", 36908, 119652, 242},
	{"blend", "brightness", 10156, 33060, 66},
	{"blend", "fade", 20188, 65532, 132},
	{"blend", "jenkins", 30220, 98004, 198},
	{"blend", "passthrough", 4524, 33060, 66},
	{"blend", "patternmatch", 36908, 119652, 242},
	{"brightness", "blend", 10156, 33060, 66},
	{"brightness", "fade", 20188, 65532, 132},
	{"brightness", "jenkins", 30220, 98004, 198},
	{"brightness", "passthrough", 4524, 33060, 66},
	{"brightness", "patternmatch", 36908, 119652, 242},
	{"fade", "blend", 11740, 65532, 132},
	{"fade", "brightness", 11740, 65532, 132},
	{"fade", "jenkins", 30220, 98004, 198},
	{"fade", "passthrough", 6108, 65532, 132},
	{"fade", "patternmatch", 36908, 119652, 242},
	{"jenkins", "blend", 13324, 98004, 198},
	{"jenkins", "brightness", 13324, 98004, 198},
	{"jenkins", "fade", 21772, 98004, 198},
	{"jenkins", "passthrough", 7692, 98004, 198},
	{"jenkins", "patternmatch", 36908, 119652, 242},
	{"passthrough", "blend", 10156, 33060, 66},
	{"passthrough", "brightness", 10156, 33060, 66},
	{"passthrough", "fade", 20188, 65532, 132},
	{"passthrough", "jenkins", 30220, 98004, 198},
	{"passthrough", "patternmatch", 36908, 119652, 242},
	{"patternmatch", "blend", 14380, 119652, 242},
	{"patternmatch", "brightness", 14380, 119652, 242},
	{"patternmatch", "fade", 22828, 119652, 242},
	{"patternmatch", "jenkins", 31276, 119652, 242},
	{"patternmatch", "passthrough", 8748, 119652, 242},
}

var compressedGoldenSys64 = []compressedGoldenRow{
	{"", "complete:blend", 725192, 1001416, 1024},
	{"", "complete:brightness", 719120, 1001416, 1024},
	{"", "complete:fade", 731264, 1001416, 1024},
	{"", "complete:jenkins", 737336, 1001416, 1024},
	{"", "complete:passthrough", 719120, 1001416, 1024},
	{"", "complete:patternmatch", 743408, 1001416, 1024},
	{"", "complete:sha1", 804128, 1001416, 1024},
	{"", "blend", 13676, 43836, 44},
	{"", "brightness", 6900, 22452, 22},
	{"", "fade", 20452, 65220, 66},
	{"", "jenkins", 27228, 86604, 88},
	{"", "passthrough", 6900, 22452, 22},
	{"", "patternmatch", 34004, 107988, 110},
	{"", "sha1", 101764, 321828, 330},
	{"blend", "brightness", 7428, 43836, 44},
	{"blend", "fade", 20452, 65220, 66},
	{"blend", "jenkins", 27228, 86604, 88},
	{"blend", "passthrough", 7428, 43836, 44},
	{"blend", "patternmatch", 34004, 107988, 110},
	{"blend", "sha1", 101764, 321828, 330},
	{"brightness", "blend", 13676, 43836, 44},
	{"brightness", "fade", 20452, 65220, 66},
	{"brightness", "jenkins", 27228, 86604, 88},
	{"brightness", "passthrough", 6900, 22452, 22},
	{"brightness", "patternmatch", 34004, 107988, 110},
	{"brightness", "sha1", 101764, 321828, 330},
	{"fade", "blend", 14204, 65220, 66},
	{"fade", "brightness", 7956, 65220, 66},
	{"fade", "jenkins", 27228, 86604, 88},
	{"fade", "passthrough", 7956, 65220, 66},
	{"fade", "patternmatch", 34004, 107988, 110},
	{"fade", "sha1", 101764, 321828, 330},
	{"jenkins", "blend", 14732, 86604, 88},
	{"jenkins", "brightness", 8484, 86604, 88},
	{"jenkins", "fade", 20980, 86604, 88},
	{"jenkins", "passthrough", 8484, 86604, 88},
	{"jenkins", "patternmatch", 34004, 107988, 110},
	{"jenkins", "sha1", 101764, 321828, 330},
	{"passthrough", "blend", 13676, 43836, 44},
	{"passthrough", "brightness", 6900, 22452, 22},
	{"passthrough", "fade", 20452, 65220, 66},
	{"passthrough", "jenkins", 27228, 86604, 88},
	{"passthrough", "patternmatch", 34004, 107988, 110},
	{"passthrough", "sha1", 101764, 321828, 330},
	{"patternmatch", "blend", 15260, 107988, 110},
	{"patternmatch", "brightness", 9012, 107988, 110},
	{"patternmatch", "fade", 21508, 107988, 110},
	{"patternmatch", "jenkins", 27756, 107988, 110},
	{"patternmatch", "passthrough", 9012, 107988, 110},
	{"patternmatch", "sha1", 101764, 321828, 330},
	{"sha1", "blend", 20540, 321828, 330},
	{"sha1", "brightness", 14292, 321828, 330},
	{"sha1", "fade", 26788, 321828, 330},
	{"sha1", "jenkins", 33036, 321828, 330},
	{"sha1", "passthrough", 14292, 321828, 330},
	{"sha1", "patternmatch", 39284, 321828, 330},
}

func checkCompressedGolden(t *testing.T, s *platform.System, rows []compressedGoldenRow) {
	t.Helper()
	for _, g := range rows {
		var wire, raw, frames int
		var err error
		if name, ok := strings.CutPrefix(g.to, "complete:"); ok {
			wire, raw, frames, err = s.Mgr.CompleteCompressedSize(name)
		} else {
			wire, raw, frames, err = s.Mgr.CompressedSize(g.from, g.to)
		}
		if err != nil {
			t.Errorf("%s: %q -> %q: %v", s.Name, g.from, g.to, err)
			continue
		}
		if wire != g.wire || raw != g.raw || frames != g.frames {
			t.Errorf("%s: %q -> %q compressed to (%d B wire, %d B raw, %d frames), golden codec had (%d, %d, %d)",
				s.Name, g.from, g.to, wire, raw, frames, g.wire, g.raw, g.frames)
		}
		if wire >= raw {
			t.Errorf("%s: %q -> %q: container (%d B) not smaller than its stream (%d B)",
				s.Name, g.from, g.to, wire, raw)
		}
	}
}

// TestSingleRegionCompressedGolden: every compressed container of the
// paper's single-region systems matches the sizes captured at the codec's
// introduction, and each container's raw size equals the corresponding
// uncompressed golden row — the codec rides on the same streams the
// three-kind planner sees.
func TestSingleRegionCompressedGolden(t *testing.T) {
	s32, err := platform.NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	checkCompressedGolden(t, s32, compressedGoldenSys32)
	s64, err := platform.NewSys64()
	if err != nil {
		t.Fatal(err)
	}
	checkCompressedGolden(t, s64, compressedGoldenSys64)
	s64n, err := platform.NewSys64N(1)
	if err != nil {
		t.Fatal(err)
	}
	checkCompressedGolden(t, s64n, compressedGoldenSys64)
	// Cross-check against the uncompressed golden tables: raw bytes and
	// frame counts line up row for row.
	for i, g := range goldenSys32 {
		z := compressedGoldenSys32[i]
		if z.from != g.from || z.to != g.to || z.raw != g.bytes || z.frames != g.frames {
			t.Errorf("sys32 row %d: compressed golden (%q->%q, %d B raw, %d frames) out of step with planner golden (%q->%q, %d B, %d frames)",
				i, z.from, z.to, z.raw, z.frames, g.from, g.to, g.bytes, g.frames)
		}
	}
	for i, g := range goldenSys64 {
		z := compressedGoldenSys64[i]
		if z.from != g.from || z.to != g.to || z.raw != g.bytes || z.frames != g.frames {
			t.Errorf("sys64 row %d: compressed golden (%q->%q, %d B raw, %d frames) out of step with planner golden (%q->%q, %d B, %d frames)",
				i, z.from, z.to, z.raw, z.frames, g.from, g.to, g.bytes, g.frames)
		}
	}
}
